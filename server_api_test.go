package tsens

import (
	"math/rand"
	"testing"
)

// TestServerPublicAPI drives the serving layer end to end through the
// public surface: register, append, wait, read a view, release under a
// budget — and cross-checks the served answers against the one-shot solver.
func TestServerPublicAPI(t *testing.T) {
	r1, err := NewRelation("R1", []string{"a", "b"}, []Tuple{{1, 1}, {1, 2}, {2, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRelation("R2", []string{"b", "c"}, []Tuple{{1, 1}, {2, 1}, {2, 2}, {3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery("q", "R1(A,B), R2(B,C)")
	if err != nil {
		t.Fatal(err)
	}

	srv, err := NewServer(db, ServerOptions{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	id, view, err := srv.Register(ServerQuery{
		Query:   q,
		Private: "R2",
		Release: TSensDPConfig{Epsilon: 1, Bound: 10},
		Budget:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := LocalSensitivity(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if view.Count != want.Count || view.LS.LS != want.LS {
		t.Fatalf("initial view (%d, %d), scratch (%d, %d)", view.Count, view.LS.LS, want.Count, want.LS)
	}

	ups := []Update{
		{Rel: "R2", Row: Tuple{2, 7}, Insert: true},
		{Rel: "R1", Row: Tuple{1, 1}, Insert: false},
	}
	if _, to, err := srv.Append(ups); err != nil {
		t.Fatal(err)
	} else if err := srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}

	// Rebuild the mutated database from scratch for the cross-check.
	r1b, _ := NewRelation("R1", []string{"a", "b"}, []Tuple{{1, 2}, {2, 2}, {2, 3}})
	r2b, _ := NewRelation("R2", []string{"b", "c"}, []Tuple{{1, 1}, {2, 1}, {2, 2}, {3, 1}, {2, 7}})
	db2, _ := NewDatabase(r1b, r2b)
	want2, err := LocalSensitivity(q, db2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, epoch, err := srv.LS(id)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || res.Count != want2.Count || res.LS != want2.LS {
		t.Fatalf("served (epoch %d: %d, %d), scratch (%d, %d)", epoch, res.Count, res.LS, want2.Count, want2.LS)
	}

	rel, err := srv.Release(id, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Fresh || rel.TotalSpent != 1 {
		t.Fatalf("release: %+v", rel)
	}
	if rel.Run.Noisy < 0 {
		t.Fatalf("released value %g below the clamp", rel.Run.Noisy)
	}
}
