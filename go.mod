module tsens

go 1.24
