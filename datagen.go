package tsens

import (
	"tsens/internal/snapgen"
	"tsens/internal/tpch"
)

// TPCHConfig parameterizes the synthetic TPC-H-like generator (the dbgen
// substitute used in the evaluation; only join-key columns are generated).
type TPCHConfig = tpch.Config

// GenerateTPCH builds a TPC-H-like database with the paper's relation sizes
// scaled by cfg.Scale.
func GenerateTPCH(cfg TPCHConfig) *Database {
	return tpch.Generate(cfg)
}

// EgoNetConfig parameterizes the synthetic ego-network generator (the SNAP
// Facebook substitute). Zero values default to the scale of the paper's
// ego-network of user 348.
type EgoNetConfig = snapgen.Config

// GenerateEgoNetwork builds an ego-network database with circle-partitioned
// edge tables R1..R4 and the triangle table RTRI.
func GenerateEgoNetwork(cfg EgoNetConfig) *Database {
	return snapgen.Generate(cfg).DB
}
