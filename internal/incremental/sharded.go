// Shard support for the serving layer: a partitionable query's session
// state can be split into N independent sub-sessions, one per hash
// partition of the database, so that per-update maintenance routes to the
// one sub-session whose partition the update touches (the per-shard model
// of dynamic evaluation over bounded-degree databases — Berkholz et al.,
// PAPERS.md). This file holds the partitioning rule and the merge step;
// the router and the per-shard writers live in internal/serve.
//
// Soundness. A query Q is partitionable on variable v when v appears in
// every atom at the relation's routing column: every output tuple then
// binds a single v value, and all base rows contributing to it carry that
// value, so they share one hash partition. Hence over the partitioned
// databases D_1 … D_N:
//
//	|Q(D)|  = Σ_i |Q(D_i)|             (outputs partition by h(v))
//	δ(t,Q,D) = δ(t, Q, D_{h(t.v)})     (t only joins rows with its v value)
//	LS(Q,D) = max_i LS(Q, D_i)
//
// The candidate tuples the solver maximizes over are derived from each
// partition's active domain, so every candidate's v value hashes to its own
// partition and the per-partition maxima cover exactly the global ones.
// (Candidates with a wildcard v cannot occur: v appears in every atom, so
// with two or more atoms it is always an effective variable; for the
// single-atom query the all-wildcard candidate is database-independent and
// reported identically by every partition.)
package incremental

import (
	"tsens/internal/core"
	"tsens/internal/query"
	"tsens/internal/relation"
)

// PartitionVar reports the variable on which q can be hash-partitioned:
// the variable sitting at every atom's routing column (pcol maps a
// relation name to its column; the serving layer derives it from
// ServerOptions.PartitionColumns, default column 0). ok is false when the
// atoms disagree — such queries fall back to one unpartitioned session.
func PartitionVar(q *query.Query, pcol func(rel string) int) (string, bool) {
	if len(q.Atoms) == 0 {
		return "", false
	}
	var v string
	for i, a := range q.Atoms {
		col := pcol(a.Relation)
		if col < 0 || col >= len(a.Vars) {
			return "", false
		}
		if i == 0 {
			v = a.Vars[col]
			continue
		}
		if a.Vars[col] != v {
			return "", false
		}
	}
	return v, true
}

// SplitDatabase hash-partitions every relation of db by its routing column
// into n sub-databases; sub-database i holds exactly the rows whose updates
// route to shard i (relation.Shard over the pcol value). Tuples are shared
// with db — Open clones per sub-session.
func SplitDatabase(db *relation.Database, pcol func(rel string) int, n int) ([]*relation.Database, error) {
	names := db.Names()
	split := make([][]*relation.Relation, n)
	for _, name := range names {
		parts := db.Relation(name).Partition(pcol(name), n)
		for i, p := range parts {
			split[i] = append(split[i], p)
		}
	}
	out := make([]*relation.Database, n)
	for i := range out {
		sub, err := relation.NewDatabase(split[i]...)
		if err != nil {
			return nil, err
		}
		out[i] = sub
	}
	return out, nil
}

// MergeResults joins per-partition local-sensitivity results into the
// result over the union database: counts add (saturating), per-relation
// maxima take the most sensitive partition's witness, and LS/Best follow.
// All parts must come from the same query and options (the structural
// fields are copied from the first). The parts are not mutated; with one
// part it is returned as-is.
//
// Callers that cache per-partition results and merge lazily (the serving
// layer's async epochs assemble a read-time cut from per-shard version
// rings) additionally need every part to be stamped at the same log
// position: the identities above hold only over a partition of one
// database state, so merging parts from different cuts silently produces
// counts and witnesses no single database ever had.
func MergeResults(parts []*core.Result) *core.Result {
	if len(parts) == 1 {
		return parts[0]
	}
	out := &core.Result{
		PerRelation:   make(map[string]*core.TupleResult),
		DoublyAcyclic: parts[0].DoublyAcyclic,
		MaxDegree:     parts[0].MaxDegree,
	}
	for _, p := range parts {
		out.Count = relation.AddSat(out.Count, p.Count)
		out.Approximate = out.Approximate || p.Approximate
		for rel, tr := range p.PerRelation {
			cur, ok := out.PerRelation[rel]
			if !ok || tr.Sensitivity > cur.Sensitivity ||
				(tr.Sensitivity == cur.Sensitivity && tr.InDatabase && !cur.InDatabase) {
				out.PerRelation[rel] = tr
			}
		}
	}
	for _, tr := range out.PerRelation {
		if tr.Sensitivity > out.LS {
			out.LS = tr.Sensitivity
			out.Best = tr
		}
	}
	return out
}
