package incremental

import (
	"math/rand"
	"testing"

	"tsens/internal/core"
	"tsens/internal/query"
	"tsens/internal/relation"
)

func starQuery(t *testing.T) *query.Query {
	t.Helper()
	q, err := query.New("star", []query.Atom{
		{Relation: "S1", Vars: []string{"A", "B"}},
		{Relation: "S2", Vars: []string{"A", "C"}},
		{Relation: "S3", Vars: []string{"A", "D"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func col0(string) int { return 0 }

func TestPartitionVar(t *testing.T) {
	if v, ok := PartitionVar(starQuery(t), col0); !ok || v != "A" {
		t.Fatalf("star query: (%q, %v), want (A, true)", v, ok)
	}
	path, err := query.New("path", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := PartitionVar(path, col0); ok {
		t.Fatal("path query must not be partitionable on column 0")
	}
	// With per-relation columns aligned on the join variable it is.
	if v, ok := PartitionVar(path, func(rel string) int {
		if rel == "R1" {
			return 1
		}
		return 0
	}); !ok || v != "B" {
		t.Fatalf("aligned path query: (%q, %v), want (B, true)", v, ok)
	}
	// Out-of-range routing column: not partitionable.
	if _, ok := PartitionVar(path, func(string) int { return 7 }); ok {
		t.Fatal("out-of-range column accepted")
	}
}

// TestShardedSessionsDifferential is the partitioning soundness test: N
// sub-sessions over hash-partitioned sub-databases, fed only their routed
// updates, must merge to exactly the one-shot LocalSensitivity of the full
// database after every step.
func TestShardedSessionsDifferential(t *testing.T) {
	const (
		shards = 4
		nUpds  = 60
	)
	rng := rand.New(rand.NewSource(41))
	mkRel := func(name string, n int) *relation.Relation {
		rows := make([]relation.Tuple, n)
		for i := range rows {
			rows[i] = relation.Tuple{int64(rng.Intn(8)), int64(rng.Intn(5))}
		}
		return relation.MustNew(name, []string{name + "_k", name + "_v"}, rows)
	}
	db := relation.MustNewDatabase(mkRel("S1", 20), mkRel("S2", 18), mkRel("S3", 15))
	q := starQuery(t)
	if _, ok := PartitionVar(q, col0); !ok {
		t.Fatal("fixture query must be partitionable")
	}

	subs, err := SplitDatabase(db, col0, shards)
	if err != nil {
		t.Fatal(err)
	}
	sessions := make([]*Session, shards)
	for i, sub := range subs {
		if sessions[i], err = Open(q, sub, Options{}); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}

	cur := db.Clone()
	rowpos := make(map[string]*relation.RowSet)
	for _, name := range cur.Names() {
		rowpos[name] = relation.NewRowSet(cur.Relation(name))
	}
	for step := 0; step < nUpds; step++ {
		rel := []string{"S1", "S2", "S3"}[rng.Intn(3)]
		r := cur.Relation(rel)
		up := relation.Update{Rel: rel, Row: relation.Tuple{int64(rng.Intn(8)), int64(rng.Intn(5))}, Insert: true}
		if len(r.Rows) > 0 && rng.Intn(2) == 0 {
			up = relation.Update{Rel: rel, Row: r.Rows[rng.Intn(len(r.Rows))].Clone(), Insert: false}
		}
		if up.Insert {
			rowpos[rel].Insert(r, up.Row)
		} else if err := rowpos[rel].Remove(r, up.Row); err != nil {
			t.Fatal(err)
		}
		shard := relation.Shard(up.Row[0], shards)
		if err := sessions[shard].Apply([]Update{up}); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}

		parts := make([]*core.Result, shards)
		var count int64
		for i, sess := range sessions {
			if parts[i], err = sess.LS(); err != nil {
				t.Fatalf("step %d shard %d: %v", step, i, err)
			}
			count += sess.Count()
		}
		merged := MergeResults(parts)
		want, err := core.LocalSensitivity(q, cur, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if merged.Count != want.Count || count != want.Count {
			t.Fatalf("step %d: merged count %d (Σ %d), scratch %d", step, merged.Count, count, want.Count)
		}
		if merged.LS != want.LS {
			t.Fatalf("step %d: merged LS %d, scratch %d", step, merged.LS, want.LS)
		}
		for rel, tr := range want.PerRelation {
			got, ok := merged.PerRelation[rel]
			if !ok || got.Sensitivity != tr.Sensitivity {
				t.Fatalf("step %d: relation %s sensitivity %v, scratch %d", step, rel, got, tr.Sensitivity)
			}
		}
	}
}

func TestSplitDatabaseCoversEveryRow(t *testing.T) {
	db := relation.MustNewDatabase(
		relation.MustNew("S1", []string{"k", "v"}, []relation.Tuple{{1, 1}, {2, 2}, {3, 3}}),
		relation.MustNew("S2", []string{"k", "v"}, []relation.Tuple{{1, 9}}),
	)
	subs, err := SplitDatabase(db, col0, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, sub := range subs {
		for _, name := range sub.Names() {
			for _, row := range sub.Relation(name).Rows {
				if relation.Shard(row[0], 3) != i {
					t.Fatalf("row %v of %s in sub-db %d, owner %d", row, name, i, relation.Shard(row[0], 3))
				}
				total++
			}
		}
	}
	if total != 4 {
		t.Fatalf("sub-databases hold %d rows, want 4", total)
	}
}

func TestSessionHas(t *testing.T) {
	db := relation.MustNewDatabase(
		relation.MustNew("S1", []string{"k", "v"}, []relation.Tuple{{1, 1}}),
		relation.MustNew("S2", []string{"k", "v"}, nil),
	)
	q, err := query.New("q", []query.Atom{
		{Relation: "S1", Vars: []string{"A", "B"}},
		{Relation: "S2", Vars: []string{"A", "C"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has("S1", relation.Tuple{1, 1}) || s.Has("S2", relation.Tuple{1, 1}) {
		t.Fatal("Has disagrees with the snapshot")
	}
	if err := s.Insert("S2", relation.Tuple{1, 7}); err != nil {
		t.Fatal(err)
	}
	if !s.Has("S2", relation.Tuple{1, 7}) {
		t.Fatal("Has missed an inserted row")
	}
	if err := s.Delete("S1", relation.Tuple{1, 1}); err != nil {
		t.Fatal(err)
	}
	if s.Has("S1", relation.Tuple{1, 1}) {
		t.Fatal("Has reports a deleted row")
	}
	if s.Has("NOPE", relation.Tuple{1}) {
		t.Fatal("unknown relation reported present")
	}
}
