package incremental

// Multi-query plan sharing: a PlanStore hash-conses the maintained tables
// of sessions with overlapping join-tree structure into refcounted shared
// nodes, so one delta patch per shared node fans out to every subscribed
// query instead of being recomputed per session.
//
// Sharing has two tiers, keyed by the structural fingerprints of
// core.PlanShape:
//
//   - Subtree tier: member base projections, unit (bag) relations, and
//     botjoin tables intern per join-tree subtree. Any two sessions whose
//     queries name an identical subtree (same relations, variable
//     bindings, selections, connectors — recursively) share those tables.
//   - Residue tier: when two sessions' *entire* plans fingerprint equal
//     (byte-identical queries, typically), the topjoin tables and the
//     multiplicity-table factor groups — "the residual (topjoin +
//     multiplicity-factor) state" — intern too, and a follower's
//     per-update work collapses to memo lookups.
//
// Delta application is lead/follower with per-node stream positions: all
// subscribers of a store are fed the same update stream; the first session
// to apply stream position p against a shared node computes the delta,
// patches the node's tables once, and memoizes the delta; every later
// subscriber at p replays the memo into its private residue without
// touching the shared tables. Positions are per *node*, not per store, so
// sessions whose shared regions differ interleave correctly: a node's
// tables advance exactly once per stream position no matter which
// subscriber reaches it first.
//
// Concurrency discipline: all sessions attached to one store must apply
// updates from a single goroutine (the serving layer's shard loop), and
// must be fed identical update streams. Adopt and ReleaseShared may be
// called from other goroutines — they touch only the refcount maps, under
// the store mutex — but Adopt additionally requires the store quiescent
// (no round in flight), which the serving layer guarantees by adopting
// either under the coordinator's lock or inside the shard loop at a round
// boundary.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"tsens/internal/relation"
)

// trimStride is how many updates an attached session applies between
// opportunistic memo trims (serving rounds also trim explicitly).
const trimStride = 256

// sharedTabs is the index home of one shared table: the secondary
// RowIndexes every subscriber's compiled plans probe. It is owned by the
// interned entry (not by any session), so whichever subscriber leads a
// patch syncs the indexes all of them use.
type sharedTabs struct {
	m map[string]*relation.RowIndex
}

func newSharedTabs() *sharedTabs {
	return &sharedTabs{m: make(map[string]*relation.RowIndex)}
}

func (st *sharedTabs) index(c *relation.Counted, attrs []string) (*relation.RowIndex, error) {
	key := strings.Join(attrs, "\x1f")
	if ix, ok := st.m[key]; ok {
		return ix, nil
	}
	ix, err := relation.NewRowIndex(c, attrs)
	if err != nil {
		return nil, err
	}
	st.m[key] = ix
	return ix, nil
}

func (st *sharedTabs) sync() {
	for _, ix := range st.m {
		ix.Sync()
	}
}

// nodeDelta is one memoized per-update delta of one shared node: the unit
// relation delta (set only at the update's landing node) and the botjoin
// delta. Counted deltas are immutable once produced, so followers read
// them without copying.
type nodeDelta struct {
	drel, dbot *relation.Counted
}

// sharedBase is an interned member base projection.
type sharedBase struct {
	table *relation.Counted
	tabs  *sharedTabs
	pos   int64
}

// sharedNode is an interned join-tree subtree: the unit relation and
// botjoin at its root (everything deeper is interned by the child nodes),
// plus the per-position delta memos followers replay.
type sharedNode struct {
	rel, bot         *relation.Counted
	relTabs, botTabs *sharedTabs
	pos              int64
	memo             map[int64]*nodeDelta
	// memoLen mirrors len(memo) for Stats: the memo map is owned by the
	// stepping goroutine, which writes it without the store lock (the
	// step-group discipline serializes subscribers), so Stats must read
	// the count through this atomic instead of the map.
	memoLen atomic.Int64
}

func (n *sharedNode) memoSet(pos int64, drel, dbot *relation.Counted) *nodeDelta {
	e := n.memo[pos]
	if e == nil {
		e = &nodeDelta{}
		n.memo[pos] = e
		n.memoLen.Add(1)
	}
	if drel != nil {
		e.drel = drel
	}
	if dbot != nil {
		e.dbot = dbot
	}
	return e
}

// sharedResidue is an interned whole-plan residue: the topjoin tables and
// multiplicity-table factor groups of a plan, shared only between sessions
// whose full plan fingerprints match index-for-index.
type sharedResidue struct {
	tops    []*relation.Counted
	topTabs []*sharedTabs
	gts     []*gtState
	gtTabs  []*sharedTabs // index homes of gts[i].table, same order
	pos     int64
}

type (
	internedBase    = relation.Interned[*sharedBase]
	internedNode    = relation.Interned[*sharedNode]
	internedResidue = relation.Interned[*sharedResidue]
)

// PlanStore owns the hash-cons maps and refcounts of one sharing domain.
// Create one per group of sessions fed an identical update stream (the
// serving layer keeps one per shard per routing discipline).
type PlanStore struct {
	mu       sync.Mutex
	bases    *relation.Interner[*sharedBase]
	nodes    *relation.Interner[*sharedNode]
	residues *relation.Interner[*sharedResidue]
	subs     map[*Session]struct{}

	// clock is the number of stream updates fully applied through the
	// store: every interned entry sits at pos == clock whenever the store
	// is quiescent, and Adopt aligns a new subscriber's cursor to it.
	// Atomic: the stepping goroutine bumps it without the store lock
	// (the step-group discipline serializes subscribers), while Stats
	// reads it from arbitrary goroutines.
	clock atomic.Int64

	// fail poisons the store: a propagation error on a shared table may
	// leave it half-patched for every subscriber, so all of them fail fast
	// rather than serve corrupt state.
	fail error
}

// NewPlanStore returns an empty store.
func NewPlanStore() *PlanStore {
	return &PlanStore{
		bases:    relation.NewInterner[*sharedBase](),
		nodes:    relation.NewInterner[*sharedNode](),
		residues: relation.NewInterner[*sharedResidue](),
		subs:     make(map[*Session]struct{}),
	}
}

// AdoptStats reports what a session's Adopt call shared versus donated.
type AdoptStats struct {
	// BasesShared/NodesShared count tables adopted from the store
	// (another session donated them first); the *Donated counters are
	// this session's tables interned as new canonical entries.
	BasesShared, BasesDonated int
	NodesShared, NodesDonated int
	// ResidueShared reports whether the whole-plan residue (topjoins +
	// multiplicity factors) was adopted; ResidueDonated whether this
	// session's became canonical. Both false when partial subtree sharing
	// made the residue ineligible.
	ResidueShared, ResidueDonated bool
}

// FullShare reports whether every botjoin node was adopted from the store
// — the "second registration shares 100% of its botjoin nodes" property.
func (a AdoptStats) FullShare() bool {
	return a.NodesDonated == 0 && a.BasesDonated == 0 && a.NodesShared > 0
}

// PlanStoreStats is a point-in-time summary of a store. The json tags
// match the serving API's snake_case convention (GET /debug/plans embeds
// this struct verbatim).
type PlanStoreStats struct {
	Bases    int `json:"bases"` // interned entries
	Nodes    int `json:"nodes"`
	Residues int `json:"residues"`
	// Shared* count entries with more than one subscriber.
	SharedBases    int `json:"shared_bases"`
	SharedNodes    int `json:"shared_nodes"`
	SharedResidues int `json:"shared_residues"`
	// NodeRefs is the total node subscriptions; NodeRefs/Nodes is the
	// mean fan-out.
	NodeRefs    int   `json:"node_refs"`
	Subscribers int   `json:"subscribers"`
	MemoEntries int   `json:"memo_entries"`
	Clock       int64 `json:"clock"`
}

// Stats summarizes the store. Safe to call from any goroutine.
func (ps *PlanStore) Stats() PlanStoreStats {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	st := PlanStoreStats{
		Bases:          ps.bases.Len(),
		Nodes:          ps.nodes.Len(),
		Residues:       ps.residues.Len(),
		SharedBases:    ps.bases.Shared(),
		SharedNodes:    ps.nodes.Shared(),
		SharedResidues: ps.residues.Shared(),
		Subscribers:    len(ps.subs),
		Clock:          ps.clock.Load(),
	}
	ps.nodes.Range(func(e *internedNode) {
		st.MemoEntries += int(e.Val.memoLen.Load())
		st.NodeRefs += e.Refs
	})
	return st
}

// Trim drops memoized deltas no live subscriber can still need. The
// serving layer calls it after each drain round; attached sessions also
// call it opportunistically every trimStride updates. Must not run
// concurrently with subscriber update application (same-goroutine
// discipline), because it reads subscriber cursors.
func (ps *PlanStore) Trim() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	min := ps.clock.Load()
	for s := range ps.subs {
		if s.pos < min {
			min = s.pos
		}
	}
	ps.nodes.Range(func(e *internedNode) {
		for p := range e.Val.memo {
			if p < min {
				delete(e.Val.memo, p)
				e.Val.memoLen.Add(-1)
			}
		}
	})
}

// tablesCompatible is the defensive check backing every fingerprint hit: a
// canonical table must agree with the adopter's private one on schema and
// live cardinality before the pointers are spliced. The comparison is
// logical, not physical: a canonical table that has lived through deletes
// carries zero-count tombstones a freshly solved adopter lacks, and those
// must not block a share. Fingerprints are content hashes, so a logical
// mismatch means a bug (or an adopt outside a quiescent point); refusing
// the share keeps every subscriber correct.
func tablesCompatible(canon, mine *relation.Counted) bool {
	if canon == mine {
		return true
	}
	if len(canon.Attrs) != len(mine.Attrs) {
		return false
	}
	for i, a := range canon.Attrs {
		if mine.Attrs[i] != a {
			return false
		}
	}
	return liveRows(canon) == liveRows(mine)
}

// liveRows counts rows with nonzero multiplicity (tombstones excluded).
func liveRows(c *relation.Counted) int {
	n := 0
	for i := range c.Rows {
		cnt := c.Default
		if i < len(c.Cnt) {
			cnt = c.Cnt[i]
		}
		if cnt != 0 {
			n++
		}
	}
	return n
}

// Adopt attaches the session to store, hash-consing its maintained state:
// every member base and join-tree subtree already interned (and
// compatible) replaces the session's private copy, everything else is
// donated as the new canonical entry, and when the entire plan matches an
// interned one the topjoin/multiplicity residue is shared too. The
// session's database clone and rowsets stay private (reads like Has and
// Rows are per-session), as do component totals.
//
// The session must be at the same database state as the store's
// subscribers (same snapshot + same replayed stream), and the store must
// be quiescent — no subscriber mid-update. On any error the session is
// left unattached and fully private; sharing is strictly an optimization.
func (s *Session) Adopt(store *PlanStore) (AdoptStats, error) {
	var st AdoptStats
	if s.store != nil {
		return st, fmt.Errorf("incremental: session already attached to a plan store")
	}
	store.mu.Lock()
	defer store.mu.Unlock()
	if store.fail != nil {
		return st, fmt.Errorf("incremental: plan store poisoned: %w", store.fail)
	}
	quiet := true
	clk := store.clock.Load()
	store.bases.Range(func(e *internedBase) { quiet = quiet && e.Val.pos == clk })
	store.nodes.Range(func(e *internedNode) { quiet = quiet && e.Val.pos == clk })
	store.residues.Range(func(e *internedResidue) { quiet = quiet && e.Val.pos == clk })
	if !quiet {
		return st, fmt.Errorf("incremental: plan store not quiescent (round in flight)")
	}

	sol := s.sol
	shape := sol.PlanShape()
	remap := make(map[*relation.Counted]*relation.Counted)
	sub := func(c *relation.Counted) *relation.Counted {
		if n, ok := remap[c]; ok {
			return n
		}
		return c
	}
	shared := make(map[*relation.Counted]*sharedTabs)

	// Tier 1a: member base projections.
	sbase := make(map[memberRef]*internedBase)
	baseOK := make([][]bool, len(sol.Units))
	for ui, u := range sol.Units {
		baseOK[ui] = make([]bool, len(u.Members))
		for mi, md := range u.Members {
			key := shape.Bases[ui][mi]
			if e, ok := store.bases.Lookup(key); ok {
				if !tablesCompatible(e.Val.table, md.Base) {
					continue // fingerprint collision: keep this member private
				}
				store.bases.Retain(e)
				remap[md.Base] = e.Val.table
				md.Base = e.Val.table
				sbase[memberRef{ui, mi}] = e
				shared[e.Val.table] = e.Val.tabs
				st.BasesShared++
			} else {
				sb := &sharedBase{table: md.Base, tabs: newSharedTabs(), pos: store.clock.Load()}
				sbase[memberRef{ui, mi}] = store.bases.Put(key, sb)
				shared[md.Base] = sb.tabs
				st.BasesDonated++
			}
			baseOK[ui][mi] = true
		}
	}

	// Tier 1b: join-tree subtrees, leaf to root. A node interns only when
	// its whole subtree did (children and members), so shared regions are
	// subtree-closed and a climb crosses from shared into private state at
	// most once.
	snode := make([]*internedNode, len(sol.Units))
	nodeOK := make([]bool, len(sol.Units))
	var adoptNode func(i int)
	adoptNode = func(i int) {
		node := sol.Tree.Nodes[i]
		ok := true
		for _, c := range node.Children {
			adoptNode(c.Index)
			ok = ok && nodeOK[c.Index]
		}
		for _, mok := range baseOK[i] {
			ok = ok && mok
		}
		if !ok {
			return
		}
		u := sol.Units[i]
		u.Rel = sub(u.Rel) // singleton units alias their member's base
		key := shape.Nodes[i]
		if e, hit := store.nodes.Lookup(key); hit {
			if !tablesCompatible(e.Val.rel, u.Rel) || !tablesCompatible(e.Val.bot, sol.Bot[i]) {
				return
			}
			store.nodes.Retain(e)
			remap[u.Rel] = e.Val.rel
			remap[sol.Bot[i]] = e.Val.bot
			u.Rel = e.Val.rel
			sol.Bot[i] = e.Val.bot
			snode[i] = e
			shared[e.Val.rel] = e.Val.relTabs
			shared[e.Val.bot] = e.Val.botTabs
			st.NodesShared++
		} else {
			relTabs := shared[u.Rel]
			if relTabs == nil {
				relTabs = newSharedTabs()
			}
			n := &sharedNode{
				rel: u.Rel, bot: sol.Bot[i],
				relTabs: relTabs, botTabs: newSharedTabs(),
				pos:  store.clock.Load(),
				memo: make(map[int64]*nodeDelta),
			}
			snode[i] = store.nodes.Put(key, n)
			shared[n.rel] = n.relTabs
			shared[n.bot] = n.botTabs
			st.NodesDonated++
		}
		nodeOK[i] = true
	}
	for _, root := range sol.Tree.Roots {
		adoptNode(root.Index)
	}

	// Tier 2: whole-plan residue, eligible only when every subtree interned
	// (the residue's pieces must all be canonical tables).
	var sres *internedResidue
	resOK := true
	for i := range sol.Units {
		resOK = resOK && nodeOK[i]
	}
	if resOK {
		if e, hit := store.residues.Lookup(shape.Plan); hit {
			ok := len(e.Val.tops) == len(sol.Top)
			for i := range sol.Top {
				if !ok {
					break
				}
				if (e.Val.tops[i] == nil) != (sol.Top[i] == nil) {
					ok = false
				} else if sol.Top[i] != nil {
					ok = tablesCompatible(e.Val.tops[i], sol.Top[i])
				}
			}
			if ok {
				store.residues.Retain(e)
				for i, t := range sol.Top {
					if t != nil {
						remap[t] = e.Val.tops[i]
					}
				}
				sol.Top = e.Val.tops
				s.gts = e.Val.gts
				sres = e
				for i, t := range e.Val.tops {
					if t != nil {
						shared[t] = e.Val.topTabs[i]
					}
				}
				for gi, g := range e.Val.gts {
					shared[g.table] = e.Val.gtTabs[gi]
				}
				st.ResidueShared = true
			}
		} else {
			// Donate: remap this session's factor-group pieces onto the
			// canonical tables first, so later adopters find entries whose
			// pieces are exactly the store's tables.
			topTabs := make([]*sharedTabs, len(sol.Top))
			for i, t := range sol.Top {
				if t != nil {
					topTabs[i] = newSharedTabs()
					shared[t] = topTabs[i]
				}
			}
			gtTabs := make([]*sharedTabs, len(s.gts))
			for gi, g := range s.gts {
				for pi := range g.pieces {
					g.pieces[pi] = sub(g.pieces[pi])
				}
				g.plans = make([]*relation.ExpandPlan, len(g.pieces))
				gtTabs[gi] = newSharedTabs()
				shared[g.table] = gtTabs[gi]
			}
			r := &sharedResidue{tops: sol.Top, topTabs: topTabs, gts: s.gts, gtTabs: gtTabs, pos: store.clock.Load()}
			sres = store.residues.Put(shape.Plan, r)
			st.ResidueDonated = true
		}
	}

	// Rewire everything derived from the swapped pointers: factor-group
	// pieces, the dependency fan-out, the table set (shared tables leave
	// the tombstone tally; private ones re-track), and the plan caches
	// (they captured indexes of discarded private tables).
	if !st.ResidueShared {
		for _, g := range s.gts {
			for pi := range g.pieces {
				g.pieces[pi] = sub(g.pieces[pi])
			}
			g.plans = make([]*relation.ExpandPlan, len(g.pieces))
		}
	}
	s.deps = make(map[*relation.Counted][]pieceRef)
	s.memberGts = make(map[memberRef][]*gtState)
	for _, g := range s.gts {
		s.memberGts[g.ref] = append(s.memberGts[g.ref], g)
		for pi, p := range g.pieces {
			s.deps[p] = append(s.deps[p], pieceRef{g, pi})
		}
	}
	s.tables = newTableSet()
	s.tables.shared = shared
	trk := func(c *relation.Counted) {
		// Shared tables leave the tombstone-ratio bookkeeping entirely:
		// compaction rebuilds a session (detaching it), so its watermark
		// should watch only the state a rebuild would actually reclaim.
		if _, ok := shared[c]; !ok {
			s.tables.track(c)
		}
	}
	for i, u := range sol.Units {
		trk(sol.Bot[i])
		trk(u.Rel)
		for _, md := range u.Members {
			trk(md.Base)
		}
	}
	for _, t := range sol.Top {
		trk(t)
	}
	for _, g := range s.gts {
		trk(g.table)
	}
	s.plans = make(map[edgeKey]*relation.ExpandPlan)

	s.store = store
	s.pos = store.clock.Load()
	s.sbase = sbase
	s.snode = snode
	s.sres = sres
	s.adopt = st
	store.subs[s] = struct{}{}
	return st, nil
}

// AdoptStats returns what Adopt shared/donated; zero when unattached.
func (s *Session) AdoptStats() AdoptStats { return s.adopt }

// Shared reports whether the session is currently attached to a PlanStore.
func (s *Session) Shared() bool { return s.store != nil }

// ReleaseShared detaches the session from its store, dropping its
// references; entries reaching refcount zero are un-interned. The session
// must not apply further updates until rebuilt (rebuild detaches first,
// so Rebuild/bulk Apply remain safe) — the serving layer calls this when
// unregistering a query, where the session is discarded outright.
func (s *Session) ReleaseShared() {
	store := s.store
	if store == nil {
		return
	}
	store.mu.Lock()
	for _, e := range s.sbase {
		store.bases.Release(e)
	}
	for _, e := range s.snode {
		if e != nil {
			store.nodes.Release(e)
		}
	}
	if s.sres != nil {
		store.residues.Release(s.sres)
	}
	delete(store.subs, s)
	store.mu.Unlock()
	s.store = nil
	s.pos = 0
	s.sbase = nil
	s.snode = nil
	s.sres = nil
	s.adopt = AdoptStats{}
}

// sharedBaseOf returns the shared entry backing a member's base, or nil.
func (s *Session) sharedBaseOf(ref memberRef) *sharedBase {
	if s.sbase == nil {
		return nil
	}
	if e, ok := s.sbase[ref]; ok {
		return e.Val
	}
	return nil
}

// sharedNodeOf returns the shared subtree entry at unit ui, or nil.
func (s *Session) sharedNodeOf(ui int) *sharedNode {
	if s.snode == nil || s.snode[ui] == nil {
		return nil
	}
	return s.snode[ui].Val
}

// advanceShared moves the session's stream cursor past one applied update,
// bumping every subscribed entry still waiting at this position (entries
// the update never touched advance with an implicit empty delta — memo
// absence is how followers observe "no change here").
func (s *Session) advanceShared() {
	if s.store == nil {
		return
	}
	p := s.pos
	for _, e := range s.sbase {
		if e.Val.pos == p {
			e.Val.pos = p + 1
		}
	}
	for _, e := range s.snode {
		if e != nil && e.Val.pos == p {
			e.Val.pos = p + 1
		}
	}
	if s.sres != nil && s.sres.Val.pos == p {
		s.sres.Val.pos = p + 1
	}
	s.pos = p + 1
	if s.pos > s.store.clock.Load() {
		s.store.clock.Store(s.pos)
	}
	if s.pos%trimStride == 0 {
		s.store.Trim()
	}
}

// poisonStore marks the store failed after a propagation error that may
// have left a shared table half-patched; every subscriber fails fast from
// then on instead of serving corrupt state.
func (s *Session) poisonStore(err error) {
	if s.store == nil {
		return
	}
	s.store.mu.Lock()
	if s.store.fail == nil {
		s.store.fail = err
	}
	s.store.mu.Unlock()
}
