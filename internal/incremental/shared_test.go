package incremental

import (
	"math/rand"
	"testing"

	"tsens/internal/core"
	"tsens/internal/query"
	"tsens/internal/relation"
)

// openAdopted opens a session over db and attaches it to store.
func openAdopted(t *testing.T, q *query.Query, db *relation.Database, opts core.Options, store *PlanStore) (*Session, AdoptStats) {
	t.Helper()
	s, err := Open(q, db, Options{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Adopt(store)
	if err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	return s, st
}

// TestSharedDifferentialIdentical replays random update streams through
// three identically-registered sessions attached to one PlanStore, rotating
// which session applies first so lead/follower election is exercised from
// every seat, and asserts each session equals the from-scratch solver after
// every step. Covers every query shape of the private differential test.
func TestSharedDifferentialIdentical(t *testing.T) {
	for _, tc := range streamCases() {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			q, db, opts := buildCase(t, tc, rng, 12, 4)
			m := newMirror(db)
			store := NewPlanStore()
			var sessions []*Session
			for i := 0; i < 3; i++ {
				s, st := openAdopted(t, q, db, opts, store)
				if i > 0 && (!st.FullShare() || !st.ResidueShared) {
					t.Fatalf("session %d of identical query did not fully share: %+v", i, st)
				}
				sessions = append(sessions, s)
			}
			if got := store.Stats(); got.SharedResidues != 1 || got.Subscribers != 3 {
				t.Fatalf("store stats after 3 identical adopts: %+v", got)
			}
			rels := tc.rels
			if rels == nil {
				for _, a := range tc.atoms {
					rels = append(rels, a.Relation)
				}
			}
			for step := 0; step < 60; step++ {
				up := randomUpdate(rng, m, rels, 4)
				m.apply(t, up)
				for k := range sessions {
					s := sessions[(step+k)%len(sessions)]
					if err := s.Apply([]Update{up}); err != nil {
						t.Fatalf("step %d: apply: %v", step, err)
					}
				}
				for si, s := range sessions {
					checkAgainstScratch(t, s, m, opts, step*10+si)
				}
				if step%15 == 7 {
					for _, a := range tc.atoms {
						if sk := opts.SkipRelations; len(sk) > 0 && sk[0] == a.Relation {
							continue
						}
						checkSensitivityFn(t, sessions[step%len(sessions)], m, opts, a.Relation, step)
					}
				}
			}
			store.Trim()
			if got := store.Stats(); got.MemoEntries != 0 {
				t.Fatalf("memos survived a full trim at quiescence: %+v", got)
			}
		})
	}
}

// TestSharedDifferentialOverlap runs two different queries with a common
// subtree — a 3-atom path and its 2-atom prefix — through one store: the
// leaf node and its base intern once, everything else stays private, and
// both sessions must stay exact while the stream also carries updates for
// the relation only one of them references.
func TestSharedDifferentialOverlap(t *testing.T) {
	atoms3 := []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
	}
	q3, err := query.New("path3", atoms3, nil)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := query.New("path2", atoms3[:2], nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	_, db, opts := buildCase(t, streamCase{name: "path", atoms: atoms3}, rng, 12, 4)
	m := newMirror(db)

	store := NewPlanStore()
	a, _ := openAdopted(t, q3, db, opts, store)
	b, st := openAdopted(t, q2, db, opts, store)
	if st.NodesShared == 0 || st.BasesShared == 0 {
		t.Fatalf("prefix query shared nothing: %+v", st)
	}
	if st.ResidueShared {
		t.Fatalf("different queries must not share a residue: %+v", st)
	}

	rels := []string{"R1", "R2", "R3"}
	for step := 0; step < 80; step++ {
		up := randomUpdate(rng, m, rels, 4)
		m.apply(t, up)
		first, second := a, b
		if step%2 == 1 {
			first, second = b, a
		}
		if err := first.Apply([]Update{up}); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := second.Apply([]Update{up}); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		checkAgainstScratch(t, a, m, opts, step)
		// The 2-atom session is checked against a mirror restricted to the
		// relations it kept (R3 updates must be validated no-ops for it).
		m2 := &mirror{attrs: map[string][]string{}, rows: map[string][]relation.Tuple{}}
		for _, rel := range []string{"R1", "R2"} {
			m2.attrs[rel] = m.attrs[rel]
			m2.rows[rel] = m.rows[rel]
		}
		checkAgainstScratch(t, b, m2, opts, step)
	}
}

// TestSharedAdoptQuiescence pins the quiescence precondition: when one
// subscriber of a partially-shared store has applied an update the other
// has not, entries sit at different positions and Adopt must refuse; once
// the laggard catches up, Adopt succeeds again.
func TestSharedAdoptQuiescence(t *testing.T) {
	atoms3 := []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
	}
	q3 := query.MustNew("path3", atoms3, nil)
	q2 := query.MustNew("path2", atoms3[:2], nil)
	rng := rand.New(rand.NewSource(5))
	_, db, opts := buildCase(t, streamCase{name: "path", atoms: atoms3}, rng, 8, 4)

	store := NewPlanStore()
	a, _ := openAdopted(t, q3, db, opts, store)
	b, _ := openAdopted(t, q2, db, opts, store)

	up := Update{Rel: "R1", Row: relation.Tuple{9, 9}, Insert: true}
	if err := b.Apply([]Update{up}); err != nil {
		t.Fatal(err)
	}
	mid, err := Open(q3, db, Options{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mid.Adopt(store); err == nil {
		t.Fatal("Adopt succeeded against a mid-round store")
	}
	if err := a.Apply([]Update{up}); err != nil {
		t.Fatal(err)
	}
	late, err := Open(q3, db, Options{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if err := late.Insert("R1", relation.Tuple{9, 9}); err != nil {
		t.Fatal(err) // catch the newcomer up to the stream before adopting
	}
	if _, err := late.Adopt(store); err != nil {
		t.Fatalf("Adopt at quiescence: %v", err)
	}
	if a.Count() != late.Count() {
		t.Fatalf("adopted newcomer count %d, incumbent %d", late.Count(), a.Count())
	}
}

// TestSharedReleaseAndRefcounts pins refcount release: dropping one of two
// identical subscribers leaves every entry live for the survivor (which
// must keep answering exactly), and dropping the last empties the store.
func TestSharedReleaseAndRefcounts(t *testing.T) {
	tc := streamCases()[0] // path
	rng := rand.New(rand.NewSource(31))
	q, db, opts := buildCase(t, tc, rng, 12, 4)
	m := newMirror(db)
	store := NewPlanStore()
	a, _ := openAdopted(t, q, db, opts, store)
	b, st := openAdopted(t, q, db, opts, store)
	if !st.FullShare() || !st.ResidueShared {
		t.Fatalf("identical query did not fully share: %+v", st)
	}

	rels := []string{"R1", "R2", "R3"}
	feedBoth := func(step int) {
		up := randomUpdate(rng, m, rels, 4)
		m.apply(t, up)
		for _, s := range []*Session{a, b} {
			if err := s.Apply([]Update{up}); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	for step := 0; step < 20; step++ {
		feedBoth(step)
	}
	before := store.Stats()
	if before.SharedNodes == 0 || before.SharedResidues != 1 {
		t.Fatalf("expected shared entries before release: %+v", before)
	}

	a.ReleaseShared()
	after := store.Stats()
	if after.Subscribers != 1 || after.SharedNodes != 0 || after.SharedResidues != 0 {
		t.Fatalf("release of one subscriber: %+v", after)
	}
	if after.Nodes != before.Nodes || after.Residues != before.Residues {
		t.Fatalf("entries vanished while still referenced: before %+v after %+v", before, after)
	}
	// The survivor keeps the canonical tables and stays exact as sole lead.
	for step := 0; step < 20; step++ {
		up := randomUpdate(rng, m, rels, 4)
		m.apply(t, up)
		if err := b.Apply([]Update{up}); err != nil {
			t.Fatalf("survivor step %d: %v", step, err)
		}
		checkAgainstScratch(t, b, m, opts, 100+step)
	}
	b.ReleaseShared()
	if got := store.Stats(); got.Bases != 0 || got.Nodes != 0 || got.Residues != 0 || got.Subscribers != 0 {
		t.Fatalf("store not empty after last release: %+v", got)
	}
	if b.Shared() {
		t.Fatal("session still reports attached after release")
	}
}

// TestSharedRebuildDetaches pins the no-sharing fallback: an attached
// session that rebuilds (explicitly here; tombstone compaction and bulk
// batches route through the same path) silently detaches, keeps answering
// exactly on private state, and leaves its former co-subscriber intact.
func TestSharedRebuildDetaches(t *testing.T) {
	tc := streamCases()[0] // path
	rng := rand.New(rand.NewSource(43))
	q, db, opts := buildCase(t, tc, rng, 12, 4)
	m := newMirror(db)
	store := NewPlanStore()
	a, _ := openAdopted(t, q, db, opts, store)
	b, _ := openAdopted(t, q, db, opts, store)

	rels := []string{"R1", "R2", "R3"}
	for step := 0; step < 10; step++ {
		up := randomUpdate(rng, m, rels, 4)
		m.apply(t, up)
		for _, s := range []*Session{a, b} {
			if err := s.Apply([]Update{up}); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if err := a.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if a.Shared() {
		t.Fatal("session still attached after rebuild")
	}
	if got := store.Stats(); got.Subscribers != 1 {
		t.Fatalf("store after rebuild detach: %+v", got)
	}
	for step := 0; step < 20; step++ {
		up := randomUpdate(rng, m, rels, 4)
		m.apply(t, up)
		for _, s := range []*Session{a, b} {
			if err := s.Apply([]Update{up}); err != nil {
				t.Fatalf("post-detach step %d: %v", step, err)
			}
		}
		checkAgainstScratch(t, a, m, opts, 200+step)
		checkAgainstScratch(t, b, m, opts, 300+step)
	}
}

// TestOpenPrunesUnreferencedRelations pins the subset clone: relations the
// query never references are not cloned, yet updates addressed to them
// validate arity and no-op, and truly unknown relations still error.
func TestOpenPrunesUnreferencedRelations(t *testing.T) {
	tc := streamCases()[4] // disconnected_with_skip: carries UNUSED(Z)
	rng := rand.New(rand.NewSource(3))
	q, db, opts := buildCase(t, tc, rng, 8, 4)
	s, err := Open(q, db, Options{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows("UNUSED") != nil {
		t.Fatal("unreferenced relation was cloned into the session")
	}
	before := s.Count()
	if err := s.Insert("UNUSED", relation.Tuple{1}); err != nil {
		t.Fatalf("insert into unreferenced relation: %v", err)
	}
	if s.Count() != before {
		t.Fatal("no-op update changed the count")
	}
	if err := s.Insert("UNUSED", relation.Tuple{1, 2}); err == nil {
		t.Fatal("arity mismatch on unreferenced relation not rejected")
	}
	if err := s.Insert("NOPE", relation.Tuple{1}); err == nil {
		t.Fatal("unknown relation accepted")
	}
}
