package incremental

import (
	"math/rand"
	"testing"

	"tsens/internal/core"
	"tsens/internal/ghd"
	"tsens/internal/par"
	"tsens/internal/query"
	"tsens/internal/relation"
)

// mirror is a plain-rows copy of the database that the tests mutate in
// lockstep with the session, used to recompute everything from scratch.
type mirror struct {
	attrs map[string][]string
	rows  map[string][]relation.Tuple
}

func newMirror(db *relation.Database) *mirror {
	m := &mirror{attrs: map[string][]string{}, rows: map[string][]relation.Tuple{}}
	for _, name := range db.Names() {
		r := db.Relation(name)
		m.attrs[name] = r.Attrs
		for _, t := range r.Rows {
			m.rows[name] = append(m.rows[name], t.Clone())
		}
	}
	return m
}

func (m *mirror) apply(t *testing.T, up Update) {
	t.Helper()
	if up.Insert {
		m.rows[up.Rel] = append(m.rows[up.Rel], up.Row.Clone())
		return
	}
	rows := m.rows[up.Rel]
	for i, r := range rows {
		if r.Equal(up.Row) {
			rows[i] = rows[len(rows)-1]
			m.rows[up.Rel] = rows[:len(rows)-1]
			return
		}
	}
	t.Fatalf("mirror: delete of absent tuple %v from %s", up.Row, up.Rel)
}

func (m *mirror) database(t *testing.T) *relation.Database {
	t.Helper()
	var rels []*relation.Relation
	for name, attrs := range m.attrs {
		rows := make([]relation.Tuple, len(m.rows[name]))
		for i, r := range m.rows[name] {
			rows[i] = r.Clone()
		}
		r, err := relation.New(name, attrs, rows)
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, r)
	}
	db, err := relation.NewDatabase(rels...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// randomUpdate draws an insert or delete against the mirror's current rows,
// with values from a small domain so joins collide heavily.
func randomUpdate(rng *rand.Rand, m *mirror, rels []string, dom int) Update {
	rel := rels[rng.Intn(len(rels))]
	rows := m.rows[rel]
	if len(rows) > 0 && rng.Intn(100) < 40 {
		return Update{Rel: rel, Row: rows[rng.Intn(len(rows))].Clone(), Insert: false}
	}
	row := make(relation.Tuple, len(m.attrs[rel]))
	for i := range row {
		row[i] = int64(rng.Intn(dom))
	}
	return Update{Rel: rel, Row: row, Insert: true}
}

// checkAgainstScratch compares the session's Count/LS against the one-shot
// solver on the mirror database, including every per-relation sensitivity
// and the consistency of reported witnesses.
func checkAgainstScratch(t *testing.T, s *Session, m *mirror, opts core.Options, step int) {
	t.Helper()
	db := m.database(t)
	want, err := core.LocalSensitivity(s.Query(), db, opts)
	if err != nil {
		t.Fatalf("step %d: scratch: %v", step, err)
	}
	got, err := s.LS()
	if err != nil {
		t.Fatalf("step %d: session LS: %v", step, err)
	}
	if s.Count() != want.Count || got.Count != want.Count {
		t.Fatalf("step %d: count: session %d/%d, scratch %d", step, s.Count(), got.Count, want.Count)
	}
	if got.LS != want.LS {
		t.Fatalf("step %d: LS: session %d, scratch %d", step, got.LS, want.LS)
	}
	if len(got.PerRelation) != len(want.PerRelation) {
		t.Fatalf("step %d: per-relation: %d vs %d entries", step, len(got.PerRelation), len(want.PerRelation))
	}
	for rel, wtr := range want.PerRelation {
		gtr, ok := got.PerRelation[rel]
		if !ok || gtr.Sensitivity != wtr.Sensitivity {
			t.Fatalf("step %d: δ(%s): session %+v, scratch %d", step, rel, gtr, wtr.Sensitivity)
		}
		// A witness claimed to be in the database must actually be there.
		if gtr.InDatabase {
			found := false
			for _, row := range m.rows[rel] {
				match := true
				for i := range row {
					if !gtr.Wildcard[i] && row[i] != gtr.Values[i] {
						match = false
						break
					}
				}
				if match {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("step %d: %s witness %v claimed in database but absent", step, rel, gtr.Values)
			}
		}
	}
}

// checkSensitivityFn compares the session evaluator against the one-shot
// TupleSensitivities on every current row of rel.
func checkSensitivityFn(t *testing.T, s *Session, m *mirror, opts core.Options, rel string, step int) {
	t.Helper()
	if len(m.rows[rel]) == 0 {
		return
	}
	sessFn, err := s.SensitivityFn(rel)
	if err != nil {
		t.Fatalf("step %d: session SensitivityFn(%s): %v", step, rel, err)
	}
	db := m.database(t)
	wantFn, err := core.TupleSensitivities(s.Query(), db, rel, opts)
	if err != nil {
		t.Fatalf("step %d: scratch TupleSensitivities(%s): %v", step, rel, err)
	}
	for _, row := range m.rows[rel] {
		if g, w := sessFn(row), wantFn(row); g != w {
			t.Fatalf("step %d: δ(%s:%v): session %d, scratch %d", step, rel, row, g, w)
		}
	}
}

type streamCase struct {
	name  string
	atoms []query.Atom
	sels  map[string][]query.Predicate
	bags  [][]int // GHD bags for cyclic queries
	skip  []string
	rels  []string // relations to update (defaults to all atoms)
	extra *relation.Relation
}

func streamCases() []streamCase {
	return []streamCase{
		{
			name: "path",
			atoms: []query.Atom{
				{Relation: "R1", Vars: []string{"A", "B"}},
				{Relation: "R2", Vars: []string{"B", "C"}},
				{Relation: "R3", Vars: []string{"C", "D"}},
			},
		},
		{
			name: "star_doubly_acyclic",
			atoms: []query.Atom{
				{Relation: "S0", Vars: []string{"A", "B", "C"}},
				{Relation: "S1", Vars: []string{"A"}},
				{Relation: "S2", Vars: []string{"B"}},
				{Relation: "S3", Vars: []string{"C", "E"}},
			},
		},
		{
			name: "triangle_ghd",
			atoms: []query.Atom{
				{Relation: "T1", Vars: []string{"A", "B"}},
				{Relation: "T2", Vars: []string{"B", "C"}},
				{Relation: "T3", Vars: []string{"C", "A"}},
			},
			bags: [][]int{{0, 1}, {2}},
		},
		{
			name: "path_selections",
			atoms: []query.Atom{
				{Relation: "P1", Vars: []string{"A", "B"}},
				{Relation: "P2", Vars: []string{"B", "C"}},
			},
			sels: map[string][]query.Predicate{
				"P2": {{Var: "C", Op: query.Le, Value: 2}},
			},
		},
		{
			name: "disconnected_with_skip",
			atoms: []query.Atom{
				{Relation: "D1", Vars: []string{"A", "B"}},
				{Relation: "D2", Vars: []string{"B"}},
				{Relation: "D3", Vars: []string{"X", "Y"}},
			},
			skip:  []string{"D2"},
			extra: relation.MustNew("UNUSED", []string{"Z"}, nil),
		},
	}
}

func buildCase(t *testing.T, tc streamCase, rng *rand.Rand, size, dom int) (*query.Query, *relation.Database, core.Options) {
	t.Helper()
	q, err := query.New(tc.name, tc.atoms, tc.sels)
	if err != nil {
		t.Fatal(err)
	}
	var rels []*relation.Relation
	for _, a := range tc.atoms {
		rows := make([]relation.Tuple, 0, size)
		for i := 0; i < size; i++ {
			row := make(relation.Tuple, len(a.Vars))
			for j := range row {
				row[j] = int64(rng.Intn(dom))
			}
			rows = append(rows, row)
		}
		r, err := relation.New(a.Relation, a.Vars, rows)
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, r)
	}
	if tc.extra != nil {
		rels = append(rels, tc.extra.Clone())
	}
	db, err := relation.NewDatabase(rels...)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{SkipRelations: tc.skip}
	if tc.bags != nil {
		opts.Decomposition = ghd.MustFromBags(q, tc.bags)
	}
	return q, db, opts
}

// TestSessionDifferentialStreams replays random update streams through
// sessions over every query shape, asserting Count()/LS() (and periodically
// the tuple-sensitivity evaluator) equal the from-scratch solver after
// every single step, at parallelism 1 and N (the latter on a shared pool).
func TestSessionDifferentialStreams(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	const steps = 60
	for _, tc := range streamCases() {
		for _, par := range []struct {
			name string
			n    int
			pool bool
		}{{"par1", 1, false}, {"parN", 4, true}} {
			t.Run(tc.name+"/"+par.name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(len(tc.name)) * 31))
				q, db, copts := buildCase(t, tc, rng, 12, 4)
				copts.Parallelism = par.n
				if par.pool {
					copts.Pool = pool
				}
				sess, err := Open(q, db, Options{Options: copts})
				if err != nil {
					t.Fatal(err)
				}
				m := newMirror(db)
				updRels := tc.rels
				if updRels == nil {
					for _, a := range tc.atoms {
						updRels = append(updRels, a.Relation)
					}
					if tc.extra != nil {
						updRels = append(updRels, tc.extra.Name)
					}
				}
				checkAgainstScratch(t, sess, m, copts, -1)
				for step := 0; step < steps; step++ {
					up := randomUpdate(rng, m, updRels, 4)
					m.apply(t, up)
					var err error
					if up.Insert {
						err = sess.Insert(up.Rel, up.Row)
					} else {
						err = sess.Delete(up.Rel, up.Row)
					}
					if err != nil {
						t.Fatalf("step %d: %+v: %v", step, up, err)
					}
					checkAgainstScratch(t, sess, m, copts, step)
					if step%15 == 7 {
						checkSensitivityFn(t, sess, m, copts, tc.atoms[0].Relation, step)
					}
				}
				if sess.Updates() != steps {
					t.Fatalf("Updates() = %d, want %d", sess.Updates(), steps)
				}
			})
		}
	}
}

// TestSessionDrainAndRefill empties every relation through the session and
// refills it, exercising zero-row tables, empty botjoin roots, and the
// tombstone paths.
func TestSessionDrainAndRefill(t *testing.T) {
	tc := streamCases()[0] // path
	rng := rand.New(rand.NewSource(99))
	q, db, copts := buildCase(t, tc, rng, 6, 3)
	sess, err := Open(q, db, Options{Options: copts})
	if err != nil {
		t.Fatal(err)
	}
	m := newMirror(db)
	// Drain.
	for _, a := range tc.atoms {
		for len(m.rows[a.Relation]) > 0 {
			up := Update{Rel: a.Relation, Row: m.rows[a.Relation][0].Clone(), Insert: false}
			m.apply(t, up)
			if err := sess.Delete(up.Rel, up.Row); err != nil {
				t.Fatal(err)
			}
		}
		checkAgainstScratch(t, sess, m, copts, -1)
	}
	if sess.Count() != 0 {
		t.Fatalf("empty database count = %d", sess.Count())
	}
	// Refill.
	for i := 0; i < 30; i++ {
		up := randomUpdate(rng, m, []string{"R1", "R2", "R3"}, 3)
		if !up.Insert {
			continue
		}
		m.apply(t, up)
		if err := sess.Insert(up.Rel, up.Row); err != nil {
			t.Fatal(err)
		}
		checkAgainstScratch(t, sess, m, copts, i)
	}
}

// TestSessionBulkFallback checks that large batches rebuild and still agree
// with scratch, and that the rebuild counter reflects it.
func TestSessionBulkFallback(t *testing.T) {
	tc := streamCases()[0]
	rng := rand.New(rand.NewSource(5))
	q, db, copts := buildCase(t, tc, rng, 10, 4)
	sess, err := Open(q, db, Options{Options: copts, BulkThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	m := newMirror(db)
	var batch []Update
	for len(batch) < 12 {
		up := randomUpdate(rng, m, []string{"R1", "R2", "R3"}, 4)
		m.apply(t, up)
		batch = append(batch, up)
	}
	if err := sess.Apply(batch); err != nil {
		t.Fatal(err)
	}
	if sess.Rebuilds() != 1 {
		t.Fatalf("Rebuilds() = %d, want 1", sess.Rebuilds())
	}
	checkAgainstScratch(t, sess, m, copts, 0)
	// Small batches stay on the delta path.
	up := randomUpdate(rng, m, []string{"R2"}, 4)
	m.apply(t, up)
	if err := sess.Apply([]Update{up}); err != nil {
		t.Fatal(err)
	}
	if sess.Rebuilds() != 1 {
		t.Fatalf("small batch rebuilt: %d", sess.Rebuilds())
	}
	checkAgainstScratch(t, sess, m, copts, 1)
}

func TestSessionValidation(t *testing.T) {
	tc := streamCases()[0]
	rng := rand.New(rand.NewSource(3))
	q, db, copts := buildCase(t, tc, rng, 4, 3)
	if _, err := Open(q, db, Options{Options: core.Options{TopK: 4}}); err == nil {
		t.Fatal("TopK session accepted")
	}
	sess, err := Open(q, db, Options{Options: copts})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Delete("R1", relation.Tuple{99, 99}); err == nil {
		t.Fatal("delete of absent tuple accepted")
	}
	if err := sess.Insert("R1", relation.Tuple{1}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := sess.Insert("NOPE", relation.Tuple{1}); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := sess.SensitivityFn("NOPE"); err == nil {
		t.Fatal("SensitivityFn on unknown relation accepted")
	}
	// The failed operations must not have corrupted the state.
	m := newMirror(db)
	checkAgainstScratch(t, sess, m, copts, 0)
}

// TestSessionSkippedRelationUpdates updates a skipped relation: it carries
// no multiplicity table of its own but still changes everyone else's.
func TestSessionSkippedRelationUpdates(t *testing.T) {
	tc := streamCases()[4] // disconnected_with_skip
	rng := rand.New(rand.NewSource(11))
	q, db, copts := buildCase(t, tc, rng, 8, 3)
	sess, err := Open(q, db, Options{Options: copts})
	if err != nil {
		t.Fatal(err)
	}
	m := newMirror(db)
	for step := 0; step < 25; step++ {
		up := randomUpdate(rng, m, []string{"D2", "UNUSED"}, 3)
		m.apply(t, up)
		var err error
		if up.Insert {
			err = sess.Insert(up.Rel, up.Row)
		} else {
			err = sess.Delete(up.Rel, up.Row)
		}
		if err != nil {
			t.Fatal(err)
		}
		checkAgainstScratch(t, sess, m, copts, step)
	}
	if _, err := sess.SensitivityFn("D2"); err == nil {
		t.Fatal("SensitivityFn on skipped relation accepted")
	}
}

// TestSessionTombstoneCompaction exercises RebuildTombstoneRatio: deleting
// rows plants zero-count tombstones in the maintained tables until the
// watermark triggers an automatic rebuild, which resets the ratio — and the
// session agrees with the from-scratch solver throughout.
func TestSessionTombstoneCompaction(t *testing.T) {
	tc := streamCases()[0] // path
	rng := rand.New(rand.NewSource(7))
	q, db, copts := buildCase(t, tc, rng, 12, 4)
	sess, err := Open(q, db, Options{Options: copts, RebuildTombstoneRatio: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if r := sess.TombstoneRatio(); r != 0 {
		t.Fatalf("fresh session tombstone ratio = %g, want 0", r)
	}
	m := newMirror(db)
	sawTombstones := false
	for step := 0; len(m.rows["R2"]) > 0; step++ {
		up := Update{Rel: "R2", Row: m.rows["R2"][0].Clone(), Insert: false}
		m.apply(t, up)
		if err := sess.Delete(up.Rel, up.Row); err != nil {
			t.Fatal(err)
		}
		if r := sess.TombstoneRatio(); r >= 0.3 {
			t.Fatalf("step %d: ratio %g survived past the 0.3 watermark", step, r)
		} else if r > 0 {
			sawTombstones = true
		}
		checkAgainstScratch(t, sess, m, copts, step)
	}
	if !sawTombstones {
		t.Fatal("stream never planted a tombstone; the watermark was not exercised")
	}
	if sess.Rebuilds() == 0 {
		t.Fatal("watermark never triggered an automatic rebuild")
	}

	// Without the option the same stream accumulates tombstones and never
	// rebuilds.
	q2, db2, copts2 := buildCase(t, tc, rand.New(rand.NewSource(7)), 12, 4)
	manual, err := Open(q2, db2, Options{Options: copts2})
	if err != nil {
		t.Fatal(err)
	}
	m2 := newMirror(db2)
	for len(m2.rows["R2"]) > 0 {
		up := Update{Rel: "R2", Row: m2.rows["R2"][0].Clone(), Insert: false}
		m2.apply(t, up)
		if err := manual.Delete(up.Rel, up.Row); err != nil {
			t.Fatal(err)
		}
	}
	if manual.Rebuilds() != 0 {
		t.Fatalf("unwatermarked session rebuilt %d times", manual.Rebuilds())
	}
	if manual.TombstoneRatio() == 0 {
		t.Fatal("unwatermarked session reports no tombstones after draining R2")
	}
}

// TestSessionTombstoneRatioDisconnected pins the watermark's denominator to
// the whole maintained state, not just the tables updates have patched:
// deletes confined to the small component of a disconnected query are a
// sliver of the maintained rows, so they must not cross the watermark and
// trigger rebuilds — the failure mode is an O(|DB|) rebuild storm on the
// per-update path.
func TestSessionTombstoneRatioDisconnected(t *testing.T) {
	atoms := []query.Atom{
		{Relation: "A1", Vars: []string{"A", "B"}},
		{Relation: "A2", Vars: []string{"B", "C"}},
		{Relation: "B1", Vars: []string{"X", "Y"}},
		{Relation: "B2", Vars: []string{"Y", "Z"}},
	}
	q, err := query.New("disc", atoms, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := func(n int) []relation.Tuple {
		out := make([]relation.Tuple, n)
		for i := range out {
			out[i] = relation.Tuple{int64(i), int64(i)}
		}
		return out
	}
	db, err := relation.NewDatabase(
		relation.MustNew("A1", []string{"A", "B"}, rows(8)),
		relation.MustNew("A2", []string{"B", "C"}, rows(8)),
		relation.MustNew("B1", []string{"X", "Y"}, rows(400)),
		relation.MustNew("B2", []string{"Y", "Z"}, rows(400)),
	)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := Open(q, db, Options{RebuildTombstoneRatio: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	m := newMirror(db)
	sawTombstones := false
	for step := 0; step < 6; step++ {
		up := Update{Rel: "A1", Row: m.rows["A1"][0].Clone(), Insert: false}
		m.apply(t, up)
		if err := sess.Delete(up.Rel, up.Row); err != nil {
			t.Fatal(err)
		}
		if sess.TombstoneRatio() > 0 {
			sawTombstones = true
		}
		checkAgainstScratch(t, sess, m, core.Options{}, step)
	}
	if !sawTombstones {
		t.Fatal("deletes planted no tombstones; the denominator was not exercised")
	}
	if n := sess.Rebuilds(); n != 0 {
		t.Fatalf("deletes in the small component rebuilt %d times: watermark denominator ignores the large component", n)
	}
}
