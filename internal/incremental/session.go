// Package incremental maintains LS(Q, D) and |Q(D)| under single-tuple
// inserts and deletes, the "FO+MOD queries under updates" direction of the
// roadmap (Berkholz, Keppeler, Schweikardt): instead of recomputing every
// botjoin/topjoin pass from scratch per database, a Session pins the join
// tree of the one-shot solver (internal/core) and retains all of its
// materialized state — per-member base projections, per-unit bag joins,
// botjoin and topjoin tables, and the factor groups of every multiplicity
// table T^i. A single-tuple update to relation R then recomputes only the
// deltas along the leaf-to-root botjoin path through R's node, the affected
// topjoins (which fan out from that path's siblings), and the multiplicity
// table factors those tables feed, patching every table in place through
// the delta kernels of internal/relation (ApplyDelta, ExpandPlan).
//
// Per-group maxima are tracked incrementally, so LS() after an update costs
// a handful of hash lookups unless a deletion dethroned a current argmax
// (which triggers one lazy rescan of that group table). Count() is O(1)
// from the maintained component totals.
//
// Bulk batches fall back to a full rebuild (Options.BulkThreshold), which
// is also the escape hatch for anything delta maintenance does not model.
// Cyclic queries work through the same GHD decompositions as the one-shot
// solver: an update to a bag member joins its delta against the other
// members of the bag before entering the passes.
//
// Sessions are not safe for concurrent use: updates mutate the retained
// tables in place. All reads (Count, LS, SensitivityFn evaluators) observe
// the state as of the last applied update.
package incremental

import (
	"fmt"
	"time"

	"tsens/internal/core"
	"tsens/internal/obs"
	"tsens/internal/query"
	"tsens/internal/relation"
)

// Update is a single-tuple change, re-exported from internal/relation.
type Update = relation.Update

// DefaultBulkThreshold is the batch size at which Apply abandons per-tuple
// delta propagation for one full rebuild.
const DefaultBulkThreshold = 64

// Options configures a Session. The embedded core.Options must be exact
// (TopK = 0); Decomposition, SkipRelations, Parallelism, and Pool carry
// their one-shot meanings (parallelism applies to opens and rebuilds — the
// per-update delta path is sequential by design).
type Options struct {
	core.Options
	// BulkThreshold: Apply batches of at least this many updates trigger a
	// full rebuild instead of per-tuple propagation. Zero means
	// DefaultBulkThreshold; negative disables the fallback.
	BulkThreshold int
	// RebuildTombstoneRatio, when positive, makes the session trigger
	// Rebuild() itself once the fraction of zero-count (tombstone) rows
	// across the maintained tables crosses this watermark, instead of
	// leaving compaction to the caller. Deletes leave zeroed rows behind in
	// every table they patch (see relation.ApplyDelta); the ratio is exact:
	// resurrected rows leave the tally. Note that an automatic rebuild, like
	// an explicit one, invalidates outstanding SensitivityFn evaluators —
	// check Rebuilds() and re-request them when streaming deletes with this
	// option set.
	RebuildTombstoneRatio float64
	// Metrics, when set, receives per-update delta-propagation and rebuild
	// latency histograms plus update/rebuild counters (shared across every
	// session opened against the same registry). Nil disables
	// instrumentation entirely — no clocks on the per-update path.
	Metrics *obs.Registry
	// Logger, when set, receives one structured line per full rebuild —
	// rebuilds are the session's only expensive, operator-visible event.
	// Nil keeps the session silent.
	Logger *obs.Logger
}

// memberRef addresses one member of one unit of the solver.
type memberRef struct{ ui, mi int }

// Session is a stateful sensitivity engine over a private copy of the
// database. Obtain one with Open; feed it updates with Insert, Delete, or
// Apply; read LS(), Count(), or a SensitivityFn at any point.
type Session struct {
	q    *query.Query
	opts Options
	db   *relation.Database // session-owned clone

	sol *core.Solver

	memberOf map[string]memberRef
	effPos   map[string][]int // relation → EffVars positions in atom vars
	selFn    map[string]func(relation.Tuple) bool
	rowsets  map[string]*relation.RowSet

	tables    *tableSet
	plans     map[edgeKey]*relation.ExpandPlan
	gts       []*gtState
	memberGts map[memberRef][]*gtState
	deps      map[*relation.Counted][]pieceRef

	doublyAcyclic bool
	maxDegree     int
	updates       int
	rebuilds      int

	// pruned holds the arity of database relations the query never
	// references: Open does not clone them (satellite of the plan-sharing
	// refactor), but updates addressed to them must still validate and
	// no-op exactly as they did against a full clone.
	pruned map[string]int

	// Plan-sharing attachment (nil/zero when the session is private). See
	// shared.go: store is the hash-cons domain, pos the session's cursor in
	// the shared update stream, and sbase/snode/sres the refcounted entries
	// this session holds. adopt records what Adopt shared versus donated.
	store *PlanStore
	pos   int64
	sbase map[memberRef]*internedBase
	snode []*internedNode
	sres  *internedResidue
	adopt AdoptStats

	// Instruments from Options.Metrics; all nil when no registry was given.
	updateSecs    *obs.Histogram
	rebuildSecs   *obs.Histogram
	updatesTotal  *obs.Counter
	rebuildsTotal *obs.Counter
}

// Open pins q's join tree over a private clone of db and materializes the
// session state. It fails exactly where the one-shot solver would (cyclic
// query without a decomposition, arity mismatches) and additionally rejects
// the top-k approximation, whose truncation does not commute with deltas.
func Open(q *query.Query, db *relation.Database, opts Options) (*Session, error) {
	if opts.TopK > 0 {
		return nil, fmt.Errorf("incremental: sessions require exact mode (TopK=0)")
	}
	if opts.BulkThreshold == 0 {
		opts.BulkThreshold = DefaultBulkThreshold
	}
	// Clone only the relations the query references: unreferenced ones can
	// never affect |Q(D)| or LS, so carrying them (and their rowsets)
	// through every registered session is pure overhead. Their arities are
	// remembered so updates addressed to them still validate and no-op
	// exactly as against a full clone.
	referenced := make(map[string]bool, len(q.Atoms))
	for _, a := range q.Atoms {
		referenced[a.Relation] = true
	}
	s := &Session{q: q, opts: opts, pruned: make(map[string]int)}
	kept := make([]*relation.Relation, 0, len(q.Atoms))
	for _, name := range db.Names() {
		r := db.Relation(name)
		if referenced[name] {
			kept = append(kept, r.Clone())
		} else {
			s.pruned[name] = len(r.Attrs)
		}
	}
	sub, err := relation.NewDatabase(kept...)
	if err != nil {
		return nil, err
	}
	s.db = sub
	if opts.Metrics != nil {
		s.updateSecs = opts.Metrics.Histogram("tsens_session_update_seconds",
			"Per-update delta propagation latency across sessions.", nil)
		s.rebuildSecs = opts.Metrics.Histogram("tsens_session_rebuild_seconds",
			"Full session rebuild latency (bulk batches, compaction, explicit Rebuild).", nil)
		s.updatesTotal = opts.Metrics.Counter("tsens_session_updates_total",
			"Single-tuple updates applied across sessions.")
		s.rebuildsTotal = opts.Metrics.Counter("tsens_session_rebuilds_total",
			"Full session rebuilds across sessions.")
	}
	s.rowsets = make(map[string]*relation.RowSet, len(s.db.Names()))
	for _, name := range s.db.Names() {
		s.rowsets[name] = relation.NewRowSet(s.db.Relation(name))
	}
	if err := s.build(); err != nil {
		return nil, err
	}
	return s, nil
}

// build runs the one-shot passes and derives every maintained structure
// from them. It is the shared body of Open and Rebuild.
func (s *Session) build() error {
	sol, err := core.NewSolver(s.q, s.db, s.opts.Options)
	if err != nil {
		return err
	}
	s.sol = sol
	s.doublyAcyclic = sol.Tree.IsDoublyAcyclic()
	s.maxDegree = sol.Tree.MaxDegree()
	s.memberOf = make(map[string]memberRef)
	s.effPos = make(map[string][]int)
	s.selFn = make(map[string]func(relation.Tuple) bool)
	s.tables = newTableSet()
	s.plans = make(map[edgeKey]*relation.ExpandPlan)
	s.gts = nil
	s.memberGts = make(map[memberRef][]*gtState)
	s.deps = make(map[*relation.Counted][]pieceRef)
	for _, c := range sol.Bot {
		s.tables.track(c)
	}
	for _, c := range sol.Top {
		s.tables.track(c)
	}
	for ui, u := range sol.Units {
		s.tables.track(u.Rel)
		for mi, md := range u.Members {
			ref := memberRef{ui, mi}
			rel := md.Atom.Relation
			s.memberOf[rel] = ref
			pos := make([]int, len(md.EffVars))
			for k, v := range md.EffVars {
				for x, av := range md.Atom.Vars {
					if av == v {
						pos[k] = x
						break
					}
				}
			}
			s.effPos[rel] = pos
			s.selFn[rel] = s.q.ApplySelections(md.Atom)
			// Above the Skip guard: propagation still patches a skipped
			// member's base, so it belongs in the watermark denominator.
			s.tables.track(md.Base)
			if md.Skip {
				continue
			}
			for _, group := range core.GroupPieces(sol.Pieces(ui, md)) {
				gt, err := core.GroupTable(group, md.EffVars)
				if err != nil {
					return err
				}
				st := &gtState{
					ref:    ref,
					pieces: group,
					table:  gt,
					keepFn: md.PredFilter(gt.Attrs),
					plans:  make([]*relation.ExpandPlan, len(group)),
				}
				s.tables.track(gt)
				s.gts = append(s.gts, st)
				s.memberGts[ref] = append(s.memberGts[ref], st)
				for pi, p := range group {
					s.deps[p] = append(s.deps[p], pieceRef{st, pi})
				}
			}
		}
	}
	return nil
}

// Insert adds one tuple to the named relation and propagates its effect.
func (s *Session) Insert(rel string, row relation.Tuple) error {
	return s.applyOne(Update{Rel: rel, Row: row, Insert: true})
}

// Delete removes one occurrence of the tuple from the named relation and
// propagates its effect; deleting an absent tuple is an error (and leaves
// the session untouched).
func (s *Session) Delete(rel string, row relation.Tuple) error {
	return s.applyOne(Update{Rel: rel, Row: row, Insert: false})
}

// Apply replays a batch of updates. Batches at or above BulkThreshold are
// applied to the database and answered with one full rebuild — past that
// size, re-running the O(N) passes beats per-tuple delta propagation.
// Validation errors (unknown relation, arity mismatch, deleting an absent
// tuple) abort the batch at the failing update; updates before it remain
// applied and the session stays consistent.
func (s *Session) Apply(batch []Update) error {
	// The bulk-rebuild shortcut detaches from any PlanStore first: the
	// rebuild re-solves over private tables, and an attached session must
	// not churn its database underneath shared state. Detaching never
	// advances the store, so remaining subscribers stay aligned (the next
	// to apply at the current position becomes lead). Callers that care
	// about sharing should check Shared() after bulk batches.
	if s.opts.BulkThreshold > 0 && len(batch) >= s.opts.BulkThreshold {
		s.ReleaseShared()
		for _, up := range batch {
			if _, _, err := s.applyRow(up); err != nil {
				// Keep the maintained state consistent with the rows already
				// changed before reporting the error.
				if rerr := s.rebuild(); rerr != nil {
					return rerr
				}
				return err
			}
		}
		return s.rebuild()
	}
	for _, up := range batch {
		if err := s.applyOne(up); err != nil {
			return err
		}
	}
	return nil
}

// applyRow validates an update and applies it to the session database and
// row multiset, returning the member it maps to (ok=false when the
// relation is not referenced by the query).
func (s *Session) applyRow(up Update) (memberRef, bool, error) {
	r := s.db.Relation(up.Rel)
	if r == nil {
		if arity, ok := s.pruned[up.Rel]; ok {
			// The relation exists but the query never references it: the
			// update cannot affect any maintained state. Validate the shape
			// and no-op, as a full clone would have.
			if len(up.Row) != arity {
				return memberRef{}, false, fmt.Errorf("incremental: tuple arity %d does not match %s arity %d", len(up.Row), up.Rel, arity)
			}
			s.updates++
			return memberRef{}, false, nil
		}
		return memberRef{}, false, fmt.Errorf("incremental: no relation %q", up.Rel)
	}
	if len(up.Row) != len(r.Attrs) {
		return memberRef{}, false, fmt.Errorf("incremental: tuple arity %d does not match %s arity %d", len(up.Row), up.Rel, len(r.Attrs))
	}
	rs := s.rowsets[up.Rel]
	if up.Insert {
		rs.Insert(r, up.Row)
	} else if err := rs.Remove(r, up.Row); err != nil {
		return memberRef{}, false, err
	}
	s.updates++
	ref, ok := s.memberOf[up.Rel]
	return ref, ok, nil
}

// applyOne applies a single update through delta propagation, compacting
// afterwards when the tombstone watermark is crossed. When the session is
// attached to a PlanStore the update consumes one shared stream position:
// every exit path except a propagation failure advances the cursor
// (validation errors and selection rejections are deterministic across
// subscribers fed the same stream, so positions stay aligned); a
// propagation error may leave a shared table half-patched and poisons the
// whole store instead.
func (s *Session) applyOne(up Update) error {
	if s.store != nil {
		if err := s.store.fail; err != nil {
			return fmt.Errorf("incremental: plan store poisoned: %w", err)
		}
	}
	if s.updateSecs != nil {
		s.updatesTotal.Inc()
		defer s.updateSecs.ObserveSince(time.Now())
	}
	ref, ok, err := s.applyRow(up)
	if err != nil {
		s.advanceShared()
		return err
	}
	if !ok {
		s.advanceShared()
		return nil // relation not referenced by the query: |Q(D)| unaffected
	}
	md := s.sol.Units[ref.ui].Members[ref.mi]
	if keep := s.selFn[up.Rel]; keep != nil && !keep(up.Row) {
		s.advanceShared()
		return nil // rows failing the atom's selection never enter the passes
	}
	delta := int64(1)
	if !up.Insert {
		delta = -1
	}
	proj := make(relation.Tuple, len(md.EffVars))
	for k, x := range s.effPos[up.Rel] {
		proj[k] = up.Row[x]
	}
	dbase := &relation.Counted{Attrs: md.EffVars, Rows: []relation.Tuple{proj}, Cnt: []int64{delta}}
	if err := s.propagate(ref, dbase); err != nil {
		s.poisonStore(err)
		return err
	}
	s.advanceShared()
	return s.maybeCompact()
}

// TombstoneRatio reports the fraction of maintained rows currently sitting
// at count zero — the quantity RebuildTombstoneRatio watches.
func (s *Session) TombstoneRatio() float64 {
	total := s.tables.totalRows()
	if total == 0 {
		return 0
	}
	return float64(s.tables.tombstones()) / float64(total)
}

// maybeCompact rebuilds the session when the tombstone watermark is set and
// crossed. A rebuild resets the tally, so the next trigger needs a fresh
// accumulation of deletes — the watermark cannot thrash.
func (s *Session) maybeCompact() error {
	if s.opts.RebuildTombstoneRatio <= 0 || s.tables.tombstones() == 0 {
		return nil
	}
	if s.TombstoneRatio() < s.opts.RebuildTombstoneRatio {
		return nil
	}
	return s.rebuild()
}

// Count returns |Q(D)| from the maintained component totals, in O(1).
func (s *Session) Count() int64 { return s.sol.CountTotal() }

// LS assembles the current local-sensitivity result from the maintained
// group-table maxima. The returned Result matches the one-shot
// core.LocalSensitivity in LS, Count, and every per-relation sensitivity;
// when maxima tie, the reported witness tuple may differ, and wildcard
// positions of a witness hold any feasible value rather than a value
// copied from a stored row.
func (s *Session) LS() (*core.Result, error) {
	sol := s.sol
	res := &core.Result{
		PerRelation:   make(map[string]*core.TupleResult),
		Count:         sol.CountTotal(),
		DoublyAcyclic: s.doublyAcyclic,
		MaxDegree:     s.maxDegree,
	}
	for ui, u := range sol.Units {
		for mi, md := range u.Members {
			if md.Skip {
				continue
			}
			gts := s.memberGts[memberRef{ui, mi}]
			maxima := make([]core.GroupMax, 0, len(gts))
			for _, st := range gts {
				row, cnt := st.maxRow()
				maxima = append(maxima, core.GroupMax{Attrs: st.table.Attrs, Row: row, Cnt: cnt})
			}
			tr, err := sol.TupleResultFromMaxima(ui, md, maxima, s.inDB)
			if err != nil {
				return nil, err
			}
			res.PerRelation[md.Atom.Relation] = tr
			if tr.Sensitivity > res.LS {
				res.LS = tr.Sensitivity
				res.Best = tr
			}
		}
	}
	return res, nil
}

// inDB answers candidate membership from the maintained base projection:
// the non-wildcard positions of a candidate are exactly its effective
// variables, so membership is one hash probe. Candidates with a wildcard
// effective variable (possible only under top-k, which sessions reject,
// but kept for safety) fall back to the scanning lookup.
func (s *Session) inDB(md *core.Member, values relation.Tuple, wildcard []bool) (relation.Tuple, bool) {
	pos := s.effPos[md.Atom.Relation]
	key := make(relation.Tuple, len(pos))
	for k, x := range pos {
		if wildcard[x] {
			return core.DBLookup(s.q, s.db)(md, values, wildcard)
		}
		key[k] = values[x]
	}
	cnt, ok := md.Base.Probe(key)
	return values, ok && cnt > 0
}

// SensitivityFn returns an evaluator of δ(t, Q, D) for tuples of the named
// relation, answered from the maintained multiplicity-table factors. The
// evaluator reads the live session state: it reflects updates applied after
// it was created, and must not race with them. It is invalidated by a full
// rebuild (Rebuild, or a bulk Apply) — request a fresh one afterwards.
// Skipped relations have no maintained factors; open the session without
// SkipRelations to evaluate them.
func (s *Session) SensitivityFn(rel string) (core.SensitivityFn, error) {
	ref, ok := s.memberOf[rel]
	if !ok {
		return nil, fmt.Errorf("incremental: query has no atom over relation %s", rel)
	}
	md := s.sol.Units[ref.ui].Members[ref.mi]
	if md.Skip {
		return nil, fmt.Errorf("incremental: relation %s is skipped; open the session without SkipRelations to evaluate it", rel)
	}
	varPos := make(map[string]int, len(md.Atom.Vars))
	for i, v := range md.Atom.Vars {
		varPos[v] = i
	}
	gts := s.memberGts[ref]
	groups := make([]core.ProbeGroup, 0, len(gts))
	for _, st := range gts {
		g := core.ProbeGroup{Table: st.table}
		for _, a := range st.table.Attrs {
			g.VarPos = append(g.VarPos, varPos[a])
		}
		groups = append(groups, g)
	}
	// The closure captures the live session state: maintained group tables
	// (patched in place) and the current cross-component scale.
	return core.ProbeEvaluator(len(md.Atom.Vars), s.selFn[rel],
		func() int64 { return s.sol.ScaleFor(ref.ui) }, groups), nil
}

// Has reports whether the session's database currently holds at least one
// occurrence of row in the named relation — one hash probe against the
// maintained row multiset. The serving layer uses it to replay skipped
// deletes consistently when catching a freshly-opened session up to the
// live epoch.
func (s *Session) Has(rel string, row relation.Tuple) bool {
	rs := s.rowsets[rel]
	return rs != nil && rs.Contains(row)
}

// Rows returns the current rows of the named relation (a live, read-only
// view of the session's database), or nil for unknown relations.
func (s *Session) Rows(rel string) []relation.Tuple {
	r := s.db.Relation(rel)
	if r == nil {
		return nil
	}
	return r.Rows
}

// Rebuild discards all maintained state and recomputes it from the current
// session database, exactly as a fresh Open would. Long update streams can
// call it occasionally to shed tombstone rows.
func (s *Session) Rebuild() error { return s.rebuild() }

func (s *Session) rebuild() error {
	// A rebuild recomputes everything from the private database clone, so
	// an attached session first drops its shared subscriptions (the
	// no-sharing fallback): correctness never depends on staying attached.
	s.ReleaseShared()
	s.rebuilds++
	start := time.Now()
	if s.rebuildsTotal != nil {
		s.rebuildsTotal.Inc()
		defer s.rebuildSecs.ObserveSince(start)
	}
	err := s.build()
	if s.opts.Logger != nil {
		if err != nil {
			s.opts.Logger.Error("session rebuild failed",
				"query", s.q.Name, "rebuilds", s.rebuilds, "took", time.Since(start), "err", err)
		} else {
			s.opts.Logger.Info("session rebuild",
				"query", s.q.Name, "rebuilds", s.rebuilds, "rows", s.db.Size(), "took", time.Since(start))
		}
	}
	return err
}

// Updates returns the number of updates applied since Open.
func (s *Session) Updates() int { return s.updates }

// Rebuilds returns how many full rebuilds the session has performed.
func (s *Session) Rebuilds() int { return s.rebuilds }

// Query returns the session's pinned query.
func (s *Session) Query() *query.Query { return s.q }
