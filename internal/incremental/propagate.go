package incremental

// Delta propagation. A single-tuple update to relation R, projected onto
// R's effective variables, flows through the retained solver state in five
// phases, each reusing a cached relation.ExpandPlan so the per-update work
// is hash lookups only:
//
//  1. R's base projection is patched (it is a multiplicity-table piece for
//     co-members of R's bag).
//  2. R's unit relation absorbs the delta — identical to the base for
//     singleton units; for GHD bags the delta joins against the other
//     members of the bag.
//  3. Botjoins recompute along the leaf-to-root path through R's node:
//     Δ⊥(p) = γ_conn(p)( Δ⊥(child) ⋈ rel(p) ⋈ {⊥(other children)} ).
//     Topjoins on that path are provably unchanged, and the component
//     total is re-read from the root botjoin.
//  4. Topjoins fan out everywhere else: the children of R's node (their
//     parent relation changed) and the siblings of every path node (one
//     sibling botjoin changed) seed a BFS that descends while deltas stay
//     non-empty. Each affected topjoin has exactly one changed input,
//     because a single-tuple delta flows along a tree — so the multilinear
//     delta rule needs no operand ordering.
//  5. Every multiplicity-table factor group fed by a changed table absorbs
//     the corresponding delta, and its running maximum is adjusted (or
//     lazily invalidated when the argmax lost count).

import (
	"strings"

	"tsens/internal/query"
	"tsens/internal/relation"
)

// pieceRef addresses one piece of one maintained factor group.
type pieceRef struct {
	st    *gtState
	piece int
}

// edgeKey caches one compiled plan per (patched table, changed input).
type edgeKey struct {
	tgt, src *relation.Counted
}

// tableSet owns the shared RowIndexes of every maintained table, keeps them
// synced when deltas append rows, and tracks which maintained rows currently
// sit at count zero (tombstones) so sessions can trigger compaction from a
// watermark instead of leaving Rebuild() to the caller.
type tableSet struct {
	byTable map[*relation.Counted]map[string]*relation.RowIndex
	zeroAt  map[*relation.Counted]map[int]struct{} // rows currently at count 0
	tracked map[*relation.Counted]struct{}         // every maintained table
	zeroes  int                                    // Σ len(zeroAt[*])

	// shared maps hash-consed tables (see shared.go) to their index homes.
	// The map itself is session-local — no other session ever reads it —
	// but the sharedTabs values are owned by the store entries, so every
	// subscriber compiles plans against the same indexes and whichever one
	// leads a patch syncs them for all. Shared tables are excluded from the
	// tombstone tally: compaction is a private-session affair (it rebuilds),
	// and a shared table outlives any one subscriber's watermark.
	shared map[*relation.Counted]*sharedTabs
}

func newTableSet() *tableSet {
	return &tableSet{
		byTable: make(map[*relation.Counted]map[string]*relation.RowIndex),
		zeroAt:  make(map[*relation.Counted]map[int]struct{}),
		tracked: make(map[*relation.Counted]struct{}),
	}
}

// track registers a maintained table at build time so it counts toward the
// tombstone-ratio denominator whether or not an update has patched it yet —
// a denominator of only-patched tables would let deletes confined to one
// small component of a disconnected query cross the watermark (and rebuild)
// after a handful of updates, regardless of how large the rest of the
// maintained state is.
func (ts *tableSet) track(c *relation.Counted) {
	if c != nil {
		ts.tracked[c] = struct{}{}
	}
}

// tombstones returns how many maintained rows currently hold count zero.
func (ts *tableSet) tombstones() int { return ts.zeroes }

// totalRows returns the number of rows across every maintained table, the
// denominator of the tombstone-ratio watermark.
func (ts *tableSet) totalRows() int {
	n := 0
	for c := range ts.tracked {
		n += len(c.Rows)
	}
	return n
}

// indexFor is the relation.IndexProvider handed to CompileExpand. Shared
// tables resolve through their store-owned index home so all subscribers
// probe (and the patching lead syncs) one set of indexes.
func (ts *tableSet) indexFor(c *relation.Counted, attrs []string) (*relation.RowIndex, error) {
	if tabs, ok := ts.shared[c]; ok {
		return tabs.index(c, attrs)
	}
	m := ts.byTable[c]
	if m == nil {
		m = make(map[string]*relation.RowIndex)
		ts.byTable[c] = m
	}
	key := strings.Join(attrs, "\x1f")
	if ix, ok := m[key]; ok {
		return ix, nil
	}
	ix, err := relation.NewRowIndex(c, attrs)
	if err != nil {
		return nil, err
	}
	m[key] = ix
	return ix, nil
}

// apply patches c with d, re-syncs c's secondary indexes, and folds the
// zero-count transitions of the changed rows into the tombstone tally.
func (ts *tableSet) apply(c, d *relation.Counted) ([]int, error) {
	changed, err := c.ApplyDelta(d)
	if err != nil {
		return nil, err
	}
	if tabs, ok := ts.shared[c]; ok {
		tabs.sync()
		return changed, nil
	}
	for _, ix := range ts.byTable[c] {
		ix.Sync()
	}
	ts.tracked[c] = struct{}{}
	zs := ts.zeroAt[c]
	for _, r := range changed {
		_, was := zs[r]
		if now := c.Cnt[r] == 0; now == was {
			continue
		} else if now {
			if zs == nil {
				zs = make(map[int]struct{})
				ts.zeroAt[c] = zs
			}
			zs[r] = struct{}{}
			ts.zeroes++
		} else {
			delete(zs, r)
			ts.zeroes--
		}
	}
	return changed, nil
}

// gtState maintains one factor group of one member's multiplicity table:
// the patched group table, its selection filter, and a lazily-revalidated
// running maximum.
type gtState struct {
	ref    memberRef
	pieces []*relation.Counted
	table  *relation.Counted
	keepFn func(relation.Tuple) bool
	plans  []*relation.ExpandPlan // per changed-piece, compiled on demand
	argmax int
	max    int64
	valid  bool
}

// note folds freshly patched rows into the running maximum; a count drop on
// the current argmax schedules a lazy rescan.
func (g *gtState) note(changed []int) {
	if !g.valid {
		return
	}
	for _, r := range changed {
		cnt := g.table.Cnt[r]
		if g.keepFn != nil && !g.keepFn(g.table.Rows[r]) {
			continue
		}
		if cnt > g.max {
			g.argmax, g.max = r, cnt
			continue
		}
		if r == g.argmax && cnt < g.max {
			g.valid = false
			return
		}
	}
}

// maxRow returns the selection-filtered maximum row and count, rescanning
// the table only when the cached maximum was invalidated.
func (g *gtState) maxRow() (relation.Tuple, int64) {
	if !g.valid {
		g.argmax, g.max = -1, 0
		for r, cnt := range g.table.Cnt {
			if cnt <= g.max {
				continue
			}
			if g.keepFn != nil && !g.keepFn(g.table.Rows[r]) {
				continue
			}
			g.argmax, g.max = r, cnt
		}
		g.valid = true
	}
	if g.argmax < 0 || g.max <= 0 {
		return nil, 0
	}
	return g.table.Rows[g.argmax], g.max
}

// edgeDelta evaluates γ_keep(delta ⋈ others) through a plan cached per
// (target table, changed input). The plan compiles once and survives
// in-place patches of every operand.
func (s *Session) edgeDelta(tgt, src, delta *relation.Counted, others []*relation.Counted, keep []string) (*relation.Counted, error) {
	k := edgeKey{tgt, src}
	plan, ok := s.plans[k]
	if !ok {
		var err error
		plan, err = relation.CompileExpand(delta.Attrs, others, keep, s.tables.indexFor)
		if err != nil {
			return nil, err
		}
		s.plans[k] = plan
	}
	return plan.Run(delta)
}

// propagate pushes a member-base delta through phases 1–5 (see the file
// comment). dbase holds the projected tuple with a ±1 count.
func (s *Session) propagate(ref memberRef, dbase *relation.Counted) error {
	sol := s.sol
	u := sol.Units[ref.ui]
	md := u.Members[ref.mi]
	node := sol.Tree.Nodes[ref.ui]

	type change struct {
		table, delta *relation.Counted
	}
	var pieceChanges []change

	// Lead/follower election for shared state (all no-ops for a private
	// session): for each shared entry on this update's path, the first
	// subscriber to apply stream position s.pos computes the delta, patches
	// the shared table, and memoizes the delta (lead); every later
	// subscriber finds the entry already advanced past its cursor and
	// replays the memo without touching the table (follower). Election is
	// per entry, not per store — a session can lead one node and follow
	// another when their subscriber sets differ — and is stable across the
	// whole propagation because cursors only advance after it completes.
	sb := s.sharedBaseOf(ref)
	ln := s.sharedNodeOf(ref.ui)
	lnLead := ln == nil || ln.pos == s.pos

	// Phase 1: member base.
	if sb == nil || sb.pos == s.pos {
		if _, err := s.tables.apply(md.Base, dbase); err != nil {
			return err
		}
	}
	pieceChanges = append(pieceChanges, change{md.Base, dbase})

	// Phase 2: unit relation.
	drel := dbase
	if !lnLead {
		if e := ln.memo[s.pos]; e != nil && e.drel != nil {
			drel = e.drel
		} else {
			drel = &relation.Counted{Attrs: u.Vars} // lead saw no bag survivors
		}
	} else if u.Rel != md.Base {
		others := make([]*relation.Counted, 0, len(u.Members)-1)
		for _, m2 := range u.Members {
			if m2 != md {
				others = append(others, m2.Base)
			}
		}
		var err error
		drel, err = s.edgeDelta(u.Rel, md.Base, dbase, others, u.Vars)
		if err != nil {
			return err
		}
		if len(drel.Rows) > 0 {
			if _, err := s.tables.apply(u.Rel, drel); err != nil {
				return err
			}
		}
	}
	if ln != nil && lnLead && len(drel.Rows) > 0 {
		ln.memoSet(s.pos, drel, nil)
	}

	// Phase 3: botjoins up the path.
	type botChange struct {
		idx   int
		delta *relation.Counted
	}
	var botDeltas []botChange
	if len(drel.Rows) > 0 {
		var dbot *relation.Counted
		if lnLead {
			childBots := make([]*relation.Counted, len(node.Children))
			for k, c := range node.Children {
				childBots[k] = sol.Bot[c.Index]
			}
			var err error
			dbot, err = s.edgeDelta(sol.Bot[ref.ui], u.Rel, drel, childBots, node.ConnectorVars())
			if err != nil {
				return err
			}
		} else if e := ln.memo[s.pos]; e != nil && e.dbot != nil {
			dbot = e.dbot
		} else {
			dbot = &relation.Counted{Attrs: node.ConnectorVars()}
		}
		child, dchild := node, dbot
		for len(dchild.Rows) > 0 {
			if sn := s.sharedNodeOf(child.Index); sn == nil || sn.pos == s.pos {
				if _, err := s.tables.apply(sol.Bot[child.Index], dchild); err != nil {
					return err
				}
				if sn != nil {
					sn.memoSet(s.pos, nil, dchild)
				}
			}
			pieceChanges = append(pieceChanges, change{sol.Bot[child.Index], dchild})
			botDeltas = append(botDeltas, botChange{child.Index, dchild})
			p := child.Parent
			if p == nil {
				break
			}
			if sn := s.sharedNodeOf(p.Index); sn != nil && sn.pos != s.pos {
				// The parent's lead already climbed through here this
				// position: replay its memo (absence = the climb died at
				// the parent, for every subscriber alike).
				e := sn.memo[s.pos]
				if e == nil || e.dbot == nil {
					break
				}
				child, dchild = p, e.dbot
				continue
			}
			operands := []*relation.Counted{sol.Units[p.Index].Rel}
			for _, c := range p.Children {
				if c != child {
					operands = append(operands, sol.Bot[c.Index])
				}
			}
			dnext, err := s.edgeDelta(sol.Bot[p.Index], sol.Bot[child.Index], dchild, operands, p.ConnectorVars())
			if err != nil {
				return err
			}
			child, dchild = p, dnext
		}
		// Re-read the component total from the root botjoin (O(1): it is
		// grouped by the empty connector). Unchanged if the climb stopped.
		rootIdx := sol.Comp[ref.ui]
		sol.Totals[rootIdx] = sol.Bot[rootIdx].SumCnt()
	}

	// Phases 4–5 maintain the residual (topjoin + multiplicity-factor)
	// state. When the whole-plan residue is shared, its lead patches it
	// once on behalf of every subscriber and followers are already done —
	// the collapse that makes N identical registered queries cost roughly
	// one query's propagation per update.
	if s.sres != nil && s.sres.Val.pos != s.pos {
		return nil
	}

	// Phase 4: topjoins, BFS from the seeds.
	type topJob struct {
		node       *query.Node
		src, delta *relation.Counted
	}
	var queue []topJob
	if len(drel.Rows) > 0 {
		for _, c := range node.Children {
			queue = append(queue, topJob{c, u.Rel, drel})
		}
	}
	for _, bc := range botDeltas {
		bn := sol.Tree.Nodes[bc.idx]
		for _, sib := range bn.Siblings() {
			queue = append(queue, topJob{sib, sol.Bot[bc.idx], bc.delta})
		}
	}
	for len(queue) > 0 {
		job := queue[0]
		queue = queue[1:]
		i := job.node.Index
		parent := job.node.Parent
		var others []*relation.Counted
		if p := sol.Units[parent.Index].Rel; p != job.src {
			others = append(others, p)
		}
		if t := sol.Top[parent.Index]; t != nil && t != job.src {
			others = append(others, t)
		}
		for _, sib := range job.node.Siblings() {
			if b := sol.Bot[sib.Index]; b != job.src {
				others = append(others, b)
			}
		}
		dtop, err := s.edgeDelta(sol.Top[i], job.src, job.delta, others, job.node.ConnectorVars())
		if err != nil {
			return err
		}
		if len(dtop.Rows) == 0 {
			continue
		}
		if _, err := s.tables.apply(sol.Top[i], dtop); err != nil {
			return err
		}
		pieceChanges = append(pieceChanges, change{sol.Top[i], dtop})
		for _, c := range job.node.Children {
			queue = append(queue, topJob{c, sol.Top[i], dtop})
		}
	}

	// Phase 5: multiplicity-table factors. Each factor group sees at most
	// one changed piece per single-tuple update (deltas flow along a tree),
	// so the multilinear delta rule applies piece by piece.
	for _, ch := range pieceChanges {
		for _, ref2 := range s.deps[ch.table] {
			st := ref2.st
			plan := st.plans[ref2.piece]
			if plan == nil {
				others := make([]*relation.Counted, 0, len(st.pieces)-1)
				for pi, p := range st.pieces {
					if pi != ref2.piece {
						others = append(others, p)
					}
				}
				var err error
				plan, err = relation.CompileExpand(ch.delta.Attrs, others, st.table.Attrs, s.tables.indexFor)
				if err != nil {
					return err
				}
				st.plans[ref2.piece] = plan
			}
			dgt, err := plan.Run(ch.delta)
			if err != nil {
				return err
			}
			if len(dgt.Rows) == 0 {
				continue
			}
			changed, err := s.tables.apply(st.table, dgt)
			if err != nil {
				return err
			}
			st.note(changed)
		}
	}
	return nil
}
