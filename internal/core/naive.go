package core

import (
	"fmt"

	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/yannakakis"
)

// NaiveOptions bounds the brute-force oracle.
type NaiveOptions struct {
	// MaxCandidates caps the number of query re-evaluations (deletions plus
	// representative-domain insertions). Zero means 200000.
	MaxCandidates int
}

// NaiveLocalSensitivity implements the polynomial-data-complexity algorithm
// of Theorem 3.1: it re-evaluates |Q| once per deletion of an existing
// tuple and once per insertion of every tuple in the representative domain
// (Definition 3.1). It is exponential in the query size and is used as the
// correctness oracle for TSens and as the "repeat Yannakakis" baseline of
// Sections 4.1 and 5.2.
func NaiveLocalSensitivity(q *query.Query, db *relation.Database, opts NaiveOptions) (*Result, error) {
	if opts.MaxCandidates == 0 {
		opts.MaxCandidates = 200000
	}
	if _, err := q.Bind(db); err != nil {
		return nil, err
	}
	base, err := yannakakis.BruteCount(q, db)
	if err != nil {
		return nil, err
	}
	res := &Result{PerRelation: make(map[string]*TupleResult), Count: base}
	budget := opts.MaxCandidates

	consider := func(a query.Atom, t relation.Tuple, sens int64, inDB bool) {
		tr, ok := res.PerRelation[a.Relation]
		if !ok {
			tr = &TupleResult{Relation: a.Relation, Vars: append([]string(nil), a.Vars...), Sensitivity: -1}
			res.PerRelation[a.Relation] = tr
		}
		if sens > tr.Sensitivity {
			tr.Sensitivity = sens
			tr.Values = t.Clone()
			tr.Wildcard = make([]bool, len(t))
			tr.InDatabase = inDB
		}
		if sens > res.LS {
			res.LS = sens
			res.Best = tr
		}
	}

	for _, a := range q.Atoms {
		r := db.Relation(a.Relation)

		// Downward sensitivity: delete one copy of each distinct tuple.
		distinct := relation.FromRelation(r)
		for _, t := range distinct.Rows {
			if budget--; budget < 0 {
				return nil, fmt.Errorf("core: naive oracle exceeded the candidate budget")
			}
			mod := db.Clone()
			if err := removeOne(mod.Relation(a.Relation), t); err != nil {
				return nil, err
			}
			c, err := yannakakis.BruteCount(q, mod)
			if err != nil {
				return nil, err
			}
			consider(a, t, base-c, true)
		}

		// Upward sensitivity: insert each representative-domain tuple.
		domains, err := representativeDomains(q, db, a)
		if err != nil {
			return nil, err
		}
		err = enumerate(domains, func(t relation.Tuple) error {
			if budget--; budget < 0 {
				return fmt.Errorf("core: naive oracle exceeded the candidate budget")
			}
			mod := db.Clone()
			mr := mod.Relation(a.Relation)
			mr.Rows = append(mr.Rows, t.Clone())
			c, err := yannakakis.BruteCount(q, mod)
			if err != nil {
				return err
			}
			consider(a, t, c-base, tupleExists(r, t))
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	// Relations with nothing considered (empty and with empty domains)
	// still get an explicit zero entry.
	for _, a := range q.Atoms {
		if tr, ok := res.PerRelation[a.Relation]; !ok || tr.Sensitivity < 0 {
			res.PerRelation[a.Relation] = &TupleResult{Relation: a.Relation, Vars: append([]string(nil), a.Vars...)}
		}
	}
	return res, nil
}

// representativeDomains returns, for each variable of atom a, its
// representative domain with respect to that relation (Definition 3.1): the
// intersection of the active domains of every other atom containing the
// variable, or a single arbitrary active value when the variable occurs
// nowhere else.
func representativeDomains(q *query.Query, db *relation.Database, a query.Atom) ([][]int64, error) {
	out := make([][]int64, len(a.Vars))
	for i, v := range a.Vars {
		var dom []int64
		first := true
		for _, other := range q.Atoms {
			if other.Relation == a.Relation {
				continue
			}
			pos := -1
			for j, w := range other.Vars {
				if w == v {
					pos = j
				}
			}
			if pos < 0 {
				continue
			}
			r := db.Relation(other.Relation)
			act, err := r.ActiveDomain(r.Attrs[pos])
			if err != nil {
				return nil, err
			}
			if first {
				dom, first = act, false
			} else {
				dom = intersectSorted(dom, act)
			}
		}
		if first {
			// Variable occurs only in a: one arbitrary value from a's own
			// active domain, or 0 when the relation is empty.
			r := db.Relation(a.Relation)
			act, err := r.ActiveDomain(r.Attrs[i])
			if err != nil {
				return nil, err
			}
			if len(act) > 0 {
				dom = act[:1]
			} else {
				dom = []int64{0}
			}
		}
		out[i] = dom
	}
	return out, nil
}

func intersectSorted(a, b []int64) []int64 {
	var out []int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// enumerate calls f for every tuple of the cross product of domains.
func enumerate(domains [][]int64, f func(relation.Tuple) error) error {
	for _, d := range domains {
		if len(d) == 0 {
			return nil
		}
	}
	t := make(relation.Tuple, len(domains))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(domains) {
			return f(t)
		}
		for _, v := range domains[i] {
			t[i] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0)
}

// removeOne deletes a single copy of t from r.
func removeOne(r *relation.Relation, t relation.Tuple) error {
	for i, row := range r.Rows {
		if row.Equal(t) {
			r.Rows = append(r.Rows[:i], r.Rows[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("core: tuple %v not present in %s", t, r.Name)
}

func tupleExists(r *relation.Relation, t relation.Tuple) bool {
	for _, row := range r.Rows {
		if row.Equal(t) {
			return true
		}
	}
	return false
}
