package core

import (
	"fmt"
	"math/rand"
	"testing"

	"tsens/internal/query"
	"tsens/internal/relation"
)

func TestDownwardFigure3(t *testing.T) {
	q, db := figure3Query(), figure3DB()
	res, err := DownwardLocalSensitivity(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The most damaging deletion in Figure 3 is R3(c1,d1): each copy
	// carries ⊤(c1)·⊥(d1) = 7·3 = 21 outputs.
	if res.LS != 21 {
		t.Fatalf("downward LS=%d, want 21", res.LS)
	}
	if !res.Best.InDatabase {
		t.Fatal("downward best must be an existing tuple")
	}
	// Deleting it must actually drop the count by 21.
	mod := db.Clone()
	if err := removeOne(mod.Relation(res.Best.Relation), res.Best.Values); err != nil {
		t.Fatal(err)
	}
	before, _ := naiveCount(q, db)
	after, _ := naiveCount(q, mod)
	if before-after != res.LS {
		t.Fatalf("deletion changed count by %d, reported %d", before-after, res.LS)
	}
}

func TestDownwardNeverExceedsOverallLS(t *testing.T) {
	q, db := figure1Query(), figure1DB()
	down, err := DownwardLocalSensitivity(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := LocalSensitivity(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if down.LS > full.LS {
		t.Fatalf("downward %d exceeds overall %d", down.LS, full.LS)
	}
	// Figure 1: overall LS is 4 via an insertion; the best deletion only
	// removes the single output tuple.
	if down.LS != 1 {
		t.Fatalf("downward LS=%d, want 1", down.LS)
	}
	if down.Count != full.Count {
		t.Fatalf("counts disagree: %d vs %d", down.Count, full.Count)
	}
}

func TestDownwardSkipRelations(t *testing.T) {
	q, db := figure3Query(), figure3DB()
	res, err := DownwardLocalSensitivity(q, db, Options{SkipRelations: []string{"R3"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.PerRelation["R3"]; ok {
		t.Fatal("skipped relation reported")
	}
}

// Property: downward LS equals the best per-row re-evaluation drop.
func TestPropertyDownwardAgainstReEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		var atoms []query.Atom
		var rels []*relation.Relation
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("R%d", i)
			atoms = append(atoms, query.Atom{Relation: name,
				Vars: []string{fmt.Sprintf("V%d", i), fmt.Sprintf("V%d", i+1)}})
			rels = append(rels, randRelation(rng, name, []string{"x", "y"}, 5, 3))
		}
		q := query.MustNew("q", atoms, nil)
		db := relation.MustNewDatabase(rels...)
		res, err := DownwardLocalSensitivity(q, db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		base, err := naiveCount(q, db)
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for _, a := range atoms {
			distinct := relation.FromRelation(db.Relation(a.Relation))
			for _, row := range distinct.Rows {
				mod := db.Clone()
				if err := removeOne(mod.Relation(a.Relation), row); err != nil {
					t.Fatal(err)
				}
				after, err := naiveCount(q, mod)
				if err != nil {
					t.Fatal(err)
				}
				if base-after > want {
					want = base - after
				}
			}
		}
		if res.LS != want {
			t.Fatalf("trial %d: downward LS=%d, re-evaluation says %d", trial, res.LS, want)
		}
	}
}
