package core

import (
	"fmt"

	"tsens/internal/query"
	"tsens/internal/relation"
)

// LocalSensitivity computes LS(Q, D) and the most sensitive tuple for a
// full conjunctive query without self-joins (Definition 2.3). Acyclic
// queries run directly on their GYO join tree (Algorithm 2); cyclic queries
// require Options.Decomposition (Section 5.4).
func LocalSensitivity(q *query.Query, db *relation.Database, opts Options) (*Result, error) {
	s, err := NewSolver(q, db, opts)
	if err != nil {
		return nil, err
	}
	return s.Result(db)
}

// Result assembles the local-sensitivity outcome from the solver's current
// pass state, scanning every non-skipped member's multiplicity table.
func (s *Solver) Result(db *relation.Database) (*Result, error) {
	res := &Result{
		PerRelation:   make(map[string]*TupleResult),
		Count:         s.CountTotal(),
		DoublyAcyclic: s.Tree.IsDoublyAcyclic(),
		MaxDegree:     s.Tree.MaxDegree(),
		Approximate:   s.Opts.TopK > 0,
	}
	for ui := range s.Units {
		for _, md := range s.Units[ui].Members {
			if md.Skip {
				continue
			}
			tr, err := s.MostSensitive(ui, md, db)
			if err != nil {
				return nil, err
			}
			res.PerRelation[md.Atom.Relation] = tr
			if tr.Sensitivity > res.LS {
				res.LS = tr.Sensitivity
				res.Best = tr
			}
		}
	}
	return res, nil
}

// Pieces gathers the operands of the multiplicity-table join for a member
// of unit ui: the unit's topjoin, the botjoins of its children, and — for
// GHD bags — the base relations of the other members of the same bag
// (Equation 6 extended per Section 5.4).
func (s *Solver) Pieces(ui int, md *Member) []*relation.Counted {
	node := s.Tree.Nodes[ui]
	var out []*relation.Counted
	if node.Parent != nil {
		out = append(out, s.Top[ui])
	}
	for _, c := range node.Children {
		out = append(out, s.Bot[c.Index])
	}
	for _, m2 := range s.Units[ui].Members {
		if m2 != md {
			out = append(out, m2.Base)
		}
	}
	return out
}

// GroupPieces partitions pieces into connected components by shared
// attributes. Within a component the join must be materialized; across
// components the join is a cross product, so maxima multiply — the
// factorization that makes doubly-acyclic queries near-linear (Section 5.3).
func GroupPieces(pieces []*relation.Counted) [][]*relation.Counted {
	n := len(pieces)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if len(relation.Intersect(pieces[i].Attrs, pieces[j].Attrs)) > 0 {
				parent[find(i)] = find(j)
			}
		}
	}
	buckets := make(map[int][]*relation.Counted)
	var order []int
	for i, p := range pieces {
		r := find(i)
		if _, ok := buckets[r]; !ok {
			order = append(order, r)
		}
		buckets[r] = append(buckets[r], p)
	}
	out := make([][]*relation.Counted, 0, len(order))
	for _, r := range order {
		out = append(out, buckets[r])
	}
	return out
}

// orderPieces fixes the join order of one connected group: exact pieces
// first, greedily preferring operands connected to the accumulated schema;
// approximate (top-k truncated) pieces last, each checked to have its
// attributes contained in the accumulated join so its Default applies as a
// sound lookup (see relation.Join). The second return is the accumulated
// attribute union, i.e. the schema of the joined group.
func orderPieces(group []*relation.Counted) ([]*relation.Counted, []string, error) {
	var exact, approx []*relation.Counted
	for _, p := range group {
		if p.Default > 0 {
			approx = append(approx, p)
		} else {
			exact = append(exact, p)
		}
	}
	if len(exact) == 0 {
		if len(approx) == 1 {
			return approx, approx[0].Attrs, nil
		}
		return nil, nil, fmt.Errorf("core: top-k approximation cannot join %d approximate pieces", len(approx))
	}
	ordered := relation.GreedyJoinOrder(exact)
	var attrs []string
	for _, p := range ordered {
		attrs = relation.Union(attrs, p.Attrs)
	}
	for _, p := range approx {
		if !relation.ContainsAll(attrs, p.Attrs) {
			return nil, nil, fmt.Errorf("core: top-k approximation not applicable: piece over %v not covered by %v", p.Attrs, attrs)
		}
		ordered = append(ordered, p)
	}
	return ordered, attrs, nil
}

// GroupTable reduces one joined group to its contribution to the
// multiplicity table of a target with variables targetVars: group by the
// target variables it covers, summing the rest away. The final join is
// fused with the group-by, so the full-width group join is materialized
// only up to the second-to-last operand.
func GroupTable(group []*relation.Counted, targetVars []string) (*relation.Counted, error) {
	ordered, attrs, err := orderPieces(group)
	if err != nil {
		return nil, err
	}
	keep := relation.Intersect(attrs, targetVars)
	if len(ordered) == 1 {
		joined := ordered[0]
		if joined.Default > 0 && len(keep) != len(joined.Attrs) {
			return nil, fmt.Errorf("core: top-k approximation not applicable: cannot sum a truncated join over %v", relation.Minus(joined.Attrs, keep))
		}
		return joined.GroupBy(keep)
	}
	return relation.JoinGroupChain(ordered[0], ordered[1:], keep)
}

// PredFilter returns a row filter implementing the member's selection
// predicates over the given attributes, or nil when none apply (Section
// 5.4: tuples failing a selection have zero sensitivity).
func (md *Member) PredFilter(attrs []string) func(relation.Tuple) bool {
	type bound struct {
		pos int
		op  query.Op
		val int64
	}
	var bounds []bound
	for _, p := range md.Preds {
		for i, a := range attrs {
			if a == p.Var {
				bounds = append(bounds, bound{i, p.Op, p.Value})
			}
		}
	}
	if len(bounds) == 0 {
		return nil
	}
	return func(t relation.Tuple) bool {
		for _, b := range bounds {
			if !b.op.Eval(t[b.pos], b.val) {
				return false
			}
		}
		return true
	}
}

// filterByPreds drops rows violating md's selection predicates on the
// covered attributes.
func filterByPreds(c *relation.Counted, md *Member) *relation.Counted {
	keep := md.PredFilter(c.Attrs)
	if keep == nil {
		return c
	}
	return c.Filter(keep)
}

// GroupMax is the selection-filtered maximum of one factor group of a
// multiplicity table: the group's attributes, its most frequent row, and
// that row's count. A nil Row with positive Cnt means the top-k truncation
// Default won (any unlisted value achieves the bound).
type GroupMax struct {
	Attrs []string
	Row   relation.Tuple
	Cnt   int64
}

// InDBFunc reports whether a candidate tuple (wildcard positions free)
// currently exists in its relation, returning the row to report when found.
// It abstracts the database membership check so stateful callers can answer
// it from maintained indexes instead of scanning base relations.
type InDBFunc func(md *Member, values relation.Tuple, wildcard []bool) (relation.Tuple, bool)

// DBLookup returns the InDBFunc that scans the base relations of db,
// replacing the candidate with the concrete matching row.
func DBLookup(q *query.Query, db *relation.Database) InDBFunc {
	return func(md *Member, values relation.Tuple, wildcard []bool) (relation.Tuple, bool) {
		r := db.Relation(md.Atom.Relation)
		if r == nil {
			return nil, false
		}
		keep := q.ApplySelections(md.Atom)
		for _, row := range r.Rows {
			if keep != nil && !keep(row) {
				continue
			}
			match := true
			for i := range values {
				if !wildcard[i] && row[i] != values[i] {
					match = false
					break
				}
			}
			if match {
				return row.Clone(), true
			}
		}
		return nil, false
	}
}

// MostSensitive builds the (factorized) multiplicity table T^i for one
// member and returns its most sensitive tuple.
func (s *Solver) MostSensitive(ui int, md *Member, db *relation.Database) (*TupleResult, error) {
	groups := GroupPieces(s.Pieces(ui, md))
	maxima := make([]GroupMax, 0, len(groups))
	for _, group := range groups {
		gt, err := GroupTable(group, md.EffVars)
		if err != nil {
			return nil, err
		}
		gt = filterByPreds(gt, md)
		row, cnt := gt.MaxRow()
		maxima = append(maxima, GroupMax{Attrs: gt.Attrs, Row: row, Cnt: cnt})
	}
	return s.TupleResultFromMaxima(ui, md, maxima, DBLookup(s.Q, db))
}

// TupleResultFromMaxima assembles a member's most sensitive tuple from
// precomputed per-group maxima (one GroupMax per factor group of the
// multiplicity table), multiplying in the cross-component scale and
// extrapolating wildcard variables. The incremental session engine calls
// this with maxima tracked against its maintained group tables.
func (s *Solver) TupleResultFromMaxima(ui int, md *Member, maxima []GroupMax, inDB InDBFunc) (*TupleResult, error) {
	scale := s.ScaleFor(ui)
	tr := &TupleResult{Relation: md.Atom.Relation, Vars: append([]string(nil), md.Atom.Vars...)}

	sens := scale
	covered := make(map[string]int64)
	wild := make(map[string]bool)
	for _, v := range md.Atom.Vars {
		wild[v] = true
	}
	for _, m := range maxima {
		sens = relation.MulSat(sens, m.Cnt)
		if m.Cnt == 0 {
			sens = 0
			break
		}
		for i, a := range m.Attrs {
			if m.Row != nil {
				covered[a] = m.Row[i]
				wild[a] = false
			}
			// Row == nil: the truncation Default won; the attribute stays a
			// wildcard and the bound still holds.
		}
	}
	tr.Sensitivity = sens
	if sens == 0 {
		return tr, nil
	}

	// Assemble the candidate tuple in atom-variable order, picking values
	// for wildcard variables that satisfy any selection predicates.
	values := make(relation.Tuple, len(md.Atom.Vars))
	wildcard := make([]bool, len(md.Atom.Vars))
	for i, v := range md.Atom.Vars {
		if !wild[v] {
			values[i] = covered[v]
			continue
		}
		wildcard[i] = true
		val, ok := pickValue(predsFor(md, v))
		if !ok {
			// Contradictory predicates: no insertable tuple exists and the
			// filtered base is empty, so nothing achieves this sensitivity.
			tr.Sensitivity = 0
			return tr, nil
		}
		values[i] = val
	}
	tr.Values = values
	tr.Wildcard = wildcard
	if row, ok := inDB(md, values, wildcard); ok {
		tr.InDatabase = true
		tr.Values = row
	}
	return tr, nil
}

// predsFor returns md's predicates over exactly the variable v.
func predsFor(md *Member, v string) []query.Predicate {
	var out []query.Predicate
	for _, p := range md.Preds {
		if p.Var == v {
			out = append(out, p)
		}
	}
	return out
}

// pickValue finds an int64 satisfying a conjunction of comparison
// predicates, or reports that none exists.
func pickValue(preds []query.Predicate) (int64, bool) {
	const span = 1 << 40 // practical bounds well inside int64
	lo, hi := int64(-span), int64(span)
	ne := make(map[int64]bool)
	for _, p := range preds {
		switch p.Op {
		case query.Eq:
			if p.Value < lo || p.Value > hi {
				return 0, false
			}
			lo, hi = p.Value, p.Value
		case query.Ne:
			ne[p.Value] = true
		case query.Lt:
			if p.Value-1 < hi {
				hi = p.Value - 1
			}
		case query.Le:
			if p.Value < hi {
				hi = p.Value
			}
		case query.Gt:
			if p.Value+1 > lo {
				lo = p.Value + 1
			}
		case query.Ge:
			if p.Value > lo {
				lo = p.Value
			}
		}
	}
	for v := lo; v <= hi; v++ {
		if !ne[v] {
			return v, true
		}
		if v == hi {
			break
		}
	}
	return 0, false
}
