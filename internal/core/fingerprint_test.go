package core

import (
	"testing"

	"tsens/internal/query"
	"tsens/internal/relation"
)

func fpTestDB(t *testing.T) *relation.Database {
	t.Helper()
	mk := func(name string, attrs []string, rows ...relation.Tuple) *relation.Relation {
		r, err := relation.New(name, attrs, rows)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	db, err := relation.NewDatabase(
		mk("R1", []string{"A", "B"}, relation.Tuple{1, 2}, relation.Tuple{2, 2}),
		mk("R2", []string{"B", "C"}, relation.Tuple{2, 3}),
		mk("R3", []string{"C", "D"}, relation.Tuple{3, 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func fpSolve(t *testing.T, q *query.Query, db *relation.Database) *PlanShape {
	t.Helper()
	sol, err := NewSolver(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sol.PlanShape()
}

func TestPlanShapeStability(t *testing.T) {
	db := fpTestDB(t)
	atoms := []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
	}
	q1 := query.MustNew("q1", atoms, nil)
	q2 := query.MustNew("differently-named", atoms, nil)
	a, b := fpSolve(t, q1, db), fpSolve(t, q2, db)
	if a.Plan != b.Plan {
		t.Fatal("identical atom lists fingerprint differently")
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d fingerprint differs across identical queries", i)
		}
	}

	// A shared prefix of a longer query agrees on the common leaf subtree
	// but not on the plan fingerprint.
	qp := query.MustNew("prefix", atoms[:2], nil)
	p := fpSolve(t, qp, db)
	common := map[string]bool{}
	for _, fp := range p.Nodes {
		common[fp] = true
	}
	overlap := 0
	for _, fp := range a.Nodes {
		if common[fp] {
			overlap++
		}
	}
	if overlap == 0 {
		t.Fatal("prefix query shares no subtree fingerprint with the full path")
	}
	if p.Plan == a.Plan {
		t.Fatal("different queries share a plan fingerprint")
	}
}

func TestPlanShapeDiscriminates(t *testing.T) {
	db := fpTestDB(t)
	atoms := []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}
	base := fpSolve(t, query.MustNew("q", atoms, nil), db)

	// A selection predicate changes the member's base content, so its node
	// (and the plan) must fingerprint apart.
	sel := fpSolve(t, query.MustNew("q", atoms,
		map[string][]query.Predicate{"R1": {{Var: "A", Op: query.Le, Value: 1}}}), db)
	if sel.Plan == base.Plan {
		t.Fatal("selection did not change the plan fingerprint")
	}

	// A variable renaming yields isomorphic structure but different attrs;
	// the conservative encoding must keep them apart.
	ren := []query.Atom{
		{Relation: "R1", Vars: []string{"X", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}
	if got := fpSolve(t, query.MustNew("q", ren, nil), db); got.Plan == base.Plan {
		t.Fatal("renamed-variable plan collides with the original")
	}
}
