package core

import (
	"fmt"
	"math/rand"
	"testing"

	"tsens/internal/ghd"
	"tsens/internal/query"
	"tsens/internal/relation"
)

// randRelation builds a random relation with values in a small domain so
// joins are dense enough to be interesting.
func randRelation(rng *rand.Rand, name string, attrs []string, maxRows, domain int) *relation.Relation {
	n := rng.Intn(maxRows + 1)
	rows := make([]relation.Tuple, n)
	for i := range rows {
		t := make(relation.Tuple, len(attrs))
		for j := range t {
			t[j] = int64(rng.Intn(domain))
		}
		rows[i] = t
	}
	return relation.MustNew(name, attrs, rows)
}

// checkAgainstNaive verifies LS, per-relation maxima, and the achieved
// sensitivity of the reported tuples against the brute-force oracle.
func checkAgainstNaive(t *testing.T, trial int, q *query.Query, db *relation.Database, opts Options) {
	t.Helper()
	res, err := LocalSensitivity(q, db, opts)
	if err != nil {
		t.Fatalf("trial %d: %v\nquery: %s", trial, err, q)
	}
	naive, err := NaiveLocalSensitivity(q, db, NaiveOptions{})
	if err != nil {
		t.Fatalf("trial %d: naive: %v", trial, err)
	}
	if res.LS != naive.LS {
		t.Fatalf("trial %d: TSens LS=%d naive LS=%d\nquery: %s\n%s",
			trial, res.LS, naive.LS, q, dumpDB(db))
	}
	if res.Count != naive.Count {
		t.Fatalf("trial %d: TSens Count=%d naive Count=%d", trial, res.Count, naive.Count)
	}
	for rel, tr := range res.PerRelation {
		if nt := naive.PerRelation[rel]; nt != nil && tr.Sensitivity != nt.Sensitivity {
			t.Fatalf("trial %d: relation %s TSens=%d naive=%d\nquery: %s\n%s",
				trial, rel, tr.Sensitivity, nt.Sensitivity, q, dumpDB(db))
		}
		// Inserting the reported tuple must change the count by exactly its
		// sensitivity.
		if tr.Sensitivity > 0 {
			mod := db.Clone()
			r := mod.Relation(rel)
			r.Rows = append(r.Rows, tr.Values.Clone())
			cnt, err := naiveCount(q, mod)
			if err != nil {
				t.Fatal(err)
			}
			if cnt-naive.Count != tr.Sensitivity {
				t.Fatalf("trial %d: %s tuple %v achieves %d, reported %d",
					trial, rel, tr.Values, cnt-naive.Count, tr.Sensitivity)
			}
		}
	}
}

func dumpDB(db *relation.Database) string {
	s := ""
	for _, name := range db.Names() {
		r := db.Relation(name)
		s += fmt.Sprintf("%s%v: %v\n", name, r.Attrs, r.Rows)
	}
	return s
}

// Random path queries of length 2–4.
func TestPropertyPathQueriesAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(3)
		var atomsList []query.Atom
		var rels []*relation.Relation
		for i := 0; i < m; i++ {
			va := fmt.Sprintf("V%d", i)
			vb := fmt.Sprintf("V%d", i+1)
			name := fmt.Sprintf("R%d", i)
			atomsList = append(atomsList, query.Atom{Relation: name, Vars: []string{va, vb}})
			rels = append(rels, randRelation(rng, name, []string{"x", "y"}, 5, 3))
		}
		db := relation.MustNewDatabase(rels...)
		q := query.MustNew("q", atomsList, nil)
		checkAgainstNaive(t, trial, q, db, Options{})

		// The path specialization must agree exactly with the tree
		// algorithm.
		pres, err := PathLocalSensitivity(q, db)
		if err != nil {
			t.Fatal(err)
		}
		res, err := LocalSensitivity(q, db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if pres.LS != res.LS || pres.Count != res.Count {
			t.Fatalf("trial %d: path LS=%d/%d acyclic LS=%d/%d",
				trial, pres.LS, pres.Count, res.LS, res.Count)
		}
		for rel := range res.PerRelation {
			if pres.PerRelation[rel].Sensitivity != res.PerRelation[rel].Sensitivity {
				t.Fatalf("trial %d: %s path=%d acyclic=%d", trial, rel,
					pres.PerRelation[rel].Sensitivity, res.PerRelation[rel].Sensitivity)
			}
		}
	}
}

// Random star queries R0(A,B,C) ⋈ R1(A,X) ⋈ R2(B,Y) ⋈ R3(C,Z): degree-3
// join trees exercising the multi-children multiplicity tables.
func TestPropertyStarQueriesAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		atomsList := []query.Atom{
			{Relation: "R0", Vars: []string{"A", "B", "C"}},
			{Relation: "R1", Vars: []string{"A", "X"}},
			{Relation: "R2", Vars: []string{"B", "Y"}},
			{Relation: "R3", Vars: []string{"C", "Z"}},
		}
		db := relation.MustNewDatabase(
			randRelation(rng, "R0", []string{"a", "b", "c"}, 5, 2),
			randRelation(rng, "R1", []string{"a", "x"}, 4, 2),
			randRelation(rng, "R2", []string{"b", "y"}, 4, 2),
			randRelation(rng, "R3", []string{"c", "z"}, 4, 2),
		)
		q := query.MustNew("qstar", atomsList, nil)
		checkAgainstNaive(t, trial, q, db, Options{})
	}
}

// Random Figure-1-shaped queries (two wide relations sharing two variables
// plus two satellites).
func TestPropertyFigure1ShapeAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		atomsList := []query.Atom{
			{Relation: "R1", Vars: []string{"A", "B", "C"}},
			{Relation: "R2", Vars: []string{"A", "B", "D"}},
			{Relation: "R3", Vars: []string{"A", "E"}},
			{Relation: "R4", Vars: []string{"B", "F"}},
		}
		db := relation.MustNewDatabase(
			randRelation(rng, "R1", []string{"a", "b", "c"}, 4, 2),
			randRelation(rng, "R2", []string{"a", "b", "d"}, 4, 2),
			randRelation(rng, "R3", []string{"a", "e"}, 4, 2),
			randRelation(rng, "R4", []string{"b", "f"}, 4, 2),
		)
		q := query.MustNew("qfig1", atomsList, nil)
		checkAgainstNaive(t, trial, q, db, Options{})
	}
}

// Random triangle queries through the GHD {R1,R2},{R3}.
func TestPropertyTriangleGHDAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		atomsList := []query.Atom{
			{Relation: "R1", Vars: []string{"A", "B"}},
			{Relation: "R2", Vars: []string{"B", "C"}},
			{Relation: "R3", Vars: []string{"C", "A"}},
		}
		db := relation.MustNewDatabase(
			randRelation(rng, "R1", []string{"x", "y"}, 5, 3),
			randRelation(rng, "R2", []string{"x", "y"}, 5, 3),
			randRelation(rng, "R3", []string{"x", "y"}, 5, 3),
		)
		q := query.MustNew("qtri", atomsList, nil)
		d := ghd.MustFromBags(q, [][]int{{0, 1}, {2}})
		checkAgainstNaive(t, trial, q, db, Options{Decomposition: d})
	}
}

// Random 4-cycle queries through the GHD {R1,R2},{R3,R4} (the paper's q◦).
func TestPropertyFourCycleGHDAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		atomsList := []query.Atom{
			{Relation: "R1", Vars: []string{"A", "B"}},
			{Relation: "R2", Vars: []string{"B", "C"}},
			{Relation: "R3", Vars: []string{"C", "D"}},
			{Relation: "R4", Vars: []string{"D", "A"}},
		}
		db := relation.MustNewDatabase(
			randRelation(rng, "R1", []string{"x", "y"}, 4, 2),
			randRelation(rng, "R2", []string{"x", "y"}, 4, 2),
			randRelation(rng, "R3", []string{"x", "y"}, 4, 2),
			randRelation(rng, "R4", []string{"x", "y"}, 4, 2),
		)
		q := query.MustNew("qcyc", atomsList, nil)
		d := ghd.MustFromBags(q, [][]int{{0, 1}, {2, 3}})
		checkAgainstNaive(t, trial, q, db, Options{Decomposition: d})
	}
}

// With selections, TSens must still match the oracle (the oracle evaluates
// through the same selection-aware counting).
func TestPropertySelectionsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		atomsList := []query.Atom{
			{Relation: "R0", Vars: []string{"A", "B"}},
			{Relation: "R1", Vars: []string{"B", "C"}},
			{Relation: "R2", Vars: []string{"C", "D"}},
		}
		sel := map[string][]query.Predicate{
			"R1": {{Var: "C", Op: query.Op(rng.Intn(6)), Value: int64(rng.Intn(3))}},
		}
		db := relation.MustNewDatabase(
			randRelation(rng, "R0", []string{"x", "y"}, 5, 3),
			randRelation(rng, "R1", []string{"x", "y"}, 5, 3),
			randRelation(rng, "R2", []string{"x", "y"}, 5, 3),
		)
		q := query.MustNew("qsel", atomsList, sel)
		checkAgainstNaive(t, trial, q, db, Options{})
	}
}

// TupleSensitivities must agree with per-tuple re-evaluation.
func TestPropertyTupleSensitivitiesAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		atomsList := []query.Atom{
			{Relation: "R0", Vars: []string{"A", "B"}},
			{Relation: "R1", Vars: []string{"B", "C"}},
			{Relation: "R2", Vars: []string{"C", "D"}},
		}
		db := relation.MustNewDatabase(
			randRelation(rng, "R0", []string{"x", "y"}, 5, 3),
			randRelation(rng, "R1", []string{"x", "y"}, 5, 3),
			randRelation(rng, "R2", []string{"x", "y"}, 5, 3),
		)
		q := query.MustNew("qts", atomsList, nil)
		fn, err := TupleSensitivities(q, db, "R1", Options{})
		if err != nil {
			t.Fatal(err)
		}
		base, err := naiveCount(q, db)
		if err != nil {
			t.Fatal(err)
		}
		// Check all existing tuples plus a few random candidates.
		check := func(tp relation.Tuple) {
			mod := db.Clone()
			r := mod.Relation("R1")
			r.Rows = append(r.Rows, tp.Clone())
			cnt, err := naiveCount(q, mod)
			if err != nil {
				t.Fatal(err)
			}
			if got := fn(tp); got != cnt-base {
				t.Fatalf("trial %d: δ(%v)=%d, re-eval says %d", trial, tp, got, cnt-base)
			}
		}
		for _, row := range db.Relation("R1").Rows {
			check(row)
		}
		for i := 0; i < 5; i++ {
			check(relation.Tuple{int64(rng.Intn(4)), int64(rng.Intn(4))})
		}
	}
}

// The top-k approximation must upper-bound the exact sensitivity and
// converge to it for large k.
func TestPropertyTopKUpperBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		m := 3
		var atomsList []query.Atom
		var rels []*relation.Relation
		for i := 0; i < m; i++ {
			va := fmt.Sprintf("V%d", i)
			vb := fmt.Sprintf("V%d", i+1)
			name := fmt.Sprintf("R%d", i)
			atomsList = append(atomsList, query.Atom{Relation: name, Vars: []string{va, vb}})
			rels = append(rels, randRelation(rng, name, []string{"x", "y"}, 8, 4))
		}
		db := relation.MustNewDatabase(rels...)
		q := query.MustNew("q", atomsList, nil)
		exact, err := LocalSensitivity(q, db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		approx, err := LocalSensitivity(q, db, Options{TopK: 1 + rng.Intn(3)})
		if err != nil {
			t.Fatal(err)
		}
		if !approx.Approximate {
			t.Fatal("Approximate flag not set")
		}
		if approx.LS < exact.LS {
			t.Fatalf("trial %d: approx LS=%d < exact LS=%d", trial, approx.LS, exact.LS)
		}
		big, err := LocalSensitivity(q, db, Options{TopK: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if big.LS != exact.LS {
			t.Fatalf("trial %d: TopK=1000 LS=%d ≠ exact %d", trial, big.LS, exact.LS)
		}
	}
}
