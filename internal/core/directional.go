package core

import (
	"tsens/internal/query"
	"tsens/internal/relation"
)

// DownwardLocalSensitivity computes max_t δ⁻(t, Q, D): the largest drop in
// |Q(D)| achievable by deleting one existing tuple (Definition 2.1's
// downward direction). This is the deletion-propagation question of the
// introduction — "identify the critical part in the production to minimize
// the number of orders affected" — restricted to tuples actually present.
//
// The upward direction needs no separate entry point: candidates may come
// from the whole representative domain, so max_t δ⁺ equals the overall
// LocalSensitivity.
func DownwardLocalSensitivity(q *query.Query, db *relation.Database, opts Options) (*Result, error) {
	if opts.TopK > 0 {
		// Tuple sensitivities must be exact for per-row scoring.
		opts.TopK = 0
	}
	res := &Result{PerRelation: make(map[string]*TupleResult)}
	first := true
	for _, a := range q.Atoms {
		if opts.skipped(a.Relation) {
			continue
		}
		fn, err := TupleSensitivities(q, db, a.Relation, opts)
		if err != nil {
			return nil, err
		}
		if first {
			// Count once; it is relation-independent.
			res.Count, err = Evaluate(q, db, opts)
			if err != nil {
				return nil, err
			}
			first = false
		}
		tr := &TupleResult{Relation: a.Relation, Vars: append([]string(nil), a.Vars...)}
		for _, row := range db.Relation(a.Relation).Rows {
			if s := fn(row); s > tr.Sensitivity {
				tr.Sensitivity = s
				tr.Values = row.Clone()
				tr.Wildcard = make([]bool, len(row))
				tr.InDatabase = true
			}
		}
		res.PerRelation[a.Relation] = tr
		if tr.Sensitivity > res.LS {
			res.LS = tr.Sensitivity
			res.Best = tr
		}
	}
	return res, nil
}
