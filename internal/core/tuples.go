package core

import (
	"fmt"

	"tsens/internal/query"
	"tsens/internal/relation"
)

// SensitivityFn evaluates δ(t, Q, D) for a tuple of one fixed relation,
// given in that relation's column order. It answers in O(#groups) hash
// lookups per call.
type SensitivityFn func(t relation.Tuple) int64

// TupleSensitivities prepares a fast tuple-sensitivity evaluator for the
// named relation, the primitive TSensDP needs to truncate a primary private
// relation (Section 6.2): the factorized multiplicity table is indexed by
// the target variables so every tuple's sensitivity is a product of group
// lookups times the cross-component scale.
//
// The evaluator is exact; Options.TopK is rejected here because the
// mechanism requires true sensitivities for its bias accounting.
func TupleSensitivities(q *query.Query, db *relation.Database, relName string, opts Options) (SensitivityFn, error) {
	if opts.TopK > 0 {
		return nil, fmt.Errorf("core: TupleSensitivities requires exact mode (TopK=0)")
	}
	s, err := NewSolver(q, db, opts)
	if err != nil {
		return nil, err
	}
	ui, md := -1, (*Member)(nil)
	for i, u := range s.Units {
		for _, m := range u.Members {
			if m.Atom.Relation == relName {
				ui, md = i, m
			}
		}
	}
	if md == nil {
		return nil, fmt.Errorf("core: query has no atom over relation %s", relName)
	}
	scale := s.ScaleFor(ui)

	// One group table per piece group, probed through the Counted hash
	// index (built eagerly so concurrent evaluator calls are lock-free).
	type groupIndex struct {
		varPos []int // positions within the atom's variable list
		table  *relation.Counted
	}
	varPos := make(map[string]int, len(md.Atom.Vars))
	for i, v := range md.Atom.Vars {
		varPos[v] = i
	}
	var indexes []groupIndex
	for _, group := range GroupPieces(s.Pieces(ui, md)) {
		gt, err := GroupTable(group, md.EffVars)
		if err != nil {
			return nil, err
		}
		gt.BuildIndex()
		gi := groupIndex{table: gt}
		for _, a := range gt.Attrs {
			gi.varPos = append(gi.varPos, varPos[a])
		}
		indexes = append(indexes, gi)
	}

	groups := make([]ProbeGroup, len(indexes))
	for i, gi := range indexes {
		groups[i] = ProbeGroup{VarPos: gi.varPos, Table: gi.table}
	}
	return ProbeEvaluator(len(md.Atom.Vars), q.ApplySelections(md.Atom),
		func() int64 { return scale }, groups), nil
}

// ProbeGroup is one factor of a tuple-sensitivity evaluation: a group table
// probed by the key drawn from the atom-variable positions VarPos.
type ProbeGroup struct {
	VarPos []int
	Table  *relation.Counted
}

// ProbeEvaluator builds the δ(t) closure shared by TupleSensitivities and
// the incremental session: scale() × Π group-table probes, zero on arity
// mismatch, selection failure, or any probe miss. scale is a function so
// stateful callers can reflect live cross-component totals.
func ProbeEvaluator(arity int, keep func(relation.Tuple) bool, scale func() int64, groups []ProbeGroup) SensitivityFn {
	return func(t relation.Tuple) int64 {
		if len(t) != arity {
			return 0
		}
		if keep != nil && !keep(t) {
			return 0 // tuples failing the selection have zero sensitivity
		}
		sens := scale()
		var kbuf [8]int64
		for _, g := range groups {
			var key relation.Tuple
			if len(g.VarPos) <= len(kbuf) {
				key = kbuf[:len(g.VarPos)]
			} else {
				key = make(relation.Tuple, len(g.VarPos))
			}
			for k, p := range g.VarPos {
				key[k] = t[p]
			}
			c, ok := g.Table.Probe(key)
			if !ok {
				return 0
			}
			sens = relation.MulSat(sens, c)
		}
		return sens
	}
}

// Evaluate returns |Q(D)| using the botjoin pass of the solver, matching
// Yannakakis-style counting. Exposed for the mechanism layer, which needs
// counts and sensitivities from one consistent engine.
func Evaluate(q *query.Query, db *relation.Database, opts Options) (int64, error) {
	s, err := NewSolver(q, db, opts)
	if err != nil {
		return 0, err
	}
	return s.CountTotal(), nil
}
