package core

import (
	"fmt"

	"tsens/internal/query"
	"tsens/internal/relation"
)

// SensitivityFn evaluates δ(t, Q, D) for a tuple of one fixed relation,
// given in that relation's column order. It answers in O(#groups) hash
// lookups per call.
type SensitivityFn func(t relation.Tuple) int64

// TupleSensitivities prepares a fast tuple-sensitivity evaluator for the
// named relation, the primitive TSensDP needs to truncate a primary private
// relation (Section 6.2): the factorized multiplicity table is indexed by
// the target variables so every tuple's sensitivity is a product of group
// lookups times the cross-component scale.
//
// The evaluator is exact; Options.TopK is rejected here because the
// mechanism requires true sensitivities for its bias accounting.
func TupleSensitivities(q *query.Query, db *relation.Database, relName string, opts Options) (SensitivityFn, error) {
	if opts.TopK > 0 {
		return nil, fmt.Errorf("core: TupleSensitivities requires exact mode (TopK=0)")
	}
	s, err := newSolver(q, db, opts)
	if err != nil {
		return nil, err
	}
	ui, md := -1, (*member)(nil)
	for i, u := range s.units {
		for _, m := range u.members {
			if m.atom.Relation == relName {
				ui, md = i, m
			}
		}
	}
	if md == nil {
		return nil, fmt.Errorf("core: query has no atom over relation %s", relName)
	}
	scale := s.scaleFor(ui)

	// One group table per piece group, probed through the Counted hash
	// index (built eagerly so concurrent evaluator calls are lock-free).
	type groupIndex struct {
		varPos []int // positions within the atom's variable list
		table  *relation.Counted
	}
	varPos := make(map[string]int, len(md.atom.Vars))
	for i, v := range md.atom.Vars {
		varPos[v] = i
	}
	var indexes []groupIndex
	for _, group := range groupPieces(s.pieces(ui, md)) {
		gt, err := groupTable(group, md.effVars)
		if err != nil {
			return nil, err
		}
		gt.BuildIndex()
		gi := groupIndex{table: gt}
		for _, a := range gt.Attrs {
			gi.varPos = append(gi.varPos, varPos[a])
		}
		indexes = append(indexes, gi)
	}

	keep := q.ApplySelections(md.atom)
	return func(t relation.Tuple) int64 {
		if len(t) != len(md.atom.Vars) {
			return 0
		}
		if keep != nil && !keep(t) {
			return 0 // tuples failing the selection have zero sensitivity
		}
		sens := scale
		var kbuf [8]int64
		for _, gi := range indexes {
			var key relation.Tuple
			if len(gi.varPos) <= len(kbuf) {
				key = kbuf[:len(gi.varPos)]
			} else {
				key = make(relation.Tuple, len(gi.varPos))
			}
			for k, p := range gi.varPos {
				key[k] = t[p]
			}
			c, ok := gi.table.Probe(key)
			if !ok {
				return 0
			}
			sens = relation.MulSat(sens, c)
		}
		return sens
	}, nil
}

// Evaluate returns |Q(D)| using the botjoin pass of the solver, matching
// Yannakakis-style counting. Exposed for the mechanism layer, which needs
// counts and sensitivities from one consistent engine.
func Evaluate(q *query.Query, db *relation.Database, opts Options) (int64, error) {
	s, err := newSolver(q, db, opts)
	if err != nil {
		return 0, err
	}
	return s.count(), nil
}
