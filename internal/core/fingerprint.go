package core

// Structural plan fingerprints for multi-query sharing. A fingerprint
// canonically identifies the *content* of a maintained table from the plan
// shape alone: two solvers whose subtrees fingerprint equal are guaranteed
// to materialize identical base projections, unit relations, and botjoins
// over the same database — that is the soundness contract the hash-consing
// layer (incremental.PlanStore) builds on. The encoding is conservative:
// variable names participate verbatim, so structurally isomorphic plans
// under a renaming do NOT fingerprint equal (their tables would carry
// different attribute lists and could not be pointer-shared anyway). A
// missed sharing opportunity costs memory; a false equality would corrupt
// every subscriber — the design errs entirely toward the former.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"tsens/internal/relation"
)

// PlanShape is the fingerprint view of a built solver: one fingerprint per
// member base projection, one per join-tree node (covering the node's unit
// relation and botjoin, folded over the whole subtree), and one for the
// entire plan (covering topjoins and multiplicity-table state, which depend
// on the full tree).
type PlanShape struct {
	// Bases[ui][mi] fingerprints Units[ui].Members[mi].Base.
	Bases [][]string
	// Nodes[ui] fingerprints the subtree rooted at tree node ui: its unit
	// relation, botjoin, and (recursively) everything below.
	Nodes []string
	// Plan fingerprints the whole join forest positionally — equal Plan
	// fingerprints mean the two solvers' Top tables and group-table factors
	// are identical index-for-index.
	Plan string
}

func fpHash(parts ...string) string {
	h := sha256.Sum256([]byte(relation.CanonKey(parts...)))
	return hex.EncodeToString(h[:])
}

// baseFingerprint canonically identifies a member's base projection: the
// relation it scans, the atom's variable binding (which fixes both arity
// and the projection columns), the effective variables kept, the selection
// predicates applied before counting, and the skip flag (a skipped member
// maintains no multiplicity table, which the residue tier cares about).
func baseFingerprint(md *Member) string {
	preds := make([]string, len(md.Preds))
	for i, p := range md.Preds {
		preds[i] = p.String()
	}
	sort.Strings(preds)
	return fpHash("base",
		md.Atom.Relation,
		strings.Join(md.Atom.Vars, ","),
		strings.Join(md.EffVars, ","),
		strings.Join(preds, "&"),
		fmt.Sprintf("skip=%t", md.Skip),
	)
}

// PlanShape fingerprints the solver's plan. Node fingerprints are computed
// leaf-to-root: each folds the unit's variables, the connector to its
// parent (the botjoin's grouping attributes — identical subtrees under
// different connectors materialize different botjoins), its member base
// fingerprints in bag order, and its children's fingerprints sorted (a
// botjoin is a join over the child multiset; child order is not content).
func (s *Solver) PlanShape() *PlanShape {
	ps := &PlanShape{
		Bases: make([][]string, len(s.Units)),
		Nodes: make([]string, len(s.Units)),
	}
	for ui, u := range s.Units {
		ps.Bases[ui] = make([]string, len(u.Members))
		for mi, md := range u.Members {
			ps.Bases[ui][mi] = baseFingerprint(md)
		}
	}
	var nodeFP func(i int) string
	nodeFP = func(i int) string {
		if ps.Nodes[i] != "" {
			return ps.Nodes[i]
		}
		node := s.Tree.Nodes[i]
		children := make([]string, len(node.Children))
		for k, c := range node.Children {
			children[k] = nodeFP(c.Index)
		}
		sort.Strings(children)
		ps.Nodes[i] = fpHash(append([]string{
			"node",
			strings.Join(s.Units[i].Vars, ","),
			strings.Join(node.ConnectorVars(), ","),
			strings.Join(ps.Bases[i], "|"),
		}, children...)...)
		return ps.Nodes[i]
	}
	for i := range s.Units {
		nodeFP(i)
	}
	// The plan fingerprint is positional: per-index node fingerprints plus
	// the parent vector pin the exact forest layout, so equal plans agree on
	// unit indices, Top tables, and group-table wiring index-for-index.
	parts := make([]string, 0, len(s.Units)+1)
	parts = append(parts, "plan")
	for i, node := range s.Tree.Nodes {
		parent := -1
		if node.Parent != nil {
			parent = node.Parent.Index
		}
		parts = append(parts, fmt.Sprintf("%s@%d", ps.Nodes[i], parent))
	}
	ps.Plan = fpHash(parts...)
	return ps
}
