package core

import (
	"fmt"
	"math/rand"
	"testing"

	"tsens/internal/ghd"
	"tsens/internal/query"
	"tsens/internal/relation"
)

// randomTreeQuery builds a random acyclic query by drawing a random tree
// over m atoms: each non-root atom shares a connector (one or two
// variables) with its parent, and atoms may carry extra single-occurrence
// variables. This covers arbitrary join-tree shapes and degrees, far
// beyond the fixed path/star/Figure-1 shapes of the other property tests.
func randomTreeQuery(rng *rand.Rand, m int) ([]query.Atom, []*relation.Relation) {
	type nodeInfo struct {
		vars []string
	}
	nodes := make([]nodeInfo, m)
	fresh := 0
	newVar := func() string {
		fresh++
		return fmt.Sprintf("X%d", fresh)
	}
	for i := 1; i < m; i++ {
		p := rng.Intn(i)
		// Connector of size 1 or 2 between i and p.
		conn := []string{newVar()}
		if rng.Intn(3) == 0 {
			conn = append(conn, newVar())
		}
		nodes[p].vars = append(nodes[p].vars, conn...)
		nodes[i].vars = append(nodes[i].vars, conn...)
	}
	var atoms []query.Atom
	var rels []*relation.Relation
	for i := range nodes {
		vars := nodes[i].vars
		// Occasionally add a private (single-occurrence) variable.
		if rng.Intn(2) == 0 {
			vars = append(vars, newVar())
		}
		if len(vars) == 0 {
			vars = []string{newVar()} // isolated single-atom component
		}
		name := fmt.Sprintf("R%d", i)
		attrs := make([]string, len(vars))
		for j := range attrs {
			attrs[j] = fmt.Sprintf("c%d", j)
		}
		n := rng.Intn(5)
		rows := make([]relation.Tuple, n)
		for r := range rows {
			t := make(relation.Tuple, len(vars))
			for j := range t {
				t[j] = int64(rng.Intn(2))
			}
			rows[r] = t
		}
		atoms = append(atoms, query.Atom{Relation: name, Vars: vars})
		rels = append(rels, relation.MustNew(name, attrs, rows))
	}
	return atoms, rels
}

func TestPropertyRandomJoinTreesAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(4) // 2..5 atoms
		atoms, rels := randomTreeQuery(rng, m)
		q := query.MustNew("q", atoms, nil)
		db := relation.MustNewDatabase(rels...)
		if !query.IsAcyclic(atoms) {
			t.Fatalf("trial %d: tree construction produced a cyclic query: %s", trial, q)
		}
		checkAgainstNaive(t, trial, q, db, Options{})
	}
}

// The same random trees with one atom's connector duplicated into a width-2
// GHD bag: the bag machinery must not change exact results on acyclic
// inputs.
func TestPropertyRandomTreesWithRedundantBags(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 30; trial++ {
		m := 3 + rng.Intn(2)
		atoms, rels := randomTreeQuery(rng, m)
		q := query.MustNew("q", atoms, nil)
		db := relation.MustNewDatabase(rels...)

		// Try merging two adjacent atoms into one bag; if the resulting
		// bag hypergraph is somehow rejected, skip the trial.
		bags := [][]int{{0, 1}}
		for i := 2; i < m; i++ {
			bags = append(bags, []int{i})
		}
		d, err := ghd.FromBags(q, bags)
		if err != nil {
			continue
		}
		exact, err := LocalSensitivity(q, db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bagged, err := LocalSensitivity(q, db, Options{Decomposition: d})
		if err != nil {
			t.Fatalf("trial %d: bagged run failed: %v\n%s", trial, err, q)
		}
		if exact.LS != bagged.LS || exact.Count != bagged.Count {
			t.Fatalf("trial %d: bagging changed results: LS %d vs %d, count %d vs %d\n%s",
				trial, exact.LS, bagged.LS, exact.Count, bagged.Count, q)
		}
		for rel, tr := range exact.PerRelation {
			if bt := bagged.PerRelation[rel]; bt.Sensitivity != tr.Sensitivity {
				t.Fatalf("trial %d: %s: %d vs %d", trial, rel, tr.Sensitivity, bt.Sensitivity)
			}
		}
	}
}
