// Package core implements TSens, the local-sensitivity algorithms of Tao et
// al. (SIGMOD 2020):
//
//   - Algorithm 1 (Section 4): path join queries in O(n log n);
//   - Algorithm 2 (Section 5): full acyclic conjunctive queries via join
//     trees, computing topjoins ⊤(R), botjoins ⊥(R), and per-relation
//     multiplicity tables T^i whose maximum entry is the local sensitivity;
//   - the GHD extension (Section 5.4) for non-acyclic queries;
//   - the extensions of Section 5.4: selections, disconnected join forests,
//     single-occurrence variable extrapolation, skip-relations (FK–PK
//     joins), and the top-k approximation;
//   - the naive polynomial-data-complexity oracle of Theorem 3.1, used to
//     cross-validate everything on small instances.
//
// The pass state (units, join tree, botjoin/topjoin tables, component
// totals) is externalized in the exported Solver type so that stateful
// callers — the incremental session engine in internal/incremental — can
// retain it across updates and patch it in place instead of recomputing
// every pass per database.
package core

import (
	"fmt"

	"tsens/internal/ghd"
	"tsens/internal/par"
	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/yannakakis"
)

// Options configures a sensitivity computation.
type Options struct {
	// Decomposition assigns atoms to GHD bags for cyclic queries. Nil means
	// the query must be acyclic (singleton bags).
	Decomposition *ghd.Decomposition
	// SkipRelations lists relations whose multiplicity table is not
	// computed, following the paper's treatment of FK–PK-joined tables
	// whose tuple sensitivity is known to be at most one (Section 7.2).
	// Skipped relations do not contribute to the reported LS.
	SkipRelations []string
	// TopK, when positive, truncates every topjoin and botjoin to its k
	// most frequent rows, clamping the remainder to the k-th count
	// (Section 5.4, "Efficient approximations"). The result becomes an
	// upper bound and Result.Approximate is set.
	TopK int
	// Parallelism bounds the worker goroutines used for per-atom
	// preprocessing, GHD bag materialization, the botjoin/topjoin passes
	// (independent subtrees run concurrently), and tuple-sensitivity
	// scans. 0 means runtime.GOMAXPROCS(0); 1 forces sequential execution.
	// Results are identical at any setting.
	Parallelism int
	// Pool, when non-nil, supplies the worker goroutines for every parallel
	// phase instead of spawning fresh ones per call, amortizing goroutine
	// startup across solver invocations (repeated TSensDP releases,
	// incremental session rebuilds). Parallelism still bounds how much of
	// the pool one call uses.
	Pool *par.Pool
}

func (o Options) skipped(rel string) bool {
	for _, s := range o.SkipRelations {
		if s == rel {
			return true
		}
	}
	return false
}

// Do runs fn over [0, n) with the options' parallelism, on the shared pool
// when one is configured.
func (o Options) Do(n int, fn func(int) error) error {
	if o.Pool != nil {
		return o.Pool.Do(o.Parallelism, n, fn)
	}
	return par.Do(o.Parallelism, n, fn)
}

// DAG runs fn over a dependency graph with the options' parallelism, on the
// shared pool when one is configured.
func (o Options) DAG(deps [][]int, fn func(int) error) error {
	if o.Pool != nil {
		return o.Pool.DAG(o.Parallelism, deps, fn)
	}
	return par.DAG(o.Parallelism, deps, fn)
}

// TupleResult describes the most sensitive tuple found for one relation.
type TupleResult struct {
	Relation string
	// Vars and Values give the full candidate tuple in the relation's
	// column order (via the atom's variable renaming). Values is nil when
	// Sensitivity is zero (no tuple can change the output).
	Vars   []string
	Values relation.Tuple
	// Wildcard[i] is true when variable i is unconstrained — any domain
	// value achieves the same sensitivity (single-occurrence variables,
	// Section 5.4 "Other", and endpoints of path queries).
	Wildcard []bool
	// Sensitivity is δ(t*, Q, D), an upper bound when Approximate.
	Sensitivity int64
	// InDatabase reports whether the candidate currently exists in the
	// relation (so the sensitivity is achieved by deletion as well as by
	// insertion).
	InDatabase bool
}

// Result is the outcome of a local-sensitivity computation.
type Result struct {
	// LS = max over non-skipped relations of the tuple sensitivity.
	LS int64
	// Best is the most sensitive tuple achieving LS; nil when LS is zero.
	Best *TupleResult
	// PerRelation maps each non-skipped relation to its most sensitive
	// tuple (Figure 6b reports these).
	PerRelation map[string]*TupleResult
	// Count is |Q(D)|, a byproduct of the botjoin pass (upper bound when
	// Approximate).
	Count int64
	// DoublyAcyclic reports whether the join tree witnessed the
	// doubly-acyclic property of Section 5.3.
	DoublyAcyclic bool
	// MaxDegree is the maximum join-tree degree d of Theorem 5.1.
	MaxDegree int
	// Approximate is set when TopK truncation was applied anywhere.
	Approximate bool
}

// Member is one base atom assigned to a unit (bag).
type Member struct {
	Atom    query.Atom
	EffVars []string          // variables kept (occurring in ≥2 atoms)
	Base    *relation.Counted // counted base relation over EffVars
	Preds   []query.Predicate // per-tuple selection predicates
	Skip    bool
}

// Unit is one node of the (bag) join tree the algorithm runs on. For an
// acyclic query every unit holds exactly one member and Rel is that
// member's base; for GHD bags Rel is the materialized join of the members.
type Unit struct {
	Vars    []string
	Rel     *relation.Counted
	Members []*Member
}

// Solver carries the preprocessed pass state shared by LocalSensitivity,
// TupleSensitivities, and the incremental session engine. The exported
// fields are owned by the solver; stateful callers may patch the counted
// tables in place (via relation.ApplyDelta) as long as they keep Bot, Top,
// and Totals mutually consistent.
type Solver struct {
	Q     *query.Query
	Opts  Options
	Units []*Unit
	Tree  *query.Tree // nodes index into Units
	Bot   []*relation.Counted
	Top   []*relation.Counted
	// Comp[i] is the component id (root node index) of unit i; Totals maps
	// component id to that component's |Q_component(D)|.
	Comp   []int
	Totals map[int]int64
}

// NewSolver binds the query, applies selections, drops single-occurrence
// variables, materializes GHD bags, builds the unit join forest, and runs
// the botjoin/topjoin passes.
func NewSolver(q *query.Query, db *relation.Database, opts Options) (*Solver, error) {
	if _, err := q.Bind(db); err != nil {
		return nil, err
	}
	occ := q.VarOccurrences()

	// Per-atom preprocessing, one independent task per atom.
	members := make([]*Member, len(q.Atoms))
	err := opts.Do(len(q.Atoms), func(i int) error {
		a := q.Atoms[i]
		var eff []string
		for _, v := range a.Vars {
			if occ[v] > 1 {
				eff = append(eff, v)
			}
		}
		proj, err := yannakakis.BaseCountedProject(q, db, a, eff)
		if err != nil {
			return err
		}
		members[i] = &Member{
			Atom:    a,
			EffVars: eff,
			Base:    proj,
			Preds:   q.Selections[a.Relation],
			Skip:    opts.skipped(a.Relation),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Bag assignment.
	d := opts.Decomposition
	if d == nil {
		var err error
		d, err = ghd.Trivial(q)
		if err != nil {
			return nil, fmt.Errorf("core: query is cyclic; provide a GHD decomposition: %w", err)
		}
	} else if _, err := ghd.FromBags(q, d.Bags); err != nil {
		return nil, err
	}

	s := &Solver{Q: q, Opts: opts}
	s.Units = make([]*Unit, len(d.Bags))
	unitAtoms := make([]query.Atom, len(d.Bags))
	err = opts.Do(len(d.Bags), func(bi int) error {
		u := &Unit{}
		var bases []*relation.Counted
		for _, ai := range d.Bags[bi] {
			u.Members = append(u.Members, members[ai])
			u.Vars = relation.Union(u.Vars, members[ai].EffVars)
			bases = append(bases, members[ai].Base)
		}
		if len(bases) == 1 {
			u.Rel = bases[0]
		} else {
			g, err := ghd.MaterializeGrouped(bases, u.Vars)
			if err != nil {
				return err
			}
			u.Rel = g
		}
		s.Units[bi] = u
		unitAtoms[bi] = query.Atom{Relation: fmt.Sprintf("unit%d", bi), Vars: u.Vars}
		return nil
	})
	if err != nil {
		return nil, err
	}

	tree, err := query.BuildJoinTree(unitAtoms)
	if err != nil {
		return nil, fmt.Errorf("core: bag hypergraph unexpectedly cyclic: %w", err)
	}
	s.Tree = tree

	if err := s.passes(); err != nil {
		return nil, err
	}
	return s, nil
}

// passes computes botjoins (post-order), topjoins (pre-order), component
// membership and per-component totals, implementing steps I and II of
// Algorithm 2. Each edge runs the fused join+group-by kernel, and nodes
// whose dependencies are settled (children for botjoins, the parent for
// topjoins) execute concurrently on a bounded worker pool, so independent
// subtrees of the join forest proceed in parallel.
func (s *Solver) passes() error {
	n := len(s.Units)
	s.Bot = make([]*relation.Counted, n)
	s.Top = make([]*relation.Counted, n)
	s.Comp = make([]int, n)
	s.Totals = make(map[int]int64)

	// Botjoins, leaf to root: ⊥(Ri) = γ_{Ai∩Ap}( r⋈(Ri, {⊥(Rj): children}) ).
	botDeps := make([][]int, n)
	for i, node := range s.Tree.Nodes {
		for _, c := range node.Children {
			botDeps[i] = append(botDeps[i], c.Index)
		}
	}
	err := s.Opts.DAG(botDeps, func(i int) error {
		node := s.Tree.Nodes[i]
		bots := make([]*relation.Counted, len(node.Children))
		for k, c := range node.Children {
			bots[k] = s.Bot[c.Index]
		}
		g, err := relation.JoinGroupChain(s.Units[i].Rel, bots, node.ConnectorVars())
		if err != nil {
			return err
		}
		if s.Opts.TopK > 0 {
			g = g.TopK(s.Opts.TopK)
		}
		s.Bot[i] = g
		return nil
	})
	if err != nil {
		return err
	}

	// Topjoins, root to leaf:
	// ⊤(Ri) = γ_{Ai∩Ap}( r⋈(p(Ri), ⊤(p(Ri)), {⊥(Rj): siblings}) ).
	topDeps := make([][]int, n)
	for i, node := range s.Tree.Nodes {
		if node.Parent != nil {
			topDeps[i] = append(topDeps[i], node.Parent.Index)
		}
	}
	err = s.Opts.DAG(topDeps, func(i int) error {
		node := s.Tree.Nodes[i]
		if node.Parent == nil {
			s.Top[i] = nil
			return nil
		}
		var operands []*relation.Counted
		if t := s.Top[node.Parent.Index]; t != nil {
			operands = append(operands, t)
		}
		for _, sib := range node.Siblings() {
			operands = append(operands, s.Bot[sib.Index])
		}
		g, err := relation.JoinGroupChain(s.Units[node.Parent.Index].Rel, operands, node.ConnectorVars())
		if err != nil {
			return err
		}
		if s.Opts.TopK > 0 {
			g = g.TopK(s.Opts.TopK)
		}
		s.Top[i] = g
		return nil
	})
	if err != nil {
		return err
	}

	// Components and totals. The botjoin of a root is grouped by the empty
	// connector, so its SumCnt is the component's output count.
	for _, root := range s.Tree.Roots {
		var mark func(n *query.Node)
		mark = func(n *query.Node) {
			s.Comp[n.Index] = root.Index
			for _, c := range n.Children {
				mark(c)
			}
		}
		mark(root)
		s.Totals[root.Index] = s.Bot[root.Index].SumCnt()
	}
	return nil
}

// ScaleFor returns the product of the output counts of every component
// other than the one containing unit ui (Section 5.4, "Disconnected join
// trees").
func (s *Solver) ScaleFor(ui int) int64 {
	scale := int64(1)
	for root, total := range s.Totals {
		if root == s.Comp[ui] {
			continue
		}
		scale = relation.MulSat(scale, total)
	}
	return scale
}

// CountTotal returns |Q(D)| as the product of component totals.
func (s *Solver) CountTotal() int64 {
	total := int64(1)
	for _, t := range s.Totals {
		total = relation.MulSat(total, t)
	}
	return total
}
