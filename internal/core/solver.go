// Package core implements TSens, the local-sensitivity algorithms of Tao et
// al. (SIGMOD 2020):
//
//   - Algorithm 1 (Section 4): path join queries in O(n log n);
//   - Algorithm 2 (Section 5): full acyclic conjunctive queries via join
//     trees, computing topjoins ⊤(R), botjoins ⊥(R), and per-relation
//     multiplicity tables T^i whose maximum entry is the local sensitivity;
//   - the GHD extension (Section 5.4) for non-acyclic queries;
//   - the extensions of Section 5.4: selections, disconnected join forests,
//     single-occurrence variable extrapolation, skip-relations (FK–PK
//     joins), and the top-k approximation;
//   - the naive polynomial-data-complexity oracle of Theorem 3.1, used to
//     cross-validate everything on small instances.
package core

import (
	"fmt"

	"tsens/internal/ghd"
	"tsens/internal/par"
	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/yannakakis"
)

// Options configures a sensitivity computation.
type Options struct {
	// Decomposition assigns atoms to GHD bags for cyclic queries. Nil means
	// the query must be acyclic (singleton bags).
	Decomposition *ghd.Decomposition
	// SkipRelations lists relations whose multiplicity table is not
	// computed, following the paper's treatment of FK–PK-joined tables
	// whose tuple sensitivity is known to be at most one (Section 7.2).
	// Skipped relations do not contribute to the reported LS.
	SkipRelations []string
	// TopK, when positive, truncates every topjoin and botjoin to its k
	// most frequent rows, clamping the remainder to the k-th count
	// (Section 5.4, "Efficient approximations"). The result becomes an
	// upper bound and Result.Approximate is set.
	TopK int
	// Parallelism bounds the worker goroutines used for per-atom
	// preprocessing, GHD bag materialization, the botjoin/topjoin passes
	// (independent subtrees run concurrently), and tuple-sensitivity
	// scans. 0 means runtime.GOMAXPROCS(0); 1 forces sequential execution.
	// Results are identical at any setting.
	Parallelism int
}

func (o Options) skipped(rel string) bool {
	for _, s := range o.SkipRelations {
		if s == rel {
			return true
		}
	}
	return false
}

// TupleResult describes the most sensitive tuple found for one relation.
type TupleResult struct {
	Relation string
	// Vars and Values give the full candidate tuple in the relation's
	// column order (via the atom's variable renaming). Values is nil when
	// Sensitivity is zero (no tuple can change the output).
	Vars   []string
	Values relation.Tuple
	// Wildcard[i] is true when variable i is unconstrained — any domain
	// value achieves the same sensitivity (single-occurrence variables,
	// Section 5.4 "Other", and endpoints of path queries).
	Wildcard []bool
	// Sensitivity is δ(t*, Q, D), an upper bound when Approximate.
	Sensitivity int64
	// InDatabase reports whether the candidate currently exists in the
	// relation (so the sensitivity is achieved by deletion as well as by
	// insertion).
	InDatabase bool
}

// Result is the outcome of a local-sensitivity computation.
type Result struct {
	// LS = max over non-skipped relations of the tuple sensitivity.
	LS int64
	// Best is the most sensitive tuple achieving LS; nil when LS is zero.
	Best *TupleResult
	// PerRelation maps each non-skipped relation to its most sensitive
	// tuple (Figure 6b reports these).
	PerRelation map[string]*TupleResult
	// Count is |Q(D)|, a byproduct of the botjoin pass (upper bound when
	// Approximate).
	Count int64
	// DoublyAcyclic reports whether the join tree witnessed the
	// doubly-acyclic property of Section 5.3.
	DoublyAcyclic bool
	// MaxDegree is the maximum join-tree degree d of Theorem 5.1.
	MaxDegree int
	// Approximate is set when TopK truncation was applied anywhere.
	Approximate bool
}

// member is one base atom assigned to a unit (bag).
type member struct {
	atom    query.Atom
	effVars []string          // variables kept (occurring in ≥2 atoms)
	base    *relation.Counted // counted base relation over effVars
	preds   []query.Predicate // per-tuple selection predicates
	skip    bool
}

// unit is one node of the (bag) join tree the algorithm runs on. For an
// acyclic query every unit holds exactly one member and rel is that
// member's base; for GHD bags rel is the materialized join of the members.
type unit struct {
	vars    []string
	rel     *relation.Counted
	members []*member
}

// solver carries the preprocessed state shared by LocalSensitivity and
// TupleSensitivities.
type solver struct {
	q     *query.Query
	opts  Options
	units []*unit
	tree  *query.Tree // nodes index into units
	bot   []*relation.Counted
	top   []*relation.Counted
	// comp[i] is the component id (root node index) of unit i; totals maps
	// component id to that component's |Q_component(D)|.
	comp   []int
	totals map[int]int64
}

// newSolver binds the query, applies selections, drops single-occurrence
// variables, materializes GHD bags, builds the unit join forest, and runs
// the botjoin/topjoin passes.
func newSolver(q *query.Query, db *relation.Database, opts Options) (*solver, error) {
	if _, err := q.Bind(db); err != nil {
		return nil, err
	}
	occ := q.VarOccurrences()

	// Per-atom preprocessing, one independent task per atom.
	members := make([]*member, len(q.Atoms))
	err := par.Do(opts.Parallelism, len(q.Atoms), func(i int) error {
		a := q.Atoms[i]
		var eff []string
		for _, v := range a.Vars {
			if occ[v] > 1 {
				eff = append(eff, v)
			}
		}
		proj, err := yannakakis.BaseCountedProject(q, db, a, eff)
		if err != nil {
			return err
		}
		members[i] = &member{
			atom:    a,
			effVars: eff,
			base:    proj,
			preds:   q.Selections[a.Relation],
			skip:    opts.skipped(a.Relation),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Bag assignment.
	d := opts.Decomposition
	if d == nil {
		var err error
		d, err = ghd.Trivial(q)
		if err != nil {
			return nil, fmt.Errorf("core: query is cyclic; provide a GHD decomposition: %w", err)
		}
	} else if _, err := ghd.FromBags(q, d.Bags); err != nil {
		return nil, err
	}

	s := &solver{q: q, opts: opts}
	s.units = make([]*unit, len(d.Bags))
	unitAtoms := make([]query.Atom, len(d.Bags))
	err = par.Do(opts.Parallelism, len(d.Bags), func(bi int) error {
		u := &unit{}
		var bases []*relation.Counted
		for _, ai := range d.Bags[bi] {
			u.members = append(u.members, members[ai])
			u.vars = relation.Union(u.vars, members[ai].effVars)
			bases = append(bases, members[ai].base)
		}
		if len(bases) == 1 {
			u.rel = bases[0]
		} else {
			g, err := ghd.MaterializeGrouped(bases, u.vars)
			if err != nil {
				return err
			}
			u.rel = g
		}
		s.units[bi] = u
		unitAtoms[bi] = query.Atom{Relation: fmt.Sprintf("unit%d", bi), Vars: u.vars}
		return nil
	})
	if err != nil {
		return nil, err
	}

	tree, err := query.BuildJoinTree(unitAtoms)
	if err != nil {
		return nil, fmt.Errorf("core: bag hypergraph unexpectedly cyclic: %w", err)
	}
	s.tree = tree

	if err := s.passes(); err != nil {
		return nil, err
	}
	return s, nil
}

// passes computes botjoins (post-order), topjoins (pre-order), component
// membership and per-component totals, implementing steps I and II of
// Algorithm 2. Each edge runs the fused join+group-by kernel, and nodes
// whose dependencies are settled (children for botjoins, the parent for
// topjoins) execute concurrently on a bounded worker pool, so independent
// subtrees of the join forest proceed in parallel.
func (s *solver) passes() error {
	n := len(s.units)
	s.bot = make([]*relation.Counted, n)
	s.top = make([]*relation.Counted, n)
	s.comp = make([]int, n)
	s.totals = make(map[int]int64)

	// Botjoins, leaf to root: ⊥(Ri) = γ_{Ai∩Ap}( r⋈(Ri, {⊥(Rj): children}) ).
	botDeps := make([][]int, n)
	for i, node := range s.tree.Nodes {
		for _, c := range node.Children {
			botDeps[i] = append(botDeps[i], c.Index)
		}
	}
	err := par.DAG(s.opts.Parallelism, botDeps, func(i int) error {
		node := s.tree.Nodes[i]
		bots := make([]*relation.Counted, len(node.Children))
		for k, c := range node.Children {
			bots[k] = s.bot[c.Index]
		}
		g, err := relation.JoinGroupChain(s.units[i].rel, bots, node.ConnectorVars())
		if err != nil {
			return err
		}
		if s.opts.TopK > 0 {
			g = g.TopK(s.opts.TopK)
		}
		s.bot[i] = g
		return nil
	})
	if err != nil {
		return err
	}

	// Topjoins, root to leaf:
	// ⊤(Ri) = γ_{Ai∩Ap}( r⋈(p(Ri), ⊤(p(Ri)), {⊥(Rj): siblings}) ).
	topDeps := make([][]int, n)
	for i, node := range s.tree.Nodes {
		if node.Parent != nil {
			topDeps[i] = append(topDeps[i], node.Parent.Index)
		}
	}
	err = par.DAG(s.opts.Parallelism, topDeps, func(i int) error {
		node := s.tree.Nodes[i]
		if node.Parent == nil {
			s.top[i] = nil
			return nil
		}
		var operands []*relation.Counted
		if t := s.top[node.Parent.Index]; t != nil {
			operands = append(operands, t)
		}
		for _, sib := range node.Siblings() {
			operands = append(operands, s.bot[sib.Index])
		}
		g, err := relation.JoinGroupChain(s.units[node.Parent.Index].rel, operands, node.ConnectorVars())
		if err != nil {
			return err
		}
		if s.opts.TopK > 0 {
			g = g.TopK(s.opts.TopK)
		}
		s.top[i] = g
		return nil
	})
	if err != nil {
		return err
	}

	// Components and totals. The botjoin of a root is grouped by the empty
	// connector, so its SumCnt is the component's output count.
	for _, root := range s.tree.Roots {
		var mark func(n *query.Node)
		mark = func(n *query.Node) {
			s.comp[n.Index] = root.Index
			for _, c := range n.Children {
				mark(c)
			}
		}
		mark(root)
		s.totals[root.Index] = s.bot[root.Index].SumCnt()
	}
	return nil
}

// scaleFor returns the product of the output counts of every component
// other than the one containing unit ui (Section 5.4, "Disconnected join
// trees").
func (s *solver) scaleFor(ui int) int64 {
	scale := int64(1)
	for root, total := range s.totals {
		if root == s.comp[ui] {
			continue
		}
		scale = relation.MulSat(scale, total)
	}
	return scale
}

// count returns |Q(D)| as the product of component totals.
func (s *solver) count() int64 {
	total := int64(1)
	for _, t := range s.totals {
		total = relation.MulSat(total, t)
	}
	return total
}
