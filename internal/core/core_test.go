package core

import (
	"testing"

	"tsens/internal/ghd"
	"tsens/internal/query"
	"tsens/internal/relation"
)

// figure1DB is the database instance of Figure 1 with values a1=1, a2=2,
// b1=1, b2=2, c1=1, d1=1, d2=2, e1=1, e2=2, f1=1, f2=2.
func figure1DB() *relation.Database {
	return relation.MustNewDatabase(
		relation.MustNew("R1", []string{"A", "B", "C"}, []relation.Tuple{{1, 1, 1}, {1, 2, 1}, {2, 1, 1}}),
		relation.MustNew("R2", []string{"A", "B", "D"}, []relation.Tuple{{1, 1, 1}, {2, 2, 2}}),
		relation.MustNew("R3", []string{"A", "E"}, []relation.Tuple{{1, 1}, {2, 1}, {2, 2}}),
		relation.MustNew("R4", []string{"B", "F"}, []relation.Tuple{{1, 1}, {2, 1}, {2, 2}}),
	)
}

func figure1Query() *query.Query {
	return query.MustNew("q", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B", "C"}},
		{Relation: "R2", Vars: []string{"A", "B", "D"}},
		{Relation: "R3", Vars: []string{"A", "E"}},
		{Relation: "R4", Vars: []string{"B", "F"}},
	}, nil)
}

// Example 2.1: the local sensitivity of the Figure 1 query is 4, achieved
// by inserting (a2, b2, c1) into R1.
func TestFigure1Example21(t *testing.T) {
	res, err := LocalSensitivity(figure1Query(), figure1DB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LS != 4 {
		t.Fatalf("LS=%d, want 4", res.LS)
	}
	if res.Best == nil || res.Best.Relation != "R1" {
		t.Fatalf("Best=%+v, want a tuple of R1", res.Best)
	}
	// Most sensitive tuple (a2,b2,c1): A=2, B=2 covered; C is a
	// single-occurrence variable (wildcard).
	if res.Best.Values[0] != 2 || res.Best.Values[1] != 2 {
		t.Fatalf("Best tuple=%v, want (2,2,*)", res.Best.Values)
	}
	if !res.Best.Wildcard[2] || res.Best.Wildcard[0] || res.Best.Wildcard[1] {
		t.Fatalf("wildcards=%v, want only C free", res.Best.Wildcard)
	}
	if res.Best.InDatabase {
		t.Fatal("(a2,b2,*) is not in R1; InDatabase must be false")
	}
	if res.Count != 1 {
		t.Fatalf("Count=%d, want 1 (Figure 1b)", res.Count)
	}
	// Per-relation table: R1's own entry achieves 4; removing (a1,b1,c1)
	// changes the single output, so R2's best is at least 1.
	if res.PerRelation["R1"].Sensitivity != 4 {
		t.Fatalf("R1 sensitivity=%d", res.PerRelation["R1"].Sensitivity)
	}
	if res.PerRelation["R2"].Sensitivity < 1 {
		t.Fatalf("R2 sensitivity=%d", res.PerRelation["R2"].Sensitivity)
	}
}

// figure3DB is the path-query example of Figure 3.
func figure3DB() *relation.Database {
	return relation.MustNewDatabase(
		relation.MustNew("R1", []string{"A", "B"}, []relation.Tuple{{1, 1}, {1, 2}, {2, 2}, {2, 2}}),
		relation.MustNew("R2", []string{"B", "C"}, []relation.Tuple{{1, 1}, {1, 2}, {2, 1}, {2, 1}}),
		relation.MustNew("R3", []string{"C", "D"}, []relation.Tuple{{1, 1}, {1, 1}, {2, 1}, {2, 2}}),
		relation.MustNew("R4", []string{"D", "E"}, []relation.Tuple{{1, 1}, {1, 2}, {1, 3}, {2, 4}}),
	)
}

func figure3Query() *query.Query {
	return query.MustNew("qpath4", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
		{Relation: "R4", Vars: []string{"D", "E"}},
	}, nil)
}

// Figure 3's multiplicity table for R2 is exactly
// {(b1,c1):6, (b1,c2):4, (b2,c1):18, (b2,c2):12} — ⊤ gives b1↦1, b2↦3 and
// ⊥(R3) gives c1↦6, c2↦4. The per-relation maxima are R1:12, R2:18, R3:21,
// R4:15, so LS = 21 via inserting (c1,d1) into R3.
func TestFigure3PathExample(t *testing.T) {
	for _, algo := range []struct {
		name string
		run  func() (*Result, error)
	}{
		{"acyclic", func() (*Result, error) { return LocalSensitivity(figure3Query(), figure3DB(), Options{}) }},
		{"path", func() (*Result, error) { return PathLocalSensitivity(figure3Query(), figure3DB()) }},
	} {
		res, err := algo.run()
		if err != nil {
			t.Fatalf("%s: %v", algo.name, err)
		}
		if res.PerRelation["R2"].Sensitivity != 18 {
			t.Fatalf("%s: T² max=%d, want 18", algo.name, res.PerRelation["R2"].Sensitivity)
		}
		// (b2, c1): B=2, C=1.
		r2 := res.PerRelation["R2"]
		if r2.Values[0] != 2 || r2.Values[1] != 1 {
			t.Fatalf("%s: R2 best=%v, want (2,1)", algo.name, r2.Values)
		}
		if res.LS != 21 || res.Best.Relation != "R3" {
			t.Fatalf("%s: LS=%d via %s, want 21 via R3", algo.name, res.LS, res.Best.Relation)
		}
		if res.PerRelation["R1"].Sensitivity != 12 {
			t.Fatalf("%s: T¹ max=%d, want 12", algo.name, res.PerRelation["R1"].Sensitivity)
		}
		if res.PerRelation["R3"].Sensitivity != 21 {
			t.Fatalf("%s: T³ max=%d, want 21", algo.name, res.PerRelation["R3"].Sensitivity)
		}
		if res.PerRelation["R4"].Sensitivity != 15 {
			t.Fatalf("%s: T⁴ max=%d, want 15", algo.name, res.PerRelation["R4"].Sensitivity)
		}
	}
}

// Example 4.1: removing R2(b1,c1) removes 4 output tuples; the tuple
// sensitivity evaluator must report exactly that.
func TestFigure3TupleSensitivities(t *testing.T) {
	fn, err := TupleSensitivities(figure3Query(), figure3DB(), "R2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := fn(relation.Tuple{1, 1}); got != 6 {
		t.Fatalf("δ(b1,c1)=%d, want 6", got)
	}
	if got := fn(relation.Tuple{2, 1}); got != 18 {
		t.Fatalf("δ(b2,c1)=%d, want 18", got)
	}
	if got := fn(relation.Tuple{9, 9}); got != 0 {
		t.Fatalf("δ(missing)=%d, want 0", got)
	}
	if got := fn(relation.Tuple{1}); got != 0 {
		t.Fatalf("δ(bad arity)=%d, want 0", got)
	}
}

func TestSingleRelationQuery(t *testing.T) {
	db := relation.MustNewDatabase(
		relation.MustNew("R", []string{"A", "B"}, []relation.Tuple{{1, 2}, {3, 4}}),
	)
	q := query.MustNew("q", []query.Atom{{Relation: "R", Vars: []string{"A", "B"}}}, nil)
	res, err := LocalSensitivity(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LS != 1 {
		t.Fatalf("LS=%d, want 1 (single relation, Section 2.1)", res.LS)
	}
	if res.Count != 2 {
		t.Fatalf("Count=%d", res.Count)
	}
	if res.Best == nil || !res.Best.Wildcard[0] || !res.Best.Wildcard[1] {
		t.Fatalf("single-relation best should be all wildcards: %+v", res.Best)
	}
}

func TestEmptyJoinPartner(t *testing.T) {
	db := relation.MustNewDatabase(
		relation.MustNew("R1", []string{"A", "B"}, []relation.Tuple{{1, 1}}),
		relation.MustNew("R2", []string{"B", "C"}, nil),
	)
	q := query.MustNew("q", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}, nil)
	res, err := LocalSensitivity(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Adding (1, c) to R2 creates one output; R1 tuples are worth 0.
	if res.LS != 1 || res.Best.Relation != "R2" {
		t.Fatalf("LS=%d via %v", res.LS, res.Best)
	}
	if res.PerRelation["R1"].Sensitivity != 0 {
		t.Fatalf("R1 sensitivity=%d, want 0", res.PerRelation["R1"].Sensitivity)
	}
	if res.Count != 0 {
		t.Fatalf("Count=%d", res.Count)
	}
}

func TestDisconnectedComponentsScale(t *testing.T) {
	// Q :- R1(A), R2(B): adding a value to R1 creates |R2| outputs.
	db := relation.MustNewDatabase(
		relation.MustNew("R1", []string{"A"}, []relation.Tuple{{1}, {2}}),
		relation.MustNew("R2", []string{"B"}, []relation.Tuple{{7}, {8}, {9}}),
	)
	q := query.MustNew("q", []query.Atom{
		{Relation: "R1", Vars: []string{"A"}},
		{Relation: "R2", Vars: []string{"B"}},
	}, nil)
	res, err := LocalSensitivity(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LS != 3 || res.Best.Relation != "R1" {
		t.Fatalf("LS=%d via %s, want 3 via R1", res.LS, res.Best.Relation)
	}
	if res.PerRelation["R2"].Sensitivity != 2 {
		t.Fatalf("R2 sensitivity=%d, want 2", res.PerRelation["R2"].Sensitivity)
	}
	if res.Count != 6 {
		t.Fatalf("Count=%d, want 6", res.Count)
	}
}

func TestSkipRelations(t *testing.T) {
	res, err := LocalSensitivity(figure3Query(), figure3DB(), Options{SkipRelations: []string{"R3"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.PerRelation["R3"]; ok {
		t.Fatal("skipped relation still reported")
	}
	// Without R3's 21, the max is T²'s 18.
	if res.LS != 18 {
		t.Fatalf("LS=%d, want 18 when R3 is skipped", res.LS)
	}
}

func TestSelectionsFilterCandidates(t *testing.T) {
	// Same path query, but restrict R2 to C=2: removing the C=1 tuples from
	// play changes the sensitivities.
	q := query.MustNew("qsel", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
		{Relation: "R4", Vars: []string{"D", "E"}},
	}, map[string][]query.Predicate{
		"R2": {{Var: "C", Op: query.Eq, Value: 2}},
	})
	res, err := LocalSensitivity(q, figure3DB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveLocalSensitivity(q, figure3DB(), NaiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LS != naive.LS {
		t.Fatalf("TSens LS=%d naive LS=%d", res.LS, naive.LS)
	}
	// The R2 candidate must satisfy C=2.
	if r2 := res.PerRelation["R2"]; r2.Sensitivity > 0 && r2.Values[1] != 2 {
		t.Fatalf("R2 candidate %v violates selection C=2", r2.Values)
	}
	// Path algorithm agrees too.
	p, err := PathLocalSensitivity(q, figure3DB())
	if err != nil {
		t.Fatal(err)
	}
	if p.LS != res.LS {
		t.Fatalf("path LS=%d acyclic LS=%d", p.LS, res.LS)
	}
}

func TestInfeasibleSelection(t *testing.T) {
	q := query.MustNew("qbad", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}, map[string][]query.Predicate{
		"R2": {{Var: "C", Op: query.Lt, Value: 0}, {Var: "C", Op: query.Gt, Value: 0}},
	})
	db := relation.MustNewDatabase(
		relation.MustNew("R1", []string{"A", "B"}, []relation.Tuple{{1, 1}}),
		relation.MustNew("R2", []string{"B", "C"}, []relation.Tuple{{1, 1}}),
	)
	res, err := LocalSensitivity(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerRelation["R2"].Sensitivity != 0 {
		t.Fatalf("infeasible selection should zero R2, got %d", res.PerRelation["R2"].Sensitivity)
	}
	if res.Count != 0 {
		t.Fatalf("Count=%d", res.Count)
	}
}

// Triangle query through the paper's GHD {R1,R2},{R3} (Figure 5b, q△).
func TestTriangleGHD(t *testing.T) {
	edges := []relation.Tuple{{1, 2}, {2, 3}, {3, 1}, {2, 1}, {3, 2}, {1, 3}}
	db := relation.MustNewDatabase(
		relation.MustNew("R1", []string{"x", "y"}, edges),
		relation.MustNew("R2", []string{"x", "y"}, edges),
		relation.MustNew("R3", []string{"x", "y"}, edges),
	)
	tri := query.MustNew("tri", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "A"}},
	}, nil)
	d := ghd.MustFromBags(tri, [][]int{{0, 1}, {2}})
	res, err := LocalSensitivity(tri, db, Options{Decomposition: d})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveLocalSensitivity(tri, db, NaiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LS != naive.LS {
		t.Fatalf("GHD LS=%d naive LS=%d", res.LS, naive.LS)
	}
	if res.Count != 6 {
		t.Fatalf("Count=%d, want 6", res.Count)
	}
	// Every relation's per-relation maximum must match the oracle.
	for rel, tr := range res.PerRelation {
		if tr.Sensitivity != naive.PerRelation[rel].Sensitivity {
			t.Fatalf("%s: GHD=%d naive=%d", rel, tr.Sensitivity, naive.PerRelation[rel].Sensitivity)
		}
	}
}

func TestCyclicWithoutDecompositionFails(t *testing.T) {
	db := relation.MustNewDatabase(
		relation.MustNew("R1", []string{"x", "y"}, nil),
		relation.MustNew("R2", []string{"x", "y"}, nil),
		relation.MustNew("R3", []string{"x", "y"}, nil),
	)
	tri := query.MustNew("tri", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "A"}},
	}, nil)
	if _, err := LocalSensitivity(tri, db, Options{}); err == nil {
		t.Fatal("cyclic query without decomposition accepted")
	}
}

// The reported most sensitive tuple must actually achieve the reported
// sensitivity: inserting it increases the count by LS (or deleting it when
// InDatabase decreases by LS).
func TestReportedTupleAchievesSensitivity(t *testing.T) {
	q := figure3Query()
	db := figure3DB()
	res, err := LocalSensitivity(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkAchieves(t, q, db, res.Best)
	for _, tr := range res.PerRelation {
		checkAchieves(t, q, db, tr)
	}
}

func checkAchieves(t *testing.T, q *query.Query, db *relation.Database, tr *TupleResult) {
	t.Helper()
	if tr == nil || tr.Sensitivity == 0 {
		return
	}
	naive, err := NaiveLocalSensitivity(q, db, NaiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base := naive.Count
	mod := db.Clone()
	r := mod.Relation(tr.Relation)
	r.Rows = append(r.Rows, tr.Values.Clone())
	cnt, err := naiveCount(q, mod)
	if err != nil {
		t.Fatal(err)
	}
	if cnt-base != tr.Sensitivity {
		t.Fatalf("%s: inserting %v changed count by %d, reported sensitivity %d",
			tr.Relation, tr.Values, cnt-base, tr.Sensitivity)
	}
}

func TestDoublyAcyclicFlag(t *testing.T) {
	res, err := LocalSensitivity(figure3Query(), figure3DB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DoublyAcyclic {
		t.Fatal("path query must be doubly acyclic")
	}
	if res.MaxDegree > 2 {
		t.Fatalf("path max degree=%d", res.MaxDegree)
	}
}

func TestTupleSensitivitiesRejectsTopK(t *testing.T) {
	if _, err := TupleSensitivities(figure3Query(), figure3DB(), "R2", Options{TopK: 2}); err == nil {
		t.Fatal("TopK accepted by TupleSensitivities")
	}
	if _, err := TupleSensitivities(figure3Query(), figure3DB(), "Nope", Options{}); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

func TestEvaluateMatchesCount(t *testing.T) {
	got, err := Evaluate(figure3Query(), figure3DB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := naiveCount(figure3Query(), figure3DB())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Evaluate=%d brute=%d", got, want)
	}
}

func TestPathRejectsNonPath(t *testing.T) {
	if _, err := PathLocalSensitivity(figure1Query(), figure1DB()); err == nil {
		t.Fatal("non-path query accepted by Algorithm 1")
	}
}
