package core

import (
	"testing"

	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/yannakakis"
)

// naiveCount is a shorthand for the brute-force |Q(D)| used by oracle tests.
func naiveCount(q *query.Query, db *relation.Database) (int64, error) {
	return yannakakis.BruteCount(q, db)
}

func TestNaiveFigure1(t *testing.T) {
	res, err := NaiveLocalSensitivity(figure1Query(), figure1DB(), NaiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.LS != 4 {
		t.Fatalf("naive LS=%d, want 4 (Example 2.1)", res.LS)
	}
	if res.Best.Relation != "R1" {
		t.Fatalf("naive best relation=%s", res.Best.Relation)
	}
	if res.Count != 1 {
		t.Fatalf("naive Count=%d", res.Count)
	}
}

func TestNaiveDownwardOnly(t *testing.T) {
	// Two relations joined on B where the only candidates that matter are
	// deletions: make the representative domain empty by using disjoint
	// active domains except one value.
	db := relation.MustNewDatabase(
		relation.MustNew("R1", []string{"A", "B"}, []relation.Tuple{{1, 5}, {1, 5}}),
		relation.MustNew("R2", []string{"B", "C"}, []relation.Tuple{{5, 7}}),
	)
	q := query.MustNew("q", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}, nil)
	res, err := NaiveLocalSensitivity(q, db, NaiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// δ(R2(5,7)) by deletion: removes both outputs → 2.
	if res.LS != 2 || res.Best.Relation != "R2" {
		t.Fatalf("LS=%d via %s, want 2 via R2", res.LS, res.Best.Relation)
	}
}

func TestNaiveBudget(t *testing.T) {
	db := figure3DB()
	q := figure3Query()
	if _, err := NaiveLocalSensitivity(q, db, NaiveOptions{MaxCandidates: 3}); err == nil {
		t.Fatal("tiny budget not enforced")
	}
}

func TestRepresentativeDomains(t *testing.T) {
	// Example 3.1: the representative domain of A in R1 is {a1,a2} as the
	// intersection of the active domains in R2 and R3.
	q := figure1Query()
	db := figure1DB()
	a, _ := q.Atom("R1")
	doms, err := representativeDomains(q, db, a)
	if err != nil {
		t.Fatal(err)
	}
	// A: {1,2}; B: {1,2}; C occurs only in R1 → single arbitrary value.
	if len(doms[0]) != 2 || doms[0][0] != 1 || doms[0][1] != 2 {
		t.Fatalf("dom(A)=%v", doms[0])
	}
	if len(doms[1]) != 2 {
		t.Fatalf("dom(B)=%v", doms[1])
	}
	if len(doms[2]) != 1 {
		t.Fatalf("dom(C)=%v, want singleton", doms[2])
	}
}

func TestIntersectSorted(t *testing.T) {
	got := intersectSorted([]int64{1, 2, 4, 6}, []int64{2, 3, 4, 7})
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("intersectSorted=%v", got)
	}
	if out := intersectSorted(nil, []int64{1}); len(out) != 0 {
		t.Fatalf("empty intersect=%v", out)
	}
}

func TestEnumerate(t *testing.T) {
	var seen []relation.Tuple
	err := enumerate([][]int64{{1, 2}, {7}}, func(t relation.Tuple) error {
		seen = append(seen, t.Clone())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || !seen[0].Equal(relation.Tuple{1, 7}) || !seen[1].Equal(relation.Tuple{2, 7}) {
		t.Fatalf("enumerate=%v", seen)
	}
	// Empty domain short-circuits.
	calls := 0
	if err := enumerate([][]int64{{1}, {}}, func(relation.Tuple) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatal("enumerate over empty domain called f")
	}
}

func TestRemoveOne(t *testing.T) {
	r := relation.MustNew("R", []string{"A"}, []relation.Tuple{{1}, {2}, {1}})
	if err := removeOne(r, relation.Tuple{1}); err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	if err := removeOne(r, relation.Tuple{9}); err == nil {
		t.Fatal("removing absent tuple succeeded")
	}
}

func TestPickValue(t *testing.T) {
	if v, ok := pickValue(nil); !ok || v < -1<<40 {
		t.Fatalf("unconstrained pickValue=(%d,%v)", v, ok)
	}
	v, ok := pickValue([]query.Predicate{{Var: "X", Op: query.Ge, Value: 5}, {Var: "X", Op: query.Lt, Value: 7}})
	if !ok || v < 5 || v >= 7 {
		t.Fatalf("pickValue=(%d,%v)", v, ok)
	}
	v, ok = pickValue([]query.Predicate{{Var: "X", Op: query.Eq, Value: 3}})
	if !ok || v != 3 {
		t.Fatalf("pickValue Eq=(%d,%v)", v, ok)
	}
	_, ok = pickValue([]query.Predicate{{Var: "X", Op: query.Lt, Value: 0}, {Var: "X", Op: query.Gt, Value: 0}})
	if ok {
		t.Fatal("contradiction satisfied")
	}
	v, ok = pickValue([]query.Predicate{
		{Var: "X", Op: query.Ge, Value: 1},
		{Var: "X", Op: query.Le, Value: 3},
		{Var: "X", Op: query.Ne, Value: 1},
		{Var: "X", Op: query.Ne, Value: 2},
	})
	if !ok || v != 3 {
		t.Fatalf("pickValue Ne chain=(%d,%v)", v, ok)
	}
	_, ok = pickValue([]query.Predicate{
		{Var: "X", Op: query.Eq, Value: 2},
		{Var: "X", Op: query.Ne, Value: 2},
	})
	if ok {
		t.Fatal("Eq+Ne contradiction satisfied")
	}
}
