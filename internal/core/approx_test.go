package core

import (
	"strings"
	"testing"

	"tsens/internal/query"
	"tsens/internal/relation"
)

// The top-k approximation is only sound where truncated joins act as
// lookups; the star-over-triangle query needs a cyclic join of three
// truncated botjoins, which must be rejected with a clear error rather
// than silently producing an unsound bound (see DESIGN.md).
func TestTopKRejectsCyclicMultiplicityJoin(t *testing.T) {
	edges := []relation.Tuple{{1, 2}, {2, 3}, {3, 1}, {2, 1}, {3, 2}, {1, 3}}
	tri := []relation.Tuple{{1, 2, 3}, {2, 3, 1}, {3, 1, 2}}
	db := relation.MustNewDatabase(
		relation.MustNew("RT", []string{"a", "b", "c"}, tri),
		relation.MustNew("R1", []string{"x", "y"}, edges),
		relation.MustNew("R2", []string{"x", "y"}, edges),
		relation.MustNew("R3", []string{"x", "y"}, edges),
	)
	q := query.MustNew("qstar", []query.Atom{
		{Relation: "RT", Vars: []string{"A", "B", "C"}},
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "A"}},
	}, nil)
	// Exact mode works.
	if _, err := LocalSensitivity(q, db, Options{}); err != nil {
		t.Fatalf("exact mode failed: %v", err)
	}
	// k=1 forces truncation (each botjoin has 6 > 1 rows) and the root's
	// multiplicity table becomes a join of approximate pieces.
	_, err := LocalSensitivity(q, db, Options{TopK: 1})
	if err == nil {
		t.Fatal("unsound top-k configuration accepted")
	}
	if !strings.Contains(err.Error(), "approximation") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// On path queries every multiplicity-table group is a singleton truncated
// top/botjoin over exactly the target's connector, so top-k applies and
// keeps the upper-bound property at every k. (On Figure 1's shape the
// three botjoins form one connected group and top-k is rejected, same as
// the star query above.)
func TestTopKOnPathShape(t *testing.T) {
	q, db := figure3Query(), figure3DB()
	exact, err := LocalSensitivity(q, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 100} {
		approx, err := LocalSensitivity(q, db, Options{TopK: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if approx.LS < exact.LS {
			t.Fatalf("k=%d: bound %d below exact %d", k, approx.LS, exact.LS)
		}
	}
	if _, err := LocalSensitivity(figure1Query(), figure1DB(), Options{TopK: 1}); err == nil {
		t.Fatal("Figure 1 shape with top-k should be rejected (three approximate botjoins in one group)")
	}
}

func TestGroupPiecesPartitioning(t *testing.T) {
	a := &relation.Counted{Attrs: []string{"A", "B"}}
	b := &relation.Counted{Attrs: []string{"B", "C"}}
	c := &relation.Counted{Attrs: []string{"X"}}
	groups := GroupPieces([]*relation.Counted{a, b, c})
	if len(groups) != 2 {
		t.Fatalf("groups=%d, want 2", len(groups))
	}
	sizes := map[int]int{}
	for _, g := range groups {
		sizes[len(g)]++
	}
	if sizes[2] != 1 || sizes[1] != 1 {
		t.Fatalf("group sizes=%v", sizes)
	}
	if got := GroupPieces(nil); len(got) != 0 {
		t.Fatalf("empty input gave %d groups", len(got))
	}
}

func TestOrderPiecesApproxOnlyPair(t *testing.T) {
	a := &relation.Counted{Attrs: []string{"A"}, Rows: []relation.Tuple{{1}}, Cnt: []int64{1}, Default: 2}
	b := &relation.Counted{Attrs: []string{"A"}, Rows: []relation.Tuple{{1}}, Cnt: []int64{1}, Default: 2}
	if _, _, err := orderPieces([]*relation.Counted{a, b}); err == nil {
		t.Fatal("two approximate pieces joined")
	}
	if _, err := GroupTable([]*relation.Counted{a, b}, []string{"A"}); err == nil {
		t.Fatal("two approximate pieces grouped")
	}
	// A single approximate piece passes through unchanged (and its Default
	// survives the identity group-by).
	ordered, attrs, err := orderPieces([]*relation.Counted{a})
	if err != nil || len(ordered) != 1 || ordered[0] != a || len(attrs) != 1 {
		t.Fatalf("singleton approx group: %v %v %v", ordered, attrs, err)
	}
	gt, err := GroupTable([]*relation.Counted{a}, []string{"A"})
	if err != nil || gt.Default != 2 || len(gt.Rows) != 1 {
		t.Fatalf("singleton approx groupTable: %+v %v", gt, err)
	}
}
