package core

import (
	"fmt"
	"math/rand"
	"testing"

	"tsens/internal/query"
	"tsens/internal/relation"
)

// TestParallelismInvariance checks that the engine returns identical results
// at every Parallelism setting, on the Figure 1 fixture and on randomized
// star-join instances (several independent subtrees, exercising concurrent
// botjoin/topjoin scheduling).
func TestParallelismInvariance(t *testing.T) {
	type instance struct {
		name string
		run  func(parallelism int) (*Result, error)
	}
	var instances []instance

	instances = append(instances, instance{"figure1", func(p int) (*Result, error) {
		return LocalSensitivity(figure1Query(), figure1DB(), Options{Parallelism: p})
	}})

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3; trial++ {
		db, q := randomStar(rng, 4, 60)
		trial := trial
		instances = append(instances, instance{
			fmt.Sprintf("star%d", trial),
			func(p int) (*Result, error) { return LocalSensitivity(q, db, Options{Parallelism: p}) },
		})
	}

	for _, inst := range instances {
		base, err := inst.run(1)
		if err != nil {
			t.Fatalf("%s sequential: %v", inst.name, err)
		}
		for _, p := range []int{0, 2, 8} {
			got, err := inst.run(p)
			if err != nil {
				t.Fatalf("%s par=%d: %v", inst.name, p, err)
			}
			if got.LS != base.LS || got.Count != base.Count {
				t.Fatalf("%s par=%d: (LS=%d,Count=%d) != sequential (LS=%d,Count=%d)",
					inst.name, p, got.LS, got.Count, base.LS, base.Count)
			}
			for rel, tr := range base.PerRelation {
				if got.PerRelation[rel].Sensitivity != tr.Sensitivity {
					t.Fatalf("%s par=%d: relation %s sensitivity %d != %d",
						inst.name, p, rel, got.PerRelation[rel].Sensitivity, tr.Sensitivity)
				}
			}
		}
	}
}

// randomStar builds a star join R0(X1..Xk) ⋈ S1(X1,Y1) ⋈ … ⋈ Sk(Xk,Yk):
// the satellites are independent subtrees under the center.
func randomStar(rng *rand.Rand, k, rows int) (*relation.Database, *query.Query) {
	center := make([]relation.Tuple, 0, rows)
	centerAttrs := make([]string, k)
	for i := range centerAttrs {
		centerAttrs[i] = fmt.Sprintf("X%d", i)
	}
	for i := 0; i < rows; i++ {
		t := make(relation.Tuple, k)
		for j := range t {
			t[j] = int64(rng.Intn(5))
		}
		center = append(center, t)
	}
	rels := []*relation.Relation{relation.MustNew("R0", centerAttrs, center)}
	atoms := []query.Atom{{Relation: "R0", Vars: centerAttrs}}
	for j := 0; j < k; j++ {
		var satRows []relation.Tuple
		for i := 0; i < rows/2; i++ {
			satRows = append(satRows, relation.Tuple{int64(rng.Intn(5)), int64(rng.Intn(4))})
		}
		name := fmt.Sprintf("S%d", j)
		x, y := fmt.Sprintf("X%d", j), fmt.Sprintf("Y%d", j)
		rels = append(rels, relation.MustNew(name, []string{x, y}, satRows))
		atoms = append(atoms, query.Atom{Relation: name, Vars: []string{x, y}})
	}
	return relation.MustNewDatabase(rels...), query.MustNew("star", atoms, nil)
}
