package core

import (
	"fmt"

	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/yannakakis"
)

// PathLocalSensitivity implements Algorithm 1 of the paper: local
// sensitivity of a path join query
//
//	Q(A0..Am) :- R1(A0,A1), R2(A1,A2), …, Rm(Am-1,Am)
//
// in O(n log n) time. The query's atoms may be listed in any order and may
// carry extra single-occurrence variables and composite connectors; the
// only requirement is the path shape detected by query.PathOrder.
//
// It produces the same Result as LocalSensitivity on the same input (tested
// against it); it exists both as a faithful rendering of Algorithm 1 and as
// a lower-constant fast path for chains.
func PathLocalSensitivity(q *query.Query, db *relation.Database) (*Result, error) {
	order, ok := query.PathOrder(q.Atoms)
	if !ok {
		return nil, fmt.Errorf("core: %s is not a path join query", q.Name)
	}
	if _, err := q.Bind(db); err != nil {
		return nil, err
	}
	m := len(order)
	atoms := make([]query.Atom, m)
	for i, ai := range order {
		atoms[i] = q.Atoms[ai]
	}

	// conn[i] is the connector variable set shared by atom i and atom i+1
	// (the "Ai" of the paper); conn has m-1 entries.
	conn := make([][]string, m-1)
	for i := 0; i+1 < m; i++ {
		conn[i] = relation.Intersect(atoms[i].Vars, atoms[i+1].Vars)
	}
	// Effective vars per atom: left connector ∪ right connector.
	eff := make([][]string, m)
	for i := range atoms {
		var e []string
		if i > 0 {
			e = relation.Union(e, conn[i-1])
		}
		if i+1 < m {
			e = relation.Union(e, conn[i])
		}
		eff[i] = e
	}
	base := make([]*relation.Counted, m)
	for i, a := range atoms {
		c, err := yannakakis.BaseCounted(q, db, a)
		if err != nil {
			return nil, err
		}
		base[i], err = c.GroupBy(eff[i])
		if err != nil {
			return nil, err
		}
	}

	// Step I: topjoins. topJ[i] = ⊤(R_{i+1}) over conn[i], defined for
	// i = 0..m-2: multiplicity of partial paths R1..R_{i+1} per value of
	// conn[i].
	topJ := make([]*relation.Counted, m-1)
	for i := 0; i+1 < m; i++ {
		acc := base[i]
		if i > 0 {
			j, err := relation.Join(acc, topJ[i-1])
			if err != nil {
				return nil, err
			}
			acc = j
		}
		g, err := acc.GroupBy(conn[i])
		if err != nil {
			return nil, err
		}
		topJ[i] = g
	}
	// Step II: botjoins. botK[i] = ⊥(R_{i+1}) over conn[i]: multiplicity of
	// partial paths R_{i+2}..R_m per value of conn[i].
	botK := make([]*relation.Counted, m-1)
	for i := m - 2; i >= 0; i-- {
		acc := base[i+1]
		if i+2 < m {
			j, err := relation.Join(acc, botK[i+1])
			if err != nil {
				return nil, err
			}
			acc = j
		}
		g, err := acc.GroupBy(conn[i])
		if err != nil {
			return nil, err
		}
		botK[i] = g
	}

	res := &Result{
		PerRelation:   make(map[string]*TupleResult),
		DoublyAcyclic: true,
		MaxDegree:     2,
	}
	if m == 1 {
		res.MaxDegree = 0
	}
	// |Q(D)|: fold botK[0] into R1.
	{
		acc := base[0]
		if m > 1 {
			j, err := relation.Join(acc, botK[0])
			if err != nil {
				return nil, err
			}
			acc = j
		}
		res.Count = acc.SumCnt()
	}

	// Step III: per-relation maxima. The sensitivity of a tuple (x, y) of
	// R_{i+1} with x over conn[i-1] and y over conn[i] is
	// topJ[i-1][x] · botK[i][y]; maxima multiply because the two sides
	// share no variables.
	mdFor := func(i int) *Member {
		return &Member{Atom: atoms[i], EffVars: eff[i], Preds: q.Selections[atoms[i].Relation]}
	}
	inDB := DBLookup(q, db)
	for i := 0; i < m; i++ {
		md := mdFor(i)
		tr := &TupleResult{Relation: atoms[i].Relation, Vars: append([]string(nil), atoms[i].Vars...)}
		sens := int64(1)
		covered := make(map[string]int64)
		ok := true
		take := func(c *relation.Counted) {
			c = filterByPreds(c, md)
			row, cnt := c.MaxRow()
			sens = relation.MulSat(sens, cnt)
			if cnt == 0 {
				ok = false
				return
			}
			for x, a := range c.Attrs {
				covered[a] = row[x]
			}
		}
		if i > 0 {
			take(topJ[i-1])
		}
		if ok && i+1 < m {
			take(botK[i])
		}
		if !ok {
			sens = 0
		}
		tr.Sensitivity = sens
		if sens > 0 {
			values := make(relation.Tuple, len(atoms[i].Vars))
			wildcard := make([]bool, len(atoms[i].Vars))
			feasible := true
			for x, v := range atoms[i].Vars {
				if val, got := covered[v]; got {
					values[x] = val
					continue
				}
				wildcard[x] = true
				val, can := pickValue(predsFor(md, v))
				if !can {
					feasible = false
					break
				}
				values[x] = val
			}
			if feasible {
				tr.Values = values
				tr.Wildcard = wildcard
				if row, ok := inDB(md, values, wildcard); ok {
					tr.InDatabase = true
					tr.Values = row
				}
			} else {
				tr.Sensitivity = 0
			}
		}
		res.PerRelation[tr.Relation] = tr
		if tr.Sensitivity > res.LS {
			res.LS = tr.Sensitivity
			res.Best = tr
		}
	}
	return res, nil
}
