package relation

import (
	"math/rand"
	"testing"
)

func TestShardRangeAndStability(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		for v := int64(-50); v < 50; v++ {
			s := Shard(v, n)
			if s < 0 || s >= n {
				t.Fatalf("Shard(%d, %d) = %d out of range", v, n, s)
			}
			if s != Shard(v, n) {
				t.Fatalf("Shard(%d, %d) unstable", v, n)
			}
		}
	}
	if Shard(123, 0) != 0 || Shard(123, -4) != 0 {
		t.Fatal("non-positive shard counts must map to 0")
	}
}

func TestShardSpreadsSequentialKeys(t *testing.T) {
	// Dictionary-encoded values are small sequential integers; the mix step
	// must spread them rather than stride them onto shard = v % n.
	const n = 4
	var counts [n]int
	for v := int64(0); v < 4000; v++ {
		counts[Shard(v, n)]++
	}
	for i, c := range counts {
		if c < 600 || c > 1400 {
			t.Fatalf("shard %d got %d of 4000 sequential keys: hash does not spread", i, c)
		}
	}
}

func TestPartitionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := make([]Tuple, 500)
	for i := range rows {
		rows[i] = Tuple{int64(rng.Intn(40)), int64(rng.Intn(1000))}
	}
	r := MustNew("R", []string{"a", "b"}, rows)
	const n = 4
	parts := r.Partition(0, n)
	total := 0
	for i, p := range parts {
		if p.Name != "R" || len(p.Attrs) != 2 {
			t.Fatalf("partition %d lost schema: %+v", i, p)
		}
		for _, row := range p.Rows {
			if Shard(row[0], n) != i {
				t.Fatalf("row %v landed in partition %d, owner is %d", row, i, Shard(row[0], n))
			}
		}
		total += len(p.Rows)
	}
	if total != len(rows) {
		t.Fatalf("partitions hold %d rows, want %d", total, len(rows))
	}
	// Partitioning agrees with update routing: every row of partition i
	// routes to shard i through the same (column, n) pair.
	one := r.Partition(0, 1)
	if len(one) != 1 || len(one[0].Rows) != len(rows) {
		t.Fatal("n=1 must yield one full partition")
	}
	bad := r.Partition(9, n) // out-of-range column: all rows to partition 0
	if len(bad[0].Rows) != len(rows) {
		t.Fatal("out-of-range column must put every row in partition 0")
	}
}

func TestRowSetContains(t *testing.T) {
	r := MustNew("R", []string{"a", "b"}, []Tuple{{1, 2}, {1, 2}, {3, 4}})
	rs := NewRowSet(r)
	if !rs.Contains(Tuple{1, 2}) || !rs.Contains(Tuple{3, 4}) {
		t.Fatal("present rows reported absent")
	}
	if rs.Contains(Tuple{9, 9}) {
		t.Fatal("absent row reported present")
	}
	if err := rs.Remove(r, Tuple{3, 4}); err != nil {
		t.Fatal(err)
	}
	if rs.Contains(Tuple{3, 4}) {
		t.Fatal("removed row reported present")
	}
	if err := rs.Remove(r, Tuple{1, 2}); err != nil {
		t.Fatal(err)
	}
	if !rs.Contains(Tuple{1, 2}) {
		t.Fatal("multiset lost the second occurrence")
	}
}
