package relation

import (
	"fmt"
	"sort"
)

// JoinSorted computes the same natural join as Join using a sort-merge
// strategy — the implementation the paper describes for its top/botjoin
// computations ("sort both relations on the join column, join together,
// then groupby", Section 4.2). It exists as an alternative engine and as
// an independent implementation for differential testing; results are
// identical to Join up to row order.
//
// Approximate operands (Default > 0) are not supported: their semantics
// require probing from the exact side, which the hash join provides.
func JoinSorted(a, b *Counted) (*Counted, error) {
	if a.Default > 0 || b.Default > 0 {
		return nil, fmt.Errorf("join(sort-merge): approximate operands unsupported")
	}
	shared := Intersect(a.Attrs, b.Attrs)
	if len(shared) == 0 {
		// Cross product: no ordering needed.
		out := &Counted{Attrs: Union(a.Attrs, b.Attrs)}
		crossProductInto(out, a, b)
		return out, nil
	}
	aIdx, err := a.attrIndexes(shared)
	if err != nil {
		return nil, err
	}
	bIdx, err := b.attrIndexes(shared)
	if err != nil {
		return nil, err
	}
	extra := Minus(b.Attrs, shared)
	extraIdx, err := b.attrIndexes(extra)
	if err != nil {
		return nil, err
	}

	aOrder := sortedOrder(a, aIdx)
	bOrder := sortedOrder(b, bIdx)
	out := &Counted{Attrs: Union(a.Attrs, b.Attrs)}

	i, j := 0, 0
	for i < len(aOrder) && j < len(bOrder) {
		ra := a.Rows[aOrder[i]]
		rb := b.Rows[bOrder[j]]
		switch compareAt(ra, aIdx, rb, bIdx) {
		case -1:
			i++
		case 1:
			j++
		default:
			// Find the equal-key runs on both sides.
			iEnd := i + 1
			for iEnd < len(aOrder) && compareAt(a.Rows[aOrder[iEnd]], aIdx, ra, aIdx) == 0 {
				iEnd++
			}
			jEnd := j + 1
			for jEnd < len(bOrder) && compareAt(b.Rows[bOrder[jEnd]], bIdx, rb, bIdx) == 0 {
				jEnd++
			}
			for x := i; x < iEnd; x++ {
				for y := j; y < jEnd; y++ {
					ta := a.Rows[aOrder[x]]
					tb := b.Rows[bOrder[y]]
					row := make(Tuple, 0, len(out.Attrs))
					row = append(row, ta...)
					for _, ix := range extraIdx {
						row = append(row, tb[ix])
					}
					out.Rows = append(out.Rows, row)
					out.Cnt = append(out.Cnt, MulSat(a.Cnt[aOrder[x]], b.Cnt[bOrder[y]]))
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return out, nil
}

// crossProductInto appends the cross product of a and b to out, whose Attrs
// must already be Union(a.Attrs, b.Attrs). Rows are carved from flat arena
// chunks.
func crossProductInto(out *Counted, a, b *Counted) {
	ar := newTupleArena(len(out.Attrs), len(a.Rows)*len(b.Rows))
	for i, ta := range a.Rows {
		for j, tb := range b.Rows {
			row := ar.alloc()
			copy(row, ta)
			copy(row[len(ta):], tb)
			out.Rows = append(out.Rows, row)
			out.Cnt = append(out.Cnt, MulSat(a.Cnt[i], b.Cnt[j]))
		}
	}
}

// sortedOrder returns row indexes of c ordered by the key columns idxs.
func sortedOrder(c *Counted, idxs []int) []int {
	order := make([]int, len(c.Rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return compareAt(c.Rows[order[x]], idxs, c.Rows[order[y]], idxs) < 0
	})
	return order
}

// compareAt lexicographically compares two tuples on their respective key
// column lists (which must have equal length).
func compareAt(a Tuple, aIdx []int, b Tuple, bIdx []int) int {
	for k := range aIdx {
		va, vb := a[aIdx[k]], b[bIdx[k]]
		switch {
		case va < vb:
			return -1
		case va > vb:
			return 1
		}
	}
	return 0
}
