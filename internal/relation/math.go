package relation

import "math"

// AddSat returns a+b, saturating at math.MaxInt64. Counts are non-negative
// throughout the engine, so only positive overflow is handled.
func AddSat(a, b int64) int64 {
	s := a + b
	if s < a || s < b {
		return math.MaxInt64
	}
	return s
}

// MulSat returns a*b, saturating at math.MaxInt64 for non-negative inputs.
func MulSat(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}
