package relation

import "math"

// AddSat returns a+b, saturating at the int64 extremes. Materialized counts
// are non-negative throughout the engine, but the incremental delta layer
// (delta.go) flows signed count changes through the same kernels, so both
// overflow directions are handled.
func AddSat(a, b int64) int64 {
	s := a + b
	if a > 0 && b > 0 && s < 0 {
		return math.MaxInt64
	}
	if a < 0 && b < 0 && s >= 0 {
		return math.MinInt64
	}
	return s
}

// MulSat returns a*b, saturating at the int64 extremes for any signs.
func MulSat(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if (a == math.MinInt64 && b == -1) || (b == math.MinInt64 && a == -1) || p/b != a {
		if (a > 0) == (b > 0) {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return p
}
