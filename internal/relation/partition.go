package relation

// Hash partitioning of relations by one key column, the routing primitive
// of the sharded serving layer: an update to relation R is owned by shard
// Shard(row[pcol(R)], n), and a relation split with Partition on the same
// column puts every row in exactly the shard that owns its updates. The
// hash is fixed (not seeded per process) so that routing is stable across
// a server's lifetime and across the differential test's replays.

// Shard maps a key value to a shard index in [0, n). n below 2 always
// returns 0 (the single-shard degenerate case). The mix step is the
// splitmix64 finalizer, so adjacent int64 keys (the common case for
// dictionary-encoded values and synthetic workloads) spread uniformly
// instead of striding.
func Shard(v int64, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(v)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// Partition splits r into n relations by Shard of the value in column col;
// partition i holds exactly the rows owned by shard i, in r's row order.
// Tuples are shared with r, not cloned — callers that mutate partitions
// (incremental sessions) clone on open. An out-of-range column puts every
// row in partition 0, matching the router's fallback for unpartitionable
// relations.
func (r *Relation) Partition(col, n int) []*Relation {
	if n < 1 {
		n = 1
	}
	parts := make([]*Relation, n)
	rows := make([][]Tuple, n)
	for _, t := range r.Rows {
		i := 0
		if col >= 0 && col < len(t) {
			i = Shard(t[col], n)
		}
		rows[i] = append(rows[i], t)
	}
	for i := range parts {
		parts[i] = &Relation{Name: r.Name, Attrs: append([]string(nil), r.Attrs...), Rows: rows[i]}
	}
	return parts
}

// Contains reports whether at least one occurrence of t is indexed.
func (rs *RowSet) Contains(t Tuple) bool {
	return len(rs.pos[rowSetKey(t)]) > 0
}
