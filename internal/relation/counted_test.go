package relation

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestFromRelationDedup(t *testing.T) {
	r := MustNew("R", []string{"A", "B"}, []Tuple{{1, 1}, {1, 1}, {2, 1}})
	c := FromRelation(r)
	if len(c.Rows) != 2 {
		t.Fatalf("got %d distinct rows", len(c.Rows))
	}
	if c.SumCnt() != 3 {
		t.Fatalf("SumCnt=%d", c.SumCnt())
	}
	cnt, err := c.Lookup([]string{"A", "B"}, Tuple{1, 1})
	if err != nil || cnt != 2 {
		t.Fatalf("Lookup=(%d,%v)", cnt, err)
	}
}

func TestGroupBy(t *testing.T) {
	c := &Counted{
		Attrs: []string{"A", "B"},
		Rows:  []Tuple{{1, 1}, {1, 2}, {2, 1}},
		Cnt:   []int64{2, 3, 4},
	}
	g, err := c.GroupBy([]string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 2 {
		t.Fatalf("groups=%d", len(g.Rows))
	}
	cnt, err := g.Lookup([]string{"A"}, Tuple{1})
	if err != nil || cnt != 5 {
		t.Fatalf("group A=1 cnt=%d err=%v", cnt, err)
	}
	if _, err := c.GroupBy([]string{"Z"}); err == nil {
		t.Fatal("group by missing attribute accepted")
	}
}

func TestJoinNatural(t *testing.T) {
	a := &Counted{Attrs: []string{"A", "B"}, Rows: []Tuple{{1, 1}, {1, 2}}, Cnt: []int64{2, 1}}
	b := &Counted{Attrs: []string{"B", "C"}, Rows: []Tuple{{1, 7}, {1, 8}, {3, 9}}, Cnt: []int64{5, 1, 1}}
	j, err := Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// (1,1) joins (1,7) and (1,8): counts 10 and 2; (1,2) joins nothing.
	if j.SumCnt() != 12 {
		t.Fatalf("SumCnt=%d", j.SumCnt())
	}
	wantAttrs := []string{"A", "B", "C"}
	for i, x := range wantAttrs {
		if j.Attrs[i] != x {
			t.Fatalf("Attrs=%v", j.Attrs)
		}
	}
}

func TestJoinCrossProduct(t *testing.T) {
	a := &Counted{Attrs: []string{"A"}, Rows: []Tuple{{1}, {2}}, Cnt: []int64{2, 3}}
	b := &Counted{Attrs: []string{"B"}, Rows: []Tuple{{7}}, Cnt: []int64{4}}
	j, err := Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Rows) != 2 || j.SumCnt() != 20 {
		t.Fatalf("cross product rows=%d sum=%d", len(j.Rows), j.SumCnt())
	}
}

func TestJoinIdentity(t *testing.T) {
	a := &Counted{Attrs: []string{"A"}, Rows: []Tuple{{1}}, Cnt: []int64{5}}
	j, err := Join(a, Constant(1))
	if err != nil {
		t.Fatal(err)
	}
	if j.SumCnt() != 5 || len(j.Rows) != 1 {
		t.Fatalf("identity join changed the relation: %v", j)
	}
}

func TestJoinWithDefault(t *testing.T) {
	a := &Counted{Attrs: []string{"A", "B"}, Rows: []Tuple{{1, 1}, {2, 2}}, Cnt: []int64{1, 1}}
	b := &Counted{Attrs: []string{"B"}, Rows: []Tuple{{1}}, Cnt: []int64{10}, Default: 3}
	j, err := Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// (1,1) matches cnt 10; (2,2) misses and gets Default 3.
	if j.SumCnt() != 13 {
		t.Fatalf("SumCnt=%d", j.SumCnt())
	}
	// Default operand with attrs outside a must be rejected.
	c := &Counted{Attrs: []string{"C"}, Rows: []Tuple{{1}}, Cnt: []int64{1}, Default: 2}
	if _, err := Join(a, c); err == nil {
		t.Fatal("approximate operand with new attrs accepted")
	}
	if _, err := Join(b, a); err == nil {
		t.Fatal("approximate left operand accepted")
	}
}

func TestSemijoin(t *testing.T) {
	a := &Counted{Attrs: []string{"A", "B"}, Rows: []Tuple{{1, 1}, {2, 2}}, Cnt: []int64{1, 5}}
	b := &Counted{Attrs: []string{"B", "C"}, Rows: []Tuple{{2, 9}}, Cnt: []int64{1}}
	s, err := Semijoin(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 1 || s.Cnt[0] != 5 {
		t.Fatalf("semijoin=%v %v", s.Rows, s.Cnt)
	}
}

func TestMaxRow(t *testing.T) {
	c := &Counted{Attrs: []string{"A"}, Rows: []Tuple{{1}, {2}}, Cnt: []int64{3, 9}}
	row, cnt := c.MaxRow()
	if cnt != 9 || !row.Equal(Tuple{2}) {
		t.Fatalf("MaxRow=(%v,%d)", row, cnt)
	}
	empty := &Counted{Attrs: []string{"A"}}
	if row, cnt := empty.MaxRow(); row != nil || cnt != 0 {
		t.Fatalf("empty MaxRow=(%v,%d)", row, cnt)
	}
	c.Default = 100
	row, cnt = c.MaxRow()
	if row != nil || cnt != 100 {
		t.Fatalf("default MaxRow=(%v,%d)", row, cnt)
	}
}

func TestTopK(t *testing.T) {
	c := &Counted{
		Attrs: []string{"A"},
		Rows:  []Tuple{{1}, {2}, {3}, {4}},
		Cnt:   []int64{10, 7, 5, 1},
	}
	k := c.TopK(2)
	if len(k.Rows) != 2 || k.Default != 7 {
		t.Fatalf("TopK rows=%d default=%d", len(k.Rows), k.Default)
	}
	// Unaffected when already small.
	if got := c.TopK(10); got != c {
		t.Fatal("TopK should return the receiver when len<=k")
	}
	if got := c.TopK(0); got != c {
		t.Fatal("TopK(0) should disable truncation")
	}
}

func TestJoinGroupFusion(t *testing.T) {
	a := &Counted{Attrs: []string{"A", "B"}, Rows: []Tuple{{1, 1}, {2, 1}}, Cnt: []int64{1, 1}}
	b := &Counted{Attrs: []string{"B", "C"}, Rows: []Tuple{{1, 5}, {1, 6}}, Cnt: []int64{2, 3}}
	g, err := JoinGroup(a, b, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 2 {
		t.Fatalf("groups=%d", len(g.Rows))
	}
	for i := range g.Rows {
		if g.Cnt[i] != 5 {
			t.Fatalf("row %v cnt=%d want 5", g.Rows[i], g.Cnt[i])
		}
	}
}

func TestFilterCounted(t *testing.T) {
	c := &Counted{Attrs: []string{"A"}, Rows: []Tuple{{1}, {2}}, Cnt: []int64{1, 2}}
	f := c.Filter(func(t Tuple) bool { return t[0] == 2 })
	if len(f.Rows) != 1 || f.Cnt[0] != 2 {
		t.Fatalf("filter=%v %v", f.Rows, f.Cnt)
	}
}

func TestSaturatingMath(t *testing.T) {
	if AddSat(math.MaxInt64, 1) != math.MaxInt64 {
		t.Fatal("AddSat overflow not saturated")
	}
	if MulSat(math.MaxInt64, 2) != math.MaxInt64 {
		t.Fatal("MulSat overflow not saturated")
	}
	if MulSat(0, math.MaxInt64) != 0 || MulSat(math.MaxInt64, 0) != 0 {
		t.Fatal("MulSat zero wrong")
	}
	if AddSat(2, 3) != 5 || MulSat(4, 5) != 20 {
		t.Fatal("basic arithmetic wrong")
	}
}

// Property: Join is commutative in total count for exact operands.
func TestJoinCommutativeCount(t *testing.T) {
	f := func(av, bv []uint8) bool {
		a := &Counted{Attrs: []string{"A", "B"}}
		for _, v := range av {
			a.Rows = append(a.Rows, Tuple{int64(v % 4), int64(v % 3)})
			a.Cnt = append(a.Cnt, int64(v%5)+1)
		}
		b := &Counted{Attrs: []string{"B", "C"}}
		for _, v := range bv {
			b.Rows = append(b.Rows, Tuple{int64(v % 3), int64(v % 7)})
			b.Cnt = append(b.Cnt, int64(v%5)+1)
		}
		x, err1 := Join(a, b)
		y, err2 := Join(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return x.SumCnt() == y.SumCnt()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: GroupBy preserves the total count.
func TestGroupByPreservesTotal(t *testing.T) {
	f := func(vals []uint8) bool {
		c := &Counted{Attrs: []string{"A", "B"}}
		for _, v := range vals {
			c.Rows = append(c.Rows, Tuple{int64(v % 5), int64(v % 2)})
			c.Cnt = append(c.Cnt, int64(v%7)+1)
		}
		g, err := c.GroupBy([]string{"A"})
		if err != nil {
			return false
		}
		return g.SumCnt() == c.SumCnt()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopK yields an upper bound on every lookup.
func TestTopKUpperBound(t *testing.T) {
	f := func(vals []uint8, kRaw uint8) bool {
		c := &Counted{Attrs: []string{"A"}}
		seen := map[int64]int{}
		for _, v := range vals {
			key := int64(v % 9)
			if j, ok := seen[key]; ok {
				c.Cnt[j]++
				continue
			}
			seen[key] = len(c.Rows)
			c.Rows = append(c.Rows, Tuple{key})
			c.Cnt = append(c.Cnt, 1)
		}
		k := int(kRaw%5) + 1
		approx := c.TopK(k)
		for i, row := range c.Rows {
			got, err := approx.Lookup([]string{"A"}, row)
			if err != nil || got < c.Cnt[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCountedClone(t *testing.T) {
	c := &Counted{Attrs: []string{"A"}, Rows: []Tuple{{1}}, Cnt: []int64{2}, Default: 1}
	d := c.Clone()
	d.Rows[0][0] = 9
	d.Cnt[0] = 9
	if c.Rows[0][0] == 9 || c.Cnt[0] == 9 {
		t.Fatal("Clone shares storage")
	}
}

func TestConstant(t *testing.T) {
	c := Constant(7)
	if len(c.Rows) != 1 || c.SumCnt() != 7 || len(c.Attrs) != 0 {
		t.Fatalf("Constant=%v", c)
	}
}

func TestLookupErrors(t *testing.T) {
	c := &Counted{Attrs: []string{"A", "B"}, Rows: []Tuple{{1, 2}}, Cnt: []int64{1}}
	if _, err := c.Lookup([]string{"A"}, Tuple{1, 2}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := c.Lookup([]string{"A", "Z"}, Tuple{1, 2}); err == nil {
		t.Fatal("missing attribute accepted")
	}
	// Order-insensitive lookup.
	cnt, err := c.Lookup([]string{"B", "A"}, Tuple{2, 1})
	if err != nil || cnt != 1 {
		t.Fatalf("reordered lookup=(%d,%v)", cnt, err)
	}
}

func TestGroupByDeterministicIndependentOfRowOrder(t *testing.T) {
	build := func(perm []int) *Counted {
		base := []Tuple{{1, 1}, {1, 2}, {2, 2}}
		cnts := []int64{1, 2, 3}
		c := &Counted{Attrs: []string{"A", "B"}}
		for _, i := range perm {
			c.Rows = append(c.Rows, base[i])
			c.Cnt = append(c.Cnt, cnts[i])
		}
		return c
	}
	g1, _ := build([]int{0, 1, 2}).GroupBy([]string{"A"})
	g2, _ := build([]int{2, 1, 0}).GroupBy([]string{"A"})
	type pair struct {
		k int64
		c int64
	}
	collect := func(g *Counted) []pair {
		var out []pair
		for i := range g.Rows {
			out = append(out, pair{g.Rows[i][0], g.Cnt[i]})
		}
		sort.Slice(out, func(x, y int) bool { return out[x].k < out[y].k })
		return out
	}
	p1, p2 := collect(g1), collect(g2)
	if len(p1) != len(p2) {
		t.Fatal("different group counts")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("group mismatch %v vs %v", p1[i], p2[i])
		}
	}
}
