package relation

import (
	"reflect"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New("R", []string{"A", "A"}, nil); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if _, err := New("R", []string{""}, nil); err == nil {
		t.Fatal("empty attribute accepted")
	}
	if _, err := New("R", []string{"A", "B"}, []Tuple{{1}}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	r, err := New("R", []string{"A", "B"}, []Tuple{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
}

func TestAttrIndexAndProject(t *testing.T) {
	r := MustNew("R", []string{"A", "B", "C"}, []Tuple{{1, 2, 3}})
	if got := r.AttrIndex("B"); got != 1 {
		t.Fatalf("AttrIndex(B)=%d", got)
	}
	if got := r.AttrIndex("Z"); got != -1 {
		t.Fatalf("AttrIndex(Z)=%d", got)
	}
	p, err := r.Project(r.Rows[0], []string{"C", "A"})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(Tuple{3, 1}) {
		t.Fatalf("Project=%v", p)
	}
	if _, err := r.Project(r.Rows[0], []string{"Z"}); err == nil {
		t.Fatal("projection on missing attribute accepted")
	}
}

func TestFilter(t *testing.T) {
	r := MustNew("R", []string{"A"}, []Tuple{{1}, {2}, {3}})
	f := r.Filter(func(t Tuple) bool { return t[0] >= 2 })
	if len(f.Rows) != 2 {
		t.Fatalf("got %d rows", len(f.Rows))
	}
	if len(r.Rows) != 3 {
		t.Fatal("filter mutated the input")
	}
}

func TestActiveDomain(t *testing.T) {
	r := MustNew("R", []string{"A", "B"}, []Tuple{{3, 0}, {1, 0}, {3, 0}, {2, 0}})
	d, err := r.ActiveDomain("A")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, []int64{1, 2, 3}) {
		t.Fatalf("ActiveDomain=%v", d)
	}
	if _, err := r.ActiveDomain("Z"); err == nil {
		t.Fatal("missing attribute accepted")
	}
}

func TestDatabase(t *testing.T) {
	a := MustNew("A", []string{"X"}, []Tuple{{1}})
	b := MustNew("B", []string{"Y"}, []Tuple{{1}, {2}})
	db, err := NewDatabase(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != 3 {
		t.Fatalf("Size=%d", db.Size())
	}
	if !reflect.DeepEqual(db.Names(), []string{"A", "B"}) {
		t.Fatalf("Names=%v", db.Names())
	}
	if db.Relation("A") != a {
		t.Fatal("lookup failed")
	}
	if err := db.Add(MustNew("A", []string{"X"}, nil)); err == nil {
		t.Fatal("duplicate name accepted")
	}
	clone := db.Clone()
	clone.Relation("A").Rows[0][0] = 99
	if db.Relation("A").Rows[0][0] == 99 {
		t.Fatal("Clone shares row storage")
	}
	if err := db.Replace(MustNew("B", []string{"Y"}, nil)); err != nil {
		t.Fatal(err)
	}
	if len(db.Relation("B").Rows) != 0 {
		t.Fatal("Replace did not take effect")
	}
	if err := db.Replace(MustNew("Z", []string{"Y"}, nil)); err == nil {
		t.Fatal("Replace of unknown relation accepted")
	}
}

func TestAttrSetOps(t *testing.T) {
	a := []string{"A", "B", "C"}
	b := []string{"B", "D", "A"}
	if got := Intersect(a, b); !reflect.DeepEqual(got, []string{"A", "B"}) {
		t.Fatalf("Intersect=%v", got)
	}
	if got := Union(a, b); !reflect.DeepEqual(got, []string{"A", "B", "C", "D"}) {
		t.Fatalf("Union=%v", got)
	}
	if got := Minus(a, b); !reflect.DeepEqual(got, []string{"C"}) {
		t.Fatalf("Minus=%v", got)
	}
	if !ContainsAll(a, []string{"C", "A"}) || ContainsAll(a, []string{"D"}) {
		t.Fatal("ContainsAll wrong")
	}
}

func TestTupleCloneEqual(t *testing.T) {
	a := Tuple{1, 2}
	c := a.Clone()
	c[0] = 9
	if a[0] == 9 {
		t.Fatal("Clone shares storage")
	}
	if !a.Equal(Tuple{1, 2}) || a.Equal(Tuple{1}) || a.Equal(Tuple{1, 3}) {
		t.Fatal("Equal wrong")
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	x := d.Encode("foo")
	y := d.Encode("bar")
	if x == y {
		t.Fatal("distinct strings share a code")
	}
	if d.Encode("foo") != x {
		t.Fatal("Encode not idempotent")
	}
	if d.Decode(x) != "foo" || d.Decode(y) != "bar" {
		t.Fatal("Decode wrong")
	}
	if d.Decode(99) != "" || d.Decode(-1) != "" {
		t.Fatal("out-of-range Decode should be empty")
	}
	if d.Len() != 2 {
		t.Fatalf("Len=%d", d.Len())
	}
}
