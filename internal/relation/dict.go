package relation

// Dict is a bidirectional dictionary encoder mapping strings to dense int64
// codes. The engine stores only int64 values; tools that ingest textual data
// (CSV, the query CLI) use a Dict to encode on the way in and decode on the
// way out. The zero value is not usable; call NewDict.
type Dict struct {
	toID map[string]int64
	toS  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{toID: make(map[string]int64)}
}

// Encode interns s and returns its code, assigning the next dense code on
// first sight.
func (d *Dict) Encode(s string) int64 {
	if id, ok := d.toID[s]; ok {
		return id
	}
	id := int64(len(d.toS))
	d.toID[s] = id
	d.toS = append(d.toS, s)
	return id
}

// Decode returns the string for a code, or "" if the code was never issued.
func (d *Dict) Decode(id int64) string {
	if id < 0 || id >= int64(len(d.toS)) {
		return ""
	}
	return d.toS[id]
}

// Len reports the number of interned strings.
func (d *Dict) Len() int { return len(d.toS) }
