package relation

import (
	"math/rand"
	"sort"
	"testing"
)

// canonical renders a counted relation as a sorted multiset of
// (row, count) pairs after grouping, for order-insensitive comparison.
func canonical(t *testing.T, c *Counted) []string {
	t.Helper()
	g, err := c.GroupBy(c.Attrs)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	var buf []byte
	for i, row := range g.Rows {
		buf = encodeTuple(buf[:0], row)
		out = append(out, string(buf)+"#"+string(encodeTuple(nil, Tuple{g.Cnt[i]})))
	}
	sort.Strings(out)
	return out
}

func TestJoinSortedMatchesHashJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		a := &Counted{Attrs: []string{"A", "B"}}
		for i := 0; i < rng.Intn(10); i++ {
			a.Rows = append(a.Rows, Tuple{int64(rng.Intn(4)), int64(rng.Intn(4))})
			a.Cnt = append(a.Cnt, int64(rng.Intn(3))+1)
		}
		b := &Counted{Attrs: []string{"B", "C"}}
		for i := 0; i < rng.Intn(10); i++ {
			b.Rows = append(b.Rows, Tuple{int64(rng.Intn(4)), int64(rng.Intn(4))})
			b.Cnt = append(b.Cnt, int64(rng.Intn(3))+1)
		}
		h, err := Join(a, b)
		if err != nil {
			t.Fatal(err)
		}
		s, err := JoinSorted(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ch, cs := canonical(t, h), canonical(t, s)
		if len(ch) != len(cs) {
			t.Fatalf("trial %d: %d vs %d distinct rows", trial, len(ch), len(cs))
		}
		for i := range ch {
			if ch[i] != cs[i] {
				t.Fatalf("trial %d: row %d differs", trial, i)
			}
		}
	}
}

func TestJoinSortedCrossProduct(t *testing.T) {
	a := &Counted{Attrs: []string{"A"}, Rows: []Tuple{{1}, {2}}, Cnt: []int64{2, 3}}
	b := &Counted{Attrs: []string{"B"}, Rows: []Tuple{{7}}, Cnt: []int64{4}}
	j, err := JoinSorted(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if j.SumCnt() != 20 || len(j.Rows) != 2 {
		t.Fatalf("cross product: rows=%d sum=%d", len(j.Rows), j.SumCnt())
	}
}

func TestJoinSortedMultiColumnKey(t *testing.T) {
	a := &Counted{Attrs: []string{"A", "B", "C"}, Rows: []Tuple{{1, 2, 9}, {1, 3, 9}}, Cnt: []int64{1, 1}}
	b := &Counted{Attrs: []string{"B", "A", "D"}, Rows: []Tuple{{2, 1, 5}, {3, 2, 5}}, Cnt: []int64{7, 7}}
	j, err := JoinSorted(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Only (A=1,B=2) matches: one output row with count 7.
	if len(j.Rows) != 1 || j.Cnt[0] != 7 {
		t.Fatalf("multi-key join=%v %v", j.Rows, j.Cnt)
	}
}

func TestJoinSortedRejectsApproximate(t *testing.T) {
	a := &Counted{Attrs: []string{"A"}, Rows: []Tuple{{1}}, Cnt: []int64{1}}
	b := &Counted{Attrs: []string{"A"}, Rows: []Tuple{{1}}, Cnt: []int64{1}, Default: 2}
	if _, err := JoinSorted(a, b); err == nil {
		t.Fatal("approximate operand accepted")
	}
	if _, err := JoinSorted(b, a); err == nil {
		t.Fatal("approximate left operand accepted")
	}
}

func TestCompareAt(t *testing.T) {
	a := Tuple{1, 5, 3}
	b := Tuple{5, 1, 3}
	if compareAt(a, []int{0}, b, []int{1}) != 0 {
		t.Fatal("cross-index equal compare failed")
	}
	if compareAt(a, []int{1}, b, []int{0}) != 0 {
		t.Fatal("5 vs 5 not equal")
	}
	if compareAt(a, []int{0, 2}, b, []int{1, 2}) != 0 {
		t.Fatal("multi-column equal compare failed")
	}
	if compareAt(a, []int{0}, b, []int{0}) != -1 {
		t.Fatal("1 < 5 failed")
	}
}

func BenchmarkJoinHashVsSortMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	mk := func(attrs []string, n, dom int) *Counted {
		c := &Counted{Attrs: attrs}
		for i := 0; i < n; i++ {
			c.Rows = append(c.Rows, Tuple{int64(rng.Intn(dom)), int64(rng.Intn(dom))})
			c.Cnt = append(c.Cnt, 1)
		}
		return c
	}
	x := mk([]string{"A", "B"}, 20000, 5000)
	y := mk([]string{"B", "C"}, 20000, 5000)
	b.Run("Hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Join(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SortMerge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := JoinSorted(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}
