package relation

// This file implements the delta layer behind the incremental sensitivity
// engine (internal/incremental): in-place count patching of counted
// relations (ApplyDelta), secondary indexes over attribute subsets that
// survive appends (RowIndex), and a compiled delta-join-group kernel
// (ExpandPlan) evaluating γ_keep(Δ ⋈ p1 ⋈ … ⋈ pk) for a small signed delta
// against materialized tables. Deltas are ordinary Counted values whose Cnt
// entries may be negative; the saturating arithmetic in math.go is
// sign-aware for exactly this reason.

import "fmt"

// Update is a single-tuple change to a named base relation, the unit of
// work of an incremental session and of replayable update streams.
type Update struct {
	Rel string
	Row Tuple
	// Insert distinguishes insertion (true) from deletion (false).
	Insert bool
}

// ApplyDelta adds d's counts into c by full-row key: existing keys are
// patched in place, unseen keys are appended. d's attributes must be a
// permutation of c's, and both relations must be exact (no top-k Default).
// The lazy Probe/Lookup index of c, if built, is maintained incrementally,
// so probes never trigger an O(n) rebuild after a patch. Keys whose count
// reaches zero are kept as tombstones (they contribute nothing to any
// operator); callers running unbounded update streams should periodically
// rebuild their tables.
//
// The returned slice lists the indexes of the rows that were patched or
// appended, for callers tracking derived aggregates (e.g. maxima).
// ApplyDelta must not run concurrently with readers of c.
func (c *Counted) ApplyDelta(d *Counted) ([]int, error) {
	if d.Default != 0 || c.Default != 0 {
		return nil, fmt.Errorf("relation: ApplyDelta requires exact relations (Default=0)")
	}
	if len(d.Rows) == 0 {
		return nil, nil
	}
	if len(d.Attrs) != len(c.Attrs) {
		return nil, fmt.Errorf("relation: ApplyDelta schema %v does not match %v", d.Attrs, c.Attrs)
	}
	changed := make([]int, 0, len(d.Rows))
	if len(c.Attrs) == 0 {
		var total int64
		for _, cnt := range d.Cnt {
			total = AddSat(total, cnt)
		}
		if len(c.Rows) == 0 {
			c.Rows = []Tuple{{}}
			c.Cnt = []int64{total}
		} else {
			c.Cnt[0] = AddSat(c.Cnt[0], total)
		}
		return append(changed, 0), nil
	}
	perm, err := d.attrIndexes(c.Attrs)
	if err != nil {
		return nil, err
	}
	ix := c.index()
	key := make(Tuple, len(c.Attrs))
	for i, row := range d.Rows {
		for k, p := range perm {
			key[k] = row[p]
		}
		if id := ix.tbl.find(key); id >= 0 {
			r := int(ix.rowOf[id])
			c.Cnt[r] = AddSat(c.Cnt[r], d.Cnt[i])
			changed = append(changed, r)
			continue
		}
		r := len(c.Rows)
		c.Rows = append(c.Rows, key.Clone())
		c.Cnt = append(c.Cnt, d.Cnt[i])
		ix.tbl.insert(key)
		ix.rowOf = append(ix.rowOf, int32(r))
		ix.n = len(c.Rows)
		changed = append(changed, r)
	}
	return changed, nil
}

// RowIndex is a secondary index over a subset of a counted relation's
// attributes, mapping each key to the indexes of the rows holding it.
// Unlike the per-call join indexes of the hash kernels it survives in-place
// count patches, and Sync extends it over rows appended since the last call
// (e.g. by ApplyDelta), so an index built once serves every later delta.
type RowIndex struct {
	c     *Counted
	attrs []string
	idxs  []int
	tbl   *intTable
	rows  [][]int32
	n     int
}

// NewRowIndex indexes c's rows on the non-empty attribute subset attrs.
func NewRowIndex(c *Counted, attrs []string) (*RowIndex, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: RowIndex needs at least one attribute")
	}
	idxs, err := c.attrIndexes(attrs)
	if err != nil {
		return nil, err
	}
	ix := &RowIndex{
		c:     c,
		attrs: append([]string(nil), attrs...),
		idxs:  idxs,
		tbl:   newIntTable(len(idxs), groupHint(len(c.Rows))),
	}
	ix.Sync()
	return ix, nil
}

// Attrs returns the key attributes, in index order.
func (ix *RowIndex) Attrs() []string { return ix.attrs }

// Sync indexes the rows appended to the underlying relation since the index
// was built or last synced.
func (ix *RowIndex) Sync() {
	scratch := make([]int64, len(ix.idxs))
	for ; ix.n < len(ix.c.Rows); ix.n++ {
		t := ix.c.Rows[ix.n]
		for k, x := range ix.idxs {
			scratch[k] = t[x]
		}
		id, added := ix.tbl.insert(scratch)
		if added {
			ix.rows = append(ix.rows, nil)
		}
		ix.rows[id] = append(ix.rows[id], int32(ix.n))
	}
}

// Rows returns the indexes of the rows whose key columns equal key (given
// in the index's attribute order), or nil when the key is absent.
func (ix *RowIndex) Rows(key Tuple) []int32 {
	id := ix.tbl.find(key)
	if id < 0 {
		return nil
	}
	return ix.rows[id]
}

// IndexProvider supplies RowIndexes over table attribute subsets, letting a
// caller (the incremental session) share one maintained index across every
// compiled plan that needs it. Implementations must keep returned indexes
// Synced with their tables.
type IndexProvider func(c *Counted, attrs []string) (*RowIndex, error)

// expandStep is one operand of a compiled delta expansion.
type expandStep struct {
	table *Counted
	// probe: every attribute of table is already bound in the accumulator;
	// the operand contributes a multiplier looked up by full key (a miss
	// means zero and prunes the branch).
	probe bool
	// scan: the operand shares no attribute with the accumulator (a cross
	// product within the group); every row is enumerated.
	scan    bool
	keyPos  []int     // accumulator positions feeding the key, operand order
	index   *RowIndex // non-probe, non-scan: rows matching the shared key
	newCols []int     // operand columns appended to the accumulator
	newPos  []int     // accumulator positions receiving them
	scratch Tuple
}

// ExpandPlan is a compiled evaluator of γ_keep(Δ ⋈ p1 ⋈ … ⋈ pk) for deltas
// over a fixed schema: each delta row is expanded through the operand
// tables by index lookups (never by rebuilding hash tables), counts
// multiply along each expansion branch, and the results aggregate by the
// keep attributes. Because the plan only holds table pointers and
// RowIndexes (re-synced at every Run), it stays valid while the tables are
// patched in place by ApplyDelta. A plan carries per-step scratch space and
// must not be Run concurrently.
type ExpandPlan struct {
	deltaAttrs []string
	keepAttrs  []string
	keepPos    []int
	accumLen   int
	steps      []*expandStep
}

// CompileExpand builds an ExpandPlan for deltas over deltaAttrs joined with
// tables and grouped by keep. The join order is greedy: operands fully
// covered by the accumulated schema first (pure multipliers), then
// connected operands smallest-first, with disconnected operands (cross
// products) last. Every keep attribute must be covered by the delta schema
// or some operand. indexFor supplies the shared RowIndexes; nil means
// private indexes are built once per plan.
func CompileExpand(deltaAttrs []string, tables []*Counted, keep []string, indexFor IndexProvider) (*ExpandPlan, error) {
	if indexFor == nil {
		indexFor = func(c *Counted, attrs []string) (*RowIndex, error) { return NewRowIndex(c, attrs) }
	}
	p := &ExpandPlan{
		deltaAttrs: append([]string(nil), deltaAttrs...),
		keepAttrs:  append([]string(nil), keep...),
	}
	accum := append([]string(nil), deltaAttrs...)
	pos := make(map[string]int, len(accum))
	for i, a := range accum {
		pos[a] = i
	}
	remaining := append([]*Counted(nil), tables...)
	for len(remaining) > 0 {
		// Pick the next operand: contained beats connected beats
		// disconnected; ties break on fewer rows, then position.
		best, bestKind, bestRows := -1, -1, 0
		for i, t := range remaining {
			shared := 0
			for _, a := range t.Attrs {
				if _, ok := pos[a]; ok {
					shared++
				}
			}
			kind := 0
			switch {
			case shared == len(t.Attrs):
				kind = 2
			case shared > 0:
				kind = 1
			}
			if kind > bestKind || (kind == bestKind && len(t.Rows) < bestRows) {
				best, bestKind, bestRows = i, kind, len(t.Rows)
			}
		}
		t := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		if t.Default != 0 {
			return nil, fmt.Errorf("relation: CompileExpand requires exact operands (Default=0)")
		}
		st := &expandStep{table: t}
		switch bestKind {
		case 2: // contained: probe by full key
			st.probe = true
			for _, a := range t.Attrs {
				st.keyPos = append(st.keyPos, pos[a])
			}
			st.scratch = make(Tuple, len(t.Attrs))
		case 1: // connected: index on the shared attrs, extend the schema
			shared := make([]string, 0, len(t.Attrs))
			for _, a := range t.Attrs {
				if _, ok := pos[a]; ok {
					shared = append(shared, a)
					st.keyPos = append(st.keyPos, pos[a])
				}
			}
			ix, err := indexFor(t, shared)
			if err != nil {
				return nil, err
			}
			st.index = ix
			st.scratch = make(Tuple, len(shared))
			for ci, a := range t.Attrs {
				if _, ok := pos[a]; !ok {
					st.newCols = append(st.newCols, ci)
					st.newPos = append(st.newPos, len(accum))
					pos[a] = len(accum)
					accum = append(accum, a)
				}
			}
		default: // disconnected: enumerate all rows (cross product)
			st.scan = true
			for ci, a := range t.Attrs {
				if _, ok := pos[a]; ok {
					continue // duplicate attr across disconnected operands is impossible, but stay safe
				}
				st.newCols = append(st.newCols, ci)
				st.newPos = append(st.newPos, len(accum))
				pos[a] = len(accum)
				accum = append(accum, a)
			}
		}
		p.steps = append(p.steps, st)
	}
	p.accumLen = len(accum)
	for _, a := range keep {
		i, ok := pos[a]
		if !ok {
			return nil, fmt.Errorf("relation: CompileExpand keep attribute %q not covered by delta %v or operands", a, deltaAttrs)
		}
		p.keepPos = append(p.keepPos, i)
	}
	return p, nil
}

// Run evaluates the plan over one delta, whose attributes must equal the
// compiled delta schema (in order). The result contains no zero-count rows,
// so applying it plants no tombstones.
func (p *ExpandPlan) Run(d *Counted) (*Counted, error) {
	out := &Counted{Attrs: append([]string(nil), p.keepAttrs...)}
	if len(d.Rows) == 0 {
		return out, nil
	}
	if len(d.Attrs) != len(p.deltaAttrs) {
		return nil, fmt.Errorf("relation: delta schema %v does not match plan %v", d.Attrs, p.deltaAttrs)
	}
	for i, a := range p.deltaAttrs {
		if d.Attrs[i] != a {
			return nil, fmt.Errorf("relation: delta schema %v does not match plan %v", d.Attrs, p.deltaAttrs)
		}
	}
	// Re-sync the step indexes over any rows appended since the last Run, so
	// plans stay correct regardless of who owns the indexes (a no-op for
	// provider-owned indexes the caller already keeps in sync).
	for _, st := range p.steps {
		if st.index != nil {
			st.index.Sync()
		}
	}
	agg := newGroupAgg(len(p.keepPos), len(d.Rows))
	accum := make([]int64, p.accumLen)
	key := make([]int64, len(p.keepPos))
	var rec func(si int, cnt int64)
	rec = func(si int, cnt int64) {
		if si == len(p.steps) {
			for k, x := range p.keepPos {
				key[k] = accum[x]
			}
			agg.add(key, cnt)
			return
		}
		st := p.steps[si]
		if st.probe {
			for k, x := range st.keyPos {
				st.scratch[k] = accum[x]
			}
			c, ok := st.table.Probe(st.scratch)
			if !ok || c == 0 {
				return
			}
			rec(si+1, MulSat(cnt, c))
			return
		}
		if st.scan {
			for r := range st.table.Rows {
				if st.table.Cnt[r] == 0 {
					continue
				}
				row := st.table.Rows[r]
				for k, col := range st.newCols {
					accum[st.newPos[k]] = row[col]
				}
				rec(si+1, MulSat(cnt, st.table.Cnt[r]))
			}
			return
		}
		for k, x := range st.keyPos {
			st.scratch[k] = accum[x]
		}
		for _, r := range st.index.Rows(st.scratch) {
			if st.table.Cnt[r] == 0 {
				continue
			}
			row := st.table.Rows[r]
			for k, col := range st.newCols {
				accum[st.newPos[k]] = row[col]
			}
			rec(si+1, MulSat(cnt, st.table.Cnt[r]))
		}
	}
	for i, t := range d.Rows {
		if d.Cnt[i] == 0 {
			continue
		}
		copy(accum[:len(t)], t)
		rec(0, d.Cnt[i])
	}
	agg.emit(out)
	// Drop zero-net rows so downstream ApplyDelta plants no tombstones.
	w := 0
	for i := range out.Rows {
		if out.Cnt[i] == 0 {
			continue
		}
		out.Rows[w], out.Cnt[w] = out.Rows[i], out.Cnt[i]
		w++
	}
	out.Rows, out.Cnt = out.Rows[:w], out.Cnt[:w]
	return out, nil
}
