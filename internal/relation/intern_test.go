package relation

import "testing"

func TestCanonKey(t *testing.T) {
	if CanonKey("a", "b") == CanonKey("a,b") {
		t.Fatal("field boundary lost")
	}
	// Separator bytes inside a field must not forge a boundary.
	if CanonKey("a\x1fb") == CanonKey("a", "b") {
		t.Fatal("embedded separator collides with a field boundary")
	}
	if CanonKey(`a\`, "b") == CanonKey("a", `\b`) {
		t.Fatal("escape char collides across boundaries")
	}
	if CanonKey("x", "y") != CanonKey("x", "y") {
		t.Fatal("not deterministic")
	}
}

func TestInternerRefcounts(t *testing.T) {
	in := NewInterner[int]()
	if _, ok := in.Lookup("k"); ok {
		t.Fatal("lookup hit on empty interner")
	}
	e := in.Put("k", 7)
	if e.Refs != 1 || in.Len() != 1 || in.Shared() != 0 {
		t.Fatalf("after Put: refs=%d len=%d shared=%d", e.Refs, in.Len(), in.Shared())
	}
	if got, ok := in.Lookup("k"); !ok || got != e {
		t.Fatal("lookup after Put")
	}
	in.Retain(e)
	if e.Refs != 2 || in.Shared() != 1 {
		t.Fatalf("after Retain: refs=%d shared=%d", e.Refs, in.Shared())
	}
	if in.Release(e) {
		t.Fatal("release reported drop while a reference remained")
	}
	if !in.Release(e) {
		t.Fatal("last release did not report drop")
	}
	if in.Len() != 0 {
		t.Fatal("entry survived last release")
	}
	// The key is free again after the drop.
	in.Put("k", 8)

	defer func() {
		if recover() == nil {
			t.Fatal("Put over a live key did not panic")
		}
	}()
	in.Put("k", 9)
}
