// Package relation implements a small in-memory relational engine with bag
// semantics. It provides the two data representations used throughout the
// repository:
//
//   - Relation: a named base table whose rows are tuples of int64 values
//     (string data is dictionary-encoded via Dict), each row counting once.
//   - Counted: an intermediate result that carries an explicit multiplicity
//     column, as produced by the r-join and group-by operators of the paper
//     (Tao et al., SIGMOD 2020, Section 4.2).
//
// All join and aggregation operators use saturating int64 arithmetic so that
// sensitivity bounds degrade gracefully to math.MaxInt64 instead of
// overflowing (elastic-sensitivity bounds grow multiplicatively and overflow
// otherwise).
package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is a single row of attribute values.
type Tuple []int64

// Clone returns a copy of t.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports whether t and u hold the same values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Relation is a named base table. Every row counts with multiplicity one;
// duplicate rows are allowed (bag semantics).
type Relation struct {
	Name  string
	Attrs []string
	Rows  []Tuple
}

// New constructs a Relation after validating that attribute names are
// non-empty and unique and that every row has the right arity.
func New(name string, attrs []string, rows []Tuple) (*Relation, error) {
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation %s: empty attribute name", name)
		}
		if seen[a] {
			return nil, fmt.Errorf("relation %s: duplicate attribute %q", name, a)
		}
		seen[a] = true
	}
	for i, r := range rows {
		if len(r) != len(attrs) {
			return nil, fmt.Errorf("relation %s: row %d has %d values, want %d", name, i, len(r), len(attrs))
		}
	}
	return &Relation{Name: name, Attrs: attrs, Rows: rows}, nil
}

// MustNew is New but panics on error; intended for tests and literals.
func MustNew(name string, attrs []string, rows []Tuple) *Relation {
	r, err := New(name, attrs, rows)
	if err != nil {
		panic(err)
	}
	return r
}

// Clone returns a deep copy of r.
func (r *Relation) Clone() *Relation {
	rows := make([]Tuple, len(r.Rows))
	for i, t := range r.Rows {
		rows[i] = t.Clone()
	}
	return &Relation{Name: r.Name, Attrs: append([]string(nil), r.Attrs...), Rows: rows}
}

// AttrIndex returns the position of attribute a, or -1 if absent.
func (r *Relation) AttrIndex(a string) int {
	for i, x := range r.Attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// Project returns the values of t at the named attributes of r.
func (r *Relation) Project(t Tuple, attrs []string) (Tuple, error) {
	out := make(Tuple, len(attrs))
	for i, a := range attrs {
		j := r.AttrIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("relation %s: no attribute %q", r.Name, a)
		}
		out[i] = t[j]
	}
	return out, nil
}

// Filter returns a copy of r keeping only rows for which keep returns true.
func (r *Relation) Filter(keep func(Tuple) bool) *Relation {
	out := &Relation{Name: r.Name, Attrs: append([]string(nil), r.Attrs...)}
	for _, t := range r.Rows {
		if keep(t) {
			out.Rows = append(out.Rows, t)
		}
	}
	return out
}

// ActiveDomain returns the sorted distinct values of attribute a in r.
func (r *Relation) ActiveDomain(a string) ([]int64, error) {
	i := r.AttrIndex(a)
	if i < 0 {
		return nil, fmt.Errorf("relation %s: no attribute %q", r.Name, a)
	}
	set := make(map[int64]bool)
	for _, t := range r.Rows {
		set[t[i]] = true
	}
	vals := make([]int64, 0, len(set))
	for v := range set {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(x, y int) bool { return vals[x] < vals[y] })
	return vals, nil
}

// String renders a compact textual form, mainly for debugging and tests.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s)[%d rows]", r.Name, strings.Join(r.Attrs, ","), len(r.Rows))
	return b.String()
}

// Database is a set of relations addressed by name, with a deterministic
// iteration order (the insertion order).
type Database struct {
	order []string
	rels  map[string]*Relation
}

// NewDatabase builds a Database from the given relations.
// Relation names must be unique.
func NewDatabase(rels ...*Relation) (*Database, error) {
	db := &Database{rels: make(map[string]*Relation, len(rels))}
	for _, r := range rels {
		if err := db.Add(r); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// MustNewDatabase is NewDatabase but panics on error.
func MustNewDatabase(rels ...*Relation) *Database {
	db, err := NewDatabase(rels...)
	if err != nil {
		panic(err)
	}
	return db
}

// Add inserts a relation, rejecting duplicate names.
func (db *Database) Add(r *Relation) error {
	if _, ok := db.rels[r.Name]; ok {
		return fmt.Errorf("database: duplicate relation %q", r.Name)
	}
	db.order = append(db.order, r.Name)
	db.rels[r.Name] = r
	return nil
}

// Relation returns the named relation, or nil if absent.
func (db *Database) Relation(name string) *Relation {
	return db.rels[name]
}

// Names returns relation names in insertion order.
func (db *Database) Names() []string {
	return append([]string(nil), db.order...)
}

// Size returns the total number of tuples across all relations.
func (db *Database) Size() int {
	n := 0
	for _, name := range db.order {
		n += len(db.rels[name].Rows)
	}
	return n
}

// Clone deep-copies the database.
func (db *Database) Clone() *Database {
	out := &Database{rels: make(map[string]*Relation, len(db.rels))}
	for _, name := range db.order {
		out.order = append(out.order, name)
		out.rels[name] = db.rels[name].Clone()
	}
	return out
}

// Replace swaps in a relation with the same name, used by truncation
// operators that rewrite one table.
func (db *Database) Replace(r *Relation) error {
	if _, ok := db.rels[r.Name]; !ok {
		return fmt.Errorf("database: no relation %q to replace", r.Name)
	}
	db.rels[r.Name] = r
	return nil
}

// Intersect returns the attributes present in both a and b, preserving the
// order of a.
func Intersect(a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, x := range b {
		inB[x] = true
	}
	var out []string
	for _, x := range a {
		if inB[x] {
			out = append(out, x)
		}
	}
	return out
}

// Union returns a ∪ b preserving first-seen order.
func Union(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, x := range a {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for _, x := range b {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Minus returns the attributes of a not present in b, preserving order.
func Minus(a, b []string) []string {
	inB := make(map[string]bool, len(b))
	for _, x := range b {
		inB[x] = true
	}
	var out []string
	for _, x := range a {
		if !inB[x] {
			out = append(out, x)
		}
	}
	return out
}

// ContainsAll reports whether every attribute of sub occurs in super.
func ContainsAll(super, sub []string) bool {
	inS := make(map[string]bool, len(super))
	for _, x := range super {
		inS[x] = true
	}
	for _, x := range sub {
		if !inS[x] {
			return false
		}
	}
	return true
}
