package relation

import (
	"math"
	"math/rand"
	"testing"
)

func TestAddSatSigned(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{5, -3, 2},
		{-5, 3, -2},
		{-5, -3, -8},
		{math.MaxInt64, 1, math.MaxInt64},
		{math.MinInt64, -1, math.MinInt64},
		{math.MaxInt64, math.MinInt64, -1},
	}
	for _, c := range cases {
		if got := AddSat(c.a, c.b); got != c.want {
			t.Errorf("AddSat(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMulSatSigned(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{3, -4, -12},
		{-3, -4, 12},
		{math.MaxInt64, -2, math.MinInt64},
		{math.MinInt64, -1, math.MaxInt64},
		{math.MinInt64, 2, math.MinInt64},
		{-1, math.MinInt64, math.MaxInt64},
	}
	for _, c := range cases {
		if got := MulSat(c.a, c.b); got != c.want {
			t.Errorf("MulSat(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestApplyDeltaPatchAndAppend(t *testing.T) {
	c := &Counted{Attrs: []string{"A", "B"}, Rows: []Tuple{{1, 1}, {1, 2}}, Cnt: []int64{3, 5}}
	c.BuildIndex()
	d := &Counted{Attrs: []string{"A", "B"}, Rows: []Tuple{{1, 2}, {2, 2}}, Cnt: []int64{-4, 7}}
	changed, err := c.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 2 || changed[0] != 1 || changed[1] != 2 {
		t.Fatalf("changed = %v", changed)
	}
	if len(c.Rows) != 3 || c.Cnt[1] != 1 || c.Cnt[2] != 7 || !c.Rows[2].Equal(Tuple{2, 2}) {
		t.Fatalf("after delta: rows=%v cnt=%v", c.Rows, c.Cnt)
	}
	// The maintained index must see both old and appended keys.
	if got, ok := c.Probe(Tuple{2, 2}); !ok || got != 7 {
		t.Fatalf("Probe appended key = %d, %v", got, ok)
	}
	if got, ok := c.Probe(Tuple{1, 2}); !ok || got != 1 {
		t.Fatalf("Probe patched key = %d, %v", got, ok)
	}
}

func TestApplyDeltaPermutedAttrs(t *testing.T) {
	c := &Counted{Attrs: []string{"A", "B"}, Rows: []Tuple{{1, 9}}, Cnt: []int64{2}}
	d := &Counted{Attrs: []string{"B", "A"}, Rows: []Tuple{{9, 1}}, Cnt: []int64{3}}
	if _, err := c.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if c.Cnt[0] != 5 {
		t.Fatalf("cnt = %d, want 5", c.Cnt[0])
	}
}

func TestApplyDeltaZeroAttr(t *testing.T) {
	c := &Counted{Attrs: nil}
	if _, err := c.ApplyDelta(&Counted{Attrs: nil, Rows: []Tuple{{}}, Cnt: []int64{4}}); err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != 1 || c.Cnt[0] != 4 {
		t.Fatalf("zero-attr apply: %v %v", c.Rows, c.Cnt)
	}
	if _, err := c.ApplyDelta(&Counted{Attrs: nil, Rows: []Tuple{{}}, Cnt: []int64{-4}}); err != nil {
		t.Fatal(err)
	}
	if c.Cnt[0] != 0 {
		t.Fatalf("zero-attr net: %v", c.Cnt)
	}
}

func TestRowIndexSync(t *testing.T) {
	c := &Counted{Attrs: []string{"A", "B"}, Rows: []Tuple{{1, 10}, {2, 20}, {1, 30}}, Cnt: []int64{1, 1, 1}}
	ix, err := NewRowIndex(c, []string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Rows(Tuple{1}); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Rows(1) = %v", got)
	}
	if _, err := c.ApplyDelta(&Counted{Attrs: []string{"A", "B"}, Rows: []Tuple{{1, 40}}, Cnt: []int64{5}}); err != nil {
		t.Fatal(err)
	}
	ix.Sync()
	if got := ix.Rows(Tuple{1}); len(got) != 3 || got[2] != 3 {
		t.Fatalf("Rows(1) after sync = %v", got)
	}
	if got := ix.Rows(Tuple{3}); got != nil {
		t.Fatalf("Rows(3) = %v, want nil", got)
	}
}

// TestExpandPlanDifferential checks the compiled delta kernel against the
// reference JoinGroupChain on random inputs, covering probe (contained),
// index (connected), and scan (cross product) steps.
func TestExpandPlanDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randTable := func(attrs []string, n, dom int) *Counted {
		agg := make(map[string]bool)
		out := &Counted{Attrs: attrs}
		for len(out.Rows) < n {
			row := make(Tuple, len(attrs))
			for i := range row {
				row[i] = int64(rng.Intn(dom))
			}
			k := ""
			for _, v := range row {
				k += string(rune('a'+v)) + ","
			}
			if agg[k] {
				continue
			}
			agg[k] = true
			out.Rows = append(out.Rows, row)
			out.Cnt = append(out.Cnt, int64(1+rng.Intn(4)))
		}
		return out
	}
	for trial := 0; trial < 40; trial++ {
		delta := randTable([]string{"A", "B"}, 1+rng.Intn(3), 4)
		for i := range delta.Cnt {
			if rng.Intn(2) == 0 {
				delta.Cnt[i] = -delta.Cnt[i]
			}
		}
		contained := randTable([]string{"B"}, 3, 4)      // probe step
		connected := randTable([]string{"B", "C"}, 6, 4) // index step
		disconnected := randTable([]string{"D"}, 3, 4)   // scan step
		keep := []string{"A", "C", "D"}
		tables := []*Counted{contained, connected, disconnected}

		plan, err := CompileExpand(delta.Attrs, tables, keep, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.Run(delta)
		if err != nil {
			t.Fatal(err)
		}
		want, err := JoinGroupChain(delta, tables, keep)
		if err != nil {
			t.Fatal(err)
		}
		// Compare as key→count maps (row order differs; zero rows dropped).
		wantMap := make(map[string]int64)
		for i, r := range want.Rows {
			k := ""
			for _, v := range r {
				k += string(rune('a'+v)) + ","
			}
			wantMap[k] += want.Cnt[i]
		}
		gotMap := make(map[string]int64)
		for i, r := range got.Rows {
			k := ""
			for _, v := range r {
				k += string(rune('a'+v)) + ","
			}
			gotMap[k] += got.Cnt[i]
		}
		for k, v := range wantMap {
			if v == 0 {
				delete(wantMap, k)
			}
		}
		if len(gotMap) != len(wantMap) {
			t.Fatalf("trial %d: got %v want %v", trial, gotMap, wantMap)
		}
		for k, v := range wantMap {
			if gotMap[k] != v {
				t.Fatalf("trial %d: key %s got %d want %d", trial, k, gotMap[k], v)
			}
		}
	}
}
