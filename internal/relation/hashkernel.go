package relation

// This file holds the hash-kernel primitives behind the counted-relation
// operators: an open-addressing hash table over fixed-width int64 keys (no
// per-row byte encoding or string interning), a chunked tuple arena that
// batches row storage into flat []int64 blocks, a chained join index over
// one side of a hash join, and a group-by aggregator with a map[int64] fast
// path for single-column keys. Every structure is deterministic: iteration
// follows insertion order, never Go map order.

// mix64 is the splitmix64 finalizer, a strong cheap mixer for 64-bit lanes.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashKey hashes a fixed-width key of int64 columns.
func hashKey(key []int64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range key {
		h = mix64(h ^ uint64(v))
	}
	return h
}

// intTable is an open-addressing (linear probing) hash table mapping
// fixed-width []int64 keys to dense ids 0,1,2,… in insertion order. Distinct
// keys live contiguously in the keys arena, so the table doubles as the
// row storage of a group-by result.
type intTable struct {
	width  int
	slots  []int32 // id+1; 0 means empty
	mask   uint64
	keys   []int64 // arena of distinct keys, width values each
	n      int
	growAt int
}

// groupHint caps the initial sizing of tables and maps keyed by distinct
// values: distinct counts are routinely far below the row count, and an
// oversized zeroed table costs more (allocation, memclr, GC scan) than the
// geometric growth it avoids.
func groupHint(n int) int {
	if n > 1024 {
		return 1024
	}
	return n
}

// newIntTable sizes the table for about hint distinct keys.
func newIntTable(width, hint int) *intTable {
	size := 8
	for size*3 < hint*4 { // keep load factor under 3/4 at the hint
		size *= 2
	}
	return &intTable{
		width:  width,
		slots:  make([]int32, size),
		mask:   uint64(size - 1),
		growAt: size * 3 / 4,
	}
}

func (t *intTable) keyAt(id int32) []int64 {
	off := int(id) * t.width
	return t.keys[off : off+t.width]
}

func (t *intTable) equalAt(id int32, key []int64) bool {
	k := t.keys[int(id)*t.width:]
	for i, v := range key {
		if k[i] != v {
			return false
		}
	}
	return true
}

// find returns the id of key, or -1.
func (t *intTable) find(key []int64) int32 {
	i := hashKey(key) & t.mask
	for {
		s := t.slots[i]
		if s == 0 {
			return -1
		}
		if t.equalAt(s-1, key) {
			return s - 1
		}
		i = (i + 1) & t.mask
	}
}

// insert returns the id of key, adding it (copied into the arena) if absent.
func (t *intTable) insert(key []int64) (id int32, added bool) {
	if t.n >= t.growAt {
		t.grow()
	}
	i := hashKey(key) & t.mask
	for {
		s := t.slots[i]
		if s == 0 {
			id = int32(t.n)
			t.keys = append(t.keys, key...)
			t.slots[i] = id + 1
			t.n++
			return id, true
		}
		if t.equalAt(s-1, key) {
			return s - 1, false
		}
		i = (i + 1) & t.mask
	}
}

func (t *intTable) grow() {
	size := len(t.slots) * 2
	t.slots = make([]int32, size)
	t.mask = uint64(size - 1)
	t.growAt = size * 3 / 4
	for id := 0; id < t.n; id++ {
		i := hashKey(t.keyAt(int32(id))) & t.mask
		for t.slots[i] != 0 {
			i = (i + 1) & t.mask
		}
		t.slots[i] = int32(id) + 1
	}
}

// rows materializes the distinct keys as tuples sharing the arena storage.
func (t *intTable) rows() []Tuple {
	out := make([]Tuple, t.n)
	for id := 0; id < t.n; id++ {
		off := id * t.width
		out[id] = Tuple(t.keys[off : off+t.width : off+t.width])
	}
	return out
}

// tupleArena hands out row storage carved from flat []int64 chunks, so that
// building an n-row relation costs O(n/arenaChunkRows) allocations instead
// of one per row. The first chunk is sized to the caller's row-count hint
// (small joins should not pay for 4096-row blocks); later chunks use the
// full block size.
type tupleArena struct {
	width    int
	chunk    []int64
	nextRows int
}

const arenaChunkRows = 4096

func newTupleArena(width, hintRows int) *tupleArena {
	if hintRows > arenaChunkRows {
		hintRows = arenaChunkRows
	}
	if hintRows < 1 {
		hintRows = 1
	}
	return &tupleArena{width: width, nextRows: hintRows}
}

// alloc returns a zeroed tuple of the arena's width. The capacity of the
// returned slice is clipped so appends on it can never bleed into the next
// row.
func (ar *tupleArena) alloc() Tuple {
	if ar.width == 0 {
		return Tuple{}
	}
	if len(ar.chunk)+ar.width > cap(ar.chunk) {
		ar.chunk = make([]int64, 0, ar.nextRows*ar.width)
		ar.nextRows = arenaChunkRows
	}
	off := len(ar.chunk)
	ar.chunk = ar.chunk[:off+ar.width]
	return Tuple(ar.chunk[off : off+ar.width : off+ar.width])
}

// joinIndex hashes one side of a join on its key columns, chaining rows with
// equal keys through a next array (no per-bucket slice allocations). Chains
// enumerate rows in ascending row order.
type joinIndex struct {
	width  int
	single map[int64]int32 // width==1: key -> chain head
	multi  *intTable       // width>=2: key -> id
	first  []int32         // multi: id -> chain head
	next   []int32         // row -> next row with the same key, -1 ends
	unique bool            // no key occurs twice: probes yield at most one row
}

// buildJoinIndex indexes c's rows on the key columns idxs (len(idxs) >= 1).
func buildJoinIndex(c *Counted, idxs []int) *joinIndex {
	ix := &joinIndex{width: len(idxs), next: make([]int32, len(c.Rows)), unique: true}
	if ix.width == 1 {
		x := idxs[0]
		ix.single = make(map[int64]int32, groupHint(len(c.Rows)))
		// Reverse insertion keeps chains in ascending row order.
		for j := len(c.Rows) - 1; j >= 0; j-- {
			v := c.Rows[j][x]
			if h, ok := ix.single[v]; ok {
				ix.next[j] = h
				ix.unique = false
			} else {
				ix.next[j] = -1
			}
			ix.single[v] = int32(j)
		}
		return ix
	}
	ix.multi = newIntTable(ix.width, groupHint(len(c.Rows)))
	scratch := make([]int64, ix.width)
	for j := len(c.Rows) - 1; j >= 0; j-- {
		t := c.Rows[j]
		for k, x := range idxs {
			scratch[k] = t[x]
		}
		id, added := ix.multi.insert(scratch)
		if added {
			ix.first = append(ix.first, int32(j))
			ix.next[j] = -1
		} else {
			ix.next[j] = ix.first[id]
			ix.first[id] = int32(j)
			ix.unique = false
		}
	}
	return ix
}

// probe returns the chain head for the key columns of t at idxs, or -1.
// scratch must have the index width and is only used during the call.
func (ix *joinIndex) probe(t Tuple, idxs []int, scratch []int64) int32 {
	if ix.width == 1 {
		if h, ok := ix.single[t[idxs[0]]]; ok {
			return h
		}
		return -1
	}
	for k, x := range idxs {
		scratch[k] = t[x]
	}
	id := ix.multi.find(scratch)
	if id < 0 {
		return -1
	}
	return ix.first[id]
}

// groupAgg accumulates (key, count) pairs into distinct groups, preserving
// first-seen order. Keys of width one go through a map[int64] with the key
// arena kept separately; wider keys use the open-addressing table.
type groupAgg struct {
	width   int
	single  map[int64]int32
	keys1   []int64
	multi   *intTable
	cnt     []int64
	zeroCnt int64 // width==0: the single (keyless) group
	zeroAny bool
}

func newGroupAgg(width, hint int) *groupAgg {
	g := &groupAgg{width: width}
	hint = groupHint(hint)
	switch {
	case width == 1:
		g.single = make(map[int64]int32, hint)
		g.keys1 = make([]int64, 0, hint)
		g.cnt = make([]int64, 0, hint)
	case width > 1:
		g.multi = newIntTable(width, hint)
		g.cnt = make([]int64, 0, hint)
	}
	return g
}

// add1 accumulates into the single-column aggregator.
func (g *groupAgg) add1(key, cnt int64) {
	if id, ok := g.single[key]; ok {
		g.cnt[id] = AddSat(g.cnt[id], cnt)
		return
	}
	g.single[key] = int32(len(g.keys1))
	g.keys1 = append(g.keys1, key)
	g.cnt = append(g.cnt, cnt)
}

// add accumulates one key of any width.
func (g *groupAgg) add(key []int64, cnt int64) {
	switch g.width {
	case 0:
		g.zeroCnt = AddSat(g.zeroCnt, cnt)
		g.zeroAny = true
	case 1:
		g.add1(key[0], cnt)
	default:
		id, added := g.multi.insert(key)
		if added {
			g.cnt = append(g.cnt, cnt)
		} else {
			g.cnt[id] = AddSat(g.cnt[id], cnt)
		}
	}
}

// emit writes the accumulated groups into out.Rows / out.Cnt.
func (g *groupAgg) emit(out *Counted) {
	switch g.width {
	case 0:
		if g.zeroAny {
			out.Rows = []Tuple{{}}
			out.Cnt = []int64{g.zeroCnt}
		}
	case 1:
		out.Rows = make([]Tuple, len(g.keys1))
		for i := range g.keys1 {
			out.Rows[i] = Tuple(g.keys1[i : i+1 : i+1])
		}
		out.Cnt = g.cnt
	default:
		out.Rows = g.multi.rows()
		out.Cnt = g.cnt
	}
}
