package relation

import (
	"fmt"
	"sort"
)

// Counted is an intermediate relation carrying an explicit multiplicity
// (cnt) column, exactly the representation the paper's r-join and group-by
// operators manipulate (Section 4.2).
//
// Default, when positive, is the count assumed for any key value not
// explicitly present. It implements the top-k approximation of Section 5.4:
// after truncating a group-by to its k most frequent rows, the remaining
// active-domain values are clamped to the k-th largest count. A Counted with
// Default == 0 is exact.
type Counted struct {
	Attrs   []string
	Rows    []Tuple
	Cnt     []int64
	Default int64
}

// FromRelation groups a base relation by all of its attributes, producing
// the deduplicated counted form with per-row multiplicities.
func FromRelation(r *Relation) *Counted {
	c := &Counted{Attrs: append([]string(nil), r.Attrs...)}
	idx := make(map[string]int, len(r.Rows))
	var buf []byte
	for _, t := range r.Rows {
		buf = encodeTuple(buf[:0], t)
		k := string(buf)
		if j, ok := idx[k]; ok {
			c.Cnt[j] = AddSat(c.Cnt[j], 1)
			continue
		}
		idx[k] = len(c.Rows)
		c.Rows = append(c.Rows, t.Clone())
		c.Cnt = append(c.Cnt, 1)
	}
	return c
}

// Constant returns a zero-attribute Counted holding a single row with the
// given count. It is the identity element of Join.
func Constant(cnt int64) *Counted {
	return &Counted{Attrs: nil, Rows: []Tuple{{}}, Cnt: []int64{cnt}}
}

// AttrIndex returns the position of attribute a, or -1.
func (c *Counted) AttrIndex(a string) int {
	for i, x := range c.Attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// attrIndexes maps attribute names to column positions, failing if any is
// missing.
func (c *Counted) attrIndexes(attrs []string) ([]int, error) {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		j := c.AttrIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("counted relation: no attribute %q in %v", a, c.Attrs)
		}
		out[i] = j
	}
	return out, nil
}

// encodeTuple appends a fixed-width binary encoding of t to dst. It is used
// as a hash key for joins and group-bys.
func encodeTuple(dst []byte, t Tuple) []byte {
	for _, v := range t {
		u := uint64(v)
		dst = append(dst,
			byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return dst
}

// encodeAt appends the encoding of t restricted to the given column indexes.
func encodeAt(dst []byte, t Tuple, idxs []int) []byte {
	for _, i := range idxs {
		u := uint64(t[i])
		dst = append(dst,
			byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return dst
}

// GroupBy implements γ_A(c): project onto attrs and sum counts per group
// (the paper's group-by-with-count-sum operator). A Default on c is
// propagated only when the projection keeps all attributes; otherwise the
// result is exact over the projected active domain and callers must treat it
// as an upper bound (this matches the top-k approximation contract).
func (c *Counted) GroupBy(attrs []string) (*Counted, error) {
	idxs, err := c.attrIndexes(attrs)
	if err != nil {
		return nil, err
	}
	out := &Counted{Attrs: append([]string(nil), attrs...)}
	if len(attrs) == len(c.Attrs) {
		out.Default = c.Default
	}
	groups := make(map[string]int, len(c.Rows))
	var buf []byte
	for i, t := range c.Rows {
		buf = encodeAt(buf[:0], t, idxs)
		k := string(buf)
		if j, ok := groups[k]; ok {
			out.Cnt[j] = AddSat(out.Cnt[j], c.Cnt[i])
			continue
		}
		groups[k] = len(out.Rows)
		row := make(Tuple, len(idxs))
		for x, ix := range idxs {
			row[x] = t[ix]
		}
		out.Rows = append(out.Rows, row)
		out.Cnt = append(out.Cnt, c.Cnt[i])
	}
	return out, nil
}

// Join implements the natural join r⋈ of the paper: match on shared
// attributes and multiply multiplicities. If the two inputs share no
// attributes the result is the cross product.
//
// If b carries a Default (top-k approximation), b's attributes must be a
// subset of a's: rows of a whose key is absent from b then join with count
// Default, preserving the upper-bound property.
func Join(a, b *Counted) (*Counted, error) {
	shared := Intersect(a.Attrs, b.Attrs)
	if b.Default > 0 && !ContainsAll(a.Attrs, b.Attrs) {
		return nil, fmt.Errorf("join: approximate operand with attrs %v not contained in %v", b.Attrs, a.Attrs)
	}
	if a.Default > 0 {
		return nil, fmt.Errorf("join: left operand must be exact (Default=%d)", a.Default)
	}
	aIdx, err := a.attrIndexes(shared)
	if err != nil {
		return nil, err
	}
	bIdx, err := b.attrIndexes(shared)
	if err != nil {
		return nil, err
	}
	extra := Minus(b.Attrs, shared)
	extraIdx, err := b.attrIndexes(extra)
	if err != nil {
		return nil, err
	}
	out := &Counted{Attrs: Union(a.Attrs, b.Attrs)}

	// Build hash index on the smaller side conceptually; we always index b
	// because Default semantics require probing from a.
	index := make(map[string][]int, len(b.Rows))
	var buf []byte
	for i, t := range b.Rows {
		buf = encodeAt(buf[:0], t, bIdx)
		index[string(buf)] = append(index[string(buf)], i)
	}
	for i, t := range a.Rows {
		buf = encodeAt(buf[:0], t, aIdx)
		matches, ok := index[string(buf)]
		if !ok {
			if b.Default > 0 {
				out.Rows = append(out.Rows, t.Clone())
				out.Cnt = append(out.Cnt, MulSat(a.Cnt[i], b.Default))
			}
			continue
		}
		for _, j := range matches {
			row := make(Tuple, 0, len(out.Attrs))
			row = append(row, t...)
			for _, ix := range extraIdx {
				row = append(row, b.Rows[j][ix])
			}
			out.Rows = append(out.Rows, row)
			out.Cnt = append(out.Cnt, MulSat(a.Cnt[i], b.Cnt[j]))
		}
	}
	return out, nil
}

// JoinGroup is the composite γ_attrs(r⋈(a, b)) used on every edge of the
// top/botjoin recursions; fusing the two avoids materializing wide rows.
func JoinGroup(a, b *Counted, attrs []string) (*Counted, error) {
	j, err := Join(a, b)
	if err != nil {
		return nil, err
	}
	return j.GroupBy(attrs)
}

// Semijoin keeps the rows of a whose shared-attribute key appears in b.
func Semijoin(a, b *Counted) (*Counted, error) {
	shared := Intersect(a.Attrs, b.Attrs)
	aIdx, err := a.attrIndexes(shared)
	if err != nil {
		return nil, err
	}
	bIdx, err := b.attrIndexes(shared)
	if err != nil {
		return nil, err
	}
	keys := make(map[string]bool, len(b.Rows))
	var buf []byte
	for _, t := range b.Rows {
		buf = encodeAt(buf[:0], t, bIdx)
		keys[string(buf)] = true
	}
	out := &Counted{Attrs: append([]string(nil), a.Attrs...), Default: a.Default}
	for i, t := range a.Rows {
		buf = encodeAt(buf[:0], t, aIdx)
		if keys[string(buf)] {
			out.Rows = append(out.Rows, t)
			out.Cnt = append(out.Cnt, a.Cnt[i])
		}
	}
	return out, nil
}

// Filter returns the rows of c for which keep is true.
func (c *Counted) Filter(keep func(Tuple) bool) *Counted {
	out := &Counted{Attrs: append([]string(nil), c.Attrs...), Default: c.Default}
	for i, t := range c.Rows {
		if keep(t) {
			out.Rows = append(out.Rows, t)
			out.Cnt = append(out.Cnt, c.Cnt[i])
		}
	}
	return out
}

// SumCnt returns the total multiplicity, i.e. |Q(D)| when c is a full join
// result.
func (c *Counted) SumCnt() int64 {
	var s int64
	for _, v := range c.Cnt {
		s = AddSat(s, v)
	}
	return s
}

// MaxRow returns the row with the largest count and that count. The second
// return is 0 (with a nil row) when c is empty. When c carries a Default
// larger than every explicit count, the Default wins and the returned row is
// nil, signaling "any unlisted value".
func (c *Counted) MaxRow() (Tuple, int64) {
	var best Tuple
	bestCnt := int64(0)
	for i, v := range c.Cnt {
		if v > bestCnt {
			bestCnt = v
			best = c.Rows[i]
		}
	}
	if c.Default > bestCnt {
		return nil, c.Default
	}
	return best, bestCnt
}

// TopK truncates c to its k most frequent rows and records the k-th count as
// the Default for all other values (Section 5.4, "Efficient
// approximations"). If c has at most k rows it is returned unchanged.
func (c *Counted) TopK(k int) *Counted {
	if k <= 0 || len(c.Rows) <= k {
		return c
	}
	order := make([]int, len(c.Rows))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return c.Cnt[order[x]] > c.Cnt[order[y]] })
	out := &Counted{Attrs: append([]string(nil), c.Attrs...)}
	for _, i := range order[:k] {
		out.Rows = append(out.Rows, c.Rows[i])
		out.Cnt = append(out.Cnt, c.Cnt[i])
	}
	out.Default = c.Cnt[order[k-1]]
	if c.Default > out.Default {
		out.Default = c.Default
	}
	return out
}

// Lookup returns the count of the row matching key values over the given
// attributes (which must cover all of c's attributes in any order). Missing
// keys return the Default.
func (c *Counted) Lookup(attrs []string, vals Tuple) (int64, error) {
	if len(attrs) != len(vals) {
		return 0, fmt.Errorf("lookup: %d attrs but %d values", len(attrs), len(vals))
	}
	pos := make(map[string]int64, len(attrs))
	for i, a := range attrs {
		pos[a] = vals[i]
	}
	want := make(Tuple, len(c.Attrs))
	for i, a := range c.Attrs {
		v, ok := pos[a]
		if !ok {
			return 0, fmt.Errorf("lookup: attribute %q not provided", a)
		}
		want[i] = v
	}
	for i, t := range c.Rows {
		if t.Equal(want) {
			return c.Cnt[i], nil
		}
	}
	return c.Default, nil
}

// Clone deep-copies c.
func (c *Counted) Clone() *Counted {
	out := &Counted{
		Attrs:   append([]string(nil), c.Attrs...),
		Cnt:     append([]int64(nil), c.Cnt...),
		Default: c.Default,
	}
	out.Rows = make([]Tuple, len(c.Rows))
	for i, t := range c.Rows {
		out.Rows[i] = t.Clone()
	}
	return out
}
