package relation

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counted is an intermediate relation carrying an explicit multiplicity
// (cnt) column, exactly the representation the paper's r-join and group-by
// operators manipulate (Section 4.2).
//
// Default, when positive, is the count assumed for any key value not
// explicitly present. It implements the top-k approximation of Section 5.4:
// after truncating a group-by to its k most frequent rows, the remaining
// active-domain values are clamped to the k-th largest count. A Counted with
// Default == 0 is exact.
//
// Counted values must be used through pointers (they carry the lazy Lookup
// index state). A Counted is safe for concurrent reads, including Probe and
// Lookup, once BuildIndex has run; the operators never mutate their inputs.
type Counted struct {
	Attrs   []string
	Rows    []Tuple
	Cnt     []int64
	Default int64

	lookupMu  sync.Mutex
	lookupIdx atomic.Pointer[lookupIndex]
}

// lookupIndex is the lazily built hash index behind Probe/Lookup: full-row
// keys to the first row holding them.
type lookupIndex struct {
	tbl   *intTable
	rowOf []int32 // id -> first row index
	n     int     // len(Rows) when built, to detect staleness
}

// FromRelation groups a base relation by all of its attributes, producing
// the deduplicated counted form with per-row multiplicities. Row storage is
// batch-allocated in flat arenas rather than cloned per row.
func FromRelation(r *Relation) *Counted {
	idxs := make([]int, len(r.Attrs))
	for i := range idxs {
		idxs[i] = i
	}
	return GroupRows(r.Attrs, r.Rows, idxs, nil)
}

// GroupRows aggregates raw unit-multiplicity rows by the key columns idxs in
// a single pass, returning a Counted over attrs (attrs[i] names column
// idxs[i] of the input rows). Rows failing keep (when non-nil) are dropped.
// It is the kernel behind FromRelation and the base-relation projections of
// the solver, which would otherwise deduplicate full-width rows only to
// group them again.
func GroupRows(attrs []string, rows []Tuple, idxs []int, keep func(Tuple) bool) *Counted {
	out := &Counted{Attrs: append([]string(nil), attrs...)}
	switch len(idxs) {
	case 0:
		var n int64
		any := false
		for _, t := range rows {
			if keep != nil && !keep(t) {
				continue
			}
			n = AddSat(n, 1)
			any = true
		}
		if any {
			out.Rows = []Tuple{{}}
			out.Cnt = []int64{n}
		}
	case 1:
		agg := newGroupAgg(1, len(rows))
		x := idxs[0]
		for _, t := range rows {
			if keep != nil && !keep(t) {
				continue
			}
			agg.add1(t[x], 1)
		}
		agg.emit(out)
	default:
		agg := newGroupAgg(len(idxs), len(rows))
		scratch := make([]int64, len(idxs))
		for _, t := range rows {
			if keep != nil && !keep(t) {
				continue
			}
			for k, ix := range idxs {
				scratch[k] = t[ix]
			}
			agg.add(scratch, 1)
		}
		agg.emit(out)
	}
	return out
}

// Constant returns a zero-attribute Counted holding a single row with the
// given count. It is the identity element of Join.
func Constant(cnt int64) *Counted {
	return &Counted{Attrs: nil, Rows: []Tuple{{}}, Cnt: []int64{cnt}}
}

// AttrIndex returns the position of attribute a, or -1.
func (c *Counted) AttrIndex(a string) int {
	for i, x := range c.Attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// attrIndexes maps attribute names to column positions, failing if any is
// missing.
func (c *Counted) attrIndexes(attrs []string) ([]int, error) {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		j := c.AttrIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("counted relation: no attribute %q in %v", a, c.Attrs)
		}
		out[i] = j
	}
	return out, nil
}

// encodeTuple appends a fixed-width binary encoding of t to dst. The hash
// kernels no longer need it (they hash int64 columns directly); it remains
// as an independent canonical form for differential tests.
func encodeTuple(dst []byte, t Tuple) []byte {
	for _, v := range t {
		u := uint64(v)
		dst = append(dst,
			byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return dst
}

// GroupBy implements γ_A(c): project onto attrs and sum counts per group
// (the paper's group-by-with-count-sum operator). A Default on c is
// propagated only when the projection keeps all attributes; otherwise the
// result is exact over the projected active domain and callers must treat it
// as an upper bound (this matches the top-k approximation contract).
//
// Single-column keys aggregate through a map[int64] with no byte encoding;
// wider keys go through an open-addressing table whose key arena doubles as
// the output row storage.
func (c *Counted) GroupBy(attrs []string) (*Counted, error) {
	idxs, err := c.attrIndexes(attrs)
	if err != nil {
		return nil, err
	}
	out := &Counted{Attrs: append([]string(nil), attrs...)}
	if len(attrs) == len(c.Attrs) {
		out.Default = c.Default
	}
	switch len(idxs) {
	case 0:
		if len(c.Rows) > 0 {
			out.Rows = []Tuple{{}}
			out.Cnt = []int64{c.SumCnt()}
		}
	case 1:
		agg := newGroupAgg(1, len(c.Rows))
		x := idxs[0]
		for i, t := range c.Rows {
			agg.add1(t[x], c.Cnt[i])
		}
		agg.emit(out)
	default:
		agg := newGroupAgg(len(idxs), len(c.Rows))
		scratch := make([]int64, len(idxs))
		for i, t := range c.Rows {
			for k, ix := range idxs {
				scratch[k] = t[ix]
			}
			agg.add(scratch, c.Cnt[i])
		}
		agg.emit(out)
	}
	return out, nil
}

// joinPlan is the shared front half of Join and JoinGroup: operand
// validation and key/extra column resolution.
type joinPlan struct {
	shared   []string
	aIdx     []int
	bIdx     []int
	extra    []string
	extraIdx []int
}

func planJoin(a, b *Counted) (*joinPlan, error) {
	p := &joinPlan{shared: Intersect(a.Attrs, b.Attrs)}
	if b.Default > 0 && !ContainsAll(a.Attrs, b.Attrs) {
		return nil, fmt.Errorf("join: approximate operand with attrs %v not contained in %v", b.Attrs, a.Attrs)
	}
	if a.Default > 0 {
		return nil, fmt.Errorf("join: left operand must be exact (Default=%d)", a.Default)
	}
	var err error
	if p.aIdx, err = a.attrIndexes(p.shared); err != nil {
		return nil, err
	}
	if p.bIdx, err = b.attrIndexes(p.shared); err != nil {
		return nil, err
	}
	p.extra = Minus(b.Attrs, p.shared)
	if p.extraIdx, err = b.attrIndexes(p.extra); err != nil {
		return nil, err
	}
	return p, nil
}

// Join implements the natural join r⋈ of the paper: match on shared
// attributes and multiply multiplicities. If the two inputs share no
// attributes the result is the cross product.
//
// If b carries a Default (top-k approximation), b's attributes must be a
// subset of a's: rows of a whose key is absent from b then join with count
// Default, preserving the upper-bound property.
//
// The hash index on b keys int64 columns directly (map[int64] for a single
// shared column, open addressing above that); output rows are carved from
// flat arena chunks.
func Join(a, b *Counted) (*Counted, error) {
	p, err := planJoin(a, b)
	if err != nil {
		return nil, err
	}
	out := &Counted{Attrs: Union(a.Attrs, b.Attrs)}
	if len(p.shared) == 0 {
		// With no shared attributes every probe matches every row of b (a
		// cross product) — unless b is empty, in which case a Default on b
		// (necessarily zero-attribute, by the containment check) applies to
		// every row of a.
		if len(b.Rows) == 0 && b.Default > 0 {
			ar := newTupleArena(len(a.Attrs), len(a.Rows))
			for i, t := range a.Rows {
				row := ar.alloc()
				copy(row, t)
				out.Rows = append(out.Rows, row)
				out.Cnt = append(out.Cnt, MulSat(a.Cnt[i], b.Default))
			}
			return out, nil
		}
		crossProductInto(out, a, b)
		return out, nil
	}

	ix := buildJoinIndex(b, p.bIdx)
	ar := newTupleArena(len(out.Attrs), len(a.Rows))
	if ix.unique {
		// Unique-keyed build side (e.g. any group-by output): at most one
		// output row per probe, so presize exactly once.
		out.Rows = make([]Tuple, 0, len(a.Rows))
		out.Cnt = make([]int64, 0, len(a.Rows))
	}
	scratch := make([]int64, len(p.bIdx))
	for i, t := range a.Rows {
		j := ix.probe(t, p.aIdx, scratch)
		if j < 0 {
			if b.Default > 0 {
				row := ar.alloc()
				copy(row, t)
				out.Rows = append(out.Rows, row)
				out.Cnt = append(out.Cnt, MulSat(a.Cnt[i], b.Default))
			}
			continue
		}
		for ; j >= 0; j = ix.next[j] {
			row := ar.alloc()
			copy(row, t)
			br := b.Rows[j]
			for x, e := range p.extraIdx {
				row[len(t)+x] = br[e]
			}
			out.Rows = append(out.Rows, row)
			out.Cnt = append(out.Cnt, MulSat(a.Cnt[i], b.Cnt[j]))
		}
	}
	return out, nil
}

// JoinGroup is the composite γ_attrs(r⋈(a, b)) used on every edge of the
// top/botjoin recursions. It is a genuinely fused kernel: per-match counts
// are aggregated straight into the group table keyed by the projected
// columns, so the wide join rows are never materialized. The result is
// identical (up to row order) to Join followed by GroupBy, including the
// Default semantics of approximate operands.
func JoinGroup(a, b *Counted, attrs []string) (*Counted, error) {
	p, err := planJoin(a, b)
	if err != nil {
		return nil, err
	}
	unionAttrs := Union(a.Attrs, b.Attrs)
	// Resolve each group column against the virtual join schema: prefer a's
	// column (shared attributes are equal on both sides after matching).
	srcA := make([]int, len(attrs))
	srcB := make([]int, len(attrs))
	for i, at := range attrs {
		if j := a.AttrIndex(at); j >= 0 {
			srcA[i], srcB[i] = j, -1
			continue
		}
		j := b.AttrIndex(at)
		if j < 0 {
			return nil, fmt.Errorf("counted relation: no attribute %q in %v", at, unionAttrs)
		}
		srcA[i], srcB[i] = -1, j
	}
	out := &Counted{Attrs: append([]string(nil), attrs...)}
	agg := newGroupAgg(len(attrs), len(a.Rows))
	key := make([]int64, len(attrs))

	if len(p.shared) == 0 {
		if len(b.Rows) == 0 && b.Default > 0 {
			for i, t := range a.Rows {
				for k, s := range srcA {
					key[k] = t[s] // b ⊆ a, so every column resolves to a
				}
				agg.add(key, MulSat(a.Cnt[i], b.Default))
			}
			agg.emit(out)
			return out, nil
		}
		for i, t := range a.Rows {
			for j, br := range b.Rows {
				for k := range key {
					if srcA[k] >= 0 {
						key[k] = t[srcA[k]]
					} else {
						key[k] = br[srcB[k]]
					}
				}
				agg.add(key, MulSat(a.Cnt[i], b.Cnt[j]))
			}
		}
		agg.emit(out)
		return out, nil
	}

	ix := buildJoinIndex(b, p.bIdx)
	scratch := make([]int64, len(p.bIdx))
	for i, t := range a.Rows {
		j := ix.probe(t, p.aIdx, scratch)
		if j < 0 {
			if b.Default > 0 {
				for k, s := range srcA {
					key[k] = t[s]
				}
				agg.add(key, MulSat(a.Cnt[i], b.Default))
			}
			continue
		}
		for ; j >= 0; j = ix.next[j] {
			br := b.Rows[j]
			for k := range key {
				if srcA[k] >= 0 {
					key[k] = t[srcA[k]]
				} else {
					key[k] = br[srcB[k]]
				}
			}
			agg.add(key, MulSat(a.Cnt[i], b.Cnt[j]))
		}
	}
	agg.emit(out)
	return out, nil
}

// GreedyJoinOrder orders operands for a multiway join starting from
// pieces[0]: operands connected to the accumulated schema (sharing an
// attribute) go first, smallest row count first among them, so cross
// products happen only when unavoidable and intermediates stay small. The
// order is deterministic (ties break on position) and does not affect the
// join result. It is the shared ordering heuristic of GHD bag
// materialization and the solver's piece-group joins.
func GreedyJoinOrder(pieces []*Counted) []*Counted {
	if len(pieces) == 0 {
		return nil
	}
	remaining := append([]*Counted(nil), pieces...)
	ordered := []*Counted{remaining[0]}
	attrs := remaining[0].Attrs
	remaining = remaining[1:]
	for len(remaining) > 0 {
		pick := -1
		for i, p := range remaining {
			if len(Intersect(attrs, p.Attrs)) == 0 {
				continue
			}
			if pick < 0 || len(p.Rows) < len(remaining[pick].Rows) {
				pick = i
			}
		}
		if pick < 0 {
			pick = 0 // cross product fallback
		}
		ordered = append(ordered, remaining[pick])
		attrs = Union(attrs, remaining[pick].Attrs)
		remaining = append(remaining[:pick], remaining[pick+1:]...)
	}
	return ordered
}

// JoinGroupChain computes γ_attrs(a ⋈ bs[0] ⋈ … ⋈ bs[k-1]), fusing the
// final join with the group-by — the shape of every botjoin/topjoin edge
// and of the Yannakakis counting pass.
//
// When every operand's attribute set is contained in a's — true on every
// join-tree edge, where operands are group-bys over connector variables —
// the whole chain collapses into a single pass over a's rows with one hash
// lookup per operand and no intermediate materialization at all (see
// joinGroupLookup).
func JoinGroupChain(a *Counted, bs []*Counted, attrs []string) (*Counted, error) {
	for {
		if len(bs) == 0 {
			return a.GroupBy(attrs)
		}
		// Once the accumulated schema covers every remaining operand (after
		// zero or more widening joins), finish in one lookup pass.
		if a.Default == 0 {
			contained := true
			for _, b := range bs {
				if !ContainsAll(a.Attrs, b.Attrs) {
					contained = false
					break
				}
			}
			if contained {
				return joinGroupLookup(a, bs, attrs)
			}
		}
		if len(bs) == 1 {
			return JoinGroup(a, bs[0], attrs)
		}
		var err error
		if a, err = Join(a, bs[0]); err != nil {
			return nil, err
		}
		bs = bs[1:]
	}
}

// lookupOp is one operand of joinGroupLookup compiled to a key→count table:
// the operand's rows summed by its (full) attribute tuple, addressed by the
// corresponding columns of the probing relation. When the operand's rows are
// already key-distinct — always true for group-by outputs, i.e. every
// botjoin/topjoin table — the operand's cached lazy index is reused, so
// repeated edges over the same table build it exactly once.
type lookupOp struct {
	width  int
	aIdx   []int // positions of the operand's attrs within a, in operand order
	tbl    *intTable
	rowOf  []int32 // shared-index path: id -> row of b
	bCnt   []int64 // shared-index path: b.Cnt
	cnt    []int64 // summed path: id -> summed count
	scalar int64   // width==0 with rows: total count
	hasRow bool
	def    int64
}

func buildLookupOp(a, b *Counted) *lookupOp {
	op := &lookupOp{width: len(b.Attrs), def: b.Default}
	for _, at := range b.Attrs {
		op.aIdx = append(op.aIdx, a.AttrIndex(at))
	}
	if op.width == 0 {
		for _, c := range b.Cnt {
			op.scalar = AddSat(op.scalar, c)
			op.hasRow = true
		}
		return op
	}
	ix := b.index()
	op.tbl = ix.tbl
	if ix.tbl.n == len(b.Rows) { // key-distinct: count lookup via row indirection
		op.rowOf = ix.rowOf
		op.bCnt = b.Cnt
		return op
	}
	// Duplicate rows: sum counts per distinct key, probing the same cached
	// index (no second table build).
	op.cnt = make([]int64, ix.tbl.n)
	for i, t := range b.Rows {
		id := ix.tbl.find(t)
		op.cnt[id] = AddSat(op.cnt[id], b.Cnt[i])
	}
	return op
}

// lookup returns the summed count matching row t of the probing relation,
// with ok=false on a miss (before Default handling). scratch must have the
// op's width.
func (op *lookupOp) lookup(t Tuple, scratch []int64) (int64, bool) {
	if op.width == 0 {
		if op.hasRow {
			return op.scalar, true
		}
		return 0, false
	}
	for k, x := range op.aIdx {
		scratch[k] = t[x]
	}
	id := op.tbl.find(scratch[:op.width])
	if id < 0 {
		return 0, false
	}
	if op.rowOf != nil {
		return op.bCnt[op.rowOf[id]], true
	}
	return op.cnt[id], true
}

// joinGroupLookup is the chain kernel for operands contained in a: because
// no operand contributes new columns, all matches of one operand against a
// row of a collapse to a single summed multiplier, so
// γ_attrs(a ⋈ b1 ⋈ … ⋈ bk) is one pass over a's rows multiplying k table
// lookups (a miss applies the operand's Default, or drops the row) and
// aggregating straight into the group table.
func joinGroupLookup(a *Counted, bs []*Counted, attrs []string) (*Counted, error) {
	srcA := make([]int, len(attrs))
	for i, at := range attrs {
		j := a.AttrIndex(at)
		if j < 0 {
			return nil, fmt.Errorf("counted relation: no attribute %q in %v", at, a.Attrs)
		}
		srcA[i] = j
	}
	ops := make([]*lookupOp, len(bs))
	maxW := 0
	for i, b := range bs {
		ops[i] = buildLookupOp(a, b)
		if ops[i].width > maxW {
			maxW = ops[i].width
		}
	}
	out := &Counted{Attrs: append([]string(nil), attrs...)}
	agg := newGroupAgg(len(attrs), len(a.Rows))
	key := make([]int64, len(attrs))
	scratch := make([]int64, maxW)

rows:
	for i, t := range a.Rows {
		cnt := a.Cnt[i]
		for _, op := range ops {
			s, ok := op.lookup(t, scratch)
			if !ok {
				if op.def > 0 {
					s = op.def
				} else {
					continue rows
				}
			}
			cnt = MulSat(cnt, s)
		}
		for k, x := range srcA {
			key[k] = t[x]
		}
		agg.add(key, cnt)
	}
	agg.emit(out)
	return out, nil
}

// Semijoin keeps the rows of a whose shared-attribute key appears in b.
func Semijoin(a, b *Counted) (*Counted, error) {
	shared := Intersect(a.Attrs, b.Attrs)
	aIdx, err := a.attrIndexes(shared)
	if err != nil {
		return nil, err
	}
	bIdx, err := b.attrIndexes(shared)
	if err != nil {
		return nil, err
	}
	out := &Counted{Attrs: append([]string(nil), a.Attrs...), Default: a.Default}
	if len(shared) == 0 {
		// Zero-width keys: every row of a survives iff b is non-empty.
		if len(b.Rows) > 0 {
			out.Rows = append(out.Rows, a.Rows...)
			out.Cnt = append(out.Cnt, a.Cnt...)
		}
		return out, nil
	}
	if len(shared) == 1 {
		bx := bIdx[0]
		keys := make(map[int64]struct{}, groupHint(len(b.Rows)))
		for _, t := range b.Rows {
			keys[t[bx]] = struct{}{}
		}
		ax := aIdx[0]
		for i, t := range a.Rows {
			if _, ok := keys[t[ax]]; ok {
				out.Rows = append(out.Rows, t)
				out.Cnt = append(out.Cnt, a.Cnt[i])
			}
		}
		return out, nil
	}
	tbl := newIntTable(len(bIdx), groupHint(len(b.Rows)))
	scratch := make([]int64, len(bIdx))
	for _, t := range b.Rows {
		for k, ix := range bIdx {
			scratch[k] = t[ix]
		}
		tbl.insert(scratch)
	}
	for i, t := range a.Rows {
		for k, ix := range aIdx {
			scratch[k] = t[ix]
		}
		if tbl.find(scratch) >= 0 {
			out.Rows = append(out.Rows, t)
			out.Cnt = append(out.Cnt, a.Cnt[i])
		}
	}
	return out, nil
}

// Filter returns the rows of c for which keep is true.
func (c *Counted) Filter(keep func(Tuple) bool) *Counted {
	out := &Counted{Attrs: append([]string(nil), c.Attrs...), Default: c.Default}
	for i, t := range c.Rows {
		if keep(t) {
			out.Rows = append(out.Rows, t)
			out.Cnt = append(out.Cnt, c.Cnt[i])
		}
	}
	return out
}

// SumCnt returns the total multiplicity, i.e. |Q(D)| when c is a full join
// result.
func (c *Counted) SumCnt() int64 {
	var s int64
	for _, v := range c.Cnt {
		s = AddSat(s, v)
	}
	return s
}

// MaxRow returns the row with the largest count and that count. The second
// return is 0 (with a nil row) when c is empty. When c carries a Default
// larger than every explicit count, the Default wins and the returned row is
// nil, signaling "any unlisted value".
func (c *Counted) MaxRow() (Tuple, int64) {
	var best Tuple
	bestCnt := int64(0)
	for i, v := range c.Cnt {
		if v > bestCnt {
			bestCnt = v
			best = c.Rows[i]
		}
	}
	if c.Default > bestCnt {
		return nil, c.Default
	}
	return best, bestCnt
}

// TopK truncates c to its k most frequent rows and records the k-th count as
// the Default for all other values (Section 5.4, "Efficient
// approximations"). If c has at most k rows it is returned unchanged.
func (c *Counted) TopK(k int) *Counted {
	if k <= 0 || len(c.Rows) <= k {
		return c
	}
	order := make([]int, len(c.Rows))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return c.Cnt[order[x]] > c.Cnt[order[y]] })
	out := &Counted{Attrs: append([]string(nil), c.Attrs...)}
	for _, i := range order[:k] {
		out.Rows = append(out.Rows, c.Rows[i])
		out.Cnt = append(out.Cnt, c.Cnt[i])
	}
	out.Default = c.Cnt[order[k-1]]
	if c.Default > out.Default {
		out.Default = c.Default
	}
	return out
}

// index returns the full-row hash index, building (or rebuilding, when rows
// were appended since the last build) it under the lock and publishing it
// atomically so concurrent probes are lock-free afterwards.
func (c *Counted) index() *lookupIndex {
	if ix := c.lookupIdx.Load(); ix != nil && ix.n == len(c.Rows) {
		return ix
	}
	c.lookupMu.Lock()
	defer c.lookupMu.Unlock()
	if ix := c.lookupIdx.Load(); ix != nil && ix.n == len(c.Rows) {
		return ix
	}
	ix := &lookupIndex{tbl: newIntTable(len(c.Attrs), groupHint(len(c.Rows))), n: len(c.Rows)}
	for i, t := range c.Rows {
		if _, added := ix.tbl.insert(t); added {
			ix.rowOf = append(ix.rowOf, int32(i))
		}
	}
	c.lookupIdx.Store(ix)
	return ix
}

// BuildIndex eagerly builds the lazy Probe/Lookup hash index, making
// subsequent probes lock-free and safe for concurrent use.
func (c *Counted) BuildIndex() {
	if len(c.Attrs) > 0 {
		c.index()
	}
}

// Probe returns the count of the row equal to key (given in c.Attrs order)
// and whether it is explicitly present; the Default is not applied. The
// first probe builds a hash index over all rows, turning what used to be an
// O(n) scan into O(1) per call.
func (c *Counted) Probe(key Tuple) (int64, bool) {
	if len(key) != len(c.Attrs) {
		return 0, false
	}
	if len(c.Attrs) == 0 {
		if len(c.Rows) > 0 {
			return c.Cnt[0], true
		}
		return 0, false
	}
	ix := c.index()
	id := ix.tbl.find(key)
	if id < 0 {
		return 0, false
	}
	return c.Cnt[ix.rowOf[id]], true
}

// Lookup returns the count of the row matching key values over the given
// attributes (which must cover all of c's attributes in any order). Missing
// keys return the Default.
func (c *Counted) Lookup(attrs []string, vals Tuple) (int64, error) {
	if len(attrs) != len(vals) {
		return 0, fmt.Errorf("lookup: %d attrs but %d values", len(attrs), len(vals))
	}
	pos := make(map[string]int64, len(attrs))
	for i, a := range attrs {
		pos[a] = vals[i]
	}
	want := make(Tuple, len(c.Attrs))
	for i, a := range c.Attrs {
		v, ok := pos[a]
		if !ok {
			return 0, fmt.Errorf("lookup: attribute %q not provided", a)
		}
		want[i] = v
	}
	if cnt, ok := c.Probe(want); ok {
		return cnt, nil
	}
	return c.Default, nil
}

// Clone deep-copies c (without the lazy lookup index).
func (c *Counted) Clone() *Counted {
	out := &Counted{
		Attrs:   append([]string(nil), c.Attrs...),
		Cnt:     append([]int64(nil), c.Cnt...),
		Default: c.Default,
	}
	if len(c.Rows) > 0 {
		ar := newTupleArena(len(c.Attrs), len(c.Rows))
		out.Rows = make([]Tuple, len(c.Rows))
		for i, t := range c.Rows {
			row := ar.alloc()
			copy(row, t)
			out.Rows[i] = row
		}
	}
	return out
}
