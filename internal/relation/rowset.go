package relation

import (
	"encoding/binary"
	"fmt"
)

// RowSet tracks the multiset of rows of one relation together with their
// positions, so deletes validate membership and run in O(1) (swap-remove)
// instead of scanning the relation. The incremental session and the serving
// layer both maintain live relations through it.
type RowSet struct {
	pos map[string][]int
}

// rowSetKey encodes a tuple as a byte-string map key.
func rowSetKey(t Tuple) string {
	b := make([]byte, 8*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return string(b)
}

// NewRowSet indexes the current rows of r.
func NewRowSet(r *Relation) *RowSet {
	rs := &RowSet{pos: make(map[string][]int, len(r.Rows))}
	for i, t := range r.Rows {
		k := rowSetKey(t)
		rs.pos[k] = append(rs.pos[k], i)
	}
	return rs
}

// Insert appends a private clone of t to r and indexes it.
func (rs *RowSet) Insert(r *Relation, t Tuple) {
	row := t.Clone()
	k := rowSetKey(row)
	rs.pos[k] = append(rs.pos[k], len(r.Rows))
	r.Rows = append(r.Rows, row)
}

// Remove deletes one occurrence of t from r, as TryRemove does, but makes
// removing an absent tuple an error.
func (rs *RowSet) Remove(r *Relation, t Tuple) error {
	if !rs.TryRemove(r, t) {
		return fmt.Errorf("relation: delete of absent tuple %v from %s", t, r.Name)
	}
	return nil
}

// TryRemove deletes one occurrence of t from r (swap-remove), keeping the
// position map of the moved row accurate, and reports whether t was
// present; absent tuples leave r untouched.
func (rs *RowSet) TryRemove(r *Relation, t Tuple) bool {
	k := rowSetKey(t)
	list := rs.pos[k]
	if len(list) == 0 {
		return false
	}
	i := list[len(list)-1]
	if len(list) == 1 {
		delete(rs.pos, k)
	} else {
		rs.pos[k] = list[:len(list)-1]
	}
	last := len(r.Rows) - 1
	if i != last {
		moved := r.Rows[last]
		r.Rows[i] = moved
		mk := rowSetKey(moved)
		ml := rs.pos[mk]
		for j := len(ml) - 1; j >= 0; j-- {
			if ml[j] == last {
				ml[j] = i
				break
			}
		}
	}
	r.Rows = r.Rows[:last]
	return true
}
