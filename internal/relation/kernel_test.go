package relation

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// canon renders a Counted as a canonical multiset string: rows (with counts)
// sorted, plus attrs and Default. Two relations are operator-equivalent iff
// their canon forms match.
func canon(c *Counted) string {
	lines := make([]string, len(c.Rows))
	for i, t := range c.Rows {
		lines[i] = fmt.Sprintf("%v=%d", []int64(t), c.Cnt[i])
	}
	sort.Strings(lines)
	return fmt.Sprintf("attrs=%v default=%d rows=%v", c.Attrs, c.Default, lines)
}

// randCounted builds a random Counted over the given attrs with values drawn
// from [0, domain) and counts from [1, 5].
func randCounted(rng *rand.Rand, attrs []string, rows, domain int) *Counted {
	c := &Counted{Attrs: append([]string(nil), attrs...)}
	for i := 0; i < rows; i++ {
		t := make(Tuple, len(attrs))
		for j := range t {
			t[j] = int64(rng.Intn(domain))
		}
		c.Rows = append(c.Rows, t)
		c.Cnt = append(c.Cnt, int64(rng.Intn(5))+1)
	}
	return c
}

// TestJoinGroupFusedEqualsUnfused cross-checks the fused JoinGroup kernel
// against the composition of Join and GroupBy on randomized inputs,
// covering single- and multi-column shared keys, cross products, grouping
// onto 0..all columns, and approximate (Default > 0) right operands.
func TestJoinGroupFusedEqualsUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	schemas := []struct {
		a, b []string
	}{
		{[]string{"A", "B"}, []string{"B", "C"}},           // single shared col
		{[]string{"A", "B", "C"}, []string{"B", "C", "D"}}, // two shared cols
		{[]string{"A"}, []string{"B"}},                     // cross product
		{[]string{"A", "B", "C"}, []string{"C"}},           // b ⊆ a
	}
	for trial := 0; trial < 300; trial++ {
		sc := schemas[trial%len(schemas)]
		a := randCounted(rng, sc.a, rng.Intn(40), 4)
		b := randCounted(rng, sc.b, rng.Intn(40), 4)
		if trial%3 == 1 && ContainsAll(sc.a, sc.b) {
			b.Default = int64(rng.Intn(3) + 1) // approximate operand
			if rng.Intn(2) == 0 {
				b.Rows, b.Cnt = nil, nil // force the all-miss Default path
			}
		}
		union := Union(a.Attrs, b.Attrs)
		// Group onto a random subset of the join schema, in random order.
		perm := rng.Perm(len(union))
		attrs := make([]string, 0, len(union))
		for _, p := range perm[:rng.Intn(len(union)+1)] {
			attrs = append(attrs, union[p])
		}

		fused, errF := JoinGroup(a, b, attrs)
		j, errJ := Join(a, b)
		var unfused *Counted
		errU := errJ
		if errJ == nil {
			unfused, errU = j.GroupBy(attrs)
		}
		if (errF == nil) != (errU == nil) {
			t.Fatalf("trial %d: fused err=%v, unfused err=%v", trial, errF, errU)
		}
		if errF != nil {
			continue
		}
		if got, want := canon(fused), canon(unfused); got != want {
			t.Fatalf("trial %d (a=%v b=%v default=%d group=%v):\nfused   %s\nunfused %s",
				trial, sc.a, sc.b, b.Default, attrs, got, want)
		}
	}
}

// TestJoinGroupErrors checks the fused kernel rejects exactly what the
// composition rejects.
func TestJoinGroupErrors(t *testing.T) {
	a := &Counted{Attrs: []string{"A", "B"}, Rows: []Tuple{{1, 2}}, Cnt: []int64{1}}
	b := &Counted{Attrs: []string{"B", "C"}, Rows: []Tuple{{2, 3}}, Cnt: []int64{1}}
	if _, err := JoinGroup(a, b, []string{"Z"}); err == nil {
		t.Fatal("missing group attribute accepted")
	}
	approx := &Counted{Attrs: []string{"C"}, Rows: []Tuple{{1}}, Cnt: []int64{1}, Default: 2}
	if _, err := JoinGroup(a, approx, []string{"A"}); err == nil {
		t.Fatal("approximate operand with new attrs accepted")
	}
	aDef := &Counted{Attrs: []string{"A"}, Rows: []Tuple{{1}}, Cnt: []int64{1}, Default: 1}
	if _, err := JoinGroup(aDef, b, []string{"A"}); err == nil {
		t.Fatal("approximate left operand accepted")
	}
}

// TestJoinGroupChainEqualsJoinsThenGroup checks the chain helper against
// explicit joins, on both chain shapes: operands that extend the schema
// (general fused path) and operands contained in a's attributes (the
// single-pass lookup kernel used by the botjoin/topjoin edges), with and
// without approximate operands.
func TestJoinGroupChainEqualsJoinsThenGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(trial int, a *Counted, bs []*Counted, attrs []string) {
		t.Helper()
		chained, errC := JoinGroupChain(a, bs, attrs)
		acc := a
		var errW error
		for _, b := range bs {
			if acc, errW = Join(acc, b); errW != nil {
				break
			}
		}
		var want *Counted
		if errW == nil {
			want, errW = acc.GroupBy(attrs)
		}
		if (errC == nil) != (errW == nil) {
			t.Fatalf("trial %d: chain err=%v, unfused err=%v", trial, errC, errW)
		}
		if errC != nil {
			return
		}
		if canon(chained) != canon(want) {
			t.Fatalf("trial %d:\nchained %s\nwant    %s", trial, canon(chained), canon(want))
		}
	}
	for trial := 0; trial < 100; trial++ {
		// Schema-extending chain: b adds C, c adds D.
		a := randCounted(rng, []string{"A", "B"}, rng.Intn(20), 3)
		b := randCounted(rng, []string{"B", "C"}, rng.Intn(20), 3)
		c := randCounted(rng, []string{"C", "D"}, rng.Intn(20), 3)
		check(trial, a, []*Counted{b, c}, []string{"A"})

		// Contained chain (lookup kernel): operands over subsets of a.
		wide := randCounted(rng, []string{"A", "B", "C"}, rng.Intn(30), 3)
		s1 := randCounted(rng, []string{"B"}, rng.Intn(6), 3)
		s2 := randCounted(rng, []string{"C", "A"}, rng.Intn(10), 3)
		if trial%2 == 1 {
			s1.Default = int64(rng.Intn(3) + 1)
			if rng.Intn(2) == 0 {
				s2.Default = int64(rng.Intn(3) + 1)
			}
		}
		groups := [][]string{{"A"}, {"A", "B"}, {}, {"C", "B", "A"}}
		check(trial, wide, []*Counted{s1, s2}, groups[trial%len(groups)])
	}
}

// TestProbeMatchesScan checks the lazy hash index against a linear scan.
func TestProbeMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randCounted(rng, []string{"A", "B"}, 100, 6)
	for trial := 0; trial < 200; trial++ {
		key := Tuple{int64(rng.Intn(8)), int64(rng.Intn(8))}
		wantCnt, wantOK := int64(0), false
		for i, row := range c.Rows {
			if row.Equal(key) {
				wantCnt, wantOK = c.Cnt[i], true
				break
			}
		}
		gotCnt, gotOK := c.Probe(key)
		if gotCnt != wantCnt || gotOK != wantOK {
			t.Fatalf("Probe(%v) = (%d,%v), scan = (%d,%v)", key, gotCnt, gotOK, wantCnt, wantOK)
		}
	}
	// Index must rebuild when rows are appended after the first probe.
	c.Rows = append(c.Rows, Tuple{100, 100})
	c.Cnt = append(c.Cnt, 9)
	if cnt, ok := c.Probe(Tuple{100, 100}); !ok || cnt != 9 {
		t.Fatalf("stale index: Probe after append = (%d,%v)", cnt, ok)
	}
}

// TestIntTable exercises the open-addressing table across growth.
func TestIntTable(t *testing.T) {
	tbl := newIntTable(3, 0)
	n := 10000
	for i := 0; i < n; i++ {
		key := []int64{int64(i % 100), int64(i % 77), int64(i)}
		id, added := tbl.insert(key)
		if !added || int(id) != i {
			t.Fatalf("insert %d: id=%d added=%v", i, id, added)
		}
	}
	for i := 0; i < n; i++ {
		key := []int64{int64(i % 100), int64(i % 77), int64(i)}
		if id, added := tbl.insert(key); added || int(id) != i {
			t.Fatalf("re-insert %d: id=%d added=%v", i, id, added)
		}
		if id := tbl.find(key); int(id) != i {
			t.Fatalf("find %d: id=%d", i, id)
		}
	}
	if tbl.find([]int64{-1, -1, -1}) != -1 {
		t.Fatal("found absent key")
	}
}

// --- allocation regression tests -------------------------------------------

// benchRelPair builds a single-shared-column join pair of the given size.
func benchRelPair(n int) (*Counted, *Counted) {
	a := &Counted{Attrs: []string{"A", "B"}}
	b := &Counted{Attrs: []string{"B", "C"}}
	arA, arB := newTupleArena(2, n), newTupleArena(2, n)
	for i := 0; i < n; i++ {
		ra := arA.alloc()
		ra[0], ra[1] = int64(i), int64(i%97)
		a.Rows = append(a.Rows, ra)
		a.Cnt = append(a.Cnt, int64(i%3)+1)
		rb := arB.alloc()
		rb[0], rb[1] = int64(i%97), int64(i%13)
		b.Rows = append(b.Rows, rb)
		b.Cnt = append(b.Cnt, int64(i%2)+1)
	}
	return a, b
}

// TestJoinSingleColumnAllocs pins the allocation count of the single-column
// join fast path: it must stay O(output/chunk), not O(rows).
func TestJoinSingleColumnAllocs(t *testing.T) {
	a, b := benchRelPair(1024)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Join(a, b); err != nil {
			t.Fatal(err)
		}
	})
	// The seed kernel allocated one string key plus one row per output
	// tuple (>20000 here); the arena kernel needs only the index, chunks,
	// and slice growth.
	if allocs > 200 {
		t.Errorf("single-column Join allocates %v times per run, want <= 200", allocs)
	}
}

// TestGroupBySingleColumnAllocs pins the allocation count of the
// single-column group-by fast path.
func TestGroupBySingleColumnAllocs(t *testing.T) {
	a, _ := benchRelPair(1024)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := a.GroupBy([]string{"B"}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 64 {
		t.Errorf("single-column GroupBy allocates %v times per run, want <= 64", allocs)
	}
}

// TestJoinGroupFusedAllocs pins the fused kernel: it must not materialize
// the wide join (which would cost one arena row per match).
func TestJoinGroupFusedAllocs(t *testing.T) {
	a, b := benchRelPair(1024)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := JoinGroup(a, b, []string{"B"}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 64 {
		t.Errorf("fused JoinGroup allocates %v times per run, want <= 64", allocs)
	}
}

// TestFromRelationAllocs pins the arena-batched FromRelation.
func TestFromRelationAllocs(t *testing.T) {
	rows := make([]Tuple, 1024)
	for i := range rows {
		rows[i] = Tuple{int64(i % 200), int64(i % 11)}
	}
	r := MustNew("R", []string{"A", "B"}, rows)
	allocs := testing.AllocsPerRun(10, func() {
		FromRelation(r)
	})
	if allocs > 64 {
		t.Errorf("FromRelation allocates %v times per run, want <= 64", allocs)
	}
}

// --- kernel micro-benchmarks ------------------------------------------------

func BenchmarkKernelJoin1Col(b *testing.B) {
	x, y := benchRelPair(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Join(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelJoinGroupFused(b *testing.B) {
	x, y := benchRelPair(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := JoinGroup(x, y, []string{"B"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelJoinGroupUnfused(b *testing.B) {
	x, y := benchRelPair(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := Join(x, y)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := j.GroupBy([]string{"B"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelGroupBy1Col(b *testing.B) {
	x, _ := benchRelPair(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.GroupBy([]string{"B"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelGroupByMultiCol(b *testing.B) {
	x, _ := benchRelPair(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.GroupBy([]string{"B", "A"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelFromRelation(b *testing.B) {
	rows := make([]Tuple, 4096)
	for i := range rows {
		rows[i] = Tuple{int64(i % 512), int64(i % 17)}
	}
	r := MustNew("R", []string{"A", "B"}, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromRelation(r)
	}
}

func BenchmarkKernelProbe(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := randCounted(rng, []string{"A", "B"}, 4096, 1000)
	c.BuildIndex()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var key [2]int64
		key[0], key[1] = int64(i%1000), int64(i%1000)
		c.Probe(key[:])
	}
}
