package relation

// Canonical-key construction and refcounted interning (hash-consing).
// The multi-query plan sharing layer (incremental.PlanStore) fingerprints
// join-tree subtrees into canonical string keys and interns the maintained
// tables behind them, so N registered queries with overlapping plans keep
// one copy of each shared node. The primitives live here, next to the
// tables they dedup, because the keys are built from the same vocabulary
// the tables carry (relation names, attribute lists, predicate strings).

import "strings"

// canonSep separates the fields of a canonical key. It never occurs in
// relation names, variable names, or predicate renderings (all caller
// vocabularies are identifier-like), so joined keys cannot collide across
// field boundaries; canonEscape guards the general case anyway.
const canonSep = "\x1f"

// CanonKey joins key fields into one canonical string. Fields containing
// the separator are escaped, so distinct field vectors always produce
// distinct keys.
func CanonKey(fields ...string) string {
	for _, f := range fields {
		if strings.ContainsAny(f, canonSep+"\\") {
			esc := make([]string, len(fields))
			for i, g := range fields {
				g = strings.ReplaceAll(g, `\`, `\\`)
				esc[i] = strings.ReplaceAll(g, canonSep, `\x1f`)
			}
			return strings.Join(esc, canonSep)
		}
	}
	return strings.Join(fields, canonSep)
}

// Interned is one hash-consed entry: the shared value plus its reference
// count (the number of subscribers currently holding it).
type Interned[V any] struct {
	Key  string
	Val  V
	Refs int
}

// Interner is a refcounted hash-cons table from canonical keys to shared
// values. It is a plain map wrapper — callers provide their own locking
// (incremental.PlanStore serializes all access under its mutex).
type Interner[V any] struct {
	m map[string]*Interned[V]
}

// NewInterner returns an empty interner.
func NewInterner[V any]() *Interner[V] {
	return &Interner[V]{m: make(map[string]*Interned[V])}
}

// Lookup returns the entry for key without touching its refcount.
func (in *Interner[V]) Lookup(key string) (*Interned[V], bool) {
	e, ok := in.m[key]
	return e, ok
}

// Retain bumps the refcount of an existing entry and returns it; creating
// happens through Put.
func (in *Interner[V]) Retain(e *Interned[V]) *Interned[V] {
	e.Refs++
	return e
}

// Put interns a new value under key with refcount 1. The key must be
// absent — hash-consing never silently replaces a live shared value.
func (in *Interner[V]) Put(key string, v V) *Interned[V] {
	if _, ok := in.m[key]; ok {
		panic("relation: Interner.Put over live key " + key)
	}
	e := &Interned[V]{Key: key, Val: v, Refs: 1}
	in.m[key] = e
	return e
}

// Release drops one reference and removes the entry when the count hits
// zero, returning true exactly then.
func (in *Interner[V]) Release(e *Interned[V]) bool {
	e.Refs--
	if e.Refs > 0 {
		return false
	}
	delete(in.m, e.Key)
	return true
}

// Len returns the number of interned entries.
func (in *Interner[V]) Len() int { return len(in.m) }

// Shared returns how many entries have more than one subscriber.
func (in *Interner[V]) Shared() int {
	n := 0
	for _, e := range in.m {
		if e.Refs > 1 {
			n++
		}
	}
	return n
}

// Range calls fn for every interned entry.
func (in *Interner[V]) Range(fn func(*Interned[V])) {
	for _, e := range in.m {
		fn(e)
	}
}
