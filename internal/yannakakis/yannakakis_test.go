package yannakakis

import (
	"math/rand"
	"testing"

	"tsens/internal/ghd"
	"tsens/internal/query"
	"tsens/internal/relation"
)

// figure1DB builds the database instance of Figure 1 of the paper.
func figure1DB() *relation.Database {
	// Values: a1=1,a2=2; b1=1,b2=2; c1=1; d1=1,d2=2; e1=1,e2=2; f1=1,f2=2.
	r1 := relation.MustNew("R1", []string{"A", "B", "C"}, []relation.Tuple{
		{1, 1, 1}, {1, 2, 1}, {2, 1, 1},
	})
	r2 := relation.MustNew("R2", []string{"A", "B", "D"}, []relation.Tuple{
		{1, 1, 1}, {2, 2, 2},
	})
	r3 := relation.MustNew("R3", []string{"A", "E"}, []relation.Tuple{
		{1, 1}, {2, 1}, {2, 2},
	})
	r4 := relation.MustNew("R4", []string{"B", "F"}, []relation.Tuple{
		{1, 1}, {2, 1}, {2, 2},
	})
	return relation.MustNewDatabase(r1, r2, r3, r4)
}

func figure1Query() *query.Query {
	return query.MustNew("q", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B", "C"}},
		{Relation: "R2", Vars: []string{"A", "B", "D"}},
		{Relation: "R3", Vars: []string{"A", "E"}},
		{Relation: "R4", Vars: []string{"B", "F"}},
	}, nil)
}

func TestCountFigure1(t *testing.T) {
	// Figure 1(b): the join result is the single tuple (a1,b1,c1,d1,e1,f1).
	got, err := Count(figure1Query(), figure1DB())
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("Count=%d, want 1", got)
	}
}

func TestBruteForceAgreesFigure1(t *testing.T) {
	bc, err := BruteCount(figure1Query(), figure1DB())
	if err != nil {
		t.Fatal(err)
	}
	if bc != 1 {
		t.Fatalf("BruteCount=%d", bc)
	}
	out, err := BruteForce(figure1Query(), figure1DB())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 {
		t.Fatalf("BruteForce rows=%d", len(out.Rows))
	}
}

func TestCountPathFigure3(t *testing.T) {
	// Figure 3's path query: R1(A,B), R2(B,C), R3(C,D), R4(D,E); the paper
	// shows Q has 4 output tuples... compute directly: R1 has 4 tuples (two
	// copies of (a2,b2)); bag semantics multiplies.
	r1 := relation.MustNew("R1", []string{"A", "B"}, []relation.Tuple{
		{1, 1}, {1, 2}, {2, 2}, {2, 2},
	})
	r2 := relation.MustNew("R2", []string{"B", "C"}, []relation.Tuple{
		{1, 1}, {1, 2}, {2, 1}, {2, 1},
	})
	r3 := relation.MustNew("R3", []string{"C", "D"}, []relation.Tuple{
		{1, 1}, {1, 1}, {2, 1}, {2, 2},
	})
	r4 := relation.MustNew("R4", []string{"D", "E"}, []relation.Tuple{
		{1, 1}, {1, 2}, {1, 3}, {2, 4},
	})
	db := relation.MustNewDatabase(r1, r2, r3, r4)
	q := query.MustNew("qpath", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
		{Relation: "R4", Vars: []string{"D", "E"}},
	}, nil)
	fast, err := Count(q, db)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := BruteCount(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if fast != slow {
		t.Fatalf("Count=%d BruteCount=%d", fast, slow)
	}
}

func TestCountWithSelection(t *testing.T) {
	r1 := relation.MustNew("R1", []string{"A", "B"}, []relation.Tuple{{1, 1}, {2, 1}})
	r2 := relation.MustNew("R2", []string{"B", "C"}, []relation.Tuple{{1, 5}, {1, 6}})
	db := relation.MustNewDatabase(r1, r2)
	q := query.MustNew("q", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}, map[string][]query.Predicate{
		"R1": {{Var: "A", Op: query.Eq, Value: 1}},
	})
	got, err := Count(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("Count=%d, want 2 (only A=1 joins)", got)
	}
}

func TestCountDisconnected(t *testing.T) {
	r1 := relation.MustNew("R1", []string{"A"}, []relation.Tuple{{1}, {2}})
	r2 := relation.MustNew("R2", []string{"B"}, []relation.Tuple{{7}, {8}, {9}})
	db := relation.MustNewDatabase(r1, r2)
	q := query.MustNew("q", []query.Atom{
		{Relation: "R1", Vars: []string{"A"}},
		{Relation: "R2", Vars: []string{"B"}},
	}, nil)
	got, err := Count(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("Count=%d, want 6 (cross product)", got)
	}
}

func TestCountEmptyRelation(t *testing.T) {
	r1 := relation.MustNew("R1", []string{"A", "B"}, nil)
	r2 := relation.MustNew("R2", []string{"B", "C"}, []relation.Tuple{{1, 2}})
	db := relation.MustNewDatabase(r1, r2)
	q := query.MustNew("q", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}, nil)
	got, err := Count(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("Count=%d, want 0", got)
	}
}

func TestCountRejectsCyclic(t *testing.T) {
	r := func(name string) *relation.Relation {
		return relation.MustNew(name, []string{"x", "y"}, []relation.Tuple{{1, 1}})
	}
	db := relation.MustNewDatabase(r("R1"), r("R2"), r("R3"))
	tri := query.MustNew("tri", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "A"}},
	}, nil)
	if _, err := Count(tri, db); err == nil {
		t.Fatal("cyclic query accepted by acyclic Count")
	}
}

func TestCountGHDTriangle(t *testing.T) {
	// A triangle graph on nodes 1,2,3 plus edge (1,3): edges stored
	// bidirected in three tables.
	edges := []relation.Tuple{{1, 2}, {2, 3}, {3, 1}, {2, 1}, {3, 2}, {1, 3}}
	db := relation.MustNewDatabase(
		relation.MustNew("R1", []string{"x", "y"}, edges),
		relation.MustNew("R2", []string{"x", "y"}, edges),
		relation.MustNew("R3", []string{"x", "y"}, edges),
	)
	tri := query.MustNew("tri", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "A"}},
	}, nil)
	d := ghd.MustFromBags(tri, [][]int{{0, 1}, {2}})
	fast, err := CountGHD(tri, db, d)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := BruteCount(tri, db)
	if err != nil {
		t.Fatal(err)
	}
	if fast != slow {
		t.Fatalf("CountGHD=%d BruteCount=%d", fast, slow)
	}
	if fast != 6 {
		// Each of the 3! orientations of the triangle 1-2-3.
		t.Fatalf("triangle count=%d, want 6", fast)
	}
}

// Randomized agreement between the tree-based count and brute force on
// random path instances.
func TestCountRandomAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(3)
		atoms := make([]query.Atom, m)
		rels := make([]*relation.Relation, m)
		for i := 0; i < m; i++ {
			va := string(rune('A' + i))
			vb := string(rune('A' + i + 1))
			atoms[i] = query.Atom{Relation: string(rune('R')) + va, Vars: []string{va, vb}}
			n := rng.Intn(6)
			rows := make([]relation.Tuple, n)
			for j := range rows {
				rows[j] = relation.Tuple{int64(rng.Intn(3)), int64(rng.Intn(3))}
			}
			rels[i] = relation.MustNew(atoms[i].Relation, []string{"x", "y"}, rows)
		}
		db := relation.MustNewDatabase(rels...)
		q := query.MustNew("q", atoms, nil)
		fast, err := Count(q, db)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := BruteCount(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if fast != slow {
			t.Fatalf("trial %d: Count=%d BruteCount=%d", trial, fast, slow)
		}
	}
}

func TestBaseCountedErrors(t *testing.T) {
	db := relation.MustNewDatabase(relation.MustNew("R1", []string{"x"}, nil))
	q := query.MustNew("q", []query.Atom{{Relation: "R1", Vars: []string{"A"}}}, nil)
	if _, err := BaseCounted(q, db, query.Atom{Relation: "Z", Vars: []string{"A"}}); err == nil {
		t.Fatal("missing relation accepted")
	}
	if _, err := BaseCounted(q, db, query.Atom{Relation: "R1", Vars: []string{"A", "B"}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}
