package yannakakis

import (
	"math/rand"
	"sort"
	"testing"

	"tsens/internal/query"
	"tsens/internal/relation"
)

func TestReduceRemovesDanglingTuples(t *testing.T) {
	// R1(A,B) has a dangling tuple (9,9) that joins nothing in R2.
	r1 := relation.MustNew("R1", []string{"a", "b"}, []relation.Tuple{{1, 1}, {9, 9}})
	r2 := relation.MustNew("R2", []string{"b", "c"}, []relation.Tuple{{1, 5}})
	db := relation.MustNewDatabase(r1, r2)
	q := query.MustNew("q", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}, nil)
	reduced, err := Reduce(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(reduced[0].Rows) != 1 {
		t.Fatalf("R1 reduced to %d rows, want 1", len(reduced[0].Rows))
	}
	if !reduced[0].Rows[0].Equal(relation.Tuple{1, 1}) {
		t.Fatalf("wrong surviving tuple: %v", reduced[0].Rows[0])
	}
	// Inputs untouched.
	if len(db.Relation("R1").Rows) != 2 {
		t.Fatal("Reduce mutated the database")
	}
}

func TestReduceTopDownPass(t *testing.T) {
	// The child has a tuple that survives bottom-up (children first) but
	// must be removed top-down because the parent lost its partner.
	r1 := relation.MustNew("R1", []string{"a", "b"}, []relation.Tuple{{1, 1}})
	r2 := relation.MustNew("R2", []string{"b", "c"}, []relation.Tuple{{1, 5}, {2, 6}})
	db := relation.MustNewDatabase(r1, r2)
	q := query.MustNew("q", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}, nil)
	reduced, err := Reduce(q, db)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range q.Atoms {
		if a.Relation == "R2" && len(reduced[i].Rows) != 1 {
			t.Fatalf("R2 reduced to %d rows, want 1", len(reduced[i].Rows))
		}
	}
}

// canonicalRows renders a counted relation as a sorted list of projected
// rows for order- and column-order-insensitive comparison over shared
// variables.
func canonicalRows(t *testing.T, c *relation.Counted, vars []string) []string {
	t.Helper()
	g, err := c.GroupBy(vars)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for i, row := range g.Rows {
		s := ""
		for _, v := range row {
			s += string(rune('0'+v)) + ","
		}
		s += "#"
		for j := int64(0); j < g.Cnt[i]; j++ {
			s += "|"
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func TestOutputMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		// Random star query: R0(A,B,C) with satellites.
		atoms := []query.Atom{
			{Relation: "R0", Vars: []string{"A", "B", "C"}},
			{Relation: "R1", Vars: []string{"A", "X"}},
			{Relation: "R2", Vars: []string{"B", "Y"}},
		}
		mk := func(name string, arity, n int) *relation.Relation {
			attrs := make([]string, arity)
			for i := range attrs {
				attrs[i] = string(rune('p' + i))
			}
			rows := make([]relation.Tuple, n)
			for i := range rows {
				tpl := make(relation.Tuple, arity)
				for j := range tpl {
					tpl[j] = int64(rng.Intn(3))
				}
				rows[i] = tpl
			}
			return relation.MustNew(name, attrs, rows)
		}
		db := relation.MustNewDatabase(mk("R0", 3, rng.Intn(6)), mk("R1", 2, rng.Intn(5)), mk("R2", 2, rng.Intn(5)))
		q := query.MustNew("q", atoms, nil)
		fast, err := Output(q, db)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := BruteForce(q, db)
		if err != nil {
			t.Fatal(err)
		}
		vars := q.Vars()
		a := canonicalRows(t, fast, vars)
		b := canonicalRows(t, slow, vars)
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d distinct output rows", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: output row %d differs:\n%s\n%s", trial, i, a[i], b[i])
			}
		}
	}
}

func TestOutputFigure1(t *testing.T) {
	out, err := Output(figure1Query(), figure1DB())
	if err != nil {
		t.Fatal(err)
	}
	if out.SumCnt() != 1 {
		t.Fatalf("output count=%d, want 1", out.SumCnt())
	}
	if len(out.Attrs) != 6 {
		t.Fatalf("output attrs=%v, want all six variables", out.Attrs)
	}
}

func TestOutputDisconnected(t *testing.T) {
	r1 := relation.MustNew("R1", []string{"a"}, []relation.Tuple{{1}, {2}})
	r2 := relation.MustNew("R2", []string{"b"}, []relation.Tuple{{7}})
	db := relation.MustNewDatabase(r1, r2)
	q := query.MustNew("q", []query.Atom{
		{Relation: "R1", Vars: []string{"A"}},
		{Relation: "R2", Vars: []string{"B"}},
	}, nil)
	out, err := Output(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if out.SumCnt() != 2 || len(out.Attrs) != 2 {
		t.Fatalf("cross product output: %v cnt=%d", out.Attrs, out.SumCnt())
	}
}
