package yannakakis

import (
	"fmt"

	"tsens/internal/query"
	"tsens/internal/relation"
)

// Reduce applies Yannakakis's full reducer to the counted base relations of
// an acyclic query: a bottom-up semijoin pass followed by a top-down pass.
// Afterwards every remaining tuple participates in at least one output
// tuple (no dangling tuples), which bounds all intermediate join sizes
// during enumeration by the output size — the property that makes acyclic
// evaluation output-polynomial (Section 2.2 of the paper, citing [46]).
//
// The returned slice is indexed like q.Atoms. The inputs are not modified.
func Reduce(q *query.Query, db *relation.Database) ([]*relation.Counted, error) {
	if _, err := q.Bind(db); err != nil {
		return nil, err
	}
	tree, err := query.BuildJoinTree(q.Atoms)
	if err != nil {
		return nil, err
	}
	rels := make([]*relation.Counted, len(q.Atoms))
	for i, a := range q.Atoms {
		c, err := BaseCounted(q, db, a)
		if err != nil {
			return nil, err
		}
		rels[i] = c
	}
	// Bottom-up: each parent keeps only tuples joinable with every child.
	for _, n := range tree.PostOrder() {
		for _, c := range n.Children {
			s, err := relation.Semijoin(rels[n.Index], rels[c.Index])
			if err != nil {
				return nil, err
			}
			rels[n.Index] = s
		}
	}
	// Top-down: each child keeps only tuples joinable with its parent.
	for _, n := range tree.PreOrder() {
		if n.Parent == nil {
			continue
		}
		s, err := relation.Semijoin(rels[n.Index], rels[n.Parent.Index])
		if err != nil {
			return nil, err
		}
		rels[n.Index] = s
	}
	return rels, nil
}

// Output materializes the full join result of an acyclic query over all
// query variables, using the full reducer so intermediate results never
// exceed input + output size. For counting only, Count is cheaper.
func Output(q *query.Query, db *relation.Database) (*relation.Counted, error) {
	rels, err := Reduce(q, db)
	if err != nil {
		return nil, err
	}
	tree, err := query.BuildJoinTree(q.Atoms)
	if err != nil {
		return nil, err
	}
	// Join children into parents along the tree (post-order), then cross
	// the component results.
	acc := make([]*relation.Counted, len(rels))
	copy(acc, rels)
	for _, n := range tree.PostOrder() {
		for _, c := range n.Children {
			j, err := relation.Join(acc[n.Index], acc[c.Index])
			if err != nil {
				return nil, err
			}
			acc[n.Index] = j
		}
	}
	var out *relation.Counted
	for _, r := range tree.Roots {
		if out == nil {
			out = acc[r.Index]
			continue
		}
		j, err := relation.Join(out, acc[r.Index])
		if err != nil {
			return nil, err
		}
		out = j
	}
	if out == nil {
		return nil, fmt.Errorf("yannakakis: query has no atoms")
	}
	// Normalize the column order to the query's variable order (a pure
	// permutation; counts are preserved).
	return out.GroupBy(q.Vars())
}
