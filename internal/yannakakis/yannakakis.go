// Package yannakakis evaluates counting queries: |Q(D)| under bag
// semantics. Acyclic queries are counted in O(n log n) per Yannakakis's
// algorithm (one bottom-up pass over a join tree tracking multiplicities);
// cyclic queries are counted either through a generalized hypertree
// decomposition (materialize each bag, then count over the acyclic bag
// tree) or by brute-force join for small instances.
//
// The package is deliberately independent from internal/core so that the
// sensitivity algorithms can be validated against a second implementation.
package yannakakis

import (
	"fmt"

	"tsens/internal/ghd"
	"tsens/internal/par"
	"tsens/internal/query"
	"tsens/internal/relation"
)

// BaseCounted converts the bound, selection-filtered base relation of an
// atom into counted form with columns renamed to the atom's variables.
// Filtering, renaming, and deduplication happen in one pass over the raw
// rows (no intermediate filtered copy).
func BaseCounted(q *query.Query, db *relation.Database, a query.Atom) (*relation.Counted, error) {
	return BaseCountedProject(q, db, a, a.Vars)
}

// BaseCountedProject is BaseCounted restricted to the atom variables vars:
// the base rows are filtered and grouped by vars in a single pass,
// equivalent to BaseCounted(...).GroupBy(vars) without materializing the
// full-width deduplicated intermediate.
func BaseCountedProject(q *query.Query, db *relation.Database, a query.Atom, vars []string) (*relation.Counted, error) {
	r := db.Relation(a.Relation)
	if r == nil {
		return nil, fmt.Errorf("yannakakis: no relation %s", a.Relation)
	}
	if len(r.Attrs) != len(a.Vars) {
		return nil, fmt.Errorf("yannakakis: atom %s arity %d vs relation arity %d", a, len(a.Vars), len(r.Attrs))
	}
	idxs := make([]int, len(vars))
	for i, v := range vars {
		j := -1
		for k, av := range a.Vars {
			if av == v {
				j = k
				break
			}
		}
		if j < 0 {
			return nil, fmt.Errorf("yannakakis: atom %s has no variable %q", a, v)
		}
		idxs[i] = j
	}
	return relation.GroupRows(vars, r.Rows, idxs, q.ApplySelections(a)), nil
}

// Count returns |Q(D)| for an acyclic query (including disconnected ones,
// whose component counts multiply), using all cores.
func Count(q *query.Query, db *relation.Database) (int64, error) {
	return CountPar(q, db, 0)
}

// CountPar is Count with an explicit parallelism bound (0 = GOMAXPROCS,
// 1 = sequential); results are identical at any setting.
func CountPar(q *query.Query, db *relation.Database, parallelism int) (int64, error) {
	if _, err := q.Bind(db); err != nil {
		return 0, err
	}
	tree, err := query.BuildJoinTree(q.Atoms)
	if err != nil {
		return 0, err
	}
	rels := make([]*relation.Counted, len(q.Atoms))
	err = par.Do(parallelism, len(q.Atoms), func(i int) error {
		c, err := BaseCounted(q, db, q.Atoms[i])
		if err != nil {
			return err
		}
		rels[i] = c
		return nil
	})
	if err != nil {
		return 0, err
	}
	return countTree(tree, rels, parallelism)
}

// countTree runs the bottom-up counting pass over a join forest whose node
// i evaluates over rels[node.Index]. Every edge chain ends in the fused
// join+group-by kernel, and nodes whose children are settled run
// concurrently, so independent subtrees are counted in parallel.
func countTree(tree *query.Tree, rels []*relation.Counted, parallelism int) (int64, error) {
	bot := make([]*relation.Counted, len(tree.Nodes))
	deps := make([][]int, len(tree.Nodes))
	for i, n := range tree.Nodes {
		for _, c := range n.Children {
			deps[i] = append(deps[i], c.Index)
		}
	}
	err := par.DAG(parallelism, deps, func(i int) error {
		n := tree.Nodes[i]
		bots := make([]*relation.Counted, len(n.Children))
		for k, c := range n.Children {
			bots[k] = bot[c.Index]
		}
		g, err := relation.JoinGroupChain(rels[i], bots, n.ConnectorVars())
		if err != nil {
			return err
		}
		bot[i] = g
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := int64(1)
	for _, r := range tree.Roots {
		total = relation.MulSat(total, bot[r.Index].SumCnt())
	}
	return total, nil
}

// CountGHD counts a (possibly cyclic) query through a decomposition:
// each bag is materialized as the join of its members, and the acyclic
// counting pass runs over the bag tree, using all cores.
func CountGHD(q *query.Query, db *relation.Database, d *ghd.Decomposition) (int64, error) {
	return CountGHDPar(q, db, d, 0)
}

// CountGHDPar is CountGHD with an explicit parallelism bound
// (0 = GOMAXPROCS, 1 = sequential); results are identical at any setting.
func CountGHDPar(q *query.Query, db *relation.Database, d *ghd.Decomposition, parallelism int) (int64, error) {
	if _, err := q.Bind(db); err != nil {
		return 0, err
	}
	bagAtoms := d.BagAtoms(q)
	tree, err := query.BuildJoinTree(bagAtoms)
	if err != nil {
		return 0, err
	}
	rels := make([]*relation.Counted, len(d.Bags))
	err = par.Do(parallelism, len(d.Bags), func(bi int) error {
		bag := d.Bags[bi]
		members := make([]*relation.Counted, len(bag))
		for i, ai := range bag {
			c, err := BaseCounted(q, db, q.Atoms[ai])
			if err != nil {
				return err
			}
			members[i] = c
		}
		// Align to the bag atom's variable order while grouping; the fused
		// kernel never materializes the full-width bag join.
		g, err := ghd.MaterializeGrouped(members, bagAtoms[bi].Vars)
		if err != nil {
			return err
		}
		rels[bi] = g
		return nil
	})
	if err != nil {
		return 0, err
	}
	return countTree(tree, rels, parallelism)
}

// BruteForce joins all atoms of the query in a greedy connected order and
// returns the full output as a counted relation over all variables. It is
// exponential in general and intended for the naive-oracle tests and tiny
// examples.
func BruteForce(q *query.Query, db *relation.Database) (*relation.Counted, error) {
	if _, err := q.Bind(db); err != nil {
		return nil, err
	}
	members := make([]*relation.Counted, len(q.Atoms))
	for i, a := range q.Atoms {
		c, err := BaseCounted(q, db, a)
		if err != nil {
			return nil, err
		}
		members[i] = c
	}
	return ghd.Materialize(members)
}

// BruteCount is |Q(D)| by brute force.
func BruteCount(q *query.Query, db *relation.Database) (int64, error) {
	out, err := BruteForce(q, db)
	if err != nil {
		return 0, err
	}
	return out.SumCnt(), nil
}
