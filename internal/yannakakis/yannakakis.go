// Package yannakakis evaluates counting queries: |Q(D)| under bag
// semantics. Acyclic queries are counted in O(n log n) per Yannakakis's
// algorithm (one bottom-up pass over a join tree tracking multiplicities);
// cyclic queries are counted either through a generalized hypertree
// decomposition (materialize each bag, then count over the acyclic bag
// tree) or by brute-force join for small instances.
//
// The package is deliberately independent from internal/core so that the
// sensitivity algorithms can be validated against a second implementation.
package yannakakis

import (
	"fmt"

	"tsens/internal/ghd"
	"tsens/internal/query"
	"tsens/internal/relation"
)

// BaseCounted converts the bound, selection-filtered base relation of an
// atom into counted form with columns renamed to the atom's variables.
func BaseCounted(q *query.Query, db *relation.Database, a query.Atom) (*relation.Counted, error) {
	r := db.Relation(a.Relation)
	if r == nil {
		return nil, fmt.Errorf("yannakakis: no relation %s", a.Relation)
	}
	if len(r.Attrs) != len(a.Vars) {
		return nil, fmt.Errorf("yannakakis: atom %s arity %d vs relation arity %d", a, len(a.Vars), len(r.Attrs))
	}
	rows := r.Rows
	if keep := q.ApplySelections(a); keep != nil {
		rows = nil
		for _, t := range r.Rows {
			if keep(t) {
				rows = append(rows, t)
			}
		}
	}
	renamed := &relation.Relation{Name: a.Relation, Attrs: a.Vars, Rows: rows}
	return relation.FromRelation(renamed), nil
}

// Count returns |Q(D)| for an acyclic query (including disconnected ones,
// whose component counts multiply).
func Count(q *query.Query, db *relation.Database) (int64, error) {
	if _, err := q.Bind(db); err != nil {
		return 0, err
	}
	tree, err := query.BuildJoinTree(q.Atoms)
	if err != nil {
		return 0, err
	}
	rels := make([]*relation.Counted, len(q.Atoms))
	for i, a := range q.Atoms {
		c, err := BaseCounted(q, db, a)
		if err != nil {
			return 0, err
		}
		rels[i] = c
	}
	return countTree(tree, rels)
}

// countTree runs the bottom-up counting pass over a join forest whose node
// i evaluates over rels[node.Index].
func countTree(tree *query.Tree, rels []*relation.Counted) (int64, error) {
	bot := make([]*relation.Counted, len(tree.Nodes))
	for _, n := range tree.PostOrder() {
		acc := rels[n.Index]
		for _, c := range n.Children {
			j, err := relation.Join(acc, bot[c.Index])
			if err != nil {
				return 0, err
			}
			acc = j
		}
		g, err := acc.GroupBy(n.ConnectorVars())
		if err != nil {
			return 0, err
		}
		bot[n.Index] = g
	}
	total := int64(1)
	for _, r := range tree.Roots {
		total = relation.MulSat(total, bot[r.Index].SumCnt())
	}
	return total, nil
}

// CountGHD counts a (possibly cyclic) query through a decomposition:
// each bag is materialized as the join of its members, and the acyclic
// counting pass runs over the bag tree.
func CountGHD(q *query.Query, db *relation.Database, d *ghd.Decomposition) (int64, error) {
	if _, err := q.Bind(db); err != nil {
		return 0, err
	}
	bagAtoms := d.BagAtoms(q)
	tree, err := query.BuildJoinTree(bagAtoms)
	if err != nil {
		return 0, err
	}
	rels := make([]*relation.Counted, len(d.Bags))
	for bi, bag := range d.Bags {
		members := make([]*relation.Counted, len(bag))
		for i, ai := range bag {
			c, err := BaseCounted(q, db, q.Atoms[ai])
			if err != nil {
				return 0, err
			}
			members[i] = c
		}
		m, err := ghd.Materialize(members)
		if err != nil {
			return 0, err
		}
		// Align to the bag atom's variable order via group-by (a pure
		// column permutation; counts are preserved).
		g, err := m.GroupBy(bagAtoms[bi].Vars)
		if err != nil {
			return 0, err
		}
		rels[bi] = g
	}
	return countTree(tree, rels)
}

// BruteForce joins all atoms of the query in a greedy connected order and
// returns the full output as a counted relation over all variables. It is
// exponential in general and intended for the naive-oracle tests and tiny
// examples.
func BruteForce(q *query.Query, db *relation.Database) (*relation.Counted, error) {
	if _, err := q.Bind(db); err != nil {
		return nil, err
	}
	members := make([]*relation.Counted, len(q.Atoms))
	for i, a := range q.Atoms {
		c, err := BaseCounted(q, db, a)
		if err != nil {
			return nil, err
		}
		members[i] = c
	}
	return ghd.Materialize(members)
}

// BruteCount is |Q(D)| by brute force.
func BruteCount(q *query.Query, db *relation.Database) (int64, error) {
	out, err := BruteForce(q, db)
	if err != nil {
		return 0, err
	}
	return out.SumCnt(), nil
}
