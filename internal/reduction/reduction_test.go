package reduction

import (
	"math/rand"
	"testing"

	"tsens/internal/core"
)

func lit(v int, neg bool) Literal { return Literal{Var: v, Negated: neg} }

func TestValidate(t *testing.T) {
	bad := &Formula{NumVars: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero variables accepted")
	}
	bad2 := &Formula{NumVars: 2, Clauses: []Clause{{lit(0, false), lit(5, false), lit(1, false)}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("out-of-range variable accepted")
	}
}

func TestSatisfiedAndBruteForce(t *testing.T) {
	// (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ ¬x1 ∨ ¬x2)
	f := &Formula{NumVars: 3, Clauses: []Clause{
		{lit(0, false), lit(1, false), lit(2, false)},
		{lit(0, true), lit(1, true), lit(2, true)},
	}}
	a, ok := f.BruteForceSAT()
	if !ok {
		t.Fatal("satisfiable formula reported unsat")
	}
	if !f.Satisfied(a) {
		t.Fatal("returned assignment does not satisfy")
	}
	// x ∧ ¬x encoded as two unit-ish clauses.
	unsat := &Formula{NumVars: 1, Clauses: []Clause{
		{lit(0, false), lit(0, false), lit(0, false)},
		{lit(0, true), lit(0, true), lit(0, true)},
	}}
	if _, ok := unsat.BruteForceSAT(); ok {
		t.Fatal("unsatisfiable formula reported sat")
	}
}

func TestBuildProducesAcyclicInstance(t *testing.T) {
	f := &Formula{NumVars: 3, Clauses: []Clause{
		{lit(0, false), lit(1, true), lit(2, false)},
	}}
	q, db, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if !IsAcyclicInstance(q) {
		t.Fatal("reduction instance must be acyclic (Theorem 3.2)")
	}
	if len(db.Relation("R0").Rows) != 0 {
		t.Fatal("R0 must be empty")
	}
	// Clause relation has 7 satisfying triples.
	if got := len(db.Relation("R1").Rows); got != 7 {
		t.Fatalf("clause relation has %d rows, want 7", got)
	}
}

func TestBuildRepeatedVariableClause(t *testing.T) {
	// (x0 ∨ x0 ∨ x1): collapses to two variables.
	f := &Formula{NumVars: 2, Clauses: []Clause{
		{lit(0, false), lit(0, false), lit(1, false)},
	}}
	q, db, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	r1 := db.Relation("R1")
	if len(r1.Attrs) != 2 {
		t.Fatalf("collapsed clause relation has %d attrs", len(r1.Attrs))
	}
	// Satisfying pairs of (x0, x1): all but (0,0) → 3 rows.
	if len(r1.Rows) != 3 {
		t.Fatalf("rows=%d, want 3", len(r1.Rows))
	}
	if !IsAcyclicInstance(q) {
		t.Fatal("instance must stay acyclic")
	}
}

// The heart of Theorem 3.2: LS(Q,D) > 0 ⇔ φ satisfiable, checked on random
// small formulas against brute-force SAT.
func TestReductionSoundAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(3) // 2..4 variables
		s := 1 + rng.Intn(4) // 1..4 clauses
		f := &Formula{NumVars: n}
		for c := 0; c < s; c++ {
			var cl Clause
			for i := range cl {
				cl[i] = Literal{Var: rng.Intn(n), Negated: rng.Intn(2) == 1}
			}
			f.Clauses = append(f.Clauses, cl)
		}
		_, sat := f.BruteForceSAT()
		q, db, err := Build(f)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.LocalSensitivity(q, db, core.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, q)
		}
		if (res.LS > 0) != sat {
			t.Fatalf("trial %d: LS=%d but satisfiable=%v\nformula: %+v", trial, res.LS, sat, f)
		}
		// When satisfiable, the most sensitive tuple must be inserted into
		// R0 and encode a satisfying assignment.
		if sat {
			if res.Best.Relation != "R0" {
				t.Fatalf("trial %d: best relation=%s, want R0", trial, res.Best.Relation)
			}
			assignment := make([]bool, n)
			for i, v := range res.Best.Values {
				assignment[i] = v == 1
			}
			if !f.Satisfied(assignment) {
				t.Fatalf("trial %d: extracted assignment %v does not satisfy %+v", trial, assignment, f)
			}
		}
	}
}
