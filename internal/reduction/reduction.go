// Package reduction implements the NP-hardness construction of Theorem 3.2
// (Appendix A.2): a 3SAT formula φ with s clauses and ℓ variables maps to
// an acyclic conjunctive query Q and database D such that LS(Q, D) > 0 if
// and only if φ is satisfiable. One relation R_i per clause holds the seven
// satisfying Boolean triples; an empty relation R0 spans all variables, so
// the only way to raise the count above zero is to insert a satisfying
// assignment into R0.
package reduction

import (
	"fmt"

	"tsens/internal/query"
	"tsens/internal/relation"
)

// Literal is a 3SAT literal: variable index (0-based) and polarity.
type Literal struct {
	Var     int
	Negated bool
}

// Clause is a disjunction of exactly three literals.
type Clause [3]Literal

// Formula is a 3SAT instance over NumVars variables.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate checks variable indexes.
func (f *Formula) Validate() error {
	if f.NumVars <= 0 {
		return fmt.Errorf("reduction: formula needs at least one variable")
	}
	for i, c := range f.Clauses {
		for _, l := range c {
			if l.Var < 0 || l.Var >= f.NumVars {
				return fmt.Errorf("reduction: clause %d references variable %d out of range", i, l.Var)
			}
		}
	}
	return nil
}

// Satisfied reports whether assignment (one bool per variable) satisfies f.
func (f *Formula) Satisfied(assignment []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if assignment[l.Var] != l.Negated {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// BruteForceSAT searches all 2^n assignments; usable for the small test
// instances that cross-validate the reduction.
func (f *Formula) BruteForceSAT() (assignment []bool, satisfiable bool) {
	n := f.NumVars
	if n > 24 {
		return nil, false
	}
	a := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			a[i] = mask&(1<<i) != 0
		}
		if f.Satisfied(a) {
			return append([]bool(nil), a...), true
		}
	}
	return nil, false
}

// Build constructs the sensitivity instance (Q, D) of Theorem 3.2.
func Build(f *Formula) (*query.Query, *relation.Database, error) {
	if err := f.Validate(); err != nil {
		return nil, nil, err
	}
	varName := func(i int) string { return fmt.Sprintf("A%d", i) }

	// R0 spans every variable and is empty.
	allVars := make([]string, f.NumVars)
	r0Attrs := make([]string, f.NumVars)
	for i := range allVars {
		allVars[i] = varName(i)
		r0Attrs[i] = fmt.Sprintf("c%d", i)
	}
	atoms := []query.Atom{{Relation: "R0", Vars: allVars}}
	rels := []*relation.Relation{relation.MustNew("R0", r0Attrs, nil)}

	// One relation per clause with the seven satisfying triples.
	for ci, c := range f.Clauses {
		name := fmt.Sprintf("R%d", ci+1)
		vars := []string{varName(c[0].Var), varName(c[1].Var), varName(c[2].Var)}
		// Clauses like (x ∨ x ∨ y) repeat a variable; collapse duplicates,
		// since an atom may not repeat a variable.
		vars, cols := dedupeVars(vars)
		var rows []relation.Tuple
		for mask := 0; mask < 1<<3; mask++ {
			triple := [3]bool{mask&1 != 0, mask&2 != 0, mask&4 != 0}
			// Consistency for collapsed duplicates.
			consistent := true
			vals := map[int]bool{}
			for li, l := range c {
				if prev, seen := vals[l.Var]; seen && prev != triple[li] {
					consistent = false
					break
				}
				vals[l.Var] = triple[li]
			}
			if !consistent {
				continue
			}
			sat := false
			for li, l := range c {
				if triple[li] != l.Negated {
					sat = true
					break
				}
			}
			if !sat {
				continue
			}
			row := make(relation.Tuple, len(vars))
			for vi := range vars {
				if triple[cols[vi]] {
					row[vi] = 1
				}
			}
			rows = append(rows, row)
		}
		rows = dedupeRows(rows)
		attrs := make([]string, len(vars))
		for i := range attrs {
			attrs[i] = fmt.Sprintf("c%d", i)
		}
		atoms = append(atoms, query.Atom{Relation: name, Vars: vars})
		rels = append(rels, relation.MustNew(name, attrs, rows))
	}

	q, err := query.New("sat", atoms, nil)
	if err != nil {
		return nil, nil, err
	}
	db, err := relation.NewDatabase(rels...)
	if err != nil {
		return nil, nil, err
	}
	return q, db, nil
}

// dedupeVars collapses repeated variables, returning the distinct variable
// list and, per kept variable, the index of its first literal position.
func dedupeVars(vars []string) ([]string, []int) {
	var out []string
	var cols []int
	seen := map[string]bool{}
	for i, v := range vars {
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
		cols = append(cols, i)
	}
	return out, cols
}

func dedupeRows(rows []relation.Tuple) []relation.Tuple {
	var out []relation.Tuple
	seen := map[string]bool{}
	for _, r := range rows {
		k := fmt.Sprint(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// IsAcyclicInstance confirms the constructed query is acyclic, the point of
// the theorem (hardness already at acyclic queries).
func IsAcyclicInstance(q *query.Query) bool {
	return query.IsAcyclic(q.Atoms)
}
