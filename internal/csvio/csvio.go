// Package csvio reads and writes relations as CSV files. The first row is
// the header (attribute names); values that parse as integers are stored
// directly and any other string is dictionary-encoded via a Loader-wide
// relation.Dict, so mixed datasets round-trip losslessly.
//
// Integer values are offset into a reserved range so that dictionary codes
// (small non-negative ints) can never collide with integer data.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"tsens/internal/relation"
)

// stringBase separates dictionary codes from literal integers: codes are
// stored as stringBase + code. Literal integers must stay below it.
const stringBase = int64(1) << 48

// Loader decodes CSV relations with a shared string dictionary.
type Loader struct {
	dict *relation.Dict
}

// NewLoader returns an empty loader.
func NewLoader() *Loader {
	return &Loader{dict: relation.NewDict()}
}

// Encode turns a textual field into its stored int64 value, interning
// strings in the shared dictionary. Exposed so tools can encode values the
// same way the CSVs were loaded.
func (l *Loader) Encode(field string) (int64, error) {
	return l.encode(field)
}

// encode turns a CSV field into an int64 value.
func (l *Loader) encode(field string) (int64, error) {
	if v, err := strconv.ParseInt(field, 10, 64); err == nil {
		if v >= stringBase || v <= -stringBase {
			return 0, fmt.Errorf("csvio: integer %d out of the supported range (±2^48)", v)
		}
		return v, nil
	}
	return stringBase + l.dict.Encode(field), nil
}

// Decode renders a stored value back to its textual form.
func (l *Loader) Decode(v int64) string {
	if v >= stringBase {
		return l.dict.Decode(v - stringBase)
	}
	return strconv.FormatInt(v, 10)
}

// ReadRelation parses one CSV stream into a named relation.
func (l *Loader) ReadRelation(name string, r io.Reader) (*relation.Relation, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: %s: reading header: %w", name, err)
	}
	var rows []relation.Tuple
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: %s: %w", name, err)
		}
		t := make(relation.Tuple, len(rec))
		for i, f := range rec {
			t[i], err = l.encode(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("csvio: %s: %w", name, err)
			}
		}
		rows = append(rows, t)
	}
	return relation.New(name, header, rows)
}

// LoadFile reads path into a relation named after the file's base name
// (without extension).
func (l *Loader) LoadFile(path string) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return l.ReadRelation(name, f)
}

// LoadDir loads every *.csv file of a directory into a database.
func (l *Loader) LoadDir(dir string) (*relation.Database, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return nil, fmt.Errorf("csvio: no .csv files in %s", dir)
	}
	db, err := relation.NewDatabase()
	if err != nil {
		return nil, err
	}
	for _, p := range paths {
		r, err := l.LoadFile(p)
		if err != nil {
			return nil, err
		}
		if err := db.Add(r); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// WriteRelation emits a relation as CSV, decoding values through the
// loader's dictionary.
func (l *Loader) WriteRelation(r *relation.Relation, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Attrs); err != nil {
		return err
	}
	rec := make([]string, len(r.Attrs))
	for _, t := range r.Rows {
		for i, v := range t {
			rec[i] = l.Decode(v)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveFile writes a relation to path as CSV.
func (l *Loader) SaveFile(r *relation.Relation, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return l.WriteRelation(r, f)
}

// SaveDatabase writes every relation of db into dir as <name>.csv.
func (l *Loader) SaveDatabase(db *relation.Database, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range db.Names() {
		if err := l.SaveFile(db.Relation(name), filepath.Join(dir, name+".csv")); err != nil {
			return err
		}
	}
	return nil
}
