package csvio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsens/internal/relation"
)

func TestReadRelationIntegersAndStrings(t *testing.T) {
	l := NewLoader()
	in := "A,B\n1,foo\n2,bar\n1,foo\n"
	r, err := l.ReadRelation("R", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 || len(r.Attrs) != 2 {
		t.Fatalf("relation=%v", r)
	}
	if r.Rows[0][0] != 1 {
		t.Fatalf("integer not stored literally: %d", r.Rows[0][0])
	}
	if r.Rows[0][1] == r.Rows[1][1] {
		t.Fatal("distinct strings share codes")
	}
	if r.Rows[0][1] != r.Rows[2][1] {
		t.Fatal("equal strings encode differently")
	}
	if got := l.Decode(r.Rows[0][1]); got != "foo" {
		t.Fatalf("Decode=%q", got)
	}
	if got := l.Decode(r.Rows[0][0]); got != "1" {
		t.Fatalf("integer Decode=%q", got)
	}
}

func TestIntegerRangeGuard(t *testing.T) {
	l := NewLoader()
	in := "A\n999999999999999999\n"
	if _, err := l.ReadRelation("R", strings.NewReader(in)); err == nil {
		t.Fatal("huge integer accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	l := NewLoader()
	in := "A,B\n1,foo\n-2,bar\n"
	r, err := l.ReadRelation("R", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.WriteRelation(r, &buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != in {
		t.Fatalf("round trip:\n%q\nwant\n%q", got, in)
	}
}

func TestLoadSaveDir(t *testing.T) {
	dir := t.TempDir()
	l := NewLoader()
	db := relation.MustNewDatabase(
		relation.MustNew("R1", []string{"A"}, []relation.Tuple{{1}, {2}}),
		relation.MustNew("R2", []string{"B"}, []relation.Tuple{{7}}),
	)
	if err := l.SaveDatabase(db, dir); err != nil {
		t.Fatal(err)
	}
	l2 := NewLoader()
	got, err := l2.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 3 {
		t.Fatalf("Size=%d", got.Size())
	}
	if got.Relation("R1") == nil || got.Relation("R2") == nil {
		t.Fatalf("names=%v", got.Names())
	}
}

func TestLoadDirEmpty(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewLoader().LoadDir(dir); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := NewLoader().LoadDir(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestLoadFileNameFromBase(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ORDERS.csv")
	if err := os.WriteFile(path, []byte("CK,OK\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := NewLoader().LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "ORDERS" {
		t.Fatalf("name=%q", r.Name)
	}
}

func TestSharedDictAcrossRelations(t *testing.T) {
	l := NewLoader()
	r1, err := l.ReadRelation("R1", strings.NewReader("A\nfoo\n"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.ReadRelation("R2", strings.NewReader("B\nfoo\n"))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows[0][0] != r2.Rows[0][0] {
		t.Fatal("same string encodes differently across relations — joins would break")
	}
}
