package csvio

import (
	"strconv"
	"testing"

	"tsens/internal/relation"
)

func TestBinaryRecordRoundTrip(t *testing.T) {
	cases := [][]string{
		{},
		{""},
		{"+", "R1", "1", "2"},
		{"a,b", "line\nbreak", `quo"te`, ""},
		{string(make([]byte, 300))}, // multi-byte uvarint length
	}
	var buf []byte
	for _, fields := range cases {
		buf = AppendRecord(buf, fields...)
	}
	rest := buf
	for i, want := range cases {
		var got []string
		var err error
		got, rest, err = ReadRecord(rest)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("record %d: %d fields, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("record %d field %d: %q != %q", i, j, got[j], want[j])
			}
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
}

func TestBinaryRecordTruncation(t *testing.T) {
	full := AppendRecord(nil, "+", "R1", "hello")
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := ReadRecord(full[:cut]); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(full))
		}
	}
	// A field-count larger than the remaining bytes must fail fast, not
	// allocate.
	if _, _, err := ReadRecord([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}); err == nil {
		t.Fatal("absurd field count accepted")
	}
}

func TestBinaryUpdateRecordRoundTrip(t *testing.T) {
	loader := NewLoader()
	// Intern a string value so the round trip crosses the dictionary.
	code, err := loader.Encode("paris")
	if err != nil {
		t.Fatal(err)
	}
	ups := []relation.Update{
		{Rel: "R1", Row: relation.Tuple{1, 2}, Insert: true},
		{Rel: "R2", Row: relation.Tuple{code, -7}, Insert: false},
		{Rel: "Nullary", Insert: true},
	}
	var buf []byte
	for _, up := range ups {
		buf = AppendUpdateRecord(buf, up, loader.Decode)
	}
	// Decode through a fresh loader: string values must re-intern and then
	// decode back to the same text, the dictionary-rebuild property recovery
	// relies on.
	fresh := NewLoader()
	rest := buf
	for i, want := range ups {
		var got relation.Update
		var err error
		got, rest, err = ReadUpdateRecord(rest, fresh.Encode)
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if got.Rel != want.Rel || got.Insert != want.Insert || len(got.Row) != len(want.Row) {
			t.Fatalf("update %d: %+v != %+v", i, got, want)
		}
		for j := range want.Row {
			if fresh.Decode(got.Row[j]) != loader.Decode(want.Row[j]) {
				t.Fatalf("update %d value %d does not round-trip", i, j)
			}
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}
}

func TestBinaryUpdateRecordErrors(t *testing.T) {
	loader := NewLoader()
	// Integer-only encoder, like the serving layer's IntCodec: exercises
	// the value-error path.
	intOnly := func(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }
	cases := []struct {
		fields []string
		encode func(string) (int64, error)
	}{
		{fields: []string{"+"}, encode: loader.Encode},            // missing relation
		{fields: []string{"*", "R1", "1"}, encode: loader.Encode}, // bad op
		{fields: []string{"+", "", "1"}, encode: loader.Encode},   // empty relation
		{fields: []string{"+", "R1", "zzz"}, encode: intOnly},     // unencodable value
	}
	for _, c := range cases {
		buf := AppendRecord(nil, c.fields...)
		if _, _, err := ReadUpdateRecord(buf, c.encode); err == nil {
			t.Fatalf("bad update record %v accepted", c.fields)
		}
	}
}
