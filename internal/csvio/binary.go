package csvio

// Binary record codec: the length-prefixed on-disk form of string-field
// records used by the serving layer's write-ahead log and checkpoints
// (internal/serve/wal). A record is
//
//	uvarint(fieldCount) , fieldCount × ( uvarint(len) , bytes )
//
// — the binary analogue of one CSV line, safe for arbitrary bytes (embedded
// commas, quotes, newlines) and decodable without scanning for delimiters.
// Values travel in their textual form (the same rendering WriteUpdates
// uses), so a stream re-encoded through the same Loader/Codec on recovery
// reconstructs the string dictionary in write order; framing, checksums and
// durability are the WAL layer's job, not the codec's.

import (
	"encoding/binary"
	"fmt"

	"tsens/internal/relation"
)

// AppendRecord appends the binary encoding of one record to buf and returns
// the extended slice.
func AppendRecord(buf []byte, fields ...string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(fields)))
	for _, f := range fields {
		buf = binary.AppendUvarint(buf, uint64(len(f)))
		buf = append(buf, f...)
	}
	return buf
}

// ReadRecord decodes one record from the front of b, returning the fields
// and the remaining bytes. Truncated input fails rather than yielding a
// short record.
func ReadRecord(b []byte) (fields []string, rest []byte, err error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return nil, nil, fmt.Errorf("csvio: binary record: truncated field count")
	}
	b = b[used:]
	if n > uint64(len(b)) { // each field costs ≥ 1 byte; cheap corruption guard
		return nil, nil, fmt.Errorf("csvio: binary record: field count %d exceeds remaining %d bytes", n, len(b))
	}
	fields = make([]string, n)
	for i := range fields {
		l, used := binary.Uvarint(b)
		if used <= 0 {
			return nil, nil, fmt.Errorf("csvio: binary record: truncated length of field %d", i)
		}
		b = b[used:]
		if l > uint64(len(b)) {
			return nil, nil, fmt.Errorf("csvio: binary record: field %d wants %d bytes, %d left", i, l, len(b))
		}
		fields[i] = string(b[:l])
		b = b[l:]
	}
	return fields, b, nil
}

// AppendUpdateRecord appends the binary encoding of one update — the same
// op,relation,values... shape as an updates.stream line — rendering values
// through decode (a Loader.Decode or serve Codec).
func AppendUpdateRecord(buf []byte, up relation.Update, decode func(int64) string) []byte {
	fields := make([]string, 0, 2+len(up.Row))
	sign := "-"
	if up.Insert {
		sign = "+"
	}
	fields = append(fields, sign, up.Rel)
	for _, v := range up.Row {
		fields = append(fields, decode(v))
	}
	return AppendRecord(buf, fields...)
}

// ReadUpdateRecord decodes one update record from the front of b, encoding
// values back through encode (the inverse of AppendUpdateRecord's decode).
func ReadUpdateRecord(b []byte, encode func(string) (int64, error)) (relation.Update, []byte, error) {
	fields, rest, err := ReadRecord(b)
	if err != nil {
		return relation.Update{}, nil, err
	}
	if len(fields) < 2 {
		return relation.Update{}, nil, fmt.Errorf("csvio: binary update record has %d field(s), need op,relation,values...", len(fields))
	}
	up := relation.Update{Rel: fields[1]}
	switch fields[0] {
	case "+":
		up.Insert = true
	case "-":
		up.Insert = false
	default:
		return relation.Update{}, nil, fmt.Errorf("csvio: binary update record: bad op %q (want + or -)", fields[0])
	}
	if up.Rel == "" {
		return relation.Update{}, nil, fmt.Errorf("csvio: binary update record: empty relation name")
	}
	if n := len(fields) - 2; n > 0 {
		up.Row = make(relation.Tuple, n)
		for i, f := range fields[2:] {
			v, err := encode(f)
			if err != nil {
				return relation.Update{}, nil, fmt.Errorf("csvio: binary update record: value %d: %w", i+1, err)
			}
			up.Row[i] = v
		}
	}
	return up, rest, nil
}
