package csvio

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"

	"tsens/internal/relation"
)

// Update-stream files are CSV-formatted with one record per update:
//
//	op,relation,v1,v2,...
//
// op is "+" (insert) or "-" (delete); values use the same encoding as the
// relation CSVs, so a stream written next to a snapshot replays against it
// through the same Loader (which keeps the string dictionary consistent).
// Streams use the .stream extension so LoadDir never mistakes one for a
// relation.

// UpdatesFileName is the conventional stream file name inside a snapshot
// directory, written by datagen -updates and replayed by tsens updates.
const UpdatesFileName = "updates.stream"

// WriteUpdates streams updates to w.
func (l *Loader) WriteUpdates(ops []relation.Update, w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, op := range ops {
		rec := make([]string, 0, 2+len(op.Row))
		sign := "-"
		if op.Insert {
			sign = "+"
		}
		rec = append(rec, sign, op.Rel)
		for _, v := range op.Row {
			rec = append(rec, l.Decode(v))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("csvio: writing update: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadUpdates parses an update stream from r with the loader's dictionary.
// Malformed rows fail with the stream name and the exact line the row
// starts on (blank lines and quoted multi-line fields do not skew the
// count), so a replay tool can point the operator at the offending record.
// name is a label for diagnostics — pass the file path when reading from
// disk (LoadUpdates does).
func (l *Loader) ReadUpdates(name string, r io.Reader) ([]relation.Update, error) {
	return ParseUpdates(name, r, l.encode)
}

// ParseUpdates is the encoder-agnostic core of ReadUpdates, shared with the
// serving layer's text/csv update bodies (which encode through a Codec
// rather than a Loader).
func ParseUpdates(name string, r io.Reader, encode func(string) (int64, error)) ([]relation.Update, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = -1 // arity varies per relation
	var out []relation.Update
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			var pe *csv.ParseError
			if errors.As(err, &pe) {
				return nil, fmt.Errorf("csvio: %s:%d: %w", name, pe.Line, pe.Err)
			}
			return nil, fmt.Errorf("csvio: %s: %w", name, err)
		}
		line, _ := cr.FieldPos(0)
		if len(rec) < 2 {
			return nil, fmt.Errorf("csvio: %s:%d: update record has %d field(s), need op,relation,values...", name, line, len(rec))
		}
		up := relation.Update{Rel: rec[1]}
		switch rec[0] {
		case "+":
			up.Insert = true
		case "-":
			up.Insert = false
		default:
			return nil, fmt.Errorf("csvio: %s:%d: bad op %q (want + or -)", name, line, rec[0])
		}
		if up.Rel == "" {
			return nil, fmt.Errorf("csvio: %s:%d: empty relation name", name, line)
		}
		for i, f := range rec[2:] {
			v, err := encode(f)
			if err != nil {
				return nil, fmt.Errorf("csvio: %s:%d: value %d: %w", name, line, i+1, err)
			}
			up.Row = append(up.Row, v)
		}
		out = append(out, up)
	}
}

// SaveUpdates writes an update stream to path.
func (l *Loader) SaveUpdates(ops []relation.Update, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := l.WriteUpdates(ops, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadUpdates reads an update stream from path; parse errors carry
// path:line positions.
func (l *Loader) LoadUpdates(path string) ([]relation.Update, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return l.ReadUpdates(path, f)
}
