package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"tsens/internal/relation"
)

// Update-stream files are CSV-formatted with one record per update:
//
//	op,relation,v1,v2,...
//
// op is "+" (insert) or "-" (delete); values use the same encoding as the
// relation CSVs, so a stream written next to a snapshot replays against it
// through the same Loader (which keeps the string dictionary consistent).
// Streams use the .stream extension so LoadDir never mistakes one for a
// relation.

// UpdatesFileName is the conventional stream file name inside a snapshot
// directory, written by datagen -updates and replayed by tsens updates.
const UpdatesFileName = "updates.stream"

// WriteUpdates streams updates to w.
func (l *Loader) WriteUpdates(ops []relation.Update, w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, op := range ops {
		rec := make([]string, 0, 2+len(op.Row))
		sign := "-"
		if op.Insert {
			sign = "+"
		}
		rec = append(rec, sign, op.Rel)
		for _, v := range op.Row {
			rec = append(rec, l.Decode(v))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("csvio: writing update: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadUpdates parses an update stream from r.
func (l *Loader) ReadUpdates(r io.Reader) ([]relation.Update, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = -1 // arity varies per relation
	var out []relation.Update
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: update stream line %d: %w", line, err)
		}
		if len(rec) < 2 {
			return nil, fmt.Errorf("csvio: update stream line %d: need op,relation,values...", line)
		}
		up := relation.Update{Rel: rec[1]}
		switch rec[0] {
		case "+":
			up.Insert = true
		case "-":
			up.Insert = false
		default:
			return nil, fmt.Errorf("csvio: update stream line %d: bad op %q (want + or -)", line, rec[0])
		}
		for _, f := range rec[2:] {
			v, err := l.encode(f)
			if err != nil {
				return nil, fmt.Errorf("csvio: update stream line %d: %w", line, err)
			}
			up.Row = append(up.Row, v)
		}
		out = append(out, up)
	}
}

// SaveUpdates writes an update stream to path.
func (l *Loader) SaveUpdates(ops []relation.Update, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := l.WriteUpdates(ops, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadUpdates reads an update stream from path.
func (l *Loader) LoadUpdates(path string) ([]relation.Update, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return l.ReadUpdates(f)
}
