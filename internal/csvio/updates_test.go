package csvio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsens/internal/relation"
)

func TestUpdateStreamRoundTrip(t *testing.T) {
	l := NewLoader()
	a, _ := l.Encode("alice")
	ops := []relation.Update{
		{Rel: "R1", Row: relation.Tuple{1, -5}, Insert: true},
		{Rel: "R2", Row: relation.Tuple{a}, Insert: false},
		{Rel: "R1", Row: relation.Tuple{0, 7}, Insert: false},
	}
	var buf bytes.Buffer
	if err := l.WriteUpdates(ops, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := l.ReadUpdates("stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("round trip %d ops, want %d", len(got), len(ops))
	}
	for i, op := range ops {
		g := got[i]
		if g.Rel != op.Rel || g.Insert != op.Insert || !g.Row.Equal(op.Row) {
			t.Fatalf("op %d: %+v != %+v", i, g, op)
		}
	}
}

func TestReadUpdatesRejectsBadInput(t *testing.T) {
	l := NewLoader()
	if _, err := l.ReadUpdates("s", strings.NewReader("x,R1,1\n")); err == nil {
		t.Fatal("bad op accepted")
	}
	if _, err := l.ReadUpdates("s", strings.NewReader("+\n")); err == nil {
		t.Fatal("short record accepted")
	}
	if _, err := l.ReadUpdates("s", strings.NewReader("+,,1\n")); err == nil {
		t.Fatal("empty relation accepted")
	}
}

// TestReadUpdatesDiagnostics pins the file:line format of malformed-stream
// errors, including streams where blank lines and quoted newlines would
// skew a naive record counter.
func TestReadUpdatesDiagnostics(t *testing.T) {
	l := NewLoader()
	cases := []struct {
		name, in, want string
	}{
		{"bad op", "+,R1,1\n\n\nq,R1,2\n", `s:4: bad op "q" (want + or -)`},
		{"short record", "+,R1,1\n-\n", "s:2: update record has 1 field(s), need op,relation,values..."},
		{"quoted newline keeps count", "+,R1,\"a\nb\"\n!,R1,1\n", `s:3: bad op "!" (want + or -)`},
		{"out-of-range int", "+,R1,281474976710656\n", "s:1: value 1:"},
		{"bare quote", "+,R1,\"x\n", "s:1:"},
	}
	for _, tc := range cases {
		_, err := l.ReadUpdates("s", strings.NewReader(tc.in))
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not carry position %q", tc.name, err, tc.want)
		}
	}
}

// TestLoadUpdatesNamesFile checks that file-backed streams report the path
// in parse errors.
func TestLoadUpdatesNamesFile(t *testing.T) {
	l := NewLoader()
	path := filepath.Join(t.TempDir(), "updates.stream")
	if err := os.WriteFile(path, []byte("+,R1,1\n*,R1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := l.LoadUpdates(path)
	if err == nil {
		t.Fatal("malformed stream accepted")
	}
	if !strings.Contains(err.Error(), path+":2:") {
		t.Fatalf("error %q does not name %s:2", err, path)
	}
}
