package csvio

import (
	"bytes"
	"strings"
	"testing"

	"tsens/internal/relation"
)

func TestUpdateStreamRoundTrip(t *testing.T) {
	l := NewLoader()
	a, _ := l.Encode("alice")
	ops := []relation.Update{
		{Rel: "R1", Row: relation.Tuple{1, -5}, Insert: true},
		{Rel: "R2", Row: relation.Tuple{a}, Insert: false},
		{Rel: "R1", Row: relation.Tuple{0, 7}, Insert: false},
	}
	var buf bytes.Buffer
	if err := l.WriteUpdates(ops, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := l.ReadUpdates(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("round trip %d ops, want %d", len(got), len(ops))
	}
	for i, op := range ops {
		g := got[i]
		if g.Rel != op.Rel || g.Insert != op.Insert || !g.Row.Equal(op.Row) {
			t.Fatalf("op %d: %+v != %+v", i, g, op)
		}
	}
}

func TestReadUpdatesRejectsBadInput(t *testing.T) {
	l := NewLoader()
	if _, err := l.ReadUpdates(strings.NewReader("x,R1,1\n")); err == nil {
		t.Fatal("bad op accepted")
	}
	if _, err := l.ReadUpdates(strings.NewReader("+\n")); err == nil {
		t.Fatal("short record accepted")
	}
}
