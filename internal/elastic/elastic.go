// Package elastic reimplements the elastic-sensitivity analysis of Flex
// (Johnson, Near, Song: "Towards practical differential privacy for SQL
// queries"), the baseline the paper compares against in Section 7.2. At
// distance 0 the elastic sensitivity is a static upper bound on the local
// sensitivity of a counting join query, derived only from per-attribute
// maximum frequencies and table sizes.
//
// Two extensions from the paper's experimental setup (Section 7.2) are
// included: cross products use the operand's table size as the maximum
// frequency of the empty join-attribute set, and the analysis follows a
// caller-provided join plan so the join order matches TSens's.
package elastic

import (
	"fmt"

	"tsens/internal/query"
	"tsens/internal/relation"
)

// Analyzer holds the per-relation metadata elastic sensitivity is computed
// from: row counts and per-variable maximum frequencies. The metadata pass
// corresponds to the preprocessing step the paper grants Elastic before
// timing it.
type Analyzer struct {
	q    *query.Query
	rows map[string]int64            // relation → row count
	mf   map[string]map[string]int64 // relation → variable → max frequency
}

// NewAnalyzer precomputes max frequencies for every atom variable.
// Selections are deliberately ignored, matching the static nature of the
// analysis (Section 8 notes elastic sensitivity outputs the same value with
// or without selections).
func NewAnalyzer(q *query.Query, db *relation.Database) (*Analyzer, error) {
	if _, err := q.Bind(db); err != nil {
		return nil, err
	}
	a := &Analyzer{
		q:    q,
		rows: make(map[string]int64),
		mf:   make(map[string]map[string]int64),
	}
	for _, atom := range q.Atoms {
		r := db.Relation(atom.Relation)
		a.rows[atom.Relation] = int64(len(r.Rows))
		m := make(map[string]int64, len(atom.Vars))
		for i, v := range atom.Vars {
			m[v] = maxFrequency(r, i)
		}
		a.mf[atom.Relation] = m
	}
	return a, nil
}

func maxFrequency(r *relation.Relation, col int) int64 {
	counts := make(map[int64]int64)
	var max int64
	for _, t := range r.Rows {
		counts[t[col]]++
		if counts[t[col]] > max {
			max = counts[t[col]]
		}
	}
	return max
}

// stats tracks the static metadata of a (sub)plan during the recursion.
type stats struct {
	vars []string
	rows int64
	mf   map[string]int64
	sens int64
}

// leaf builds the stats of a base relation, with sensitivity 1 when it is
// the relation whose tuples may change.
func (a *Analyzer) leaf(rel string, sensitive string) (*stats, error) {
	atom, ok := a.q.Atom(rel)
	if !ok {
		return nil, fmt.Errorf("elastic: query has no atom %s", rel)
	}
	s := &stats{
		vars: append([]string(nil), atom.Vars...),
		rows: a.rows[rel],
		mf:   make(map[string]int64, len(atom.Vars)),
	}
	for v, f := range a.mf[rel] {
		s.mf[v] = f
	}
	if rel == sensitive {
		s.sens = 1
	}
	return s, nil
}

// joinKeyMF is the max frequency of the composite join key: the minimum of
// the per-variable max frequencies, or the row bound for an empty key
// (cross product — the paper's extension).
func (s *stats) joinKeyMF(shared []string) int64 {
	if len(shared) == 0 {
		return s.rows
	}
	mf := int64(-1)
	for _, v := range shared {
		f := s.mf[v]
		if mf < 0 || f < mf {
			mf = f
		}
	}
	if mf < 0 {
		mf = 0
	}
	return mf
}

// join combines two subplans with the Flex distance-0 recursion:
//
//	Ŝ(q1 ⋈ q2) = max( mf(A,q1)·Ŝ(q2), mf(A,q2)·Ŝ(q1) )
//
// with row-bound and max-frequency propagation.
func join(s1, s2 *stats) *stats {
	shared := relation.Intersect(s1.vars, s2.vars)
	mf1 := s1.joinKeyMF(shared)
	mf2 := s2.joinKeyMF(shared)
	out := &stats{
		vars: relation.Union(s1.vars, s2.vars),
		mf:   make(map[string]int64, len(s1.mf)+len(s2.mf)),
	}
	out.sens = relation.MulSat(mf1, s2.sens)
	if x := relation.MulSat(mf2, s1.sens); x > out.sens {
		out.sens = x
	}
	r1 := relation.MulSat(s1.rows, mf2)
	r2 := relation.MulSat(s2.rows, mf1)
	if r1 < r2 {
		out.rows = r1
	} else {
		out.rows = r2
	}
	for v, f := range s1.mf {
		out.mf[v] = relation.MulSat(f, mf2)
	}
	for v, f := range s2.mf {
		p := relation.MulSat(f, mf1)
		if cur, ok := out.mf[v]; !ok || p < cur {
			out.mf[v] = p
		}
	}
	return out
}

// Sensitivity computes the elastic sensitivity of the counting query along
// a left-deep join plan over the given relation order, treating exactly one
// relation as sensitive.
func (a *Analyzer) Sensitivity(order []string, sensitive string) (int64, error) {
	if len(order) == 0 {
		return 0, fmt.Errorf("elastic: empty join order")
	}
	acc, err := a.leaf(order[0], sensitive)
	if err != nil {
		return 0, err
	}
	for _, rel := range order[1:] {
		leaf, err := a.leaf(rel, sensitive)
		if err != nil {
			return 0, err
		}
		acc = join(acc, leaf)
	}
	return acc.sens, nil
}

// LocalSensitivity is the elastic upper bound on LS(Q,D): the maximum of
// the per-relation elastic sensitivities.
func (a *Analyzer) LocalSensitivity(order []string) (int64, error) {
	var max int64
	for _, atom := range a.q.Atoms {
		s, err := a.Sensitivity(order, atom.Relation)
		if err != nil {
			return 0, err
		}
		if s > max {
			max = s
		}
	}
	return max, nil
}

// DefaultOrder returns the atom order of the query body, the fallback join
// plan when a workload does not specify one.
func DefaultOrder(q *query.Query) []string {
	out := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		out[i] = a.Relation
	}
	return out
}
