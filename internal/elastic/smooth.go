package elastic

import (
	"fmt"
	"math"

	"tsens/internal/relation"
)

// SensitivityAt computes the elastic sensitivity at distance k: an upper
// bound on the local sensitivity of any database within k tuple
// insertions/deletions of D. This is the full Flex recursion the paper's
// baseline derives from:
//
//	Ŝ_k(R)        = 1 if R is sensitive else 0
//	mf_k(a, R)    = mf(a, R) + k if R is sensitive else mf(a, R)
//	Ŝ_k(q1 ⋈ q2)  = max( mf_k(A,q1)·Ŝ_k(q2), mf_k(A,q2)·Ŝ_k(q1) )
//
// with the same row-bound and max-frequency propagation as distance 0
// (rows also grow by k on the sensitive branch).
func (a *Analyzer) SensitivityAt(order []string, sensitive string, k int64) (int64, error) {
	if len(order) == 0 {
		return 0, fmt.Errorf("elastic: empty join order")
	}
	if k < 0 {
		return 0, fmt.Errorf("elastic: negative distance %d", k)
	}
	acc, err := a.leafAt(order[0], sensitive, k)
	if err != nil {
		return 0, err
	}
	for _, rel := range order[1:] {
		leaf, err := a.leafAt(rel, sensitive, k)
		if err != nil {
			return 0, err
		}
		acc = join(acc, leaf)
	}
	return acc.sens, nil
}

// leafAt is leaf with max frequencies and row counts inflated by k on the
// sensitive relation (k added tuples can all share one join key).
func (a *Analyzer) leafAt(rel string, sensitive string, k int64) (*stats, error) {
	s, err := a.leaf(rel, sensitive)
	if err != nil {
		return nil, err
	}
	if rel == sensitive && k > 0 {
		s.rows = relation.AddSat(s.rows, k)
		for v := range s.mf {
			s.mf[v] = relation.AddSat(s.mf[v], k)
		}
	}
	return s, nil
}

// SmoothSensitivity computes the β-smooth elastic sensitivity
//
//	S(D) = max_{k ≥ 0} e^{-βk} · Ŝ_k(Q, D)
//
// the quantity Flex actually calibrates noise to (smooth upper bound of
// Nissim–Raskhodnikova–Smith). The maximum over relations is taken, and
// the scan over k stops once the geometric discount provably dominates the
// growth of Ŝ_k (Ŝ_k grows at most polynomially of bounded degree, checked
// via a widening horizon).
func (a *Analyzer) SmoothSensitivity(order []string, beta float64) (float64, error) {
	if beta <= 0 {
		return 0, fmt.Errorf("elastic: beta must be positive, got %g", beta)
	}
	var best float64
	for _, atom := range a.q.Atoms {
		s, err := a.smoothFor(order, atom.Relation, beta)
		if err != nil {
			return 0, err
		}
		if s > best {
			best = s
		}
	}
	return best, nil
}

func (a *Analyzer) smoothFor(order []string, sensitive string, beta float64) (float64, error) {
	// Ŝ_k is a polynomial in k of degree at most m (one factor per join),
	// so e^{-βk}·Ŝ_k is maximized at k ≤ m/β; scan a bit beyond that.
	horizon := int64(float64(len(order))/beta) + 2
	const maxHorizon = 1 << 20
	if horizon > maxHorizon {
		horizon = maxHorizon
	}
	var best float64
	for k := int64(0); k <= horizon; k++ {
		sk, err := a.SensitivityAt(order, sensitive, k)
		if err != nil {
			return 0, err
		}
		v := math.Exp(-beta*float64(k)) * float64(sk)
		if v > best {
			best = v
		}
	}
	return best, nil
}
