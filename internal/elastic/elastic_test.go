package elastic

import (
	"fmt"
	"math/rand"
	"testing"

	"tsens/internal/core"
	"tsens/internal/query"
	"tsens/internal/relation"
)

func twoJoin() (*query.Query, *relation.Database) {
	q := query.MustNew("q", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}, nil)
	db := relation.MustNewDatabase(
		relation.MustNew("R1", []string{"x", "y"}, []relation.Tuple{{1, 1}, {2, 1}, {3, 2}}),
		relation.MustNew("R2", []string{"x", "y"}, []relation.Tuple{{1, 7}, {1, 8}, {1, 9}, {2, 7}}),
	)
	return q, db
}

func TestMaxFrequency(t *testing.T) {
	r := relation.MustNew("R", []string{"A"}, []relation.Tuple{{1}, {1}, {2}})
	if got := maxFrequency(r, 0); got != 2 {
		t.Fatalf("maxFrequency=%d", got)
	}
	empty := relation.MustNew("E", []string{"A"}, nil)
	if got := maxFrequency(empty, 0); got != 0 {
		t.Fatalf("empty maxFrequency=%d", got)
	}
}

func TestTwoWayJoinSensitivity(t *testing.T) {
	q, db := twoJoin()
	a, err := NewAnalyzer(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// mf(B,R1)=2 (value 1 twice), mf(B,R2)=3 (value 1 thrice).
	// Sensitive R1: Ŝ = mf(B,R2)·1 = 3. Sensitive R2: Ŝ = mf(B,R1)·1 = 2.
	s1, err := a.Sensitivity([]string{"R1", "R2"}, "R1")
	if err != nil {
		t.Fatal(err)
	}
	if s1 != 3 {
		t.Fatalf("Ŝ(R1)=%d, want 3", s1)
	}
	s2, err := a.Sensitivity([]string{"R1", "R2"}, "R2")
	if err != nil {
		t.Fatal(err)
	}
	if s2 != 2 {
		t.Fatalf("Ŝ(R2)=%d, want 2", s2)
	}
	ls, err := a.LocalSensitivity([]string{"R1", "R2"})
	if err != nil {
		t.Fatal(err)
	}
	if ls != 3 {
		t.Fatalf("elastic LS=%d, want 3", ls)
	}
}

func TestCrossProductExtension(t *testing.T) {
	q := query.MustNew("q", []query.Atom{
		{Relation: "R1", Vars: []string{"A"}},
		{Relation: "R2", Vars: []string{"B"}},
	}, nil)
	db := relation.MustNewDatabase(
		relation.MustNew("R1", []string{"x"}, []relation.Tuple{{1}, {2}}),
		relation.MustNew("R2", []string{"x"}, []relation.Tuple{{1}, {2}, {3}}),
	)
	a, err := NewAnalyzer(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Adding a tuple to R1 creates |R2| = 3 outputs; the cross-product rule
	// uses the table size as the empty-key max frequency.
	s, err := a.Sensitivity([]string{"R1", "R2"}, "R1")
	if err != nil {
		t.Fatal(err)
	}
	if s != 3 {
		t.Fatalf("cross-product Ŝ(R1)=%d, want 3", s)
	}
}

func TestAnalyzerErrors(t *testing.T) {
	q, db := twoJoin()
	a, err := NewAnalyzer(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Sensitivity(nil, "R1"); err == nil {
		t.Fatal("empty order accepted")
	}
	if _, err := a.Sensitivity([]string{"Nope"}, "R1"); err == nil {
		t.Fatal("unknown relation accepted")
	}
	qBad := query.MustNew("q", []query.Atom{{Relation: "Missing", Vars: []string{"A"}}}, nil)
	if _, err := NewAnalyzer(qBad, db); err == nil {
		t.Fatal("unbound query accepted")
	}
}

func TestDefaultOrder(t *testing.T) {
	q, _ := twoJoin()
	got := DefaultOrder(q)
	if len(got) != 2 || got[0] != "R1" || got[1] != "R2" {
		t.Fatalf("DefaultOrder=%v", got)
	}
}

// Elastic sensitivity is a static upper bound: on random path instances it
// must dominate the exact local sensitivity computed by TSens.
func TestPropertyElasticUpperBoundsExactLS(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.Intn(3)
		var atoms []query.Atom
		var rels []*relation.Relation
		for i := 0; i < m; i++ {
			name := fmt.Sprintf("R%d", i)
			atoms = append(atoms, query.Atom{Relation: name, Vars: []string{fmt.Sprintf("V%d", i), fmt.Sprintf("V%d", i+1)}})
			n := 1 + rng.Intn(8)
			rows := make([]relation.Tuple, n)
			for j := range rows {
				rows[j] = relation.Tuple{int64(rng.Intn(3)), int64(rng.Intn(3))}
			}
			rels = append(rels, relation.MustNew(name, []string{"x", "y"}, rows))
		}
		q := query.MustNew("q", atoms, nil)
		db := relation.MustNewDatabase(rels...)
		exact, err := core.LocalSensitivity(q, db, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewAnalyzer(q, db)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := a.LocalSensitivity(DefaultOrder(q))
		if err != nil {
			t.Fatal(err)
		}
		if bound < exact.LS {
			t.Fatalf("trial %d: elastic %d < exact %d", trial, bound, exact.LS)
		}
		// Per-relation dominance as well (Figure 6b's comparison).
		for _, atom := range atoms {
			s, err := a.Sensitivity(DefaultOrder(q), atom.Relation)
			if err != nil {
				t.Fatal(err)
			}
			if tr := exact.PerRelation[atom.Relation]; s < tr.Sensitivity {
				t.Fatalf("trial %d: relation %s elastic %d < exact %d", trial, atom.Relation, s, tr.Sensitivity)
			}
		}
	}
}

func TestJoinRowBound(t *testing.T) {
	s1 := &stats{vars: []string{"A", "B"}, rows: 10, mf: map[string]int64{"A": 2, "B": 3}}
	s2 := &stats{vars: []string{"B", "C"}, rows: 4, mf: map[string]int64{"B": 2, "C": 4}, sens: 1}
	out := join(s1, s2)
	// rows ≤ min(10·2, 4·3) = 12; sens = mf(B,s1)·1 = 3.
	if out.rows != 12 {
		t.Fatalf("rows=%d, want 12", out.rows)
	}
	if out.sens != 3 {
		t.Fatalf("sens=%d, want 3", out.sens)
	}
	if out.mf["C"] != 4*3 {
		t.Fatalf("mf(C)=%d, want 12", out.mf["C"])
	}
}
