package elastic

import (
	"math"
	"testing"

	"tsens/internal/core"
	"tsens/internal/query"
	"tsens/internal/relation"
)

func TestSensitivityAtMonotoneInDistance(t *testing.T) {
	q, db := twoJoin()
	a, err := NewAnalyzer(q, db)
	if err != nil {
		t.Fatal(err)
	}
	order := DefaultOrder(q)
	prev := int64(-1)
	for k := int64(0); k <= 5; k++ {
		s, err := a.SensitivityAt(order, "R1", k)
		if err != nil {
			t.Fatal(err)
		}
		if s < prev {
			t.Fatalf("Ŝ_%d=%d below Ŝ_%d=%d", k, s, k-1, prev)
		}
		prev = s
	}
}

func TestSensitivityAtZeroMatchesSensitivity(t *testing.T) {
	q, db := twoJoin()
	a, err := NewAnalyzer(q, db)
	if err != nil {
		t.Fatal(err)
	}
	order := DefaultOrder(q)
	for _, rel := range []string{"R1", "R2"} {
		s0, err := a.SensitivityAt(order, rel, 0)
		if err != nil {
			t.Fatal(err)
		}
		s, err := a.Sensitivity(order, rel)
		if err != nil {
			t.Fatal(err)
		}
		if s0 != s {
			t.Fatalf("%s: Ŝ_0=%d but Ŝ=%d", rel, s0, s)
		}
	}
}

func TestSensitivityAtValidation(t *testing.T) {
	q, db := twoJoin()
	a, _ := NewAnalyzer(q, db)
	if _, err := a.SensitivityAt(nil, "R1", 0); err == nil {
		t.Fatal("empty order accepted")
	}
	if _, err := a.SensitivityAt(DefaultOrder(q), "R1", -1); err == nil {
		t.Fatal("negative distance accepted")
	}
}

// Smooth sensitivity upper-bounds the distance-0 bound and hence the exact
// local sensitivity; it is also at most the worst Ŝ_k it scans.
func TestSmoothSensitivityBounds(t *testing.T) {
	q, db := twoJoin()
	a, err := NewAnalyzer(q, db)
	if err != nil {
		t.Fatal(err)
	}
	order := DefaultOrder(q)
	smooth, err := a.SmoothSensitivity(order, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := a.LocalSensitivity(order)
	if err != nil {
		t.Fatal(err)
	}
	if smooth < float64(s0) {
		t.Fatalf("smooth %g below Ŝ_0 %d", smooth, s0)
	}
	exact, err := core.LocalSensitivity(q, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if smooth < float64(exact.LS) {
		t.Fatalf("smooth %g below exact LS %d", smooth, exact.LS)
	}
	if _, err := a.SmoothSensitivity(order, 0); err == nil {
		t.Fatal("beta=0 accepted")
	}
}

// With a very large beta the discount kills k ≥ 1 and smooth ≈ Ŝ_0.
func TestSmoothSensitivityLargeBeta(t *testing.T) {
	q, db := twoJoin()
	a, _ := NewAnalyzer(q, db)
	order := DefaultOrder(q)
	smooth, err := a.SmoothSensitivity(order, 50)
	if err != nil {
		t.Fatal(err)
	}
	s0, _ := a.LocalSensitivity(order)
	if math.Abs(smooth-float64(s0)) > 1e-6 {
		t.Fatalf("smooth=%g, want ≈ Ŝ_0=%d at huge beta", smooth, s0)
	}
}

// A sensitive relation whose neighbors at distance k can stack a heavy key:
// Ŝ_k must grow once k exceeds the current max frequency gap.
func TestSensitivityAtGrowsOnEmptyRelation(t *testing.T) {
	q := query.MustNew("q", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}, nil)
	db := relation.MustNewDatabase(
		relation.MustNew("R1", []string{"x", "y"}, nil), // empty
		relation.MustNew("R2", []string{"x", "y"}, []relation.Tuple{{1, 1}}),
	)
	a, err := NewAnalyzer(q, db)
	if err != nil {
		t.Fatal(err)
	}
	order := DefaultOrder(q)
	// At distance 0, adding a tuple to R2 joins an empty R1: Ŝ(R2) = 0.
	s0, err := a.SensitivityAt(order, "R2", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s0 != 0 {
		t.Fatalf("Ŝ_0(R2)=%d, want 0", s0)
	}
	// At distance 1, a neighboring database can hold one R1 tuple...
	// but only the *sensitive* relation's metadata grows in the Flex
	// recursion; with R1 sensitive its own mf grows instead:
	s1, err := a.SensitivityAt(order, "R1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if s1 < 1 {
		t.Fatalf("Ŝ_1(R1)=%d, want ≥ 1", s1)
	}
}
