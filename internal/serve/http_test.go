package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tsens/internal/core"
	"tsens/internal/parser"
	"tsens/internal/relation"
)

func startAPI(t *testing.T, db *relation.Database) (*httptest.Server, *Server) {
	t.Helper()
	srv, err := New(db, Options{Parallelism: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(NewAPI(srv, nil, 42))
	t.Cleanup(ts.Close)
	return ts, srv
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int) map[string]any {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, raw)
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("%s %s: decoding %q: %v", method, url, raw, err)
	}
	return out
}

func TestAPIEndToEnd(t *testing.T) {
	db := testDB(t, 10, 4, 21, "R1", "R2", "R3")
	ts, srv := startAPI(t, db)

	// Register a path query with a release budget.
	reg := doJSON(t, "POST", ts.URL+"/queries", map[string]any{
		"id":      "path",
		"query":   "R1(A,B), R2(B,C), R3(C,D)",
		"private": "R2",
		"release": map[string]any{"epsilon": 1.0, "bound": 50},
		"budget":  2.0,
	}, http.StatusCreated)
	if reg["id"] != "path" || reg["epoch"] != float64(0) {
		t.Fatalf("register response: %v", reg)
	}

	// And a cyclic one: no bags given, the server searches a GHD.
	doJSON(t, "POST", ts.URL+"/queries", map[string]any{
		"id":    "tri",
		"query": "R1(A,B), R2(B,C), R3(C,A)",
	}, http.StatusCreated)

	// Post updates with wait_epoch for read-your-writes on the view reads
	// below (wait=1 only waits on the owning shards' watermarks).
	ups := []map[string]any{
		{"op": "+", "rel": "R2", "row": []string{"1", "2"}},
		{"op": "+", "rel": "R2", "row": []string{"1", "2"}},
		{"op": "-", "rel": "R2", "row": []string{"1", "2"}},
	}
	up := doJSON(t, "POST", ts.URL+"/updates", map[string]any{"updates": ups, "wait_epoch": true}, http.StatusOK)
	if up["accepted"] != float64(3) || up["epoch"].(float64) < 3 {
		t.Fatalf("updates response: %v", up)
	}
	if owners, ok := up["owners"].([]any); !ok || len(owners) != 1 {
		t.Fatalf("three same-key updates must have one owning shard: %v", up["owners"])
	}

	// GET ls must equal the from-scratch solver on the mutated database.
	q, err := parser.Parse("path", "R1(A,B), R2(B,C), R3(C,D)")
	if err != nil {
		t.Fatal(err)
	}
	cur := db.Clone()
	r2 := cur.Relation("R2")
	r2.Rows = append(r2.Rows, relation.Tuple{1, 2})
	want, err := core.LocalSensitivity(q, cur, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ls := doJSON(t, "GET", ts.URL+"/queries/path/ls?per_relation=1", nil, http.StatusOK)
	if int64(ls["count"].(float64)) != want.Count || int64(ls["ls"].(float64)) != want.LS {
		t.Fatalf("ls response (%v, %v), scratch (%d, %d)", ls["count"], ls["ls"], want.Count, want.LS)
	}
	if _, ok := ls["per_relation"]; !ok {
		t.Fatalf("per_relation missing: %v", ls)
	}

	// Releases: fresh then replay, budget visible.
	rel1 := doJSON(t, "POST", ts.URL+"/queries/path/release", nil, http.StatusOK)
	if rel1["fresh"] != true || rel1["spent"] != float64(1) || rel1["remaining"] != float64(1) {
		t.Fatalf("first release: %v", rel1)
	}
	rel2 := doJSON(t, "POST", ts.URL+"/queries/path/release", nil, http.StatusOK)
	if rel2["fresh"] != false || rel2["noisy"] != rel1["noisy"] {
		t.Fatalf("replay release: %v", rel2)
	}
	// The removed client-seed parameter (any request body) is rejected
	// loudly rather than silently ignored.
	doJSON(t, "POST", ts.URL+"/queries/path/release", map[string]any{"seed": 7}, http.StatusBadRequest)

	// Listing and epoch.
	list := doJSON(t, "GET", ts.URL+"/queries", nil, http.StatusOK)
	if n := len(list["queries"].([]any)); n != 2 {
		t.Fatalf("listed %d queries, want 2", n)
	}
	ep := doJSON(t, "GET", ts.URL+"/epoch", nil, http.StatusOK)
	if ep["pending"] != float64(0) {
		t.Fatalf("epoch response: %v", ep)
	}
	// The joined cut equals the published epoch at rest, and every shard's
	// watermark covers it (no torn progress observable here).
	if ep["joined"] != ep["epoch"] {
		t.Fatalf("joined cut %v != epoch %v at rest", ep["joined"], ep["epoch"])
	}
	wms, ok := ep["watermarks"].([]any)
	if !ok || len(wms) != int(ep["shards"].(float64)) || len(wms) != srv.NumShards() {
		t.Fatalf("epoch shard fields: %v", ep)
	}
	for i, wm := range wms {
		if wm.(float64) < ep["epoch"].(float64) {
			t.Fatalf("shard %d watermark %v below the published cut %v", i, wm, ep["epoch"])
		}
	}

	// CSV update body (the updates.stream format).
	req, err := http.NewRequest("POST", ts.URL+"/updates?wait=1", strings.NewReader("+,R1,0,1\n-,R1,0,1\n"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("csv updates: %d: %s", resp.StatusCode, raw)
	}

	// Unregister; further reads 404.
	doJSON(t, "DELETE", ts.URL+"/queries/tri", nil, http.StatusOK)
	doJSON(t, "GET", ts.URL+"/queries/tri/ls", nil, http.StatusNotFound)

	// Error paths.
	doJSON(t, "POST", ts.URL+"/queries", map[string]any{"query": "R9(A)"}, http.StatusUnprocessableEntity)
	doJSON(t, "POST", ts.URL+"/queries", map[string]any{}, http.StatusBadRequest)
	doJSON(t, "POST", ts.URL+"/updates", map[string]any{
		"updates": []map[string]any{{"op": "*", "rel": "R1", "row": []string{"1", "2"}}},
	}, http.StatusBadRequest)
	doJSON(t, "POST", ts.URL+"/updates", map[string]any{
		"updates": []map[string]any{{"op": "+", "rel": "R1", "row": []string{"x", "2"}}},
	}, http.StatusBadRequest) // IntCodec refuses strings
	doJSON(t, "POST", ts.URL+"/queries/missing/release", nil, http.StatusNotFound)
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK)

	if srv.Stats().Queries != 1 {
		t.Fatalf("stats: %+v", srv.Stats())
	}
}

// TestAPIBudgetExhaustion drains a query's ε budget over HTTP.
func TestAPIBudgetExhaustion(t *testing.T) {
	db := testDB(t, 10, 3, 23, "R1", "R2", "R3")
	ts, _ := startAPI(t, db)
	doJSON(t, "POST", ts.URL+"/queries", map[string]any{
		"id":      "q",
		"query":   "R1(A,B), R2(B,C), R3(C,D)",
		"private": "R2",
		"release": map[string]any{"epsilon": 1.0, "bound": 20},
		"budget":  1.0,
		"drift":   -1, // never replay: every release wants fresh ε
	}, http.StatusCreated)
	doJSON(t, "POST", ts.URL+"/queries/q/release", nil, http.StatusOK)
	out := doJSON(t, "POST", ts.URL+"/queries/q/release", nil, http.StatusUnprocessableEntity)
	if !strings.Contains(fmt.Sprint(out["error"]), "budget exhausted") {
		t.Fatalf("exhaustion error: %v", out)
	}
}

// TestAPIStrictJSONDecoding: a misspelled field in a JSON body must fail
// with 400 instead of being silently dropped. The canonical victim:
// "wait_epoc" used to decode fine and silently lose read-your-writes.
func TestAPIStrictJSONDecoding(t *testing.T) {
	db := testDB(t, 8, 3, 31, "R1", "R2", "R3")
	ts, _ := startAPI(t, db)
	doJSON(t, "POST", ts.URL+"/queries", map[string]any{
		"id":    "q",
		"query": "R1(A,B), R2(B,C)",
	}, http.StatusCreated)

	cases := []struct {
		name   string
		path   string
		body   string
		status int
	}{
		{"updates misspelled wait_epoch", "/updates",
			`{"updates": [{"op": "+", "rel": "R1", "row": ["1","2"]}], "wait_epoc": true}`, http.StatusBadRequest},
		{"updates misspelled wait", "/updates",
			`{"updates": [{"op": "+", "rel": "R1", "row": ["1","2"]}], "wait_shards": true}`, http.StatusBadRequest},
		{"updates unknown field in element", "/updates",
			`{"updates": [{"op": "+", "rel": "R1", "row": ["1","2"], "relation": "R1"}]}`, http.StatusBadRequest},
		{"updates bare garbage", "/updates", `{"ops": []}`, http.StatusBadRequest},
		{"updates malformed JSON", "/updates", `{"updates": [`, http.StatusBadRequest},
		{"register misspelled budget", "/queries",
			`{"id": "q2", "query": "R1(A,B)", "budge": 2}`, http.StatusBadRequest},
		{"register unknown release field", "/queries",
			`{"id": "q3", "query": "R1(A,B)", "release": {"epsilon": 1, "bond": 5}}`, http.StatusBadRequest},
		{"release any body at all", "/queries/q/release", `{"seed": 1}`, http.StatusBadRequest},
		// Correctly spelled bodies still work (the strict decoder must not
		// over-reject).
		{"updates well-formed", "/updates",
			`{"updates": [{"op": "+", "rel": "R1", "row": ["1","2"]}], "wait_epoch": true}`, http.StatusOK},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Fatalf("%s: status %d (want %d): %s", c.name, resp.StatusCode, c.status, raw)
		}
	}
}

// TestAPIWaitPrecedence pins the wait-directive contract of POST /updates:
// the query string wins over the body, agreeing directives are fine,
// conflicting ones (including both body flags at once, or an unknown
// wait= value) are a 400 — and a 400 must refuse the request before the
// batch enters the log, not after.
func TestAPIWaitPrecedence(t *testing.T) {
	db := testDB(t, 8, 3, 32, "R1", "R2", "R3")
	ts, srv := startAPI(t, db)

	one := `"updates": [{"op": "+", "rel": "R1", "row": ["1","2"]}]`
	cases := []struct {
		name   string
		path   string
		body   string
		status int
	}{
		// The original bug: ?wait=1 with a body wait_epoch silently
		// upgraded to the full consistent-cut wait. Now an explicit 400.
		{"query shards vs body epoch", "/updates?wait=1",
			`{` + one + `, "wait_epoch": true}`, http.StatusBadRequest},
		{"query epoch vs body shards", "/updates?wait=epoch",
			`{` + one + `, "wait": true}`, http.StatusBadRequest},
		{"body sets both", "/updates",
			`{` + one + `, "wait": true, "wait_epoch": true}`, http.StatusBadRequest},
		{"unknown wait value", "/updates?wait=yes",
			`{` + one + `}`, http.StatusBadRequest},
		{"agreeing shards", "/updates?wait=1",
			`{` + one + `, "wait": true}`, http.StatusOK},
		{"agreeing epoch", "/updates?wait=epoch",
			`{` + one + `, "wait_epoch": true}`, http.StatusOK},
		{"query only", "/updates?wait=epoch", `{` + one + `}`, http.StatusOK},
		{"body only", "/updates", `{` + one + `, "wait_epoch": true}`, http.StatusOK},
		{"no directive", "/updates", `{` + one + `}`, http.StatusOK},
	}
	for _, c := range cases {
		before := srv.Stats().Appended
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Fatalf("%s: status %d (want %d): %s", c.name, resp.StatusCode, c.status, raw)
		}
		after := srv.Stats().Appended
		if c.status == http.StatusBadRequest && after != before {
			t.Fatalf("%s: refused request still appended %d entries", c.name, after-before)
		}
		if c.status == http.StatusOK && after != before+1 {
			t.Fatalf("%s: accepted request appended %d entries, want 1", c.name, after-before)
		}
	}
}

// TestServeEpochPublishedNeverAheadOfJoined is the hostile-scheduler
// regression test for the /epoch contract: the published epoch may lag the
// joined fold frontier (mid-round, or with a shard paused) but must never
// run ahead of it, because views only publish at cuts every shard reached.
func TestServeEpochPublishedNeverAheadOfJoined(t *testing.T) {
	db := testDB(t, 16, 6, 71, "R1", "R2", "R3")
	srv, err := New(db, Options{Shards: 2, Parallelism: 2, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(NewAPI(srv, nil, 42))
	defer ts.Close()
	if _, _, err := srv.Register(QueryConfig{ID: "q", Query: pathQuery(t)}); err != nil {
		t.Fatal(err)
	}

	check := func(when string) (epoch, joined float64) {
		t.Helper()
		ep := doJSON(t, "GET", ts.URL+"/epoch", nil, http.StatusOK)
		epoch, joined = ep["epoch"].(float64), ep["joined"].(float64)
		if epoch > joined {
			t.Fatalf("%s: published epoch %v ahead of joined cut %v (%v)", when, epoch, joined, ep)
		}
		return epoch, joined
	}

	// Phase 1: hammer /epoch from the side while many small rounds drain,
	// sampling the mid-round window where joined runs ahead of published.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			check("during drain")
		}
	}()
	var ups []relation.Update
	for k := int64(0); k < 40; k++ {
		ups = append(ups, relation.Update{Rel: "R1", Row: relation.Tuple{k % 6, k % 5}, Insert: true})
	}
	if _, to, err := srv.Append(ups); err != nil {
		t.Fatal(err)
	} else if err := srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}
	<-done

	// Phase 2: park one shard mid-round and assert the torn round is
	// invisible — published stays at the old cut, joined never below it.
	gateCh := make(chan struct{})
	var gateOnce sync.Once
	releaseGate := func() { gateOnce.Do(func() { close(gateCh) }) }
	defer releaseGate()
	entered := make(chan struct{}, 1)
	gate := func(int) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-gateCh
	}
	slow := srv.ShardOf(relation.Update{Rel: "R2", Row: relation.Tuple{1, 1}, Insert: true})
	srv.shards[slow].gate.Store(&gate)
	before := srv.Epoch()
	if _, _, err := srv.Append([]relation.Update{{Rel: "R2", Row: relation.Tuple{1, 1}, Insert: true}}); err != nil {
		t.Fatal(err)
	}
	<-entered
	epoch, joined := check("shard parked")
	if int64(epoch) != before {
		t.Fatalf("published epoch %v moved with a shard parked (was %d)", epoch, before)
	}
	if int64(joined) < before {
		t.Fatalf("joined cut %v regressed below %d", joined, before)
	}
	releaseGate()
	if err := srv.WaitApplied(before + 1); err != nil {
		t.Fatal(err)
	}
	check("after release")
}
