package serve

// Durability: the serving layer's WAL + checkpoint integration
// (internal/serve/wal holds the storage substrate; docs/SERVING.md
// "Durability" the full treatment). With Options.WALDir set, the server
// journals every state-changing operation before acknowledging it:
//
//   - 'U' update records: Append writes (and, at Options.SyncEvery cadence,
//     fsyncs) the batch with its LSN range before it enters the in-memory
//     log — an acknowledged Append survives any crash.
//   - 'Q'/'X' registration records: Register/Unregister journal the full
//     query config under a registration sequence number before the change
//     becomes visible.
//   - 'R' release records: a fresh ε-spend is journaled (spent ε, the noisy
//     run, and the drift baseline) before the noisy value is returned, so a
//     restart can never reset a query's spent budget or forget a released
//     answer — the double-spend hole a purely in-memory ledger leaves open.
//
// Checkpoints snapshot the whole recoverable state at a consistent cut
// (master rows, registered configs, ledger totals, release caches, and the
// epoch they cover, plus the appended-but-undrained log tail) so recovery
// replays a bounded WAL suffix, and old segments are pruned. Recovery
// ordering is made crash-safe not by file position alone but by skip rules:
// update entries replay by LSN against the checkpoint's epoch, registration
// records by registration sequence, release records by per-query release
// sequence — re-encountering a covered record is always a no-op.
//
// Values travel in their textual form (Options.WALCodec; csvio's binary
// record codec), so replaying through the same codec rebuilds the string
// dictionary in write order and recovery needs nothing but the WAL
// directory.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"sync/atomic"

	"tsens/internal/csvio"
	"tsens/internal/ghd"
	"tsens/internal/mechanism"
	"tsens/internal/obs"
	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/serve/wal"
)

// DefaultCheckpointEvery is the default checkpoint cadence: a new
// checkpoint is captured once this many log entries have drained since the
// last one.
const DefaultCheckpointEvery = 1024

// HasWALState reports whether dir holds recoverable serving state, without
// creating or touching anything. Callers use it to decide, before New,
// whether a boot will recover (the snapshot is then ignored and need not be
// loaded) or seed fresh (a database is required).
func HasWALState(dir string) (bool, error) {
	return wal.HasState(dir)
}

// WAL record kinds.
const (
	recUpdates    byte = 'U'
	recRegister   byte = 'Q'
	recUnregister byte = 'X'
	recRelease    byte = 'R'
)

// durableLog glues a Server to its WAL: codec, liveness gate, and the
// asynchronous checkpoint writer. A nil *durableLog (durability disabled)
// is valid for every append method.
type durableLog struct {
	log   *wal.Log
	codec Codec

	// m counts journaled records per kind (the right side of the
	// acked==journaled identity); set by newServer, nil in tests that
	// build a durableLog directly.
	m *serverMetrics

	// active is false while recovery replays the existing WAL through the
	// live server: replayed operations must not be re-journaled.
	active atomic.Bool

	// lastCapture is the epoch of the last checkpoint capture; owned by the
	// coordinator (maybeCheckpointLocked) under stateMu.
	lastCapture int64

	// durableEpoch is the epoch covered by the last durably installed
	// checkpoint (Stats.DurableEpoch).
	durableEpoch atomic.Int64

	ckptCh   chan *checkpoint
	ckptDone chan struct{}
}

func (d *durableLog) enabled() bool { return d != nil && d.active.Load() }

// appendUpdates journals one Append batch: its starting LSN, count, the
// updates as binary records, and a trailing trace ID. Called under logMu
// before the batch enters the in-memory log; a nil error means the
// acknowledgment is safe to hand out. The stats report where the time
// went for the batch's trace.
//
// The trace ID rides as a trailing uvarint: replayRecord reads exactly
// count records and always tolerated trailing bytes, so records written
// before tracing (no trailer) and after it replay identically, and the
// replication stream — which ships record payloads verbatim — carries
// the ID to followers with no protocol change.
func (d *durableLog) appendUpdates(from int64, ups []relation.Update, id obs.TraceID) (wal.AppendStats, error) {
	if !d.enabled() {
		return wal.AppendStats{}, nil
	}
	buf := binary.AppendUvarint(nil, uint64(from))
	buf = binary.AppendUvarint(buf, uint64(len(ups)))
	for _, up := range ups {
		buf = csvio.AppendUpdateRecord(buf, up, d.codec.Decode)
	}
	buf = binary.AppendUvarint(buf, uint64(id))
	stats, err := d.log.AppendTimed(recUpdates, buf)
	if err != nil {
		return stats, err
	}
	if d.m != nil {
		d.m.walRecords.With(recKindName(recUpdates)).Inc()
	}
	return stats, nil
}

// UpdatesTraceID extracts the trace ID a journaled update record ('U')
// carries, or zero when the record predates tracing. It skips the update
// payload by frame lengths alone — no value decoding, no dictionary — so
// the replication apply path can tag its trace cheaply.
func UpdatesTraceID(data []byte) obs.TraceID {
	_, used := binary.Uvarint(data) // from
	if used <= 0 {
		return 0
	}
	data = data[used:]
	n, used := binary.Uvarint(data) // count
	if used <= 0 {
		return 0
	}
	data = data[used:]
	for j := uint64(0); j < n; j++ {
		rest, ok := skipBinaryRecord(data)
		if !ok {
			return 0
		}
		data = rest
	}
	id, used := binary.Uvarint(data)
	if used <= 0 {
		return 0 // pre-tracing record: no trailer
	}
	return obs.TraceID(id)
}

// skipBinaryRecord advances past one csvio binary record (field count,
// then length-prefixed fields) without materializing it.
func skipBinaryRecord(b []byte) (rest []byte, ok bool) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return nil, false
	}
	b = b[used:]
	for i := uint64(0); i < n; i++ {
		l, used := binary.Uvarint(b)
		if used <= 0 || l > uint64(len(b[used:])) {
			return nil, false
		}
		b = b[used+int(l):]
	}
	return b, true
}

func (d *durableLog) appendJSON(kind byte, v any) error {
	if !d.enabled() {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("serve: wal record: %w", err)
	}
	if err := d.log.Append(kind, data); err != nil {
		return err
	}
	if d.m != nil {
		d.m.walRecords.With(recKindName(kind)).Inc()
	}
	return nil
}

// --- journaled record and checkpoint schemas ---

type atomJSON struct {
	Rel  string   `json:"rel"`
	Vars []string `json:"vars"`
}

type predJSON struct {
	Var   string `json:"var"`
	Op    int    `json:"op"`
	Value int64  `json:"value"`
}

// queryConfigJSON is the serializable form of a QueryConfig: the query
// structure itself (atoms and selections travel structurally, not as text,
// so no parser round-trip is needed) plus solver and release parameters.
// Selection constants are integer literals by construction (the parser
// accepts nothing else), so they persist as raw values.
type queryConfigJSON struct {
	ID          string                `json:"id"`
	Name        string                `json:"name"`
	Atoms       []atomJSON            `json:"atoms"`
	Sel         map[string][]predJSON `json:"sel,omitempty"`
	Private     string                `json:"private,omitempty"`
	Epsilon     float64               `json:"epsilon,omitempty"`
	EpsilonSens float64               `json:"epsilon_sens,omitempty"`
	Bound       int64                 `json:"bound,omitempty"`
	Budget      float64               `json:"budget,omitempty"`
	Drift       float64               `json:"drift,omitempty"`
	Skip        []string              `json:"skip,omitempty"`
	TopK        int                   `json:"topk,omitempty"`
	Bags        [][]int               `json:"bags,omitempty"`
}

type registerRecord struct {
	Seq    int64           `json:"seq"`
	Config queryConfigJSON `json:"config"`
}

type unregisterRecord struct {
	Seq int64  `json:"seq"`
	ID  string `json:"id"`
}

type releaseRecord struct {
	ID    string        `json:"id"`
	Seq   int           `json:"seq"` // per-query fresh-release sequence
	Spent float64       `json:"spent"`
	Count int64         `json:"count"` // drift baseline of the cached run
	Run   mechanism.Run `json:"run"`
}

// configJSON captures the query's registered configuration. Caller holds no
// locks; every field read here is immutable after Register.
func (sq *servedQuery) configJSON() queryConfigJSON {
	j := queryConfigJSON{
		ID:          sq.id,
		Name:        sq.q.Name,
		Private:     sq.private,
		Epsilon:     sq.cfg.Epsilon,
		EpsilonSens: sq.cfg.EpsilonSens,
		Bound:       sq.cfg.Bound,
		Drift:       sq.drift,
		Skip:        append([]string(nil), sq.sopts.SkipRelations...),
		TopK:        sq.sopts.TopK,
	}
	if sq.ledger != nil {
		j.Budget = sq.ledger.Budget()
	}
	if d := sq.sopts.Decomposition; d != nil {
		j.Bags = d.Bags
	}
	for _, a := range sq.q.Atoms {
		j.Atoms = append(j.Atoms, atomJSON{Rel: a.Relation, Vars: a.Vars})
	}
	if len(sq.q.Selections) > 0 {
		j.Sel = make(map[string][]predJSON, len(sq.q.Selections))
		for rel, preds := range sq.q.Selections {
			for _, p := range preds {
				j.Sel[rel] = append(j.Sel[rel], predJSON{Var: p.Var, Op: int(p.Op), Value: p.Value})
			}
		}
	}
	return j
}

// configFromJSON rebuilds a registerable QueryConfig.
func configFromJSON(j queryConfigJSON) (QueryConfig, error) {
	atoms := make([]query.Atom, len(j.Atoms))
	for i, a := range j.Atoms {
		atoms[i] = query.Atom{Relation: a.Rel, Vars: a.Vars}
	}
	var sels map[string][]query.Predicate
	if len(j.Sel) > 0 {
		sels = make(map[string][]query.Predicate, len(j.Sel))
		for rel, preds := range j.Sel {
			for _, p := range preds {
				sels[rel] = append(sels[rel], query.Predicate{Var: p.Var, Op: query.Op(p.Op), Value: p.Value})
			}
		}
	}
	name := j.Name
	if name == "" {
		name = j.ID
	}
	q, err := query.New(name, atoms, sels)
	if err != nil {
		return QueryConfig{}, fmt.Errorf("serve: recovering query %q: %w", j.ID, err)
	}
	cfg := QueryConfig{
		ID:      j.ID,
		Query:   q,
		Private: j.Private,
		Budget:  j.Budget,
		Drift:   j.Drift,
		Release: mechanism.TSensDPConfig{Epsilon: j.Epsilon, EpsilonSens: j.EpsilonSens, Bound: j.Bound},
	}
	cfg.Options.SkipRelations = j.Skip
	cfg.Options.TopK = j.TopK
	if len(j.Bags) > 0 {
		d, err := ghd.FromBags(q, j.Bags)
		if err != nil {
			return QueryConfig{}, fmt.Errorf("serve: recovering query %q: %w", j.ID, err)
		}
		cfg.Options.Decomposition = d
	}
	return cfg, nil
}

// checkpoint is one captured consistent cut of the recoverable state.
type checkpoint struct {
	gen      int64 // WAL generation rolled at capture; prune boundary
	epoch    int64 // cut the master rows describe
	appended int64 // LSN tip; pending covers [epoch, appended)
	skipped  int64
	regSeq   int64
	master   *relation.Database
	pending  []relation.Update
	queries  []ckptQuery
}

type ckptQuery struct {
	Config    queryConfigJSON        `json:"config"`
	Ledger    *mechanism.LedgerState `json:"ledger,omitempty"`
	Releases  int                    `json:"releases,omitempty"`
	LastCount int64                  `json:"last_count,omitempty"`
	LastRun   *mechanism.Run         `json:"last_run,omitempty"`
}

type ckptRelation struct {
	Name  string   `json:"name"`
	Attrs []string `json:"attrs"`
	Rows  int      `json:"rows"`
}

type ckptMeta struct {
	Epoch     int64          `json:"epoch"`
	Appended  int64          `json:"appended"`
	Skipped   int64          `json:"skipped"`
	RegSeq    int64          `json:"reg_seq"`
	Relations []ckptRelation `json:"relations"`
	Pending   int            `json:"pending"`
	Queries   []ckptQuery    `json:"queries"`
}

// encodeCheckpoint renders a capture: a JSON meta header, then every
// relation's rows and the pending log tail as binary records, values in
// textual form so recovery re-interns the dictionary through the codec.
func encodeCheckpoint(ck *checkpoint, codec Codec) ([]byte, error) {
	meta := ckptMeta{
		Epoch:    ck.epoch,
		Appended: ck.appended,
		Skipped:  ck.skipped,
		RegSeq:   ck.regSeq,
		Pending:  len(ck.pending),
		Queries:  ck.queries,
	}
	names := ck.master.Names()
	for _, name := range names {
		r := ck.master.Relation(name)
		meta.Relations = append(meta.Relations, ckptRelation{Name: name, Attrs: r.Attrs, Rows: len(r.Rows)})
	}
	head, err := json.Marshal(&meta)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint: %w", err)
	}
	buf := binary.AppendUvarint(nil, uint64(len(head)))
	buf = append(buf, head...)
	fields := make([]string, 0, 8)
	for _, name := range names {
		r := ck.master.Relation(name)
		for _, row := range r.Rows {
			fields = fields[:0]
			for _, v := range row {
				fields = append(fields, codec.Decode(v))
			}
			buf = csvio.AppendRecord(buf, fields...)
		}
	}
	for _, up := range ck.pending {
		buf = csvio.AppendUpdateRecord(buf, up, codec.Decode)
	}
	return buf, nil
}

// decodeCheckpoint is the inverse of encodeCheckpoint (gen is not part of
// the payload; the caller knows which file it read).
func decodeCheckpoint(data []byte, codec Codec) (*checkpoint, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || n > uint64(len(data)-used) {
		return nil, fmt.Errorf("serve: checkpoint: truncated meta header")
	}
	var meta ckptMeta
	if err := json.Unmarshal(data[used:used+int(n)], &meta); err != nil {
		return nil, fmt.Errorf("serve: checkpoint meta: %w", err)
	}
	rest := data[used+int(n):]
	var rels []*relation.Relation
	for _, cr := range meta.Relations {
		rows := make([]relation.Tuple, cr.Rows)
		for i := range rows {
			fields, r2, err := csvio.ReadRecord(rest)
			if err != nil {
				return nil, fmt.Errorf("serve: checkpoint rows of %s: %w", cr.Name, err)
			}
			rest = r2
			if len(fields) != len(cr.Attrs) {
				return nil, fmt.Errorf("serve: checkpoint row of %s has %d fields, want %d", cr.Name, len(fields), len(cr.Attrs))
			}
			row := make(relation.Tuple, len(fields))
			for j, f := range fields {
				v, err := codec.Encode(f)
				if err != nil {
					return nil, fmt.Errorf("serve: checkpoint value of %s: %w", cr.Name, err)
				}
				row[j] = v
			}
			rows[i] = row
		}
		r, err := relation.New(cr.Name, cr.Attrs, rows)
		if err != nil {
			return nil, fmt.Errorf("serve: checkpoint relation %s: %w", cr.Name, err)
		}
		rels = append(rels, r)
	}
	master, err := relation.NewDatabase(rels...)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint database: %w", err)
	}
	ck := &checkpoint{
		epoch:    meta.Epoch,
		appended: meta.Appended,
		skipped:  meta.Skipped,
		regSeq:   meta.RegSeq,
		master:   master,
		queries:  meta.Queries,
	}
	for i := 0; i < meta.Pending; i++ {
		up, r2, err := csvio.ReadUpdateRecord(rest, codec.Encode)
		if err != nil {
			return nil, fmt.Errorf("serve: checkpoint pending update %d: %w", i, err)
		}
		rest = r2
		ck.pending = append(ck.pending, up)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("serve: checkpoint: %d trailing bytes", len(rest))
	}
	return ck, nil
}

// --- capture and checkpoint writing ---

// captureCheckpointLocked snapshots the recoverable state at the current
// fold frontier. Caller holds stateMu (the coordinator between rounds, or
// boot/Close), under which the master rows reflect exactly the frontier —
// in async mode shards may still be draining queued rounds below it, but
// those rounds are already folded into the master, so recovery replaying
// the log past the frontier reconstructs the same state without any global
// quiesce. The capture rolls the WAL first so every record in older
// segments is covered by what it reads afterwards.
func (s *Server) captureCheckpointLocked() (*checkpoint, error) {
	gen, err := s.wal.log.Roll()
	if err != nil {
		return nil, err
	}
	ck := &checkpoint{
		gen:     gen,
		epoch:   s.frontier.Load(),
		skipped: s.skipped.Load(),
		regSeq:  s.regSeq,
		master:  s.master.Clone(),
	}
	s.logMu.Lock()
	ck.appended = s.appended.Load()
	if n := ck.appended - ck.epoch; n > 0 {
		start := ck.epoch - s.logBase
		ck.pending = append([]relation.Update(nil), s.log[start:start+n]...)
	}
	s.logMu.Unlock()
	s.qmu.RLock()
	sqs := make([]*servedQuery, 0, len(s.queries))
	for _, sq := range s.queries {
		sqs = append(sqs, sq)
	}
	s.qmu.RUnlock()
	sort.Slice(sqs, func(i, j int) bool { return sqs[i].id < sqs[j].id })
	for _, sq := range sqs {
		cq := ckptQuery{Config: sq.configJSON()}
		// Ledger totals and the release sequence must be captured in one
		// relMu critical section: a concurrent fresh Release mutates both
		// together, and a capture that saw its releases++ but not its
		// Spend would make the recovery skip rule drop that spend —
		// exactly the budget amnesia this subsystem exists to prevent.
		sq.relMu.Lock()
		if sq.ledger != nil {
			st := sq.ledger.Export()
			cq.Ledger = &st
		}
		cq.Releases = sq.releases
		cq.LastCount = sq.lastCount
		if sq.lastRun != nil {
			run := *sq.lastRun
			cq.LastRun = &run
		}
		sq.relMu.Unlock()
		ck.queries = append(ck.queries, cq)
	}
	s.wal.lastCapture = ck.epoch
	return ck, nil
}

// maybeCheckpointLocked triggers an asynchronous checkpoint at the
// configured cadence. Coordinator-only, under stateMu post-publish.
func (s *Server) maybeCheckpointLocked(epoch int64) {
	dl := s.wal
	if !dl.enabled() || s.opts.CheckpointEvery <= 0 {
		return
	}
	if epoch-dl.lastCapture < int64(s.opts.CheckpointEvery) {
		return
	}
	if len(dl.ckptCh) != 0 {
		return // previous checkpoint still being written; retry next round
	}
	ck, err := s.captureCheckpointLocked()
	if err != nil {
		return // WAL failed; appends are failing loudly already
	}
	dl.ckptCh <- ck
}

// writeCheckpoint encodes and durably installs one capture, pruning covered
// segments.
func (s *Server) writeCheckpoint(ck *checkpoint) error {
	data, err := encodeCheckpoint(ck, s.wal.codec)
	if err != nil {
		return err
	}
	if err := s.wal.log.WriteCheckpoint(data, ck.gen); err != nil {
		return err
	}
	s.wal.durableEpoch.Store(ck.epoch)
	return nil
}

// checkpointSync captures and writes a checkpoint inline (boot and graceful
// Close; periodic checkpoints go through maybeCheckpointLocked instead).
func (s *Server) checkpointSync() error {
	s.stateMu.Lock()
	ck, err := s.captureCheckpointLocked()
	s.stateMu.Unlock()
	if err != nil {
		return err
	}
	return s.writeCheckpoint(ck)
}

// --- boot and recovery ---

// openDurable starts a durable server: fresh WAL directories are seeded
// with an initial checkpoint of db (after which the directory alone is
// sufficient to recover — db is a convenience, not a dependency), existing
// ones are recovered by loading the newest checkpoint and replaying the WAL
// tail through the ordinary serving machinery.
func openDurable(db *relation.Database, opts Options) (*Server, error) {
	wlog, err := wal.Open(opts.WALDir, wal.Options{SyncEvery: opts.SyncEvery, FS: opts.WALFS, Metrics: opts.Metrics})
	if err != nil {
		return nil, err
	}
	codec := opts.WALCodec
	if codec == nil {
		codec = IntCodec{}
	}
	dl := &durableLog{
		log:      wlog,
		codec:    codec,
		ckptCh:   make(chan *checkpoint, 1),
		ckptDone: make(chan struct{}),
	}
	has, err := wlog.HasState()
	if err != nil {
		return nil, err
	}
	if !has {
		if db == nil {
			return nil, fmt.Errorf("serve: nil database and no recoverable state in %s", opts.WALDir)
		}
		s, err := newServer(db.Clone(), opts, serverInit{}, dl)
		if err != nil {
			return nil, err
		}
		if err := wlog.StartAppending(); err != nil {
			s.CloseNow()
			return nil, err
		}
		dl.active.Store(true)
		if err := s.checkpointSync(); err != nil {
			s.CloseNow()
			return nil, err
		}
		return s, nil
	}
	s, err := recoverDurable(db, opts, dl, true)
	if err != nil {
		return nil, err
	}
	if err := s.checkpointSync(); err != nil { // prunes the replayed tail
		s.CloseNow()
		return nil, err
	}
	return s, nil
}

// recoverDurable rebuilds a server from the WAL directory: checkpoint state
// first, then the tail records, each gated by its skip rule so records
// already covered by the checkpoint replay as no-ops regardless of how the
// crash interleaved them with the capture. With activate the recovered
// server takes over the directory (opens a fresh append segment and starts
// journaling); without it the server stays passive — a replication follower
// that keeps applying records via ApplyReplicated while the Mirror, not
// this Log, owns the directory's write side.
func recoverDurable(db *relation.Database, opts Options, dl *durableLog, activate bool) (*Server, error) {
	data, _, ok, err := dl.log.LatestCheckpoint()
	if err != nil {
		return nil, err
	}
	var (
		ck     *checkpoint
		master *relation.Database
		init   serverInit
	)
	if ok {
		if ck, err = decodeCheckpoint(data, dl.codec); err != nil {
			return nil, err
		}
		master = ck.master
		init = serverInit{epoch: ck.epoch, skipped: ck.skipped}
	} else {
		// Segments without a checkpoint: abnormal under the boot protocol
		// (a fresh dir is seeded before serving), but recoverable from the
		// caller's snapshot plus a full replay.
		if db == nil {
			return nil, fmt.Errorf("serve: WAL %s has segments but no checkpoint and no database was given", opts.WALDir)
		}
		master = db.Clone()
	}
	s, err := newServer(master, opts, init, dl)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Server, error) {
		s.CloseNow()
		return nil, err
	}
	if ck != nil {
		for _, cq := range ck.queries {
			if err := s.restoreQuery(cq); err != nil {
				return fail(err)
			}
		}
		s.regSeq = ck.regSeq
		if len(ck.pending) > 0 {
			if _, _, err := s.Append(ck.pending); err != nil {
				return fail(fmt.Errorf("serve: replaying checkpoint tail: %w", err))
			}
		}
	}
	if err := dl.log.Replay(s.replayRecord); err != nil {
		return fail(err)
	}
	if err := s.WaitApplied(s.appended.Load()); err != nil {
		return fail(err)
	}
	if !activate {
		return s, nil
	}
	if err := dl.log.StartAppending(); err != nil {
		return fail(err)
	}
	dl.active.Store(true)
	return s, nil
}

// OpenFollower recovers a passive server from opts.WALDir: the newest
// checkpoint plus the mirrored tail replay through the ordinary recovery
// machinery, but the server neither opens an append segment nor journals —
// the replication Mirror owns the directory's write side, and every record
// it lands is applied live through ApplyReplicated. Reads (View/Count/LS,
// Queries, Stats) serve exactly as on a leader. Promotion closes this
// server and calls New(nil, opts) on the same directory — PR 5 recovery,
// verbatim — so a follower can only ever promote to what is durable on its
// own disk.
func OpenFollower(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.WALDir == "" {
		return nil, fmt.Errorf("serve: follower requires WALDir")
	}
	wlog, err := wal.Open(opts.WALDir, wal.Options{SyncEvery: opts.SyncEvery, FS: opts.WALFS, Metrics: opts.Metrics})
	if err != nil {
		return nil, err
	}
	codec := opts.WALCodec
	if codec == nil {
		codec = IntCodec{}
	}
	dl := &durableLog{
		log:      wlog,
		codec:    codec,
		ckptCh:   make(chan *checkpoint, 1),
		ckptDone: make(chan struct{}),
	}
	has, err := wlog.HasState()
	if err != nil {
		return nil, err
	}
	if !has {
		return nil, fmt.Errorf("serve: follower state in %s is empty (mirror a checkpoint first)", opts.WALDir)
	}
	return recoverDurable(nil, opts, dl, false)
}

// ApplyReplicated applies one mirrored WAL record to a passive follower
// server — the same replay path recovery uses, so the skip rules make a
// record the local state already covers a no-op. The caller (the
// replication layer) must have made the record durable in the follower's
// own mirror before applying it, preserving "never serve what your own
// disk could lose". Records must arrive in log order from one goroutine.
func (s *Server) ApplyReplicated(kind byte, data []byte) error {
	return s.replayRecord(kind, data)
}

// restoreQuery re-registers one checkpointed query and restores its
// accounting: ledger totals and the release replay cache, so a replayed
// release neither re-spends ε nor re-draws noise.
func (s *Server) restoreQuery(cq ckptQuery) error {
	cfg, err := configFromJSON(cq.Config)
	if err != nil {
		return err
	}
	if _, _, err := s.Register(cfg); err != nil {
		return fmt.Errorf("serve: recovering query %q: %w", cq.Config.ID, err)
	}
	sq, err := s.lookup(cq.Config.ID)
	if err != nil {
		return err
	}
	if cq.Ledger != nil {
		ledger, err := mechanism.RestoreLedger(*cq.Ledger)
		if err != nil {
			return fmt.Errorf("serve: recovering ledger of %q: %w", cq.Config.ID, err)
		}
		sq.ledger = ledger
		s.budgetMetrics(sq)
	}
	sq.relMu.Lock()
	sq.releases = cq.Releases
	sq.lastCount = cq.LastCount
	if cq.LastRun != nil {
		run := *cq.LastRun
		sq.lastRun = &run
	}
	sq.relMu.Unlock()
	return nil
}

// replayRecord applies one WAL record during recovery, each kind under its
// skip rule.
func (s *Server) replayRecord(kind byte, data []byte) error {
	switch kind {
	case recUpdates:
		from, used := binary.Uvarint(data)
		if used <= 0 {
			return fmt.Errorf("serve: wal update record: truncated LSN")
		}
		data = data[used:]
		n, used := binary.Uvarint(data)
		if used <= 0 {
			return fmt.Errorf("serve: wal update record: truncated count")
		}
		data = data[used:]
		next := s.appended.Load()
		to := int64(from) + int64(n)
		if to <= next {
			return nil // fully covered by the checkpoint
		}
		if int64(from) > next {
			return fmt.Errorf("serve: wal gap: log resumes at %d but server is at %d", from, next)
		}
		ups := make([]relation.Update, 0, n)
		for i := uint64(0); i < n; i++ {
			up, rest, err := csvio.ReadUpdateRecord(data, s.wal.codec.Encode)
			if err != nil {
				return fmt.Errorf("serve: wal update record: %w", err)
			}
			data = rest
			ups = append(ups, up)
		}
		if _, _, err := s.Append(ups[next-int64(from):]); err != nil {
			return fmt.Errorf("serve: replaying updates at %d: %w", from, err)
		}
		return nil
	case recRegister:
		var rec registerRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("serve: wal register record: %w", err)
		}
		if rec.Seq <= s.regSeq {
			return nil
		}
		cfg, err := configFromJSON(rec.Config)
		if err != nil {
			return err
		}
		if _, _, err := s.Register(cfg); err != nil {
			return fmt.Errorf("serve: replaying registration of %q: %w", rec.Config.ID, err)
		}
		s.regSeq = rec.Seq
		return nil
	case recUnregister:
		var rec unregisterRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("serve: wal unregister record: %w", err)
		}
		if rec.Seq <= s.regSeq {
			return nil
		}
		if err := s.Unregister(rec.ID); err != nil {
			return fmt.Errorf("serve: replaying unregistration of %q: %w", rec.ID, err)
		}
		s.regSeq = rec.Seq
		return nil
	case recRelease:
		var rec releaseRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("serve: wal release record: %w", err)
		}
		sq, err := s.lookup(rec.ID)
		if err != nil {
			return nil // released, then unregistered before the crash
		}
		sq.relMu.Lock()
		defer sq.relMu.Unlock()
		if rec.Seq <= sq.releases {
			return nil // covered by the checkpoint's ledger totals
		}
		if sq.ledger != nil && rec.Spent > 0 {
			if err := sq.ledger.Spend(rec.Spent); err != nil {
				return fmt.Errorf("serve: replaying release %d of %q: %w", rec.Seq, rec.ID, err)
			}
		}
		run := rec.Run
		sq.lastRun = &run
		sq.lastCount = rec.Count
		sq.releases = rec.Seq
		s.budgetMetrics(sq)
		return nil
	default:
		return fmt.Errorf("serve: unknown wal record kind %q", kind)
	}
}
