package serve

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"tsens/internal/core"
	"tsens/internal/ghd"
	"tsens/internal/mechanism"
	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/workload"
)

// testDB builds a small multi-relation database with heavy join collisions.
func testDB(t *testing.T, size, dom int, seed int64, names ...string) *relation.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var rels []*relation.Relation
	for _, name := range names {
		rows := make([]relation.Tuple, size)
		for i := range rows {
			rows[i] = relation.Tuple{int64(rng.Intn(dom)), int64(rng.Intn(dom))}
		}
		r, err := relation.New(name, []string{name + "_x", name + "_y"}, rows)
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, r)
	}
	db, err := relation.NewDatabase(rels...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func pathQuery(t *testing.T) *query.Query {
	t.Helper()
	q, err := query.New("path", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func triangleQuery(t *testing.T) (*query.Query, *ghd.Decomposition) {
	t.Helper()
	q, err := query.New("tri", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "A"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return q, ghd.MustFromBags(q, [][]int{{0, 1}, {2}})
}

// replayPrefix applies the first n updates of stream to a clone of base.
func replayPrefix(t *testing.T, base *relation.Database, stream []relation.Update, n int) *relation.Database {
	t.Helper()
	db := base.Clone()
	for _, up := range stream[:n] {
		r := db.Relation(up.Rel)
		if up.Insert {
			r.Rows = append(r.Rows, up.Row.Clone())
			continue
		}
		found := false
		for i, row := range r.Rows {
			if row.Equal(up.Row) {
				r.Rows[i] = r.Rows[len(r.Rows)-1]
				r.Rows = r.Rows[:len(r.Rows)-1]
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("replay: delete of absent tuple %v from %s", up.Row, up.Rel)
		}
	}
	return db
}

func TestServeRegisterAppendView(t *testing.T) {
	db := testDB(t, 10, 4, 1, "R1", "R2", "R3")
	srv, err := New(db, Options{Parallelism: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	id, v, err := srv.Register(QueryConfig{Query: pathQuery(t)})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.LocalSensitivity(pathQuery(t), db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != 0 || v.Count != want.Count || v.LS.LS != want.LS {
		t.Fatalf("initial view (%d, %d, %d), want (0, %d, %d)", v.Epoch, v.Count, v.LS.LS, want.Count, want.LS)
	}

	stream := workload.UpdateStream(db, 10, 0.4, 7)
	_, to, err := srv.Append(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}
	cur := replayPrefix(t, db, stream, len(stream))
	want, err = core.LocalSensitivity(pathQuery(t), cur, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := srv.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Epoch != to || v2.Count != want.Count || v2.LS.LS != want.LS {
		t.Fatalf("view after replay (%d, %d, %d), want (%d, %d, %d)",
			v2.Epoch, v2.Count, v2.LS.LS, to, want.Count, want.LS)
	}

	// Mid-stream registration starts at the current epoch.
	tq, td := triangleQuery(t)
	_, v3, err := srv.Register(QueryConfig{ID: "tri", Query: tq, Options: core.Options{Decomposition: td}})
	if err != nil {
		t.Fatal(err)
	}
	if v3.Epoch != to {
		t.Fatalf("mid-stream registration epoch %d, want %d", v3.Epoch, to)
	}
	wantTri, err := core.LocalSensitivity(tq, cur, core.Options{Decomposition: td})
	if err != nil {
		t.Fatal(err)
	}
	if v3.Count != wantTri.Count || v3.LS.LS != wantTri.LS {
		t.Fatalf("triangle view (%d, %d), want (%d, %d)", v3.Count, v3.LS.LS, wantTri.Count, wantTri.LS)
	}

	if got := len(srv.Queries()); got != 2 {
		t.Fatalf("Queries() lists %d, want 2", got)
	}
	if err := srv.Unregister("tri"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Unregister("tri"); err == nil {
		t.Fatal("double unregister accepted")
	}
	if _, err := srv.View("tri"); err == nil {
		t.Fatal("view of unregistered query accepted")
	}
	_ = id
}

func TestServeAppendValidation(t *testing.T) {
	db := testDB(t, 4, 3, 2, "R1", "R2", "R3")
	srv, err := New(db, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, _, err := srv.Append([]relation.Update{{Rel: "NOPE", Row: relation.Tuple{1, 2}, Insert: true}}); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, _, err := srv.Append([]relation.Update{{Rel: "R1", Row: relation.Tuple{1}, Insert: true}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	// Deletes of absent tuples are skipped at apply time, not failed.
	_, to, err := srv.Append([]relation.Update{{Rel: "R1", Row: relation.Tuple{99, 99}, Insert: false}})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Skipped != 1 || st.Epoch != to {
		t.Fatalf("stats %+v, want 1 skipped at epoch %d", st, to)
	}
	// The server refuses appends after Close.
	srv.Close()
	if _, _, err := srv.Append([]relation.Update{{Rel: "R1", Row: relation.Tuple{1, 2}, Insert: true}}); err == nil {
		t.Fatal("append after close accepted")
	}
}

// TestServeConcurrentReaders is the serving-layer acceptance test: N reader
// goroutines issue LS/Count against two multiplexed queries while the
// writer drains a live update stream. Every answer must equal the
// from-scratch LocalSensitivity at the exact epoch the view was published
// for (linearizability at epoch granularity). Run with -race.
func TestServeConcurrentReaders(t *testing.T) {
	const (
		readers = 8
		nUpds   = 120
	)
	db := testDB(t, 12, 4, 3, "R1", "R2", "R3")
	stream := workload.UpdateStream(db, nUpds, 0.4, 11)

	srv, err := New(db, Options{Parallelism: 4, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	tq, td := triangleQuery(t)
	pathID, _, err := srv.Register(QueryConfig{ID: "path", Query: pathQuery(t)})
	if err != nil {
		t.Fatal(err)
	}
	triID, _, err := srv.Register(QueryConfig{ID: "tri", Query: tq, Options: core.Options{Decomposition: td}})
	if err != nil {
		t.Fatal(err)
	}

	type answer struct {
		id    string
		epoch int64
		count int64
		ls    int64
	}
	var (
		mu      sync.Mutex
		answers []answer
		done    atomic.Bool
		wg      sync.WaitGroup
	)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := []string{pathID, triID}
			for i := 0; !done.Load(); i++ {
				id := ids[(g+i)%2]
				v, err := srv.View(id)
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				cnt, ce, err := srv.Count(id)
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				mu.Lock()
				answers = append(answers,
					answer{id, v.Epoch, v.Count, v.LS.LS},
					answer{id, ce, cnt, -1})
				mu.Unlock()
			}
		}(g)
	}

	// Feed the stream in uneven chunks while the readers hammer the views.
	var to int64
	for off := 0; off < len(stream); {
		end := off + 1 + (off*7)%13
		if end > len(stream) {
			end = len(stream)
		}
		if _, to, err = srv.Append(stream[off:end]); err != nil {
			t.Fatal(err)
		}
		off = end
	}
	if err := srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}
	done.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Every (query, epoch) pair observed must match the from-scratch solver
	// on the snapshot + log prefix of that epoch.
	type key struct {
		id    string
		epoch int64
	}
	expected := map[key]*core.Result{}
	lookup := func(k key) *core.Result {
		if r, ok := expected[k]; ok {
			return r
		}
		cur := replayPrefix(t, db, stream, int(k.epoch))
		var (
			res *core.Result
			err error
		)
		if k.id == triID {
			res, err = core.LocalSensitivity(tq, cur, core.Options{Decomposition: td})
		} else {
			res, err = core.LocalSensitivity(pathQuery(t), cur, core.Options{})
		}
		if err != nil {
			t.Fatalf("scratch at epoch %d: %v", k.epoch, err)
		}
		expected[k] = res
		return res
	}
	epochs := map[key]bool{}
	for _, a := range answers {
		want := lookup(key{a.id, a.epoch})
		if a.count != want.Count {
			t.Fatalf("%s at epoch %d: served count %d, scratch %d", a.id, a.epoch, a.count, want.Count)
		}
		if a.ls >= 0 && a.ls != want.LS {
			t.Fatalf("%s at epoch %d: served LS %d, scratch %d", a.id, a.epoch, a.ls, want.LS)
		}
		epochs[key{a.id, a.epoch}] = true
	}
	if len(answers) < readers {
		t.Fatalf("only %d answers collected", len(answers))
	}
	t.Logf("verified %d answers across %d (query, epoch) pairs, final epoch %d",
		len(answers), len(epochs), srv.Epoch())
}

// TestServeRelease exercises the DP release path: fresh release, free
// replay, drift-triggered fresh release, and budget exhaustion.
func TestServeRelease(t *testing.T) {
	db := testDB(t, 30, 3, 5, "R1", "R2", "R3")
	srv, err := New(db, Options{Parallelism: 2, DriftFraction: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := mechanism.TSensDPConfig{Epsilon: 1, Bound: 50}
	id, v0, err := srv.Register(QueryConfig{
		Query:   pathQuery(t),
		Private: "R2",
		Release: cfg,
		Budget:  2, // two fresh releases
		Drift:   0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v0.Sens == nil {
		t.Fatal("no sensitivity snapshot on a private query")
	}
	var sum int64
	for _, s := range v0.Sens {
		sum += s
	}
	if sum != v0.Count {
		t.Fatalf("Σ sens = %d, count = %d (every output tuple passes one private row)", sum, v0.Count)
	}

	r1, err := srv.Release(id, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Fresh || r1.Spent != 1 || r1.TotalSpent != 1 {
		t.Fatalf("first release: %+v", r1)
	}
	if !r1.HasBudget || r1.Remaining != 1 {
		t.Fatalf("remaining = %g after first release", r1.Remaining)
	}
	// Unchanged data: replay, free of charge.
	r2, err := srv.Release(id, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Fresh || r2.Spent != 0 || r2.Run.Noisy != r1.Run.Noisy {
		t.Fatalf("replay: %+v", r2)
	}

	// Drive the count far enough to drift: insert many R2 rows.
	var ups []relation.Update
	for i := 0; i < 20; i++ {
		ups = append(ups, relation.Update{Rel: "R2", Row: relation.Tuple{int64(i % 3), int64(i % 3)}, Insert: true})
	}
	_, to, err := srv.Append(ups)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}
	r3, err := srv.Release(id, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Fresh || r3.TotalSpent != 2 {
		t.Fatalf("post-drift release: %+v", r3)
	}
	if r3.SensEpoch != to {
		t.Fatalf("sens snapshot at epoch %d, want refresh at %d", r3.SensEpoch, to)
	}

	// Budget is now exhausted: drift again and the release must refuse.
	_, to, err = srv.Append(ups)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Release(id, rand.New(rand.NewSource(4))); err == nil {
		t.Fatal("release past the budget accepted")
	}

	// Releases on non-private queries are refused.
	plainID, _, err := srv.Register(QueryConfig{ID: "plain", Query: pathQuery(t)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Release(plainID, rand.New(rand.NewSource(5))); err == nil {
		t.Fatal("release on non-private query accepted")
	}
}

// TestServeSensSnapshotConsistency checks that the published sensitivity
// snapshot always equals the from-scratch per-tuple sensitivities of its
// SensEpoch (sorted), across a replayed stream.
func TestServeSensSnapshotConsistency(t *testing.T) {
	db := testDB(t, 10, 3, 9, "R1", "R2", "R3")
	stream := workload.UpdateStream(db, 40, 0.4, 13)
	srv, err := New(db, Options{Parallelism: 2, BatchSize: 4, DriftFraction: -1}) // refresh every epoch
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	id, _, err := srv.Register(QueryConfig{
		Query:   pathQuery(t),
		Private: "R2",
		Release: mechanism.TSensDPConfig{Epsilon: 1, Bound: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(stream); off += 4 {
		end := off + 4
		if end > len(stream) {
			end = len(stream)
		}
		_, to, err := srv.Append(stream[off:end])
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.WaitApplied(to); err != nil {
			t.Fatal(err)
		}
		v, err := srv.View(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.SensEpoch != v.Epoch {
			t.Fatalf("DriftFraction<0 must refresh every epoch: sens %d, view %d", v.SensEpoch, v.Epoch)
		}
		cur := replayPrefix(t, db, stream, int(v.Epoch))
		fn, err := core.TupleSensitivities(pathQuery(t), cur, "R2", core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rows := cur.Relation("R2").Rows
		want := make([]int64, len(rows))
		for i, row := range rows {
			want[i] = fn(row)
		}
		if len(want) != len(v.Sens) {
			t.Fatalf("epoch %d: snapshot has %d entries, scratch %d", v.Epoch, len(v.Sens), len(want))
		}
		got := append([]int64(nil), v.Sens...)
		sortInts(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("epoch %d: sorted sens[%d] = %d, scratch %d", v.Epoch, i, got[i], want[i])
			}
		}
	}
}

func sortInts(v []int64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

func TestServeRegisterValidation(t *testing.T) {
	db := testDB(t, 4, 3, 4, "R1", "R2", "R3")
	srv, err := New(db, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, _, err := srv.Register(QueryConfig{}); err == nil {
		t.Fatal("nil query accepted")
	}
	if _, _, err := srv.Register(QueryConfig{Query: pathQuery(t), Private: "NOPE"}); err == nil {
		t.Fatal("private relation outside the query accepted")
	}
	if _, _, err := srv.Register(QueryConfig{Query: pathQuery(t), Private: "R2"}); err == nil {
		t.Fatal("private query without release config accepted")
	}
	if _, _, err := srv.Register(QueryConfig{ID: "a", Query: pathQuery(t)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Register(QueryConfig{ID: "a", Query: pathQuery(t)}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if _, err := srv.View("missing"); err == nil {
		t.Fatal("view of unknown query accepted")
	}
}

// TestServeLogCompaction checks that the drained prefix of the update log
// is released instead of retained for the lifetime of the server: after a
// long applied stream, the retained slice must cover only the tail.
func TestServeLogCompaction(t *testing.T) {
	db := testDB(t, 10, 3, 31, "R1", "R2", "R3")
	srv, err := New(db, Options{Parallelism: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, _, err := srv.Register(QueryConfig{ID: "q", Query: pathQuery(t)}); err != nil {
		t.Fatal(err)
	}
	stream := workload.UpdateStream(db, 200, 0.4, 17)
	for off := 0; off < len(stream); off += 8 {
		end := off + 8
		if end > len(stream) {
			end = len(stream)
		}
		_, to, err := srv.Append(stream[off:end])
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.WaitApplied(to); err != nil {
			t.Fatal(err)
		}
	}
	srv.logMu.Lock()
	base, live := srv.logBase, len(srv.log)
	srv.logMu.Unlock()
	if base < int64(len(stream))-16 {
		t.Fatalf("log base %d after %d drained entries: prefix not compacted", base, len(stream))
	}
	if live > 16 {
		t.Fatalf("retained %d log entries with an empty backlog", live)
	}
}

// TestServeSensRefreshAfterRebuild checks that a session rebuild (here a
// bulk batch) invalidates the carried-over sensitivity snapshot even when
// the count has not drifted: the post-rebuild view must be re-read.
func TestServeSensRefreshAfterRebuild(t *testing.T) {
	db := testDB(t, 12, 3, 7, "R1", "R2", "R3")
	// A huge drift gate makes the rebuild check the only refresh trigger,
	// and BatchSize ≥ BulkThreshold makes every full drained batch rebuild.
	srv, err := New(db, Options{Parallelism: 2, BatchSize: 8, BulkThreshold: 4, DriftFraction: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	id, v0, err := srv.Register(QueryConfig{
		Query:   pathQuery(t),
		Private: "R2",
		Release: mechanism.TSensDPConfig{Epsilon: 1, Bound: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	ups := make([]relation.Update, 8)
	for i := range ups {
		ups[i] = relation.Update{Rel: "R1", Row: relation.Tuple{int64(i % 3), int64(i % 3)}, Insert: true}
	}
	_, to, err := srv.Append(ups)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}
	v, err := srv.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if v.Rebuilds <= v0.Rebuilds {
		t.Fatalf("bulk batch did not rebuild (rebuilds %d -> %d)", v0.Rebuilds, v.Rebuilds)
	}
	if v.SensEpoch != v.Epoch {
		t.Fatalf("post-rebuild view kept the snapshot of epoch %d (view epoch %d)", v.SensEpoch, v.Epoch)
	}
}

// TestServeCloseDrainsAcknowledged is the regression test for the
// acknowledged-write-loss bug: a successful Append must be folded into the
// published views by a graceful Close, even when Close races the drain.
// (The old Close abandoned the backlog, silently dropping updates whose
// Append had already returned success.)
func TestServeCloseDrainsAcknowledged(t *testing.T) {
	db := testDB(t, 10, 4, 21, "R1", "R2", "R3")
	srv, err := New(db, Options{Parallelism: 2, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := srv.Register(QueryConfig{Query: pathQuery(t)})
	if err != nil {
		t.Fatal(err)
	}
	// A long stream against a tiny batch size guarantees a deep backlog is
	// still pending when Close runs.
	stream := workload.UpdateStream(db, 200, 0.4, 22)
	_, to, err := srv.Append(stream)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // no WaitApplied: Close itself must finish the fold
	if got := srv.Epoch(); got != to {
		t.Fatalf("epoch %d after graceful close, want %d (acknowledged appends lost)", got, to)
	}
	v, err := srv.View(id)
	if err != nil {
		t.Fatal(err)
	}
	cur := replayPrefix(t, db, stream, len(stream))
	want, err := core.LocalSensitivity(pathQuery(t), cur, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != to || v.Count != want.Count || v.LS.LS != want.LS {
		t.Fatalf("post-close view (epoch %d: %d, %d), want (epoch %d: %d, %d)",
			v.Epoch, v.Count, v.LS.LS, to, want.Count, want.LS)
	}
	// Appends after Close are refused; a second Close is a no-op.
	if _, _, err := srv.Append(stream[:1]); err == nil {
		t.Fatal("append accepted after Close")
	}
	srv.Close()
}

// TestServeCloseNowAbandonsBacklog pins the old behavior under its new
// name: CloseNow stops without waiting out the backlog, and reads keep
// answering from whatever was last published.
func TestServeCloseNowAbandons(t *testing.T) {
	db := testDB(t, 10, 4, 23, "R1", "R2", "R3")
	srv, err := New(db, Options{Parallelism: 2, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := srv.Register(QueryConfig{Query: pathQuery(t)})
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.UpdateStream(db, 100, 0.4, 24)
	if _, _, err := srv.Append(stream); err != nil {
		t.Fatal(err)
	}
	srv.CloseNow()
	// Whatever epoch was reached, the published view is still readable and
	// self-consistent.
	v, err := srv.View(id)
	if err != nil {
		t.Fatal(err)
	}
	cur := replayPrefix(t, db, stream, int(v.Epoch))
	want, err := core.LocalSensitivity(pathQuery(t), cur, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Count != want.Count || v.LS.LS != want.LS {
		t.Fatalf("post-CloseNow view at epoch %d (%d, %d), scratch (%d, %d)",
			v.Epoch, v.Count, v.LS.LS, want.Count, want.LS)
	}
	if _, _, err := srv.Append(stream[:1]); err == nil {
		t.Fatal("append accepted after CloseNow")
	}
}
