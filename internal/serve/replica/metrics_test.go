package replica

import (
	"testing"

	"tsens/internal/obs"
)

// TestRetryAfterSeconds pins the backoff hint's zero-sample guard: a freshly
// started follower has lag (the leader is ahead) but no apply samples yet, so
// the estimate must take the explicit 1s floor instead of multiplying the lag
// by a 0/0 mean — which is NaN, and int(math.Ceil(NaN)) is implementation-
// defined garbage in a Retry-After header.
func TestRetryAfterSeconds(t *testing.T) {
	reg := obs.NewRegistry()
	fresh := reg.Histogram("test_apply_seconds", "apply latency", nil)

	cases := []struct {
		name string
		lag  int64
		hist *obs.Histogram
		want int
	}{
		{"no lag", 0, fresh, 1},
		{"negative lag", -3, fresh, 1},
		{"fresh follower: lag but zero samples", 1000, fresh, 1},
		{"nil histogram (test-built follower)", 1000, nil, 1},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.lag, c.hist); got != c.want {
			t.Errorf("%s: retryAfterSeconds(%d) = %d, want %d", c.name, c.lag, got, c.want)
		}
	}

	seeded := reg.Histogram("test_apply_seconds_seeded", "apply latency", nil)
	seeded.Observe(0.05)
	seeded.Observe(0.15) // mean 0.1s per record
	seededCases := []struct {
		lag  int64
		want int
	}{
		{5, 1},     // 0.5s rounds up to the 1s floor
		{20, 2},    // 2.0s
		{25, 3},    // 2.5s rounds up
		{1000, 30}, // 100s clamps to the 30s ceiling
	}
	for _, c := range seededCases {
		if got := retryAfterSeconds(c.lag, seeded); got != c.want {
			t.Errorf("seeded: retryAfterSeconds(%d) = %d, want %d", c.lag, got, c.want)
		}
	}
}
