package replica

// Lease-based failover. The lease store is the one externally consistent
// fact the cluster agrees on: who may lead, until when, under which term.
// A leader renews its lease in the background and fences its server the
// moment a renewal fails or comes back with someone else's term; a
// follower may promote only after acquiring the lease (the store refuses
// while an unexpired lease names another holder). Terms are monotone, so
// even a paused-and-resumed old leader cannot renew its way back in after
// a successor acquired — its Renew sees the newer term and fails, and its
// next acknowledgment attempt is already fenced.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// ErrLeaseHeld reports an Acquire or Renew refused because an unexpired
// lease names a different holder (or a newer term).
var ErrLeaseHeld = errors.New("replica: lease held")

// Lease is the store's current record.
type Lease struct {
	Holder  string    `json:"holder"`
	Term    int64     `json:"term"`
	Expires time.Time `json:"expires"`
}

// LeaseStore is the pluggable leadership arbiter. Implementations must
// make Acquire/Renew mutually exclusive per store (MemLease by mutex,
// FileLease by an O_EXCL lock file); production deployments would back
// this with an external system, which is exactly why it is an interface.
type LeaseStore interface {
	// Acquire takes the lease for holder when it is free, expired, or
	// already held by holder, returning the (strictly increasing) term.
	// An unexpired lease held by someone else returns ErrLeaseHeld.
	Acquire(holder string, ttl time.Duration) (term int64, err error)
	// Renew extends holder's lease under term; ErrLeaseHeld when the store
	// has moved on (another holder, a newer term, or an expiry someone else
	// acquired past).
	Renew(holder string, term int64, ttl time.Duration) error
	// Release gives the lease up early (graceful shutdown); a no-op when
	// holder/term no longer hold it.
	Release(holder string, term int64) error
	// Get reports the current lease; ok is false when none was ever taken.
	Get() (lease Lease, ok bool, err error)
}

// --- in-memory store (in-process tests, injectable clock) ---

// MemLease is an in-process LeaseStore with an injectable clock, for tests
// that need deterministic expiry (the difftest cluster matrix advances the
// clock instead of sleeping).
type MemLease struct {
	mu    sync.Mutex
	now   func() time.Time
	cur   Lease
	taken bool
}

// NewMemLease returns a MemLease reading time from now (nil = time.Now).
func NewMemLease(now func() time.Time) *MemLease {
	if now == nil {
		now = time.Now
	}
	return &MemLease{now: now}
}

func (m *MemLease) Acquire(holder string, ttl time.Duration) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.now()
	if m.taken && m.cur.Holder != holder && t.Before(m.cur.Expires) {
		return 0, fmt.Errorf("%w: %q until %s (term %d)", ErrLeaseHeld, m.cur.Holder, m.cur.Expires.Format(time.RFC3339), m.cur.Term)
	}
	m.cur = Lease{Holder: holder, Term: m.cur.Term + 1, Expires: t.Add(ttl)}
	m.taken = true
	return m.cur.Term, nil
}

func (m *MemLease) Renew(holder string, term int64, ttl time.Duration) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.taken || m.cur.Holder != holder || m.cur.Term != term {
		return fmt.Errorf("%w: renew by %q term %d, store at %q term %d", ErrLeaseHeld, holder, term, m.cur.Holder, m.cur.Term)
	}
	if m.now().After(m.cur.Expires) {
		// Expired but not re-acquired: the conservative store refuses the
		// renewal anyway — the holder cannot know nobody acquired in the gap.
		return fmt.Errorf("%w: lease of %q expired at %s", ErrLeaseHeld, holder, m.cur.Expires.Format(time.RFC3339))
	}
	m.cur.Expires = m.now().Add(ttl)
	return nil
}

func (m *MemLease) Release(holder string, term int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.taken && m.cur.Holder == holder && m.cur.Term == term {
		m.cur.Expires = m.now() // expire immediately; term history stays
	}
	return nil
}

func (m *MemLease) Get() (Lease, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cur, m.taken, nil
}

// --- file-based store (cross-process, single box) ---

// FileLease arbitrates leadership between processes on one machine through
// a lease file: mutual exclusion comes from an O_CREATE|O_EXCL lock file
// next to it (held only for the microseconds of a read-modify-write), and
// the lease record itself is installed by rename so readers never see a
// torn write. Good enough for the single-box failover smoke it exists for;
// a real deployment swaps in a distributed store behind the same
// interface.
type FileLease struct {
	path string
}

// NewFileLease returns a FileLease backed by path.
func NewFileLease(path string) *FileLease { return &FileLease{path: path} }

func (f *FileLease) withLock(fn func() error) error {
	lock := f.path + ".lock"
	deadline := time.Now().Add(5 * time.Second)
	for {
		lf, err := os.OpenFile(lock, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			lf.Close()
			break
		}
		if !errors.Is(err, os.ErrExist) {
			return fmt.Errorf("replica: lease lock: %w", err)
		}
		if time.Now().After(deadline) {
			// A crashed process can leave the lock behind; past the deadline
			// assume that and break it. The lease record's term/expiry still
			// arbitrates correctness — the lock only serializes writers.
			_ = os.Remove(lock)
			continue
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer os.Remove(lock)
	return fn()
}

func (f *FileLease) read() (Lease, bool, error) {
	raw, err := os.ReadFile(f.path)
	if errors.Is(err, os.ErrNotExist) {
		return Lease{}, false, nil
	}
	if err != nil {
		return Lease{}, false, fmt.Errorf("replica: lease read: %w", err)
	}
	var l Lease
	if err := json.Unmarshal(raw, &l); err != nil {
		return Lease{}, false, fmt.Errorf("replica: lease decode: %w", err)
	}
	return l, true, nil
}

func (f *FileLease) write(l Lease) error {
	data, err := json.Marshal(l)
	if err != nil {
		return err
	}
	tmp := f.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("replica: lease write: %w", err)
	}
	if err := os.Rename(tmp, f.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("replica: lease install: %w", err)
	}
	return nil
}

func (f *FileLease) Acquire(holder string, ttl time.Duration) (int64, error) {
	var term int64
	err := f.withLock(func() error {
		cur, ok, err := f.read()
		if err != nil {
			return err
		}
		if ok && cur.Holder != holder && time.Now().Before(cur.Expires) {
			return fmt.Errorf("%w: %q until %s (term %d)", ErrLeaseHeld, cur.Holder, cur.Expires.Format(time.RFC3339), cur.Term)
		}
		term = cur.Term + 1
		return f.write(Lease{Holder: holder, Term: term, Expires: time.Now().Add(ttl)})
	})
	return term, err
}

func (f *FileLease) Renew(holder string, term int64, ttl time.Duration) error {
	return f.withLock(func() error {
		cur, ok, err := f.read()
		if err != nil {
			return err
		}
		if !ok || cur.Holder != holder || cur.Term != term {
			return fmt.Errorf("%w: renew by %q term %d, store at %q term %d", ErrLeaseHeld, holder, term, cur.Holder, cur.Term)
		}
		if time.Now().After(cur.Expires) {
			return fmt.Errorf("%w: lease of %q expired at %s", ErrLeaseHeld, holder, cur.Expires.Format(time.RFC3339))
		}
		return f.write(Lease{Holder: holder, Term: term, Expires: time.Now().Add(ttl)})
	})
}

func (f *FileLease) Release(holder string, term int64) error {
	return f.withLock(func() error {
		cur, ok, err := f.read()
		if err != nil || !ok || cur.Holder != holder || cur.Term != term {
			return err
		}
		return f.write(Lease{Holder: holder, Term: term, Expires: time.Now()})
	})
}

func (f *FileLease) Get() (Lease, bool, error) { return f.read() }
