package replica

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"tsens/internal/obs"
	"tsens/internal/serve"
	"tsens/internal/serve/wal"
)

// lineageFile persists which leader lineage the mirror's positions belong
// to, next to the mirrored segments.
const lineageFile = "lineage"

// FollowerOptions configures a Follower.
type FollowerOptions struct {
	// Dir is the follower's own WAL directory: the mirror lands records
	// here, the passive server recovers from here, and promotion runs the
	// ordinary recovery on exactly this directory.
	Dir string
	// Addr is the leader's replication address.
	Addr string
	// Serve is the serving configuration for the passive server and for the
	// promoted one (WALDir is overridden with Dir).
	Serve serve.Options
	// Dial overrides the transport (tests); nil dials TCP.
	Dial func(addr string) (net.Conn, error)
	// Fault wraps the dialer (tests).
	Fault *NetFault
	// ReconnectMin/Max bound the dial retry backoff (defaults 50ms, 1s).
	ReconnectMin, ReconnectMax time.Duration
	// ReadTimeout bounds the wait for one frame; the leader heartbeats
	// every second, so a silent connection longer than this is dead
	// (default 10s).
	ReadTimeout time.Duration
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.ReconnectMin == 0 {
		o.ReconnectMin = 50 * time.Millisecond
	}
	if o.ReconnectMax == 0 {
		o.ReconnectMax = time.Second
	}
	if o.ReadTimeout == 0 {
		o.ReadTimeout = 10 * time.Second
	}
	if o.Dial == nil {
		o.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 3*time.Second)
		}
	}
	return o
}

// Follower mirrors a leader's WAL stream into its own directory and serves
// wait-free epoch reads from a passive server kept live by applying each
// record through the recovery replay. Everything it serves is durable on
// its own disk first.
type Follower struct {
	opts   FollowerOptions
	mirror *wal.Mirror

	mu       sync.Mutex
	srv      *serve.Server // passive; nil until a checkpoint has landed
	lineage  string
	promoted bool

	connMu sync.Mutex
	conn   net.Conn

	// leaderGen/leaderIdx is the leader's durable frontier from the last
	// heartbeat — observability only; the shipped stream itself never runs
	// past the leader's durable horizon. leaderAppended is the leader's
	// acknowledged update LSN from the same heartbeat: the reference point
	// for staleness (zero until a post-PR-7 leader heartbeats).
	leaderGen, leaderIdx atomic.Int64
	leaderAppended       atomic.Int64

	fm followerMetrics

	done    chan struct{}
	stopped chan struct{}
	stopOne sync.Once
}

// StartFollower opens (or resumes) the mirror in opts.Dir, recovers the
// passive server when local state exists, and starts the replication loop.
func StartFollower(opts FollowerOptions) (*Follower, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("replica: follower requires Dir")
	}
	if opts.Serve.Metrics == nil {
		// One registry for the mirror, the passive server, any promoted
		// successor, and the follower gauges — a scrape survives checkpoint
		// resets and promotion.
		opts.Serve.Metrics = obs.NewRegistry()
	}
	if opts.Serve.Traces == nil {
		// Same pinning for traces: the mirror+apply traces of replicated
		// records land in one process-level recorder that survives
		// checkpoint resets and promotion.
		opts.Serve.Traces = obs.NewTraceRecorder(opts.Serve.Metrics, 0, opts.Serve.SlowThreshold)
	}
	m, err := wal.OpenMirror(opts.Dir, wal.Options{SyncEvery: opts.Serve.SyncEvery, FS: opts.Serve.WALFS, Metrics: opts.Serve.Metrics})
	if err != nil {
		return nil, err
	}
	f := &Follower{
		opts:    opts,
		mirror:  m,
		fm:      newFollowerMetrics(opts.Serve.Metrics),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	if raw, err := os.ReadFile(filepath.Join(opts.Dir, lineageFile)); err == nil {
		f.lineage = string(raw)
	}
	if has, err := wal.HasState(opts.Dir); err != nil {
		return nil, err
	} else if has {
		srv, err := serve.OpenFollower(f.serveOpts())
		if err != nil {
			return nil, fmt.Errorf("replica: recovering follower state: %w", err)
		}
		f.srv = srv
	}
	go f.loop()
	return f, nil
}

func (f *Follower) serveOpts() serve.Options {
	o := f.opts.Serve
	o.WALDir = f.opts.Dir
	return o
}

// Server returns the passive server for reads (View/Count/LS, Queries,
// Stats) — nil while the follower has no replicated state yet.
func (f *Follower) Server() *serve.Server {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.srv
}

// Status reports the follower's role and staleness for /readyz: following
// once it has state to serve, recovering before that, plus the replicated
// epoch, applied LSN, the leader's acknowledged LSN from the last
// heartbeat, the resulting lag, and the Retry-After a gated write should
// carry (lag times observed mean apply latency, clamped to [1, 30]s).
func (f *Follower) Status() serve.Status {
	st := serve.Status{State: serve.StateRecovering, Leader: f.opts.Addr, RetryAfterSeconds: 1}
	srv := f.Server()
	if srv == nil {
		return st
	}
	st.State = serve.StateFollowing
	stats := srv.Stats()
	st.Epoch = stats.Epoch
	st.Applied = stats.Appended
	st.LeaderAppended = f.leaderAppended.Load()
	if lag := st.LeaderAppended - st.Applied; lag > 0 {
		st.Lag = lag
	}
	st.RetryAfterSeconds = retryAfterSeconds(st.Lag, f.fm.applySecs)
	f.fm.lag.Set(float64(st.Lag))
	return st
}

// LeaderDurable returns the leader's durable frontier from the last
// heartbeat.
func (f *Follower) LeaderDurable() (gen, idx int64) {
	return f.leaderGen.Load(), f.leaderIdx.Load()
}

// Position returns the follower's replicated position: the (gen, idx) its
// mirror expects next. Equal to the leader's DurablePosition exactly when
// every durable record — updates, registrations, and releases alike — has
// been mirrored and applied (applyRecord is synchronous), which is the
// catch-up test a clean failover waits on.
func (f *Follower) Position() (gen, idx int64) {
	return f.mirror.Position()
}

// Close stops replicating and closes the passive server and mirror.
func (f *Follower) Close() {
	f.stop()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return // Promote already transferred ownership of dir and state
	}
	if f.srv != nil {
		f.srv.CloseNow()
		f.srv = nil
	}
	_ = f.mirror.Close()
}

func (f *Follower) stop() {
	f.stopOne.Do(func() { close(f.done) })
	f.connMu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.connMu.Unlock()
	<-f.stopped
}

// loop dials, streams, and re-dials with bounded jittered backoff.
func (f *Follower) loop() {
	defer close(f.stopped)
	backoff := f.opts.ReconnectMin
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	dial := f.opts.Fault.Dial(f.opts.Dial)
	for {
		select {
		case <-f.done:
			return
		default:
		}
		c, err := dial(f.opts.Addr)
		if err == nil {
			f.connMu.Lock()
			f.conn = c
			f.connMu.Unlock()
			_ = f.stream(c)
			f.connMu.Lock()
			f.conn = nil
			f.connMu.Unlock()
			c.Close()
			backoff = f.opts.ReconnectMin
		}
		// Jittered backoff so a herd of followers does not re-dial a
		// restarted leader in lockstep.
		sleep := backoff/2 + time.Duration(rng.Int63n(int64(backoff)/2+1))
		select {
		case <-f.done:
			return
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > f.opts.ReconnectMax {
			backoff = f.opts.ReconnectMax
		}
	}
}

// stream runs one connection: hello with the resume position, then mirror
// and apply every frame until the connection breaks. Any error returns for
// a reconnect — the handshake re-derives the position from the mirror, so
// a half-processed stream never corrupts anything.
func (f *Follower) stream(c net.Conn) error {
	gen, idx := f.mirror.Position()
	_ = c.SetWriteDeadline(time.Now().Add(f.opts.ReadTimeout))
	if err := writeJSONFrame(c, frameHello, helloMsg{Lineage: f.lineage, Gen: gen, Idx: idx}); err != nil {
		return err
	}
	_ = c.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
	typ, payload, err := readFrame(c)
	if err != nil {
		return err
	}
	if typ != frameWelcome {
		return fmt.Errorf("replica: expected welcome, got %q", typ)
	}
	var wl welcomeMsg
	if err := json.Unmarshal(payload, &wl); err != nil {
		return err
	}
	for {
		_ = c.SetReadDeadline(time.Now().Add(f.opts.ReadTimeout))
		typ, payload, err := readFrame(c)
		if err != nil {
			return err
		}
		switch typ {
		case frameCheckpoint:
			reset, cg, data, err := decodeCheckpointFrame(payload)
			if err != nil {
				return err
			}
			if err := f.applyCheckpoint(wl.Lineage, reset, cg, data); err != nil {
				return err
			}
		case frameRecord:
			rgen, ridx, kind, data, err := decodeRecord(payload)
			if err != nil {
				return err
			}
			if err := f.applyRecord(rgen, ridx, kind, data); err != nil {
				// The mirror and the live server could disagree after a
				// failed apply; scorch the local state so the reconnect
				// resyncs from a checkpoint instead of serving a divergence.
				f.scorch()
				return err
			}
		case frameHeartbeat:
			hg, hi, happ, err := decodeHeartbeat(payload)
			if err != nil {
				return err
			}
			f.leaderGen.Store(hg)
			f.leaderIdx.Store(hi)
			f.leaderAppended.Store(happ)
			f.fm.heartbeats.Inc()
			f.fm.leaderAppended.Set(float64(happ))
			if srv := f.Server(); srv != nil {
				if lag := happ - srv.Stats().Appended; lag > 0 {
					f.fm.lag.Set(float64(lag))
				} else {
					f.fm.lag.Set(0)
				}
			}
		default:
			return fmt.Errorf("replica: unknown frame %q", typ)
		}
	}
}

func (f *Follower) applyCheckpoint(lineage string, reset bool, gen int64, data []byte) error {
	if !reset {
		// Routine prune shipping: our position is at or past gen, the live
		// server's state covers it — just install and prune the mirror.
		return f.mirror.InstallCheckpoint(data, gen)
	}
	f.fm.resets.Inc()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.srv != nil {
		f.srv.CloseNow()
		f.srv = nil
	}
	if err := f.mirror.Reset(); err != nil {
		return err
	}
	if err := f.mirror.InstallCheckpoint(data, gen); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(f.opts.Dir, lineageFile), []byte(lineage), 0o644); err != nil {
		return err
	}
	f.lineage = lineage
	srv, err := serve.OpenFollower(f.serveOpts())
	if err != nil {
		return err
	}
	f.srv = srv
	return nil
}

func (f *Follower) applyRecord(gen, idx int64, kind byte, data []byte) error {
	start := time.Now()
	defer f.fm.applySecs.ObserveSince(start)
	// Durable first, then visible: the mirror lands (and at the configured
	// cadence fsyncs) the record before the live server applies it, so the
	// follower never serves state its own disk could lose.
	if err := f.mirror.Append(gen, idx, kind, data); err != nil {
		return err
	}
	mirrorD := time.Since(start)
	f.mu.Lock()
	srv := f.srv
	f.mu.Unlock()
	if srv == nil {
		return fmt.Errorf("replica: record before first checkpoint")
	}
	applyStart := time.Now()
	if err := srv.ApplyReplicated(kind, data); err != nil {
		return err
	}
	f.fm.applied.With(kindLabel(kind)).Inc()
	// Update records carry the leader's trace ID in their payload; record
	// the follower's half of the trace under the same ID, so one
	// /debug/traces query on each process joins the full life of the
	// update across the pair.
	if kind == 'U' {
		if id := serve.UpdatesTraceID(data); id != 0 {
			f.opts.Serve.Traces.Record(&obs.Trace{
				ID: id, IDText: id.String(), Name: "replicated-update",
				Start: start, Duration: time.Since(start),
				Stages: []obs.Stage{
					{Name: "mirror", OffsetNS: 0, Duration: mirrorD},
					{Name: "apply", OffsetNS: int64(applyStart.Sub(start)), Duration: time.Since(applyStart)},
				},
			})
		}
	}
	return nil
}

// scorch abandons the local replicated state after a failed apply; the
// next connection starts from a reset checkpoint.
func (f *Follower) scorch() {
	f.fm.resets.Inc()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.srv != nil {
		f.srv.CloseNow()
		f.srv = nil
	}
	_ = f.mirror.Reset()
	f.lineage = ""
	_ = os.Remove(filepath.Join(f.opts.Dir, lineageFile))
}

// PromoteOptions parameterizes a promotion.
type PromoteOptions struct {
	// MinLSN is the durable horizon the caller requires: the highest update
	// LSN the old leader acknowledged (as far as the caller knows). A
	// follower whose replicated state stops short REFUSES to promote —
	// promoting would silently void acknowledged writes and, worse, resurrect
	// spent ε. The caller's fallback is restarting the old leader from its
	// own directory, which has everything it ever acknowledged.
	MinLSN int64
	// Lease, when set, must be acquired before promotion; ErrLeaseHeld
	// (an unexpired lease naming someone else) refuses the promotion.
	Lease  LeaseStore
	Holder string
	TTL    time.Duration
}

// Promote stops following and runs the ordinary durable recovery
// (serve.New with nil database) on the mirrored directory, returning the
// new leading server. The follower is finished afterwards regardless of
// outcome — on refusal, restart a follower or the old leader. The caller
// wraps the returned server in NewLeader to begin shipping (under a fresh
// lineage, so stale mirrors elsewhere reset rather than resume).
func (f *Follower) Promote(p PromoteOptions) (*serve.Server, error) {
	f.stop()
	if err := f.mirror.Sync(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return nil, fmt.Errorf("replica: already promoted")
	}
	if f.srv == nil {
		return nil, fmt.Errorf("replica: refusing promotion: no replicated state")
	}
	if applied := f.srv.Stats().Appended; applied < p.MinLSN {
		return nil, fmt.Errorf("replica: refusing promotion: durable horizon %d short of acknowledged %d — promoting would lose acknowledged writes", applied, p.MinLSN)
	}
	if p.Lease != nil {
		if _, err := p.Lease.Acquire(p.Holder, p.TTL); err != nil {
			return nil, err
		}
	}
	f.srv.CloseNow()
	f.srv = nil
	if err := f.mirror.Close(); err != nil {
		return nil, err
	}
	f.promoted = true
	return serve.New(nil, f.serveOpts())
}
