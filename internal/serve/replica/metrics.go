package replica

// Replication instruments. The leader's live on the led server's registry;
// the follower's live on FollowerOptions.Serve.Metrics, which StartFollower
// defaults so the mirror, the passive server, a promoted successor, and
// these gauges all share one process-level registry — a scrape of the
// follower keeps its history across checkpoint resets and promotion.

import (
	"math"

	"tsens/internal/obs"
)

type leaderMetrics struct {
	followers   *obs.Gauge
	records     *obs.Counter
	checkpoints *obs.Counter
	heartbeats  *obs.Counter
}

func newLeaderMetrics(reg *obs.Registry) leaderMetrics {
	return leaderMetrics{
		followers:   reg.Gauge("tsens_repl_followers", "Connected follower replication streams."),
		records:     reg.Counter("tsens_repl_shipped_records_total", "WAL records shipped to followers."),
		checkpoints: reg.Counter("tsens_repl_shipped_checkpoints_total", "Checkpoints shipped to followers (reset and routine)."),
		heartbeats:  reg.Counter("tsens_repl_shipped_heartbeats_total", "Heartbeats sent to followers."),
	}
}

type followerMetrics struct {
	lag            *obs.Gauge // leader acknowledged LSN minus locally applied LSN
	leaderAppended *obs.Gauge
	applied        *obs.CounterVec // label kind
	applySecs      *obs.Histogram
	heartbeats     *obs.Counter
	resets         *obs.Counter
}

func newFollowerMetrics(reg *obs.Registry) followerMetrics {
	return followerMetrics{
		lag: reg.Gauge("tsens_repl_lag_entries",
			"Follower staleness: update-log entries the leader has acknowledged beyond the locally applied LSN."),
		leaderAppended: reg.Gauge("tsens_repl_leader_appended",
			"Leader's acknowledged update LSN from the last heartbeat."),
		applied: reg.CounterVec("tsens_repl_applied_records_total",
			"Replicated WAL records applied to the passive server, by kind.", "kind"),
		applySecs: reg.Histogram("tsens_repl_apply_seconds",
			"Latency of applying one replicated record (mirror append + replay).", nil),
		heartbeats: reg.Counter("tsens_repl_heartbeats_total", "Heartbeats received from the leader."),
		resets: reg.Counter("tsens_repl_resets_total",
			"Checkpoint resets and scorches: times local replicated state was discarded and resynced."),
	}
}

// kindLabel names a serve WAL record kind for the applied-records counter.
// Mirrors the serve layer's kind bytes, which are fixed on-disk format.
func kindLabel(kind byte) string {
	switch kind {
	case 'U':
		return "updates"
	case 'Q':
		return "register"
	case 'X':
		return "unregister"
	case 'R':
		return "release"
	}
	return "unknown"
}

// retryAfterSeconds estimates how long a writer should back off before the
// follower catches up: observed lag times the mean per-record apply time,
// clamped to [1, 30] whole seconds. A freshly started follower has no
// samples yet (and a test-built one may have no histogram at all) — both
// take the explicit zero-sample path to the 1s floor, matching the old
// hard-coded header, instead of multiplying by a 0/0 mean.
func retryAfterSeconds(lag int64, applySecs *obs.Histogram) int {
	if lag <= 0 {
		return 1
	}
	if applySecs == nil || applySecs.Count() == 0 {
		return 1 // no applies observed yet: nothing to extrapolate from
	}
	mean := applySecs.Sum() / float64(applySecs.Count())
	est := math.Ceil(float64(lag) * mean)
	if est < 1 || math.IsNaN(est) {
		return 1
	}
	if est > 30 {
		return 30
	}
	return int(est)
}
