package replica

import (
	"bufio"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tsens/internal/serve"
	"tsens/internal/serve/wal"
)

// LeaderOptions configures a Leader.
type LeaderOptions struct {
	// Lineage overrides the randomly drawn lineage ID (tests only).
	Lineage string
	// Lease, when set, makes the leader hold (and keep renewing) a lease:
	// Acquire at start, Renew in the background, and Fence the server the
	// moment a renewal fails — the double-leader guard. nil runs leaderless
	// (a standalone durable server that merely ships its WAL).
	Lease  LeaseStore
	Holder string
	TTL    time.Duration
	// Fault wraps every accepted connection (tests).
	Fault *NetFault
	// BatchMax caps records read per shipping iteration (default 512).
	BatchMax int
	// HeartbeatEvery is the idle heartbeat cadence (default 1s).
	HeartbeatEvery time.Duration
	// WriteTimeout bounds one frame write to a follower; a follower too
	// slow to drain its socket is dropped rather than allowed to park the
	// shipping goroutine (default 5s). It reconnects and resumes — or
	// resyncs from a checkpoint if pruning overtook it.
	WriteTimeout time.Duration
}

func (o LeaderOptions) withDefaults() LeaderOptions {
	if o.BatchMax == 0 {
		o.BatchMax = 512
	}
	if o.HeartbeatEvery == 0 {
		o.HeartbeatEvery = time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.TTL == 0 {
		o.TTL = 3 * time.Second
	}
	return o
}

// Leader ships a durable server's WAL record stream to followers. One
// Leader per process; every accepted connection gets its own shipping
// goroutine reading the segment files directly (no per-follower buffers —
// a slow follower can never block Append or another follower).
type Leader struct {
	srv     *serve.Server
	log     *wal.Log
	opts    LeaderOptions
	lineage string
	term    int64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	m leaderMetrics

	done chan struct{}
	wg   sync.WaitGroup
}

// NewLeader wraps a durable leading server. With opts.Lease set the lease
// is acquired here — an error (ErrLeaseHeld) means someone else leads and
// this process must not.
func NewLeader(srv *serve.Server, opts LeaderOptions) (*Leader, error) {
	opts = opts.withDefaults()
	log := srv.WAL()
	if log == nil {
		return nil, fmt.Errorf("replica: leader requires a durable server (Options.WALDir)")
	}
	lineage := opts.Lineage
	if lineage == "" {
		var b [8]byte
		_, _ = crand.Read(b[:])
		lineage = hex.EncodeToString(b[:])
	}
	ld := &Leader{
		srv:     srv,
		log:     log,
		opts:    opts,
		lineage: lineage,
		conns:   make(map[net.Conn]struct{}),
		m:       newLeaderMetrics(srv.Metrics()),
		done:    make(chan struct{}),
	}
	if opts.Lease != nil {
		holder := opts.Holder
		if holder == "" {
			holder = lineage
		}
		term, err := opts.Lease.Acquire(holder, opts.TTL)
		if err != nil {
			return nil, err
		}
		ld.term = term
		ld.wg.Add(1)
		go ld.renewLoop(holder, term)
	}
	return ld, nil
}

// Lineage returns the leader's lineage ID (one per activation).
func (ld *Leader) Lineage() string { return ld.lineage }

// Term returns the lease term this leader acquired (0 when leaderless).
func (ld *Leader) Term() int64 { return ld.term }

// Serve accepts follower connections on ln until Close. Blocking, like
// http.Serve.
func (ld *Leader) Serve(ln net.Listener) error {
	ld.mu.Lock()
	if ld.closed {
		ld.mu.Unlock()
		ln.Close()
		return fmt.Errorf("replica: leader closed")
	}
	ld.ln = ln
	ld.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-ld.done:
				return nil
			default:
				return err
			}
		}
		wc := ld.opts.Fault.Wrap(c)
		ld.mu.Lock()
		if ld.closed {
			ld.mu.Unlock()
			wc.Close()
			return nil
		}
		ld.conns[wc] = struct{}{}
		ld.mu.Unlock()
		ld.wg.Add(1)
		go func() {
			defer ld.wg.Done()
			defer func() {
				wc.Close()
				ld.mu.Lock()
				delete(ld.conns, wc)
				ld.mu.Unlock()
			}()
			ld.ship(wc)
		}()
	}
}

// Close stops accepting, drops every follower, releases the lease (when a
// graceful shutdown still holds it), and waits for the goroutines.
func (ld *Leader) Close() {
	ld.shutdown()
	ld.wg.Wait()
	if ld.opts.Lease != nil && ld.srv.WAL() != nil {
		holder := ld.opts.Holder
		if holder == "" {
			holder = ld.lineage
		}
		_ = ld.opts.Lease.Release(holder, ld.term)
	}
}

func (ld *Leader) shutdown() {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	if ld.closed {
		return
	}
	ld.closed = true
	close(ld.done)
	if ld.ln != nil {
		ld.ln.Close()
	}
	for c := range ld.conns {
		c.Close()
	}
}

// renewLoop keeps the lease alive; the moment it cannot, the server is
// fenced BEFORE the shutdown drops followers — no acknowledgment can race
// past a lost lease.
func (ld *Leader) renewLoop(holder string, term int64) {
	defer ld.wg.Done()
	t := time.NewTicker(ld.opts.TTL / 3)
	defer t.Stop()
	for {
		select {
		case <-ld.done:
			return
		case <-t.C:
			if err := ld.opts.Lease.Renew(holder, term, ld.opts.TTL); err != nil {
				ld.srv.Fence(err)
				ld.shutdown()
				return
			}
		}
	}
}

// ship streams records to one follower: handshake, then an endless loop of
// read-durable-records → frame → send, falling back to a reset checkpoint
// whenever the follower's position was pruned out from under it, and to
// heartbeats when fully caught up.
func (ld *Leader) ship(c net.Conn) {
	ld.m.followers.Add(1)
	defer ld.m.followers.Add(-1)
	_ = c.SetReadDeadline(time.Now().Add(ld.opts.WriteTimeout))
	typ, payload, err := readFrame(c)
	if err != nil || typ != frameHello {
		return
	}
	var hello helloMsg
	if err := json.Unmarshal(payload, &hello); err != nil {
		return
	}
	_ = c.SetReadDeadline(time.Time{})

	bw := bufio.NewWriterSize(c, 64<<10)
	send := func(typ byte, payload []byte) error {
		_ = c.SetWriteDeadline(time.Now().Add(ld.opts.WriteTimeout))
		return writeFrame(bw, typ, payload)
	}
	flush := func() error {
		_ = c.SetWriteDeadline(time.Now().Add(ld.opts.WriteTimeout))
		return bw.Flush()
	}
	if err := writeJSONFrame(bw, frameWelcome, welcomeMsg{Lineage: ld.lineage}); err != nil {
		return
	}

	gen, idx := hello.Gen, hello.Idx
	reset := hello.Lineage != ld.lineage
	var sentCkpt int64 = -1
	for {
		select {
		case <-ld.done:
			return
		default:
		}
		if reset {
			// The follower's history is unusable (different lineage, or its
			// position was pruned): ship the newest checkpoint with the reset
			// flag and resume the stream at its generation.
			data, cg, ok, err := ld.log.LatestCheckpoint()
			if err != nil || !ok {
				return // a durable server always has one; treat absence as fatal
			}
			if err := send(frameCheckpoint, encodeCheckpointFrame(true, cg, data)); err != nil {
				return
			}
			ld.m.checkpoints.Inc()
			gen, idx = cg, 0
			sentCkpt = cg
			reset = false
		}
		if cg, ok, _ := ld.log.CheckpointGen(); ok && cg > sentCkpt && gen >= cg {
			// A newer checkpoint fully behind the follower's position: ship it
			// non-reset so the follower can prune its mirror like we pruned.
			if data, g, ok2, err := ld.log.LatestCheckpoint(); err == nil && ok2 && g >= cg {
				if err := send(frameCheckpoint, encodeCheckpointFrame(false, g, data)); err != nil {
					return
				}
				ld.m.checkpoints.Inc()
				sentCkpt = g
			}
		}
		notify := ld.log.DurableNotify() // before ReadFrom: no missed wakeups
		ngen, nidx, n, err := ld.log.ReadFrom(gen, idx, ld.opts.BatchMax, func(g, i int64, kind byte, data []byte) error {
			return send(frameRecord, encodeRecord(g, i, kind, data))
		})
		if errors.Is(err, wal.ErrPruned) {
			reset = true
			continue
		}
		if err != nil {
			return
		}
		gen, idx = ngen, nidx
		if n > 0 {
			// A heartbeat rides along with every batch so a catching-up
			// follower keeps a fresh view of how far behind it still is.
			if send(frameHeartbeat, encodeHeartbeat(gen, idx, ld.srv.Stats().Appended)) != nil || flush() != nil {
				return
			}
			ld.m.records.Add(int64(n))
			ld.m.heartbeats.Inc()
			continue
		}
		// Caught up: tell the follower where the durable frontier is, then
		// wait for it to move.
		if send(frameHeartbeat, encodeHeartbeat(gen, idx, ld.srv.Stats().Appended)) != nil || flush() != nil {
			return
		}
		ld.m.heartbeats.Inc()
		select {
		case <-notify:
		case <-time.After(ld.opts.HeartbeatEvery):
		case <-ld.done:
			return
		}
	}
}
