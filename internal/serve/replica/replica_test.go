package replica

import (
	"errors"
	"math/rand"
	"net"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tsens/internal/mechanism"
	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/serve"
	"tsens/internal/workload"
)

// --- fixtures (mirroring internal/serve's test helpers) ---

func testDB(t *testing.T, size, dom int, seed int64, names ...string) *relation.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var rels []*relation.Relation
	for _, name := range names {
		rows := make([]relation.Tuple, size)
		for i := range rows {
			rows[i] = relation.Tuple{int64(rng.Intn(dom)), int64(rng.Intn(dom))}
		}
		r, err := relation.New(name, []string{name + "_x", name + "_y"}, rows)
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, r)
	}
	db, err := relation.NewDatabase(rels...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func pathQuery(t *testing.T) *query.Query {
	t.Helper()
	q, err := query.New("path", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func serveOpts(dir string) serve.Options {
	return serve.Options{Parallelism: 2, BatchSize: 4, Shards: 2, WALDir: dir}
}

// cluster bundles one leader and one follower wired over loopback TCP.
type cluster struct {
	srv      *serve.Server
	leader   *Leader
	addr     string
	follower *Follower
}

func startCluster(t *testing.T, db *relation.Database, ldOpts LeaderOptions, flOpts FollowerOptions) *cluster {
	t.Helper()
	leaderDir := t.TempDir()
	srv, err := serve.New(db, serveOpts(leaderDir))
	if err != nil {
		t.Fatal(err)
	}
	ld, err := NewLeader(srv, ldOpts)
	if err != nil {
		srv.CloseNow()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ld.Serve(ln)

	if flOpts.Dir == "" {
		flOpts.Dir = t.TempDir()
	}
	flOpts.Addr = ln.Addr().String()
	flOpts.Serve = serveOpts(flOpts.Dir)
	fl, err := StartFollower(flOpts)
	if err != nil {
		ld.Close()
		srv.CloseNow()
		t.Fatal(err)
	}
	return &cluster{srv: srv, leader: ld, addr: flOpts.Addr, follower: fl}
}

// waitFollowerEpoch polls until the follower's passive server exists and has
// published epoch lsn.
func waitFollowerEpoch(t *testing.T, f *Follower, lsn int64) *serve.Server {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if srv := f.Server(); srv != nil && srv.Epoch() >= lsn {
			return srv
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("follower never reached epoch %d", lsn)
	return nil
}

func registerPath(t *testing.T, srv *serve.Server) string {
	t.Helper()
	id, _, err := srv.Register(serve.QueryConfig{
		ID:      "pq",
		Query:   pathQuery(t),
		Private: "R2",
		Release: mechanism.TSensDPConfig{Epsilon: 1, Bound: 64},
		Budget:  5,
		Drift:   1000, // huge gate: later releases replay the cached one
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// --- lease stores ---

func TestMemLeaseSemantics(t *testing.T) {
	var nowNS atomic.Int64
	clock := func() time.Time { return time.Unix(0, nowNS.Load()) }
	m := NewMemLease(clock)

	term, err := m.Acquire("a", time.Second)
	if err != nil || term != 1 {
		t.Fatalf("first acquire: term %d, err %v", term, err)
	}
	if _, err := m.Acquire("b", time.Second); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("contending acquire: %v, want ErrLeaseHeld", err)
	}
	if err := m.Renew("a", term, time.Second); err != nil {
		t.Fatalf("renew: %v", err)
	}
	if err := m.Renew("a", term+7, time.Second); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("renew under wrong term: %v, want ErrLeaseHeld", err)
	}
	// Re-acquire by the same holder is allowed and bumps the term.
	if term2, err := m.Acquire("a", time.Second); err != nil || term2 != 2 {
		t.Fatalf("re-acquire: term %d, err %v", term2, err)
	}

	nowNS.Add(int64(2 * time.Second)) // expire
	if err := m.Renew("a", 2, time.Second); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("renew of expired lease: %v, want ErrLeaseHeld", err)
	}
	term3, err := m.Acquire("b", time.Second)
	if err != nil || term3 != 3 {
		t.Fatalf("acquire after expiry: term %d, err %v", term3, err)
	}
	// The deposed holder can no longer renew even inside b's window.
	if err := m.Renew("a", 2, time.Second); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("deposed renew: %v, want ErrLeaseHeld", err)
	}
	if err := m.Release("b", term3); err != nil {
		t.Fatal(err)
	}
	if term4, err := m.Acquire("a", time.Second); err != nil || term4 != 4 {
		t.Fatalf("acquire after release: term %d, err %v", term4, err)
	}
}

func TestFileLeaseRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lease")
	fl := NewFileLease(path)
	term, err := fl.Acquire("a", time.Minute)
	if err != nil || term != 1 {
		t.Fatalf("acquire: term %d, err %v", term, err)
	}
	if _, err := fl.Acquire("b", time.Minute); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("contending acquire: %v, want ErrLeaseHeld", err)
	}
	if err := fl.Renew("a", term, time.Minute); err != nil {
		t.Fatalf("renew: %v", err)
	}
	got, ok, err := fl.Get()
	if err != nil || !ok || got.Holder != "a" || got.Term != term {
		t.Fatalf("get: %+v ok=%v err=%v", got, ok, err)
	}
	if err := fl.Release("a", term); err != nil {
		t.Fatal(err)
	}
	// Released = expired: the next holder acquires at the next term, and the
	// store survives a fresh handle (it is a file, not process state).
	term2, err := NewFileLease(path).Acquire("b", time.Minute)
	if err != nil || term2 != term+1 {
		t.Fatalf("acquire after release: term %d, err %v", term2, err)
	}
}

// --- replication ---

// TestReplicationCatchUp is the tentpole happy path: a follower joining an
// already-running leader resyncs from the reset checkpoint, tails the live
// stream, and serves views identical to the leader's — without ever running
// ahead of the leader's durable horizon.
func TestReplicationCatchUp(t *testing.T) {
	db := testDB(t, 12, 4, 3, "R1", "R2", "R3")
	cl := startCluster(t, db, LeaderOptions{}, FollowerOptions{})
	defer func() { cl.follower.Close(); cl.leader.Close(); cl.srv.CloseNow() }()

	id := registerPath(t, cl.srv)
	stream := workload.UpdateStream(db, 40, 0.4, 7)
	_, to, err := cl.srv.Append(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}
	rel, err := cl.srv.Release(id, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}

	fsrv := waitFollowerEpoch(t, cl.follower, to)
	lv, err := cl.srv.View(id)
	if err != nil {
		t.Fatal(err)
	}
	fv, err := fsrv.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if fv.Epoch != lv.Epoch || fv.Count != lv.Count || fv.LS.LS != lv.LS.LS {
		t.Fatalf("follower view (epoch %d, %d, %d) != leader view (epoch %d, %d, %d)",
			fv.Epoch, fv.Count, fv.LS.LS, lv.Epoch, lv.Count, lv.LS.LS)
	}
	if fa, la := fsrv.Stats().Appended, cl.srv.Stats().Appended; fa > la {
		t.Fatalf("follower appended %d ran ahead of leader %d", fa, la)
	}
	// The replicated ledger carries the leader's spend: the follower knows ε
	// was spent (it must survive a promotion), visible via its stats.
	if fs := fsrv.Stats(); fs.Queries != 1 {
		t.Fatalf("follower stats %+v, want the registered query", fs)
	}
	_ = rel
}

// TestFollowerReconnectResume partitions the replication link mid-stream and
// heals it: the follower reconnects, handshakes with its mirror position,
// and resumes the SAME lineage (no reset) to full catch-up.
func TestFollowerReconnectResume(t *testing.T) {
	db := testDB(t, 12, 4, 3, "R1", "R2", "R3")
	nf := &NetFault{}
	cl := startCluster(t, db, LeaderOptions{Fault: nf, HeartbeatEvery: 20 * time.Millisecond},
		FollowerOptions{Fault: nf, ReconnectMin: 5 * time.Millisecond, ReconnectMax: 50 * time.Millisecond})
	defer func() { cl.follower.Close(); cl.leader.Close(); cl.srv.CloseNow() }()

	id := registerPath(t, cl.srv)
	stream := workload.UpdateStream(db, 40, 0.4, 7)
	_, to1, err := cl.srv.Append(stream[:20])
	if err != nil {
		t.Fatal(err)
	}
	waitFollowerEpoch(t, cl.follower, to1)

	nf.Partition(true)
	// Writes while the link is down: the leader keeps acknowledging (its
	// durability does not depend on followers), the follower lags.
	if _, _, err := cl.srv.Append(stream[20:]); err != nil {
		t.Fatal(err)
	}
	lsn := cl.srv.Stats().Appended
	if err := cl.srv.WaitApplied(lsn); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let reads fail and the loop hit backoff
	nf.Partition(false)

	fsrv := waitFollowerEpoch(t, cl.follower, lsn)
	lv, _ := cl.srv.View(id)
	fv, err := fsrv.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if fv.Epoch != lv.Epoch || fv.Count != lv.Count || fv.LS.LS != lv.LS.LS {
		t.Fatalf("post-heal follower view (epoch %d, %d, %d) != leader (epoch %d, %d, %d)",
			fv.Epoch, fv.Count, fv.LS.LS, lv.Epoch, lv.Count, lv.LS.LS)
	}
}

// TestLeaderFencedOnLeaseLoss: the double-leader guard. When the lease store
// moves on (here: expiry plus a competing acquire), the old leader's renewal
// fails and it fences itself — every subsequent acknowledgment attempt
// returns ErrFenced.
func TestLeaderFencedOnLeaseLoss(t *testing.T) {
	var nowNS atomic.Int64
	nowNS.Store(time.Now().UnixNano())
	clock := func() time.Time { return time.Unix(0, nowNS.Load()) }
	store := NewMemLease(clock)

	db := testDB(t, 10, 4, 1, "R1", "R2", "R3")
	dir := t.TempDir()
	srv, err := serve.New(db, serveOpts(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.CloseNow()
	ld, err := NewLeader(srv, LeaderOptions{Lease: store, Holder: "old", TTL: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ld.Close()

	// Jump the injected clock past expiry and install a successor; the old
	// leader's next renew (every TTL/3 of real time) sees the newer term.
	nowNS.Add(int64(time.Second))
	if _, err := store.Acquire("new", time.Minute); err != nil {
		t.Fatal(err)
	}
	stream := workload.UpdateStream(db, 4, 0.4, 7)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, err := srv.Append(stream[:1])
		if errors.Is(err, serve.ErrFenced) {
			break
		}
		if err != nil {
			t.Fatalf("append failed with %v before the fence landed", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("leader never fenced after losing its lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPromoteFailover kills the leader outright and promotes the follower:
// the promoted server carries the exact epoch, views, and spent ε the dead
// leader acknowledged — including replaying the identical cached noisy
// release — and starts shipping under a fresh lineage.
func TestPromoteFailover(t *testing.T) {
	db := testDB(t, 12, 4, 3, "R1", "R2", "R3")
	store := NewMemLease(nil)
	cl := startCluster(t, db, LeaderOptions{Lease: store, Holder: "leader", TTL: time.Minute}, FollowerOptions{})

	id := registerPath(t, cl.srv)
	stream := workload.UpdateStream(db, 40, 0.4, 7)
	_, to, err := cl.srv.Append(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}
	rel1, err := cl.srv.Release(id, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	before, err := cl.srv.View(id)
	if err != nil {
		t.Fatal(err)
	}
	waitFollowerEpoch(t, cl.follower, to)

	// SIGKILL equivalent: graceful Close releases the lease (a crashed leader
	// would instead age out of it); CloseNow abandons the server state.
	cl.leader.Close()
	cl.srv.CloseNow()

	promoted, err := cl.follower.Promote(PromoteOptions{
		MinLSN: to, Lease: store, Holder: "promoted", TTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer promoted.Close()
	st := promoted.Stats()
	if st.Appended != to || st.Epoch != to {
		t.Fatalf("promoted to appended=%d epoch=%d, want %d", st.Appended, st.Epoch, to)
	}
	after, err := promoted.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch != before.Epoch || after.Count != before.Count || after.LS.LS != before.LS.LS {
		t.Fatalf("promoted view (epoch %d, %d, %d), want (%d, %d, %d)",
			after.Epoch, after.Count, after.LS.LS, before.Epoch, before.Count, before.LS.LS)
	}
	// ε-single-writer across the failover: the spend survived, the cached
	// noisy value replays bit-identically, nothing is spent twice.
	rel2, err := promoted.Release(id, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Fresh || rel2.TotalSpent != rel1.TotalSpent || rel2.Run.Noisy != rel1.Run.Noisy {
		t.Fatalf("promoted release %+v, want replay of noisy=%g at total %v", rel2, rel1.Run.Noisy, rel1.TotalSpent)
	}
	// The promoted server can lead: fresh lineage, accepts appends.
	ld2, err := NewLeader(promoted, LeaderOptions{Lease: store, Holder: "promoted", TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer ld2.Close()
	if _, to2, err := promoted.Append(stream[:4]); err != nil {
		t.Fatal(err)
	} else if err := promoted.WaitApplied(to2); err != nil {
		t.Fatal(err)
	}
	// Closing the (already promoted) follower must not tear the state down.
	cl.follower.Close()
	if _, err := promoted.View(id); err != nil {
		t.Fatalf("follower.Close tore down the promoted server: %v", err)
	}
}

// TestPromoteRefusesShortHorizon: a follower whose replicated state stops
// short of the acknowledged horizon refuses to promote — promoting would
// silently void acknowledged writes and resurrect spent ε.
func TestPromoteRefusesShortHorizon(t *testing.T) {
	db := testDB(t, 12, 4, 3, "R1", "R2", "R3")
	nf := &NetFault{}
	cl := startCluster(t, db, LeaderOptions{Fault: nf}, FollowerOptions{Fault: nf})
	defer func() { cl.leader.Close(); cl.srv.CloseNow() }()

	registerPath(t, cl.srv)
	stream := workload.UpdateStream(db, 24, 0.4, 7)
	_, to1, err := cl.srv.Append(stream[:12])
	if err != nil {
		t.Fatal(err)
	}
	waitFollowerEpoch(t, cl.follower, to1)

	nf.Partition(true)
	_, to2, err := cl.srv.Append(stream[12:])
	if err != nil {
		t.Fatal(err)
	}
	cl.leader.Close()
	cl.srv.CloseNow()

	_, err = cl.follower.Promote(PromoteOptions{MinLSN: to2})
	if err == nil || !strings.Contains(err.Error(), "refusing promotion") {
		t.Fatalf("promotion with a short horizon: %v, want refusal", err)
	}
	cl.follower.Close()
}

// TestLeaderRestartResetsFollower restarts the leader process from its own
// WAL directory on the same address: the fresh lineage forces the follower
// to discard its mirror and resync from the reset checkpoint — and the
// resynced views still match.
func TestLeaderRestartResetsFollower(t *testing.T) {
	db := testDB(t, 12, 4, 3, "R1", "R2", "R3")
	leaderDir := t.TempDir()
	srv, err := serve.New(db, serveOpts(leaderDir))
	if err != nil {
		t.Fatal(err)
	}
	ld, err := NewLeader(srv, LeaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go ld.Serve(ln)

	fdir := t.TempDir()
	fl, err := StartFollower(FollowerOptions{
		Dir: fdir, Addr: addr, Serve: serveOpts(fdir),
		ReconnectMin: 5 * time.Millisecond, ReconnectMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	id := registerPath(t, srv)
	stream := workload.UpdateStream(db, 24, 0.4, 7)
	_, to1, err := srv.Append(stream[:12])
	if err != nil {
		t.Fatal(err)
	}
	waitFollowerEpoch(t, fl, to1)

	// Leader process dies and restarts from its own directory.
	ld.Close()
	srv.CloseNow()
	srv2, err := serve.New(nil, serveOpts(leaderDir))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.CloseNow()
	ld2, err := NewLeader(srv2, LeaderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ld2.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	go ld2.Serve(ln2)

	_, to2, err := srv2.Append(stream[12:])
	if err != nil {
		t.Fatal(err)
	}
	if err := srv2.WaitApplied(to2); err != nil {
		t.Fatal(err)
	}
	fsrv := waitFollowerEpoch(t, fl, to2)
	lv, _ := srv2.View(id)
	fv, err := fsrv.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if fv.Epoch != lv.Epoch || fv.Count != lv.Count || fv.LS.LS != lv.LS.LS {
		t.Fatalf("resynced follower view (epoch %d, %d, %d) != restarted leader (epoch %d, %d, %d)",
			fv.Epoch, fv.Count, fv.LS.LS, lv.Epoch, lv.Count, lv.LS.LS)
	}
}
