package replica

// Network fault injection for the replication transport: the difftest
// cluster matrix wraps both ends' connections in a NetFault so a seeded
// script can partition a follower, delay shipping, or drop a write at any
// step — and then verify the invariants still hold (the follower either
// catches up or resyncs from a checkpoint; it never serves state its disk
// does not carry).

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrPartitioned is the error injected connections fail with while the
// fault is active.
var ErrPartitioned = errors.New("replica: injected partition")

// NetFault injects faults into replication connections. Wrap both the
// dialer (follower side) and the accepted conns (leader side) to make a
// partition symmetric. The zero value injects nothing.
type NetFault struct {
	mu          sync.Mutex
	partitioned bool
	delay       time.Duration
	dropWrites  int
}

// Partition starts or heals a partition: while active, every wrapped
// connection's reads and writes fail and new dials are refused, so both
// sides observe a broken pipe — exactly what a switch failure looks like.
func (nf *NetFault) Partition(on bool) {
	nf.mu.Lock()
	nf.partitioned = on
	nf.mu.Unlock()
}

// Delay makes every wrapped write sleep d first (one-way latency).
func (nf *NetFault) Delay(d time.Duration) {
	nf.mu.Lock()
	nf.delay = d
	nf.mu.Unlock()
}

// DropWrites silently discards the next n wrapped writes (the bytes vanish
// mid-pipe). The reader's length-prefixed framing then desyncs and the
// connection is torn down — the recovery path under test is the reconnect
// handshake, not the drop itself.
func (nf *NetFault) DropWrites(n int) {
	nf.mu.Lock()
	nf.dropWrites = n
	nf.mu.Unlock()
}

func (nf *NetFault) broken() error {
	nf.mu.Lock()
	defer nf.mu.Unlock()
	if nf.partitioned {
		return ErrPartitioned
	}
	return nil
}

// Wrap returns c with this fault injected. A nil NetFault returns c
// unchanged.
func (nf *NetFault) Wrap(c net.Conn) net.Conn {
	if nf == nil {
		return c
	}
	return &faultConn{Conn: c, nf: nf}
}

// Dial wraps dial with the partition check (a partitioned network refuses
// new connections too, not just existing ones).
func (nf *NetFault) Dial(dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		if nf != nil {
			if err := nf.broken(); err != nil {
				return nil, fmt.Errorf("dial %s: %w", addr, err)
			}
		}
		c, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return nf.Wrap(c), nil
	}
}

type faultConn struct {
	net.Conn
	nf *NetFault
}

func (fc *faultConn) Read(p []byte) (int, error) {
	if err := fc.nf.broken(); err != nil {
		return 0, err
	}
	n, err := fc.Conn.Read(p)
	if err == nil {
		if berr := fc.nf.broken(); berr != nil {
			// The partition landed while we were blocked in Read: the bytes
			// are already ours, but fail the NEXT interaction loudly.
			return n, nil
		}
	}
	return n, err
}

func (fc *faultConn) Write(p []byte) (int, error) {
	fc.nf.mu.Lock()
	if fc.nf.partitioned {
		fc.nf.mu.Unlock()
		return 0, ErrPartitioned
	}
	delay := fc.nf.delay
	drop := false
	if fc.nf.dropWrites > 0 {
		fc.nf.dropWrites--
		drop = true
	}
	fc.nf.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		return len(p), nil // the pipe ate it
	}
	return fc.Conn.Write(p)
}
