// Package replica replicates a durable serving process (internal/serve)
// across machines: a leader ships its WAL record stream — sealed segments
// plus the live tail, never past its durable frontier — over a
// length-prefixed stream protocol to followers, which mirror every record
// into their own WAL directory (wal.Mirror) and apply it live through the
// ordinary recovery replay (Server.ApplyReplicated). A follower therefore
// serves wait-free epoch reads from state its own disk could reproduce,
// and promotion is not a special code path: it closes the passive server
// and runs the PR 5 recovery (serve.New on the mirrored directory)
// verbatim.
//
// DP releases stay leader-only — the ε-ledger has exactly one writer — and
// a leader that can no longer prove it holds the lease fences itself
// (serve.Server.Fence) before a successor can acquire it, so two processes
// never both acknowledge spends. docs/SERVING.md "Replication & failover"
// has the failure-mode table.
//
// Wire protocol: frames of [u32 length][type byte][payload] (no per-frame
// checksum — TCP already checksums the pipe, and the follower re-frames
// every record with a CRC when it lands in its mirror). Types:
//
//	'H' hello      follower→leader: JSON {lineage, gen, idx} — resume point
//	'W' welcome    leader→follower: JSON {lineage} — the leader's lineage ID
//	'C' checkpoint leader→follower: [flags][uvarint gen][payload]; flag bit
//	               0 = reset (wipe the mirror and rebuild from this)
//	'r' record     leader→follower: [uvarint gen][uvarint idx][kind][data]
//	'h' heartbeat  leader→follower: [uvarint gen][uvarint idx] — durable
//	               frontier, sent when there is nothing to ship
//
// Positions are (segment generation, record index) pairs and are
// meaningful only within one lineage: every leader activation draws a
// fresh lineage ID, and a follower whose stored lineage differs wipes its
// mirror and resyncs from a reset checkpoint — the cure for the diverged
// tail an old leader's directory may carry after a failover.
package replica

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

const (
	frameHello      = 'H'
	frameWelcome    = 'W'
	frameCheckpoint = 'C'
	frameRecord     = 'r'
	frameHeartbeat  = 'h'

	// maxNetFrame bounds one wire frame; matches the WAL's frame bound plus
	// protocol overhead.
	maxNetFrame = 1<<30 + 64

	ckptFlagReset = 1
)

func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(1+len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxNetFrame {
		return 0, nil, fmt.Errorf("replica: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

type helloMsg struct {
	Lineage string `json:"lineage"`
	Gen     int64  `json:"gen"`
	Idx     int64  `json:"idx"`
}

type welcomeMsg struct {
	Lineage string `json:"lineage"`
}

func writeJSONFrame(w io.Writer, typ byte, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, typ, data)
}

func encodeRecord(gen, idx int64, kind byte, data []byte) []byte {
	buf := binary.AppendUvarint(make([]byte, 0, 16+len(data)), uint64(gen))
	buf = binary.AppendUvarint(buf, uint64(idx))
	buf = append(buf, kind)
	return append(buf, data...)
}

func decodeRecord(payload []byte) (gen, idx int64, kind byte, data []byte, err error) {
	g, used := binary.Uvarint(payload)
	if used <= 0 {
		return 0, 0, 0, nil, fmt.Errorf("replica: record frame: truncated gen")
	}
	payload = payload[used:]
	i, used := binary.Uvarint(payload)
	if used <= 0 || len(payload) == used {
		return 0, 0, 0, nil, fmt.Errorf("replica: record frame: truncated idx/kind")
	}
	payload = payload[used:]
	return int64(g), int64(i), payload[0], payload[1:], nil
}

func encodeCheckpointFrame(reset bool, gen int64, data []byte) []byte {
	var flags byte
	if reset {
		flags |= ckptFlagReset
	}
	buf := append(make([]byte, 0, 16+len(data)), flags)
	buf = binary.AppendUvarint(buf, uint64(gen))
	return append(buf, data...)
}

func decodeCheckpointFrame(payload []byte) (reset bool, gen int64, data []byte, err error) {
	if len(payload) < 2 {
		return false, 0, nil, fmt.Errorf("replica: checkpoint frame: truncated")
	}
	flags := payload[0]
	g, used := binary.Uvarint(payload[1:])
	if used <= 0 {
		return false, 0, nil, fmt.Errorf("replica: checkpoint frame: truncated gen")
	}
	return flags&ckptFlagReset != 0, int64(g), payload[1+used:], nil
}

func encodePosition(gen, idx int64) []byte {
	buf := binary.AppendUvarint(make([]byte, 0, 16), uint64(gen))
	return binary.AppendUvarint(buf, uint64(idx))
}

func decodePosition(payload []byte) (gen, idx int64, err error) {
	g, used := binary.Uvarint(payload)
	if used <= 0 {
		return 0, 0, fmt.Errorf("replica: position: truncated gen")
	}
	i, used2 := binary.Uvarint(payload[used:])
	if used2 <= 0 {
		return 0, 0, fmt.Errorf("replica: position: truncated idx")
	}
	return int64(g), int64(i), nil
}

// encodeHeartbeat extends the position payload with the leader's
// acknowledged update LSN, the reference point for follower staleness.
// decodePosition ignores trailing bytes, so old followers read the first
// two uvarints and stay compatible.
func encodeHeartbeat(gen, idx, appended int64) []byte {
	buf := binary.AppendUvarint(make([]byte, 0, 24), uint64(gen))
	buf = binary.AppendUvarint(buf, uint64(idx))
	return binary.AppendUvarint(buf, uint64(appended))
}

// decodeHeartbeat reads a heartbeat payload; a two-uvarint payload from an
// old leader decodes with appended = 0 (meaning "unknown").
func decodeHeartbeat(payload []byte) (gen, idx, appended int64, err error) {
	g, used := binary.Uvarint(payload)
	if used <= 0 {
		return 0, 0, 0, fmt.Errorf("replica: heartbeat: truncated gen")
	}
	payload = payload[used:]
	i, used2 := binary.Uvarint(payload)
	if used2 <= 0 {
		return 0, 0, 0, fmt.Errorf("replica: heartbeat: truncated idx")
	}
	payload = payload[used2:]
	if len(payload) == 0 {
		return int64(g), int64(i), 0, nil
	}
	a, used3 := binary.Uvarint(payload)
	if used3 <= 0 {
		return 0, 0, 0, fmt.Errorf("replica: heartbeat: truncated appended LSN")
	}
	return int64(g), int64(i), int64(a), nil
}
