package faultfs_test

import (
	"errors"
	"testing"

	"tsens/internal/serve/faultfs"
	"tsens/internal/serve/wal"
)

func openLog(t *testing.T, dir string, fs *faultfs.FS, syncEvery int) *wal.Log {
	t.Helper()
	l, err := wal.Open(dir, wal.Options{FS: fs, SyncEvery: syncEvery})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func replayKinds(t *testing.T, l *wal.Log) []string {
	t.Helper()
	var got []string
	if err := l.Replay(func(kind byte, data []byte) error {
		got = append(got, string(data))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

// TestSyncFaultRefusesAcknowledgment: a failed fsync surfaces from Append
// (the record was NOT acknowledged), the log goes sticky, and a simulated
// crash confirms the refused record really was losable — reopening yields
// only the records acknowledged before the fault.
func TestSyncFaultRefusesAcknowledgment(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil)
	l := openLog(t, dir, fs, 1)
	if err := l.StartAppending(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append('U', []byte("acked")); err != nil {
		t.Fatal(err)
	}

	fs.FailNthSync(1)
	if err := l.Append('U', []byte("lost")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append with failing fsync: %v, want ErrInjected", err)
	}
	fs.Disarm()
	if err := l.Append('U', []byte("after")); err == nil {
		t.Fatal("append after a failed fsync succeeded; the log must go sticky")
	}

	// The machine dies; the abandoned Log's unsynced bytes evaporate.
	if err := fs.CrashAndRestore(); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, dir, fs, 1)
	defer l2.Close()
	got := replayKinds(t, l2)
	if len(got) != 1 || got[0] != "acked" {
		t.Fatalf("recovered %q, want only the acknowledged record", got)
	}
}

// TestShortWriteTornTailRecovered: a write that lands only half its frame
// surfaces an error, and an ordinary reopen truncates the torn tail and
// recovers every record acknowledged before it.
func TestShortWriteTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil)
	l := openLog(t, dir, fs, 1)
	if err := l.StartAppending(); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"a", "b"} {
		if err := l.Append('U', []byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	fs.FailNthWrite(1)
	if err := l.Append('U', []byte("torn-record")); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("short write: %v, want ErrInjected", err)
	}

	l2 := openLog(t, dir, fs, 1)
	defer l2.Close()
	got := replayKinds(t, l2)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("recovered %q, want the two acknowledged records", got)
	}
	// The reopened log keeps working where the old one died.
	if err := l2.StartAppending(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Append('U', []byte("c")); err != nil {
		t.Fatal(err)
	}
}

// TestCrashDropsUnsyncedSuffix: with batched fsyncs (SyncEvery > 1) a crash
// loses exactly the unsynced suffix — and an explicit Sync moves the durable
// frontier so a later crash loses nothing.
func TestCrashDropsUnsyncedSuffix(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New(nil)
	l := openLog(t, dir, fs, 100)
	if err := l.StartAppending(); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"a", "b", "c"} {
		if err := l.Append('U', []byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.CrashAndRestore(); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, dir, fs, 100)
	if got := replayKinds(t, l2); len(got) != 0 {
		t.Fatalf("unsynced records survived the crash: %q", got)
	}
	if err := l2.StartAppending(); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"x", "y"} {
		if err := l2.Append('U', []byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.CrashAndRestore(); err != nil {
		t.Fatal(err)
	}
	l3 := openLog(t, dir, fs, 100)
	defer l3.Close()
	if got := replayKinds(t, l3); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("synced records lost by the crash: %q", got)
	}
}
