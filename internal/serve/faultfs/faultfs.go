// Package faultfs wraps the WAL's filesystem seam (wal.FS) with injectable
// faults: a failed fsync, a short write, and a whole-machine crash that
// rolls every file back to its last fsynced prefix. It exists so the
// difftest harness and the WAL's own error-path tests can exercise the
// durability claims — "Append never acknowledges a record a crash can
// lose" — against the failures those claims are about, not just clean
// shutdowns.
package faultfs

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"tsens/internal/serve/wal"
)

// ErrInjected is the root of every fault this package injects; tests match
// it with errors.Is.
var ErrInjected = errors.New("faultfs: injected fault")

type fileState struct {
	size   int64 // bytes written (including unsynced)
	synced int64 // bytes guaranteed to survive CrashAndRestore
}

// FS wraps an inner wal.FS (nil = the real OS) and tracks, per file, how
// many bytes have been fsynced — the prefix a simulated crash preserves.
// Safe for concurrent use; one FS instance is meant to be shared across the
// "reboots" of a single simulated machine so the tracking survives reopen.
type FS struct {
	inner wal.FS

	mu         sync.Mutex
	files      map[string]*fileState
	syncsLeft  int // countdown to an injected fsync failure; -1 = disarmed
	writesLeft int // countdown to an injected short write; -1 = disarmed
}

// New returns a fault-injecting FS over inner (nil = wal.OSFS).
func New(inner wal.FS) *FS {
	if inner == nil {
		inner = wal.OSFS{}
	}
	return &FS{inner: inner, files: make(map[string]*fileState), syncsLeft: -1, writesLeft: -1}
}

// FailNthSync arms a failure on the n-th upcoming data-file fsync (1 = the
// very next). The failed fsync does NOT advance the file's durable prefix,
// so a subsequent CrashAndRestore drops the bytes it claimed to lose.
// Directory fsyncs are not counted. One-shot; re-arm for another.
func (f *FS) FailNthSync(n int) {
	f.mu.Lock()
	f.syncsLeft = n
	f.mu.Unlock()
}

// FailNthWrite arms a short write on the n-th upcoming data-file Write
// (1 = next): half the buffer reaches the file, then the write errors.
// One-shot.
func (f *FS) FailNthWrite(n int) {
	f.mu.Lock()
	f.writesLeft = n
	f.mu.Unlock()
}

// Disarm cancels any pending injected fault.
func (f *FS) Disarm() {
	f.mu.Lock()
	f.syncsLeft, f.writesLeft = -1, -1
	f.mu.Unlock()
}

// CrashAndRestore simulates losing the machine: every tracked file is
// truncated back to its last successfully fsynced size — the bytes a real
// kernel could still have been holding in the page cache vanish. The caller
// abandons (does not Close) whatever Log/Mirror was open over this FS and
// reopens from the directory afterwards.
func (f *FS) CrashAndRestore() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for path, st := range f.files {
		if st.size == st.synced {
			continue
		}
		if err := f.inner.Truncate(path, st.synced); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				delete(f.files, path)
				continue
			}
			return fmt.Errorf("faultfs: crash restore %s: %w", path, err)
		}
		st.size = st.synced
	}
	return nil
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }
func (f *FS) ReadDir(name string) ([]os.DirEntry, error)   { return f.inner.ReadDir(name) }
func (f *FS) ReadFile(name string) ([]byte, error)         { return f.inner.ReadFile(name) }
func (f *FS) OpenDir(name string) (wal.File, error)        { return f.inner.OpenDir(name) }

func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	if st, ok := f.files[oldpath]; ok {
		f.files[newpath] = st
		delete(f.files, oldpath)
	}
	f.mu.Unlock()
	return nil
}

func (f *FS) Remove(name string) error {
	if err := f.inner.Remove(name); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.files, name)
	f.mu.Unlock()
	return nil
}

func (f *FS) Truncate(name string, size int64) error {
	if err := f.inner.Truncate(name, size); err != nil {
		return err
	}
	f.mu.Lock()
	if st, ok := f.files[name]; ok {
		if st.size > size {
			st.size = size
		}
		if st.synced > size {
			st.synced = size
		}
	}
	f.mu.Unlock()
	return nil
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	st, ok := f.files[name]
	if !ok || flag&os.O_TRUNC != 0 {
		st = &fileState{}
		f.files[name] = st
	}
	if !ok && flag&os.O_APPEND != 0 {
		// A pre-existing file opened for append (a Mirror resuming): its
		// current contents are the durable baseline.
		if raw, rerr := f.inner.ReadFile(name); rerr == nil {
			st.size, st.synced = int64(len(raw)), int64(len(raw))
		}
	}
	f.mu.Unlock()
	return &file{fs: f, path: name, inner: inner}, nil
}

type file struct {
	fs    *FS
	path  string
	inner wal.File
}

func (w *file) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	short := false
	if w.fs.writesLeft > 0 {
		w.fs.writesLeft--
		short = w.fs.writesLeft == 0
		if short {
			w.fs.writesLeft = -1
		}
	}
	w.fs.mu.Unlock()
	if short {
		n, _ := w.inner.Write(p[:len(p)/2])
		w.track(n)
		return n, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjected, n, len(p))
	}
	n, err := w.inner.Write(p)
	w.track(n)
	return n, err
}

func (w *file) track(n int) {
	if n <= 0 {
		return
	}
	w.fs.mu.Lock()
	if st, ok := w.fs.files[w.path]; ok {
		st.size += int64(n)
	}
	w.fs.mu.Unlock()
}

func (w *file) Sync() error {
	w.fs.mu.Lock()
	fail := false
	if w.fs.syncsLeft > 0 {
		w.fs.syncsLeft--
		fail = w.fs.syncsLeft == 0
		if fail {
			w.fs.syncsLeft = -1
		}
	}
	w.fs.mu.Unlock()
	if fail {
		return fmt.Errorf("%w: fsync %s", ErrInjected, w.path)
	}
	if err := w.inner.Sync(); err != nil {
		return err
	}
	w.fs.mu.Lock()
	if st, ok := w.fs.files[w.path]; ok && st.synced < st.size {
		st.synced = st.size
	}
	w.fs.mu.Unlock()
	return nil
}

func (w *file) Close() error { return w.inner.Close() }
