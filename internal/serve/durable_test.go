package serve

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsens/internal/core"
	"tsens/internal/csvio"
	"tsens/internal/mechanism"
	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/workload"
)

// TestServeDurableRestartRoundTrip is the headline recovery property: a
// server killed without warning (CloseNow abandons all in-memory state)
// reopens from its WAL directory with every registered query at its exact
// epoch and view, the exact ε spent, and the cached release replaying the
// identical noisy value — no budget amnesia, no lost acknowledged write.
func TestServeDurableRestartRoundTrip(t *testing.T) {
	db := testDB(t, 12, 4, 3, "R1", "R2", "R3")
	dir := t.TempDir()
	opts := Options{Parallelism: 2, BatchSize: 4, WALDir: dir}
	srv, err := New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := srv.Register(QueryConfig{
		ID:      "pq",
		Query:   pathQuery(t),
		Private: "R2",
		Release: mechanism.TSensDPConfig{Epsilon: 1, Bound: 64},
		Budget:  5,
		Drift:   1000, // huge gate: every release after the first replays
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.UpdateStream(db, 30, 0.4, 7)
	_, to, err := srv.Append(stream)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}
	before, err := srv.View(id)
	if err != nil {
		t.Fatal(err)
	}
	rel1, err := srv.Release(id, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !rel1.Fresh || rel1.TotalSpent != 1 {
		t.Fatalf("first release: %+v", rel1)
	}
	srv.CloseNow() // crash: all in-memory state gone

	re, err := New(nil, opts) // nil db: the WAL directory is authoritative
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Stats()
	if !st.WAL || st.Epoch != to || st.Appended != to {
		t.Fatalf("recovered stats %+v, want epoch=appended=%d", st, to)
	}
	after, err := re.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch != before.Epoch || after.Count != before.Count || after.LS.LS != before.LS.LS {
		t.Fatalf("recovered view (epoch %d, %d, %d), want (%d, %d, %d)",
			after.Epoch, after.Count, after.LS.LS, before.Epoch, before.Count, before.LS.LS)
	}
	cur := replayPrefix(t, db, stream, len(stream))
	want, err := core.LocalSensitivity(pathQuery(t), cur, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Count != want.Count || after.LS.LS != want.LS {
		t.Fatalf("recovered view (%d, %d), scratch (%d, %d)", after.Count, after.LS.LS, want.Count, want.LS)
	}
	// The ε spent survived, and the cached release replays the identical
	// noisy value without spending again.
	rel2, err := re.Release(id, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if rel2.Fresh || rel2.TotalSpent != 1 || rel2.Run.Noisy != rel1.Run.Noisy {
		t.Fatalf("recovered release %+v, want replay of noisy=%g at total 1", rel2, rel1.Run.Noisy)
	}
	// And the server keeps serving: appends work and advance the epoch.
	if _, to2, err := re.Append(stream[:3]); err != nil {
		t.Fatal(err)
	} else if err := re.WaitApplied(to2); err != nil {
		t.Fatal(err)
	}
}

// TestServeDurableBudgetNoDoubleSpend: the bug this PR fixes. Pre-WAL, a
// restart reset the ledger and let an analyst re-spend the same ε; now the
// spends survive and the budget stays exhausted across restarts.
func TestServeDurableBudgetNoDoubleSpend(t *testing.T) {
	db := testDB(t, 10, 4, 1, "R1", "R2", "R3")
	dir := t.TempDir()
	opts := Options{Parallelism: 2, WALDir: dir}
	srv, err := New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = srv.Register(QueryConfig{
		ID:      "pq",
		Query:   pathQuery(t),
		Private: "R2",
		Release: mechanism.TSensDPConfig{Epsilon: 1, Bound: 64},
		Budget:  2,
		Drift:   -1, // negative gate: every release is fresh and spends
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2; i++ {
		if _, err := srv.Release("pq", rng); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	if _, err := srv.Release("pq", rng); !errors.Is(err, mechanism.ErrBudgetExhausted) {
		t.Fatalf("third release: %v, want budget exhausted", err)
	}
	srv.CloseNow()

	re, err := New(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Release("pq", rng); !errors.Is(err, mechanism.ErrBudgetExhausted) {
		t.Fatalf("post-restart release: %v, want budget exhausted (no amnesia)", err)
	}
	infos := re.Queries()
	if len(infos) != 1 || infos[0].Spent != 2 || infos[0].Releases != 2 {
		t.Fatalf("recovered accounting: %+v", infos)
	}
}

// TestServeDurableRegistrationChurn: registrations and unregistrations
// journal and replay in order, including re-registering a previously
// dropped ID (which must come back with a fresh ledger).
func TestServeDurableRegistrationChurn(t *testing.T) {
	db := testDB(t, 10, 4, 2, "R1", "R2", "R3")
	dir := t.TempDir()
	opts := Options{Parallelism: 2, WALDir: dir}
	srv, err := New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := func(s *Server, id string, budget float64) {
		t.Helper()
		cfg := QueryConfig{ID: id, Query: pathQuery(t)}
		if budget > 0 {
			cfg.Private = "R2"
			cfg.Release = mechanism.TSensDPConfig{Epsilon: 1, Bound: 64}
			cfg.Budget = budget
		}
		if _, _, err := s.Register(cfg); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	reg(srv, "a", 3)
	reg(srv, "b", 0)
	if _, err := srv.Release("a", rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if err := srv.Unregister("a"); err != nil {
		t.Fatal(err)
	}
	reg(srv, "a", 3) // same ID, fresh ledger
	tri, d := triangleQuery(t)
	cfg := QueryConfig{ID: "c", Query: tri}
	cfg.Options.Decomposition = d
	if _, _, err := srv.Register(cfg); err != nil {
		t.Fatal(err)
	}
	srv.CloseNow()

	re, err := New(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	infos := re.Queries()
	if len(infos) != 3 {
		t.Fatalf("recovered %d queries, want 3: %+v", len(infos), infos)
	}
	for _, info := range infos {
		switch info.ID {
		case "a":
			if info.Spent != 0 { // the pre-unregister spend must not leak in
				t.Fatalf("re-registered %q inherited spent ε: %+v", info.ID, info)
			}
		case "b", "c":
		default:
			t.Fatalf("unexpected recovered query %+v", info)
		}
	}
	// The cyclic query must have recovered with its decomposition: its view
	// answers (a Register without bags would have failed outright, but make
	// sure it is being served, not a tombstone).
	if _, err := re.View("c"); err != nil {
		t.Fatal(err)
	}
}

// TestServeDurableCheckpointTruncation: with an aggressive checkpoint
// cadence a long update stream leaves a WAL directory whose recovery starts
// from a recent checkpoint (DurableEpoch advances) and whose old segments
// are pruned, while recovery remains exact.
func TestServeDurableCheckpointTruncation(t *testing.T) {
	db := testDB(t, 12, 4, 9, "R1", "R2", "R3")
	dir := t.TempDir()
	opts := Options{Parallelism: 2, BatchSize: 8, CheckpointEvery: 16, WALDir: dir}
	srv, err := New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Register(QueryConfig{ID: "pq", Query: pathQuery(t)}); err != nil {
		t.Fatal(err)
	}
	stream := workload.UpdateStream(db, 200, 0.4, 13)
	for off := 0; off < len(stream); off += 5 {
		end := off + 5
		if end > len(stream) {
			end = len(stream)
		}
		if _, _, err := srv.Append(stream[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.WaitApplied(int64(len(stream))); err != nil {
		t.Fatal(err)
	}
	srv.Close() // graceful: final checkpoint covers everything
	st := srv.Stats()
	if st.DurableEpoch != int64(len(stream)) {
		t.Fatalf("durable epoch %d after graceful close, want %d", st.DurableEpoch, len(stream))
	}
	// Old generations must be gone: one live segment, one checkpoint.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs, cks int
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".seg"):
			segs++
		case strings.HasSuffix(e.Name(), ".ckpt"):
			cks++
		}
	}
	if segs > 1 || cks != 1 {
		t.Fatalf("%d segments and %d checkpoints after close, want ≤1 and 1", segs, cks)
	}

	re, err := New(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	v, err := re.View("pq")
	if err != nil {
		t.Fatal(err)
	}
	cur := replayPrefix(t, db, stream, len(stream))
	want, err := core.LocalSensitivity(pathQuery(t), cur, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != int64(len(stream)) || v.Count != want.Count || v.LS.LS != want.LS {
		t.Fatalf("recovered (epoch %d: %d, %d), scratch (%d, %d)", v.Epoch, v.Count, v.LS.LS, want.Count, want.LS)
	}
}

// TestServeDurableStringValues: a WALCodec with a string dictionary
// round-trips non-integer data through crash and recovery (the dictionary
// is rebuilt by re-encoding the textual WAL, so codes may differ — answers
// must not).
func TestServeDurableStringValues(t *testing.T) {
	loader := csvio.NewLoader()
	mk := func(name, a, b string, rows ...[2]string) string {
		var sb strings.Builder
		sb.WriteString(a + "," + b + "\n")
		for _, r := range rows {
			sb.WriteString(r[0] + "," + r[1] + "\n")
		}
		return sb.String()
	}
	dataDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dataDir, "R1.csv"),
		[]byte(mk("R1", "a", "b", [2]string{"ann", "x"}, [2]string{"bob", "x"}, [2]string{"ann", "y"})), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dataDir, "R2.csv"),
		[]byte(mk("R2", "b", "c", [2]string{"x", "red"}, [2]string{"y", "blue"})), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := loader.LoadDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := query.New("pq", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	srv, err := New(db, Options{WALDir: dir, WALCodec: loader})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Register(QueryConfig{ID: "pq", Query: q2}); err != nil {
		t.Fatal(err)
	}
	// Append updates whose values include a string never seen in the CSVs:
	// it is interned into the live dictionary and must survive via the WAL's
	// textual encoding.
	enc := func(s string) int64 {
		v, err := loader.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	ups := []relation.Update{
		{Rel: "R1", Row: relation.Tuple{enc("carol"), enc("x")}, Insert: true},
		{Rel: "R2", Row: relation.Tuple{enc("x"), enc("green")}, Insert: true},
		{Rel: "R1", Row: relation.Tuple{enc("bob"), enc("x")}, Insert: false},
	}
	if _, to, err := srv.Append(ups); err != nil {
		t.Fatal(err)
	} else if err := srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}
	before, err := srv.View("pq")
	if err != nil {
		t.Fatal(err)
	}
	srv.CloseNow()

	// Restart as a fresh process would: an empty dictionary, recovered
	// purely from the WAL directory.
	fresh := csvio.NewLoader()
	re, err := New(nil, Options{WALDir: dir, WALCodec: fresh})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	after, err := re.View("pq")
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch != before.Epoch || after.Count != before.Count || after.LS.LS != before.LS.LS {
		t.Fatalf("recovered string-valued view (epoch %d: %d, %d), want (epoch %d: %d, %d)",
			after.Epoch, after.Count, after.LS.LS, before.Epoch, before.Count, before.LS.LS)
	}
	// Cross-check against a from-scratch solve over the mutated CSVs, in a
	// dictionary of its own.
	sl := csvio.NewLoader()
	scratch, err := sl.LoadDir(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	se := func(s string) int64 {
		v, err := sl.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	cur := replayPrefix(t, scratch, []relation.Update{
		{Rel: "R1", Row: relation.Tuple{se("carol"), se("x")}, Insert: true},
		{Rel: "R2", Row: relation.Tuple{se("x"), se("green")}, Insert: true},
		{Rel: "R1", Row: relation.Tuple{se("bob"), se("x")}, Insert: false},
	}, 3)
	want, err := core.LocalSensitivity(q2, cur, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Count != want.Count || after.LS.LS != want.LS {
		t.Fatalf("recovered (%d, %d), scratch (%d, %d)", after.Count, after.LS.LS, want.Count, want.LS)
	}
}
