package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"tsens/internal/core"
	"tsens/internal/mechanism"
	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/workload"
)

// starQuery3 is partitionable on the default routing column: variable A
// sits at column 0 of every relation.
func starQuery3(t *testing.T) *query.Query {
	t.Helper()
	q, err := query.New("star", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "X"}},
		{Relation: "R2", Vars: []string{"A", "Y"}},
		{Relation: "R3", Vars: []string{"A", "Z"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestServeShardedStarDifferential drives a partitioned query (one
// sub-session per shard) through a replayed stream and checks every
// published view — count, LS, and the per-epoch sensitivity snapshot —
// against the from-scratch solver on the exact log prefix.
func TestServeShardedStarDifferential(t *testing.T) {
	db := testDB(t, 30, 6, 51, "R1", "R2", "R3")
	stream := workload.UpdateStream(db, 60, 0.4, 52)
	srv, err := New(db, Options{Shards: 4, Parallelism: 2, BatchSize: 4, DriftFraction: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	id, v0, err := srv.Register(QueryConfig{
		Query:   starQuery3(t),
		Private: "R2",
		Release: mechanism.TSensDPConfig{Epsilon: 1, Bound: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v0.Parts != 4 {
		t.Fatalf("star query opened %d partitions, want 4", v0.Parts)
	}
	if infos := srv.Queries(); len(infos) != 1 || infos[0].PartitionVar != "A" || infos[0].Parts != 4 {
		t.Fatalf("listing does not report the partitioning: %+v", infos)
	}
	for off := 0; off < len(stream); off += 6 {
		end := off + 6
		if end > len(stream) {
			end = len(stream)
		}
		_, to, err := srv.Append(stream[off:end])
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.WaitApplied(to); err != nil {
			t.Fatal(err)
		}
		v, err := srv.View(id)
		if err != nil {
			t.Fatal(err)
		}
		cur := replayPrefix(t, db, stream, int(v.Epoch))
		want, err := core.LocalSensitivity(starQuery3(t), cur, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if v.Count != want.Count || v.LS.LS != want.LS {
			t.Fatalf("epoch %d: served (%d, %d), scratch (%d, %d)", v.Epoch, v.Count, v.LS.LS, want.Count, want.LS)
		}
		for rel, tr := range want.PerRelation {
			if got := v.LS.PerRelation[rel]; got == nil || got.Sensitivity != tr.Sensitivity {
				t.Fatalf("epoch %d: %s sensitivity %v, scratch %d", v.Epoch, rel, got, tr.Sensitivity)
			}
		}
		// DriftFraction<0 refreshes the sensitivity snapshot every epoch;
		// the merged, sorted vector must match the from-scratch one.
		if v.SensEpoch != v.Epoch {
			t.Fatalf("sens snapshot at %d, view at %d", v.SensEpoch, v.Epoch)
		}
		fn, err := core.TupleSensitivities(starQuery3(t), cur, "R2", core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rows := cur.Relation("R2").Rows
		wantSens := make([]int64, len(rows))
		for i, row := range rows {
			wantSens[i] = fn(row)
		}
		sortInts(wantSens)
		if len(wantSens) != len(v.Sens) {
			t.Fatalf("epoch %d: snapshot %d entries, scratch %d", v.Epoch, len(v.Sens), len(wantSens))
		}
		for i := range wantSens {
			if v.Sens[i] != wantSens[i] {
				t.Fatalf("epoch %d: sens[%d] = %d, scratch %d", v.Epoch, i, v.Sens[i], wantSens[i])
			}
		}
	}
}

// TestServeShardWatermarkJoin is the hostile-scheduler test for the
// consistent-cut rule: with one shard's writer paused mid-batch, the other
// shard's watermark advances (WaitShards gives read-your-writes against
// healthy shards) but nothing readable — Epoch, Stats.Epoch, views — may
// reflect the half-applied round. A torn read across shards must never be
// observable.
func TestServeShardWatermarkJoin(t *testing.T) {
	db := testDB(t, 20, 8, 61, "R1", "R2", "R3")
	srv, err := New(db, Options{Shards: 2, Parallelism: 2, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	id, v0, err := srv.Register(QueryConfig{Query: starQuery3(t)})
	if err != nil {
		t.Fatal(err)
	}
	if v0.Parts != 2 {
		t.Fatalf("parts %d, want 2", v0.Parts)
	}

	// One insert owned by each shard.
	var ups []relation.Update
	for k := int64(0); len(ups) < 2; k++ {
		up := relation.Update{Rel: "R1", Row: relation.Tuple{k, 1}, Insert: true}
		if len(ups) == srv.ShardOf(up) {
			ups = append(ups, up)
		}
	}
	slowShard := srv.ShardOf(ups[1])
	fastShard := srv.ShardOf(ups[0])

	// Pause the slow shard's writer at the start of its next round. The
	// gate is released on every exit path (deferred before srv.Close in
	// LIFO order): a failed assertion while the shard is parked must not
	// leave Close barriered on the unfinished round.
	gateCh := make(chan struct{})
	var gateOnce sync.Once
	releaseGate := func() { gateOnce.Do(func() { close(gateCh) }) }
	defer releaseGate()
	entered := make(chan struct{}, 1)
	gate := func(int) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-gateCh
	}
	srv.shards[slowShard].gate.Store(&gate)

	from, to, err := srv.Append(ups)
	if err != nil {
		t.Fatal(err)
	}
	_ = from
	<-entered // the round started and the slow shard is parked

	// The healthy shard finishes its slice of the round: its watermark
	// reaches the cut, and waiting on just that shard returns.
	if err := srv.WaitShards([]int{fastShard}, to); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Watermarks[fastShard] < to {
		t.Fatalf("fast shard watermark %d, want ≥ %d", st.Watermarks[fastShard], to)
	}
	if st.Watermarks[slowShard] != 0 {
		t.Fatalf("paused shard watermark %d, want 0", st.Watermarks[slowShard])
	}
	// Nothing readable reflects the torn round: the published epoch is
	// still the joined cut (0), and the view serves the pre-round state.
	if got := srv.Epoch(); got != 0 {
		t.Fatalf("epoch advanced to %d with a shard mid-batch", got)
	}
	if st.Epoch != 0 {
		t.Fatalf("stats epoch %d, want 0", st.Epoch)
	}
	v, err := srv.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != 0 || v.Count != v0.Count {
		t.Fatalf("view (%d, %d) observed mid-round, want the epoch-0 view (%d, %d)", v.Epoch, v.Count, 0, v0.Count)
	}
	// Release the shard: the round completes and the joined cut catches up.
	releaseGate()
	if err := srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}
	v, err = srv.View(id)
	if err != nil {
		t.Fatal(err)
	}
	cur := replayPrefix(t, db, []relation.Update{ups[0], ups[1]}, 2)
	want, err := core.LocalSensitivity(starQuery3(t), cur, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Epoch != to || v.Count != want.Count || v.LS.LS != want.LS {
		t.Fatalf("final view (%d, %d, %d), scratch (%d, %d, %d)", v.Epoch, v.Count, v.LS.LS, to, want.Count, want.LS)
	}
}

// TestServeRegisterWhileDraining registers queries while a feeder hammers
// the update log: registration snapshots, solves off-lock, and catches up,
// so every returned initial view must still be exact for the consistent
// cut it names. Run with -race.
func TestServeRegisterWhileDraining(t *testing.T) {
	db := testDB(t, 30, 5, 71, "R1", "R2", "R3")
	stream := workload.UpdateStream(db, 240, 0.3, 72)
	srv, err := New(db, Options{Shards: 4, Parallelism: 2, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan struct{})
	var feedErr error
	go func() {
		defer close(done)
		for off := 0; off < len(stream); off += 5 {
			end := off + 5
			if end > len(stream) {
				end = len(stream)
			}
			if _, _, feedErr = srv.Append(stream[off:end]); feedErr != nil {
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	type reg struct {
		id   string
		star bool
		v    *View
	}
	var regs []reg
	for i := 0; i < 6; i++ {
		cfg := QueryConfig{Query: starQuery3(t)}
		star := i%2 == 0
		if !star {
			cfg = QueryConfig{Query: pathQuery(t)} // unpartitionable: fallback shard
		}
		id, v, err := srv.Register(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if star && v.Parts != 4 {
			t.Fatalf("star registration got %d parts", v.Parts)
		}
		if !star && v.Parts != 1 {
			t.Fatalf("path registration got %d parts", v.Parts)
		}
		regs = append(regs, reg{id, star, v})
	}
	<-done
	if feedErr != nil {
		t.Fatal(feedErr)
	}
	if err := srv.WaitApplied(int64(len(stream))); err != nil {
		t.Fatal(err)
	}

	check := func(star bool, v *View) {
		t.Helper()
		cur := replayPrefix(t, db, stream, int(v.Epoch))
		q := pathQuery(t)
		if star {
			q = starQuery3(t)
		}
		want, err := core.LocalSensitivity(q, cur, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if v.Count != want.Count || v.LS.LS != want.LS {
			t.Fatalf("epoch %d (star=%v): served (%d, %d), scratch (%d, %d)",
				v.Epoch, star, v.Count, v.LS.LS, want.Count, want.LS)
		}
	}
	for _, r := range regs {
		check(r.star, r.v) // the initial view, at its registration cut
		v, err := srv.View(r.id)
		if err != nil {
			t.Fatal(err)
		}
		if v.Epoch != int64(len(stream)) {
			t.Fatalf("final view at epoch %d, want %d", v.Epoch, len(stream))
		}
		check(r.star, v) // the final view, all updates folded
	}
}

// TestServeConcurrentReleaseNoDoubleSpend: concurrent Release calls on one
// query must never jointly overdraw the ledger — with a budget of exactly
// one fresh release and no drift, one caller spends ε and every other
// caller replays for free.
func TestServeConcurrentReleaseNoDoubleSpend(t *testing.T) {
	db := testDB(t, 30, 3, 81, "R1", "R2", "R3")
	srv, err := New(db, Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	id, _, err := srv.Register(QueryConfig{
		Query:   pathQuery(t),
		Private: "R2",
		Release: mechanism.TSensDPConfig{Epsilon: 1, Bound: 50},
		Budget:  1,
		Drift:   1e9, // counts never drift: replays stay free forever
	})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		fresh int
		spent float64
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 5; i++ {
				res, err := srv.Release(id, rng)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				mu.Lock()
				if res.Fresh {
					fresh++
				}
				spent += res.Spent
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if fresh != 1 || spent != 1 {
		t.Fatalf("%d fresh releases spending %g, want exactly 1 spending 1", fresh, spent)
	}
	infos := srv.Queries()
	if len(infos) != 1 || infos[0].Spent != 1 || infos[0].Releases != 1 {
		t.Fatalf("ledger drifted from the model: %+v", infos)
	}
}

func TestServePartitionColumnValidation(t *testing.T) {
	db := testDB(t, 4, 3, 91, "R1", "R2")
	if _, err := New(db, Options{PartitionColumns: map[string]int{"NOPE": 0}}); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := New(db, Options{PartitionColumns: map[string]int{"R1": 2}}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	srv, err := New(db, Options{Shards: 2, PartitionColumns: map[string]int{"R1": 1, "R2": 0}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// R1(A,B), R2(B,C) joins on B: partitionable exactly because the
	// configured columns align on it.
	q, err := query.New("p2", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, v, err := srv.Register(QueryConfig{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if v.Parts != 2 {
		t.Fatalf("aligned columns gave %d parts, want 2", v.Parts)
	}
	want, err := core.LocalSensitivity(q, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Count != want.Count || v.LS.LS != want.LS {
		t.Fatalf("partitioned view (%d, %d), scratch (%d, %d)", v.Count, v.LS.LS, want.Count, want.LS)
	}
}
