package serve

// The sharded write path. The update log is partitioned by relation+key
// hash into N shards; each shard owns a long-lived writer goroutine and the
// subset of per-query session state reachable from its partition:
//
//   - For a partitionable query (a variable at every atom's routing column
//     — incremental.PartitionVar), shard i owns a sub-session over hash
//     partition i of the database and receives exactly the updates routed
//     there, so patches for disjoint keys proceed in parallel.
//   - A query that cannot be partitioned keeps one full session, owned by a
//     single designated shard (stable hash of its ID) and fed the whole
//     batch — correctness never depends on partitionability, only speed.
//
// Two drain disciplines share this file (Options.AsyncEpochs):
//
// Coordinated mode: the coordinator hands every shard the same round (a
// validated batch plus its routes and target cut), waits for all of them on
// the round's barrier, and only then merges and publishes per-query views
// at the new epoch.
//
// Async mode (the default): there is no per-round barrier. The coordinator
// still cuts rounds at common LSN boundaries (so every shard's fold history
// is the same sequence of cuts), but pushes each round onto every shard's
// unbounded FIFO queue and moves on. Each shard drains its queue at its own
// pace; after folding a round it publishes, for every unit it owns, a new
// entry in the unit's version ring stamped with the round's cut, advances
// its watermark, and tries to move the published epoch up to the joined
// minimum of all watermarks. Readers assemble a consistent cut at read time
// (Server.assemble): per unit, the newest ring entry at-or-below the join,
// tightened to one common stamp — because stamps are round cuts and rings
// are dense (one entry per processed round), the assembled vector is exactly
// the consistent cut at that stamp. A stalled shard therefore stalls only
// the queries whose units it owns; everything else keeps advancing
// (TestServeAsyncStalledShardIndependence), and nothing readable through
// View/Count/LS//epoch ever reflects a cut some relevant shard has not
// reached (TestServeShardWatermarkJoin pauses a shard mid-batch and asserts
// exactly that).

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tsens/internal/core"
	"tsens/internal/incremental"
	"tsens/internal/obs"
	"tsens/internal/par"
	"tsens/internal/relation"
)

// ringDepth bounds each unit's version ring. A shard may run this many
// rounds ahead of a query's joined cut before the exact entry a reader
// needs is evicted; past that, reads fall back to the query's last
// assembled view (an older but still consistent cut) until the join
// catches back into the ring. Bounded skew stays perfectly fresh; an
// unbounded stall degrades to staleness, never to a torn read.
const ringDepth = 16

// round is one drain step: the validated batch, the same batch bucketed per
// owning shard (computed once by the coordinator), and the epoch the batch
// advances the server to. All shards process the same round. In coordinated
// mode wg is the barrier the coordinator waits on before publishing views
// for cut; in async mode pending counts the shards still to fold it, and
// the last one finishes the round's traces.
type round struct {
	valid  []relation.Update
	routed [][]relation.Update
	cut    int64
	wg     sync.WaitGroup

	// Async-mode trace plumbing: the batch's in-flight traces plus the
	// coordinator-side timings, stamped by whichever shard drains the round
	// last (pending hits zero).
	pending    atomic.Int32
	btraces    []*obs.ActiveTrace
	start      time.Time
	routeStart time.Time
	routeD     time.Duration
	batchLen   int
}

// shard owns one slice of the write path: a writer goroutine (run), the
// units whose session state it patches, and the watermark of log entries it
// has folded.
type shard struct {
	id    int
	units []*unit
	patch *obs.Histogram // per-round patch latency for this shard

	// umu guards units: Register/Unregister mutate the slice while (in
	// async mode) a round may be in flight, so the worker snapshots it
	// under umu at the start of every round.
	umu sync.Mutex

	// mu/cond/q is the shard's round queue: unbounded FIFO so a slow shard
	// never backpressures the coordinator onto its siblings (a bounded
	// queue would re-couple the shards the async mode exists to decouple).
	// Memory is bounded by the acknowledged backlog, which Append already
	// admits.
	mu      sync.Mutex
	cond    *sync.Cond
	q       []*round
	qclosed bool

	// applying marks a round in flight between next() handing it out and
	// the end of that run-loop iteration, so Register/Unregister can tell
	// an empty queue apart from a truly quiescent shard. Guarded by mu.
	applying bool

	// retired holds units stripped by Unregister while the shard was busy;
	// their shared-plan subscriptions are released at the next round top
	// (processTransitions), after the in-flight round that may still step
	// them has finished. Guarded by umu.
	retired []*unit

	// watermark is the LSN through which every entry routed to this shard
	// has been folded into its sessions.
	watermark atomic.Int64

	// gate, when set, runs at the start of every round — a test hook that
	// lets the hostile-scheduler tests pause one shard mid-batch.
	gate atomic.Pointer[func(shard int)]
}

// enqueue pushes one round onto the shard's queue.
func (sh *shard) enqueue(rd *round) {
	sh.mu.Lock()
	sh.q = append(sh.q, rd)
	sh.mu.Unlock()
	sh.cond.Signal()
}

// next blocks for the next queued round, or returns nil once the queue is
// closed and fully drained — queued rounds are already folded into the
// master and (in coordinated mode) barrier-awaited, so they always finish.
func (sh *shard) next() *round {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for len(sh.q) == 0 && !sh.qclosed {
		sh.cond.Wait()
	}
	if len(sh.q) == 0 {
		return nil
	}
	rd := sh.q[0]
	sh.q[0] = nil
	sh.q = sh.q[1:]
	sh.applying = true
	return rd
}

func (sh *shard) closeQueue() {
	sh.mu.Lock()
	sh.qclosed = true
	sh.mu.Unlock()
	sh.cond.Broadcast()
}

// snapshotUnits copies the unit list for one round under umu.
func (sh *shard) snapshotUnits() []*unit {
	sh.umu.Lock()
	units := append([]*unit(nil), sh.units...)
	sh.umu.Unlock()
	return units
}

// unitVersion is one published epoch of one unit: the immutable outputs of
// its session exactly at the round cut `stamp`. Ring entries are published
// only by the unit's owning shard (or by Register before the unit is
// installed) and read lock-free by view assembly.
type unitVersion struct {
	stamp    int64
	count    int64
	res      *core.Result
	rebuilds int
	err      error

	// sens is the unit's sorted per-tuple sensitivity vector over its
	// slice of the private relation, taken at sensEpoch with drift
	// baseline sensCount (both unit-local). Carried over between versions
	// while the unit's count stays within the drift fraction.
	sens      []int64
	sensEpoch int64
	sensCount int64
}

// unit is one patchable piece of one query's session state: partition
// `part` of a partitionable query (part == shard), or the whole session of
// an unpartitionable one (part < 0). count/res/err are the unit's cached
// outputs: written by the owning shard during rounds (or by Register at
// install), read by the coordinator after the barrier in coordinated mode.
type unit struct {
	sq    *servedQuery
	sess  *incremental.Session
	shard int
	part  int

	count int64
	res   *core.Result
	err   error

	// installCut is the cut the unit's session already reflected when
	// Register installed it; queued rounds at or below it are skipped
	// (async mode — their updates were replayed during catch-up).
	installCut int64

	// store is the shared plan store the unit's session is attached to
	// (nil when sharing is off or the adopt failed); pendingStore defers
	// the Adopt to the owning shard's first round past installCut when the
	// shard was busy at install time. Both are handed off through umu:
	// written by Register before the unit joins sh.units, then owned by
	// the shard's loop.
	store        *incremental.PlanStore
	pendingStore *incremental.PlanStore

	// ring holds the unit's recent published versions, ascending by stamp
	// (async mode only; empty in coordinated mode).
	ring atomic.Pointer[[]*unitVersion]
}

// newestVersion returns the ring's newest entry, or nil.
func (u *unit) newestVersion() *unitVersion {
	if r := u.ring.Load(); r != nil && len(*r) > 0 {
		return (*r)[len(*r)-1]
	}
	return nil
}

// versionAt returns the newest ring entry with stamp ≤ cut, or nil when
// the ring holds none (evicted, or the unit was installed past cut).
func (u *unit) versionAt(cut int64) *unitVersion {
	r := u.ring.Load()
	if r == nil {
		return nil
	}
	ring := *r
	i := sort.Search(len(ring), func(i int) bool { return ring[i].stamp > cut })
	if i == 0 {
		return nil
	}
	return ring[i-1]
}

// publishVersion appends the unit's current outputs to its ring, stamped
// with the given cut, and returns the new ring depth. Single-writer
// (owning shard, or Register pre-install): copy-on-write against
// concurrent readers. Eviction keeps the newest ringDepth entries.
func (u *unit) publishVersion(stamp int64, driftFrac float64) int {
	v := &unitVersion{stamp: stamp, count: u.count, res: u.res, err: u.err}
	prev := u.newestVersion()
	if v.err == nil {
		v.rebuilds = u.sess.Rebuilds()
		if u.sq.private != "" {
			if prev != nil && prev.err == nil && prev.sens != nil && prev.rebuilds == v.rebuilds &&
				driftFrac >= 0 && !drifted(v.count, prev.sensCount, driftFrac) {
				v.sens, v.sensEpoch, v.sensCount = prev.sens, prev.sensEpoch, prev.sensCount
			} else if fn, err := u.sess.SensitivityFn(u.sq.private); err != nil {
				v.err = err
			} else {
				var sens []int64
				for _, row := range u.sess.Rows(u.sq.private) {
					sens = append(sens, fn(row))
				}
				sort.Slice(sens, func(i, j int) bool { return sens[i] < sens[j] })
				v.sens, v.sensEpoch, v.sensCount = sens, stamp, v.count
			}
		}
	}
	var old []*unitVersion
	if r := u.ring.Load(); r != nil {
		old = *r
	}
	start := 0
	if len(old) >= ringDepth {
		start = len(old) - ringDepth + 1
	}
	next := make([]*unitVersion, 0, len(old)-start+1)
	next = append(next, old[start:]...)
	next = append(next, v)
	u.ring.Store(&next)
	return len(next)
}

// run is the shard's writer loop: fold the owned units for each round,
// publish their new versions (async), advance the watermark, wake waiters.
func (sh *shard) run(s *Server) {
	defer s.wg.Done()
	epochGauge := s.m.shardEpoch.With(shardLabel(sh.id))
	ringGauge := s.m.ringDepth.With(shardLabel(sh.id))
	for {
		rd := sh.next()
		if rd == nil {
			return
		}
		if gate := sh.gate.Load(); gate != nil {
			(*gate)(sh.id)
		}
		sh.processTransitions(s, rd.cut)
		units := sh.snapshotUnits()
		routed := rd.routed[sh.id]
		start := time.Now()
		// Units attached to the same plan store patch shared tables and
		// step sequentially within one group; all other units share no
		// mutable state (distinct sessions) and fan out exactly as the
		// PR 3 single writer did. Plain par.Do, not pool.Do: a session
		// rebuild inside the patch borrows the pool itself, and pool
		// workers must not block on nested pool waits.
		groups := planGroups(units)
		_ = par.Do(s.opts.Parallelism, len(groups), func(i int) error {
			stepGroup(groups[i], rd, routed)
			return nil
		})
		sh.patch.ObserveSince(start)
		if s.async {
			depth := 0
			publishStart := time.Now()
			for _, u := range units {
				if rd.cut <= u.installCut {
					continue // replayed by Register's catch-up; ring starts at installCut
				}
				if d := u.publishVersion(rd.cut, s.opts.DriftFraction); d > depth {
					depth = d
				}
			}
			s.m.publishView.Observe(time.Since(publishStart).Seconds())
			ringGauge.Set(float64(depth))
		}
		sh.watermark.Store(rd.cut)
		epochGauge.Set(float64(rd.cut))
		if s.async {
			s.advanceEpoch()
			s.refreshViews(units)
			if rd.pending.Add(-1) == 0 {
				s.finishAsyncRound(rd)
			}
			s.notify()
		} else {
			s.notify()
			rd.wg.Done()
		}
		sh.mu.Lock()
		sh.applying = false
		sh.mu.Unlock()
	}
}

// stepGroup applies one round to a group of units subscribed to the same
// plan store (or to a singleton, where it is plain step). With several
// subscribers, updates interleave one at a time across the whole group:
// the store's lead/follower discipline requires every subscriber to sit at
// the same position before the next update's deltas are computed, because
// a partially-sharing session's private delta-joins read shared operand
// tables, which therefore must not have advanced past the update at hand.
func stepGroup(g []*unit, rd *round, routed []relation.Update) {
	if len(g) == 1 {
		g[0].step(rd, routed)
		return
	}
	ups := rd.valid
	if g[0].part >= 0 {
		ups = routed
	}
	live := g[:0:0]
	for _, u := range g {
		if u.err == nil && rd.cut > u.installCut {
			live = append(live, u)
		}
	}
	if len(ups) == 0 || len(live) == 0 {
		return
	}
	one := make([]relation.Update, 1)
	for _, up := range ups {
		one[0] = up
		for _, u := range live {
			if u.err != nil {
				continue // a propagation error poisons the store; peers fail fast below
			}
			if err := u.sess.Apply(one); err != nil {
				u.err = err
			}
		}
	}
	for _, u := range live {
		u.refresh()
	}
}

// step applies the unit's slice of the round — the whole valid batch for a
// fallback unit, the shard's pre-filtered routed slice for a partitioned
// one — and refreshes its cached count/LS. A unit that previously failed
// stays failed (its tombstone view persists); a unit whose partition the
// round does not touch keeps its cached outputs, which still describe its
// unchanged session.
func (u *unit) step(rd *round, routed []relation.Update) {
	if u.err != nil || rd.cut <= u.installCut {
		return
	}
	ups := rd.valid
	if u.part >= 0 {
		ups = routed
	}
	if len(ups) == 0 {
		return
	}
	if err := u.sess.Apply(ups); err != nil {
		u.err = err
		return
	}
	u.refresh()
}

// refresh recomputes the cached count and LS result from the live session.
// Callers hold the unit quiescent (owning shard inside a round, or the
// coordinator/Register under stateMu).
func (u *unit) refresh() {
	if u.err != nil {
		return
	}
	if u.store != nil && !u.sess.Shared() {
		// The session detached itself (bulk batch or automatic rebuild);
		// stop grouping it with its former store mates.
		u.store = nil
	}
	u.count = u.sess.Count()
	u.res, u.err = u.sess.LS()
}

// pcol returns the routing column of a relation: the configured
// Options.PartitionColumns entry, or column 0.
func (s *Server) pcol(rel string) int {
	return s.pcols[rel]
}

// routeOf returns the shard owning an update: the hash of the value at the
// relation's routing column. Updates whose routing column is out of range
// (never the case for schema-validated appends) fall to shard 0.
func (s *Server) routeOf(up relation.Update) int {
	col := s.pcol(up.Rel)
	if col < 0 || col >= len(up.Row) {
		return 0
	}
	return relation.Shard(up.Row[col], len(s.shards))
}

// fallbackShard is the designated owner of an unpartitionable query's
// session: a stable hash of the query ID, so multiple fallback queries
// spread across shards instead of piling onto shard 0.
func (s *Server) fallbackShard(id string) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return relation.Shard(int64(h.Sum64()), len(s.shards))
}

// NumShards returns the number of write-path shards.
func (s *Server) NumShards() int { return len(s.shards) }

// ShardOf returns the shard that owns an update's write path.
func (s *Server) ShardOf(up relation.Update) int { return s.routeOf(up) }

// Owners returns the deduplicated set of shards owning at least one of
// ups, in shard order — the set WaitShards needs for read-your-writes of
// exactly these updates.
func (s *Server) Owners(ups []relation.Update) []int {
	seen := make([]bool, len(s.shards))
	for _, up := range ups {
		seen[s.routeOf(up)] = true
	}
	out := make([]int, 0, len(seen))
	for i, hit := range seen {
		if hit {
			out = append(out, i)
		}
	}
	return out
}

// WaitShards blocks until every listed shard's watermark reaches lsn (all
// their entries below lsn folded) or the server closes. Unlike WaitApplied,
// it does not wait for unrelated shards. In async mode the isolation is
// complete — a healthy shard folds every round of its own queue no matter
// what its siblings do; in coordinated mode entries past the in-flight
// round's cut still wait for the coordinator to start the next round
// (which a stalled shard holds up).
func (s *Server) WaitShards(shards []int, lsn int64) error {
	return s.WaitShardsCtx(context.Background(), shards, lsn)
}

// WaitShardsCtx is WaitShards honoring ctx, so a disconnected ?wait=1
// client releases its waiter. A fenced server fails waiters whose target
// has not been reached with the fence error (see WaitAppliedCtx).
func (s *Server) WaitShardsCtx(ctx context.Context, shards []int, lsn int64) error {
	for _, i := range shards {
		if i < 0 || i >= len(s.shards) {
			return fmt.Errorf("serve: no shard %d (have %d)", i, len(s.shards))
		}
	}
	reached := func() bool {
		for _, i := range shards {
			if s.shards[i].watermark.Load() < lsn {
				return false
			}
		}
		return true
	}
	for {
		if reached() {
			return nil
		}
		if err := s.fenced(); err != nil {
			return err
		}
		s.waitMu.Lock()
		ch := s.epochCh
		s.waitMu.Unlock()
		if ch == nil {
			return fmt.Errorf("serve: server closed before shards reached %d", lsn)
		}
		if reached() {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
