package serve

// The sharded write path. The update log is partitioned by relation+key
// hash into N shards; each shard owns a long-lived writer goroutine and the
// subset of per-query session state reachable from its partition:
//
//   - For a partitionable query (a variable at every atom's routing column
//     — incremental.PartitionVar), shard i owns a sub-session over hash
//     partition i of the database and receives exactly the updates routed
//     there, so patches for disjoint keys proceed in parallel.
//   - A query that cannot be partitioned keeps one full session, owned by a
//     single designated shard (stable hash of its ID) and fed the whole
//     batch — correctness never depends on partitionability, only speed.
//
// Epochs stay consistent cuts: the coordinator hands every shard the same
// round (a validated batch plus its routes and target cut), waits for all
// of them, and only then merges and publishes per-query views at the new
// epoch. Per-shard watermarks advance as soon as a shard finishes its part
// of a round — WaitShards (`POST /updates?wait=1`) keys off them, so
// within the in-flight round a caller's fold acknowledgment never waits on
// a stalled sibling shard (entries past the round's cut do wait for the
// coordinator to start the next round) — and nothing readable through
// View/Count/LS//epoch ever reflects a cut some shard has not reached
// (TestServeShardWatermarkJoin pauses a shard mid-batch and asserts
// exactly that).

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"tsens/internal/core"
	"tsens/internal/incremental"
	"tsens/internal/obs"
	"tsens/internal/par"
	"tsens/internal/relation"
)

// round is one coordinated drain step: the validated batch, the same batch
// bucketed per owning shard (computed once by the coordinator), and the
// epoch the batch advances the server to. All shards process the same
// round; wg is the barrier the coordinator waits on before publishing
// views for cut.
type round struct {
	valid  []relation.Update
	routed [][]relation.Update
	cut    int64
	wg     sync.WaitGroup
}

// shard owns one slice of the write path: a writer goroutine (run), the
// units whose session state it patches, and the watermark of log entries it
// has folded. units is mutated only under the server's stateMu while no
// round is in flight (Register/Unregister), and read by the worker only
// inside rounds, so the two never race.
type shard struct {
	id    int
	in    chan *round
	units []*unit
	patch *obs.Histogram // per-round patch latency for this shard

	// watermark is the LSN through which every entry routed to this shard
	// has been folded into its sessions.
	watermark atomic.Int64

	// gate, when set, runs at the start of every round — a test hook that
	// lets the hostile-scheduler tests pause one shard mid-batch.
	gate atomic.Pointer[func(shard int)]
}

// unit is one patchable piece of one query's session state: partition
// `part` of a partitionable query (part == shard), or the whole session of
// an unpartitionable one (part < 0). count/res/err are the unit's cached
// outputs: written by the owning shard during rounds (or by Register at
// install, under stateMu), read by the coordinator after the barrier.
type unit struct {
	sq    *servedQuery
	sess  *incremental.Session
	shard int
	part  int

	count int64
	res   *core.Result
	err   error
}

// run is the shard's writer loop: patch the owned units for each round,
// advance the watermark, wake waiters, and report to the barrier.
func (sh *shard) run(s *Server) {
	defer s.wg.Done()
	for rd := range sh.in {
		if gate := sh.gate.Load(); gate != nil {
			(*gate)(sh.id)
		}
		units := sh.units
		routed := rd.routed[sh.id]
		start := time.Now()
		// Units share no mutable state (distinct sessions), so a shard with
		// several queries fans out across them exactly as the PR 3 single
		// writer did. Plain par.Do, not pool.Do: a session rebuild inside
		// the patch borrows the pool itself, and pool workers must not
		// block on nested pool waits.
		_ = par.Do(s.opts.Parallelism, len(units), func(i int) error {
			units[i].step(rd, routed)
			return nil
		})
		sh.patch.ObserveSince(start)
		sh.watermark.Store(rd.cut)
		s.notify()
		rd.wg.Done()
	}
}

// step applies the unit's slice of the round — the whole valid batch for a
// fallback unit, the shard's pre-filtered routed slice for a partitioned
// one — and refreshes its cached count/LS. A unit that previously failed
// stays failed (its tombstone view persists); a unit whose partition the
// round does not touch keeps its cached outputs, which still describe its
// unchanged session.
func (u *unit) step(rd *round, routed []relation.Update) {
	if u.err != nil {
		return
	}
	ups := rd.valid
	if u.part >= 0 {
		ups = routed
	}
	if len(ups) == 0 {
		return
	}
	if err := u.sess.Apply(ups); err != nil {
		u.err = err
		return
	}
	u.refresh()
}

// refresh recomputes the cached count and LS result from the live session.
// Callers hold the unit quiescent (owning shard inside a round, or the
// coordinator/Register under stateMu).
func (u *unit) refresh() {
	if u.err != nil {
		return
	}
	u.count = u.sess.Count()
	u.res, u.err = u.sess.LS()
}

// pcol returns the routing column of a relation: the configured
// Options.PartitionColumns entry, or column 0.
func (s *Server) pcol(rel string) int {
	return s.pcols[rel]
}

// routeOf returns the shard owning an update: the hash of the value at the
// relation's routing column. Updates whose routing column is out of range
// (never the case for schema-validated appends) fall to shard 0.
func (s *Server) routeOf(up relation.Update) int {
	col := s.pcol(up.Rel)
	if col < 0 || col >= len(up.Row) {
		return 0
	}
	return relation.Shard(up.Row[col], len(s.shards))
}

// fallbackShard is the designated owner of an unpartitionable query's
// session: a stable hash of the query ID, so multiple fallback queries
// spread across shards instead of piling onto shard 0.
func (s *Server) fallbackShard(id string) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return relation.Shard(int64(h.Sum64()), len(s.shards))
}

// NumShards returns the number of write-path shards.
func (s *Server) NumShards() int { return len(s.shards) }

// ShardOf returns the shard that owns an update's write path.
func (s *Server) ShardOf(up relation.Update) int { return s.routeOf(up) }

// Owners returns the deduplicated set of shards owning at least one of
// ups, in shard order — the set WaitShards needs for read-your-writes of
// exactly these updates.
func (s *Server) Owners(ups []relation.Update) []int {
	seen := make([]bool, len(s.shards))
	for _, up := range ups {
		seen[s.routeOf(up)] = true
	}
	out := make([]int, 0, len(seen))
	for i, hit := range seen {
		if hit {
			out = append(out, i)
		}
	}
	return out
}

// WaitShards blocks until every listed shard's watermark reaches lsn (all
// their entries below lsn folded) or the server closes. Unlike
// WaitApplied, it does not wait for unrelated shards — but the isolation
// is bounded by the round structure: entries inside the in-flight round
// are folded by healthy shards even while another shard of that round is
// stalled, whereas entries past the round's cut wait for the coordinator
// to start the next round (which a stalled shard holds up). Published
// views always advance only at joined cuts (WaitApplied).
func (s *Server) WaitShards(shards []int, lsn int64) error {
	return s.WaitShardsCtx(context.Background(), shards, lsn)
}

// WaitShardsCtx is WaitShards honoring ctx, so a disconnected ?wait=1
// client releases its waiter.
func (s *Server) WaitShardsCtx(ctx context.Context, shards []int, lsn int64) error {
	for _, i := range shards {
		if i < 0 || i >= len(s.shards) {
			return fmt.Errorf("serve: no shard %d (have %d)", i, len(s.shards))
		}
	}
	reached := func() bool {
		for _, i := range shards {
			if s.shards[i].watermark.Load() < lsn {
				return false
			}
		}
		return true
	}
	for {
		if reached() {
			return nil
		}
		s.waitMu.Lock()
		ch := s.epochCh
		s.waitMu.Unlock()
		if ch == nil {
			return fmt.Errorf("serve: server closed before shards reached %d", lsn)
		}
		if reached() {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
