package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type rec struct {
	kind byte
	data string
}

func replayAll(t *testing.T, l *Log) []rec {
	t.Helper()
	var got []rec
	if err := l.Replay(func(kind byte, data []byte) error {
		got = append(got, rec{kind, string(data)})
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if has, _ := l.HasState(); has {
		t.Fatal("fresh dir reports state")
	}
	if err := l.StartAppending(); err != nil {
		t.Fatal(err)
	}
	want := []rec{{'U', "one"}, {'Q', "two"}, {'R', ""}, {'U', strings.Repeat("x", 5000)}}
	for _, r := range want {
		if err := l.Append(r.kind, []byte(r.data)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if has, _ := l2.HasState(); !has {
		t.Fatal("no state after appends")
	}
	got := replayAll(t, l2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	if err := l.StartAppending(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append('U', []byte{byte('a' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write: append a partial frame to the last segment.
	segs, err := l.segments()
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	path := l.segPath(segs[0])
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, clean...), 0x10, 0x00, 0x00, 0x00, 0xde, 0xad)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, _ := Open(dir, Options{})
	got := replayAll(t, l2)
	if len(got) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(got))
	}
	// The tail must have been truncated off so the next boot reads clean.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, clean) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d", len(after), len(clean))
	}
}

func TestCorruptMidLogFails(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	if err := l.StartAppending(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append('U', []byte("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Roll(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append('U', []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the FIRST segment: that is corruption, not a
	// torn tail, and replay must refuse rather than silently skip.
	segs, _ := l.segments()
	path := l.segPath(segs[0])
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, _ := Open(dir, Options{})
	err := l2.Replay(func(byte, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-log corruption replayed: %v", err)
	}
}

func TestCheckpointPrunesOldGenerations(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	if err := l.StartAppending(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append('U', []byte("covered")); err != nil {
		t.Fatal(err)
	}
	gen, err := l.Roll()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append('U', []byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteCheckpoint([]byte("state-at-roll"), gen); err != nil {
		t.Fatal(err)
	}
	// The pre-roll segment is covered by the checkpoint and must be gone.
	segs, _ := l.segments()
	if len(segs) != 1 || segs[0] != gen {
		t.Fatalf("segments after checkpoint: %v, want [%d]", segs, gen)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, _ := Open(dir, Options{})
	data, g, ok, err := l2.LatestCheckpoint()
	if err != nil || !ok || g != gen || string(data) != "state-at-roll" {
		t.Fatalf("checkpoint: %q gen %d ok %v err %v", data, g, ok, err)
	}
	got := replayAll(t, l2)
	if len(got) != 1 || got[0].data != "tail" {
		t.Fatalf("replay after prune: %+v", got)
	}

	// A second checkpoint supersedes (and removes) the first.
	if err := l2.StartAppending(); err != nil {
		t.Fatal(err)
	}
	gen2, err := l2.Roll()
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.WriteCheckpoint([]byte("newer"), gen2); err != nil {
		t.Fatal(err)
	}
	cks, _ := l2.checkpoints()
	if len(cks) != 1 || cks[0] != gen2 {
		t.Fatalf("checkpoints after second install: %v, want [%d]", cks, gen2)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointInstallIsAtomic(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	if err := l.StartAppending(); err != nil {
		t.Fatal(err)
	}
	gen, err := l.Roll()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteCheckpoint([]byte("good"), gen); err != nil {
		t.Fatal(err)
	}
	// A stray temp file from a crashed later install must not shadow the
	// good checkpoint, and a corrupt newer checkpoint falls back.
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("checkpoint-%016d.ckpt.tmp", gen+5)), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(l.ckptPath(gen+6), []byte("not a frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, g, ok, err := l.LatestCheckpoint()
	if err != nil || !ok || g != gen || string(data) != "good" {
		t.Fatalf("checkpoint fallback: %q gen %d ok %v err %v", data, g, ok, err)
	}
	l.Close()
}

func TestSyncEveryBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{SyncEvery: 4})
	if err := l.StartAppending(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append('U', []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if l.unsynced != 2 { // 10 appends, synced at 4 and 8
		t.Fatalf("unsynced = %d, want 2", l.unsynced)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.unsynced != 0 {
		t.Fatalf("unsynced after Sync = %d", l.unsynced)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _ := Open(dir, Options{})
	if got := replayAll(t, l2); len(got) != 10 {
		t.Fatalf("replayed %d, want 10", len(got))
	}
}

func TestAppendErrorIsSticky(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	if err := l.StartAppending(); err != nil {
		t.Fatal(err)
	}
	// Close the file behind the log's back so the next write fails.
	l.f.Close()
	if err := l.Append('U', []byte("x")); err == nil {
		t.Fatal("append to closed file succeeded")
	}
	if err := l.Append('U', []byte("y")); err == nil {
		t.Fatal("append after failure not sticky")
	}
}

func TestOpenNonWritableDirFails(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: permission bits not enforced")
	}
	parent := t.TempDir()
	if err := os.Chmod(parent, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(parent, 0o755)
	if _, err := Open(filepath.Join(parent, "wal"), Options{}); err == nil {
		t.Fatal("unwritable dir accepted")
	}
}

// TestCorruptLastSegmentWithDataAfterFails: even in the final segment, a
// checksum-failed frame FOLLOWED by more records is corruption — truncating
// there would silently drop durable records after it. Only a suspect region
// running to end-of-file is a torn tail.
func TestCorruptLastSegmentWithDataAfterFails(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	if err := l.StartAppending(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append('U', []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append('R', []byte("spend-that-must-not-vanish")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := l.segments()
	path := l.segPath(segs[0])
	raw, _ := os.ReadFile(path)
	// Flip a payload byte of the FIRST frame (offset frameHeader+1 is
	// inside its payload); the second frame stays intact after it.
	raw[frameHeader+2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, _ := Open(dir, Options{})
	err := l2.Replay(func(byte, []byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-segment corruption with records after it replayed as torn tail: %v", err)
	}
	// And the file was NOT truncated: the durable second record survives
	// for forensics/repair.
	after, _ := os.ReadFile(path)
	if len(after) != len(raw) {
		t.Fatalf("corrupt segment truncated from %d to %d bytes", len(raw), len(after))
	}
}
