package wal

// Replication support: reading a log as a record stream for shipping to
// followers, and mirroring a shipped stream into a follower's own directory.
//
// A stream position is (generation, index): the index-th record of segment
// `generation`. Positions are meaningful only within one leader lineage —
// the replica layer pairs them with a lineage identity and resets followers
// whose positions come from another lineage. ReadFrom never reads past the
// durable frontier (the last fsynced record), so a follower can never
// observe — let alone serve — state the leader could still lose in a crash.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// ErrPruned reports a read position whose segment a checkpoint has pruned:
// the reader must restart from the latest checkpoint instead.
var ErrPruned = errors.New("wal: position pruned")

// Position returns the append frontier: the generation of the current
// append segment and the number of records in it (the index the next Append
// lands at). Zero before StartAppending.
func (l *Log) Position() (gen, idx int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen, l.recsInSeg
}

// DurablePosition returns the durable frontier: every record strictly
// before (gen, idx) has been fsynced. With SyncEvery ≤ 1 it equals the
// append frontier between Appends.
func (l *Log) DurablePosition() (gen, idx int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncedGen, l.syncedIdx
}

// DurableNotify returns a channel closed the next time the durable frontier
// advances. Callers re-fetch after every receive (broadcast semantics).
func (l *Log) DurableNotify() <-chan struct{} {
	l.notifyMu.Lock()
	defer l.notifyMu.Unlock()
	return l.notifyCh
}

func (l *Log) notifyDurable() {
	l.notifyMu.Lock()
	close(l.notifyCh)
	l.notifyCh = make(chan struct{})
	l.notifyMu.Unlock()
}

// CheckpointGen returns the generation of the newest checkpoint file, if
// any. Cheap (a directory scan, no payload read) — the shipping loop polls
// it to notice installs.
func (l *Log) CheckpointGen() (int64, bool, error) {
	cks, err := l.checkpoints()
	if err != nil || len(cks) == 0 {
		return 0, false, err
	}
	return cks[len(cks)-1], true, nil
}

// ReadFrom streams up to max durable records starting at (gen, idx) to fn,
// returning the position after the last delivered record and the count
// delivered. It reads the segment files directly — sealed segments in full,
// the live tail only up to the durable frontier — so it needs no buffering
// or coordination with Append beyond the frontier snapshot. A position
// whose segment has been pruned returns ErrPruned: the caller restarts the
// follower from the latest checkpoint.
func (l *Log) ReadFrom(gen, idx int64, max int, fn func(gen, idx int64, kind byte, data []byte) error) (int64, int64, int, error) {
	sg, si := l.DurablePosition()
	g, i := gen, idx
	n := 0
	for n < max {
		if g > sg || (g == sg && i >= si) {
			break // at the durable frontier
		}
		path := l.segPath(g)
		raw, err := l.fs.ReadFile(path)
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return g, i, n, ErrPruned
			}
			return g, i, n, fmt.Errorf("wal: %w", err)
		}
		cap := int64(-1) // records parseable in this segment; -1 = all
		if g == sg {
			cap = si
		}
		rest := raw
		var rec int64
		for len(rest) > 0 && (cap < 0 || rec < cap) {
			payload, next, ferr := readFrame(rest)
			if ferr != nil {
				// Sealed segments and the sub-frontier prefix of the live one
				// are fully durable: a broken frame there is corruption, not
				// an in-progress write.
				return g, i, n, fmt.Errorf("%w: segment %d record %d: %v", ErrCorrupt, g, rec, ferr)
			}
			if rec >= i {
				if err := fn(g, rec, payload[0], payload[1:]); err != nil {
					return g, rec, n, err
				}
				n++
				i = rec + 1
				if n >= max {
					return g, i, n, nil
				}
			}
			rec++
			rest = next
		}
		if g < sg {
			g, i = g+1, 0
		} else {
			break
		}
	}
	return g, i, n, nil
}

// --- follower-side mirroring ---

// Mirror appends a replicated record stream into a follower's own WAL
// directory, framed identically to Append, preserving the leader's segment
// generations and record indexes — so the directory recovers through the
// ordinary Open/Replay path, and reconnect handshakes resume from a simple
// directory scan. Safe for use by one replication goroutine at a time.
type Mirror struct {
	dir  string
	fs   FS
	opts Options

	mu       sync.Mutex
	f        File
	gen      int64
	idx      int64 // records in the current segment (next append index)
	unsynced int
	err      error // sticky, like Log: a mirror that failed a write stops

	m walMetrics
}

// OpenMirror prepares dir for mirroring. It scans the existing segments,
// truncates a torn tail off the newest one (a crash mid-mirror), and
// positions itself after the last complete record.
func OpenMirror(dir string, opts Options) (*Mirror, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	m := &Mirror{dir: dir, fs: opts.FS, opts: opts}
	m.m = newWalMetrics(opts.Metrics)
	segs, err := scanGenDir(m.fs, dir, segPrefix, segSuffix)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return m, nil
	}
	m.gen = segs[len(segs)-1]
	path := m.segPath(m.gen)
	raw, err := m.fs.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	rest := raw
	for len(rest) > 0 {
		_, next, ferr := readFrame(rest)
		if ferr != nil {
			off := len(raw) - len(rest)
			// Same torn-tail rule as Replay: a fully-contained frame failing
			// its checksum with more data after it is corruption, not a torn
			// write — refuse rather than silently drop durable records.
			if len(rest) >= frameHeader {
				if n := binary.LittleEndian.Uint32(rest); n > 0 && n <= maxFrame &&
					uint64(frameHeader)+uint64(n) < uint64(len(rest)) {
					return nil, fmt.Errorf("%w: mirror segment %d offset %d: %v", ErrCorrupt, m.gen, off, ferr)
				}
			}
			if err := m.fs.Truncate(path, int64(off)); err != nil {
				return nil, fmt.Errorf("wal: %w", err)
			}
			break
		}
		m.idx++
		rest = next
	}
	return m, nil
}

func (m *Mirror) segPath(gen int64) string {
	return filepath.Join(m.dir, fmt.Sprintf("%s%016d%s", segPrefix, gen, segSuffix))
}

// Position returns where the next mirrored record must land: the handshake
// position a follower resumes from.
func (m *Mirror) Position() (gen, idx int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gen, m.idx
}

// CheckpointGen returns the newest locally installed checkpoint generation.
func (m *Mirror) CheckpointGen() (int64, bool, error) {
	cks, err := scanGenDir(m.fs, m.dir, ckptPrefix, ckptSuffix)
	if err != nil || len(cks) == 0 {
		return 0, false, err
	}
	return cks[len(cks)-1], true, nil
}

// Append mirrors one record at the leader's (gen, idx). A gen advance seals
// the current segment (sync + close) and starts the next file; an idx that
// does not match the expected next position reports a desync — the caller
// drops the connection and re-handshakes.
func (m *Mirror) Append(gen, idx int64, kind byte, data []byte) error {
	if len(data)+1 > maxFrame {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte frame limit", len(data), maxFrame)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	if gen < m.gen || (gen == m.gen && idx != m.idx) || (gen > m.gen && idx != 0) {
		return fmt.Errorf("wal: mirror desync: record at (%d,%d), expected (%d,%d)", gen, idx, m.gen, m.idx)
	}
	if gen > m.gen {
		if err := m.sealLocked(); err != nil {
			return err
		}
		m.gen, m.idx = gen, 0
	}
	if m.f == nil {
		f, err := m.fs.OpenFile(m.segPath(m.gen), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			m.err = fmt.Errorf("wal: mirror: %w", err)
			return m.err
		}
		m.f = f
	}
	start := time.Now()
	frame := appendFrame(make([]byte, 0, frameHeader+1+len(data)), kind, data)
	if _, err := m.f.Write(frame); err != nil {
		m.err = fmt.Errorf("wal: mirror append: %w", err)
		return m.err
	}
	m.m.bytes.Add(int64(len(frame)))
	m.idx++
	m.unsynced++
	if m.opts.SyncEvery <= 1 || m.unsynced >= m.opts.SyncEvery {
		err := m.syncLocked()
		m.m.appendSecs.ObserveSince(start)
		return err
	}
	m.m.appendSecs.ObserveSince(start)
	return nil
}

func (m *Mirror) sealLocked() error {
	if m.f == nil {
		return nil
	}
	if m.unsynced > 0 {
		if err := m.syncLocked(); err != nil {
			return err
		}
	}
	if err := m.f.Close(); err != nil {
		m.err = fmt.Errorf("wal: mirror seal: %w", err)
		return m.err
	}
	m.f = nil
	return nil
}

func (m *Mirror) syncLocked() error {
	start := time.Now()
	if err := m.f.Sync(); err != nil {
		m.err = fmt.Errorf("wal: mirror sync: %w", err)
		return m.err
	}
	m.m.fsyncSecs.ObserveSince(start)
	m.m.fsyncs.Inc()
	m.unsynced = 0
	return nil
}

// Sync flushes any unsynced mirrored records — the durable horizon a
// promotion is allowed to trust.
func (m *Mirror) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	if m.f == nil || m.unsynced == 0 {
		return nil
	}
	return m.syncLocked()
}

// InstallCheckpoint durably installs a shipped checkpoint and prunes every
// older generation, exactly as the leader's WriteCheckpoint does. If the
// mirror's current segment is itself covered (gen below the checkpoint's),
// it is closed and the position advances to (gen, 0) — the stream resumes
// there after a reset.
func (m *Mirror) InstallCheckpoint(data []byte, gen int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := time.Now()
	if err := installCheckpoint(m.fs, m.dir, data, gen); err != nil {
		return err
	}
	m.m.ckptSecs.ObserveSince(start)
	m.m.checkpoints.Inc()
	if m.gen < gen {
		if m.f != nil {
			_ = m.f.Close()
			m.f = nil
		}
		m.gen, m.idx = gen, 0
		m.unsynced = 0
	}
	pruneDir(m.fs, m.dir, gen)
	return nil
}

// Reset wipes every segment and checkpoint — a follower joining a different
// leader lineage must discard its local mirror entirely before resyncing.
func (m *Mirror) Reset() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f != nil {
		_ = m.f.Close()
		m.f = nil
	}
	segs, err := scanGenDir(m.fs, m.dir, segPrefix, segSuffix)
	if err != nil {
		return err
	}
	cks, err := scanGenDir(m.fs, m.dir, ckptPrefix, ckptSuffix)
	if err != nil {
		return err
	}
	for _, g := range segs {
		if err := m.fs.Remove(m.segPath(g)); err != nil {
			return fmt.Errorf("wal: mirror reset: %w", err)
		}
	}
	for _, g := range cks {
		path := filepath.Join(m.dir, fmt.Sprintf("%s%016d%s", ckptPrefix, g, ckptSuffix))
		if err := m.fs.Remove(path); err != nil {
			return fmt.Errorf("wal: mirror reset: %w", err)
		}
	}
	m.gen, m.idx, m.unsynced, m.err = 0, 0, 0, nil
	return nil
}

// Close seals the mirror.
func (m *Mirror) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sealCloseLocked()
}

func (m *Mirror) sealCloseLocked() error {
	if m.f == nil {
		return nil
	}
	var err error
	if m.unsynced > 0 && m.err == nil {
		err = m.syncLocked()
	}
	if cerr := m.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: mirror close: %w", cerr)
	}
	m.f = nil
	return err
}

// pruneDir removes segments and checkpoints older than gen (best-effort,
// like Log.prune).
func pruneDir(fs FS, dir string, gen int64) {
	if segs, err := scanGenDir(fs, dir, segPrefix, segSuffix); err == nil {
		for _, g := range segs {
			if g < gen {
				_ = fs.Remove(filepath.Join(dir, fmt.Sprintf("%s%016d%s", segPrefix, g, segSuffix)))
			}
		}
	}
	if cks, err := scanGenDir(fs, dir, ckptPrefix, ckptSuffix); err == nil {
		for _, g := range cks {
			if g < gen {
				_ = fs.Remove(filepath.Join(dir, fmt.Sprintf("%s%016d%s", ckptPrefix, g, ckptSuffix)))
			}
		}
	}
}
