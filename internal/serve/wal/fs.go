package wal

import (
	"io"
	"os"
)

// FS is the filesystem seam the log runs on. Production uses OSFS; the
// fault-injection harness (internal/serve/faultfs) substitutes an
// implementation that can fail an fsync, short-write a frame, or roll a
// directory back to its last-synced state to simulate a machine crash —
// which is why every file operation the durability argument rests on goes
// through this interface instead of the os package directly.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	// OpenFile opens a data file for writing (segments, checkpoint temps).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// OpenDir opens a directory for fsync after a rename install.
	OpenDir(name string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
}

// File is the subset of *os.File the log needs on its write paths.
type File interface {
	io.Writer
	io.Closer
	Sync() error
}

// OSFS is the passthrough FS over the os package — the default.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OSFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (OSFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OSFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error                     { return os.Remove(name) }
func (OSFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (OSFS) OpenDir(name string) (File, error)            { return os.Open(name) }
func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
