package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

type posRec struct {
	gen, idx int64
	kind     byte
	data     string
}

func readAllFrom(t *testing.T, l *Log, gen, idx int64) ([]posRec, int64, int64) {
	t.Helper()
	var got []posRec
	for {
		ngen, nidx, n, err := l.ReadFrom(gen, idx, 3, func(g, i int64, kind byte, data []byte) error {
			got = append(got, posRec{g, i, kind, string(data)})
			return nil
		})
		if err != nil {
			t.Fatalf("ReadFrom(%d,%d): %v", gen, idx, err)
		}
		gen, idx = ngen, nidx
		if n == 0 {
			return got, gen, idx
		}
	}
}

func TestReadFromStreamsDurableRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.StartAppending(); err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i, s := range []string{"a", "b", "c"} {
		if err := l.Append('U', []byte(s)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if _, err := l.Roll(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append('Q', []byte("d")); err != nil {
		t.Fatal(err)
	}

	got, gen, idx := readAllFrom(t, l, 1, 0)
	want := []posRec{{1, 0, 'U', "a"}, {1, 1, 'U', "b"}, {1, 2, 'U', "c"}, {2, 0, 'Q', "d"}}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	dg, di := l.DurablePosition()
	if gen != dg || idx != di {
		t.Fatalf("reader stopped at (%d,%d), durable frontier (%d,%d)", gen, idx, dg, di)
	}

	// Resume mid-stream.
	got2, _, _ := readAllFrom(t, l, 1, 2)
	if len(got2) != 2 || got2[0] != want[2] || got2[1] != want[3] {
		t.Fatalf("resume at (1,2): got %+v", got2)
	}
}

func TestReadFromNeverPassesDurableFrontier(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 100}) // batch fsyncs: appends stay unsynced
	if err != nil {
		t.Fatal(err)
	}
	if err := l.StartAppending(); err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, s := range []string{"a", "b"} {
		if err := l.Append('U', []byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	got, _, _ := readAllFrom(t, l, 1, 0)
	if len(got) != 0 {
		t.Fatalf("unsynced records visible to ReadFrom: %+v", got)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got, _, _ = readAllFrom(t, l, 1, 0)
	if len(got) != 2 {
		t.Fatalf("after Sync: got %d records, want 2", len(got))
	}
}

func TestReadFromPrunedPositionErrors(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.StartAppending(); err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append('U', []byte("old")); err != nil {
		t.Fatal(err)
	}
	gen, err := l.Roll()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append('U', []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteCheckpoint([]byte("ckpt"), gen); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = l.ReadFrom(1, 0, 10, func(int64, int64, byte, []byte) error { return nil })
	if !errors.Is(err, ErrPruned) {
		t.Fatalf("reading pruned segment: got %v, want ErrPruned", err)
	}
	if cg, ok, _ := l.CheckpointGen(); !ok || cg != gen {
		t.Fatalf("CheckpointGen = %d,%v, want %d,true", cg, ok, gen)
	}
}

func TestMirrorRoundTripThroughRecovery(t *testing.T) {
	src := t.TempDir()
	dst := t.TempDir()
	l, err := Open(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.StartAppending(); err != nil {
		t.Fatal(err)
	}
	recs := []rec{{'U', "one"}, {'Q', "two"}, {'R', "three"}}
	for _, r := range recs[:2] {
		if err := l.Append(r.kind, []byte(r.data)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Roll(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recs[2].kind, []byte(recs[2].data)); err != nil {
		t.Fatal(err)
	}

	m, err := OpenMirror(dst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InstallCheckpoint([]byte("seed"), 1); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := l.ReadFrom(1, 0, 100, m.Append); err != nil {
		t.Fatal(err)
	}
	if mg, mi := m.Position(); mg != 2 || mi != 1 {
		t.Fatalf("mirror position (%d,%d), want (2,1)", mg, mi)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// The mirrored directory recovers through the ordinary Open/Replay.
	l2, err := Open(dst, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if data, gen, ok, err := l2.LatestCheckpoint(); err != nil || !ok || string(data) != "seed" || gen != 1 {
		t.Fatalf("mirrored checkpoint: %q gen %d ok=%v err=%v", data, gen, ok, err)
	}
	got := replayAll(t, l2)
	if len(got) != len(recs) {
		t.Fatalf("mirrored replay: %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("mirrored record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
	l.Close()
}

func TestMirrorResumesAndDetectsDesync(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenMirror(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Append(1, 0, 'U', []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(1, 1, 'U', []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := OpenMirror(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g, i := m2.Position(); g != 1 || i != 2 {
		t.Fatalf("resumed position (%d,%d), want (1,2)", g, i)
	}
	if err := m2.Append(1, 5, 'U', []byte("skip")); err == nil {
		t.Fatal("desynced append (idx jump) accepted")
	}
	// The mirror is sticky-error-free on desync (protocol error, not IO):
	// the in-order record still lands.
	if err := m2.Append(1, 2, 'U', []byte("c")); err != nil {
		t.Fatalf("in-order append after desync report: %v", err)
	}
	m2.Close()
}

func TestMirrorTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenMirror(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Append(1, 0, 'U', []byte("whole")); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(1, 1, 'U', []byte("torn")); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "wal-0000000000000001.seg")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, int64(len(raw)-3)); err != nil {
		t.Fatal(err)
	}

	m2, err := OpenMirror(dir, Options{})
	if err != nil {
		t.Fatalf("reopening torn mirror: %v", err)
	}
	if g, i := m2.Position(); g != 1 || i != 1 {
		t.Fatalf("post-truncation position (%d,%d), want (1,1)", g, i)
	}
	// The torn record can now be re-mirrored at its old index.
	if err := m2.Append(1, 1, 'U', []byte("torn")); err != nil {
		t.Fatalf("re-mirroring truncated record: %v", err)
	}
	m2.Close()
}

func TestMirrorReset(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenMirror(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InstallCheckpoint([]byte("old"), 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(1, 0, 'U', []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if g, i := m.Position(); g != 0 || i != 0 {
		t.Fatalf("post-reset position (%d,%d)", g, i)
	}
	if has, _ := HasState(dir); has {
		t.Fatal("reset left recoverable state behind")
	}
	if err := m.InstallCheckpoint([]byte("new"), 7); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(7, 0, 'Q', []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	m.Close()
}
