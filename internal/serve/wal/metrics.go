package wal

// WAL instruments. Built from Options.Metrics, which may be nil: obs
// constructors on a nil registry return detached but functional
// instruments, so the log body carries no nil guards. A leader Log and a
// follower Mirror sharing one process registry share these families —
// counters and histograms accumulate across both, and the segment gauge is
// Set from whichever log last learned its directory's count (only one is
// actively appending at a time).

import "tsens/internal/obs"

type walMetrics struct {
	appendSecs *obs.Histogram // frame write + cadence fsync
	fsyncSecs  *obs.Histogram
	ckptSecs   *obs.Histogram // atomic checkpoint install

	fsyncs      *obs.Counter
	rolls       *obs.Counter
	checkpoints *obs.Counter
	bytes       *obs.Counter

	segments *obs.Gauge
}

func newWalMetrics(reg *obs.Registry) walMetrics {
	return walMetrics{
		appendSecs: reg.Histogram("tsens_wal_append_seconds",
			"WAL record append latency, including the fsync when the SyncEvery cadence fires.", nil),
		fsyncSecs: reg.Histogram("tsens_wal_fsync_seconds",
			"WAL segment fsync latency.", nil),
		ckptSecs: reg.Histogram("tsens_wal_checkpoint_seconds",
			"Checkpoint install latency (temp write, fsync, rename, directory fsync).", nil),

		fsyncs:      reg.Counter("tsens_wal_fsyncs_total", "WAL segment fsyncs."),
		rolls:       reg.Counter("tsens_wal_rolls_total", "Segments sealed and rolled."),
		checkpoints: reg.Counter("tsens_wal_checkpoints_total", "Checkpoints durably installed."),
		bytes:       reg.Counter("tsens_wal_appended_bytes_total", "Framed bytes appended (records and mirrored records)."),

		segments: reg.Gauge("tsens_wal_segments", "Live segment files in the WAL directory."),
	}
}
