// Package wal implements the durability substrate of the serving layer: a
// segmented, length-prefixed, checksummed write-ahead log plus atomically
// installed checkpoint files, the log+snapshot split of docs/SERVING.md's
// "Durability" section.
//
// The layer is deliberately dumb: a record is an opaque (kind, payload)
// pair, and the package promises exactly three things —
//
//  1. Append is durable once it returns with the configured sync cadence
//     (SyncEvery ≤ 1 fsyncs before every acknowledgment; larger values batch
//     fsyncs and trade the unsynced suffix for latency).
//  2. Replay yields every durable record exactly once, in append order,
//     truncating a torn tail (a crash mid-write: the suspect bytes run to
//     end-of-file) off the final segment; a broken frame anywhere else —
//     including one followed by further records in the final segment — is
//     reported as corruption, never skipped.
//  3. WriteCheckpoint installs a checkpoint atomically (temp file + fsync +
//     rename + directory fsync) and then prunes every segment and checkpoint
//     of an older generation, so the directory's size is proportional to the
//     live tail, not the server's history.
//
// What the records mean — update batches, query registrations, budget
// spends — and which of them a recovery must re-apply is the serve layer's
// business (internal/serve, recovery invariants in docs/SERVING.md).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsens/internal/obs"
)

// ErrCorrupt reports a frame that is structurally broken somewhere other
// than the replayable torn tail of the last segment.
var ErrCorrupt = errors.New("wal: corrupt record")

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"

	// frameHeader is uint32 payload length + uint32 CRC32-C of the payload.
	frameHeader = 8
	// maxFrame bounds a single record; anything larger is treated as a
	// corrupt length prefix rather than an allocation request.
	maxFrame = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Log.
type Options struct {
	// SyncEvery is the number of appended records per fsync: 1 (or less)
	// syncs before every Append returns — the default, and the only setting
	// under which an acknowledged record survives an arbitrary crash.
	// Larger values acknowledge after the buffered write and fsync every
	// N-th record (and on Roll/Close), bounding loss to the unsynced
	// suffix.
	SyncEvery int
	// FS is the filesystem the log runs on. nil means OSFS; the
	// fault-injection harness (internal/serve/faultfs) substitutes one that
	// can fail fsyncs, short-write frames, and simulate crashes.
	FS FS
	// Metrics, when set, receives append/fsync/checkpoint timings and
	// segment counts. Nil still records into detached instruments — the
	// log body is unconditional.
	Metrics *obs.Registry
}

// Log is an append-only record log over numbered segment files in one
// directory, with checkpoint files installed beside them. Safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options
	fs   FS

	mu       sync.Mutex
	f        File  // current append segment; nil until StartAppending
	gen      int64 // generation of the current append segment
	maxSeen  int64 // highest segment generation present on disk
	unsynced int
	err      error // sticky failure: a log that failed a write never acks again

	// recsInSeg counts records appended to the current segment (segments
	// opened by this process are always fresh, so the count is also the
	// record index the next Append lands at). synced{Gen,Idx} is the durable
	// frontier: every record strictly before it has been fsynced — the
	// shipping boundary of ReadFrom.
	recsInSeg int64
	syncedGen int64
	syncedIdx int64

	notifyMu sync.Mutex
	notifyCh chan struct{}

	m        walMetrics
	segCount atomic.Int64 // live segment files (prune runs outside mu)
}

// Open prepares dir (creating it if needed) and scans the existing state.
// No segment is opened for appending yet: call Replay to recover, then
// StartAppending.
func Open(dir string, opts Options) (*Log, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts, fs: opts.FS, notifyCh: make(chan struct{})}
	l.m = newWalMetrics(opts.Metrics)
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	if n := len(segs); n > 0 {
		l.maxSeen = segs[n-1]
	}
	l.segCount.Store(int64(len(segs)))
	l.m.segments.Set(float64(len(segs)))
	if cks, err := l.checkpoints(); err != nil {
		return nil, err
	} else if n := len(cks); n > 0 && cks[n-1] > l.maxSeen {
		l.maxSeen = cks[n-1]
	}
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// HasState reports whether the directory holds any recoverable state (a
// checkpoint or at least one segment).
func (l *Log) HasState() (bool, error) {
	segs, err := l.segments()
	if err != nil {
		return false, err
	}
	cks, err := l.checkpoints()
	if err != nil {
		return false, err
	}
	return len(segs) > 0 || len(cks) > 0, nil
}

// HasState reports whether dir holds recoverable WAL state, without
// creating, locking, or touching anything — a missing directory is simply
// "no state". Lets a caller decide whether a snapshot load is even needed
// before opening the log.
func HasState(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if (strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix)) ||
			(strings.HasPrefix(name, ckptPrefix) && strings.HasSuffix(name, ckptSuffix)) {
			return true, nil
		}
	}
	return false, nil
}

func (l *Log) segPath(gen int64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%016d%s", segPrefix, gen, segSuffix))
}

func (l *Log) ckptPath(gen int64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%016d%s", ckptPrefix, gen, ckptSuffix))
}

// scanGenDir lists the generations of files matching prefix/suffix in dir,
// sorted ascending. Shared by Log and Mirror.
func scanGenDir(fs FS, dir, prefix, suffix string) ([]int64, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var gens []int64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		g, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
		if err != nil {
			continue // stray file; never ours (we zero-pad decimal)
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

func (l *Log) segments() ([]int64, error)    { return scanGenDir(l.fs, l.dir, segPrefix, segSuffix) }
func (l *Log) checkpoints() ([]int64, error) { return scanGenDir(l.fs, l.dir, ckptPrefix, ckptSuffix) }

// LatestCheckpoint returns the payload of the newest readable checkpoint
// and its generation. ok is false when no checkpoint exists. Older
// checkpoints are consulted only if a newer file is unreadable (which the
// temp+rename install protocol makes abnormal, not routine).
func (l *Log) LatestCheckpoint() (data []byte, gen int64, ok bool, err error) {
	cks, err := l.checkpoints()
	if err != nil {
		return nil, 0, false, err
	}
	var lastErr error
	for i := len(cks) - 1; i >= 0; i-- {
		raw, err := l.fs.ReadFile(l.ckptPath(cks[i]))
		if err != nil {
			lastErr = err
			continue
		}
		payload, rest, err := readFrame(raw)
		if err != nil || len(rest) != 0 || len(payload) == 0 {
			lastErr = fmt.Errorf("%w: checkpoint %d", ErrCorrupt, cks[i])
			continue
		}
		return payload[1:], cks[i], true, nil // strip the zero kind byte WriteCheckpoint framed with
	}
	if lastErr != nil {
		return nil, 0, false, fmt.Errorf("wal: no readable checkpoint: %w", lastErr)
	}
	return nil, 0, false, nil
}

// Replay streams every durable record of every segment, in order, to fn. A
// torn tail on the last segment is truncated off (a crash mid-write); a
// broken frame anywhere else fails with ErrCorrupt. Returning an error from
// fn aborts the replay.
func (l *Log) Replay(fn func(kind byte, data []byte) error) error {
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for i, gen := range segs {
		last := i == len(segs)-1
		if err := l.replaySegment(gen, last, fn); err != nil {
			return err
		}
	}
	return nil
}

func (l *Log) replaySegment(gen int64, last bool, fn func(kind byte, data []byte) error) error {
	path := l.segPath(gen)
	raw, err := l.fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	rest := raw
	for len(rest) > 0 {
		payload, next, err := readFrame(rest)
		if err != nil {
			off := len(raw) - len(rest)
			if !last {
				return fmt.Errorf("%w: segment %d offset %d: %v", ErrCorrupt, gen, off, err)
			}
			// A torn tail — the suspect bytes run to end-of-file — is a
			// crash mid-write: truncate it off so the next boot does not
			// re-trip over it, keeping everything durable before it. But a
			// fully-contained frame that fails its checksum with MORE data
			// after it is mid-log corruption even in the last segment:
			// truncating there would silently drop durable (possibly
			// fsync-acknowledged) records that follow, so refuse loudly
			// instead.
			if len(rest) >= frameHeader {
				if n := binary.LittleEndian.Uint32(rest); n > 0 && n <= maxFrame &&
					uint64(frameHeader)+uint64(n) < uint64(len(rest)) {
					return fmt.Errorf("%w: segment %d offset %d: %v", ErrCorrupt, gen, off, err)
				}
			}
			return l.fs.Truncate(path, int64(off))
		}
		if len(payload) == 0 {
			return fmt.Errorf("%w: segment %d: empty payload", ErrCorrupt, gen)
		}
		if err := fn(payload[0], payload[1:]); err != nil {
			return err
		}
		rest = next
	}
	return nil
}

// StartAppending opens a fresh segment (one generation past everything on
// disk) for Append. Call it once, after Replay.
func (l *Log) StartAppending() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		return fmt.Errorf("wal: already appending")
	}
	return l.openSegmentLocked(l.maxSeen + 1)
}

func (l *Log) openSegmentLocked(gen int64) error {
	f, err := l.fs.OpenFile(l.segPath(gen), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	l.f = f
	l.gen = gen
	l.maxSeen = gen
	l.unsynced = 0
	l.recsInSeg = 0
	l.m.segments.Set(float64(l.segCount.Add(1)))
	// A fresh (empty) segment is trivially durable through index 0, and
	// every record of older segments is durable (Roll syncs before sealing).
	l.syncedGen, l.syncedIdx = gen, 0
	l.notifyDurable()
	return nil
}

// Append writes one record and, at the configured cadence, fsyncs before
// returning — the caller may acknowledge its client as soon as Append
// returns nil (with SyncEvery ≤ 1, that acknowledgment is crash-durable).
// A log that has ever failed a write keeps failing: a gap mid-log would
// break replay, so the sticky error forces the server to stop acking.
func (l *Log) Append(kind byte, data []byte) error {
	_, err := l.AppendTimed(kind, data)
	return err
}

// AppendStats breaks an Append down for request tracing: the total time
// under the log lock and, when this append triggered an fsync, how much
// of it the fsync took.
type AppendStats struct {
	Total  time.Duration
	Fsync  time.Duration
	Synced bool
}

// AppendTimed is Append, also reporting where the time went.
func (l *Log) AppendTimed(kind byte, data []byte) (AppendStats, error) {
	var st AppendStats
	if len(data)+1 > maxFrame {
		// Enforce the reader's bound at write time: an oversized frame
		// would install fine and then be unreadable forever.
		return st, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte frame limit", len(data), maxFrame)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return st, l.err
	}
	if l.f == nil {
		return st, fmt.Errorf("wal: not appending (StartAppending not called)")
	}
	start := time.Now()
	frame := appendFrame(make([]byte, 0, frameHeader+1+len(data)), kind, data)
	if _, err := l.f.Write(frame); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		return st, l.err
	}
	l.m.bytes.Add(int64(len(frame)))
	l.recsInSeg++
	l.unsynced++
	var err error
	if l.opts.SyncEvery <= 1 || l.unsynced >= l.opts.SyncEvery {
		syncStart := time.Now()
		err = l.syncLocked()
		st.Fsync, st.Synced = time.Since(syncStart), true
	}
	st.Total = time.Since(start)
	l.m.appendSecs.Observe(st.Total.Seconds())
	return st, err
}

// Sync flushes any unsynced appends to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if l.f == nil || l.unsynced == 0 {
		return nil
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: sync: %w", err)
		return l.err
	}
	l.m.fsyncSecs.ObserveSince(start)
	l.m.fsyncs.Inc()
	l.unsynced = 0
	l.syncedGen, l.syncedIdx = l.gen, l.recsInSeg
	l.notifyDurable()
	return nil
}

// Roll syncs and seals the current segment and opens the next one,
// returning the new segment's generation. Records appended before the Roll
// live in generations < gen; a checkpoint capturing state after a Roll
// therefore covers every record of every older segment (the pruning rule of
// WriteCheckpoint).
func (l *Log) Roll() (gen int64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	if l.f == nil {
		return 0, fmt.Errorf("wal: not appending")
	}
	if l.unsynced > 0 {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	if err := l.f.Close(); err != nil {
		l.err = fmt.Errorf("wal: roll: %w", err)
		return 0, l.err
	}
	l.f = nil
	if err := l.openSegmentLocked(l.gen + 1); err != nil {
		l.err = err
		return 0, err
	}
	l.m.rolls.Inc()
	return l.gen, nil
}

// WriteCheckpoint durably installs a checkpoint for generation gen (as
// returned by the Roll that preceded the state capture) and prunes every
// segment and checkpoint of an older generation. The install is atomic:
// temp file, fsync, rename, directory fsync — a crash leaves either the
// old state or the new, never a half-written checkpoint under the real
// name.
func (l *Log) WriteCheckpoint(data []byte, gen int64) error {
	start := time.Now()
	if err := installCheckpoint(l.fs, l.dir, data, gen); err != nil {
		return err
	}
	l.m.ckptSecs.ObserveSince(start)
	l.m.checkpoints.Inc()
	l.prune(gen)
	return nil
}

// installCheckpoint durably writes a checkpoint file for gen via the
// temp+fsync+rename+dir-fsync protocol. Shared by the leader's Log and the
// follower's Mirror (which installs checkpoints shipped over the wire).
func installCheckpoint(fs FS, dir string, data []byte, gen int64) error {
	if len(data)+1 > maxFrame {
		// A checkpoint past the frame limit would install, prune every
		// older generation, and then be unreadable — the directory could
		// never recover. Refuse up front; the previous checkpoint stays.
		return fmt.Errorf("wal: checkpoint of %d bytes exceeds the %d-byte frame limit", len(data), maxFrame)
	}
	final := filepath.Join(dir, fmt.Sprintf("%s%016d%s", ckptPrefix, gen, ckptSuffix))
	tmp := final + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	frame := appendFrame(make([]byte, 0, frameHeader+1+len(data)), 0, data)
	// The checkpoint payload is framed with a zero kind byte purely to share
	// the checksummed frame format; readFrame strips it in LatestCheckpoint.
	if _, err := f.Write(frame); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if err := fs.Rename(tmp, final); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	return syncDir(fs, dir)
}

// prune removes segments and checkpoints older than gen. Best-effort: a
// file that cannot be removed is retried implicitly at the next checkpoint,
// and replay tolerates covered records (the serve layer's skip rules make
// re-applying them no-ops).
func (l *Log) prune(gen int64) {
	if segs, err := l.segments(); err == nil {
		kept := 0
		for _, g := range segs {
			if g < gen {
				_ = l.fs.Remove(l.segPath(g))
			} else {
				kept++
			}
		}
		l.segCount.Store(int64(kept))
		l.m.segments.Set(float64(kept))
	}
	if cks, err := l.checkpoints(); err == nil {
		for _, g := range cks {
			if g < gen {
				_ = l.fs.Remove(l.ckptPath(g))
			}
		}
	}
}

func syncDir(fs FS, dir string) error {
	d, err := fs.OpenDir(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// Close syncs and closes the current segment. The log must not be used
// afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if l.unsynced > 0 && l.err == nil {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close: %w", cerr)
	}
	l.f = nil
	return err
}

// appendFrame appends [len][crc][kind payload...] to buf.
func appendFrame(buf []byte, kind byte, data []byte) []byte {
	payloadLen := 1 + len(data)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	crc := crc32.Update(crc32.Checksum([]byte{kind}, crcTable), crcTable, data)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	buf = append(buf, kind)
	return append(buf, data...)
}

// readFrame decodes one frame from the front of b, returning its payload
// (kind byte first) and the remaining bytes.
func readFrame(b []byte) (payload, rest []byte, err error) {
	if len(b) < frameHeader {
		return nil, nil, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n > maxFrame {
		return nil, nil, fmt.Errorf("bad frame length %d", n)
	}
	want := binary.LittleEndian.Uint32(b[4:])
	if uint64(frameHeader)+uint64(n) > uint64(len(b)) {
		return nil, nil, io.ErrUnexpectedEOF
	}
	payload = b[frameHeader : frameHeader+n]
	if crc32.Checksum(payload, crcTable) != want {
		return nil, nil, fmt.Errorf("checksum mismatch")
	}
	return payload, b[frameHeader+n:], nil
}
