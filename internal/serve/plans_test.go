package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"tsens/internal/core"
	"tsens/internal/incremental"
	"tsens/internal/relation"
	"tsens/internal/workload"
)

// adoptStatsOf returns the adoption outcome of a registered query's first
// unit (tests here register on a single shard, so there is exactly one).
func adoptStatsOf(t *testing.T, s *Server, id string) incremental.AdoptStats {
	t.Helper()
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	sq := s.queries[id]
	if sq == nil {
		t.Fatalf("query %q not registered", id)
	}
	return sq.units[0].sess.AdoptStats()
}

// planTotals sums the plan-store stats across every domain of the server.
func planTotals(s *Server) incremental.PlanStoreStats {
	var tot incremental.PlanStoreStats
	for _, d := range s.PlanStats() {
		for _, st := range []incremental.PlanStoreStats{d.Partitioned, d.Fallback} {
			tot.Bases += st.Bases
			tot.Nodes += st.Nodes
			tot.Residues += st.Residues
			tot.SharedNodes += st.SharedNodes
			tot.NodeRefs += st.NodeRefs
			tot.Subscribers += st.Subscribers
		}
	}
	return tot
}

// TestSharedPlansIdenticalQueriesFullShare pins the headline sharing
// property: a byte-identical second registration adopts 100% of its
// botjoin nodes (and the whole residue) from the first, and unregistering
// either query leaves the survivor's answers exact.
func TestSharedPlansIdenticalQueriesFullShare(t *testing.T) {
	db := testDB(t, 12, 4, 11, "R1", "R2", "R3")
	srv, err := New(db, Options{Shards: 1, Parallelism: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, _, err := srv.Register(QueryConfig{ID: "q1", Query: pathQuery(t)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Register(QueryConfig{ID: "q2", Query: pathQuery(t)}); err != nil {
		t.Fatal(err)
	}

	// q1 donated its tables; q2 must have shared every one of them.
	if st := adoptStatsOf(t, srv, "q1"); st.NodesShared != 0 || !st.ResidueDonated {
		t.Fatalf("donor adopt stats %+v, want all-donated", st)
	}
	st := adoptStatsOf(t, srv, "q2")
	if !st.FullShare() || !st.ResidueShared {
		t.Fatalf("adopter stats %+v, want FullShare with shared residue", st)
	}
	tot := planTotals(srv)
	if tot.Subscribers != 2 || tot.SharedNodes != tot.Nodes || tot.Nodes == 0 {
		t.Fatalf("plan totals %+v, want 2 subscribers sharing every node", tot)
	}
	if tot.NodeRefs != 2*tot.Nodes {
		t.Fatalf("plan totals %+v, want fan-out of exactly 2 on every node", tot)
	}

	// Both answers stay exact while sharing one copy of the join state.
	stream := workload.UpdateStream(db, 40, 0.4, 12)
	verify := func(when string, ids ...string) {
		t.Helper()
		_, to, err := srv.Append(stream)
		if err != nil {
			t.Fatalf("%s: append: %v", when, err)
		}
		if err := srv.WaitApplied(to); err != nil {
			t.Fatalf("%s: wait: %v", when, err)
		}
		cur := replayPrefix(t, db, stream, len(stream))
		db = cur
		stream = workload.UpdateStream(cur, 40, 0.4, to)
		want, err := core.LocalSensitivity(pathQuery(t), cur, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			v, err := srv.View(id)
			if err != nil {
				t.Fatalf("%s: view %s: %v", when, id, err)
			}
			if v.Count != want.Count || v.LS.LS != want.LS {
				t.Fatalf("%s: %s served (%d, %d), scratch (%d, %d)",
					when, id, v.Count, v.LS.LS, want.Count, want.LS)
			}
		}
	}
	verify("both registered", "q1", "q2")

	// Dropping the donor must leave the adopter intact: the store keeps
	// the canonical tables alive until the last subscriber releases them.
	if err := srv.Unregister("q1"); err != nil {
		t.Fatal(err)
	}
	verify("after dropping donor", "q2")

	if err := srv.Unregister("q2"); err != nil {
		t.Fatal(err)
	}
	if tot := planTotals(srv); tot.Subscribers != 0 || tot.Nodes != 0 || tot.Bases != 0 || tot.Residues != 0 {
		t.Fatalf("plan totals %+v after last unregister, want fully drained", tot)
	}
}

// TestSharedPlansDeferredAdopt pins the busy-shard install path: a
// registration landing while the owning shard is mid-round must not patch
// shared tables under a live writer — the adoption defers to the top of
// the shard's first round past the install cut, and from then on the unit
// is a full sharer.
func TestSharedPlansDeferredAdopt(t *testing.T) {
	db := testDB(t, 10, 4, 31, "R1", "R2", "R3")
	srv, err := New(db, Options{Shards: 1, Parallelism: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, _, err := srv.Register(QueryConfig{ID: "a", Query: pathQuery(t)}); err != nil {
		t.Fatal(err)
	}
	sh := srv.shards[unitShard(srv, "a")]
	entered, release := parkShard(sh)
	defer release()

	stream := workload.UpdateStream(db, 12, 0.4, 32)
	if _, _, err := srv.Append(stream[:6]); err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("shard never entered the parked round")
	}

	// Mid-round registration: the session catches up from the log, but
	// the store attach is deferred, so the store still has one subscriber.
	if _, _, err := srv.Register(QueryConfig{ID: "b", Query: pathQuery(t)}); err != nil {
		t.Fatal(err)
	}
	if st := adoptStatsOf(t, srv, "b"); st.NodesShared != 0 || st.NodesDonated != 0 {
		t.Fatalf("adopt stats %+v while the shard is parked, want no adoption yet", st)
	}
	if tot := planTotals(srv); tot.Subscribers != 1 {
		t.Fatalf("plan totals %+v while the shard is parked, want the donor alone", tot)
	}

	// The first round past b's install cut performs the adoption.
	_, to, err := srv.Append(stream[6:])
	if err != nil {
		t.Fatal(err)
	}
	release()
	if err := srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}
	if st := adoptStatsOf(t, srv, "b"); !st.FullShare() || !st.ResidueShared {
		t.Fatalf("deferred adopt stats %+v, want FullShare with shared residue", st)
	}
	if tot := planTotals(srv); tot.Subscribers != 2 {
		t.Fatalf("plan totals %+v after the deferred adopt, want both subscribers", tot)
	}

	cur := replayPrefix(t, db, stream, len(stream))
	want, err := core.LocalSensitivity(pathQuery(t), cur, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b"} {
		v, err := srv.View(id)
		if err != nil {
			t.Fatal(err)
		}
		if v.Count != want.Count || v.LS.LS != want.LS {
			t.Fatalf("%s served (%d, %d), scratch (%d, %d)", id, v.Count, v.LS.LS, want.Count, want.LS)
		}
	}
}

// TestSharedPlansChurnUnderLoad races Register/Unregister churn of
// overlapping queries against a live writer on the async path, exercising
// deferred adoption (busy shard at install time) and deferred release
// (unregister mid-round) under the race detector.
func TestSharedPlansChurnUnderLoad(t *testing.T) {
	db := testDB(t, 10, 4, 21, "R1", "R2", "R3")
	srv, err := New(db, Options{Shards: 2, Parallelism: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, _, err := srv.Register(QueryConfig{ID: "pin", Query: pathQuery(t)}); err != nil {
		t.Fatal(err)
	}

	// Writer: an insert-only stream (replayable without tombstone
	// bookkeeping for the final scratch check), capped so the join state
	// stays small — each churn Register below solves from scratch, and an
	// unbounded writer would outrun them quadratically.
	stop := make(chan struct{})
	var log []relation.Update
	var writerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		rng := rand.New(rand.NewSource(22))
		names := []string{"R1", "R2", "R3"}
		for len(log) < 160 {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]relation.Update, 1+rng.Intn(4))
			for i := range batch {
				batch[i] = relation.Update{
					Rel: names[rng.Intn(len(names))], Insert: true,
					Row: relation.Tuple{int64(rng.Intn(8)), int64(rng.Intn(8))},
				}
			}
			if _, _, err := srv.Append(batch); err != nil {
				t.Errorf("append: %v", err)
				return
			}
			log = append(log, batch...)
		}
	}()

	// Churners: overlapping registrations of the same two query texts, so
	// every Register lands on a store with live subscribers and every
	// Unregister drops a refcount another query still holds.
	tq, td := triangleQuery(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				id := fmt.Sprintf("churn-%d-%d", g, i)
				qc := QueryConfig{ID: id, Query: pathQuery(t)}
				if i%3 == 0 {
					qc.Query, qc.Options = tq, core.Options{Decomposition: td}
				}
				if _, _, err := srv.Register(qc); err != nil {
					t.Errorf("register %s: %v", id, err)
					return
				}
				if err := srv.Unregister(id); err != nil {
					t.Errorf("unregister %s: %v", id, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	writerWg.Wait()
	if t.Failed() {
		return
	}

	// One more round flushes any releases a busy shard deferred when the
	// churners unregistered mid-round.
	flush := []relation.Update{{Rel: "R1", Insert: true, Row: relation.Tuple{2, 3}}}
	if _, _, err := srv.Append(flush); err != nil {
		t.Fatal(err)
	}
	log = append(log, flush...)
	total := int64(len(log))
	stream := log
	if err := srv.WaitApplied(total); err != nil {
		t.Fatal(err)
	}

	// The pinned query survived the churn with exact answers.
	cur := replayPrefix(t, db, stream, len(stream))
	want, err := core.LocalSensitivity(pathQuery(t), cur, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := srv.View("pin")
	if err != nil {
		t.Fatal(err)
	}
	if v.Count != want.Count || v.LS.LS != want.LS {
		t.Fatalf("pin served (%d, %d), scratch (%d, %d)", v.Count, v.LS.LS, want.Count, want.LS)
	}

	// Every churned refcount was released: only the pinned query's
	// subscriptions remain, and dropping it drains the stores to zero.
	if tot := planTotals(srv); tot.Subscribers == 0 || tot.SharedNodes != 0 {
		t.Fatalf("plan totals %+v after churn, want only the pinned subscriber", tot)
	}
	if err := srv.Unregister("pin"); err != nil {
		t.Fatal(err)
	}
	if tot := planTotals(srv); tot.Subscribers != 0 || tot.Nodes != 0 || tot.Bases != 0 || tot.Residues != 0 {
		t.Fatalf("plan totals %+v after last unregister, want fully drained", tot)
	}
}
