package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"tsens/internal/core"
	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/workload"
)

// parkShard installs a gate that blocks the shard's writer at the start of
// its next round. It returns a channel that receives once the shard is
// parked and a release function (idempotent; also deferred-safe).
func parkShard(sh *shard) (entered chan struct{}, release func()) {
	gateCh := make(chan struct{})
	var once sync.Once
	release = func() { once.Do(func() { close(gateCh) }) }
	entered = make(chan struct{}, 1)
	gate := func(int) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-gateCh
	}
	sh.gate.Store(&gate)
	return entered, release
}

// unitShard returns the shard owning a registered query's sole unit. With
// shared plans on, fallback queries route by query text rather than ID, so
// tests read the installed unit instead of re-deriving the hash.
func unitShard(s *Server, id string) int {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	return s.queries[id].units[0].shard
}

// TestServeAsyncStalledShardIndependence is the async-epochs acceptance
// test: with one shard frozen mid-drain, a query not routed to it (a
// fallback query owned by the healthy shard) keeps advancing to new
// epochs, while the stalled shard's queries and the published joined epoch
// hold at the old consistent cut — no torn read, no sympathy stall.
func TestServeAsyncStalledShardIndependence(t *testing.T) {
	db := testDB(t, 20, 8, 71, "R1", "R2", "R3")
	srv, err := New(db, Options{Shards: 2, Parallelism: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	starID, vStar0, err := srv.Register(QueryConfig{ID: "star", Query: starQuery3(t)})
	if err != nil {
		t.Fatal(err)
	}
	if vStar0.Parts != 2 {
		t.Fatalf("star parts %d, want 2", vStar0.Parts)
	}
	pathID, _, err := srv.Register(QueryConfig{ID: "path", Query: pathQuery(t)})
	if err != nil {
		t.Fatal(err)
	}
	owner := unitShard(srv, pathID)
	slow := 1 - owner // stall the shard the path query is NOT routed to

	entered, release := parkShard(srv.shards[slow])
	defer release()

	stream := workload.UpdateStream(db, 24, 0.4, 72)
	_, to, err := srv.Append(stream)
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the slow shard is parked on its first queued round

	// The healthy shard drains every queued round on its own: the fallback
	// query's view advances all the way to the appended LSN.
	if err := srv.WaitShards([]int{owner}, to); err != nil {
		t.Fatal(err)
	}
	cur := replayPrefix(t, db, stream, len(stream))
	wantPath, err := core.LocalSensitivity(pathQuery(t), cur, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vPath, err := srv.View(pathID)
	if err != nil {
		t.Fatal(err)
	}
	if vPath.Epoch != to || vPath.Count != wantPath.Count || vPath.LS.LS != wantPath.LS {
		t.Fatalf("stalled-shard path view (%d, %d, %d), want (%d, %d, %d)",
			vPath.Epoch, vPath.Count, vPath.LS.LS, to, wantPath.Count, wantPath.LS)
	}

	// Nothing relevant to the stalled shard moves: the joined epoch stays
	// at the pre-round cut and the partitioned query serves its old view.
	if got := srv.Epoch(); got != 0 {
		t.Fatalf("joined epoch %d with a shard parked, want 0", got)
	}
	vStar, err := srv.View(starID)
	if err != nil {
		t.Fatal(err)
	}
	if vStar.Epoch != 0 || vStar.Count != vStar0.Count {
		t.Fatalf("star view (%d, %d) while its shard is parked, want (0, %d)", vStar.Epoch, vStar.Count, vStar0.Count)
	}

	// The per-shard epoch gauge reports the asymmetry: the healthy shard's
	// watermark is at the appended LSN, the parked one's at the seed.
	reg := srv.Metrics()
	if got, ok := reg.Value(fmt.Sprintf("tsens_shard_epoch{shard=%q}", shardLabel(owner))); !ok || got != float64(to) {
		t.Fatalf("tsens_shard_epoch{shard=%d} = %v (ok=%v), want %d", owner, got, ok, to)
	}
	if got, ok := reg.Value(fmt.Sprintf("tsens_shard_epoch{shard=%q}", shardLabel(slow))); !ok || got != 0 {
		t.Fatalf("tsens_shard_epoch{shard=%d} = %v (ok=%v), want 0", slow, got, ok)
	}

	// Release the shard: everything converges on the full cut.
	release()
	if err := srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}
	wantStar, err := core.LocalSensitivity(starQuery3(t), cur, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	vStar, err = srv.View(starID)
	if err != nil {
		t.Fatal(err)
	}
	if vStar.Epoch != to || vStar.Count != wantStar.Count || vStar.LS.LS != wantStar.LS {
		t.Fatalf("released star view (%d, %d, %d), want (%d, %d, %d)",
			vStar.Epoch, vStar.Count, vStar.LS.LS, to, wantStar.Count, wantStar.LS)
	}
}

// TestServeFenceWakesWaiters is the regression test for fencing vs parked
// waiters: a WaitApplied/WaitShards caller blocked on an epoch that will
// not arrive must return the fence error the moment the server is fenced,
// not hang to its own deadline. A wait whose target was already reached
// keeps succeeding on a fenced server.
func TestServeFenceWakesWaiters(t *testing.T) {
	db := testDB(t, 10, 4, 81, "R1", "R2", "R3")
	srv, err := New(db, Options{Shards: 1, Parallelism: 2, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	entered, release := parkShard(srv.shards[0])
	defer release()
	_, to, err := srv.Append([]relation.Update{{Rel: "R1", Row: relation.Tuple{1, 1}, Insert: true}})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // the round is parked: the epoch cannot reach `to`

	applied := make(chan error, 1)
	shards := make(chan error, 1)
	go func() { applied <- srv.WaitApplied(to) }()
	go func() { shards <- srv.WaitShards([]int{0}, to) }()
	// Let both waiters park on the epoch channel before fencing.
	time.Sleep(10 * time.Millisecond)

	cause := errors.New("lease lost")
	srv.Fence(cause)

	for name, ch := range map[string]chan error{"WaitApplied": applied, "WaitShards": shards} {
		select {
		case err := <-ch:
			if !errors.Is(err, ErrFenced) {
				t.Fatalf("%s returned %v after Fence, want ErrFenced", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s still parked 5s after Fence", name)
		}
	}

	// Satisfiable waits still succeed on a fenced server.
	if err := srv.WaitApplied(0); err != nil {
		t.Fatalf("WaitApplied(0) on fenced server: %v", err)
	}
	release()
	// The parked round still drains after release — fencing refuses new
	// state changes, it does not abandon acknowledged ones.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Epoch() < to {
		if time.Now().After(deadline) {
			t.Fatalf("epoch %d never reached %d after release", srv.Epoch(), to)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeRegisterChaseUnderLoad drives Register's bounded off-lock
// catch-up chase under a hostile schedule: the test hook grows the backlog
// past the chase tail before every iteration, pinning that (a) the
// registration cut advances chunk-by-chunk through regCuts, (b) log
// compaction reclaims the replayed prefix mid-registration, and (c) once
// the feed stops the loop exits with only a bounded tail left for the
// under-lock install.
func TestServeRegisterChaseUnderLoad(t *testing.T) {
	db := testDB(t, 15, 6, 91, "R1", "R2", "R3")
	srv, err := New(db, Options{Shards: 2, Parallelism: 2, BatchSize: 4}) // tail = 16
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const chunk = 20 // > tail: every hook round forces one more chase
	stream := workload.UpdateStream(db, 8+3*chunk, 0.4, 92)
	next := 0
	feed := func(n int) int64 {
		t.Helper()
		_, to, err := srv.Append(stream[next : next+n])
		if err != nil {
			t.Fatal(err)
		}
		next += n
		if err := srv.WaitApplied(to); err != nil {
			t.Fatal(err)
		}
		return to
	}
	cut0 := feed(8) // the registration cut the chase starts from

	var chases int
	var lastTo int64 = cut0
	srv.testRegChase = func(chase int, cut, frontier int64) {
		chases++
		if int64(chase) != 0 && cut != lastTo {
			t.Errorf("chase %d: cut %d, want the previous chunk end %d", chase, cut, lastTo)
		}
		if chase >= 1 {
			// The previous iteration advanced the registration cut: the
			// single outstanding regCuts entry must sit exactly at it.
			srv.logMu.Lock()
			if len(srv.regCuts) != 1 {
				t.Errorf("chase %d: %d outstanding regCuts, want 1", chase, len(srv.regCuts))
			}
			for _, c := range srv.regCuts {
				if c != cut {
					t.Errorf("chase %d: regCuts at %d, want %d", chase, c, cut)
				}
			}
			srv.logMu.Unlock()
		}
		if chase >= 2 {
			// With the cut advanced past the replayed prefix, compaction has
			// reclaimed it: the log no longer reaches back to the original cut.
			srv.logMu.Lock()
			base := srv.logBase
			srv.logMu.Unlock()
			if base <= cut0 {
				t.Errorf("chase %d: logBase %d, want > %d (replayed prefix reclaimed)", chase, base, cut0)
			}
		}
		if chase < 3 {
			lastTo = feed(chunk) // outrun the tail: force another chase
		}
	}

	id, v, err := srv.Register(QueryConfig{ID: "chase", Query: pathQuery(t)})
	if err != nil {
		t.Fatal(err)
	}
	if chases != 4 {
		t.Fatalf("chase loop ran %d iterations, want 4 (3 forced + the clean exit)", chases)
	}
	total := int64(next)
	if v.Epoch != total {
		t.Fatalf("registered at epoch %d, want %d", v.Epoch, total)
	}
	cur := replayPrefix(t, db, stream, next)
	want, err := core.LocalSensitivity(pathQuery(t), cur, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Count != want.Count || v.LS.LS != want.LS {
		t.Fatalf("chased registration view (%d, %d), want (%d, %d)", v.Count, v.LS.LS, want.Count, want.LS)
	}
	// The installed query keeps being maintained normally.
	srv.testRegChase = nil
	to := feed(len(stream) - next)
	cur = replayPrefix(t, db, stream, len(stream))
	want, err = core.LocalSensitivity(pathQuery(t), cur, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := srv.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Epoch != to || v2.Count != want.Count || v2.LS.LS != want.LS {
		t.Fatalf("post-chase view (%d, %d, %d), want (%d, %d, %d)",
			v2.Epoch, v2.Count, v2.LS.LS, to, want.Count, want.LS)
	}
}

// BenchmarkServeStalledShardRead measures the read path of a query whose
// owning shard is healthy while another shard is frozen mid-drain — the
// wait-free property async epochs buys: the read assembles its cut from
// the healthy shard's watermark and never blocks on the stalled one.
func BenchmarkServeStalledShardRead(b *testing.B) {
	rng := rand.New(rand.NewSource(101))
	var rels []*relation.Relation
	for _, name := range []string{"R1", "R2", "R3"} {
		rows := make([]relation.Tuple, 50)
		for i := range rows {
			rows[i] = relation.Tuple{int64(rng.Intn(10)), int64(rng.Intn(10))}
		}
		r, err := relation.New(name, []string{name + "_x", name + "_y"}, rows)
		if err != nil {
			b.Fatal(err)
		}
		rels = append(rels, r)
	}
	db, err := relation.NewDatabase(rels...)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := New(db, Options{Shards: 2, Parallelism: 2, BatchSize: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	q, err := query.New("path", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	id, _, err := srv.Register(QueryConfig{ID: "path", Query: q})
	if err != nil {
		b.Fatal(err)
	}
	owner := unitShard(srv, id)
	slow := 1 - owner

	entered, release := parkShard(srv.shards[slow])
	defer release()
	stream := workload.UpdateStream(db, 24, 0.4, 102)
	_, to, err := srv.Append(stream)
	if err != nil {
		b.Fatal(err)
	}
	<-entered
	if err := srv.WaitShards([]int{owner}, to); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := srv.View(id)
		if err != nil {
			b.Fatal(err)
		}
		if v.Epoch != to {
			b.Fatalf("view epoch %d, want %d", v.Epoch, to)
		}
	}
}
