// Package serve implements a long-lived differentially-private query server
// over one logical database, the traffic-serving regime of the roadmap: many
// registered counting queries, each backed by its own incremental session
// (internal/incremental), multiplexed over a shared snapshot plus an
// append-only update log behind a single-writer/multi-reader boundary.
//
// Architecture (docs/SERVING.md has the full treatment):
//
//   - The Server owns a master copy of the database and an append-only log
//     of single-tuple updates. Append validates an update against the static
//     schema and enqueues it; nothing else happens on the caller.
//   - One writer goroutine drains the log in batches: it folds the batch
//     into the master rows, patches every registered session through the
//     incremental delta engine — fanning out across sessions on fresh
//     goroutines, since sessions share no mutable state (the shared
//     par.Pool serves the sessions' own open/rebuild parallelism) — and
//     then publishes, per query, an immutable epoch view (count, LS
//     result, and a drift-gated sensitivity snapshot) through an atomic
//     pointer.
//   - Readers answer Count/LS/noisy-release requests from the last
//     published view: a read is an atomic pointer load plus (for releases)
//     a ledger debit. Readers never take the writer's lock, so they are
//     never blocked on a session patch — only an epoch swap is ever
//     observable as a view change.
//
// The epoch of the server is the number of log entries the writer has
// drained; views carry the epoch they were computed at, so every answer is
// exact for some recently-published epoch (linearizability at epoch
// granularity — the property TestServeConcurrentReaders asserts).
//
// Privacy releases go through mechanism.Release over the view's sensitivity
// snapshot and spend ε from a per-query Ledger; answers replay free of
// charge while the count has not drifted, mirroring StreamingTSensDP (and
// inheriting its caveat: release *timing* is data-dependent).
package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"tsens/internal/core"
	"tsens/internal/incremental"
	"tsens/internal/mechanism"
	"tsens/internal/par"
	"tsens/internal/query"
	"tsens/internal/relation"
)

// ErrNoQuery reports a request against an unregistered query ID.
var ErrNoQuery = errors.New("serve: no such query")

// DefaultBatchSize bounds how many log entries one writer drain folds into a
// single epoch. It sits below incremental.DefaultBulkThreshold so drained
// batches stay on the per-tuple delta path instead of rebuilding.
const DefaultBatchSize = 32

// DefaultDriftFraction gates sensitivity-snapshot refreshes: the writer
// recomputes a query's per-tuple sensitivity vector only when |Q(D)| has
// drifted by this fraction since the snapshot was taken.
const DefaultDriftFraction = 0.1

// DefaultRebuildTombstoneRatio is the tombstone-compaction watermark the
// server sets on every session it opens (see
// incremental.Options.RebuildTombstoneRatio).
const DefaultRebuildTombstoneRatio = 0.5

// Options configures a Server.
type Options struct {
	// Parallelism bounds the writer's fan-out across sessions and each
	// session's open/rebuild parallelism. 0 means GOMAXPROCS.
	Parallelism int
	// Pool supplies worker goroutines; nil makes the server own one sized
	// to Parallelism (closed by Close).
	Pool *par.Pool
	// BatchSize caps log entries per epoch. 0 means DefaultBatchSize.
	BatchSize int
	// BulkThreshold is forwarded to every session (see
	// incremental.Options.BulkThreshold). 0 keeps the session default.
	BulkThreshold int
	// DriftFraction gates sensitivity-snapshot refreshes. 0 means
	// DefaultDriftFraction; negative refreshes every epoch.
	DriftFraction float64
	// RebuildTombstoneRatio is the compaction watermark set on every
	// session. 0 means DefaultRebuildTombstoneRatio; negative disables
	// automatic compaction.
	RebuildTombstoneRatio float64
}

func (o Options) withDefaults() Options {
	if o.BatchSize == 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.DriftFraction == 0 {
		o.DriftFraction = DefaultDriftFraction
	}
	if o.RebuildTombstoneRatio == 0 {
		o.RebuildTombstoneRatio = DefaultRebuildTombstoneRatio
	}
	return o
}

// QueryConfig registers one counting query with the server.
type QueryConfig struct {
	// ID names the query in the API; empty generates one.
	ID string
	// Query is the parsed conjunctive counting query.
	Query *query.Query
	// Options carries the solver options (GHD decomposition for cyclic
	// queries, skip list). Parallelism and Pool are overridden by the
	// server's own.
	Options core.Options
	// Private names the primary private relation for DP releases; empty
	// disables the release endpoint for this query.
	Private string
	// Release parameterizes TSensDP releases (required when Private is
	// set: Epsilon and Bound must be positive).
	Release mechanism.TSensDPConfig
	// Budget is the total ε this query may spend across fresh releases;
	// 0 means unlimited.
	Budget float64
	// Drift is the replay gate: answers replay (spending nothing) while
	// |Q(D)| stays within this fraction of the last released count. 0
	// means DefaultDriftFraction.
	Drift float64
}

// View is one published epoch of one query: everything a reader needs,
// immutable once published.
type View struct {
	// Epoch is the server epoch (log entries applied) this view reflects.
	Epoch int64
	// Count is |Q(D)| at Epoch.
	Count int64
	// LS is the full local-sensitivity result at Epoch.
	LS *core.Result
	// Sens is the sorted per-tuple sensitivity vector of the private
	// relation, taken at SensEpoch (≤ Epoch; refreshed when the count
	// drifts or the session rebuilds). Nil when the query has no private
	// relation. Treat as read-only — releases copy it.
	Sens      []int64
	SensEpoch int64
	// SensCount is |Q(D)| at SensEpoch, the drift baseline.
	SensCount int64
	// Rebuilds is how many full session rebuilds (bulk batches, tombstone
	// compactions) had happened as of Epoch.
	Rebuilds int
	// Err, when non-nil, marks the query failed: the session could not
	// absorb an update batch and stopped being maintained.
	Err error
}

// ReleaseResult is the outcome of one noisy-release request.
type ReleaseResult struct {
	// Epoch and SensEpoch locate the answer: the release reads the
	// sensitivity snapshot of SensEpoch, served at Epoch.
	Epoch     int64
	SensEpoch int64
	// Fresh reports whether ε was spent (true) or the cached release was
	// replayed (false).
	Fresh bool
	// Run is the mechanism execution (Noisy is the released value).
	Run *mechanism.Run
	// Spent is the ε debited by this call; TotalSpent the query's running
	// sum. Remaining is meaningful only when HasBudget.
	Spent      float64
	TotalSpent float64
	Remaining  float64
	HasBudget  bool
}

// QueryInfo summarizes one registered query for listings.
type QueryInfo struct {
	ID       string
	Query    string
	Private  string
	Epoch    int64
	Count    int64
	LS       int64
	Budget   float64
	Spent    float64
	Releases int
	Rebuilds int
	Failed   bool
}

// Stats summarizes the server.
type Stats struct {
	// Epoch is the number of log entries drained by the writer.
	Epoch int64
	// Appended is the number of log entries accepted so far; Epoch lags it
	// by the pending backlog.
	Appended int64
	// Skipped counts log entries the writer refused at apply time (deletes
	// of absent tuples).
	Skipped int64
	// Queries is the number of registered queries.
	Queries int
}

// servedQuery is the per-query state. The writer mutates sess and publishes
// views; readers load views and share the release cache under relMu.
type servedQuery struct {
	id      string
	text    string
	q       *query.Query
	sess    *incremental.Session
	private string
	cfg     mechanism.TSensDPConfig
	drift   float64
	ledger  *mechanism.Ledger

	view atomic.Pointer[View]

	relMu     sync.Mutex // release replay cache; never held by the writer
	lastRun   *mechanism.Run
	lastCount int64
	releases  int
}

// Server is the long-lived serving process. See the package comment for the
// locking discipline; in short: logMu guards the log, stateMu guards the
// master database and every session (writer, Register, Unregister), and
// readers touch neither.
type Server struct {
	opts     Options
	pool     *par.Pool
	ownsPool bool

	logMu   sync.Mutex
	logCond *sync.Cond
	log     []relation.Update
	logBase int64 // absolute log sequence number of log[0]
	closed  bool

	stateMu sync.Mutex
	master  *relation.Database
	rowpos  map[string]*relation.RowSet
	nextID  int

	qmu     sync.RWMutex
	queries map[string]*servedQuery

	epoch    atomic.Int64
	appended atomic.Int64
	skipped  atomic.Int64

	waitMu  sync.Mutex
	epochCh chan struct{}

	done chan struct{}
	wg   sync.WaitGroup
}

// New starts a server over a private copy of db. Close it when done.
func New(db *relation.Database, opts Options) (*Server, error) {
	if db == nil {
		return nil, fmt.Errorf("serve: nil database")
	}
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		master:  db.Clone(),
		queries: make(map[string]*servedQuery),
		epochCh: make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.logCond = sync.NewCond(&s.logMu)
	s.rowpos = make(map[string]*relation.RowSet, len(s.master.Names()))
	for _, name := range s.master.Names() {
		s.rowpos[name] = relation.NewRowSet(s.master.Relation(name))
	}
	if opts.Pool != nil {
		s.pool = opts.Pool
	} else {
		s.pool = par.NewPool(opts.Parallelism)
		s.ownsPool = true
	}
	s.wg.Add(1)
	go s.writer()
	return s, nil
}

// Close stops the writer (pending log entries are dropped) and releases the
// owned pool. Reads keep answering from the last published views.
func (s *Server) Close() {
	s.logMu.Lock()
	if s.closed {
		s.logMu.Unlock()
		return
	}
	s.closed = true
	s.logCond.Broadcast()
	s.logMu.Unlock()
	close(s.done)
	s.wg.Wait()
	if s.ownsPool {
		s.pool.Close()
	}
	s.waitMu.Lock()
	close(s.epochCh) // wake WaitApplied waiters for their closed-check
	s.epochCh = nil
	s.waitMu.Unlock()
}

// Register opens an incremental session for cfg.Query against the current
// epoch and adds it to the multiplexer. It runs on the writer's side of the
// boundary: it waits for the in-flight batch (if any) and holds updates off
// while the session materializes, but never blocks readers of other queries.
func (s *Server) Register(cfg QueryConfig) (string, *View, error) {
	if cfg.Query == nil {
		return "", nil, fmt.Errorf("serve: nil query")
	}
	var ledger *mechanism.Ledger
	if cfg.Private != "" {
		found := false
		for _, a := range cfg.Query.Atoms {
			if a.Relation == cfg.Private {
				found = true
				break
			}
		}
		if !found {
			return "", nil, fmt.Errorf("serve: private relation %q is not an atom of the query", cfg.Private)
		}
		var err error
		if ledger, err = mechanism.NewLedger(cfg.Budget); err != nil {
			return "", nil, err
		}
		if err := cfg.Release.Validate(); err != nil {
			return "", nil, fmt.Errorf("serve: release config: %w", err)
		}
	}
	if cfg.Drift == 0 {
		cfg.Drift = DefaultDriftFraction
	}

	copts := cfg.Options
	copts.Parallelism = s.opts.Parallelism
	copts.Pool = s.pool
	sopts := incremental.Options{
		Options:       copts,
		BulkThreshold: s.opts.BulkThreshold,
	}
	if s.opts.RebuildTombstoneRatio > 0 {
		sopts.RebuildTombstoneRatio = s.opts.RebuildTombstoneRatio
	}

	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	// Resolve the ID before materializing the session: a duplicate must
	// fail cheaply, not after a full solve under the writer's lock.
	// (Registrations serialize on stateMu, so the check cannot go stale.)
	id := cfg.ID
	if id == "" {
		for {
			s.nextID++
			id = fmt.Sprintf("q%d", s.nextID)
			if _, taken := s.queries[id]; !taken {
				break
			}
		}
	} else if _, dup := s.queries[id]; dup {
		return "", nil, fmt.Errorf("serve: query %q already registered", id)
	}
	sess, err := incremental.Open(cfg.Query, s.master, sopts)
	if err != nil {
		return "", nil, err
	}
	sq := &servedQuery{
		id:      id,
		text:    cfg.Query.String(),
		q:       cfg.Query,
		sess:    sess,
		private: cfg.Private,
		cfg:     cfg.Release,
		drift:   cfg.Drift,
		ledger:  ledger,
	}
	epoch := s.epoch.Load()
	if err := sq.publish(epoch, s.opts.DriftFraction); err != nil {
		return "", nil, err
	}
	s.qmu.Lock()
	s.queries[id] = sq
	s.qmu.Unlock()
	return id, sq.view.Load(), nil
}

// Unregister removes a query. Its sessions and views are dropped.
func (s *Server) Unregister(id string) error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if _, ok := s.queries[id]; !ok {
		return fmt.Errorf("%w: %q", ErrNoQuery, id)
	}
	delete(s.queries, id)
	return nil
}

// Append validates ups against the schema and appends them to the update
// log, returning the log sequence range [from, to) they occupy. The writer
// applies them asynchronously; WaitApplied(to) blocks until they are live.
func (s *Server) Append(ups []relation.Update) (from, to int64, err error) {
	for i, up := range ups {
		r := s.master.Relation(up.Rel) // schema is static: safe without stateMu
		if r == nil {
			return 0, 0, fmt.Errorf("serve: update %d: no relation %q", i, up.Rel)
		}
		if len(up.Row) != len(r.Attrs) {
			return 0, 0, fmt.Errorf("serve: update %d: tuple arity %d does not match %s arity %d",
				i, len(up.Row), up.Rel, len(r.Attrs))
		}
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.closed {
		return 0, 0, fmt.Errorf("serve: server closed")
	}
	to = s.appended.Load()
	from = to
	for _, up := range ups {
		s.log = append(s.log, relation.Update{Rel: up.Rel, Row: up.Row.Clone(), Insert: up.Insert})
		to++
	}
	s.appended.Store(to)
	s.logCond.Broadcast()
	return from, to, nil
}

// Epoch returns the number of log entries the writer has drained.
func (s *Server) Epoch() int64 { return s.epoch.Load() }

// WaitApplied blocks until the server epoch reaches lsn (as returned by
// Append) or the server closes.
func (s *Server) WaitApplied(lsn int64) error {
	for {
		if s.epoch.Load() >= lsn {
			return nil
		}
		s.waitMu.Lock()
		ch := s.epochCh
		s.waitMu.Unlock()
		if ch == nil {
			return fmt.Errorf("serve: server closed at epoch %d before %d", s.epoch.Load(), lsn)
		}
		if s.epoch.Load() >= lsn {
			return nil
		}
		<-ch
	}
}

// View returns the last published view of a query — an atomic load; never
// blocked by the writer.
func (s *Server) View(id string) (*View, error) {
	sq, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	v := sq.view.Load()
	if v.Err != nil {
		return nil, fmt.Errorf("serve: query %q failed at epoch %d: %w", id, v.Epoch, v.Err)
	}
	return v, nil
}

// Count returns |Q(D)| at the query's last published epoch.
func (s *Server) Count(id string) (int64, int64, error) {
	v, err := s.View(id)
	if err != nil {
		return 0, 0, err
	}
	return v.Count, v.Epoch, nil
}

// LS returns the local-sensitivity result at the last published epoch.
func (s *Server) LS(id string) (*core.Result, int64, error) {
	v, err := s.View(id)
	if err != nil {
		return nil, 0, err
	}
	return v.LS, v.Epoch, nil
}

// Release answers the query with ε-differential privacy from the published
// sensitivity snapshot, debiting the query's budget ledger. While the
// current count stays within the query's drift fraction of the last released
// one, the cached release replays and nothing is spent. Concurrent releases
// of one query serialize among themselves (replay-cache consistency) but
// never wait on the writer.
func (s *Server) Release(id string, rng *rand.Rand) (*ReleaseResult, error) {
	sq, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	if sq.private == "" {
		return nil, fmt.Errorf("serve: query %q has no private relation; register with Private set", id)
	}
	v := sq.view.Load()
	if v.Err != nil {
		return nil, fmt.Errorf("serve: query %q failed at epoch %d: %w", id, v.Epoch, v.Err)
	}
	sq.relMu.Lock()
	defer sq.relMu.Unlock()
	res := &ReleaseResult{Epoch: v.Epoch, SensEpoch: v.SensEpoch}
	if sq.lastRun != nil && !drifted(v.Count, sq.lastCount, sq.drift) {
		run := *sq.lastRun
		mechanism.Rebase(&run, v.Count)
		res.Run = &run
	} else {
		if err := sq.ledger.Spend(sq.cfg.Epsilon); err != nil {
			return nil, err
		}
		sens := make([]int64, len(v.Sens))
		copy(sens, v.Sens)
		run, err := mechanism.Release(sens, sq.cfg, rng)
		if err != nil {
			return nil, err
		}
		sq.lastRun = run
		sq.lastCount = v.Count
		sq.releases++
		out := *run
		res.Run = &out
		res.Fresh = true
		res.Spent = sq.cfg.Epsilon
	}
	res.TotalSpent = sq.ledger.Spent()
	res.Remaining, res.HasBudget = sq.ledger.Remaining()
	return res, nil
}

// Queries lists the registered queries with their latest views.
func (s *Server) Queries() []QueryInfo {
	s.qmu.RLock()
	sqs := make([]*servedQuery, 0, len(s.queries))
	for _, sq := range s.queries {
		sqs = append(sqs, sq)
	}
	s.qmu.RUnlock()
	out := make([]QueryInfo, 0, len(sqs))
	for _, sq := range sqs {
		v := sq.view.Load()
		info := QueryInfo{
			ID:      sq.id,
			Query:   sq.text,
			Private: sq.private,
			Epoch:   v.Epoch,
			Failed:  v.Err != nil,
		}
		if v.Err == nil {
			info.Count = v.Count
			info.LS = v.LS.LS
			info.Rebuilds = v.Rebuilds
		}
		if sq.ledger != nil {
			info.Budget = sq.ledger.Budget()
			info.Spent = sq.ledger.Spent()
		}
		sq.relMu.Lock()
		info.Releases = sq.releases
		sq.relMu.Unlock()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats returns server-wide counters.
func (s *Server) Stats() Stats {
	s.qmu.RLock()
	n := len(s.queries)
	s.qmu.RUnlock()
	return Stats{
		Epoch:    s.epoch.Load(),
		Appended: s.appended.Load(),
		Skipped:  s.skipped.Load(),
		Queries:  n,
	}
}

func (s *Server) lookup(id string) (*servedQuery, error) {
	s.qmu.RLock()
	sq, ok := s.queries[id]
	s.qmu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoQuery, id)
	}
	return sq, nil
}

// writer is the single mutator: it drains the log in batches, folds each
// batch into the master rows, patches every session, and publishes the new
// epoch.
func (s *Server) writer() {
	defer s.wg.Done()
	drained := int64(0)
	for {
		batch := s.nextBatch(drained)
		if batch == nil {
			return
		}
		s.stateMu.Lock()
		valid := batch[:0:0]
		for _, up := range batch {
			if s.applyToMaster(up) {
				valid = append(valid, up)
			} else {
				s.skipped.Add(1)
			}
		}
		newEpoch := drained + int64(len(batch))
		s.qmu.RLock()
		sqs := make([]*servedQuery, 0, len(s.queries))
		for _, sq := range s.queries {
			sqs = append(sqs, sq)
		}
		s.qmu.RUnlock()
		// Sessions share no mutable state, so patching fans out on fresh
		// goroutines; each publishes its own view as soon as it is done.
		// (Plain par.Do, not pool.Do: a session rebuild inside the patch
		// borrows the pool itself, and pool workers must not block on
		// nested pool waits.)
		_ = par.Do(s.opts.Parallelism, len(sqs), func(i int) error {
			sq := sqs[i]
			if sq.view.Load().Err != nil {
				return nil // failed earlier; leave the tombstone view
			}
			if err := sq.sess.Apply(valid); err != nil {
				sq.view.Store(&View{Epoch: newEpoch, Err: err})
				return nil
			}
			if err := sq.publish(newEpoch, s.opts.DriftFraction); err != nil {
				sq.view.Store(&View{Epoch: newEpoch, Err: err})
			}
			return nil
		})
		// The epoch advances before stateMu releases, so a Register that
		// takes over the lock reads an epoch consistent with the master
		// rows it opens against.
		s.epoch.Store(newEpoch)
		s.stateMu.Unlock()
		drained = newEpoch
		s.waitMu.Lock()
		if s.epochCh != nil {
			close(s.epochCh)
			s.epochCh = make(chan struct{})
		}
		s.waitMu.Unlock()
	}
}

// nextBatch blocks until log entries past off exist and returns at most
// BatchSize of them. A closed server returns nil immediately: Close drops
// the backlog instead of making the caller wait out a full drain.
//
// It also compacts the log: everything before off has been drained and is
// never read again (the writer processed the previous batch fully before
// calling back in), so once the drained prefix dominates the slice the
// undrained tail moves to a fresh allocation and logBase advances. The
// half-full trigger amortizes the copy to O(1) per entry while keeping a
// long-lived server's log proportional to its backlog, not its history.
func (s *Server) nextBatch(off int64) []relation.Update {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if pre := off - s.logBase; pre > 0 && 2*pre >= int64(len(s.log)) {
		s.log = append([]relation.Update(nil), s.log[pre:]...)
		s.logBase = off
	}
	for s.logBase+int64(len(s.log)) <= off && !s.closed {
		s.logCond.Wait()
	}
	if s.closed || s.logBase+int64(len(s.log)) <= off {
		return nil
	}
	start := off - s.logBase
	end := int64(len(s.log))
	if end > start+int64(s.opts.BatchSize) {
		end = start + int64(s.opts.BatchSize)
	}
	return s.log[start:end]
}

// applyToMaster folds one update into the master rows, reporting false for
// deletes of absent tuples (which the sessions must not see).
func (s *Server) applyToMaster(up relation.Update) bool {
	r := s.master.Relation(up.Rel)
	rs := s.rowpos[up.Rel]
	if up.Insert {
		rs.Insert(r, up.Row)
		return true
	}
	return rs.TryRemove(r, up.Row)
}

// publish computes and stores the query's view for epoch. Only the writer
// (or Register, under stateMu) calls it, so reading the live session here is
// race-free. The sensitivity snapshot carries over from the previous view
// until the count drifts past driftFrac or the session rebuilt (a rebuild
// re-materializes the private relation, so the old per-row vector may no
// longer describe it).
func (sq *servedQuery) publish(epoch int64, driftFrac float64) error {
	count := sq.sess.Count()
	res, err := sq.sess.LS()
	if err != nil {
		return err
	}
	v := &View{Epoch: epoch, Count: count, LS: res, Rebuilds: sq.sess.Rebuilds()}
	if sq.private != "" {
		old := sq.view.Load()
		if old != nil && old.Sens != nil && old.Rebuilds == v.Rebuilds &&
			driftFrac >= 0 && !drifted(count, old.SensCount, driftFrac) {
			v.Sens, v.SensEpoch, v.SensCount = old.Sens, old.SensEpoch, old.SensCount
		} else {
			fn, err := sq.sess.SensitivityFn(sq.private)
			if err != nil {
				return err
			}
			rows := sq.sess.Rows(sq.private)
			sens := make([]int64, len(rows))
			for i, row := range rows {
				sens[i] = fn(row)
			}
			sort.Slice(sens, func(i, j int) bool { return sens[i] < sens[j] })
			v.Sens, v.SensEpoch, v.SensCount = sens, epoch, count
		}
	}
	sq.view.Store(v)
	return nil
}

func drifted(cur, base int64, frac float64) bool {
	b := base
	if b < 0 {
		b = -b
	}
	if b < 1 {
		b = 1
	}
	d := cur - base
	if d < 0 {
		d = -d
	}
	return float64(d) > frac*float64(b)
}
