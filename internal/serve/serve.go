// Package serve implements a long-lived differentially-private query server
// over one logical database, the traffic-serving regime of the roadmap: many
// registered counting queries, each backed by incremental session state
// (internal/incremental), multiplexed over a shared snapshot plus an
// append-only update log behind a sharded-writer/multi-reader boundary.
//
// Architecture (docs/SERVING.md has the full treatment):
//
//   - The Server owns a master copy of the database and an append-only log
//     of single-tuple updates. Append validates an update against the static
//     schema and enqueues it; nothing else happens on the caller.
//   - The write path is sharded (Options.Shards): every update is routed to
//     a shard by the hash of its relation's partition-column value, and each
//     shard owns a writer goroutine plus the session state reachable from
//     its partition (shard.go). A coordinator goroutine drains the log in
//     batches, folds each batch into the master rows, and hands every shard
//     the same round. In async mode (Options.AsyncEpochs, the default) each
//     shard drains its queue of rounds at its own pace, publishing per-unit
//     version-ring entries stamped with each round's cut; readers assemble a
//     consistent cut at read time from the joined minimum of the relevant
//     shards' watermarks, so one stalled shard delays only the queries it
//     owns. In coordinated mode the coordinator waits for every shard on a
//     per-round barrier and then merges and publishes, per query, an
//     immutable epoch view (count, LS result, and a drift-gated sensitivity
//     snapshot) through an atomic pointer. Either way a view always
//     describes one consistent cut of the log, never a mix of shards at
//     different progress.
//   - Readers answer Count/LS/noisy-release requests from the last
//     published view: a read is an atomic pointer load plus (for releases)
//     a ledger debit. Readers never take the writer's lock, so they are
//     never blocked on a session patch — only an epoch swap is ever
//     observable as a view change.
//
// The epoch of the server is the number of log entries every shard has
// folded (the joined cut of the per-shard watermarks); views carry the
// epoch they were computed at, so every answer is exact for some
// recently-published epoch (linearizability at epoch granularity — the
// property TestServeConcurrentReaders and internal/serve/difftest assert).
//
// Registration no longer stalls the drain loop for the length of a solve:
// Register snapshots the master at a cut (a row copy, under the state
// lock), materializes the new session state off-lock while shards keep
// draining, then catches the sessions up through the log entries it missed
// and installs them at the current epoch.
//
// Privacy releases go through mechanism.Release over the view's sensitivity
// snapshot and spend ε from a per-query Ledger; answers replay free of
// charge while the count has not drifted, mirroring StreamingTSensDP (and
// inheriting its caveat: release *timing* is data-dependent).
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tsens/internal/core"
	"tsens/internal/incremental"
	"tsens/internal/mechanism"
	"tsens/internal/obs"
	"tsens/internal/par"
	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/serve/wal"
)

// ErrNoQuery reports a request against an unregistered query ID.
var ErrNoQuery = errors.New("serve: no such query")

// ErrFenced reports a write refused because the server lost its claim to
// leadership (replication failover demoted it). A fenced server keeps
// serving reads from its published views but never acknowledges another
// state change — the fencing half of the ε-single-writer rule.
var ErrFenced = errors.New("serve: fenced: leadership lost")

// DefaultBatchSize bounds how many log entries one coordinated round folds
// into a single epoch. It sits below incremental.DefaultBulkThreshold so
// drained batches stay on the per-tuple delta path instead of rebuilding.
const DefaultBatchSize = 32

// DefaultDriftFraction gates sensitivity-snapshot refreshes: the writer
// recomputes a query's per-tuple sensitivity vector only when |Q(D)| has
// drifted by this fraction since the snapshot was taken.
const DefaultDriftFraction = 0.1

// DefaultRebuildTombstoneRatio is the tombstone-compaction watermark the
// server sets on every session it opens (see
// incremental.Options.RebuildTombstoneRatio).
const DefaultRebuildTombstoneRatio = 0.5

// DefaultMaxShards caps the GOMAXPROCS-derived default shard count: past a
// handful of shards the coordinator's barrier and merge dominate before
// typical session-patch work does.
const DefaultMaxShards = 8

// Options configures a Server.
type Options struct {
	// Parallelism bounds each shard's fan-out across its units and each
	// session's open/rebuild parallelism. 0 means GOMAXPROCS.
	Parallelism int
	// Pool supplies worker goroutines; nil makes the server own one sized
	// to Parallelism (closed by Close).
	Pool *par.Pool
	// BatchSize caps log entries per epoch. 0 means DefaultBatchSize.
	BatchSize int
	// BulkThreshold is forwarded to every session (see
	// incremental.Options.BulkThreshold). 0 keeps the session default.
	BulkThreshold int
	// DriftFraction gates sensitivity-snapshot refreshes. 0 means
	// DefaultDriftFraction; negative refreshes every epoch.
	DriftFraction float64
	// RebuildTombstoneRatio is the compaction watermark set on every
	// session. 0 means DefaultRebuildTombstoneRatio; negative disables
	// automatic compaction.
	RebuildTombstoneRatio float64
	// Shards is the number of write-path shards (per-shard writer
	// goroutines; see shard.go). 0 means min(GOMAXPROCS, DefaultMaxShards);
	// 1 restores the single-writer pipeline.
	Shards int
	// PartitionColumns maps a relation name to the column whose value
	// routes its updates (and partitions its rows for sharded sessions).
	// Unlisted relations route on column 0. Entries must name existing
	// relations and in-range columns.
	PartitionColumns map[string]int
	// WALDir, when non-empty, makes the server durable: every Append,
	// Register/Unregister, and fresh ε-spend is journaled to a write-ahead
	// log there before it is acknowledged, and periodic checkpoints bound
	// recovery replay (durable.go; docs/SERVING.md "Durability"). New
	// recovers an existing directory — registered queries, their epochs,
	// and their exact spent ε come back — and seeds a fresh one with an
	// initial checkpoint, after which the directory alone suffices to
	// restart (the db argument may then be nil).
	WALDir string
	// SyncEvery is the WAL fsync cadence in records: 1 (the default) syncs
	// before every acknowledgment — the only setting under which an
	// acknowledged write survives an arbitrary crash — while larger values
	// batch fsyncs and bound loss to the unsynced suffix.
	SyncEvery int
	// CheckpointEvery is the number of drained log entries between
	// checkpoint captures. 0 means DefaultCheckpointEvery; negative
	// checkpoints only at boot and graceful Close.
	CheckpointEvery int
	// WALCodec renders tuple values to their durable textual form (and
	// re-encodes them on recovery). nil means IntCodec; pass the csvio
	// loader of the snapshot so string-valued data round-trips through one
	// dictionary.
	WALCodec Codec
	// WALFS substitutes the filesystem the WAL runs on. nil means the real
	// OS; the fault-injection harness (internal/serve/faultfs) passes an FS
	// that can fail fsyncs and simulate machine crashes.
	WALFS wal.FS
	// Metrics is the registry every layer of the server records into
	// (drain rounds, shard patches, WAL timings, session timings, ε
	// gauges); exposed at GET /metrics and GET /debug/vars by the HTTP API.
	// nil makes the server create a private one (Server.Metrics returns
	// it). Pass one process-level registry when several servers share a
	// process — a replication follower's passive server and its promoted
	// successor, for instance — so the scrape endpoint survives the swap.
	Metrics *obs.Registry
	// Debug opts into the pprof handlers (GET /debug/pprof/*) on the HTTP
	// API. Off by default: profiles expose operational detail the public
	// serving surface should not.
	Debug bool
	// Traces collects completed request traces (obs.TraceRecorder): every
	// appended batch is traced from ingress through shard routing, WAL
	// append/fsync, the drain round, per-shard patches, and publish, and
	// served at GET /debug/traces. nil makes the server create its own
	// over Metrics. Pass one process-level recorder when several servers
	// share a process (follower resets, promotion), mirroring Metrics.
	Traces *obs.TraceRecorder
	// SlowThreshold marks traces slow (always kept by the recorder) and
	// gates the slow-query log: any drain round or release over it logs
	// one structured line with its trace breakdown. 0 means
	// obs.DefaultSlowThreshold.
	SlowThreshold time.Duration
	// AsyncEpochs selects the drain discipline (docs/SERVING.md "Consistent
	// cuts"). nil or true (the default) lets every shard drain its rounds
	// independently, with readers assembling consistent cuts from per-unit
	// version rings at read time; false restores the coordinated per-round
	// barrier, under which the coordinator publishes every view itself.
	// Both modes expose identical semantics (the difftest matrix diffs
	// them); async trades a slightly costlier read path for write-side
	// isolation between shards. Use Bool to set it.
	AsyncEpochs *bool
	// SharedPlans hash-conses join-tree state across registered queries
	// (docs/SERVING.md "Registration and plan sharing"): each shard keeps
	// a plan store per sharing domain, and a query registering a subtree
	// some live query already maintains adopts the canonical tables
	// instead of duplicating them, with one patch fanning out to every
	// subscriber. nil or true (the default) enables sharing; false keeps
	// every session fully private. Both settings expose identical
	// semantics (the difftest matrix diffs them). Use Bool to set it.
	SharedPlans *bool
	// Logger receives the server's structured log lines (obs.Logger).
	// nil disables logging — every log site is nil-safe.
	Logger *obs.Logger
}

// Bool boxes a bool for optional Options fields (AsyncEpochs, SharedPlans).
func Bool(v bool) *bool { return &v }

func (o Options) withDefaults() Options {
	if o.BatchSize == 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.DriftFraction == 0 {
		o.DriftFraction = DefaultDriftFraction
	}
	if o.RebuildTombstoneRatio == 0 {
		o.RebuildTombstoneRatio = DefaultRebuildTombstoneRatio
	}
	if o.Shards == 0 {
		o.Shards = par.N(0)
		if o.Shards > DefaultMaxShards {
			o.Shards = DefaultMaxShards
		}
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.SyncEvery == 0 {
		o.SyncEvery = 1
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = DefaultCheckpointEvery
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.SlowThreshold <= 0 {
		o.SlowThreshold = obs.DefaultSlowThreshold
	}
	if o.Traces == nil {
		o.Traces = obs.NewTraceRecorder(o.Metrics, 0, o.SlowThreshold)
	}
	return o
}

// QueryConfig registers one counting query with the server.
type QueryConfig struct {
	// ID names the query in the API; empty generates one.
	ID string
	// Query is the parsed conjunctive counting query.
	Query *query.Query
	// Options carries the solver options (GHD decomposition for cyclic
	// queries, skip list). Parallelism and Pool are overridden by the
	// server's own.
	Options core.Options
	// Private names the primary private relation for DP releases; empty
	// disables the release endpoint for this query.
	Private string
	// Release parameterizes TSensDP releases (required when Private is
	// set: Epsilon and Bound must be positive).
	Release mechanism.TSensDPConfig
	// Budget is the total ε this query may spend across fresh releases;
	// 0 means unlimited.
	Budget float64
	// Drift is the replay gate: answers replay (spending nothing) while
	// |Q(D)| stays within this fraction of the last released count. 0
	// means DefaultDriftFraction.
	Drift float64
}

// View is one published epoch of one query: everything a reader needs,
// immutable once published. Views are always published at a joined cut —
// every shard has folded its updates below Epoch — so a view of a
// partitioned query never mixes shards at different progress.
type View struct {
	// Epoch is the server epoch (log entries applied) this view reflects.
	Epoch int64
	// Count is |Q(D)| at Epoch.
	Count int64
	// LS is the full local-sensitivity result at Epoch (merged across
	// partitions for a sharded query).
	LS *core.Result
	// Sens is the sorted per-tuple sensitivity vector of the private
	// relation, taken at SensEpoch (≤ Epoch; refreshed when the count
	// drifts or a session rebuilds). Nil when the query has no private
	// relation. Treat as read-only — releases copy it.
	Sens      []int64
	SensEpoch int64
	// SensCount is |Q(D)| at SensEpoch, the drift baseline.
	SensCount int64
	// Rebuilds is how many full session rebuilds (bulk batches, tombstone
	// compactions) had happened as of Epoch, summed over partitions.
	Rebuilds int
	// Parts is the number of session partitions backing the query: the
	// server's shard count for a partitionable query, 1 for a fallback one.
	Parts int
	// Err, when non-nil, marks the query failed: a session could not
	// absorb an update batch and stopped being maintained.
	Err error
}

// ReleaseResult is the outcome of one noisy-release request.
type ReleaseResult struct {
	// Epoch and SensEpoch locate the answer: the release reads the
	// sensitivity snapshot of SensEpoch, served at Epoch.
	Epoch     int64
	SensEpoch int64
	// Fresh reports whether ε was spent (true) or the cached release was
	// replayed (false).
	Fresh bool
	// Run is the mechanism execution (Noisy is the released value).
	Run *mechanism.Run
	// Spent is the ε debited by this call; TotalSpent the query's running
	// sum. Remaining is meaningful only when HasBudget.
	Spent      float64
	TotalSpent float64
	Remaining  float64
	HasBudget  bool
}

// QueryInfo summarizes one registered query for listings.
type QueryInfo struct {
	ID       string
	Query    string
	Private  string
	Epoch    int64
	Count    int64
	LS       int64
	Budget   float64
	Spent    float64
	Releases int
	Rebuilds int
	// Parts is the number of session partitions (see View.Parts), and
	// PartitionVar the variable the query is partitioned on ("" for a
	// fallback query on its designated shard).
	Parts        int
	PartitionVar string
	Failed       bool
}

// Stats summarizes the server.
type Stats struct {
	// Epoch is the last published consistent cut: the number of log
	// entries folded by every shard and reflected in the views.
	Epoch int64
	// Appended is the number of log entries accepted so far; Epoch lags it
	// by the pending backlog.
	Appended int64
	// Skipped counts log entries the coordinator refused at apply time
	// (deletes of absent tuples).
	Skipped int64
	// Queries is the number of registered queries.
	Queries int
	// Shards is the number of write-path shards; Watermarks[i] is the LSN
	// through which shard i has folded its routed entries (each ≥ Epoch
	// while a round is in flight, = Epoch at rest). In async mode the
	// watermarks are the authoritative frontier — Epoch is their join.
	Shards     int
	Watermarks []int64
	// Async reports the drain discipline (Options.AsyncEpochs).
	Async bool
	// WAL reports whether the server is durable (Options.WALDir);
	// DurableEpoch is then the epoch covered by the last installed
	// checkpoint (recovery replays the WAL tail past it).
	WAL          bool
	DurableEpoch int64
}

// servedQuery is the per-query state. The shard writers mutate the unit
// sessions, the coordinator merges and publishes views, and readers load
// views and share the release cache under relMu.
type servedQuery struct {
	id      string
	text    string
	q       *query.Query
	units   []*unit
	partVar string // partition variable; "" for fallback queries
	private string
	cfg     mechanism.TSensDPConfig
	sopts   core.Options // solver options as registered (for journaling)
	drift   float64
	ledger  *mechanism.Ledger

	view atomic.Pointer[View]

	relMu     sync.Mutex // release replay cache; never held by writers
	lastRun   *mechanism.Run
	lastCount int64
	releases  int
}

// Server is the long-lived serving process. See the package comment for the
// locking discipline; in short: logMu guards the log and the registration
// cuts, stateMu guards the master database, the shard unit lists, and every
// session (coordinator rounds, Register, Unregister), and readers touch
// neither. Lock order is stateMu before logMu.
type Server struct {
	opts     Options
	pool     *par.Pool
	ownsPool bool
	pcols    map[string]int // relation → routing column
	m        *serverMetrics

	// traces and logger are the request-tracing surfaces (Options.Traces /
	// Options.Logger); traceLog runs parallel to log, holding each entry's
	// in-flight trace (nil for untraced entries, e.g. recovery replay) so
	// the drain round can stamp its stages onto the traces it folds.
	traces *obs.TraceRecorder
	logger *obs.Logger

	logMu    sync.Mutex
	logCond  *sync.Cond
	log      []relation.Update
	traceLog []*obs.ActiveTrace
	logBase  int64 // absolute log sequence number of log[0]
	regCuts  map[int]int64
	nextReg  int
	closed   bool // CloseNow: stop immediately, abandon the backlog
	drain    bool // Close: refuse new appends, drain the backlog, then stop

	// wal is the durability glue (nil without Options.WALDir): journaled
	// appends/registrations/spends and the checkpoint writer (durable.go).
	wal *durableLog

	stateMu  sync.Mutex
	master   *relation.Database
	rowpos   map[string]*relation.RowSet
	nextID   int
	regSeq   int64           // journaled registration sequence (durable.go)
	reserved map[string]bool // IDs mid-registration (solve in flight)

	qmu     sync.RWMutex
	queries map[string]*servedQuery

	shards []*shard
	async  bool // Options.AsyncEpochs resolved (nil → true)

	// sharedPlans is Options.SharedPlans resolved (nil → true); plans
	// holds each shard's two sharing domains (partitioned / fallback)
	// when on. See plans.go.
	sharedPlans bool
	plans       []*planDomain

	epoch    atomic.Int64
	appended atomic.Int64
	skipped  atomic.Int64

	// frontier is the fold frontier: the LSN through which the coordinator
	// has folded the log into the master rows (and enqueued rounds). Under
	// stateMu the master always reflects exactly frontier — which in async
	// mode may lead epoch, the joined cut the views have reached. In
	// coordinated mode the two advance together.
	frontier atomic.Int64

	// epochGaugeMu serializes refreshing the epoch gauge against the
	// shard-side CAS races of async mode: a shard that wins the CAS but is
	// preempted before the gauge write must not later clobber a newer value,
	// so writers re-load the epoch under this mutex before setting it.
	epochGaugeMu sync.Mutex

	// testRegChase, when set, runs at the top of each off-lock catch-up
	// chase iteration of Register (no locks held) — a hostile-scheduler
	// test hook that can grow the backlog to force further chases.
	testRegChase func(chase int, cut, frontier int64)

	// fence, once set, makes every state-changing entry point fail with the
	// stored error (reads keep answering). Set by the replication layer when
	// this process loses its lease — see Fence.
	fence atomic.Pointer[error]

	waitMu  sync.Mutex
	epochCh chan struct{}

	done chan struct{}
	wg   sync.WaitGroup
}

// New starts a server over a private copy of db. Close it when done.
//
// With Options.WALDir set the server is durable: a fresh directory is
// seeded with a checkpoint of db, an existing one is recovered — every
// registered query comes back at its exact epoch with its exact spent ε,
// and acknowledged appends are never lost. On recovery db is ignored (and
// may be nil): the WAL directory is the authoritative state.
func New(db *relation.Database, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.WALDir != "" {
		return openDurable(db, opts)
	}
	if db == nil {
		return nil, fmt.Errorf("serve: nil database")
	}
	return newServer(db.Clone(), opts, serverInit{}, nil)
}

// serverInit carries recovered counters into newServer: the epoch the
// master rows describe (log entries already folded into them) and the skip
// count accumulated getting there.
type serverInit struct {
	epoch   int64
	skipped int64
}

// newServer assembles and starts a server around master (ownership
// transfers; callers clone). init positions the log counters for recovery;
// dl, when non-nil, attaches the WAL before any goroutine starts.
func newServer(master *relation.Database, opts Options, init serverInit, dl *durableLog) (*Server, error) {
	s := &Server{
		opts:     opts,
		master:   master,
		wal:      dl,
		logBase:  init.epoch,
		queries:  make(map[string]*servedQuery),
		reserved: make(map[string]bool),
		regCuts:  make(map[int]int64),
		epochCh:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.traces = opts.Traces
	s.logger = opts.Logger
	s.async = opts.AsyncEpochs == nil || *opts.AsyncEpochs
	s.sharedPlans = opts.SharedPlans == nil || *opts.SharedPlans
	s.epoch.Store(init.epoch)
	s.frontier.Store(init.epoch)
	s.appended.Store(init.epoch)
	s.skipped.Store(init.skipped)
	s.m = newServerMetrics(opts.Metrics)
	s.m.epoch.Set(float64(init.epoch))
	s.m.appended.Set(float64(init.epoch))
	s.m.skipped.Set(float64(init.skipped))
	s.m.queries.Set(0)
	if dl != nil {
		dl.m = s.m
	}
	s.logCond = sync.NewCond(&s.logMu)
	s.rowpos = make(map[string]*relation.RowSet, len(s.master.Names()))
	s.pcols = make(map[string]int, len(s.master.Names()))
	for _, name := range s.master.Names() {
		s.rowpos[name] = relation.NewRowSet(s.master.Relation(name))
		s.pcols[name] = 0
	}
	for rel, col := range opts.PartitionColumns {
		r := s.master.Relation(rel)
		if r == nil {
			return nil, fmt.Errorf("serve: partition column for unknown relation %q", rel)
		}
		if col < 0 || col >= len(r.Attrs) {
			return nil, fmt.Errorf("serve: partition column %d out of range for %s (arity %d)", col, rel, len(r.Attrs))
		}
		s.pcols[rel] = col
	}
	if opts.Pool != nil {
		s.pool = opts.Pool
	} else {
		s.pool = par.NewPool(opts.Parallelism)
		s.ownsPool = true
	}
	s.shards = make([]*shard, opts.Shards)
	for i := range s.shards {
		sh := &shard{id: i, patch: s.m.shardPatch.With(shardLabel(i))}
		sh.cond = sync.NewCond(&sh.mu)
		sh.watermark.Store(init.epoch)
		s.m.shardEpoch.With(shardLabel(i)).Set(float64(init.epoch))
		s.shards[i] = sh
	}
	if s.sharedPlans {
		s.plans = newPlanDomains(len(s.shards))
	}
	s.wg.Add(1 + len(s.shards))
	go s.writer()
	for _, sh := range s.shards {
		go sh.run(s)
	}
	if dl != nil {
		go func() {
			defer close(dl.ckptDone)
			for ck := range dl.ckptCh {
				// Best-effort: a failed periodic write leaves the previous
				// checkpoint in place and the uncovered segments unpruned —
				// recovery just replays a longer tail.
				_ = s.writeCheckpoint(ck)
			}
		}()
	}
	return s, nil
}

// Close stops the server gracefully: new appends are refused, the already
// acknowledged backlog is drained through the shards to a consistent cut
// (so an Append that returned success is never lost by a clean shutdown),
// a final checkpoint is written when durable, and the owned pool is
// released. Reads keep answering from the last published views. Use
// CloseNow to abandon the backlog instead.
func (s *Server) Close() { s.close(false) }

// CloseNow stops the coordinator and the shard writers immediately,
// abandoning appended-but-undrained log entries — the pre-durability Close
// behavior, and the crash stand-in the recovery tests kill servers with.
// With a WAL attached the abandoned entries are still on disk: a restart
// recovers and folds them.
func (s *Server) CloseNow() { s.close(true) }

func (s *Server) close(now bool) {
	s.logMu.Lock()
	if s.closed || s.drain {
		s.logMu.Unlock()
		return
	}
	if now {
		s.closed = true
	} else {
		s.drain = true
	}
	s.logCond.Broadcast()
	s.logMu.Unlock()
	close(s.done)
	s.wg.Wait()
	if s.wal != nil {
		close(s.wal.ckptCh)
		<-s.wal.ckptDone
		if !now && s.wal.enabled() {
			_ = s.checkpointSync()
		}
		_ = s.wal.log.Close()
	}
	if s.ownsPool {
		s.pool.Close()
	}
	s.waitMu.Lock()
	close(s.epochCh) // wake WaitApplied/WaitShards waiters for their closed-check
	s.epochCh = nil
	s.waitMu.Unlock()
}

// Fence permanently demotes the server: every subsequent Append, Register,
// Unregister, and Release fails with an error wrapping ErrFenced (reason,
// when non-nil, is attached), while reads keep serving the last published
// views. The replication layer fences a leader the moment it can no longer
// prove it holds the lease, so a promoted successor and a demoted
// predecessor can never both acknowledge writes — in particular never both
// spend from the same ε-ledger.
// Fencing also wakes parked WaitApplied/WaitShards waiters: a client
// waiting for an epoch on a just-demoted leader gets the fence error
// immediately instead of hanging to its own deadline. A waiter whose
// target was already reached still succeeds (the reached check runs
// first); one fenced mid-wait fails even if the remaining backlog would
// eventually drain — the caller should re-resolve the leader anyway.
func (s *Server) Fence(reason error) {
	err := ErrFenced
	if reason != nil {
		err = fmt.Errorf("%w: %v", ErrFenced, reason)
	}
	s.fence.CompareAndSwap(nil, &err) // first demotion wins; never unfence
	s.notify()                        // wake waiters so they observe the fence
}

func (s *Server) fenced() error {
	if p := s.fence.Load(); p != nil {
		return *p
	}
	return nil
}

// Register opens incremental session state for cfg.Query and adds it to the
// multiplexer. The expensive solve runs off the writer's lock: Register
// snapshots the master at the current cut (briefly pausing the drain for a
// row copy), materializes the sessions while the shards keep draining, then
// replays the log entries drained in the meantime and installs the query at
// the live epoch. A partitionable query (incremental.PartitionVar over the
// server's routing columns) gets one sub-session per shard; anything else
// gets one full session on a designated shard.
func (s *Server) Register(cfg QueryConfig) (string, *View, error) {
	if err := s.fenced(); err != nil {
		return "", nil, err
	}
	defer s.m.reg.Span("serve.register", s.m.registerSecs)()
	if cfg.Query == nil {
		return "", nil, fmt.Errorf("serve: nil query")
	}
	var ledger *mechanism.Ledger
	if cfg.Private != "" {
		found := false
		for _, a := range cfg.Query.Atoms {
			if a.Relation == cfg.Private {
				found = true
				break
			}
		}
		if !found {
			return "", nil, fmt.Errorf("serve: private relation %q is not an atom of the query", cfg.Private)
		}
		var err error
		if ledger, err = mechanism.NewLedger(cfg.Budget); err != nil {
			return "", nil, err
		}
		if err := cfg.Release.Validate(); err != nil {
			return "", nil, fmt.Errorf("serve: release config: %w", err)
		}
	}
	if cfg.Drift == 0 {
		cfg.Drift = DefaultDriftFraction
	}

	copts := cfg.Options
	copts.Parallelism = s.opts.Parallelism
	copts.Pool = s.pool
	sopts := incremental.Options{
		Options:       copts,
		BulkThreshold: s.opts.BulkThreshold,
		Metrics:       s.m.reg,
		Logger:        s.logger,
	}
	if s.opts.RebuildTombstoneRatio > 0 {
		sopts.RebuildTombstoneRatio = s.opts.RebuildTombstoneRatio
	}

	// Phase 1 — reserve the ID and snapshot the master at a cut. This is
	// the only part that pauses the drain, and it is a row copy, not a
	// solve. (Registrations serialize their checks on stateMu, so the
	// duplicate test cannot go stale: later writes re-check reserved.)
	s.stateMu.Lock()
	id := cfg.ID
	if id == "" {
		for {
			s.nextID++
			id = fmt.Sprintf("q%d", s.nextID)
			if _, taken := s.queries[id]; !taken && !s.reserved[id] {
				break
			}
		}
	} else if _, dup := s.queries[id]; dup || s.reserved[id] {
		s.stateMu.Unlock()
		return "", nil, fmt.Errorf("serve: query %q already registered", id)
	}
	s.reserved[id] = true
	snap := s.master.Clone()
	// The snapshot reflects the fold frontier, not the published epoch —
	// in async mode the coordinator may have folded (and enqueued) rounds
	// the shards have not finished, and those entries are already in the
	// master rows the clone copied.
	cut := s.frontier.Load()
	s.logMu.Lock()
	token := s.nextReg
	s.nextReg++
	s.regCuts[token] = cut // holds log compaction back past the cut
	s.logMu.Unlock()
	s.stateMu.Unlock()

	fail := func(err error) (string, *View, error) {
		s.logMu.Lock()
		delete(s.regCuts, token)
		s.logMu.Unlock()
		s.stateMu.Lock()
		delete(s.reserved, id)
		s.stateMu.Unlock()
		return "", nil, err
	}

	// Phase 2 — materialize the session state off-lock.
	sq := &servedQuery{
		id:      id,
		text:    cfg.Query.String(),
		q:       cfg.Query,
		private: cfg.Private,
		cfg:     cfg.Release,
		sopts:   cfg.Options,
		drift:   cfg.Drift,
		ledger:  ledger,
	}
	partitioned := false
	if len(s.shards) > 1 {
		if v, ok := incremental.PartitionVar(cfg.Query, s.pcol); ok {
			partitioned = true
			sq.partVar = v
		}
	}
	if partitioned {
		subs, err := incremental.SplitDatabase(snap, s.pcol, len(s.shards))
		if err != nil {
			return fail(err)
		}
		units := make([]*unit, len(s.shards))
		err = par.Do(s.opts.Parallelism, len(units), func(i int) error {
			sess, oerr := incremental.Open(cfg.Query, subs[i], sopts)
			if oerr != nil {
				return oerr
			}
			units[i] = &unit{sq: sq, sess: sess, shard: i, part: i}
			return nil
		})
		if err != nil {
			return fail(err)
		}
		sq.units = units
	} else {
		sess, err := incremental.Open(cfg.Query, snap, sopts)
		if err != nil {
			return fail(err)
		}
		key := id
		if s.sharedPlans {
			// Identical unpartitionable queries must land on the same
			// shard to share state, so the designated owner is keyed by
			// query text, not ID. Recovery re-registers the same text, so
			// the assignment is stable across restarts.
			key = sq.text
		}
		sq.units = []*unit{{sq: sq, sess: sess, shard: s.fallbackShard(key), part: -1}}
	}

	// Phase 3 — catch up and install. Replaying the entries drained since
	// the snapshot mirrors the master's absent-delete skips via
	// Session.Has. While the gap to the live epoch is large, the replay
	// runs *off-lock* (the sessions are still private to this goroutine),
	// advancing the registration cut so log compaction follows; only a
	// bounded tail replays under stateMu together with the install, so a
	// long phase-2 solve on a busy server does not translate into a long
	// drain stall here.
	applyMissed := func(missed []relation.Update) error {
		for _, up := range missed {
			u := sq.units[0]
			if partitioned {
				u = sq.units[s.routeOf(up)]
			}
			if !up.Insert && !u.sess.Has(up.Rel, up.Row) {
				continue // the master skipped this delete at apply time too
			}
			if err := u.sess.Apply([]relation.Update{up}); err != nil {
				return err
			}
		}
		return nil
	}
	tail := int64(4 * s.opts.BatchSize)
	// The chase is bounded: if the feed outruns the replay, give up after
	// a few chunks and finish under the lock (a stall, but never livelock).
	for chase := 0; chase < 8; chase++ {
		if hook := s.testRegChase; hook != nil {
			hook(chase, cut, s.frontier.Load()) // off-lock, before the gap check
		}
		s.stateMu.Lock()
		if s.frontier.Load()-cut <= tail {
			s.stateMu.Unlock()
			break
		}
		chunkEnd := s.frontier.Load()
		s.logMu.Lock()
		missed := append([]relation.Update(nil), s.log[cut-s.logBase:chunkEnd-s.logBase]...)
		s.regCuts[token] = chunkEnd // compaction may reclaim the replayed prefix
		s.logMu.Unlock()
		s.stateMu.Unlock()
		if err := applyMissed(missed); err != nil {
			return fail(err)
		}
		cut = chunkEnd
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	cur := s.frontier.Load()
	s.logMu.Lock()
	delete(s.regCuts, token)
	missed := append([]relation.Update(nil), s.log[cut-s.logBase:cur-s.logBase]...)
	s.logMu.Unlock()
	delete(s.reserved, id)
	if err := applyMissed(missed); err != nil {
		return "", nil, err
	}
	for _, u := range sq.units {
		u.refresh()
	}
	if err := sq.publish(cur, s.opts.DriftFraction); err != nil {
		return "", nil, err
	}
	// Journal the registration before it becomes visible, so a crash after
	// a successful Register always recovers the query (and a crash before
	// the record is durable recovers a server that never acknowledged it).
	if s.wal.enabled() {
		if err := s.wal.appendJSON(recRegister, registerRecord{Seq: s.regSeq + 1, Config: sq.configJSON()}); err != nil {
			return "", nil, err
		}
		s.regSeq++
	}
	s.ackMetric("register")
	for _, u := range sq.units {
		u.installCut = cur // queued rounds at or below cur were replayed above
		if s.async {
			u.publishVersion(cur, s.opts.DriftFraction) // seed the ring pre-install
		}
		sh := s.shards[u.shard]
		if store := s.storeFor(u); store != nil {
			// Adopt inline if the shard is provably quiescent at cur —
			// always the case in coordinated mode, where whole rounds run
			// under the stateMu we hold. A busy shard instead adopts at
			// its first round strictly past cur (processTransitions),
			// where the same state alignment holds. A failed Adopt (it
			// errors only before touching any state) leaves the session
			// on its private plan.
			if sh.idle() && sh.watermark.Load() == cur {
				if _, aerr := u.sess.Adopt(store); aerr == nil {
					u.store = store
				} else {
					s.logger.Warn("serve.plan_adopt_failed",
						"query", id, "shard", u.shard, "err", aerr.Error())
				}
			} else {
				u.pendingStore = store
			}
		}
		sh.umu.Lock()
		sh.units = append(sh.units, u)
		sh.umu.Unlock()
	}
	s.refreshPlanGauges()
	s.qmu.Lock()
	s.queries[id] = sq
	s.m.queries.Set(float64(len(s.queries)))
	s.qmu.Unlock()
	s.budgetMetrics(sq)
	return id, sq.view.Load(), nil
}

// Unregister removes a query. Its sessions and views are dropped.
func (s *Server) Unregister(id string) error {
	if err := s.fenced(); err != nil {
		return err
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.qmu.Lock()
	defer s.qmu.Unlock()
	sq, ok := s.queries[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoQuery, id)
	}
	if s.wal.enabled() {
		if err := s.wal.appendJSON(recUnregister, unregisterRecord{Seq: s.regSeq + 1, ID: id}); err != nil {
			return err
		}
		s.regSeq++
	}
	s.ackMetric("unregister")
	delete(s.queries, id)
	s.m.queries.Set(float64(len(s.queries)))
	s.dropQueryMetrics(id)
	for _, sh := range s.shards {
		sh.umu.Lock()
		keep := sh.units[:0]
		var dropped []*unit
		for _, u := range sh.units {
			if u.sq != sq {
				keep = append(keep, u)
			} else {
				dropped = append(dropped, u)
			}
		}
		for i := len(keep); i < len(sh.units); i++ {
			sh.units[i] = nil
		}
		sh.units = keep
		sh.umu.Unlock()
		for _, u := range dropped {
			if u.store == nil && u.pendingStore == nil {
				continue
			}
			u.pendingStore = nil
			if sh.idle() {
				u.sess.ReleaseShared()
				u.store = nil
			} else {
				// A round in flight may still step the unit from its
				// snapshot (the unit stays a consistent store subscriber
				// for that round); release at the next round top instead.
				sh.umu.Lock()
				sh.retired = append(sh.retired, u)
				sh.umu.Unlock()
			}
		}
	}
	s.refreshPlanGauges()
	return nil
}

// Append validates ups against the schema and appends them to the update
// log, returning the log sequence range [from, to) they occupy. The shard
// writers apply them asynchronously; WaitApplied(to) blocks until they are
// live in the published views, WaitShards(Owners(ups), to) until the owning
// shards have folded them.
func (s *Server) Append(ups []relation.Update) (from, to int64, err error) {
	return s.AppendTraced(ups, nil)
}

// AppendTraced is Append under an already-started trace (the HTTP ingress
// starts one per request). tr may be nil: a live server then starts its
// own, so library callers get traced too, while replicated and recovery
// replays (which re-append journaled batches) stay untraced on this path
// — the follower records its own mirror+apply trace under the leader's
// ID.
func (s *Server) AppendTraced(ups []relation.Update, tr *obs.ActiveTrace) (from, to int64, err error) {
	if err := s.fenced(); err != nil {
		return 0, 0, err
	}
	for i, up := range ups {
		r := s.master.Relation(up.Rel) // schema is static: safe without stateMu
		if r == nil {
			return 0, 0, fmt.Errorf("serve: update %d: no relation %q", i, up.Rel)
		}
		if len(up.Row) != len(r.Attrs) {
			return 0, 0, fmt.Errorf("serve: update %d: tuple arity %d does not match %s arity %d",
				i, len(up.Row), up.Rel, len(r.Attrs))
		}
	}
	if tr == nil {
		// Same gate as ackMetric: a durable server replaying its WAL (or a
		// follower applying replicated records) must not trace the replay as
		// fresh traffic.
		if d := s.wal; d == nil || d.log == nil || d.active.Load() {
			tr = s.traces.Start("update")
		}
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if s.closed || s.drain {
		return 0, 0, fmt.Errorf("serve: server closed")
	}
	from = s.appended.Load()
	cloned := make([]relation.Update, 0, len(ups))
	for _, up := range ups {
		cloned = append(cloned, relation.Update{Rel: up.Rel, Row: up.Row.Clone(), Insert: up.Insert})
	}
	// Journal before acknowledging: once appendUpdates returns, the batch is
	// as durable as Options.SyncEvery promises, and only then does it enter
	// the in-memory log. A WAL failure refuses the append outright (and the
	// sticky WAL error keeps refusing) rather than acknowledging an update
	// a restart would lose.
	walStart := time.Now()
	stats, err := s.wal.appendUpdates(from, cloned, tr.ID())
	if err != nil {
		return 0, 0, err
	}
	if stats.Total > 0 {
		tr.StageAt("wal-append", walStart, stats.Total)
		if stats.Synced {
			tr.StageAt("wal-fsync", walStart.Add(stats.Total-stats.Fsync), stats.Fsync)
		}
	}
	s.ackMetric("updates")
	s.log = append(s.log, cloned...)
	if s.traces != nil {
		// Keep traceLog aligned with log even for untraced entries (nil
		// ActiveTrace methods are no-ops downstream).
		for range cloned {
			s.traceLog = append(s.traceLog, tr)
		}
	}
	to = from + int64(len(cloned))
	s.appended.Store(to)
	s.m.appended.Set(float64(to))
	s.logCond.Broadcast()
	return from, to, nil
}

// Epoch returns the last published consistent cut (log entries folded by
// every shard and reflected in the views).
func (s *Server) Epoch() int64 { return s.epoch.Load() }

// WaitApplied blocks until the server epoch reaches lsn (as returned by
// Append) or the server closes.
func (s *Server) WaitApplied(lsn int64) error {
	return s.WaitAppliedCtx(context.Background(), lsn)
}

// WaitAppliedCtx is WaitApplied honoring ctx: a cancelled request (the
// client of a ?wait=epoch hung up) releases the waiter instead of parking
// it until the epoch arrives. On a fenced server a wait whose target has
// not been reached returns the fence error (see Fence).
func (s *Server) WaitAppliedCtx(ctx context.Context, lsn int64) error {
	for {
		if s.epoch.Load() >= lsn {
			return nil
		}
		if err := s.fenced(); err != nil {
			return err
		}
		s.waitMu.Lock()
		ch := s.epochCh
		s.waitMu.Unlock()
		if ch == nil {
			return fmt.Errorf("serve: server closed at epoch %d before %d", s.epoch.Load(), lsn)
		}
		if s.epoch.Load() >= lsn {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// WAL exposes the server's write-ahead log (nil when the server is not
// durable) — the record stream internal/serve/replica ships to followers.
// Callers must only read (ReadFrom, positions, LatestCheckpoint); the
// server owns the write side.
func (s *Server) WAL() *wal.Log {
	if s.wal == nil {
		return nil
	}
	return s.wal.log
}

// View returns the freshest consistent view of a query. In coordinated
// mode that is the last published view — one atomic load. In async mode
// the read assembles the consistent cut at the query's joined watermark
// from the unit version rings (atomic loads plus a merge; falling back to
// the cached view under extreme skew). Never blocked by the writers.
func (s *Server) View(id string) (*View, error) {
	sq, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	v := sq.view.Load()
	if s.async {
		v = s.currentView(sq)
	}
	if v.Err != nil {
		return nil, fmt.Errorf("serve: query %q failed at epoch %d: %w", id, v.Epoch, v.Err)
	}
	s.m.viewReads.Inc()
	return v, nil
}

// Count returns |Q(D)| at the query's last published epoch.
func (s *Server) Count(id string) (int64, int64, error) {
	v, err := s.View(id)
	if err != nil {
		return 0, 0, err
	}
	return v.Count, v.Epoch, nil
}

// LS returns the local-sensitivity result at the last published epoch.
func (s *Server) LS(id string) (*core.Result, int64, error) {
	v, err := s.View(id)
	if err != nil {
		return nil, 0, err
	}
	return v.LS, v.Epoch, nil
}

// Release answers the query with ε-differential privacy from the published
// sensitivity snapshot, debiting the query's budget ledger. While the
// current count stays within the query's drift fraction of the last released
// one, the cached release replays and nothing is spent. Concurrent releases
// of one query serialize among themselves (replay-cache consistency) but
// never wait on the writers.
func (s *Server) Release(id string, rng *rand.Rand) (*ReleaseResult, error) {
	if err := s.fenced(); err != nil {
		return nil, err
	}
	releaseStart := time.Now()
	defer func() {
		if d := time.Since(releaseStart); d >= s.traces.SlowThreshold() && s.traces.SlowThreshold() > 0 && s.logger != nil {
			s.logger.Warn("slow release", "query", id, "took", d)
		}
	}()
	sq, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	if sq.private == "" {
		return nil, fmt.Errorf("serve: query %q has no private relation; register with Private set", id)
	}
	v := sq.view.Load()
	if s.async {
		v = s.currentView(sq)
	}
	if v.Err != nil {
		return nil, fmt.Errorf("serve: query %q failed at epoch %d: %w", id, v.Epoch, v.Err)
	}
	sq.relMu.Lock()
	defer sq.relMu.Unlock()
	res := &ReleaseResult{Epoch: v.Epoch, SensEpoch: v.SensEpoch}
	if sq.lastRun != nil && !drifted(v.Count, sq.lastCount, sq.drift) {
		run := *sq.lastRun
		mechanism.Rebase(&run, v.Count)
		res.Run = &run
		s.m.releases.With("false").Inc()
	} else {
		if err := sq.ledger.Spend(sq.cfg.Epsilon); err != nil {
			return nil, err
		}
		sens := make([]int64, len(v.Sens))
		copy(sens, v.Sens)
		run, err := mechanism.Release(sens, sq.cfg, rng)
		if err != nil {
			return nil, err
		}
		// Journal the spend (and the run, so replays after recovery return
		// the same noisy value) before handing out the answer. On a WAL
		// failure the noisy value is withheld: the in-memory spend stands —
		// conservatively so, since budget charged for an answer never
		// released can only overstate spending, never reset it.
		if s.wal.enabled() {
			if werr := s.wal.appendJSON(recRelease, releaseRecord{
				ID: sq.id, Seq: sq.releases + 1, Spent: sq.cfg.Epsilon, Count: v.Count, Run: *run,
			}); werr != nil {
				return nil, werr
			}
		}
		sq.lastRun = run
		sq.lastCount = v.Count
		sq.releases++
		s.ackMetric("release")
		s.m.releases.With("true").Inc()
		out := *run
		res.Run = &out
		res.Fresh = true
		res.Spent = sq.cfg.Epsilon
	}
	res.TotalSpent = sq.ledger.Spent()
	res.Remaining, res.HasBudget = sq.ledger.Remaining()
	s.budgetMetrics(sq)
	return res, nil
}

// Queries lists the registered queries with their latest views.
func (s *Server) Queries() []QueryInfo {
	s.qmu.RLock()
	sqs := make([]*servedQuery, 0, len(s.queries))
	for _, sq := range s.queries {
		sqs = append(sqs, sq)
	}
	s.qmu.RUnlock()
	out := make([]QueryInfo, 0, len(sqs))
	for _, sq := range sqs {
		v := sq.view.Load()
		if s.async {
			v = s.currentView(sq)
		}
		info := QueryInfo{
			ID:           sq.id,
			Query:        sq.text,
			Private:      sq.private,
			Epoch:        v.Epoch,
			Parts:        len(sq.units),
			PartitionVar: sq.partVar,
			Failed:       v.Err != nil,
		}
		if v.Err == nil {
			info.Count = v.Count
			info.LS = v.LS.LS
			info.Rebuilds = v.Rebuilds
		}
		if sq.ledger != nil {
			info.Budget = sq.ledger.Budget()
			info.Spent = sq.ledger.Spent()
		}
		sq.relMu.Lock()
		info.Releases = sq.releases
		sq.relMu.Unlock()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats returns server-wide counters.
func (s *Server) Stats() Stats {
	s.qmu.RLock()
	n := len(s.queries)
	s.qmu.RUnlock()
	wm := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		wm[i] = sh.watermark.Load()
	}
	st := Stats{
		Epoch:      s.epoch.Load(),
		Appended:   s.appended.Load(),
		Skipped:    s.skipped.Load(),
		Queries:    n,
		Shards:     len(s.shards),
		Watermarks: wm,
		Async:      s.async,
	}
	if s.wal != nil {
		st.WAL = true
		st.DurableEpoch = s.wal.durableEpoch.Load()
	}
	return st
}

func (s *Server) lookup(id string) (*servedQuery, error) {
	s.qmu.RLock()
	sq, ok := s.queries[id]
	s.qmu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoQuery, id)
	}
	return sq, nil
}

// writer is the coordinator: it drains the log in batches, folds each batch
// into the master rows, and hands every shard the same round. In async mode
// it then moves straight on to the next batch — the shards drain their
// queues independently and the epoch advances as their watermark join does.
// In coordinated mode it waits on the round's barrier and merges and
// publishes the new epoch itself.
func (s *Server) writer() {
	defer s.wg.Done()
	drained := s.frontier.Load() // non-zero when recovering from a checkpoint
	for {
		batch, btraces := s.nextBatch(drained)
		if batch == nil {
			for _, sh := range s.shards {
				sh.closeQueue()
			}
			return
		}
		roundStart := time.Now()
		var stopRound func()
		if !s.async {
			stopRound = s.m.reg.Span("serve.drain_round", s.m.drainRound)
		}
		s.m.drainBatch.Observe(float64(len(batch)))
		s.stateMu.Lock()
		valid := batch[:0:0]
		for _, up := range batch {
			if s.applyToMaster(up) {
				valid = append(valid, up)
			} else {
				s.skipped.Add(1)
			}
		}
		s.m.skipped.Set(float64(s.skipped.Load()))
		routeStart := time.Now()
		routed := make([][]relation.Update, len(s.shards))
		for _, up := range valid {
			i := s.routeOf(up)
			routed[i] = append(routed[i], up)
		}
		routeD := time.Since(routeStart)
		newEpoch := drained + int64(len(batch))
		rd := &round{valid: valid, routed: routed, cut: newEpoch}
		// The frontier advances before stateMu releases, so a Register that
		// takes over the lock reads a cut consistent with the master rows it
		// snapshots (in async mode the published epoch may still trail).
		s.frontier.Store(newEpoch)

		if s.async {
			rd.pending.Store(int32(len(s.shards)))
			rd.btraces = btraces
			rd.start, rd.routeStart, rd.routeD = roundStart, routeStart, routeD
			rd.batchLen = len(batch)
			var prev *obs.ActiveTrace
			for _, tr := range btraces {
				if tr == nil || tr == prev {
					continue
				}
				prev = tr
				tr.StageAt("shard-route", routeStart, routeD)
			}
			for _, sh := range s.shards {
				sh.enqueue(rd)
			}
			if s.wal != nil {
				s.maybeCheckpointLocked(newEpoch)
			}
			s.stateMu.Unlock()
			drained = newEpoch
			continue
		}

		rd.wg.Add(len(s.shards))
		patchStart := time.Now()
		for _, sh := range s.shards {
			sh.enqueue(rd)
		}
		rd.wg.Wait()
		patchD := time.Since(patchStart)
		publishStart := time.Now()
		s.publishAll(newEpoch)
		publishD := time.Since(publishStart)
		s.m.publishView.Observe(publishD.Seconds())
		s.epoch.Store(newEpoch)
		s.m.epoch.Set(float64(newEpoch))
		if s.wal != nil {
			s.maybeCheckpointLocked(newEpoch)
		}
		s.stateMu.Unlock()
		stopRound()
		s.m.rounds.Inc()
		s.finishRound(btraces, newEpoch, len(batch), roundStart, routeStart, routeD, patchStart, patchD, publishStart, publishD)
		drained = newEpoch
		s.notify()
	}
}

// advanceEpoch (async mode) moves the published epoch up to the joined
// minimum of every shard's watermark. Called by each shard after it stores
// its own watermark; the CAS loop makes concurrent shards race forward
// monotonically, and the gauge refresh re-loads under epochGaugeMu so a
// preempted winner cannot publish a stale gauge over a newer one.
func (s *Server) advanceEpoch() {
	join := s.joinedCut()
	for {
		cur := s.epoch.Load()
		if cur >= join {
			return
		}
		if s.epoch.CompareAndSwap(cur, join) {
			s.epochGaugeMu.Lock()
			s.m.epoch.Set(float64(s.epoch.Load()))
			s.epochGaugeMu.Unlock()
			return
		}
	}
}

// joinedCut returns the minimum watermark over all shards — the largest LSN
// every shard has folded.
func (s *Server) joinedCut() int64 {
	join := s.shards[0].watermark.Load()
	for _, sh := range s.shards[1:] {
		if w := sh.watermark.Load(); w < join {
			join = w
		}
	}
	return join
}

// joinFor returns the joined cut relevant to one query: all shards for a
// partitioned query, the single owning shard for a fallback one (which is
// fed whole batches, so its watermark alone bounds the query's progress).
func (s *Server) joinFor(sq *servedQuery) int64 {
	if len(sq.units) == 1 && sq.units[0].part < 0 {
		return s.shards[sq.units[0].shard].watermark.Load()
	}
	return s.joinedCut()
}

// finishAsyncRound is run by the last shard to fold a round: it stamps the
// drain stages onto the batch's traces, completes them, bumps the round
// counters, and emits the slow-round log line (mirroring finishRound for
// the coordinated path). ActiveTrace is internally locked, so finishing
// from a shard goroutine is safe.
func (s *Server) finishAsyncRound(rd *round) {
	roundD := time.Since(rd.start)
	s.m.drainRound.Observe(roundD.Seconds())
	s.m.rounds.Inc()
	var first obs.TraceID
	var prev *obs.ActiveTrace
	for _, tr := range rd.btraces {
		if tr == nil || tr == prev {
			continue
		}
		prev = tr
		if first == 0 {
			first = tr.ID()
		}
		tr.StageAt("shard-drain", rd.routeStart.Add(rd.routeD), roundD-rd.routeD)
		tr.StageAt("drain", rd.start, roundD)
		tr.Finish()
	}
	if roundD >= s.traces.SlowThreshold() && s.traces.SlowThreshold() > 0 && s.logger != nil {
		s.logger.Warn("slow drain round",
			"trace", first, "epoch", rd.cut, "batch", rd.batchLen,
			"took", roundD, "route", rd.routeD)
	}
}

// refreshViews re-assembles the cached view of every distinct query among
// units (async mode, called by a shard after its round): write traffic
// keeps views fresh even with no readers, which WaitApplied — defined over
// the epoch the views have reached — depends on.
func (s *Server) refreshViews(units []*unit) {
	var prev *servedQuery
	for _, u := range units {
		if u.sq == prev {
			continue
		}
		prev = u.sq
		s.currentView(u.sq)
	}
}

// currentView returns the freshest consistent view of sq (async mode): the
// cached view if it already sits at the query's joined cut, else a fresh
// assembly from the unit version rings. Assembly failures (a ring entry
// already evicted under heavy skew) fall back to the cached view — older,
// but still one consistent cut. Never blocks on the writers.
func (s *Server) currentView(sq *servedQuery) *View {
	cached := sq.view.Load()
	if cached.Err != nil {
		return cached
	}
	join := s.joinFor(sq)
	if cached.Epoch >= join {
		return cached
	}
	v := sq.assemble(join)
	if v == nil {
		return cached
	}
	if v.Err != nil {
		sq.view.Store(v) // tombstone: persists, like the coordinated path
		return v
	}
	// CAS forward only: concurrent assemblies race, newest cut wins.
	for {
		cur := sq.view.Load()
		if cur.Err != nil {
			return cur
		}
		if cur.Epoch >= v.Epoch {
			return cur
		}
		if sq.view.CompareAndSwap(cur, v) {
			return v
		}
	}
}

// assemble builds a consistent view of sq at (at most) the joined cut: per
// unit, the newest ring entry at-or-below the target, tightened until every
// unit agrees on one exact stamp. Because all shards fold the same round
// cuts and publish one ring entry per round, entries with equal stamps are
// exactly the consistent cut at that stamp; requiring an exact common stamp
// is what makes a mixed pick impossible even after ring eviction. Returns
// nil when no common stamp survives in the rings (unbounded skew) — the
// caller then serves the cached view.
func (sq *servedQuery) assemble(join int64) *View {
	picks := make([]*unitVersion, len(sq.units))
	target := join
	for i, u := range sq.units {
		v := u.versionAt(target)
		if v == nil {
			return nil
		}
		picks[i] = v
		if v.stamp < target {
			target = v.stamp
		}
	}
	// Tighten: every pick must sit exactly at the final target. A pick above
	// it re-resolves; a unit with no entry at the target fails the assembly.
	for i, u := range sq.units {
		if picks[i].stamp == target {
			continue
		}
		v := u.versionAt(target)
		if v == nil || v.stamp != target {
			return nil
		}
		picks[i] = v
	}
	var (
		count    int64
		rebuilds int
		parts    = make([]*core.Result, len(picks))
	)
	for i, v := range picks {
		if v.err != nil {
			return &View{Epoch: target, Parts: len(sq.units), Err: v.err}
		}
		count = relation.AddSat(count, v.count)
		rebuilds += v.rebuilds
		parts[i] = v.res
	}
	out := &View{
		Epoch:    target,
		Count:    count,
		LS:       incremental.MergeResults(parts),
		Rebuilds: rebuilds,
		Parts:    len(sq.units),
	}
	if sq.private != "" {
		var sens []int64
		sensEpoch := int64(-1)
		var sensCount int64
		for _, v := range picks {
			sens = append(sens, v.sens...)
			if sensEpoch < 0 || v.sensEpoch < sensEpoch {
				sensEpoch = v.sensEpoch
			}
			sensCount = relation.AddSat(sensCount, v.sensCount)
		}
		sort.Slice(sens, func(i, j int) bool { return sens[i] < sens[j] })
		out.Sens, out.SensEpoch, out.SensCount = sens, sensEpoch, sensCount
	}
	return out
}

// finishRound stamps the drain round's stage timings onto every trace the
// batch carried, completes them, and writes the slow-round log line when
// the round blew the threshold. The batch's entries are contiguous per
// Append, so deduplicating consecutive pointers visits each trace once.
func (s *Server) finishRound(btraces []*obs.ActiveTrace, epoch int64, batchLen int,
	roundStart, routeStart time.Time, routeD time.Duration,
	patchStart time.Time, patchD time.Duration,
	publishStart time.Time, publishD time.Duration) {
	roundD := time.Since(roundStart)
	var first obs.TraceID
	var prev *obs.ActiveTrace
	for _, tr := range btraces {
		if tr == nil || tr == prev {
			continue
		}
		prev = tr
		if first == 0 {
			first = tr.ID()
		}
		tr.StageAt("shard-route", routeStart, routeD)
		tr.StageAt("patch", patchStart, patchD)
		tr.StageAt("publish", publishStart, publishD)
		tr.StageAt("drain", roundStart, roundD)
		tr.Finish()
	}
	if roundD >= s.traces.SlowThreshold() && s.traces.SlowThreshold() > 0 && s.logger != nil {
		s.logger.Warn("slow drain round",
			"trace", first, "epoch", epoch, "batch", batchLen,
			"took", roundD, "route", routeD, "patch", patchD, "publish", publishD)
	}
}

// publishAll merges and publishes every query's view for the completed cut.
// It runs on the coordinator with all shards idle (post-barrier, under
// stateMu), so reading the live sessions here is race-free.
func (s *Server) publishAll(epoch int64) {
	s.qmu.RLock()
	sqs := make([]*servedQuery, 0, len(s.queries))
	for _, sq := range s.queries {
		sqs = append(sqs, sq)
	}
	s.qmu.RUnlock()
	_ = par.Do(s.opts.Parallelism, len(sqs), func(i int) error {
		_ = sqs[i].publish(epoch, s.opts.DriftFraction) // failures become tombstone views
		return nil
	})
}

// notify wakes WaitApplied and WaitShards waiters.
func (s *Server) notify() {
	s.waitMu.Lock()
	if s.epochCh != nil {
		close(s.epochCh)
		s.epochCh = make(chan struct{})
	}
	s.waitMu.Unlock()
}

// nextBatch blocks until log entries past off exist and returns at most
// BatchSize of them. A CloseNow'd server returns nil immediately (the
// backlog is abandoned); a gracefully closing one (drain) keeps returning
// batches until every acknowledged entry has been folded, then nil — the
// guarantee that a successful Append is never lost by a clean shutdown.
//
// It also compacts the log: everything before the drained offset has been
// applied and is never read again — except by a registration catching up
// from its snapshot cut, so compaction is held back to the oldest
// outstanding cut (regCuts). Once the reclaimable prefix dominates the
// slice, the live tail moves to a fresh allocation and logBase advances.
// The half-full trigger amortizes the copy to O(1) per entry while keeping
// a long-lived server's log proportional to its backlog, not its history.
func (s *Server) nextBatch(off int64) ([]relation.Update, []*obs.ActiveTrace) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	keep := off
	for _, cut := range s.regCuts {
		if cut < keep {
			keep = cut
		}
	}
	if pre := keep - s.logBase; pre > 0 && 2*pre >= int64(len(s.log)) {
		s.log = append([]relation.Update(nil), s.log[pre:]...)
		if s.traceLog != nil {
			// traceLog compacts in lockstep so entry i's trace stays at i.
			s.traceLog = append([]*obs.ActiveTrace(nil), s.traceLog[pre:]...)
		}
		s.logBase = keep
	}
	for s.logBase+int64(len(s.log)) <= off && !s.closed && !s.drain {
		s.logCond.Wait()
	}
	if s.closed || s.logBase+int64(len(s.log)) <= off {
		return nil, nil
	}
	start := off - s.logBase
	end := int64(len(s.log))
	if end > start+int64(s.opts.BatchSize) {
		end = start + int64(s.opts.BatchSize)
	}
	var traces []*obs.ActiveTrace
	if s.traceLog != nil {
		traces = s.traceLog[start:end]
	}
	return s.log[start:end], traces
}

// applyToMaster folds one update into the master rows, reporting false for
// deletes of absent tuples (which the sessions must not see).
func (s *Server) applyToMaster(up relation.Update) bool {
	r := s.master.Relation(up.Rel)
	rs := s.rowpos[up.Rel]
	if up.Insert {
		rs.Insert(r, up.Row)
		return true
	}
	return rs.TryRemove(r, up.Row)
}

// publish merges the query's unit outputs into one view for epoch and
// stores it. Only the coordinator (or Register, under stateMu with no
// round in flight) calls it. The sensitivity snapshot carries over from
// the previous view until the count drifts past driftFrac or a session
// rebuilt (a rebuild re-materializes the private relation, so the old
// per-row vector may no longer describe it). A failed unit turns the view
// into a tombstone, which persists.
func (sq *servedQuery) publish(epoch int64, driftFrac float64) error {
	old := sq.view.Load()
	if old != nil && old.Err != nil {
		return old.Err
	}
	var (
		count    int64
		rebuilds int
		parts    = make([]*core.Result, len(sq.units))
	)
	for i, u := range sq.units {
		if u.err != nil {
			sq.view.Store(&View{Epoch: epoch, Parts: len(sq.units), Err: u.err})
			return u.err
		}
		count = relation.AddSat(count, u.count) // CountTotal saturates; so must the partition sum
		rebuilds += u.sess.Rebuilds()
		parts[i] = u.res
	}
	res := incremental.MergeResults(parts)
	v := &View{Epoch: epoch, Count: count, LS: res, Rebuilds: rebuilds, Parts: len(sq.units)}
	if sq.private != "" {
		if old != nil && old.Sens != nil && old.Rebuilds == rebuilds &&
			driftFrac >= 0 && !drifted(count, old.SensCount, driftFrac) {
			v.Sens, v.SensEpoch, v.SensCount = old.Sens, old.SensEpoch, old.SensCount
		} else {
			var sens []int64
			for _, u := range sq.units {
				fn, err := u.sess.SensitivityFn(sq.private)
				if err != nil {
					sq.view.Store(&View{Epoch: epoch, Parts: len(sq.units), Err: err})
					return err
				}
				for _, row := range u.sess.Rows(sq.private) {
					sens = append(sens, fn(row))
				}
			}
			sort.Slice(sens, func(i, j int) bool { return sens[i] < sens[j] })
			v.Sens, v.SensEpoch, v.SensCount = sens, epoch, count
		}
	}
	sq.view.Store(v)
	return nil
}

func drifted(cur, base int64, frac float64) bool {
	b := base
	if b < 0 {
		b = -b
	}
	if b < 1 {
		b = 1
	}
	d := cur - base
	if d < 0 {
		d = -d
	}
	return float64(d) > frac*float64(b)
}
