package serve

// Shared subplan stores (Options.SharedPlans, docs/SERVING.md "Registration
// and plan sharing"). Each shard owns two sharing domains, one per update
// stream it feeds:
//
//   - partitioned units receive the shard's routed slice of every round, so
//     partitioned sessions on the same shard see identical streams and may
//     hash-cons join-tree state with each other;
//   - fallback (unpartitionable) units receive the whole valid batch, a
//     different stream, so they share only among themselves.
//
// The two domains are never mixed: incremental.PlanStore correctness rests
// on every subscriber applying the same update sequence, and a store that
// spanned both streams would desynchronize its lead/follower cursors.
//
// Attaching and detaching sessions happens only at provably quiescent
// points. Rounds are enqueued exclusively by the coordinator under stateMu,
// and Register/Unregister hold stateMu, so "queue empty and no round in
// flight" observed there is stable for as long as the lock is held — that
// is when Adopt/ReleaseShared run inline. A busy shard defers both to the
// top of a later round (processTransitions), before any unit steps.

import (
	"tsens/internal/incremental"
)

// planDomain is one shard's pair of sharing domains.
type planDomain struct {
	part *incremental.PlanStore // partitioned units: fed this shard's routed slices
	fall *incremental.PlanStore // fallback units: fed every whole valid batch
}

func newPlanDomains(n int) []*planDomain {
	out := make([]*planDomain, n)
	for i := range out {
		out[i] = &planDomain{part: incremental.NewPlanStore(), fall: incremental.NewPlanStore()}
	}
	return out
}

// storeFor picks the sharing domain a unit belongs to, nil when sharing is
// off.
func (s *Server) storeFor(u *unit) *incremental.PlanStore {
	if !s.sharedPlans {
		return nil
	}
	d := s.plans[u.shard]
	if u.part >= 0 {
		return d.part
	}
	return d.fall
}

// idle reports whether the shard has neither queued nor in-flight rounds.
// Stable only while the caller holds stateMu (the coordinator enqueues
// rounds under stateMu, so none can appear underneath it); in coordinated
// mode the whole round runs under stateMu, so the shard is always idle
// here.
func (sh *shard) idle() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.q) == 0 && !sh.applying
}

// processTransitions runs at the top of a round, before the unit snapshot
// and any stepping. It releases the shared-plan subscriptions of units
// retired by Unregister while the shard was busy, then adopts units
// Register installed mid-round. Adoption waits for the first round strictly
// past the unit's installCut: rounds are FIFO with monotone cuts, so at
// that point every established subscriber has applied exactly the entries
// the newcomer replayed during catch-up — the quiescent, state-identical
// moment Adopt requires. An Adopt that fails (it errors only before
// touching any state) just leaves the unit on its private plan.
//
// The whole transition runs under umu: store/pendingStore hand-offs must be
// atomic against a concurrent Unregister stripping the unit, which takes
// umu before deciding how to release the unit's subscription.
func (sh *shard) processTransitions(s *Server, cut int64) {
	sh.umu.Lock()
	changed := len(sh.retired) > 0
	for _, u := range sh.retired {
		u.sess.ReleaseShared()
		u.store = nil
	}
	sh.retired = nil
	for _, u := range sh.units {
		if u.pendingStore == nil || cut <= u.installCut {
			continue
		}
		store := u.pendingStore
		u.pendingStore = nil
		changed = true
		if u.err != nil {
			continue
		}
		if _, err := u.sess.Adopt(store); err != nil {
			s.logger.Warn("serve.plan_adopt_deferred_failed",
				"query", u.sq.id, "shard", sh.id, "err", err.Error())
			continue
		}
		u.store = store
	}
	sh.umu.Unlock()
	if changed {
		s.refreshPlanGauges()
	}
}

// planGroups partitions a round's units into step groups: units subscribed
// to the same plan store patch shared tables and must step sequentially
// (the store's lead/follower memo discipline is single-round, not
// concurrent), while everything else keeps the one-goroutine-per-unit
// fan-out.
func planGroups(units []*unit) [][]*unit {
	groups := make([][]*unit, 0, len(units))
	var byStore map[*incremental.PlanStore]int
	for _, u := range units {
		if u.store == nil {
			groups = append(groups, []*unit{u})
			continue
		}
		if byStore == nil {
			byStore = make(map[*incremental.PlanStore]int)
		}
		gi, ok := byStore[u.store]
		if !ok {
			gi = len(groups)
			byStore[u.store] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], u)
	}
	return groups
}

// refreshPlanGauges re-derives the sharing gauges from every store. Called
// after any attach/detach transition; cheap relative to the Register or
// round that triggered it.
func (s *Server) refreshPlanGauges() {
	if !s.sharedPlans {
		return
	}
	var nodes, shared, refs, subs int
	for _, d := range s.plans {
		for _, ps := range [2]*incremental.PlanStore{d.part, d.fall} {
			st := ps.Stats()
			nodes += st.Nodes
			shared += st.SharedNodes
			refs += st.NodeRefs
			subs += st.Subscribers
		}
	}
	s.m.planNodes.Set(float64(nodes))
	s.m.planShared.Set(float64(shared))
	s.m.planRefs.Set(float64(refs))
	s.m.planSubs.Set(float64(subs))
}

// PlanDomainStats is one shard's sharing summary, as served at
// GET /debug/plans.
type PlanDomainStats struct {
	Shard       int                        `json:"shard"`
	Partitioned incremental.PlanStoreStats `json:"partitioned"`
	Fallback    incremental.PlanStoreStats `json:"fallback"`
}

// PlanStats summarizes every shard's plan stores; nil when sharing is off.
func (s *Server) PlanStats() []PlanDomainStats {
	if !s.sharedPlans {
		return nil
	}
	out := make([]PlanDomainStats, len(s.plans))
	for i, d := range s.plans {
		out[i] = PlanDomainStats{Shard: i, Partitioned: d.part.Stats(), Fallback: d.fall.Stats()}
	}
	return out
}
