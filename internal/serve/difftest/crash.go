package difftest

// The crash-point matrix: the differential script of Run, executed against
// a durable server that is killed (CloseNow abandons every byte of
// in-memory state) at seed-chosen points mid-script — at arbitrary WAL
// offsets, including with an acknowledged-but-undrained backlog and with a
// torn partial frame appended to the newest segment to simulate dying
// mid-write — then reopened from the WAL directory alone and driven on.
// After every reopen and at every flush point the recovered server must
// match the from-scratch solver exactly (counts, LS, per-relation maxima)
// and the ledger model exactly (spent ε, replayed noisy values), i.e. the
// interrupted run is observationally identical to an uninterrupted one.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"tsens/internal/core"
	"tsens/internal/mechanism"
	"tsens/internal/relation"
	"tsens/internal/serve"
)

// RunCrash executes one scripted crash-recovery run in walDir, killing and
// reopening the server `crashes` times at seed-chosen steps.
func RunCrash(t *testing.T, cfg Config, walDir string, crashes int) {
	if cfg.Steps == 0 {
		cfg.Steps = 120
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 2
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fatalf := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("seed %d: %s", cfg.Seed, fmt.Sprintf(format, args...))
	}

	opts := serve.Options{
		Shards:          cfg.Shards,
		Parallelism:     cfg.Parallelism,
		BatchSize:       cfg.BatchSize,
		AsyncEpochs:     cfg.AsyncEpochs,
		SharedPlans:     cfg.SharedPlans,
		WALDir:          walDir,
		CheckpointEvery: 16, // small: crashes land on both sides of checkpoints
	}
	base := baseDB(rng)
	srv, err := serve.New(base, opts)
	if err != nil {
		fatalf("new server: %v", err)
	}
	alive := true
	defer func() {
		if alive {
			srv.CloseNow()
		}
	}()

	// Pick the crash steps up front so they are part of the seeded script.
	crashAt := map[int]bool{}
	for i := 0; i < crashes; i++ {
		crashAt[1+rng.Intn(cfg.Steps)] = true
	}

	var (
		live       = newModel(base)
		cursor     = newModel(base)
		log        []relation.Update
		registered = map[string]candidate{}
		spent      = map[string]float64{}
		lastNoisy  = map[string]float64{} // last fresh noisy value; replays must repeat it
		names      = base.Names()
	)

	register := func(c candidate) {
		qc := serve.QueryConfig{ID: c.id, Query: c.mk(), Private: c.private, Budget: c.budget}
		if c.private != "" {
			qc.Release = mechanism.TSensDPConfig{Epsilon: 1, Bound: 64}
		}
		if _, _, err := srv.Register(qc); err != nil {
			fatalf("register %s: %v", c.id, err)
		}
		registered[c.id] = c
		delete(spent, c.id)
		delete(lastNoisy, c.id)
	}
	register(candidates()[0])

	verify := func(when string) {
		t.Helper()
		total := int64(len(log))
		if err := srv.WaitApplied(total); err != nil {
			fatalf("%s: wait: %v", when, err)
		}
		cursor.advance(log[cursor.applied:total])
		if st := srv.Stats(); st.Epoch != total || st.Skipped != cursor.skipped {
			fatalf("%s: stats %+v, model: epoch %d, skipped %d", when, st, total, cursor.skipped)
		}
		for id, c := range registered {
			v, err := srv.View(id)
			if err != nil {
				fatalf("%s: view %s: %v", when, id, err)
			}
			want, err := core.LocalSensitivity(c.mk(), cursor.db, core.Options{})
			if err != nil {
				fatalf("%s: scratch %s: %v", when, id, err)
			}
			if v.Epoch != total || v.Count != want.Count || v.LS.LS != want.LS {
				fatalf("%s: epoch %d, query %s: served (epoch %d, count %d, LS %d), scratch (%d, %d)",
					when, total, id, v.Epoch, v.Count, v.LS.LS, want.Count, want.LS)
			}
			for rel, tr := range want.PerRelation {
				got := v.LS.PerRelation[rel]
				if got == nil || got.Sensitivity != tr.Sensitivity {
					fatalf("%s: epoch %d, query %s, relation %s: served %v, scratch %d",
						when, total, id, rel, got, tr.Sensitivity)
				}
			}
		}
		for _, info := range srv.Queries() {
			if want, ok := spent[info.ID]; ok && math.Abs(info.Spent-want) > 1e-9 {
				fatalf("%s: query %s ledger spent %g, model %g", when, info.ID, info.Spent, want)
			}
		}
		// acked == journaled, per record kind: every acknowledgment this
		// instance handed out wrote exactly one WAL record of the same kind
		// first. Both counters start at zero with the instance (recovery
		// replay touches neither side), so they must agree at every quiesce
		// point — the durability identity, read off /metrics.
		snap := srv.Metrics().Snapshot()
		for _, kind := range []string{"updates", "register", "unregister", "release"} {
			acks := snap[fmt.Sprintf("tsens_serve_acks_total{kind=%q}", kind)]
			recs := snap[fmt.Sprintf("tsens_wal_records_total{kind=%q}", kind)]
			if acks != recs {
				fatalf("%s: kind %s: %g acknowledgments, %g journaled records", when, kind, acks, recs)
			}
		}
	}

	crash := func(step int) {
		t.Helper()
		srv.CloseNow()
		alive = false
		tearNewestSegment(t, walDir, rng)
		re, err := serve.New(nil, opts) // recovery needs nothing but the WAL dir
		if err != nil {
			fatalf("step %d: reopen: %v", step, err)
		}
		srv = re
		alive = true
		// Every acknowledged operation must have survived: same registered
		// set, same epochs, same answers, same ledgers.
		infos := srv.Queries()
		if len(infos) != len(registered) {
			fatalf("step %d: recovered %d queries, want %d (%+v)", step, len(infos), len(registered), infos)
		}
		for _, info := range infos {
			if _, ok := registered[info.ID]; !ok {
				fatalf("step %d: recovered unregistered query %q", step, info.ID)
			}
		}
		verify(fmt.Sprintf("step %d post-crash", step))
	}

	for step := 0; step < cfg.Steps; step++ {
		if crashAt[step] {
			crash(step)
		}
		switch op := rng.Intn(100); {
		case op < 50: // append a batch (sometimes crashing right behind the ack)
			n := 1 + rng.Intn(8)
			batch := make([]relation.Update, 0, n)
			for i := 0; i < n; i++ {
				rel := names[rng.Intn(len(names))]
				rows := live.db.Relation(rel).Rows
				switch {
				case len(rows) > 0 && rng.Intn(100) < 35:
					batch = append(batch, relation.Update{Rel: rel, Row: rows[rng.Intn(len(rows))].Clone()})
				case rng.Intn(100) < 10:
					batch = append(batch, relation.Update{Rel: rel, Row: relation.Tuple{99, 99}})
				default:
					batch = append(batch, relation.Update{
						Rel: rel, Insert: true,
						Row: relation.Tuple{int64(rng.Intn(keyDom)), int64(rng.Intn(valDom))},
					})
				}
			}
			if _, _, err := srv.Append(batch); err != nil {
				fatalf("append: %v", err)
			}
			log = append(log, batch...)
			live.advance(batch)
		case op < 65:
			verify(fmt.Sprintf("step %d flush", step))
		case op < 75:
			for _, c := range candidates() {
				if _, ok := registered[c.id]; !ok {
					register(c)
					break
				}
			}
		case op < 85:
			if len(registered) > 1 {
				ids := make([]string, 0, len(registered))
				for id := range registered {
					ids = append(ids, id)
				}
				sort.Strings(ids) // deterministic pick: map order must not steer the script
				id := ids[rng.Intn(len(ids))]
				if err := srv.Unregister(id); err != nil {
					fatalf("unregister %s: %v", id, err)
				}
				delete(registered, id)
			}
		default:
			c, ok := registered["priv"]
			if !ok {
				continue
			}
			res, err := srv.Release("priv", rand.New(rand.NewSource(rng.Int63())))
			if err != nil {
				if !errors.Is(err, mechanism.ErrBudgetExhausted) {
					fatalf("release: %v", err)
				}
				if c.budget-spent["priv"] >= 1-1e-9 {
					fatalf("budget refused with %g of %g spent", spent["priv"], c.budget)
				}
				continue
			}
			spent["priv"] += res.Spent
			if math.Abs(res.TotalSpent-spent["priv"]) > 1e-9 {
				fatalf("release total %g, model %g", res.TotalSpent, spent["priv"])
			}
			if res.Fresh {
				lastNoisy["priv"] = res.Run.Noisy
			} else if want, ok := lastNoisy["priv"]; ok && res.Run.Noisy != want {
				// A replayed release must repeat the recorded noisy value —
				// across crashes too (the cached run is journaled).
				fatalf("replayed release noisy %g, want recorded %g", res.Run.Noisy, want)
			}
		}
	}
	crash(cfg.Steps) // final kill + recover
	verify("final")
}

// tearNewestSegment appends a partial frame to the newest WAL segment,
// simulating a crash mid-write. Everything acknowledged is durable before
// the tear, so recovery must truncate it off without losing a record.
func tearNewestSegment(t *testing.T, dir string, rng *rand.Rand) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	newest := ""
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg") && name > newest {
			newest = name
		}
	}
	if newest == "" {
		return
	}
	f, err := os.OpenFile(filepath.Join(dir, newest), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, 1+rng.Intn(24))
	rng.Read(garbage)
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
