// Package difftest is the randomized differential harness guarding the
// sharded serving stack: it drives a seeded random interleaving of inserts,
// deletes (including deliberate deletes of absent tuples), registrations,
// releases, and unregistrations against a live serve.Server, and at every
// synchronized epoch replays the same script through the from-scratch
// solver (core.LocalSensitivity), asserting exact equality of count and LS
// for every registered query — partitioned and fallback alike — plus exact
// ledger totals for every budget-accounted release.
//
// The script is fully determined by Config.Seed; the seed is logged up
// front and embedded in every failure message, so a CI failure replays with
// TSENS_DIFF_SEED=<seed> go test -run TestServeDifferentialRandomized.
// Run under -race: a background reader hammers the published views the
// whole time, so the harness also exercises the reader/writer boundary.
package difftest

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"

	"tsens/internal/core"
	"tsens/internal/mechanism"
	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/serve"
)

// Config parameterizes one harness run.
type Config struct {
	// Seed determines the entire script.
	Seed int64
	// Shards is the server's write-path shard count.
	Shards int
	// Steps is the number of script operations (default 120).
	Steps int
	// Parallelism is forwarded to the server (default 2).
	Parallelism int
	// BatchSize is forwarded to the server (default 4, so most flushes span
	// several coordinated rounds).
	BatchSize int
	// AsyncEpochs is forwarded to the server (nil = server default, async).
	// The matrix runs every harness in both drain disciplines so the two
	// implementations diff against each other.
	AsyncEpochs *bool
	// SharedPlans is forwarded to the server (nil = server default, on).
	// The matrix runs every harness with and without subplan sharing so the
	// hash-consed and fully-private session paths diff against each other.
	SharedPlans *bool
}

// candidate is one query the script may register: the partitionable star
// and mixed-shape queries exercise per-shard sub-sessions, the path query
// the designated-shard fallback, and the private one budget accounting.
type candidate struct {
	id      string
	mk      func() *query.Query
	private string
	budget  float64
}

func mustQuery(name string, atoms []query.Atom) *query.Query {
	q, err := query.New(name, atoms, nil)
	if err != nil {
		panic(err)
	}
	return q
}

func candidates() []candidate {
	return []candidate{
		{id: "star", mk: func() *query.Query {
			return mustQuery("star", []query.Atom{
				{Relation: "S1", Vars: []string{"A", "B"}},
				{Relation: "S2", Vars: []string{"A", "C"}},
				{Relation: "S3", Vars: []string{"A", "D"}},
			})
		}},
		{id: "star2", mk: func() *query.Query {
			return mustQuery("star2", []query.Atom{
				{Relation: "S1", Vars: []string{"A", "B"}},
				{Relation: "S3", Vars: []string{"A", "C"}},
			})
		}},
		{id: "path", mk: func() *query.Query {
			return mustQuery("path", []query.Atom{
				{Relation: "P1", Vars: []string{"A", "B"}},
				{Relation: "P2", Vars: []string{"B", "C"}},
			})
		}},
		{id: "mix", mk: func() *query.Query {
			return mustQuery("mix", []query.Atom{
				{Relation: "S1", Vars: []string{"A", "B"}},
				{Relation: "P1", Vars: []string{"A", "C"}},
			})
		}},
		{id: "priv", private: "S2", budget: 3, mk: func() *query.Query {
			return mustQuery("priv", []query.Atom{
				{Relation: "S1", Vars: []string{"A", "B"}},
				{Relation: "S2", Vars: []string{"A", "C"}},
			})
		}},
	}
}

// model replays the raw update log with the server's skip semantics
// (deletes of absent tuples are dropped), tracking both the live tip (for
// generating deletes of real rows) and a verification cursor that advances
// to each published epoch.
type model struct {
	db      *relation.Database
	rowpos  map[string]*relation.RowSet
	applied int64
	skipped int64
}

func newModel(db *relation.Database) *model {
	m := &model{db: db.Clone(), rowpos: map[string]*relation.RowSet{}}
	for _, name := range m.db.Names() {
		m.rowpos[name] = relation.NewRowSet(m.db.Relation(name))
	}
	return m
}

// advance folds raw log entries into the model, counting skips.
func (m *model) advance(ups []relation.Update) {
	for _, up := range ups {
		r := m.db.Relation(up.Rel)
		rs := m.rowpos[up.Rel]
		if up.Insert {
			rs.Insert(r, up.Row)
		} else if !rs.TryRemove(r, up.Row) {
			m.skipped++
		}
		m.applied++
	}
}

const (
	keyDom = 6
	valDom = 4
)

func baseDB(rng *rand.Rand) *relation.Database {
	mk := func(name string, n int) *relation.Relation {
		rows := make([]relation.Tuple, n)
		for i := range rows {
			rows[i] = relation.Tuple{int64(rng.Intn(keyDom)), int64(rng.Intn(valDom))}
		}
		return relation.MustNew(name, []string{name + "_x", name + "_y"}, rows)
	}
	return relation.MustNewDatabase(mk("S1", 18), mk("S2", 15), mk("S3", 12), mk("P1", 15), mk("P2", 15))
}

// Run executes one scripted differential run. Every failure message leads
// with the seed for replay.
func Run(t *testing.T, cfg Config) {
	if cfg.Steps == 0 {
		cfg.Steps = 120
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 2
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fatalf := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("seed %d: %s", cfg.Seed, fmt.Sprintf(format, args...))
	}

	base := baseDB(rng)
	srv, err := serve.New(base, serve.Options{
		Shards:      cfg.Shards,
		Parallelism: cfg.Parallelism,
		BatchSize:   cfg.BatchSize,
		AsyncEpochs: cfg.AsyncEpochs,
		SharedPlans: cfg.SharedPlans,
	})
	if err != nil {
		fatalf("new server: %v", err)
	}
	defer srv.Close()

	// Background reader: hammers the published views for the whole script
	// so the run exercises the reader/writer boundary under -race. Answers
	// are verified separately at flush points; here only invariants that
	// hold at any instant are checked.
	var stop atomic.Bool
	readerDone := make(chan struct{})
	// Join the reader on every exit path (including fatalf's Goexit), so a
	// failing script never leaves it spinning into later subtests or
	// logging to a finished test.
	defer func() {
		stop.Store(true)
		<-readerDone
	}()
	go func() {
		defer close(readerDone)
		for !stop.Load() {
			for _, info := range srv.Queries() {
				v, err := srv.View(info.ID)
				if err != nil {
					continue // unregistered in the meantime, or failed (View surfaces tombstones as errors)
				}
				if v.LS.Count != v.Count {
					t.Errorf("seed %d: view of %s disagrees with its own LS result: %d vs %d",
						cfg.Seed, info.ID, v.Count, v.LS.Count)
					return
				}
			}
		}
	}()

	var (
		live       = newModel(base) // tip of everything appended
		cursor     = newModel(base) // verification cursor, advanced per epoch
		log        []relation.Update
		registered = map[string]candidate{}
		spent      = map[string]float64{}
		names      = base.Names()
	)

	register := func(c candidate) {
		qc := serve.QueryConfig{ID: c.id, Query: c.mk(), Private: c.private, Budget: c.budget}
		if c.private != "" {
			qc.Release = mechanism.TSensDPConfig{Epsilon: 1, Bound: 64}
		}
		_, v, err := srv.Register(qc)
		if err != nil {
			fatalf("register %s: %v", c.id, err)
		}
		wantParts := 1
		if cfg.Shards > 1 && c.id != "path" {
			wantParts = cfg.Shards
		}
		if v.Parts != wantParts {
			fatalf("register %s: %d parts, want %d", c.id, v.Parts, wantParts)
		}
		registered[c.id] = c
		delete(spent, c.id) // re-registration starts a fresh ledger
	}
	register(candidates()[0]) // always start with the partitioned star

	verify := func() {
		t.Helper()
		total := int64(len(log))
		if err := srv.WaitApplied(total); err != nil {
			fatalf("wait: %v", err)
		}
		cursor.advance(log[cursor.applied:total])
		if st := srv.Stats(); st.Epoch != total || st.Skipped != cursor.skipped {
			fatalf("stats %+v, model: epoch %d, skipped %d", st, total, cursor.skipped)
		}
		for id, c := range registered {
			v, err := srv.View(id)
			if err != nil {
				fatalf("view %s: %v", id, err)
			}
			if v.Epoch != total {
				fatalf("view %s at epoch %d after waiting for %d", id, v.Epoch, total)
			}
			want, err := core.LocalSensitivity(c.mk(), cursor.db, core.Options{})
			if err != nil {
				fatalf("scratch %s: %v", id, err)
			}
			if v.Count != want.Count || v.LS.LS != want.LS {
				fatalf("epoch %d, query %s: served (count %d, LS %d), scratch (%d, %d)",
					total, id, v.Count, v.LS.LS, want.Count, want.LS)
			}
			for rel, tr := range want.PerRelation {
				got := v.LS.PerRelation[rel]
				if got == nil || got.Sensitivity != tr.Sensitivity {
					fatalf("epoch %d, query %s, relation %s: served %v, scratch %d",
						total, id, rel, got, tr.Sensitivity)
				}
			}
		}
		for _, info := range srv.Queries() {
			if want, ok := spent[info.ID]; ok && math.Abs(info.Spent-want) > 1e-9 {
				fatalf("query %s ledger spent %g, model %g", info.ID, info.Spent, want)
			}
		}
		// The /metrics surface must agree with the model at every quiesce
		// point: these are the identities monitoring dashboards lean on, so
		// the differential harness holds them to the same exactness as the
		// query answers.
		mv := func(sample string) float64 {
			v, _ := srv.Metrics().Value(sample)
			return v
		}
		if got := mv("tsens_serve_epoch"); got != float64(total) {
			fatalf("metric tsens_serve_epoch %g, model epoch %d", got, total)
		}
		if got := mv("tsens_serve_appended"); got != float64(total) {
			fatalf("metric tsens_serve_appended %g, model %d", got, total)
		}
		if got := mv("tsens_serve_skipped"); got != float64(cursor.skipped) {
			fatalf("metric tsens_serve_skipped %g, model %d", got, cursor.skipped)
		}
		if got := mv("tsens_serve_queries"); got != float64(len(registered)) {
			fatalf("metric tsens_serve_queries %g, %d registered", got, len(registered))
		}
		for _, info := range srv.Queries() {
			sample := fmt.Sprintf("tsens_epsilon_spent{query=%q}", info.ID)
			if got := mv(sample); math.Abs(got-info.Spent) > 1e-9 {
				fatalf("metric %s %g, ledger %g", sample, got, info.Spent)
			}
		}
	}

	for step := 0; step < cfg.Steps; step++ {
		switch op := rng.Intn(100); {
		case op < 50: // append a batch
			n := 1 + rng.Intn(8)
			batch := make([]relation.Update, 0, n)
			for i := 0; i < n; i++ {
				rel := names[rng.Intn(len(names))]
				rows := live.db.Relation(rel).Rows
				switch {
				case len(rows) > 0 && rng.Intn(100) < 35: // delete a live row
					batch = append(batch, relation.Update{Rel: rel, Row: rows[rng.Intn(len(rows))].Clone()})
				case rng.Intn(100) < 10: // delete a (probably) absent row
					batch = append(batch, relation.Update{Rel: rel, Row: relation.Tuple{99, 99}})
				default:
					batch = append(batch, relation.Update{
						Rel: rel, Insert: true,
						Row: relation.Tuple{int64(rng.Intn(keyDom)), int64(rng.Intn(valDom))},
					})
				}
			}
			if _, _, err := srv.Append(batch); err != nil {
				fatalf("append: %v", err)
			}
			log = append(log, batch...)
			live.advance(batch)
		case op < 65: // flush and verify every query at the published epoch
			verify()
		case op < 75: // register an unregistered candidate
			for _, c := range candidates() {
				if _, ok := registered[c.id]; !ok {
					register(c)
					break
				}
			}
		case op < 85: // unregister one (keep at least one registered)
			if len(registered) > 1 {
				// Pick deterministically: ranging over the map would let Go's
				// randomized iteration order steer the script, breaking the
				// replay-by-seed contract.
				ids := make([]string, 0, len(registered))
				for id := range registered {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				id := ids[rng.Intn(len(ids))]
				if err := srv.Unregister(id); err != nil {
					fatalf("unregister %s: %v", id, err)
				}
				delete(registered, id)
			}
		default: // release on the private query, if registered
			c, ok := registered["priv"]
			if !ok {
				continue
			}
			res, err := srv.Release("priv", rand.New(rand.NewSource(rng.Int63())))
			if err != nil {
				if !errors.Is(err, mechanism.ErrBudgetExhausted) {
					fatalf("release: %v", err)
				}
				if c.budget-spent["priv"] >= 1-1e-9 {
					fatalf("budget refused with %g of %g spent", spent["priv"], c.budget)
				}
				continue
			}
			spent["priv"] += res.Spent
			if math.Abs(res.TotalSpent-spent["priv"]) > 1e-9 {
				fatalf("release total %g, model %g", res.TotalSpent, spent["priv"])
			}
			if res.Fresh == (res.Spent == 0) {
				fatalf("fresh/spent disagree: %+v", res)
			}
			if spent["priv"] > c.budget+1e-9 {
				fatalf("ledger overdrawn: %g of %g", spent["priv"], c.budget)
			}
		}
	}
	verify()
}
