package difftest

// The cluster failure matrix: the differential script of Run, executed
// against a replicated pair — a durable leader shipping its WAL to a live
// follower — while a seeded schedule kills the leader, partitions the
// replication link, or fails an fsync under the leader's WAL at arbitrary
// steps. A kill on a healthy link promotes the caught-up follower (the old
// leader's directory rejoins as the new follower and is lineage-reset); a
// kill behind a partition exercises the refusal path — the lagging follower
// REFUSES to promote, because promoting would void acknowledged writes and
// resurrect spent ε — and the old leader restarts from its own directory
// instead. After every transition and at every flush point the surviving
// leader must match the from-scratch solver exactly, the follower's views
// must match the from-scratch solver at each view's own epoch (never past
// the durable horizon), and at quiesce points the follower must be
// byte-identical to the leader: views, per-relation maxima, and ledger
// totals, with replayed releases repeating the recorded noisy value across
// failovers.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"tsens/internal/core"
	"tsens/internal/mechanism"
	"tsens/internal/relation"
	"tsens/internal/serve"
	"tsens/internal/serve/faultfs"
	"tsens/internal/serve/replica"
)

// clusterNode is one simulated machine: a WAL directory on a fault-
// injectable filesystem. Roles (leader/follower) move between nodes as the
// script kills and promotes.
type clusterNode struct {
	name string
	dir  string
	fs   *faultfs.FS
}

// RunCluster executes one scripted replicated-failover run.
func RunCluster(t *testing.T, cfg Config) {
	if cfg.Steps == 0 {
		cfg.Steps = 120
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 2
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fatalf := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("seed %d: %s", cfg.Seed, fmt.Sprintf(format, args...))
	}
	const wait = 15 * time.Second

	base := baseDB(rng)
	nodeA := clusterNode{name: "A", dir: t.TempDir(), fs: faultfs.New(nil)}
	nodeB := clusterNode{name: "B", dir: t.TempDir(), fs: faultfs.New(nil)}
	mkOpts := func(n clusterNode) serve.Options {
		return serve.Options{
			Shards:      cfg.Shards,
			Parallelism: cfg.Parallelism,
			BatchSize:   cfg.BatchSize,
			AsyncEpochs: cfg.AsyncEpochs,
			SharedPlans: cfg.SharedPlans,
			WALDir:      n.dir,
			WALFS:       n.fs,
			// Only the boot checkpoint: a periodic checkpoint racing an armed
			// fsync fault would make the script nondeterministic.
			CheckpointEvery: -1,
		}
	}

	// One simulated network and one simulated clock. The lease store reads
	// the clock, so a kill can age the dead leader's lease out instantly.
	nf := &replica.NetFault{}
	var clockOff atomic.Int64
	clock := func() time.Time { return time.Now().Add(time.Duration(clockOff.Load())) }
	store := replica.NewMemLease(clock)
	const ttl = time.Minute

	leaderNode, followerNode := nodeA, nodeB
	srv, err := serve.New(base, mkOpts(leaderNode))
	if err != nil {
		fatalf("new server: %v", err)
	}
	alive := true
	newLeader := func(s *serve.Server, n clusterNode) *replica.Leader {
		ld, err := replica.NewLeader(s, replica.LeaderOptions{
			Lease: store, Holder: n.name, TTL: ttl,
			Fault: nf, HeartbeatEvery: 20 * time.Millisecond,
		})
		if err != nil {
			fatalf("leader on %s: %v", n.name, err)
		}
		return ld
	}
	ld := newLeader(srv, leaderNode)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	go ld.Serve(ln)
	rebind := func() {
		deadline := time.Now().Add(wait)
		for {
			l, err := net.Listen("tcp", addr)
			if err == nil {
				go ld.Serve(l)
				return
			}
			if time.Now().After(deadline) {
				fatalf("rebinding %s: %v", addr, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	startFollower := func(n clusterNode) *replica.Follower {
		f, err := replica.StartFollower(replica.FollowerOptions{
			Dir: n.dir, Addr: addr, Serve: mkOpts(n), Fault: nf,
			ReconnectMin: 5 * time.Millisecond, ReconnectMax: 50 * time.Millisecond,
		})
		if err != nil {
			fatalf("follower on %s: %v", n.name, err)
		}
		return f
	}
	fol := startFollower(followerNode)
	defer func() {
		if fol != nil {
			fol.Close()
		}
		if ld != nil {
			ld.Close()
		}
		if alive {
			srv.CloseNow()
		}
	}()

	var (
		live       = newModel(base)
		cursor     = newModel(base)
		log        []relation.Update
		registered = map[string]candidate{}
		spent      = map[string]float64{}
		lastNoisy  = map[string]float64{}
		names      = base.Names()
	)

	register := func(c candidate) {
		qc := serve.QueryConfig{ID: c.id, Query: c.mk(), Private: c.private, Budget: c.budget}
		if c.private != "" {
			qc.Release = mechanism.TSensDPConfig{Epsilon: 1, Bound: 64}
		}
		if _, _, err := srv.Register(qc); err != nil {
			fatalf("register %s: %v", c.id, err)
		}
		registered[c.id] = c
		delete(spent, c.id)
		delete(lastNoisy, c.id)
	}
	register(candidates()[0])

	mkBatch := func() []relation.Update {
		n := 1 + rng.Intn(8)
		batch := make([]relation.Update, 0, n)
		for i := 0; i < n; i++ {
			rel := names[rng.Intn(len(names))]
			rows := live.db.Relation(rel).Rows
			switch {
			case len(rows) > 0 && rng.Intn(100) < 35:
				batch = append(batch, relation.Update{Rel: rel, Row: rows[rng.Intn(len(rows))].Clone()})
			case rng.Intn(100) < 10:
				batch = append(batch, relation.Update{Rel: rel, Row: relation.Tuple{99, 99}})
			default:
				batch = append(batch, relation.Update{
					Rel: rel, Insert: true,
					Row: relation.Tuple{int64(rng.Intn(keyDom)), int64(rng.Intn(valDom))},
				})
			}
		}
		return batch
	}

	verify := func(when string) {
		t.Helper()
		total := int64(len(log))
		if err := srv.WaitApplied(total); err != nil {
			fatalf("%s: wait: %v", when, err)
		}
		cursor.advance(log[cursor.applied:total])
		if st := srv.Stats(); st.Epoch != total || st.Skipped != cursor.skipped {
			fatalf("%s: stats %+v, model: epoch %d, skipped %d", when, st, total, cursor.skipped)
		}
		for id, c := range registered {
			v, err := srv.View(id)
			if err != nil {
				fatalf("%s: view %s: %v", when, id, err)
			}
			want, err := core.LocalSensitivity(c.mk(), cursor.db, core.Options{})
			if err != nil {
				fatalf("%s: scratch %s: %v", when, id, err)
			}
			if v.Epoch != total || v.Count != want.Count || v.LS.LS != want.LS {
				fatalf("%s: epoch %d, query %s: served (epoch %d, count %d, LS %d), scratch (%d, %d)",
					when, total, id, v.Epoch, v.Count, v.LS.LS, want.Count, want.LS)
			}
			for rel, tr := range want.PerRelation {
				got := v.LS.PerRelation[rel]
				if got == nil || got.Sensitivity != tr.Sensitivity {
					fatalf("%s: epoch %d, query %s, relation %s: served %v, scratch %d",
						when, total, id, rel, got, tr.Sensitivity)
				}
			}
		}
		for _, info := range srv.Queries() {
			if want, ok := spent[info.ID]; ok && math.Abs(info.Spent-want) > 1e-9 {
				fatalf("%s: query %s ledger spent %g, model %g", when, info.ID, info.Spent, want)
			}
		}
	}

	// verifyFollower checks the invariants that hold at ANY instant of the
	// follower's life: nothing applied past the leader's durable horizon, and
	// every served view exact against the from-scratch solver at the view's
	// OWN epoch (the follower lags; it must never be wrong).
	verifyFollower := func(when string) {
		t.Helper()
		fsrv := fol.Server()
		if fsrv == nil {
			return
		}
		horizon := int64(len(log)) // SyncEvery=1: every acked record is durable
		if ap := fsrv.Stats().Appended; ap > horizon {
			fatalf("%s: follower applied %d past the durable horizon %d", when, ap, horizon)
		}
		for _, info := range fsrv.Queries() {
			c, ok := registered[info.ID]
			if !ok {
				continue // its unregistration simply has not replicated yet
			}
			v, err := fsrv.View(info.ID)
			if err != nil {
				continue
			}
			if v.Epoch > horizon {
				fatalf("%s: follower view %s at epoch %d past the durable horizon %d", when, info.ID, v.Epoch, horizon)
			}
			m := newModel(base)
			m.advance(log[:v.Epoch])
			want, err := core.LocalSensitivity(c.mk(), m.db, core.Options{})
			if err != nil {
				fatalf("%s: scratch %s at %d: %v", when, info.ID, v.Epoch, err)
			}
			if v.Count != want.Count || v.LS.LS != want.LS {
				fatalf("%s: follower %s at epoch %d: served (count %d, LS %d), scratch (%d, %d)",
					when, info.ID, v.Epoch, v.Count, v.LS.LS, want.Count, want.LS)
			}
		}
	}

	// quiesce drains replication and asserts the follower identical to the
	// leader: every view field-for-field, every ledger total bit-for-bit.
	quiesce := func(when string) {
		t.Helper()
		verify(when)
		total := int64(len(log))
		lg, li := srv.WAL().DurablePosition()
		deadline := time.Now().Add(wait)
		var fsrv *serve.Server
		for {
			fsrv = fol.Server()
			fg, fi := fol.Position()
			if fsrv != nil && fg == lg && fi == li && fsrv.Epoch() >= total {
				settled := true
				for id := range registered {
					if v, err := fsrv.View(id); err != nil || v.Epoch != total {
						settled = false
						break
					}
				}
				if settled && fsrv.Stats().Queries == len(registered) {
					break
				}
			}
			if time.Now().After(deadline) {
				fatalf("%s: follower never caught up to epoch %d", when, total)
			}
			time.Sleep(5 * time.Millisecond)
		}
		for id := range registered {
			lv, err := srv.View(id)
			if err != nil {
				fatalf("%s: leader view %s: %v", when, id, err)
			}
			fv, err := fsrv.View(id)
			if err != nil {
				fatalf("%s: follower view %s: %v", when, id, err)
			}
			if fv.Epoch != lv.Epoch || fv.Count != lv.Count || fv.LS.LS != lv.LS.LS {
				fatalf("%s: follower view %s (epoch %d, %d, %d) != leader (epoch %d, %d, %d)",
					when, id, fv.Epoch, fv.Count, fv.LS.LS, lv.Epoch, lv.Count, lv.LS.LS)
			}
			for rel, tr := range lv.LS.PerRelation {
				got := fv.LS.PerRelation[rel]
				if got == nil || got.Sensitivity != tr.Sensitivity {
					fatalf("%s: follower %s relation %s: %v, leader %d", when, id, rel, got, tr.Sensitivity)
				}
			}
		}
		fspent := map[string]float64{}
		for _, info := range fsrv.Queries() {
			fspent[info.ID] = info.Spent
		}
		for _, info := range srv.Queries() {
			if fspent[info.ID] != info.Spent { // replicated spends must be bit-identical
				fatalf("%s: follower ledger %s spent %v, leader %v", when, info.ID, fspent[info.ID], info.Spent)
			}
		}
	}

	// swapRoles installs promoted as the new leader and rejoins the old
	// leader's directory as the new follower (its stale lineage is reset on
	// first contact).
	swapRoles := func(promoted *serve.Server) {
		leaderNode, followerNode = followerNode, leaderNode
		srv = promoted
		alive = true
		ld = newLeader(srv, leaderNode)
		rebind()
		fol.Close()
		fol = startFollower(followerNode)
	}

	restartLeader := func(step int) {
		// The machine that died restarts from its own directory: unsynced
		// bytes evaporate (CrashAndRestore), everything acknowledged is there.
		if err := leaderNode.fs.CrashAndRestore(); err != nil {
			fatalf("step %d: crash restore: %v", step, err)
		}
		re, err := serve.New(nil, mkOpts(leaderNode))
		if err != nil {
			fatalf("step %d: leader restart: %v", step, err)
		}
		srv = re
		alive = true
		ld = newLeader(srv, leaderNode)
		rebind()
	}

	partitioned := false
	kill := func(step int) {
		t.Helper()
		total := int64(len(log))
		if !partitioned {
			// A healthy link: let the follower fully catch up — the WHOLE
			// durable stream, trailing registers and releases included, not
			// just the update LSN — then kill. This is the failover where
			// promotion must succeed and nothing acknowledged may be lost.
			lg, li := srv.WAL().DurablePosition()
			deadline := time.Now().Add(wait)
			for {
				fg, fi := fol.Position()
				if fol.Server() != nil && fg == lg && fi == li {
					break
				}
				if time.Now().After(deadline) {
					fatalf("step %d: follower never replicated to (%d,%d)", step, lg, li)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
		ld.Close()
		srv.CloseNow()
		alive = false
		clockOff.Add(int64(ttl + time.Second)) // even an unreleased lease ages out

		promoted, err := fol.Promote(replica.PromoteOptions{
			MinLSN: total, Lease: store, Holder: followerNode.name, TTL: ttl,
		})
		switch {
		case err == nil:
			if partitioned {
				// Legal: nothing was acknowledged during the partition, so the
				// follower's horizon covers everything.
				t.Logf("seed %d: step %d: partitioned follower was caught up; promoted", cfg.Seed, step)
			}
			swapRoles(promoted)
		case strings.Contains(err.Error(), "refusing promotion"):
			if !partitioned {
				fatalf("step %d: caught-up follower refused promotion: %v", step, err)
			}
			// The refusal path: the follower is short of the acknowledged
			// horizon, so the only correct move is restarting the old leader
			// from its own directory. The stopped follower rejoins fresh.
			fol.Close()
			restartLeader(step)
			fol = startFollower(followerNode)
		default:
			fatalf("step %d: promote: %v", step, err)
		}
		infos := srv.Queries()
		if len(infos) != len(registered) {
			fatalf("step %d: survivor has %d queries, want %d (%+v)", step, len(infos), len(registered), infos)
		}
		for _, info := range infos {
			if _, ok := registered[info.ID]; !ok {
				fatalf("step %d: survivor serves unregistered query %q", step, info.ID)
			}
		}
		verify(fmt.Sprintf("step %d post-failover", step))
	}

	fsyncFault := func(step int) {
		t.Helper()
		leaderNode.fs.FailNthSync(1)
		if _, _, err := srv.Append(mkBatch()); !errors.Is(err, faultfs.ErrInjected) {
			fatalf("step %d: append with failing fsync: %v, want ErrInjected", step, err)
		}
		if got := srv.Stats().Appended; got != int64(len(log)) {
			fatalf("step %d: refused append advanced the LSN to %d, want %d", step, got, len(log))
		}
		leaderNode.fs.Disarm()
		// The WAL is sticky after a write error: the leader process restarts
		// from its own directory (fresh lineage; the follower resets).
		ld.Close()
		srv.CloseNow()
		alive = false
		clockOff.Add(int64(ttl + time.Second))
		restartLeader(step)
		verify(fmt.Sprintf("step %d post-fsync-fault", step))
	}

	// The fault schedule is part of the seeded script: two partition windows,
	// two leader kills, one fsync fault, at distinct steps.
	events := map[int]string{}
	addEvent := func(kind string) {
		for {
			s := 1 + rng.Intn(cfg.Steps-1)
			if events[s] == "" {
				events[s] = kind
				return
			}
		}
	}
	addEvent("partition")
	addEvent("partition")
	addEvent("kill")
	addEvent("kill")
	addEvent("fsync")
	healAt := -1

	for step := 0; step < cfg.Steps; step++ {
		if step == healAt {
			nf.Partition(false)
			partitioned = false
			healAt = -1
		}
		switch events[step] {
		case "partition":
			heal := step + 1 + rng.Intn(5) // drawn unconditionally: the script must not depend on state
			if !partitioned {
				nf.Partition(true)
				partitioned = true
				healAt = heal
			}
		case "kill":
			kill(step)
		case "fsync":
			fsyncFault(step)
		}
		switch op := rng.Intn(100); {
		case op < 50:
			batch := mkBatch()
			if _, _, err := srv.Append(batch); err != nil {
				fatalf("step %d: append: %v", step, err)
			}
			log = append(log, batch...)
			live.advance(batch)
		case op < 65:
			verify(fmt.Sprintf("step %d flush", step))
			verifyFollower(fmt.Sprintf("step %d flush", step))
		case op < 75:
			for _, c := range candidates() {
				if _, ok := registered[c.id]; !ok {
					register(c)
					break
				}
			}
		case op < 85:
			if len(registered) > 1 {
				ids := make([]string, 0, len(registered))
				for id := range registered {
					ids = append(ids, id)
				}
				sort.Strings(ids) // deterministic pick
				id := ids[rng.Intn(len(ids))]
				if err := srv.Unregister(id); err != nil {
					fatalf("step %d: unregister %s: %v", step, id, err)
				}
				delete(registered, id)
			}
		default:
			c, ok := registered["priv"]
			if !ok {
				continue
			}
			res, err := srv.Release("priv", rand.New(rand.NewSource(rng.Int63())))
			if err != nil {
				if !errors.Is(err, mechanism.ErrBudgetExhausted) {
					fatalf("step %d: release: %v", step, err)
				}
				if c.budget-spent["priv"] >= 1-1e-9 {
					fatalf("budget refused with %g of %g spent", spent["priv"], c.budget)
				}
				continue
			}
			spent["priv"] += res.Spent
			if math.Abs(res.TotalSpent-spent["priv"]) > 1e-9 {
				fatalf("release total %g, model %g", res.TotalSpent, spent["priv"])
			}
			if res.Fresh {
				lastNoisy["priv"] = res.Run.Noisy
			} else if want, ok := lastNoisy["priv"]; ok && res.Run.Noisy != want {
				// Replayed releases must repeat the recorded noisy value —
				// across failovers too (the cached run rides the WAL stream).
				fatalf("replayed release noisy %g, want recorded %g", res.Run.Noisy, want)
			}
		}
	}

	// Final: heal, quiesce (follower byte-identical), then one last clean
	// kill-the-leader failover and a full verification of the survivor.
	if partitioned {
		nf.Partition(false)
		partitioned = false
	}
	quiesce("final quiesce")
	kill(cfg.Steps)
	quiesce("post-final-failover")
}
