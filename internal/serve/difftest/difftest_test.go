package difftest

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"tsens/internal/serve"
)

// shardCounts returns the shard matrix: TSENS_TEST_SHARDS (comma-separated)
// or the default 1,4 — shard=1 keeps covering the legacy single-writer
// pipeline, 4 the partitioned one.
func shardCounts(t *testing.T) []int {
	spec := os.Getenv("TSENS_TEST_SHARDS")
	if spec == "" {
		spec = "1,4"
	}
	var out []int
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			t.Fatalf("TSENS_TEST_SHARDS: bad field %q", f)
		}
		out = append(out, n)
	}
	return out
}

// boolAxis parses a "1"/"0" comma-separated matrix env var, defaulting to
// both values.
func boolAxis(t *testing.T, env string) []bool {
	spec := os.Getenv(env)
	if spec == "" {
		spec = "1,0"
	}
	var out []bool
	for _, f := range strings.Split(spec, ",") {
		switch strings.TrimSpace(f) {
		case "1":
			out = append(out, true)
		case "0":
			out = append(out, false)
		default:
			t.Fatalf("%s: bad field %q (want 1 or 0)", env, f)
		}
	}
	return out
}

// asyncModes returns the drain-discipline matrix: TSENS_TEST_ASYNC ("1",
// "0", or a comma-separated combination) or the default both — the matrix
// diffs the async and coordinated implementations against the same model.
func asyncModes(t *testing.T) []bool { return boolAxis(t, "TSENS_TEST_ASYNC") }

// sharedModes returns the subplan-sharing matrix: TSENS_TEST_SHARED ("1",
// "0", or both) or the default both — the matrix diffs the hash-consed and
// fully-private session paths against the same model.
func sharedModes(t *testing.T) []bool { return boolAxis(t, "TSENS_TEST_SHARED") }

// seed returns TSENS_DIFF_SEED when set (replaying a recorded failure), or
// a fresh time-derived seed. The seed is logged and embedded in every
// failure message.
func seed(t *testing.T) int64 {
	if spec := os.Getenv("TSENS_DIFF_SEED"); spec != "" {
		s, err := strconv.ParseInt(spec, 10, 64)
		if err != nil {
			t.Fatalf("TSENS_DIFF_SEED: %v", err)
		}
		return s
	}
	return time.Now().UnixNano()
}

func matrixName(shards int, async, shared bool) string {
	return fmt.Sprintf("shards=%d/async=%v/shared=%v", shards, async, shared)
}

// matrix invokes fn for every (shards, async, shared) combination of the
// env-configurable axes.
func matrix(t *testing.T, s int64, fn func(t *testing.T, cfg Config)) {
	for _, shards := range shardCounts(t) {
		for _, async := range asyncModes(t) {
			for _, shared := range sharedModes(t) {
				cfg := Config{Seed: s, Shards: shards,
					AsyncEpochs: serve.Bool(async), SharedPlans: serve.Bool(shared)}
				t.Run(matrixName(shards, async, shared), func(t *testing.T) {
					fn(t, cfg)
				})
			}
		}
	}
}

func TestServeDifferentialRandomized(t *testing.T) {
	s := seed(t)
	t.Logf("script seed %d (replay with TSENS_DIFF_SEED=%d)", s, s)
	matrix(t, s, func(t *testing.T, cfg Config) { Run(t, cfg) })
}

// TestServeDifferentialPinned replays two fixed seeds so every CI run —
// even without the env matrix — covers a deterministic script at both
// shard extremes, in both drain disciplines, and on both sides of the
// subplan-sharing switch.
func TestServeDifferentialPinned(t *testing.T) {
	for _, c := range []Config{
		{Seed: 1, Shards: 1},
		{Seed: 2, Shards: 4},
	} {
		for _, async := range []bool{true, false} {
			for _, shared := range []bool{true, false} {
				c := c
				c.AsyncEpochs = serve.Bool(async)
				c.SharedPlans = serve.Bool(shared)
				t.Run(fmt.Sprintf("seed=%d/%s", c.Seed, matrixName(c.Shards, async, shared)), func(t *testing.T) {
					Run(t, c)
				})
			}
		}
	}
}

// TestServeCrashRecoveryMatrix is the crash-point matrix: the differential
// script against a durable server killed at seed-chosen WAL offsets
// mid-script (with a torn partial frame appended, simulating death
// mid-write), reopened from disk, and driven on — recovered counts, LS,
// epochs, and ledger totals must match the from-scratch solver and the
// uninterrupted model at every flush point.
func TestServeCrashRecoveryMatrix(t *testing.T) {
	s := seed(t)
	t.Logf("script seed %d (replay with TSENS_DIFF_SEED=%d)", s, s)
	matrix(t, s, func(t *testing.T, cfg Config) { RunCrash(t, cfg, t.TempDir(), 4) })
}

// TestServeCrashRecoveryPinned replays fixed crash scripts at both shard
// extremes so every CI run covers a deterministic kill/reopen sequence in
// both drain disciplines and on both sides of the sharing switch.
func TestServeCrashRecoveryPinned(t *testing.T) {
	for _, c := range []Config{
		{Seed: 3, Shards: 1},
		{Seed: 4, Shards: 4},
	} {
		for _, async := range []bool{true, false} {
			for _, shared := range []bool{true, false} {
				c := c
				c.AsyncEpochs = serve.Bool(async)
				c.SharedPlans = serve.Bool(shared)
				t.Run(fmt.Sprintf("seed=%d/%s", c.Seed, matrixName(c.Shards, async, shared)), func(t *testing.T) {
					RunCrash(t, c, t.TempDir(), 4)
				})
			}
		}
	}
}

// TestServeClusterFailoverMatrix is the replicated failure matrix: the
// differential script against a leader/follower pair with seeded leader
// kills (promoting the follower on a healthy link, refusing and restarting
// the old leader behind a partition), replication-link partitions, and an
// injected WAL fsync failure — the surviving leader and the follower must
// match the from-scratch solver and each other at every checkpoint.
func TestServeClusterFailoverMatrix(t *testing.T) {
	s := seed(t)
	t.Logf("script seed %d (replay with TSENS_DIFF_SEED=%d)", s, s)
	matrix(t, s, func(t *testing.T, cfg Config) { RunCluster(t, cfg) })
}

// TestServeClusterFailoverPinned replays fixed failover scripts at both
// shard extremes so every CI run covers a deterministic kill/promote/reset
// sequence in both drain disciplines. The sharing axis is pinned per seed
// (failover scripts are the slowest harness; the full cross product runs
// in the randomized matrix).
func TestServeClusterFailoverPinned(t *testing.T) {
	for _, c := range []Config{
		{Seed: 5, Shards: 1, SharedPlans: serve.Bool(true)},
		{Seed: 6, Shards: 4, SharedPlans: serve.Bool(false)},
	} {
		for _, async := range []bool{true, false} {
			c := c
			c.AsyncEpochs = serve.Bool(async)
			t.Run(fmt.Sprintf("seed=%d/%s", c.Seed, matrixName(c.Shards, async, *c.SharedPlans)), func(t *testing.T) {
				RunCluster(t, c)
			})
		}
	}
}
