package serve

// HTTP/JSON API over the Server. Endpoints (docs/SERVING.md has curl
// examples):
//
//	POST   /queries              register a query
//	GET    /queries              list registered queries
//	GET    /queries/{id}/ls      count + local sensitivity at the last epoch
//	POST   /queries/{id}/release ε-DP noisy release (budget-accounted)
//	DELETE /queries/{id}         unregister
//	POST   /updates              append updates (JSON, or text/csv stream)
//	GET    /epoch                writer progress
//	GET    /healthz              liveness (the process is up; nothing more)
//	GET    /readyz               readiness + role: leading/following/recovering
//
// Reads answer from published epoch views and never wait on the writers;
// POST /updates?wait=1 (or "wait": true) blocks until the shards owning the
// appended entries have folded them (their watermarks cover the range;
// within the current round this never waits on a shard the updates don't
// touch, though entries past the round's cut wait for the coordinator to
// start the next round), and ?wait=epoch (or
// "wait_epoch": true) blocks until the joined cut reaches them, so a
// subsequent view read is guaranteed to reflect them. /epoch reports the
// joined cut next to the per-shard watermarks; the "epoch" field of every
// response is always a consistent cut, never one shard's progress.
//
// GET /queries/{id}/ls exposes exact counts and sensitivities — it exists
// for the trusted operator and for differential testing. The only output
// safe to hand an untrusted analyst is POST /queries/{id}/release.

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"

	"errors"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tsens/internal/core"
	"tsens/internal/csvio"
	"tsens/internal/ghd"
	"tsens/internal/mechanism"
	"tsens/internal/obs"
	"tsens/internal/parser"
	"tsens/internal/query"
	"tsens/internal/relation"
)

// Codec translates between wire values (strings) and the int64 attribute
// values relations store. csvio.Loader implements it, so a server loaded
// from CSVs shares one dictionary with its snapshot; IntCodec serves purely
// integer data.
type Codec interface {
	Encode(field string) (int64, error)
	Decode(v int64) string
}

// IntCodec is the Codec for databases whose values are all integers.
type IntCodec struct{}

// Encode parses field as a base-10 integer.
func (IntCodec) Encode(field string) (int64, error) {
	v, err := strconv.ParseInt(field, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: non-integer value %q needs a string codec (CSV loader)", field)
	}
	return v, nil
}

// Decode renders v in base 10.
func (IntCodec) Decode(v int64) string { return strconv.FormatInt(v, 10) }

// Role states reported by /readyz and used to gate writes.
const (
	// StateRecovering: the process is up but still replaying its WAL (or
	// mirrored) tail; reads would answer from an old cut, so /readyz is 503.
	StateRecovering = "recovering"
	// StateFollowing: a replication follower — wait-free epoch reads are
	// served here, state changes are refused with 503 + Retry-After (the
	// ε-ledger has exactly one writer: the leader).
	StateFollowing = "following"
	// StateLeading: the full API. A standalone server (no replication) is
	// always leading.
	StateLeading = "leading"
)

// Status is what /readyz reports and the write gate consults.
type Status struct {
	// State is one of StateRecovering/StateFollowing/StateLeading.
	State string `json:"state"`
	// Leader, when known on a follower, is the leader's replication address
	// — a hint for the failure-mode table, not a redirect target (the HTTP
	// address is deployment-specific).
	Leader string `json:"leader,omitempty"`
	// Epoch and Applied are a follower's replicated progress: the published
	// consistent cut its reads answer from, and the update LSN it has
	// applied. Zero on a leader (read /epoch there).
	Epoch   int64 `json:"epoch,omitempty"`
	Applied int64 `json:"applied,omitempty"`
	// LeaderAppended is the leader's acknowledged update LSN from the last
	// replication heartbeat; Lag is how far Applied trails it — the
	// staleness signal a bounded-staleness router reads from /readyz.
	LeaderAppended int64 `json:"leader_appended,omitempty"`
	Lag            int64 `json:"lag,omitempty"`
	// RetryAfterSeconds is the backoff a 503 response carries: on a
	// follower, observed replication lag times mean apply latency (clamped
	// to [1, 30]); 1 otherwise.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// retryAfter renders the Retry-After header value for a 503 under st.
func (st Status) retryAfter() string {
	if st.RetryAfterSeconds > 0 {
		return strconv.Itoa(st.RetryAfterSeconds)
	}
	return "1"
}

// API is the HTTP front end of a Server.
type API struct {
	codec Codec
	mux   *http.ServeMux

	// srv resolves the backing server per request. Fixed for a standalone
	// server, but a replication follower's backend moves underneath the
	// handler: nil until the first checkpoint lands, a fresh passive server
	// after a lineage reset, the recovered leading server after promotion —
	// so handlers resolve it per request instead of capturing one pointer.
	srv atomic.Pointer[func() *Server]

	// status reports the process role (nil = always leading, the standalone
	// default). Swapped atomically by the serve command as the process
	// recovers, follows, or promotes.
	status atomic.Pointer[func() Status]

	// metrics, when set, pins the registry behind /metrics and /debug/vars
	// (nil falls back to the backend server's).
	metrics atomic.Pointer[obs.Registry]

	// traces, when set, pins the recorder behind /debug/traces and the one
	// ingress traces start in (nil falls back to the backend server's) —
	// the same process-level pinning as metrics.
	traces atomic.Pointer[obs.TraceRecorder]

	rngMu sync.Mutex
	rng   *rand.Rand
}

// SetServer points the API at a fixed backing server (possibly replacing a
// resolver installed with SetServerFunc — the promotion path does exactly
// that).
func (a *API) SetServer(srv *Server) { a.SetServerFunc(func() *Server { return srv }) }

// SetServerFunc installs a dynamic backend resolver; fn returning nil means
// there is no state to serve yet and reads answer 503.
func (a *API) SetServerFunc(fn func() *Server) { a.srv.Store(&fn) }

func (a *API) server() *Server {
	if p := a.srv.Load(); p != nil {
		return (*p)()
	}
	return nil
}

// backend resolves the serving backend, answering 503 + Retry-After when
// none exists yet (a follower that has not received its first checkpoint);
// reports whether the request may proceed.
func (a *API) backend(w http.ResponseWriter) (*Server, bool) {
	srv := a.server()
	if srv == nil {
		st := a.Status()
		w.Header().Set("Retry-After", st.retryAfter())
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error": "no state to serve yet",
			"state": st.State,
		})
		return nil, false
	}
	return srv, true
}

// SetStatus installs the role reporter backing /readyz and the write gate.
func (a *API) SetStatus(fn func() Status) { a.status.Store(&fn) }

// Status returns the current role (StateLeading when no reporter is set).
func (a *API) Status() Status {
	if p := a.status.Load(); p != nil {
		return (*p)()
	}
	return Status{State: StateLeading}
}

// gateWrite refuses state-changing requests unless this process leads,
// with Retry-After so a client retrying through a failover backs off
// instead of hammering; reports whether the request may proceed.
func (a *API) gateWrite(w http.ResponseWriter) bool {
	st := a.Status()
	if st.State == StateLeading {
		return true
	}
	// A follower's Retry-After tracks how stale it actually is: lag times
	// its observed mean apply latency, so a client backing off rejoins
	// roughly when the failover or catch-up has had time to land.
	w.Header().Set("Retry-After", st.retryAfter())
	out := map[string]any{
		"error": fmt.Sprintf("not leading (state %q): writes and releases are leader-only", st.State),
		"state": st.State,
	}
	if st.Leader != "" {
		out["leader"] = st.Leader
	}
	writeJSON(w, http.StatusServiceUnavailable, out)
	return false
}

// NewAPI wraps srv in an http.Handler. codec translates wire values (nil
// means IntCodec). seed seeds the release-noise source: 0 draws a
// cryptographically random seed — the production default, since a
// predictable seed replays the identical noise stream across restarts and
// lets an analyst diff it away. Fix the seed only to make tests
// reproducible.
func NewAPI(srv *Server, codec Codec, seed int64) *API {
	if codec == nil {
		codec = IntCodec{}
	}
	if seed == 0 {
		var b [8]byte
		_, _ = crand.Read(b[:]) // never fails as of go 1.24
		seed = int64(binary.LittleEndian.Uint64(b[:]))
	}
	a := &API{codec: codec, rng: rand.New(rand.NewSource(seed))}
	a.SetServer(srv)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /queries", a.handleRegister)
	mux.HandleFunc("GET /queries", a.handleList)
	mux.HandleFunc("GET /queries/{id}/ls", a.handleLS)
	mux.HandleFunc("POST /queries/{id}/release", a.handleRelease)
	mux.HandleFunc("DELETE /queries/{id}", a.handleUnregister)
	mux.HandleFunc("POST /updates", a.handleUpdates)
	mux.HandleFunc("GET /epoch", a.handleEpoch)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness only: the process is up. A recovering server is alive but
		// not ready — that distinction is /readyz's.
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// The status body carries a follower's replicated epoch, applied
		// LSN, and lag behind the leader — the bounded-staleness signal.
		st := a.Status()
		code := http.StatusOK
		if st.State == StateRecovering {
			code = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", st.retryAfter())
		}
		writeJSON(w, code, map[string]any{"ready": code == http.StatusOK, "state": st.State, "status": st})
	})
	mux.HandleFunc("GET /metrics", a.handleMetrics)
	mux.HandleFunc("GET /debug/vars", a.handleVars)
	mux.HandleFunc("GET /debug/traces", a.handleTraces)
	mux.HandleFunc("GET /debug/plans", a.handlePlans)
	a.mux = mux
	if srv != nil && srv.opts.Debug {
		a.EnableDebug()
	}
	return a
}

// SetMetrics pins the registry /metrics and /debug/vars render — the serve
// command passes its process-level registry so scrapes survive a
// follower's checkpoint resets and promotion. Without it, the handlers
// read the current backend server's registry.
func (a *API) SetMetrics(reg *obs.Registry) { a.metrics.Store(reg) }

func (a *API) registry() *obs.Registry {
	if r := a.metrics.Load(); r != nil {
		return r
	}
	if srv := a.server(); srv != nil {
		return srv.Metrics()
	}
	return nil // nil renders empty: obs is nil-receiver safe
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.registry().WritePrometheus(w)
}

func (a *API) handleVars(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, a.registry().Snapshot())
}

// handlePlans reports per-shard subplan-sharing state (GET /debug/plans):
// which plan stores exist, how many join-tree nodes each has interned, and
// how many of those are maintained for more than one query.
func (a *API) handlePlans(w http.ResponseWriter, r *http.Request) {
	srv, ok := a.backend(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"shared_plans": srv.sharedPlans,
		"domains":      srv.PlanStats(),
	})
}

// SetTraces pins the trace recorder /debug/traces renders and ingress
// records into — the serve command passes its process-level recorder so
// traces survive a follower's backend swaps, mirroring SetMetrics.
func (a *API) SetTraces(rec *obs.TraceRecorder) { a.traces.Store(rec) }

func (a *API) recorder() *obs.TraceRecorder {
	if rec := a.traces.Load(); rec != nil {
		return rec
	}
	if srv := a.server(); srv != nil {
		return srv.Traces()
	}
	return nil // nil recorder: Start and Traces are no-ops
}

// handleTraces serves the flight recorder's contents: sampled and slow
// traces, newest first. Query parameters: name (exact trace name),
// min_ms (minimum duration in milliseconds), limit (max traces).
func (a *API) handleTraces(w http.ResponseWriter, r *http.Request) {
	var f obs.TraceFilter
	q := r.URL.Query()
	f.Name = q.Get("name")
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad min_ms %q", v))
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad limit %q", v))
			return
		}
		f.Limit = n
	}
	rec := a.recorder()
	traces := rec.Traces(f)
	writeJSON(w, http.StatusOK, map[string]any{
		"slow_threshold_ms": float64(rec.SlowThreshold()) / float64(time.Millisecond),
		"count":             len(traces),
		"traces":            traces,
	})
}

// EnableDebug mounts net/http/pprof under /debug/pprof/. Opt-in
// (Options.Debug or the serve command's -debug flag): profiles expose
// operational detail no untrusted network should see.
func (a *API) EnableDebug() {
	a.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	a.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	a.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	a.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	a.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

type registerRequest struct {
	ID      string   `json:"id"`
	Query   string   `json:"query"`
	Bags    [][]int  `json:"bags"`
	Skip    []string `json:"skip"`
	Private string   `json:"private"`
	Release struct {
		Epsilon     float64 `json:"epsilon"`
		EpsilonSens float64 `json:"epsilon_sens"`
		Bound       int64   `json:"bound"`
	} `json:"release"`
	Budget float64 `json:"budget"`
	Drift  float64 `json:"drift"`
}

// decodeStrict decodes a JSON request body rejecting unknown fields: a
// misspelled option ("wait_epoc", "budge") must fail with 400, not silently
// drop the semantics the client asked for (read-your-writes, a budget cap —
// exactly the fields whose silent loss is least visible and most costly).
func decodeStrict(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

func (a *API) handleRegister(w http.ResponseWriter, r *http.Request) {
	if !a.gateWrite(w) {
		return
	}
	srv, ok := a.backend(w)
	if !ok {
		return
	}
	var req registerRequest
	if err := decodeStrict(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Query == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing \"query\""))
		return
	}
	name := req.ID
	if name == "" {
		name = "q"
	}
	q, err := parser.Parse(name, req.Query)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	cfg := QueryConfig{
		ID:      req.ID,
		Query:   q,
		Private: req.Private,
		Budget:  req.Budget,
		Drift:   req.Drift,
		Release: mechanism.TSensDPConfig{
			Epsilon:     req.Release.Epsilon,
			EpsilonSens: req.Release.EpsilonSens,
			Bound:       req.Release.Bound,
		},
	}
	cfg.Options.SkipRelations = req.Skip
	if len(req.Bags) > 0 {
		d, err := ghd.FromBags(q, req.Bags)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		cfg.Options.Decomposition = d
	} else if !query.IsAcyclic(q.Atoms) {
		d, err := ghd.Search(q, 0)
		if err != nil {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("query is cyclic and no \"bags\" given; automatic search failed: %w", err))
			return
		}
		cfg.Options.Decomposition = d
	}
	id, v, err := srv.Register(cfg)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusCreated, a.viewJSON(id, v, false))
}

func (a *API) handleList(w http.ResponseWriter, r *http.Request) {
	srv, ok := a.backend(w)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"queries": srv.Queries()})
}

func (a *API) handleLS(w http.ResponseWriter, r *http.Request) {
	srv, ok := a.backend(w)
	if !ok {
		return
	}
	id := r.PathValue("id")
	v, err := srv.View(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, a.viewJSON(id, v, r.URL.Query().Get("per_relation") == "1"))
}

func (a *API) handleRelease(w http.ResponseWriter, r *http.Request) {
	// Releases spend from the ε-ledger, which has exactly one writer — the
	// leader. A follower 503s with Retry-After rather than proxying, so the
	// budget arithmetic stays in one process.
	if !a.gateWrite(w) {
		return
	}
	srv, ok := a.backend(w)
	if !ok {
		return
	}
	id := r.PathValue("id")
	// The noise source is always the server's own seeded rng: a
	// client-chosen seed would let the analyst predict the Laplace noise
	// of a fresh release, voiding the DP guarantee this endpoint exists
	// to provide. Reject any body outright so clients of the removed
	// {"seed": N} parameter get a loud incompatibility, not silently
	// different semantics.
	if body := make([]byte, 1); r.Body != nil {
		if n, _ := r.Body.Read(body); n > 0 {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("release takes no request body (client-supplied seeds are not accepted)"))
			return
		}
	}
	a.rngMu.Lock()
	rng := rand.New(rand.NewSource(a.rng.Int63()))
	a.rngMu.Unlock()
	res, err := srv.Release(id, rng)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, ErrNoQuery) {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	out := map[string]any{
		"id":          id,
		"epoch":       res.Epoch,
		"sens_epoch":  res.SensEpoch,
		"fresh":       res.Fresh,
		"noisy":       res.Run.Noisy,
		"global_sens": res.Run.GlobalSens,
		"spent":       res.Spent,
		"total_spent": res.TotalSpent,
	}
	if res.HasBudget {
		out["remaining"] = res.Remaining
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) handleUnregister(w http.ResponseWriter, r *http.Request) {
	if !a.gateWrite(w) {
		return
	}
	srv, ok := a.backend(w)
	if !ok {
		return
	}
	if err := srv.Unregister(r.PathValue("id")); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

type updateJSON struct {
	Op  string   `json:"op"` // "+" or "-"
	Rel string   `json:"rel"`
	Row []string `json:"row"`
}

type updatesRequest struct {
	Updates []updateJSON `json:"updates"`
	// Wait blocks the response until the owning shards' watermarks cover
	// the appended range; WaitEpoch until the published consistent cut
	// does (read-your-writes for subsequent view reads).
	Wait      bool `json:"wait"`
	WaitEpoch bool `json:"wait_epoch"`
}

func (a *API) handleUpdates(w http.ResponseWriter, r *http.Request) {
	ingressStart := time.Now()
	if !a.gateWrite(w) {
		return
	}
	srv, ok := a.backend(w)
	if !ok {
		return
	}
	var (
		ups             []relation.Update
		wait, waitEpoch bool
	)
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
		// The updates.stream format, for curl --data-binary @updates.stream
		// — same parser as the file loader, encoding through the codec.
		var err error
		if ups, err = csvio.ParseUpdates("request body", r.Body, a.codec.Encode); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	} else {
		var req updatesRequest
		if err := decodeStrict(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		wait, waitEpoch = req.Wait, req.WaitEpoch
		ups = make([]relation.Update, 0, len(req.Updates))
		for i, uj := range req.Updates {
			up := relation.Update{Rel: uj.Rel}
			switch uj.Op {
			case "+":
				up.Insert = true
			case "-":
				up.Insert = false
			default:
				writeErr(w, http.StatusBadRequest, fmt.Errorf("update %d: bad op %q (want + or -)", i, uj.Op))
				return
			}
			for j, f := range uj.Row {
				v, err := a.codec.Encode(f)
				if err != nil {
					writeErr(w, http.StatusBadRequest, fmt.Errorf("update %d, value %d: %w", i, j, err))
					return
				}
				up.Row = append(up.Row, v)
			}
			ups = append(ups, up)
		}
	}
	// Resolve the wait directive before appending, so an invalid request is
	// refused without having entered the log. Precedence (docs/SERVING.md
	// "Waiting on writes"): the query string wins over the body, and
	// directives that contradict each other — wait and wait_epoch both set
	// in the body, or a query string naming a different wait than the body
	// — are a 400 rather than a silent upgrade or downgrade.
	const (
		waitNone   = ""
		waitShards = "shards"
		waitEpoch_ = "epoch"
	)
	qKind := waitNone
	switch q := r.URL.Query().Get("wait"); q {
	case "":
	case "1":
		qKind = waitShards
	case "epoch":
		qKind = waitEpoch_
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad wait=%q (want 1 or epoch)", q))
		return
	}
	bodyKind := waitNone
	switch {
	case wait && waitEpoch:
		writeErr(w, http.StatusBadRequest, errors.New(`conflicting wait directives: body sets both "wait" and "wait_epoch"`))
		return
	case wait:
		bodyKind = waitShards
	case waitEpoch:
		bodyKind = waitEpoch_
	}
	if qKind != waitNone && bodyKind != waitNone && qKind != bodyKind {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("conflicting wait directives: query string requests %q, body requests %q", qKind, bodyKind))
		return
	}
	kind := qKind
	if kind == waitNone {
		kind = bodyKind
	}
	owners := srv.Owners(ups)
	// The request's trace starts at the HTTP edge: "ingress" covers decode
	// and routing up to the append; the server and its drain round add the
	// wal-append/fsync, shard-route, patch, publish, and drain stages and
	// finish the trace at publish.
	tr := a.recorder().Start("update")
	tr.StageAt("ingress", ingressStart, time.Since(ingressStart))
	from, to, err := srv.AppendTraced(ups, tr)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	switch kind {
	case waitEpoch_:
		// Full consistent-cut wait: a subsequent view read reflects these
		// updates. Blocks on every shard (a stalled one stalls the cut).
		// Bounded by the request context: a client that hangs up stops
		// waiting instead of parking a watermark waiter forever.
		if err := srv.WaitAppliedCtx(r.Context(), to); err != nil {
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
	case waitShards:
		// Owning-shard wait: the updates are folded into the session state
		// of the shards they route to. Never waits on an unrelated shard;
		// views advance at the next joined cut.
		if err := srv.WaitShardsCtx(r.Context(), owners, to); err != nil {
			writeErr(w, http.StatusServiceUnavailable, err)
			return
		}
	}
	out := map[string]any{
		"accepted": len(ups),
		"from":     from,
		"to":       to,
		"owners":   owners,
		"epoch":    srv.Epoch(),
	}
	if id := tr.ID(); id != 0 {
		out["trace"] = id.String()
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) handleEpoch(w http.ResponseWriter, r *http.Request) {
	srv, ok := a.backend(w)
	if !ok {
		return
	}
	st := srv.Stats()
	// Two distinct notions of progress, reported under distinct names:
	// "epoch" is the PUBLISHED consistent cut — what every view read
	// reflects — while "joined" is the minimum per-shard watermark. The
	// per-shard "watermarks" are the authoritative frontier: in async mode
	// each shard advances its own entry independently and the epoch chases
	// their join; in coordinated mode every shard may have folded a round
	// while the coordinator is still merging views. Either way published ≤
	// joined always, and equality holds at rest. Nothing readable through
	// /queries reflects a cut past "joined"
	// (TestServeEpochPublishedNeverAheadOfJoined pins the invariant under a
	// stalled shard).
	var joined int64
	for i, wm := range st.Watermarks {
		if i == 0 || wm < joined {
			joined = wm
		}
	}
	out := map[string]any{
		"epoch":      st.Epoch,
		"joined":     joined,
		"shards":     st.Shards,
		"watermarks": st.Watermarks,
		"async":      st.Async,
		"appended":   st.Appended,
		"pending":    st.Appended - st.Epoch,
		"skipped":    st.Skipped,
		"queries":    st.Queries,
	}
	if st.WAL {
		out["wal"] = true
		out["durable_epoch"] = st.DurableEpoch
	}
	writeJSON(w, http.StatusOK, out)
}

// viewJSON renders a published view, decoding witness tuples through the
// codec.
func (a *API) viewJSON(id string, v *View, perRelation bool) map[string]any {
	out := map[string]any{
		"id":             id,
		"epoch":          v.Epoch,
		"count":          v.Count,
		"ls":             v.LS.LS,
		"doubly_acyclic": v.LS.DoublyAcyclic,
		"max_degree":     v.LS.MaxDegree,
	}
	if v.LS.Best != nil {
		out["best"] = a.tupleJSON(v.LS.Best)
	}
	if perRelation {
		per := make(map[string]any, len(v.LS.PerRelation))
		for rel, tr := range v.LS.PerRelation {
			per[rel] = a.tupleJSON(tr)
		}
		out["per_relation"] = per
	}
	return out
}

func (a *API) tupleJSON(tr *core.TupleResult) map[string]any {
	vals := make([]string, len(tr.Vars))
	for i := range tr.Vars {
		if tr.Values == nil {
			vals[i] = "*"
		} else if tr.Wildcard[i] {
			vals[i] = "*"
		} else {
			vals[i] = a.codec.Decode(tr.Values[i])
		}
	}
	return map[string]any{
		"relation":    tr.Relation,
		"vars":        tr.Vars,
		"values":      vals,
		"sensitivity": tr.Sensitivity,
		"in_database": tr.InDatabase,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
