package serve

import (
	"errors"
	"testing"

	"tsens/internal/mechanism"
	"tsens/internal/serve/faultfs"
	"tsens/internal/workload"
)

// TestServeAppendWALFaultNotAcknowledged drives the durability claim through
// the server, not just the WAL: an Append whose fsync fails surfaces the
// error and does NOT advance the acknowledged LSN, subsequent writes keep
// failing (the WAL is sticky), and after a simulated machine crash the
// reopened server carries exactly the pre-fault state.
func TestServeAppendWALFaultNotAcknowledged(t *testing.T) {
	db := testDB(t, 12, 4, 3, "R1", "R2", "R3")
	fs := faultfs.New(nil)
	dir := t.TempDir()
	// CheckpointEvery < 0: checkpoints only at boot, so the armed fault is
	// consumed by the Append under test, not a background checkpoint.
	opts := Options{Parallelism: 2, BatchSize: 4, WALDir: dir, WALFS: fs, CheckpointEvery: -1}
	srv, err := New(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := srv.Register(QueryConfig{
		ID:      "pq",
		Query:   pathQuery(t),
		Private: "R2",
		Release: mechanism.TSensDPConfig{Epsilon: 1, Bound: 64},
		Budget:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.UpdateStream(db, 24, 0.4, 7)
	_, to, err := srv.Append(stream[:16])
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.WaitApplied(to); err != nil {
		t.Fatal(err)
	}
	before, err := srv.View(id)
	if err != nil {
		t.Fatal(err)
	}

	fs.FailNthSync(1)
	if _, _, err := srv.Append(stream[16:20]); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("append with failing fsync: %v, want ErrInjected", err)
	}
	if got := srv.Stats().Appended; got != to {
		t.Fatalf("failed append advanced the acknowledged LSN to %d, want %d", got, to)
	}
	fs.Disarm()
	if _, _, err := srv.Append(stream[20:]); err == nil {
		t.Fatal("append after a WAL fault succeeded; the sticky WAL must keep refusing")
	}

	// The machine dies: unsynced bytes vanish, the process state is gone.
	srv.CloseNow()
	if err := fs.CrashAndRestore(); err != nil {
		t.Fatal(err)
	}
	re, err := New(nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Stats()
	if st.Appended != to || st.Epoch != to {
		t.Fatalf("recovered to appended=%d epoch=%d, want %d (the refused batch must be absent)",
			st.Appended, st.Epoch, to)
	}
	after, err := re.View(id)
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch != before.Epoch || after.Count != before.Count || after.LS.LS != before.LS.LS {
		t.Fatalf("recovered view (epoch %d, %d, %d), want (%d, %d, %d)",
			after.Epoch, after.Count, after.LS.LS, before.Epoch, before.Count, before.LS.LS)
	}
	// And the reopened server accepts writes again.
	if _, to2, err := re.Append(stream[16:20]); err != nil {
		t.Fatal(err)
	} else if err := re.WaitApplied(to2); err != nil {
		t.Fatal(err)
	}
}
