package serve

// Metrics of the serving layer. Every instrument lives in one obs.Registry
// (Options.Metrics, or a private one) exposed at GET /metrics in Prometheus
// text and GET /debug/vars as JSON; docs/OBSERVABILITY.md is the catalog.
//
// Progress counters that recovery re-positions (epoch, appended, skipped)
// are gauges SET from the server's authoritative atomics, never
// incremented — so a registry shared across a follower's passive server
// and its promoted successor (the serve command reuses one process-level
// registry) reads correctly at every instant. Work counters (rounds,
// journaled records, releases) and latency histograms are cumulative
// per-process, which is exactly what a scraper wants across a promotion.

import (
	"strconv"

	"tsens/internal/obs"
)

// serverMetrics bundles the serve-layer instruments.
type serverMetrics struct {
	reg *obs.Registry

	epoch    *obs.Gauge // last published consistent cut
	appended *obs.Gauge // acknowledged log LSN
	skipped  *obs.Gauge // refused deletes of absent tuples
	queries  *obs.Gauge // registered queries

	rounds       *obs.Counter      // drain rounds completed
	drainRound   *obs.Histogram    // whole-round latency (fold+barrier+publish)
	drainBatch   *obs.Histogram    // entries per round
	publishView  *obs.Histogram    // merge+publish portion of a round
	shardPatch   *obs.HistogramVec // per-shard patch latency, label shard
	shardEpoch   *obs.GaugeVec     // per-shard watermark (folded LSN), label shard
	ringDepth    *obs.GaugeVec     // deepest unit version ring per shard, label shard
	registerSecs *obs.Histogram    // Register end to end
	viewReads    *obs.Counter

	releases *obs.CounterVec // label fresh ("true"/"false")

	// acks counts acknowledged state-changing operations by kind, bumped at
	// the exact point the operation's WAL record (if any) was journaled —
	// the left side of the acked==journaled identity difftest asserts.
	acks       *obs.CounterVec // label kind
	walRecords *obs.CounterVec // journaled WAL records by kind

	epsBudget    *obs.GaugeVec // per-query ε budget (0 = unlimited)
	epsSpent     *obs.GaugeVec // per-query ε spent, == ledger total
	epsRemaining *obs.GaugeVec // per-query ε remaining (budgeted queries)

	planNodes  *obs.Gauge // interned join-tree nodes across all plan stores
	planShared *obs.Gauge // interned nodes with more than one subscriber
	planRefs   *obs.Gauge // total node subscriptions; refs/nodes = mean fan-out
	planSubs   *obs.Gauge // sessions attached to a plan store
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reg:      reg,
		epoch:    reg.Gauge("tsens_serve_epoch", "Last published consistent cut (log entries reflected in every view)."),
		appended: reg.Gauge("tsens_serve_appended", "Acknowledged update-log LSN; leads epoch by the pending backlog."),
		skipped:  reg.Gauge("tsens_serve_skipped", "Log entries refused at apply time (deletes of absent tuples)."),
		queries:  reg.Gauge("tsens_serve_queries", "Registered queries."),

		rounds: reg.Counter("tsens_serve_drain_rounds_total", "Coordinator drain rounds completed."),
		drainRound: reg.Histogram("tsens_serve_drain_round_seconds",
			"Drain-round latency: fold into master, shard barrier, merge and publish.", nil),
		drainBatch: reg.Histogram("tsens_serve_drain_batch_entries",
			"Log entries folded per drain round.", obs.SizeBuckets),
		publishView: reg.Histogram("tsens_serve_publish_seconds",
			"Merge-and-publish portion of a drain round.", nil),
		shardPatch: reg.HistogramVec("tsens_serve_shard_patch_seconds",
			"Per-shard session patch latency within a round.", nil, "shard"),
		shardEpoch: reg.GaugeVec("tsens_shard_epoch",
			"Per-shard watermark: the LSN through which the shard has folded its routed entries.", "shard"),
		ringDepth: reg.GaugeVec("tsens_serve_ring_depth",
			"Deepest unit version ring owned by the shard after its last round (async mode).", "shard"),
		registerSecs: reg.Histogram("tsens_serve_register_seconds",
			"Register end to end: snapshot, solve, catch-up, install.", nil),
		viewReads: reg.Counter("tsens_serve_view_reads_total", "View lookups answered from published epochs."),

		releases: reg.CounterVec("tsens_serve_releases_total",
			"Noisy releases served, by freshness (fresh spends ε, replay does not).", "fresh"),

		acks: reg.CounterVec("tsens_serve_acks_total",
			"Acknowledged state-changing operations by kind.", "kind"),
		walRecords: reg.CounterVec("tsens_wal_records_total",
			"WAL records journaled by kind; equals tsens_serve_acks_total per kind on an active durable server.", "kind"),

		epsBudget:    reg.GaugeVec("tsens_epsilon_budget", "Per-query ε budget (0 means unlimited).", "query"),
		epsSpent:     reg.GaugeVec("tsens_epsilon_spent", "Per-query ε spent; equals the ledger's exported total.", "query"),
		epsRemaining: reg.GaugeVec("tsens_epsilon_remaining", "Per-query ε remaining (budgeted queries only).", "query"),

		planNodes: reg.Gauge("tsens_plan_nodes_total",
			"Interned join-tree nodes across every shared plan store."),
		planShared: reg.Gauge("tsens_plan_nodes_shared",
			"Interned join-tree nodes maintained for more than one query."),
		planRefs: reg.Gauge("tsens_plan_node_refs_total",
			"Total node subscriptions; divided by tsens_plan_nodes_total gives the mean fan-out."),
		planSubs: reg.Gauge("tsens_plan_subscribers",
			"Sessions currently attached to a shared plan store."),
	}
}

// recKindName maps WAL record kinds to their metric label.
func recKindName(kind byte) string {
	switch kind {
	case recUpdates:
		return "updates"
	case recRegister:
		return "register"
	case recUnregister:
		return "unregister"
	case recRelease:
		return "release"
	}
	return "unknown"
}

// Metrics returns the server's metrics registry (Options.Metrics, or the
// private one the server created). Never nil.
func (s *Server) Metrics() *obs.Registry { return s.m.reg }

// Traces returns the server's trace recorder (Options.Traces, or the
// server-created default).
func (s *Server) Traces() *obs.TraceRecorder { return s.traces }

// ackMetric counts one acknowledged client operation. Recovery replay and
// replicated apply run the same Register/Append/Release code paths but
// acknowledge nothing to a client — their durableLog is not (or not yet)
// appending — so they are excluded. That exclusion is what keeps
// tsens_serve_acks_total == tsens_wal_records_total per kind on a durable
// server: both sides count only this instance's acknowledged operations.
func (s *Server) ackMetric(kind string) {
	if d := s.wal; d == nil || d.log == nil || d.active.Load() {
		s.m.acks.With(kind).Inc()
	}
}

// budgetMetrics refreshes a query's ε gauges from its ledger. Callers that
// race a concurrent Spend merely publish a momentarily stale value; the
// next release or checkpoint refreshes it.
func (s *Server) budgetMetrics(sq *servedQuery) {
	if sq.ledger == nil {
		return
	}
	s.m.epsBudget.With(sq.id).Set(sq.ledger.Budget())
	s.m.epsSpent.With(sq.id).Set(sq.ledger.Spent())
	if rem, ok := sq.ledger.Remaining(); ok {
		s.m.epsRemaining.With(sq.id).Set(rem)
	}
}

// dropQueryMetrics removes a query's labeled series at Unregister.
func (s *Server) dropQueryMetrics(id string) {
	s.m.epsBudget.Delete(id)
	s.m.epsSpent.Delete(id)
	s.m.epsRemaining.Delete(id)
}

func shardLabel(i int) string { return strconv.Itoa(i) }
