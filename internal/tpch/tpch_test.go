package tpch

import (
	"testing"

	"tsens/internal/relation"
)

func TestSizesAtScaleOne(t *testing.T) {
	s := Config{Scale: 1}.Sizes()
	want := map[string]int{
		"REGION": 5, "NATION": 25, "SUPPLIER": 10000, "CUSTOMER": 150000,
		"PART": 200000, "PARTSUPP": 800000, "ORDERS": 1500000, "LINEITEM": 6000000,
	}
	for k, v := range want {
		if s[k] != v {
			t.Errorf("%s=%d, want %d", k, s[k], v)
		}
	}
}

func TestSizesSmallScaleFloors(t *testing.T) {
	s := Config{Scale: 0.00001}.Sizes()
	if s["REGION"] != 5 || s["NATION"] != 25 {
		t.Fatalf("fixed tables scaled: %v", s)
	}
	for _, k := range []string{"CUSTOMER", "ORDERS", "LINEITEM"} {
		if s[k] < 1 {
			t.Fatalf("%s=%d, want ≥1", k, s[k])
		}
	}
}

func TestGenerateDeterministicAndSized(t *testing.T) {
	cfg := Config{Scale: 0.001, Seed: 7}
	a := Generate(cfg)
	b := Generate(cfg)
	for _, name := range a.Names() {
		ra, rb := a.Relation(name), b.Relation(name)
		if len(ra.Rows) != len(rb.Rows) {
			t.Fatalf("%s nondeterministic size", name)
		}
		for i := range ra.Rows {
			if !ra.Rows[i].Equal(rb.Rows[i]) {
				t.Fatalf("%s row %d differs", name, i)
			}
		}
	}
	sizes := cfg.Sizes()
	for name, n := range sizes {
		if got := len(a.Relation(name).Rows); got != n {
			t.Fatalf("%s has %d rows, want %d", name, got, n)
		}
	}
}

func TestReferentialIntegrity(t *testing.T) {
	db := Generate(Config{Scale: 0.001, Seed: 3})
	inDomain := func(rel, attr string, lo, hi int64) {
		r := db.Relation(rel)
		i := r.AttrIndex(attr)
		for _, row := range r.Rows {
			if row[i] < lo || row[i] >= hi {
				t.Fatalf("%s.%s value %d outside [%d,%d)", rel, attr, row[i], lo, hi)
			}
		}
	}
	inDomain("NATION", "RK", 0, 5)
	inDomain("CUSTOMER", "NK", 0, 25)
	inDomain("SUPPLIER", "NK", 0, 25)
	nCust := int64(len(db.Relation("CUSTOMER").Rows))
	inDomain("ORDERS", "CK", 0, nCust)
	nOrders := int64(len(db.Relation("ORDERS").Rows))
	inDomain("LINEITEM", "OK", 0, nOrders)

	// Every lineitem (SK,PK) must be an existing partsupp pair.
	ps := db.Relation("PARTSUPP")
	pairs := make(map[[2]int64]bool, len(ps.Rows))
	for _, row := range ps.Rows {
		pairs[[2]int64{row[0], row[1]}] = true
	}
	li := db.Relation("LINEITEM")
	for _, row := range li.Rows {
		if !pairs[[2]int64{row[1], row[2]}] {
			t.Fatalf("lineitem (SK=%d,PK=%d) not in partsupp", row[1], row[2])
		}
	}
}

func TestSkewProducesHeavyKeys(t *testing.T) {
	skewed := Generate(Config{Scale: 0.01, Seed: 5, Skew: 1.5})
	uniform := Generate(Config{Scale: 0.01, Seed: 5})
	mf := func(db *relation.Database, rel string, col int) int64 {
		counts := map[int64]int64{}
		var max int64
		for _, row := range db.Relation(rel).Rows {
			counts[row[col]]++
			if counts[row[col]] > max {
				max = counts[row[col]]
			}
		}
		return max
	}
	ms, mu := mf(skewed, "ORDERS", 0), mf(uniform, "ORDERS", 0)
	if ms <= mu {
		t.Fatalf("skewed max frequency %d not above uniform %d", ms, mu)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := Generate(Config{Scale: 0.001, Seed: 1})
	b := Generate(Config{Scale: 0.001, Seed: 2})
	same := true
	ra, rb := a.Relation("ORDERS"), b.Relation("ORDERS")
	for i := range ra.Rows {
		if !ra.Rows[i].Equal(rb.Rows[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical ORDERS")
	}
}
