// Package tpch generates synthetic TPC-H-like databases, substituting for
// the dbgen tool the paper uses (Section 7.1). Only the join-key columns
// are generated, because every query in the workload joins exclusively on
// keys — local sensitivity depends only on join multiplicities.
//
// Row counts at scale 1 follow the official TPC-H specification: Region 5,
// Nation 25, Supplier 1e4, Customer 1.5e5, Part 2e5, Partsupp 8e5, Orders
// 1.5e6, Lineitem 6e6; other scales multiply linearly (minimum one row).
// (The size list printed in the paper's Section 7.1 permutes some of these
// — e.g. Customer 1e4, Supplier 2e5 — which contradicts both dbgen and the
// paper's own learned thresholds in Table 2: official ratios give ~10
// orders per customer and ~4 lineitems per order, consistent with the
// paper's q1 global sensitivity of 119 under bound 100.) Foreign keys are
// drawn uniformly like dbgen's; set Skew > 1 for a Zipf-distributed
// variant stressing the truncation mechanisms.
package tpch

import (
	"math/rand"

	"tsens/internal/relation"
)

// Config parameterizes generation. Foreign keys are uniform (as in dbgen)
// unless Skew > 1 selects a Zipf distribution with that exponent.
type Config struct {
	Scale float64
	Seed  int64
	Skew  float64 // Zipf exponent for foreign keys; ≤ 1 means uniform
}

// Sizes reports the row counts at the configured scale, in the relation
// order Region, Nation, Customer, Orders, Supplier, Part, Partsupp,
// Lineitem.
func (c Config) Sizes() map[string]int {
	base := map[string]float64{
		"REGION":   5,
		"NATION":   25,
		"SUPPLIER": 1e4,
		"CUSTOMER": 1.5e5,
		"PART":     2e5,
		"PARTSUPP": 8e5,
		"ORDERS":   1.5e6,
		"LINEITEM": 6e6,
	}
	out := make(map[string]int, len(base))
	for k, v := range base {
		n := int(v * c.Scale)
		switch k {
		case "REGION":
			n = 5 // fixed like real TPC-H
		case "NATION":
			n = 25
		default:
			if n < 1 {
				n = 1
			}
		}
		out[k] = n
	}
	return out
}

// fkPicker draws foreign keys from [0, n) with optional Zipf skew.
type fkPicker struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	n    int64
}

func newFKPicker(rng *rand.Rand, n int, cfg Config) *fkPicker {
	p := &fkPicker{rng: rng, n: int64(n)}
	if cfg.Skew > 1 && n > 1 {
		p.zipf = rand.NewZipf(rng, cfg.Skew, 1, uint64(n-1))
	}
	return p
}

func (p *fkPicker) pick() int64 {
	if p.zipf == nil {
		return p.rng.Int63n(p.n)
	}
	return int64(p.zipf.Uint64())
}

// Generate builds the eight-relation database. Column naming follows the
// paper's schema: RK, NK, CK, OK, SK, PK.
func Generate(cfg Config) *relation.Database {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := cfg.Sizes()

	region := make([]relation.Tuple, sizes["REGION"])
	for i := range region {
		region[i] = relation.Tuple{int64(i)}
	}
	nation := make([]relation.Tuple, sizes["NATION"])
	for i := range nation {
		nation[i] = relation.Tuple{int64(i % sizes["REGION"]), int64(i)}
	}

	nCust := sizes["CUSTOMER"]
	custNK := newFKPicker(rng, sizes["NATION"], cfg)
	customer := make([]relation.Tuple, nCust)
	for i := range customer {
		customer[i] = relation.Tuple{custNK.pick(), int64(i)}
	}

	nOrders := sizes["ORDERS"]
	orderCK := newFKPicker(rng, nCust, cfg)
	orders := make([]relation.Tuple, nOrders)
	for i := range orders {
		orders[i] = relation.Tuple{orderCK.pick(), int64(i)}
	}

	nSupp := sizes["SUPPLIER"]
	suppNK := newFKPicker(rng, sizes["NATION"], cfg)
	supplier := make([]relation.Tuple, nSupp)
	for i := range supplier {
		supplier[i] = relation.Tuple{suppNK.pick(), int64(i)}
	}

	nPart := sizes["PART"]
	part := make([]relation.Tuple, nPart)
	for i := range part {
		part[i] = relation.Tuple{int64(i)}
	}

	nPS := sizes["PARTSUPP"]
	psSK := newFKPicker(rng, nSupp, cfg)
	psPK := newFKPicker(rng, nPart, cfg)
	partsupp := make([]relation.Tuple, nPS)
	for i := range partsupp {
		partsupp[i] = relation.Tuple{psSK.pick(), psPK.pick()}
	}

	// Lineitems reference an order and an existing partsupp pair so the
	// FK joins are non-empty, like dbgen's referential integrity.
	nLine := sizes["LINEITEM"]
	lineOK := newFKPicker(rng, nOrders, cfg)
	linePS := newFKPicker(rng, nPS, cfg)
	lineitem := make([]relation.Tuple, nLine)
	for i := range lineitem {
		ps := partsupp[linePS.pick()]
		lineitem[i] = relation.Tuple{lineOK.pick(), ps[0], ps[1]}
	}

	return relation.MustNewDatabase(
		relation.MustNew("REGION", []string{"RK"}, region),
		relation.MustNew("NATION", []string{"RK", "NK"}, nation),
		relation.MustNew("CUSTOMER", []string{"NK", "CK"}, customer),
		relation.MustNew("ORDERS", []string{"CK", "OK"}, orders),
		relation.MustNew("SUPPLIER", []string{"NK", "SK"}, supplier),
		relation.MustNew("PART", []string{"PK"}, part),
		relation.MustNew("PARTSUPP", []string{"SK", "PK"}, partsupp),
		relation.MustNew("LINEITEM", []string{"OK", "SK", "PK"}, lineitem),
	)
}
