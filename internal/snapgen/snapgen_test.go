package snapgen

import (
	"testing"
)

func TestDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Nodes != 225 || c.Edges != 3192 || c.Circles != 567 {
		t.Fatalf("defaults=%+v", c)
	}
}

func small() Config { return Config{Nodes: 40, Edges: 120, Circles: 30, Seed: 11} }

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(small())
	b := Generate(small())
	for _, name := range a.DB.Names() {
		ra, rb := a.DB.Relation(name), b.DB.Relation(name)
		if len(ra.Rows) != len(rb.Rows) {
			t.Fatalf("%s nondeterministic size: %d vs %d", name, len(ra.Rows), len(rb.Rows))
		}
		for i := range ra.Rows {
			if !ra.Rows[i].Equal(rb.Rows[i]) {
				t.Fatalf("%s row %d differs", name, i)
			}
		}
	}
}

func TestEdgeTablesBidirected(t *testing.T) {
	net := Generate(small())
	for _, name := range []string{"R1", "R2", "R3", "R4"} {
		r := net.DB.Relation(name)
		set := make(map[[2]int64]int)
		for _, row := range r.Rows {
			set[[2]int64{row[0], row[1]}]++
		}
		for e, c := range set {
			if set[[2]int64{e[1], e[0]}] != c {
				t.Fatalf("%s: edge %v occurs %d times but reverse occurs %d",
					name, e, c, set[[2]int64{e[1], e[0]}])
			}
		}
	}
}

func TestNoSelfLoops(t *testing.T) {
	net := Generate(small())
	for _, name := range []string{"R1", "R2", "R3", "R4"} {
		for _, row := range net.DB.Relation(name).Rows {
			if row[0] == row[1] {
				t.Fatalf("%s contains self-loop %v", name, row)
			}
		}
	}
}

func TestTriangleTableConsistent(t *testing.T) {
	net := Generate(small())
	// Every RTRI tuple must satisfy R4(x,y), R4(y,z), R4(z,x) over the
	// distinct edges of R4.
	edges := make(map[[2]int64]bool)
	for _, row := range net.DB.Relation("R4").Rows {
		edges[[2]int64{row[0], row[1]}] = true
	}
	tri := net.DB.Relation("RTRI")
	for _, row := range tri.Rows {
		x, y, z := row[0], row[1], row[2]
		if !edges[[2]int64{x, y}] || !edges[[2]int64{y, z}] || !edges[[2]int64{z, x}] {
			t.Fatalf("triangle %v not supported by R4 edges", row)
		}
	}
	// Closure: triangles appear with all rotations (the rule is symmetric
	// under rotation since R4 is bidirected and the rule cycles x→y→z→x).
	have := make(map[[3]int64]bool, len(tri.Rows))
	for _, row := range tri.Rows {
		have[[3]int64{row[0], row[1], row[2]}] = true
	}
	for k := range have {
		if !have[[3]int64{k[1], k[2], k[0]}] {
			t.Fatalf("rotation of %v missing", k)
		}
	}
}

func TestEdgeCountMatchesConfig(t *testing.T) {
	net := Generate(small())
	if len(net.EdgeList) != 120 {
		t.Fatalf("edges=%d, want 120", len(net.EdgeList))
	}
	for _, e := range net.EdgeList {
		if e[0] >= e[1] {
			t.Fatalf("edge list not normalized: %v", e)
		}
		if e[0] < 0 || e[1] >= 40 {
			t.Fatalf("edge endpoint out of range: %v", e)
		}
	}
}

func TestCirclePartitionNonEmptyTables(t *testing.T) {
	net := Generate(small())
	// With skewed circles the largest tables land in R1 first; all four
	// tables should normally receive some edges at this size.
	for _, name := range []string{"R1", "R2", "R3", "R4"} {
		if len(net.DB.Relation(name).Rows) == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}
