// Package snapgen generates synthetic ego-networks substituting for the
// SNAP Facebook dataset the paper uses (Section 7.1, ego-network of user
// 348: 225 nodes, 6384 directed edges, 567 circles). The generator follows
// the paper's construction exactly:
//
//   - a seeded social graph with community structure and preferential
//     attachment (so degree and circle-size distributions are skewed, the
//     property the sensitivity comparison depends on);
//   - per-circle edge tables E_i containing the edges with both endpoints
//     in circle i;
//   - circle tables sorted by size descending and distributed round-robin
//     into R1..R4 by rank mod 4;
//   - all edges bidirected;
//   - a triangle table RTRI(x,y,z) :- R4(x,y), R4(y,z), R4(z,x).
package snapgen

import (
	"math/rand"
	"sort"

	"tsens/internal/relation"
)

// Config sizes the synthetic ego-network. The zero values default to the
// paper's ego-network scale (225 nodes, 3192 undirected edges → 6384
// directed, 567 circles).
type Config struct {
	Nodes   int
	Edges   int // undirected edge count; each is stored in both directions
	Circles int
	Seed    int64
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 225
	}
	if c.Edges == 0 {
		c.Edges = 3192
	}
	if c.Circles == 0 {
		c.Circles = 567
	}
	return c
}

// EgoNet is the generated network with the four circle-partition edge
// tables and the triangle table, ready for the Facebook workload queries.
type EgoNet struct {
	DB *relation.Database
	// Undirected edge list (u < v), before circle partitioning.
	EdgeList [][2]int64
}

// Generate builds the ego-network database with relations R1..R4 (columns
// x,y) and RTRI (columns x,y,z).
func Generate(cfg Config) *EgoNet {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Circles first: skewed sizes (few large communities, many small
	// ones), members drawn uniformly. Real social circles are dense friend
	// groups, so most edges are then placed *within* circles; the overlap
	// of circles produces hub nodes with skewed degrees.
	circles := make([][]int64, cfg.Circles)
	for i := range circles {
		size := 2 + int(rng.ExpFloat64()*6)
		if size > cfg.Nodes {
			size = cfg.Nodes
		}
		memb := make(map[int64]bool, size)
		for len(memb) < size {
			memb[int64(rng.Intn(cfg.Nodes))] = true
		}
		for n := range memb {
			circles[i] = append(circles[i], n)
		}
		sort.Slice(circles[i], func(a, b int) bool { return circles[i][a] < circles[i][b] })
	}
	// Large circles attract proportionally more internal edges: weight by
	// size so communities become dense (high triangle counts, like the
	// SNAP ego-networks).
	var weighted []int
	for i, c := range circles {
		for j := 0; j < len(c); j++ {
			weighted = append(weighted, i)
		}
	}

	type edge struct{ u, v int64 }
	seen := make(map[edge]bool)
	var edges [][2]int64
	const withinCircleFrac = 0.9
	attempts := 0
	for len(edges) < cfg.Edges && attempts < cfg.Edges*200 {
		attempts++
		var u, v int64
		if len(weighted) > 0 && rng.Float64() < withinCircleFrac {
			c := circles[weighted[rng.Intn(len(weighted))]]
			if len(c) < 2 {
				continue
			}
			u = c[rng.Intn(len(c))]
			v = c[rng.Intn(len(c))]
		} else {
			u = int64(rng.Intn(cfg.Nodes))
			v = int64(rng.Intn(cfg.Nodes))
		}
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		e := edge{u, v}
		if seen[e] {
			continue
		}
		seen[e] = true
		edges = append(edges, [2]int64{u, v})
	}

	// Per-circle edge tables: edges with both endpoints inside the circle.
	circleEdges := make([][][2]int64, cfg.Circles)
	for i, memb := range circles {
		in := make(map[int64]bool, len(memb))
		for _, n := range memb {
			in[n] = true
		}
		for _, e := range edges {
			if in[e[0]] && in[e[1]] {
				circleEdges[i] = append(circleEdges[i], e)
			}
		}
	}
	// Sort circles by edge-table size descending (stable on index for
	// determinism), then distribute into R1..R4 by rank mod 4.
	rank := make([]int, cfg.Circles)
	for i := range rank {
		rank[i] = i
	}
	sort.SliceStable(rank, func(a, b int) bool {
		return len(circleEdges[rank[a]]) > len(circleEdges[rank[b]])
	})
	tables := make([][]relation.Tuple, 4)
	for r, ci := range rank {
		t := r % 4
		for _, e := range circleEdges[ci] {
			tables[t] = append(tables[t], relation.Tuple{e[0], e[1]}, relation.Tuple{e[1], e[0]})
		}
	}

	// Triangle table over the distinct edges of R4:
	// RTRI(x,y,z) :- R4(x,y), R4(y,z), R4(z,x).
	adj := make(map[int64]map[int64]bool)
	addAdj := func(a, b int64) {
		if adj[a] == nil {
			adj[a] = make(map[int64]bool)
		}
		adj[a][b] = true
	}
	distinct := make(map[[2]int64]bool)
	for _, t := range tables[3] {
		e := [2]int64{t[0], t[1]}
		if !distinct[e] {
			distinct[e] = true
			addAdj(t[0], t[1])
		}
	}
	var tri []relation.Tuple
	for e := range distinct {
		x, y := e[0], e[1]
		for z := range adj[y] {
			if adj[z][x] {
				tri = append(tri, relation.Tuple{x, y, z})
			}
		}
	}
	sort.Slice(tri, func(a, b int) bool {
		for k := 0; k < 3; k++ {
			if tri[a][k] != tri[b][k] {
				return tri[a][k] < tri[b][k]
			}
		}
		return false
	})

	db := relation.MustNewDatabase(
		relation.MustNew("R1", []string{"x", "y"}, tables[0]),
		relation.MustNew("R2", []string{"x", "y"}, tables[1]),
		relation.MustNew("R3", []string{"x", "y"}, tables[2]),
		relation.MustNew("R4", []string{"x", "y"}, tables[3]),
		relation.MustNew("RTRI", []string{"x", "y", "z"}, tri),
	)
	return &EgoNet{DB: db, EdgeList: edges}
}
