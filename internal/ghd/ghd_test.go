package ghd

import (
	"testing"

	"tsens/internal/query"
	"tsens/internal/relation"
)

func triangle() *query.Query {
	return query.MustNew("tri", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "A"}},
	}, nil)
}

func fourCycle() *query.Query {
	return query.MustNew("cyc", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
		{Relation: "R4", Vars: []string{"D", "A"}},
	}, nil)
}

func TestFromBagsValidation(t *testing.T) {
	q := triangle()
	// The paper's decomposition for q△ (Figure 5b): {R1,R2}, {R3}.
	d, err := FromBags(q, [][]int{{0, 1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() != 2 {
		t.Fatalf("Width=%d", d.Width())
	}
	// Missing atom.
	if _, err := FromBags(q, [][]int{{0, 1}}); err == nil {
		t.Fatal("partial partition accepted")
	}
	// Duplicate atom.
	if _, err := FromBags(q, [][]int{{0, 1}, {1, 2}}); err == nil {
		t.Fatal("overlapping bags accepted")
	}
	// Empty bag.
	if _, err := FromBags(q, [][]int{{0, 1, 2}, {}}); err == nil {
		t.Fatal("empty bag accepted")
	}
	// Out of range.
	if _, err := FromBags(q, [][]int{{0, 1, 5}}); err == nil {
		t.Fatal("out-of-range atom accepted")
	}
	// Singleton bags on a cyclic query: bag hypergraph is cyclic.
	if _, err := FromBags(q, [][]int{{0}, {1}, {2}}); err == nil {
		t.Fatal("cyclic bag hypergraph accepted")
	}
}

func TestTrivial(t *testing.T) {
	acyc := query.MustNew("p", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
	}, nil)
	if _, err := Trivial(acyc); err != nil {
		t.Fatalf("trivial decomposition of acyclic query failed: %v", err)
	}
	if _, err := Trivial(triangle()); err == nil {
		t.Fatal("trivial decomposition of cyclic query accepted")
	}
}

func TestBagVarsAndAtoms(t *testing.T) {
	q := triangle()
	d := MustFromBags(q, [][]int{{0, 1}, {2}})
	vars := d.BagVars(q)
	if len(vars) != 2 || len(vars[0]) != 3 || len(vars[1]) != 2 {
		t.Fatalf("BagVars=%v", vars)
	}
	atoms := d.BagAtoms(q)
	if len(atoms) != 2 || atoms[0].Relation == atoms[1].Relation {
		t.Fatalf("BagAtoms=%v", atoms)
	}
}

func TestMaterializeTriangleBag(t *testing.T) {
	// R1={ (1,2) }, R2={ (2,3) } in bag; join should give (1,2,3).
	r1 := &relation.Counted{Attrs: []string{"A", "B"}, Rows: []relation.Tuple{{1, 2}}, Cnt: []int64{2}}
	r2 := &relation.Counted{Attrs: []string{"B", "C"}, Rows: []relation.Tuple{{2, 3}}, Cnt: []int64{3}}
	m, err := Materialize([]*relation.Counted{r1, r2})
	if err != nil {
		t.Fatal(err)
	}
	if m.SumCnt() != 6 || len(m.Attrs) != 3 {
		t.Fatalf("Materialize=%v cnt=%v", m.Attrs, m.Cnt)
	}
	if _, err := Materialize(nil); err == nil {
		t.Fatal("empty member list accepted")
	}
}

func TestMaterializeCrossProductFallback(t *testing.T) {
	a := &relation.Counted{Attrs: []string{"A"}, Rows: []relation.Tuple{{1}}, Cnt: []int64{2}}
	b := &relation.Counted{Attrs: []string{"B"}, Rows: []relation.Tuple{{2}}, Cnt: []int64{5}}
	m, err := Materialize([]*relation.Counted{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.SumCnt() != 10 {
		t.Fatalf("cross product cnt=%d", m.SumCnt())
	}
}

func TestSearchTriangle(t *testing.T) {
	d, err := Search(triangle(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() != 2 {
		t.Fatalf("triangle minimal width=%d, want 2", d.Width())
	}
}

func TestSearchFourCycle(t *testing.T) {
	d, err := Search(fourCycle(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's decomposition {R1,R2}, {R3,R4} has width 2; search must
	// match that optimum.
	if d.Width() != 2 {
		t.Fatalf("4-cycle minimal width=%d, want 2", d.Width())
	}
}

func TestSearchAcyclicWidthOne(t *testing.T) {
	acyc := query.MustNew("p", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
	}, nil)
	d, err := Search(acyc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() != 1 {
		t.Fatalf("acyclic minimal width=%d, want 1", d.Width())
	}
}

func TestSearchBagSizeGuard(t *testing.T) {
	if _, err := Search(triangle(), 1); err == nil {
		t.Fatal("width-1 decomposition of a triangle should not exist")
	}
}
