// Package ghd implements the generalized-hypertree-decomposition extension
// of Section 5.4 ("General joins"): a cyclic conjunctive query is handled by
// assigning each relation to exactly one bag of a decomposition whose bag
// hypergraph is acyclic; each bag is materialized as the (possibly cyclic)
// join of its member relations and the acyclic machinery then runs over the
// bag tree. The time complexity becomes O(m^p · d · n^{p·d} · log n) where p
// is the maximum number of relations per bag.
//
// The decompositions for the paper's cyclic queries (q3, q△=q4, q◦) are
// given explicitly in internal/workload, following Figure 5; Search provides
// an exhaustive minimal-width search for small queries.
package ghd

import (
	"fmt"
	"math"
	"sort"

	"tsens/internal/query"
	"tsens/internal/relation"
)

// Decomposition assigns every atom of a query to exactly one bag. Bags are
// given as lists of atom indexes into the query's Atoms slice.
type Decomposition struct {
	Bags [][]int
}

// FromBags validates that bags form a partition of the query's atoms and
// that the bag hypergraph (one hyperedge per bag, spanning the union of its
// members' variables) is acyclic, so that a join tree over bags exists.
func FromBags(q *query.Query, bags [][]int) (*Decomposition, error) {
	seen := make([]bool, len(q.Atoms))
	for bi, bag := range bags {
		if len(bag) == 0 {
			return nil, fmt.Errorf("ghd: bag %d is empty", bi)
		}
		for _, ai := range bag {
			if ai < 0 || ai >= len(q.Atoms) {
				return nil, fmt.Errorf("ghd: bag %d references atom %d out of range", bi, ai)
			}
			if seen[ai] {
				return nil, fmt.Errorf("ghd: atom %d (%s) assigned to two bags", ai, q.Atoms[ai])
			}
			seen[ai] = true
		}
	}
	for ai, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("ghd: atom %d (%s) not assigned to any bag", ai, q.Atoms[ai])
		}
	}
	d := &Decomposition{Bags: bags}
	if !query.IsAcyclic(d.BagAtoms(q)) {
		return nil, fmt.Errorf("ghd: bag hypergraph is cyclic")
	}
	return d, nil
}

// MustFromBags is FromBags but panics on error; for static workload tables.
func MustFromBags(q *query.Query, bags [][]int) *Decomposition {
	d, err := FromBags(q, bags)
	if err != nil {
		panic(err)
	}
	return d
}

// Trivial returns the decomposition with one singleton bag per atom, valid
// exactly when the query is acyclic.
func Trivial(q *query.Query) (*Decomposition, error) {
	bags := make([][]int, len(q.Atoms))
	for i := range bags {
		bags[i] = []int{i}
	}
	return FromBags(q, bags)
}

// Width returns the maximum number of relations per bag (the parameter p).
func (d *Decomposition) Width() int {
	w := 0
	for _, b := range d.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w
}

// BagVars returns, per bag, the union of the member atoms' variables in
// first-occurrence order.
func (d *Decomposition) BagVars(q *query.Query) [][]string {
	out := make([][]string, len(d.Bags))
	for i, bag := range d.Bags {
		var vars []string
		for _, ai := range bag {
			vars = relation.Union(vars, q.Atoms[ai].Vars)
		}
		out[i] = vars
	}
	return out
}

// BagAtoms renders each bag as a pseudo-atom over its variable union, the
// input to GYO for building the bag join tree.
func (d *Decomposition) BagAtoms(q *query.Query) []query.Atom {
	vars := d.BagVars(q)
	out := make([]query.Atom, len(d.Bags))
	for i := range d.Bags {
		out[i] = query.Atom{Relation: fmt.Sprintf("bag%d", i), Vars: vars[i]}
	}
	return out
}

// Materialize joins the member relations of one bag into a single counted
// relation. Members are joined greedily, preferring connected operands
// (sharing variables with the accumulated result) so cross products happen
// only when unavoidable; among connected candidates the one with the fewest
// rows goes first, keeping intermediate results small. The pick is
// deterministic (ties break on position) and join order does not affect the
// result.
func Materialize(members []*relation.Counted) (*relation.Counted, error) {
	ordered, err := joinOrder(members)
	if err != nil {
		return nil, err
	}
	acc := ordered[0]
	for _, m := range ordered[1:] {
		if acc, err = relation.Join(acc, m); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// MaterializeGrouped is Materialize followed by GroupBy(attrs), with the
// final join fused into the group-by so the full-width bag join is never
// materialized. attrs must be drawn from the union of the members'
// attributes (for bags, typically a permutation of it).
func MaterializeGrouped(members []*relation.Counted, attrs []string) (*relation.Counted, error) {
	ordered, err := joinOrder(members)
	if err != nil {
		return nil, err
	}
	return relation.JoinGroupChain(ordered[0], ordered[1:], attrs)
}

// joinOrder fixes the greedy join order of a bag (see
// relation.GreedyJoinOrder), rejecting empty bags.
func joinOrder(members []*relation.Counted) ([]*relation.Counted, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("ghd: materialize with no members")
	}
	return relation.GreedyJoinOrder(members), nil
}

// Search exhaustively looks for a decomposition minimizing (width, number of
// bags) among partitions of the atoms with bag size at most maxBagSize. It
// is exponential in the number of atoms and guarded to small queries; the
// paper's workloads use hand-specified decompositions instead.
func Search(q *query.Query, maxBagSize int) (*Decomposition, error) {
	const maxAtoms = 10
	n := len(q.Atoms)
	if n > maxAtoms {
		return nil, fmt.Errorf("ghd: search limited to %d atoms, query has %d", maxAtoms, n)
	}
	if maxBagSize <= 0 {
		maxBagSize = n
	}
	var best *Decomposition
	bestKey := [2]int{math.MaxInt, math.MaxInt}
	var bags [][]int
	var recurse func(i int)
	recurse = func(i int) {
		if i == n {
			cand, err := FromBags(q, cloneBags(bags))
			if err != nil {
				return
			}
			key := [2]int{cand.Width(), len(cand.Bags)}
			if key[0] < bestKey[0] || (key[0] == bestKey[0] && key[1] < bestKey[1]) {
				best, bestKey = cand, key
			}
			return
		}
		for b := range bags {
			if len(bags[b]) >= maxBagSize {
				continue
			}
			bags[b] = append(bags[b], i)
			recurse(i + 1)
			bags[b] = bags[b][:len(bags[b])-1]
		}
		bags = append(bags, []int{i})
		recurse(i + 1)
		bags = bags[:len(bags)-1]
	}
	recurse(0)
	if best == nil {
		return nil, fmt.Errorf("ghd: no decomposition with bag size ≤ %d", maxBagSize)
	}
	// Normalize bag order for reproducibility.
	for _, b := range best.Bags {
		sort.Ints(b)
	}
	sort.Slice(best.Bags, func(x, y int) bool { return best.Bags[x][0] < best.Bags[y][0] })
	return best, nil
}

func cloneBags(b [][]int) [][]int {
	out := make([][]int, len(b))
	for i, x := range b {
		out[i] = append([]int(nil), x...)
	}
	return out
}
