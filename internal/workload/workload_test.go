package workload

import (
	"testing"

	"tsens/internal/core"
	"tsens/internal/elastic"
	"tsens/internal/query"
	"tsens/internal/yannakakis"
)

func TestSpecsWellFormed(t *testing.T) {
	for _, s := range All() {
		if s.Query == nil || s.Name == "" || s.PrimaryPrivate == "" || s.SensBound < 1 {
			t.Fatalf("spec %q incomplete: %+v", s.Name, s)
		}
		if len(s.JoinOrder) != len(s.Query.Atoms) {
			t.Fatalf("spec %s: join order has %d entries for %d atoms", s.Name, len(s.JoinOrder), len(s.Query.Atoms))
		}
		// The primary private relation must appear in the query.
		if _, ok := s.Query.Atom(s.PrimaryPrivate); !ok {
			t.Fatalf("spec %s: private relation %s not in query", s.Name, s.PrimaryPrivate)
		}
		// Path flags must be consistent.
		if _, isPath := query.PathOrder(s.Query.Atoms); isPath != s.IsPath {
			t.Fatalf("spec %s: IsPath=%v but PathOrder says %v", s.Name, s.IsPath, isPath)
		}
		// Cyclic queries must carry a decomposition.
		acyc := query.IsAcyclic(s.Query.Atoms)
		if !acyc && s.Decomp == nil {
			t.Fatalf("spec %s: cyclic without decomposition", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("q3") == nil || ByName("qstar") == nil {
		t.Fatal("ByName lookup failed")
	}
	if ByName("nope") != nil {
		t.Fatal("unknown name resolved")
	}
}

func TestTPCHSpecsRunEndToEnd(t *testing.T) {
	db := TPCHData(0.0005, 42)
	for _, s := range TPCH() {
		res, err := core.LocalSensitivity(s.Query, db, s.Options())
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if res.LS <= 0 {
			t.Fatalf("%s: LS=%d, expected positive on generated data", s.Name, res.LS)
		}
		// Elastic must upper-bound TSens (q3's skip list only removes a
		// relation whose sensitivity is ≤ 1).
		an, err := elastic.NewAnalyzer(s.Query, db)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := an.LocalSensitivity(s.JoinOrder)
		if err != nil {
			t.Fatal(err)
		}
		if bound < res.LS {
			t.Fatalf("%s: elastic %d < TSens %d", s.Name, bound, res.LS)
		}
	}
}

func TestQ1IsPathAndMatchesTreeAlgorithm(t *testing.T) {
	db := TPCHData(0.0005, 7)
	s := Q1()
	p, err := core.PathLocalSensitivity(s.Query, db)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.LocalSensitivity(s.Query, db, s.Options())
	if err != nil {
		t.Fatal(err)
	}
	if p.LS != a.LS || p.Count != a.Count {
		t.Fatalf("path LS=%d/%d tree LS=%d/%d", p.LS, p.Count, a.LS, a.Count)
	}
}

func TestQ3CountMatchesGHDEvaluation(t *testing.T) {
	db := TPCHData(0.0005, 3)
	s := Q3()
	res, err := core.LocalSensitivity(s.Query, db, s.Options())
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := yannakakis.CountGHD(s.Query, db, s.Decomp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != cnt {
		t.Fatalf("TSens Count=%d, Yannakakis GHD count=%d", res.Count, cnt)
	}
}

func TestFacebookSpecsRunEndToEnd(t *testing.T) {
	db := FacebookDataSized(40, 150, 40, 9)
	for _, s := range Facebook() {
		res, err := core.LocalSensitivity(s.Query, db, s.Options())
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		// Agreement with brute-force counting.
		cnt, err := yannakakis.BruteCount(s.Query, db)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != cnt {
			t.Fatalf("%s: Count=%d, brute=%d", s.Name, res.Count, cnt)
		}
		an, err := elastic.NewAnalyzer(s.Query, db)
		if err != nil {
			t.Fatal(err)
		}
		bound, err := an.LocalSensitivity(s.JoinOrder)
		if err != nil {
			t.Fatal(err)
		}
		if bound < res.LS {
			t.Fatalf("%s: elastic %d < TSens %d", s.Name, bound, res.LS)
		}
	}
}

func TestFacebookSpecsAgainstOracleTiny(t *testing.T) {
	// Tiny network so the naive oracle is feasible: full agreement check.
	db := FacebookDataSized(12, 25, 10, 5)
	for _, s := range Facebook() {
		res, err := core.LocalSensitivity(s.Query, db, s.Options())
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		naive, err := core.NaiveLocalSensitivity(s.Query, db, core.NaiveOptions{MaxCandidates: 2000000})
		if err != nil {
			t.Fatalf("%s: naive: %v", s.Name, err)
		}
		if res.LS != naive.LS {
			t.Fatalf("%s: TSens LS=%d naive LS=%d", s.Name, res.LS, naive.LS)
		}
	}
}
