package workload

import (
	"math/rand"

	"tsens/internal/relation"
)

// UpdateStream derives a deterministic, replayable insert/delete stream
// from a snapshot: n single-tuple updates against db's relations, weighted
// by relation size. Deletes (a deleteFrac share, while rows remain) remove
// a tuple currently present given the updates so far; inserts synthesize a
// row by recombining column values of existing rows, so join keys stay in
// the realistic active domain. The stream is valid to replay in order
// against the snapshot (every delete targets a live tuple).
func UpdateStream(db *relation.Database, n int, deleteFrac float64, seed int64) []relation.Update {
	rng := rand.New(rand.NewSource(seed))
	names := db.Names()
	live := make(map[string][]relation.Tuple, len(names))
	for _, name := range names {
		rows := db.Relation(name).Rows
		cp := make([]relation.Tuple, len(rows))
		for i, t := range rows {
			cp[i] = t.Clone()
		}
		live[name] = cp
	}
	pick := func() string {
		total := 0
		for _, name := range names {
			total += len(live[name]) + 1
		}
		k := rng.Intn(total)
		for _, name := range names {
			k -= len(live[name]) + 1
			if k < 0 {
				return name
			}
		}
		return names[len(names)-1]
	}
	out := make([]relation.Update, 0, n)
	for len(out) < n {
		name := pick()
		rows := live[name]
		if len(rows) > 0 && rng.Float64() < deleteFrac {
			i := rng.Intn(len(rows))
			row := rows[i].Clone()
			rows[i] = rows[len(rows)-1]
			live[name] = rows[:len(rows)-1]
			out = append(out, relation.Update{Rel: name, Row: row, Insert: false})
			continue
		}
		width := len(db.Relation(name).Attrs)
		row := make(relation.Tuple, width)
		if len(rows) > 0 {
			// Recombine: start from one existing row, then resample each
			// column from another random row with probability 1/2.
			base := rows[rng.Intn(len(rows))]
			copy(row, base)
			for j := 0; j < width; j++ {
				if rng.Intn(2) == 0 {
					row[j] = rows[rng.Intn(len(rows))][j]
				}
			}
		}
		live[name] = append(live[name], row.Clone())
		out = append(out, relation.Update{Rel: name, Row: row, Insert: true})
	}
	return out
}
