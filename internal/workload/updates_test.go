package workload

import (
	"testing"

	"tsens/internal/relation"
)

// TestUpdateStreamReplayable: every delete in a generated stream targets a
// tuple that is live at that point, streams are deterministic per seed, and
// the delete fraction lands near the request.
func TestUpdateStreamReplayable(t *testing.T) {
	db := FacebookDataSized(30, 150, 40, 3)
	stream := UpdateStream(db, 400, 0.4, 9)
	if len(stream) != 400 {
		t.Fatalf("stream length %d", len(stream))
	}
	live := make(map[string][]relation.Tuple)
	for _, name := range db.Names() {
		for _, row := range db.Relation(name).Rows {
			live[name] = append(live[name], row.Clone())
		}
	}
	deletes := 0
	for i, up := range stream {
		if len(up.Row) != len(db.Relation(up.Rel).Attrs) {
			t.Fatalf("op %d: arity mismatch for %s", i, up.Rel)
		}
		if up.Insert {
			live[up.Rel] = append(live[up.Rel], up.Row.Clone())
			continue
		}
		deletes++
		rows := live[up.Rel]
		found := -1
		for j, row := range rows {
			if row.Equal(up.Row) {
				found = j
				break
			}
		}
		if found < 0 {
			t.Fatalf("op %d: delete of absent tuple %v from %s", i, up.Row, up.Rel)
		}
		rows[found] = rows[len(rows)-1]
		live[up.Rel] = rows[:len(rows)-1]
	}
	if deletes < 100 || deletes > 220 {
		t.Fatalf("deletes = %d of 400, want near 40%%", deletes)
	}
	again := UpdateStream(db, 400, 0.4, 9)
	for i := range stream {
		if stream[i].Rel != again[i].Rel || stream[i].Insert != again[i].Insert || !stream[i].Row.Equal(again[i].Row) {
			t.Fatalf("stream not deterministic at op %d", i)
		}
	}
}
