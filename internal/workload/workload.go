// Package workload defines the seven queries of the paper's evaluation
// (Section 7.1, Figure 5) over the TPC-H-like and Facebook-like generators:
//
//	q1  — path join REGION–NATION–CUSTOMER–ORDERS–LINEITEM
//	q2  — acyclic star PARTSUPP ⋈ {SUPPLIER, PART, LINEITEM}
//	q3  — cyclic universal join of all eight TPC-H tables with the GHD
//	      {R,N,L}, {O,C}, {S,P}, {PS}
//	q4  — triangle q△(A,B,C) with the GHD {R1,R2}, {R3}
//	qw  — path R1–R2–R3–R4
//	q◦  — 4-cycle with the GHD {R1,R2}, {R3,R4}
//	q*  — star over the triangle table RTRI ⋈ {R1, R2, R3}
//
// Each Spec also carries the experiment configuration: the elastic join
// order (post-traversal of the join plan), the primary private relation and
// PrivSQL truncation policy, the skip list for FK–PK relations, and the
// tuple-sensitivity bound ℓ used by TSensDP (Section 7.3).
package workload

import (
	"tsens/internal/core"
	"tsens/internal/ghd"
	"tsens/internal/mechanism"
	"tsens/internal/query"
	"tsens/internal/relation"
	"tsens/internal/snapgen"
	"tsens/internal/tpch"
)

// Spec bundles one evaluation query with everything the experiments need.
type Spec struct {
	Name           string
	Query          *query.Query
	Decomp         *ghd.Decomposition // nil for acyclic queries
	JoinOrder      []string           // elastic left-deep plan
	Skip           []string           // relations skipped by TSens (tuple sensitivity ≤ 1)
	PrimaryPrivate string
	Policy         []mechanism.Truncation // PrivSQL truncation policy
	SensBound      int64                  // ℓ for TSensDP
	IsPath         bool                   // Algorithm 1 applies
}

// Options returns the core.Options for running TSens on this spec.
func (s *Spec) Options() core.Options {
	return core.Options{Decomposition: s.Decomp, SkipRelations: s.Skip}
}

// Q1 is the path query over REGION, NATION, CUSTOMER, ORDERS, LINEITEM.
// LINEITEM's SK and PK columns occur once and are extrapolated.
func Q1() *Spec {
	q := query.MustNew("q1", []query.Atom{
		{Relation: "REGION", Vars: []string{"RK"}},
		{Relation: "NATION", Vars: []string{"RK", "NK"}},
		{Relation: "CUSTOMER", Vars: []string{"NK", "CK"}},
		{Relation: "ORDERS", Vars: []string{"CK", "OK"}},
		{Relation: "LINEITEM", Vars: []string{"OK", "L_SK", "L_PK"}},
	}, nil)
	return &Spec{
		Name:           "q1",
		Query:          q,
		JoinOrder:      []string{"REGION", "NATION", "CUSTOMER", "ORDERS", "LINEITEM"},
		PrimaryPrivate: "CUSTOMER",
		Policy: []mechanism.Truncation{
			{Relation: "ORDERS", KeyVars: []string{"CK"}},
			{Relation: "LINEITEM", KeyVars: []string{"OK"}},
		},
		SensBound: 100,
		IsPath:    true,
	}
}

// Q2 is the acyclic query PS(SK,PK), S(SK), P(PK), L(SK,PK).
func Q2() *Spec {
	q := query.MustNew("q2", []query.Atom{
		{Relation: "PARTSUPP", Vars: []string{"SK", "PK"}},
		{Relation: "SUPPLIER", Vars: []string{"S_NK", "SK"}},
		{Relation: "PART", Vars: []string{"PK"}},
		{Relation: "LINEITEM", Vars: []string{"L_OK", "SK", "PK"}},
	}, nil)
	return &Spec{
		Name:           "q2",
		Query:          q,
		JoinOrder:      []string{"SUPPLIER", "PARTSUPP", "PART", "LINEITEM"},
		PrimaryPrivate: "SUPPLIER",
		Policy: []mechanism.Truncation{
			{Relation: "PARTSUPP", KeyVars: []string{"SK"}},
			{Relation: "LINEITEM", KeyVars: []string{"SK"}},
		},
		// The paper assumes ℓ=500 for its dataset; official TPC-H ratios
		// put the typical supplier sensitivity near 80·7.5 = 600, so the
		// bound is raised to keep it an upper bound (Section 6.2: ℓ only
		// affects accuracy, not privacy).
		SensBound: 2000,
	}
}

// Q3 is the cyclic universal join of all eight tables ("supplier and
// customer from the same nation") with the Figure 5a hypertree
// decomposition {R,N,L}, {O,C}, {S,P}, {PS}. LINEITEM is skipped: its
// tuple sensitivity is at most 1 through the FK–PK joins (Section 7.2).
func Q3() *Spec {
	q := query.MustNew("q3", []query.Atom{
		{Relation: "REGION", Vars: []string{"RK"}},
		{Relation: "NATION", Vars: []string{"RK", "NK"}},
		{Relation: "SUPPLIER", Vars: []string{"NK", "SK"}},
		{Relation: "PARTSUPP", Vars: []string{"SK", "PK"}},
		{Relation: "PART", Vars: []string{"PK"}},
		{Relation: "CUSTOMER", Vars: []string{"NK", "CK"}},
		{Relation: "ORDERS", Vars: []string{"CK", "OK"}},
		{Relation: "LINEITEM", Vars: []string{"OK", "SK", "PK"}},
	}, nil)
	d := ghd.MustFromBags(q, [][]int{{0, 1, 7}, {5, 6}, {2, 4}, {3}})
	return &Spec{
		Name:           "q3",
		Query:          q,
		Decomp:         d,
		JoinOrder:      []string{"REGION", "NATION", "CUSTOMER", "ORDERS", "LINEITEM", "SUPPLIER", "PARTSUPP", "PART"},
		Skip:           []string{"LINEITEM"},
		PrimaryPrivate: "CUSTOMER",
		Policy: []mechanism.Truncation{
			{Relation: "ORDERS", KeyVars: []string{"CK"}},
			{Relation: "LINEITEM", KeyVars: []string{"OK"}},
		},
		SensBound: 10,
	}
}

// QTri is the triangle query q4 = q△(A,B,C) with the GHD {R1,R2}, {R3}.
func QTri() *Spec {
	q := query.MustNew("q4", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "A"}},
	}, nil)
	return &Spec{
		Name:           "q4",
		Query:          q,
		Decomp:         ghd.MustFromBags(q, [][]int{{0, 1}, {2}}),
		JoinOrder:      []string{"R1", "R2", "R3"},
		PrimaryPrivate: "R2",
		SensBound:      70,
	}
}

// QW is the Facebook path query qw(A,B,C,D,E).
func QW() *Spec {
	q := query.MustNew("qw", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
		{Relation: "R4", Vars: []string{"D", "E"}},
	}, nil)
	return &Spec{
		Name:           "qw",
		Query:          q,
		JoinOrder:      []string{"R1", "R2", "R3", "R4"},
		PrimaryPrivate: "R2",
		SensBound:      25000,
		IsPath:         true,
	}
}

// QCycle is the 4-cycle query q◦(A,B,C,D) with the GHD {R1,R2}, {R3,R4}.
func QCycle() *Spec {
	q := query.MustNew("qo", []query.Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
		{Relation: "R4", Vars: []string{"D", "A"}},
	}, nil)
	return &Spec{
		Name:           "qo",
		Query:          q,
		Decomp:         ghd.MustFromBags(q, [][]int{{0, 1}, {2, 3}}),
		JoinOrder:      []string{"R1", "R2", "R3", "R4"},
		PrimaryPrivate: "R2",
		SensBound:      200,
	}
}

// QStar is the star query q*(A,B,C): the triangle table joined with the
// three edge tables — acyclic, but its root multiplicity table is a
// triangle join (the hard-node example of Section 5.2).
func QStar() *Spec {
	q := query.MustNew("qstar", []query.Atom{
		{Relation: "RTRI", Vars: []string{"A", "B", "C"}},
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "A"}},
	}, nil)
	return &Spec{
		Name:           "qstar",
		Query:          q,
		JoinOrder:      []string{"RTRI", "R1", "R2", "R3"},
		PrimaryPrivate: "R2",
		SensBound:      15,
	}
}

// TPCH returns the three TPC-H specs q1, q2, q3.
func TPCH() []*Spec { return []*Spec{Q1(), Q2(), Q3()} }

// Facebook returns the four ego-network specs q4, qw, q◦, q*.
func Facebook() []*Spec { return []*Spec{QTri(), QW(), QCycle(), QStar()} }

// All returns all seven specs in the paper's order.
func All() []*Spec { return append(TPCH(), Facebook()...) }

// ByName finds a spec by its paper name.
func ByName(name string) *Spec {
	for _, s := range All() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// TPCHData generates the TPC-H-like database at the given scale.
func TPCHData(scale float64, seed int64) *relation.Database {
	return tpch.Generate(tpch.Config{Scale: scale, Seed: seed})
}

// FacebookData generates the ego-network database at the paper's scale
// (225 nodes, 6384 directed edges, 567 circles).
func FacebookData(seed int64) *relation.Database {
	return snapgen.Generate(snapgen.Config{Seed: seed}).DB
}

// FacebookDataSized generates a reduced ego-network for tests and quick
// benchmark runs.
func FacebookDataSized(nodes, edges, circles int, seed int64) *relation.Database {
	return snapgen.Generate(snapgen.Config{Nodes: nodes, Edges: edges, Circles: circles, Seed: seed}).DB
}
