package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing. A trace follows one unit of work — typically an
// appended update batch — through named stages (ingress, shard-route,
// wal-append, drain, patch, publish, and on a follower mirror+apply). The
// ID is assigned once at ingress and rides the WAL record payload through
// the replication stream, so the leader's and follower's halves of the
// same update share it.
//
// Completed traces land in a TraceRecorder: a fixed-size reservoir sample
// of everything plus an always-keep ring of traces exceeding the slow
// threshold. GET /debug/traces serves them; per-stage durations also feed
// a histogram vector in the registry, so aggregates stay scrapeable even
// after the buffers cycle.

// TraceID identifies one traced unit of work across processes. Zero means
// "untraced".
type TraceID uint64

const hexDigits = "0123456789abcdef"

// String renders the ID as 16 lowercase hex digits.
func (id TraceID) String() string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// ParseTraceID parses the 16-hex-digit form String produces (shorter
// strings parse as their value; anything non-hex fails).
func ParseTraceID(s string) (TraceID, bool) {
	if s == "" || len(s) > 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint64(c-'A'+10)
		default:
			return 0, false
		}
	}
	return TraceID(v), true
}

// traceIDCounter seeds per-process ID generation: high bits from the
// process start time (so two processes in one trace rarely collide), low
// bits a counter.
var traceIDCounter atomic.Uint64

func init() {
	traceIDCounter.Store(uint64(time.Now().UnixNano()) << 16)
}

// NewTraceID returns a fresh process-unique trace ID.
func NewTraceID() TraceID {
	for {
		if id := TraceID(traceIDCounter.Add(1)); id != 0 {
			return id
		}
	}
}

// Stage is one named, timed step inside a trace. Offset is measured from
// the trace's start, so a JSON consumer can reconstruct the timeline
// without absolute clocks.
type Stage struct {
	Name     string        `json:"name"`
	OffsetNS int64         `json:"offset_ns"`
	Duration time.Duration `json:"duration_ns"`
}

// Trace is a completed trace as stored and served.
type Trace struct {
	ID       TraceID       `json:"-"`
	IDText   string        `json:"id"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Slow     bool          `json:"slow"`
	Stages   []Stage       `json:"stages"`
}

// ActiveTrace accumulates stages for one in-flight unit of work. All
// methods are safe on a nil receiver (no-ops), so untraced paths pay
// nothing, and safe for concurrent use — shards and the WAL append can
// record stages from different goroutines.
type ActiveTrace struct {
	id    TraceID
	name  string
	start time.Time
	rec   *TraceRecorder

	mu     sync.Mutex
	stages []Stage
	done   bool
}

// ID returns the trace's ID, or zero on a nil receiver.
func (t *ActiveTrace) ID() TraceID {
	if t == nil {
		return 0
	}
	return t.id
}

// StageAt records a stage that started at the given time and lasted d.
func (t *ActiveTrace) StageAt(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	off := start.Sub(t.start)
	t.mu.Lock()
	if !t.done {
		t.stages = append(t.stages, Stage{Name: name, OffsetNS: int64(off), Duration: d})
	}
	t.mu.Unlock()
}

// Stage starts a stage now and returns the function that ends it:
//
//	defer tr.Stage("publish")()
func (t *ActiveTrace) Stage(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.StageAt(name, start, time.Since(start)) }
}

// Finish completes the trace, hands it to the recorder, and returns the
// stored form (nil on a nil receiver or a double Finish).
func (t *ActiveTrace) Finish() *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return nil
	}
	t.done = true
	stages := t.stages
	t.mu.Unlock()
	d := time.Since(t.start)
	tr := &Trace{
		ID:       t.id,
		IDText:   t.id.String(),
		Name:     t.name,
		Start:    t.start,
		Duration: d,
		Stages:   stages,
	}
	if t.rec != nil {
		t.rec.Record(tr)
	}
	return tr
}

// TraceRecorder keeps completed traces in two fixed buffers: a reservoir
// sample of all traffic (uniform over everything recorded since start)
// and a ring of the most recent slow traces, which are always kept. It is
// safe for concurrent use by writers and scrapers.
type TraceRecorder struct {
	slowThreshold time.Duration

	stageSecs *HistogramVec // tsens_trace_stage_seconds{stage}
	total     *Counter      // tsens_traces_total
	slowTotal *Counter      // tsens_traces_slow_total

	mu       sync.Mutex
	sample   []*Trace // reservoir, capacity cap
	seen     uint64   // traces offered to the reservoir
	slowRing []*Trace // most recent slow traces, capacity cap
	slowNext int
	slowLen  int
	rng      uint64 // xorshift64 state for reservoir admission
}

// DefaultTraceCapacity bounds each buffer when NewTraceRecorder is given
// a non-positive capacity.
const DefaultTraceCapacity = 256

// DefaultSlowThreshold marks traces slow when NewTraceRecorder is given a
// non-positive threshold.
const DefaultSlowThreshold = 100 * time.Millisecond

// NewTraceRecorder returns a recorder with the given per-buffer capacity
// and slow threshold (non-positive values select the defaults). When reg
// is non-nil, per-stage durations and trace counts are also published
// there.
func NewTraceRecorder(reg *Registry, capacity int, slow time.Duration) *TraceRecorder {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if slow <= 0 {
		slow = DefaultSlowThreshold
	}
	r := &TraceRecorder{
		slowThreshold: slow,
		sample:        make([]*Trace, 0, capacity),
		slowRing:      make([]*Trace, capacity),
		rng:           uint64(time.Now().UnixNano()) | 1,
	}
	if reg != nil {
		r.stageSecs = reg.HistogramVec("tsens_trace_stage_seconds",
			"Per-stage trace durations.", DefBuckets, "stage")
		r.total = reg.Counter("tsens_traces_total", "Completed traces recorded.")
		r.slowTotal = reg.Counter("tsens_traces_slow_total",
			"Completed traces over the slow threshold.")
	}
	return r
}

// SlowThreshold reports the configured slow threshold (0 on nil).
func (r *TraceRecorder) SlowThreshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.slowThreshold
}

// Start begins a trace with a fresh ID. Safe on a nil receiver: returns
// nil, and every ActiveTrace method on that nil is a no-op.
func (r *TraceRecorder) Start(name string) *ActiveTrace {
	if r == nil {
		return nil
	}
	return r.StartWith(NewTraceID(), name)
}

// StartWith begins a trace under an externally assigned ID — the follower
// adopting the leader's ID from the replicated record.
func (r *TraceRecorder) StartWith(id TraceID, name string) *ActiveTrace {
	if r == nil {
		return nil
	}
	return &ActiveTrace{id: id, name: name, start: time.Now(), rec: r}
}

// xorshift64 steps the reservoir's private RNG; math/rand stays out of
// the hot path and seeding stays local.
func (r *TraceRecorder) randn(n uint64) uint64 {
	x := r.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng = x
	return x % n
}

// Record admits a completed trace: always into the stage histograms,
// reservoir-sampled into the sample buffer, and unconditionally into the
// slow ring when over threshold.
func (r *TraceRecorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	t.Slow = t.Duration >= r.slowThreshold
	if r.stageSecs != nil {
		for _, s := range t.Stages {
			r.stageSecs.With(s.Name).Observe(s.Duration.Seconds())
		}
	}
	if r.total != nil {
		r.total.Inc()
	}
	if t.Slow && r.slowTotal != nil {
		r.slowTotal.Inc()
	}
	r.mu.Lock()
	r.seen++
	if len(r.sample) < cap(r.sample) {
		r.sample = append(r.sample, t)
	} else if i := r.randn(r.seen); i < uint64(cap(r.sample)) {
		r.sample[i] = t
	}
	if t.Slow {
		r.slowRing[r.slowNext] = t
		r.slowNext = (r.slowNext + 1) % len(r.slowRing)
		if r.slowLen < len(r.slowRing) {
			r.slowLen++
		}
	}
	r.mu.Unlock()
}

// TraceFilter selects traces out of Traces. The zero value matches
// everything.
type TraceFilter struct {
	Name        string        // exact trace name, "" = any
	MinDuration time.Duration // keep traces at least this long
	Limit       int           // max traces returned, 0 = all
}

// Traces returns the recorder's current contents — slow ring and
// reservoir merged, deduplicated, newest first — filtered by f. The
// returned slice is a snapshot; traces themselves are immutable once
// recorded.
func (r *TraceRecorder) Traces(f TraceFilter) []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	merged := make([]*Trace, 0, len(r.sample)+r.slowLen)
	seen := make(map[*Trace]struct{}, len(r.sample)+r.slowLen)
	for i := 0; i < r.slowLen; i++ {
		t := r.slowRing[(r.slowNext-1-i+len(r.slowRing))%len(r.slowRing)]
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			merged = append(merged, t)
		}
	}
	for _, t := range r.sample {
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			merged = append(merged, t)
		}
	}
	r.mu.Unlock()
	out := merged[:0]
	for _, t := range merged {
		if f.Name != "" && t.Name != f.Name {
			continue
		}
		if t.Duration < f.MinDuration {
			continue
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}
