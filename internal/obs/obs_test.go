package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs_total", "requests") != c {
		t.Fatalf("re-registration did not return the same counter")
	}
	g := r.Gauge("temp", "temperature")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	cv := r.CounterVec("by_kind_total", "per kind", "kind")
	cv.With("a").Add(3)
	cv.With("b").Inc()
	if got := cv.With("a").Value(); got != 3 {
		t.Fatalf("vec counter = %d, want 3", got)
	}
	cv.Delete("a")
	if got := cv.With("a").Value(); got != 0 {
		t.Fatalf("deleted series retained value %d", got)
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("negative Add did not panic")
		}
	}()
	NewRegistry().Counter("c", "").Add(-1)
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering counter as gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestNilRegistryDetached(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("detached counter broken")
	}
	h := r.HistogramVec("h", "", nil, "shard").With("0")
	h.Observe(0.001)
	if h.Count() != 1 {
		t.Fatalf("detached histogram broken")
	}
	done := r.Span("s", h)
	done()
	if h.Count() != 2 {
		t.Fatalf("detached span did not observe")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition = %q, %v", sb.String(), err)
	}
	if len(r.Snapshot()) != 0 {
		t.Fatalf("nil registry snapshot not empty")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 13 {
		t.Fatalf("sum = %v, want 13", got)
	}
	// Buckets: le=1 -> 2, le=2 -> 2, le=4 -> 1, +Inf -> 1.
	want := []uint64{2, 2, 1, 1}
	buckets, total := h.snapshotCounts()
	if total != 6 {
		t.Fatalf("total = %d", total)
	}
	for i, w := range want {
		if buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, buckets[i], w)
		}
	}
	if q := h.Quantile(0.5); q <= 0 || q > 2 {
		t.Fatalf("p50 = %v, want in (0,2]", q)
	}
	// Overflow samples clamp to the largest finite bound.
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("p100 = %v, want 4", q)
	}
	if q := (&Histogram{bounds: []float64{1}, counts: make([]atomic.Uint64, 2)}).Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

// TestHistogramQuantileConcurrentObserve is the regression test for the
// two-pass Quantile race: with the total taken in one pass and the rank
// scan re-loading each bucket, an Observe landing between the passes could
// push the rank past the scanned cumulative count and report the overflow
// bound for a mid-range quantile. With both derived from one snapshot,
// every quantile of a low-bucket-only load stays at the low bound no
// matter how the writers interleave.
func TestHistogramQuantileConcurrentObserve(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(0.5) // always the first bucket
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		if q := h.Quantile(0.5); q > 1 {
			close(stop)
			wg.Wait()
			t.Fatalf("p50 = %v under concurrent observes of 0.5, want ≤ 1", q)
		}
	}
	close(stop)
	wg.Wait()
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a help\nwith newline").Add(7)
	r.GaugeVec("g", "g help", "q").With(`we"ird\val`).Set(1.25)
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP a_total a help\\nwith newline\n",
		"# TYPE a_total counter\n",
		"a_total 7\n",
		`g{q="we\"ird\\val"} 1.25`,
		`lat_seconds_bucket{le="0.001"} 1`,
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_sum 0.5005\n",
		"lat_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := checkExposition(out); err != nil {
		t.Fatalf("exposition not parseable: %v\n%s", err, out)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(3)
	r.GaugeVec("g", "", "k").With("v").Set(1.5)
	h := r.Histogram("h_seconds", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)

	snap := r.Snapshot()
	if snap["c_total"] != 3 {
		t.Fatalf("c_total = %v", snap["c_total"])
	}
	if snap[`g{k="v"}`] != 1.5 {
		t.Fatalf("g = %v", snap[`g{k="v"}`])
	}
	if snap["h_seconds_count"] != 2 || snap["h_seconds_sum"] != 2 {
		t.Fatalf("histogram snapshot: %v", snap)
	}
	if _, ok := snap["h_seconds_p99"]; !ok {
		t.Fatalf("missing p99 in snapshot")
	}
	if v, ok := r.Value("c_total"); !ok || v != 3 {
		t.Fatalf("Value(c_total) = %v, %v", v, ok)
	}
}

func TestSpanHooks(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("span_seconds", "", nil)
	var gotName string
	var gotD time.Duration
	r.OnSpan(func(name string, d time.Duration) { gotName, gotD = name, d })
	stop := r.Span("work", h)
	time.Sleep(time.Millisecond)
	stop()
	if gotName != "work" || gotD <= 0 {
		t.Fatalf("hook saw (%q, %v)", gotName, gotD)
	}
	if h.Count() != 1 {
		t.Fatalf("span histogram count = %d", h.Count())
	}
}

// TestRegistryRaceScrape hammers one registry from 8 goroutines while a
// scraper renders the exposition, asserting monotone counters and
// parseable output at every scrape. Run under -race this is the
// satellite concurrency guarantee for the metrics layer.
func TestRegistryRaceScrape(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 2000

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			c := r.Counter("hammer_total", "shared counter")
			cv := r.CounterVec("hammer_by_writer_total", "per writer", "writer")
			g := r.Gauge("hammer_gauge", "shared gauge")
			h := r.HistogramVec("hammer_seconds", "latencies", nil, "writer").With(strconv.Itoa(w))
			for i := 0; i < perWriter; i++ {
				c.Inc()
				cv.With(strconv.Itoa(w)).Inc()
				g.Set(float64(i))
				h.Observe(float64(i%7) / 1000)
				if i%64 == 0 {
					r.Span("hammer", h)()
				}
			}
		}(w)
	}

	scrapeDone := make(chan error, 1)
	go func() {
		defer close(scrapeDone)
		var lastTotal float64
		for i := 0; ; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				scrapeDone <- fmt.Errorf("scrape %d: %v", i, err)
				return
			}
			out := sb.String()
			if err := checkExposition(out); err != nil {
				scrapeDone <- fmt.Errorf("scrape %d unparseable: %v", i, err)
				return
			}
			total, ok := r.Value("hammer_total")
			if ok && total < lastTotal {
				scrapeDone <- fmt.Errorf("scrape %d: counter went backwards %v -> %v", i, lastTotal, total)
				return
			}
			if ok {
				lastTotal = total
			}
			if lastTotal == writers*perWriter {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	close(start)
	wg.Wait()
	if err, ok := <-scrapeDone; ok && err != nil {
		t.Fatal(err)
	}

	if got, _ := r.Value("hammer_total"); got != writers*perWriter {
		t.Fatalf("hammer_total = %v, want %d", got, writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		if got, _ := r.Value(fmt.Sprintf(`hammer_by_writer_total{writer="%d"}`, w)); got != perWriter {
			t.Fatalf("writer %d counter = %v, want %d", w, got, perWriter)
		}
	}
}

// checkExposition is a strict line-level validator for the Prometheus
// text format: every non-comment line must be `name{labels} value` with
// a parseable float value, every histogram's +Inf bucket must equal its
// _count, and cumulative buckets must be non-decreasing in le order.
func checkExposition(out string) error {
	type histState struct {
		lastCum  float64
		infCount float64
		count    float64
		hasInf   bool
		hasCount bool
	}
	hists := make(map[string]*histState)
	for ln, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("line %d: no value separator: %q", ln+1, line)
		}
		name, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" && valStr != "NaN" {
			return fmt.Errorf("line %d: bad value %q", ln+1, valStr)
		}
		if math.IsNaN(val) || val < 0 {
			return fmt.Errorf("line %d: negative/NaN sample %q", ln+1, line)
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			if !strings.HasSuffix(base, "}") {
				return fmt.Errorf("line %d: unterminated labels: %q", ln+1, line)
			}
			base = base[:i]
		}
		switch {
		case strings.HasSuffix(base, "_bucket"):
			key := strings.TrimSuffix(base, "_bucket")
			st := hists[key]
			if st == nil {
				st = &histState{}
				hists[key] = st
			}
			if strings.Contains(name, `le="+Inf"`) {
				st.infCount, st.hasInf = val, true
				st.lastCum = 0 // next series of same family restarts
			} else {
				if val+1e-9 < st.lastCum {
					return fmt.Errorf("line %d: bucket not cumulative: %q after %v", ln+1, line, st.lastCum)
				}
				st.lastCum = val
			}
		case strings.HasSuffix(base, "_count"):
			key := strings.TrimSuffix(base, "_count")
			if st := hists[key]; st != nil {
				st.count, st.hasCount = val, true
			}
		}
	}
	for name, st := range hists {
		if st.hasInf && st.hasCount && st.infCount != st.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != count %v", name, st.infCount, st.count)
		}
	}
	return nil
}
