// Package obs is a zero-dependency observability kernel: a metrics
// registry of atomic counters, gauges, and fixed-bucket histograms with
// Prometheus text exposition and a JSON snapshot, plus lightweight span
// hooks for tracing.
//
// Design constraints, in order:
//
//   - Hot-path cost is one atomic add (counters/gauges) or one atomic add
//     per bucket walk (histograms). No locks, no allocation, no channels
//     on the observation path. Instruments are safe for concurrent use.
//   - Everything is pull-based: the registry holds live instruments and
//     renders them on demand (WritePrometheus / Snapshot). There is no
//     background goroutine.
//   - Registration is idempotent get-or-create keyed by metric name, so
//     independent subsystems (a WAL, a session, a shard) can all ask for
//     the same family and share it. Re-registering a name with a
//     different type or label set panics: that is a programming error,
//     not a runtime condition.
//   - A nil *Registry is usable: constructors on a nil receiver return
//     fully functional detached instruments that are simply never
//     exported. Instrumented layers therefore never need nil checks.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the exposition type of a metric family.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// DefBuckets are the default latency buckets, in seconds: 50µs to 10s,
// roughly exponential. They cover everything from a single atomic view
// read to a slow fsync on contended storage.
var DefBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are generic magnitude buckets (counts, bytes): 1 to 1M.
var SizeBuckets = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// ---------------------------------------------------------------------------
// Instruments

// Counter is a monotonically increasing integer.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must be non-negative (counters are monotone).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter Add with negative delta")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Bounds are the
// inclusive upper edges of each bucket; one overflow (+Inf) bucket is
// appended implicitly.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram buckets not strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the elapsed seconds since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the total number of samples.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket. Samples in the overflow bucket report the
// largest finite bound. Returns 0 when the histogram is empty.
//
// The rank and the scan derive from one snapshot of the bucket counts: a
// total taken in a separate pass could exceed the counts a later scan sees
// (an Observe landing between the passes), silently reporting the overflow
// bound for a mid-range quantile.
func (h *Histogram) Quantile(q float64) float64 {
	counts, total := h.snapshotCounts()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, bound := range h.bounds {
		n := float64(counts[i])
		if cum+n >= rank && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - cum) / n
			return lo + (bound-lo)*frac
		}
		cum += n
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// snapshotCounts returns a consistent-enough copy of the per-bucket
// cumulative counts and the total. Individual loads are atomic; the set
// is not a snapshot of one instant, but cumulative rendering below never
// decreases between scrapes for any le bound.
func (h *Histogram) snapshotCounts() (buckets []uint64, total uint64) {
	buckets = make([]uint64, len(h.counts))
	for i := range h.counts {
		buckets[i] = h.counts[i].Load()
		total += buckets[i]
	}
	return buckets, total
}

// ---------------------------------------------------------------------------
// Families and vectors

type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

type family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histograms only

	mu     sync.RWMutex
	series map[string]*series
}

func (f *family) get(values []string) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	s := f.series[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.series[key]; s != nil {
		return s
	}
	vals := make([]string, len(values))
	copy(vals, values)
	s = &series{labelValues: vals}
	switch f.kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = newHistogram(f.buckets)
	}
	f.series[key] = s
	return s
}

func (f *family) delete(values []string) {
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	delete(f.series, key)
	f.mu.Unlock()
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).counter }

// Delete removes the series with the given label values.
func (v *CounterVec) Delete(values ...string) { v.f.delete(values) }

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).gauge }

// Delete removes the series with the given label values.
func (v *GaugeVec) Delete(values ...string) { v.f.delete(values) }

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).hist }

// Delete removes the series with the given label values.
func (v *HistogramVec) Delete(values ...string) { v.f.delete(values) }

// ---------------------------------------------------------------------------
// Registry

// SpanHook observes a completed span: its name and duration. Hooks must
// be fast and must not call back into the registry's span API.
type SpanHook func(name string, d time.Duration)

// Registry holds metric families and span hooks. The zero value is not
// usable; call NewRegistry. All methods are safe for concurrent use, and
// every constructor method is safe on a nil receiver (returning detached
// instruments).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family

	hookMu     sync.RWMutex
	hooks      []spanHookEntry // copy-on-write: replaced wholesale, never mutated
	nextHookID uint64
}

// spanHookEntry pairs a hook with the identity OnSpan's remove closure
// deletes by. The slice holding entries is copy-on-write, so a Span that
// snapshotted it keeps a consistent view while hooks churn.
type spanHookEntry struct {
	id   uint64
	hook SpanHook
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind Kind, buckets []float64, labelNames []string) *family {
	if r == nil {
		// Detached: a private single-family holder, never exported.
		return &family{name: name, help: help, kind: kind, buckets: buckets,
			labelNames: labelNames, series: make(map[string]*series)}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s(%d labels), was %s(%d labels)",
				name, kind, len(labelNames), f.kind, len(f.labelNames)))
		}
		for i := range labelNames {
			if f.labelNames[i] != labelNames[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with label %q, was %q", name, labelNames[i], f.labelNames[i]))
			}
		}
		return f
	}
	names := make([]string, len(labelNames))
	copy(names, labelNames)
	f := &family{name: name, help: help, kind: kind, buckets: buckets,
		labelNames: names, series: make(map[string]*series)}
	r.families[name] = f
	return f
}

// Counter returns the unlabeled counter with the given name, registering
// it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, KindCounter, nil, nil).get(nil).counter
}

// CounterVec returns the counter family with the given name and label
// names, registering it on first use.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, KindCounter, nil, labelNames)}
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, KindGauge, nil, nil).get(nil).gauge
}

// GaugeVec returns the gauge family with the given name and label names.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.family(name, help, KindGauge, nil, labelNames)}
}

// Histogram returns the unlabeled histogram with the given name. A nil
// buckets slice selects DefBuckets. Buckets are fixed at first
// registration; later callers inherit them.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, KindHistogram, buckets, nil).get(nil).hist
}

// HistogramVec returns the histogram family with the given name, buckets
// and label names.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, KindHistogram, buckets, labelNames)}
}

// OnSpan registers a hook invoked for every completed span and returns a
// function that unregisters it. The hook list is copy-on-write: spans that
// already snapshotted it may still fire the hook once more after remove
// returns, but no new snapshot will include it. Safe on a nil receiver
// (the returned remove is a no-op).
func (r *Registry) OnSpan(h SpanHook) (remove func()) {
	if r == nil || h == nil {
		return func() {}
	}
	r.hookMu.Lock()
	r.nextHookID++
	id := r.nextHookID
	next := make([]spanHookEntry, len(r.hooks), len(r.hooks)+1)
	copy(next, r.hooks)
	r.hooks = append(next, spanHookEntry{id: id, hook: h})
	r.hookMu.Unlock()
	return func() {
		r.hookMu.Lock()
		defer r.hookMu.Unlock()
		for i, e := range r.hooks {
			if e.id == id {
				next := make([]spanHookEntry, 0, len(r.hooks)-1)
				next = append(next, r.hooks[:i]...)
				r.hooks = append(next, r.hooks[i+1:]...)
				return
			}
		}
	}
}

// Span starts a span and returns its stop function. Stopping observes
// the elapsed seconds into hist (if non-nil) and fires every registered
// span hook. Safe on a nil receiver.
//
//	defer reg.Span("drain_round", hist)()
func (r *Registry) Span(name string, hist *Histogram) func() {
	start := time.Now()
	return func() {
		d := time.Since(start)
		if hist != nil {
			hist.Observe(d.Seconds())
		}
		if r == nil {
			return
		}
		r.hookMu.RLock()
		hooks := r.hooks
		r.hookMu.RUnlock()
		for _, e := range hooks {
			e.hook(name, d)
		}
	}
}

// ---------------------------------------------------------------------------
// Exposition

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// labelString renders {k="v",...} from parallel name/value slices, with
// extra appended verbatim (used for the histogram le label). Returns ""
// when there are no labels.
func labelString(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(values[i]))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

func (f *family) sortedSeries() []*series {
	f.mu.RLock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].labelValues, out[j].labelValues
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4), families and series in sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, f := range r.sortedFamilies() {
		ss := f.sortedSeries()
		if len(ss) == 0 {
			continue
		}
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, helpEscaper.Replace(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(f.labelNames, s.labelValues, ""), s.counter.Value())
			case KindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, labelString(f.labelNames, s.labelValues, ""), formatFloat(s.gauge.Value()))
			case KindHistogram:
				h := s.hist
				buckets, total := h.snapshotCounts()
				var cum uint64
				for i, bound := range h.bounds {
					cum += buckets[i]
					le := `le="` + formatFloat(bound) + `"`
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labelNames, s.labelValues, le), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(f.labelNames, s.labelValues, `le="+Inf"`), total)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labelString(f.labelNames, s.labelValues, ""), formatFloat(h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(f.labelNames, s.labelValues, ""), total)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns every series as a flat map from canonical sample name
// (name{label="value",...}) to value. Histograms contribute _count,
// _sum, and interpolated _p50/_p90/_p99 samples. The result is safe to
// encode as JSON (no Inf/NaN: such values are clamped to 0).
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	put := func(k string, v float64) {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			v = 0
		}
		out[k] = v
	}
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			ls := labelString(f.labelNames, s.labelValues, "")
			switch f.kind {
			case KindCounter:
				put(f.name+ls, float64(s.counter.Value()))
			case KindGauge:
				put(f.name+ls, s.gauge.Value())
			case KindHistogram:
				h := s.hist
				put(f.name+"_count"+ls, float64(h.Count()))
				put(f.name+"_sum"+ls, h.Sum())
				put(f.name+"_p50"+ls, h.Quantile(0.50))
				put(f.name+"_p90"+ls, h.Quantile(0.90))
				put(f.name+"_p99"+ls, h.Quantile(0.99))
			}
		}
	}
	return out
}

// Value returns the snapshot value of one canonical sample name and
// whether it exists. Intended for tests and assertions, not hot paths.
func (r *Registry) Value(sample string) (float64, bool) {
	v, ok := r.Snapshot()[sample]
	return v, ok
}
