package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func fixedClock(times ...time.Time) func() time.Time {
	i := 0
	return func() time.Time {
		t := times[i%len(times)]
		i++
		return t
	}
}

func TestLoggerText(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelInfo, false)
	l.core.now = fixedClock(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	l.With("trace", TraceID(0xab).String()).Info("drain round", "epoch", 7, "took", 1500*time.Microsecond, "q", "has space")
	got := sb.String()
	want := `ts=2026-08-08T12:00:00Z level=info msg="drain round" trace=00000000000000ab epoch=7 took=1.5ms q="has space"` + "\n"
	if got != want {
		t.Fatalf("line:\n got %q\nwant %q", got, want)
	}
}

func TestLoggerJSON(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelDebug, true)
	l.core.now = fixedClock(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	l.Error("apply failed", "err", errors.New("boom"), "lag", int64(3))
	var obj map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &obj); err != nil {
		t.Fatalf("not JSON: %v: %q", err, sb.String())
	}
	if obj["level"] != "error" || obj["msg"] != "apply failed" || obj["err"] != "boom" || obj["lag"] != float64(3) {
		t.Fatalf("obj = %v", obj)
	}
}

func TestLoggerLevelsAndNil(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelWarn, false)
	l.Debug("d")
	l.Info("i")
	if sb.Len() != 0 {
		t.Fatalf("below-min levels wrote %q", sb.String())
	}
	if l.Enabled(LevelInfo) || !l.Enabled(LevelError) {
		t.Fatal("Enabled wrong")
	}
	l.Warn("w")
	if !strings.Contains(sb.String(), "level=warn") {
		t.Fatalf("warn line: %q", sb.String())
	}

	var nilLogger *Logger
	nilLogger.Info("x", "k", "v")
	nilLogger.ErrorRL("k", "x")
	if nilLogger.With("k", "v") != nil {
		t.Fatal("nil With != nil")
	}
	if nilLogger.Enabled(LevelError) {
		t.Fatal("nil logger enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "INFO": LevelInfo, "Warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, " info ": LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}

func TestLoggerErrorRL(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelInfo, false)
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	// Clock sequence: first burst at t0 (5 calls), then one call past the
	// window. Each ErrorRL reads the clock once; the line that gets through
	// reads it once more in log().
	times := []time.Time{base, base, base, base, base, base,
		base.Add(2 * time.Second), base.Add(2 * time.Second)}
	l.core.now = fixedClock(times...)
	for i := 0; i < 5; i++ {
		l.ErrorRL("wal", "append failed", "n", i)
	}
	lines := strings.Count(sb.String(), "\n")
	if lines != 1 {
		t.Fatalf("burst logged %d lines, want 1: %q", lines, sb.String())
	}
	l.ErrorRL("wal", "append failed", "n", 5)
	out := sb.String()
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("post-window logged %d lines, want 2: %q", strings.Count(out, "\n"), out)
	}
	if !strings.Contains(out, "suppressed=4") {
		t.Fatalf("no suppressed count: %q", out)
	}
	// Distinct keys rate-limit independently.
	sb.Reset()
	l2 := NewLogger(&sb, LevelInfo, false)
	l2.core.now = fixedClock(base)
	l2.ErrorRL("a", "m")
	l2.ErrorRL("b", "m")
	if strings.Count(sb.String(), "\n") != 2 {
		t.Fatalf("independent keys: %q", sb.String())
	}
}
