package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	for _, id := range []TraceID{1, 0xdeadbeef, ^TraceID(0), NewTraceID()} {
		s := id.String()
		if len(s) != 16 {
			t.Fatalf("String(%d) = %q, want 16 hex digits", uint64(id), s)
		}
		got, ok := ParseTraceID(s)
		if !ok || got != id {
			t.Fatalf("ParseTraceID(%q) = %v, %v; want %v", s, got, ok, id)
		}
	}
	if _, ok := ParseTraceID(""); ok {
		t.Fatal("empty string parsed")
	}
	if _, ok := ParseTraceID("xyz"); ok {
		t.Fatal("non-hex parsed")
	}
	if _, ok := ParseTraceID("00112233445566778"); ok {
		t.Fatal("17 digits parsed")
	}
	if NewTraceID() == NewTraceID() {
		t.Fatal("NewTraceID repeated itself")
	}
}

// TestTraceNilSafe pins the no-instrumentation contract: a nil recorder
// starts nil traces, and every method on them is a no-op.
func TestTraceNilSafe(t *testing.T) {
	var r *TraceRecorder
	tr := r.Start("update")
	if tr != nil {
		t.Fatalf("nil recorder started %v", tr)
	}
	if tr.ID() != 0 {
		t.Fatal("nil trace has an ID")
	}
	tr.Stage("x")()
	tr.StageAt("y", time.Now(), time.Millisecond)
	if got := tr.Finish(); got != nil {
		t.Fatalf("nil Finish = %v", got)
	}
	if got := r.Traces(TraceFilter{}); got != nil {
		t.Fatalf("nil Traces = %v", got)
	}
	r.Record(nil)
}

func TestTraceStagesAndRegistry(t *testing.T) {
	reg := NewRegistry()
	r := NewTraceRecorder(reg, 8, 50*time.Millisecond)
	tr := r.Start("update")
	if tr.ID() == 0 {
		t.Fatal("no trace ID assigned")
	}
	tr.StageAt("wal-append", time.Now(), 3*time.Millisecond)
	tr.StageAt("drain", time.Now(), 7*time.Millisecond)
	done := tr.Finish()
	if done == nil || len(done.Stages) != 2 {
		t.Fatalf("Finish = %+v", done)
	}
	if again := tr.Finish(); again != nil {
		t.Fatalf("double Finish recorded %+v", again)
	}
	got := r.Traces(TraceFilter{})
	if len(got) != 1 || got[0].Name != "update" || got[0].IDText != done.ID.String() {
		t.Fatalf("Traces = %+v", got)
	}
	if v, ok := reg.Value("tsens_traces_total"); !ok || v != 1 {
		t.Fatalf("tsens_traces_total = %v, %v", v, ok)
	}
	if v, ok := reg.Value(`tsens_trace_stage_seconds_count{stage="wal-append"}`); !ok || v != 1 {
		t.Fatalf("stage histogram = %v, %v", v, ok)
	}
}

// record fabricates a completed trace with a controlled duration.
func record(r *TraceRecorder, name string, d time.Duration) *Trace {
	tr := &Trace{ID: NewTraceID(), Name: name, Start: time.Now(), Duration: d}
	tr.IDText = tr.ID.String()
	r.Record(tr)
	return tr
}

// TestTraceRecorderSlowAlwaysKept overflows the reservoir with fast
// traffic and checks the slow ring still holds the most recent slow
// traces regardless.
func TestTraceRecorderSlowAlwaysKept(t *testing.T) {
	reg := NewRegistry()
	r := NewTraceRecorder(reg, 4, 10*time.Millisecond)
	for i := 0; i < 100; i++ {
		record(r, "fast", time.Millisecond)
	}
	var slow []*Trace
	for i := 0; i < 6; i++ { // more than capacity: ring keeps the last 4
		slow = append(slow, record(r, "slow", 20*time.Millisecond))
	}
	got := r.Traces(TraceFilter{MinDuration: 10 * time.Millisecond})
	if len(got) != 4 {
		t.Fatalf("slow traces kept = %d, want 4", len(got))
	}
	want := map[string]bool{}
	for _, s := range slow[2:] {
		want[s.IDText] = true
	}
	for _, g := range got {
		if !g.Slow {
			t.Fatalf("trace %s over threshold not marked slow", g.IDText)
		}
		if !want[g.IDText] {
			t.Fatalf("slow ring kept %s, want the most recent 4", g.IDText)
		}
	}
	if v, _ := reg.Value("tsens_traces_slow_total"); v != 6 {
		t.Fatalf("tsens_traces_slow_total = %v, want 6", v)
	}
	// The reservoir stays at capacity no matter how much passed through.
	if all := r.Traces(TraceFilter{}); len(all) > 8 {
		t.Fatalf("buffers exceed capacity: %d traces", len(all))
	}
}

func TestTraceRecorderFilter(t *testing.T) {
	r := NewTraceRecorder(nil, 16, time.Hour)
	record(r, "update", 5*time.Millisecond)
	record(r, "update", 15*time.Millisecond)
	record(r, "release", 25*time.Millisecond)
	if got := r.Traces(TraceFilter{Name: "release"}); len(got) != 1 || got[0].Name != "release" {
		t.Fatalf("name filter: %+v", got)
	}
	if got := r.Traces(TraceFilter{MinDuration: 10 * time.Millisecond}); len(got) != 2 {
		t.Fatalf("min-duration filter kept %d", len(got))
	}
	if got := r.Traces(TraceFilter{Limit: 2}); len(got) != 2 {
		t.Fatalf("limit: %d", len(got))
	}
	all := r.Traces(TraceFilter{})
	for i := 1; i < len(all); i++ {
		if all[i].Start.After(all[i-1].Start) {
			t.Fatal("traces not newest-first")
		}
	}
}

// TestTraceRecorderRace hammers one recorder from concurrent writers
// (half of them slow, exercising the always-keep ring) while scrapers
// read Traces — the acceptance-criteria race coverage for the ring
// buffer.
func TestTraceRecorderRace(t *testing.T) {
	reg := NewRegistry()
	r := NewTraceRecorder(reg, 32, 5*time.Millisecond)
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				tr := r.Start(fmt.Sprintf("writer%d", w))
				tr.StageAt("work", time.Now(), time.Duration(i%9)*time.Millisecond)
				d := time.Duration(i%10) * time.Millisecond
				done := &Trace{ID: tr.ID(), IDText: tr.ID().String(),
					Name: "hammer", Start: time.Now(), Duration: d}
				r.Record(done)
				tr.Finish()
			}
		}(w)
	}
	scrapeDone := make(chan error, 1)
	go func() {
		defer close(scrapeDone)
		for i := 0; i < 200; i++ {
			for _, f := range []TraceFilter{{}, {Name: "hammer"}, {MinDuration: 5 * time.Millisecond, Limit: 10}} {
				got := r.Traces(f)
				if f.Limit > 0 && len(got) > f.Limit {
					scrapeDone <- fmt.Errorf("scrape %d: %d traces over limit %d", i, len(got), f.Limit)
					return
				}
			}
		}
	}()
	close(start)
	wg.Wait()
	if err, ok := <-scrapeDone; ok && err != nil {
		t.Fatal(err)
	}
	if total, _ := reg.Value("tsens_traces_total"); total != 2*writers*perWriter {
		t.Fatalf("tsens_traces_total = %v, want %d", total, 2*writers*perWriter)
	}
}

// TestOnSpanRemove pins the unregister semantics single-threaded before
// the race test churns them.
func TestOnSpanRemove(t *testing.T) {
	r := NewRegistry()
	var a, b int
	removeA := r.OnSpan(func(string, time.Duration) { a++ })
	removeB := r.OnSpan(func(string, time.Duration) { b++ })
	r.Span("s", nil)()
	if a != 1 || b != 1 {
		t.Fatalf("after first span: a=%d b=%d", a, b)
	}
	removeA()
	removeA() // idempotent
	r.Span("s", nil)()
	if a != 1 || b != 2 {
		t.Fatalf("after removeA: a=%d b=%d", a, b)
	}
	removeB()
	r.Span("s", nil)()
	if a != 1 || b != 2 {
		t.Fatalf("after removeB: a=%d b=%d", a, b)
	}
	var nilReg *Registry
	nilReg.OnSpan(func(string, time.Duration) {})() // remove on nil registry is a no-op
}

// TestOnSpanChurnRace runs concurrent span producers against a hook that
// unregisters and re-registers itself mid-stream — the satellite
// concurrency guarantee for the hook list. Counts must be consistent:
// every span fires the stable hook exactly once.
func TestOnSpanChurnRace(t *testing.T) {
	r := NewRegistry()
	var stable, churny int64
	var stableMu, churnyMu sync.Mutex
	r.OnSpan(func(string, time.Duration) {
		stableMu.Lock()
		stable++
		stableMu.Unlock()
	})
	churnHook := func(string, time.Duration) {
		churnyMu.Lock()
		churny++
		churnyMu.Unlock()
	}

	const producers = 8
	const perProducer = 2000
	var wg sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perProducer; i++ {
				r.Span("churn", nil)()
			}
		}()
	}
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		<-start
		for i := 0; i < 500; i++ {
			remove := r.OnSpan(churnHook)
			r.Span("self", nil)()
			remove()
		}
	}()
	close(start)
	wg.Wait()
	<-churnDone
	if stable < producers*perProducer {
		t.Fatalf("stable hook fired %d times, want at least %d", stable, producers*perProducer)
	}
	if churny < 500 {
		t.Fatalf("churning hook fired %d times, want at least its own 500 spans", churny)
	}
}
