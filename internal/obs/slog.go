package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Leveled structured logging without dependencies. One line per event,
// either logfmt-style key=value text or JSON; both stamp ts/level/msg and
// whatever key-value pairs the caller attached (With pre-binds pairs such
// as the trace ID). All methods are safe on a nil receiver and for
// concurrent use. Hot-path error sites use ErrorRL, which caps output at
// one line per key per second and reports how many lines it swallowed.

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// ParseLevel reads a level name (case-insensitive).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (debug, info, warn, error)", s)
}

// Logger writes leveled structured lines to a shared sink. Derive
// children with With; they share the sink, level, and rate limiter.
type Logger struct {
	core *loggerCore
	kvs  []any // pre-bound key-value pairs, alternating key, value
}

type loggerCore struct {
	mu    sync.Mutex
	w     io.Writer
	min   Level
	jsonl bool
	now   func() time.Time

	rlMu   sync.Mutex
	rlSeen map[string]*rlState
}

type rlState struct {
	last       time.Time
	suppressed int
}

// NewLogger returns a logger writing lines at or above min to w. jsonl
// selects JSON-per-line output; false selects key=value text.
func NewLogger(w io.Writer, min Level, jsonl bool) *Logger {
	return &Logger{core: &loggerCore{
		w: w, min: min, jsonl: jsonl,
		now:    time.Now,
		rlSeen: make(map[string]*rlState),
	}}
}

// With returns a logger that adds the given alternating key-value pairs
// to every line. Safe on nil (returns nil).
func (l *Logger) With(kvs ...any) *Logger {
	if l == nil || len(kvs) == 0 {
		return l
	}
	merged := make([]any, 0, len(l.kvs)+len(kvs))
	merged = append(merged, l.kvs...)
	merged = append(merged, kvs...)
	return &Logger{core: l.core, kvs: merged}
}

// Enabled reports whether a line at the given level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.core.min
}

func (l *Logger) Debug(msg string, kvs ...any) { l.log(LevelDebug, msg, kvs) }
func (l *Logger) Info(msg string, kvs ...any)  { l.log(LevelInfo, msg, kvs) }
func (l *Logger) Warn(msg string, kvs ...any)  { l.log(LevelWarn, msg, kvs) }
func (l *Logger) Error(msg string, kvs ...any) { l.log(LevelError, msg, kvs) }

// rlWindow is how long ErrorRL silences repeats of one key.
const rlWindow = time.Second

// ErrorRL logs an error at most once per second per key; suppressed
// repeats are counted and reported on the next line that gets through
// (suppressed=N). Use it on hot paths where a persistent fault would
// otherwise log per request.
func (l *Logger) ErrorRL(key, msg string, kvs ...any) {
	if l == nil || LevelError < l.core.min {
		return
	}
	c := l.core
	c.rlMu.Lock()
	st := c.rlSeen[key]
	if st == nil {
		st = &rlState{}
		c.rlSeen[key] = st
	}
	now := c.now()
	if now.Sub(st.last) < rlWindow {
		st.suppressed++
		c.rlMu.Unlock()
		return
	}
	st.last = now
	suppressed := st.suppressed
	st.suppressed = 0
	c.rlMu.Unlock()
	if suppressed > 0 {
		kvs = append(kvs, "suppressed", suppressed)
	}
	l.log(LevelError, msg, kvs)
}

func (l *Logger) log(level Level, msg string, kvs []any) {
	if l == nil || level < l.core.min {
		return
	}
	c := l.core
	ts := c.now().UTC()
	var line []byte
	if c.jsonl {
		obj := make(map[string]any, 3+(len(l.kvs)+len(kvs))/2)
		obj["ts"] = ts.Format(time.RFC3339Nano)
		obj["level"] = level.String()
		obj["msg"] = msg
		addPairs(obj, l.kvs)
		addPairs(obj, kvs)
		line, _ = json.Marshal(obj)
		line = append(line, '\n')
	} else {
		var b strings.Builder
		b.WriteString("ts=")
		b.WriteString(ts.Format(time.RFC3339Nano))
		b.WriteString(" level=")
		b.WriteString(level.String())
		b.WriteString(" msg=")
		b.WriteString(quoteValue(msg))
		writePairs(&b, l.kvs)
		writePairs(&b, kvs)
		b.WriteByte('\n')
		line = []byte(b.String())
	}
	c.mu.Lock()
	c.w.Write(line)
	c.mu.Unlock()
}

func addPairs(obj map[string]any, kvs []any) {
	for i := 0; i+1 < len(kvs); i += 2 {
		k, ok := kvs[i].(string)
		if !ok {
			k = fmt.Sprint(kvs[i])
		}
		obj[k] = jsonValue(kvs[i+1])
	}
}

// jsonValue keeps values that json.Marshal would reject (or render
// uselessly) readable: errors and Stringers become their text.
func jsonValue(v any) any {
	switch t := v.(type) {
	case error:
		return t.Error()
	case time.Duration:
		return t.String()
	case fmt.Stringer:
		return t.String()
	}
	return v
}

func writePairs(b *strings.Builder, kvs []any) {
	for i := 0; i+1 < len(kvs); i += 2 {
		k, ok := kvs[i].(string)
		if !ok {
			k = fmt.Sprint(kvs[i])
		}
		b.WriteByte(' ')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(quoteValue(formatValue(kvs[i+1])))
	}
}

func formatValue(v any) string {
	switch t := v.(type) {
	case string:
		return t
	case error:
		return t.Error()
	case time.Duration:
		return t.String()
	case fmt.Stringer:
		return t.String()
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	}
	return fmt.Sprint(v)
}

// quoteValue quotes a value only when logfmt needs it (spaces, quotes,
// '=', control characters), keeping common lines grep-friendly.
func quoteValue(s string) string {
	if s == "" {
		return `""`
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return strconv.Quote(s)
		}
	}
	return s
}
