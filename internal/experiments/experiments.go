// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7): Figure 6a (local sensitivity vs scale), Figure 6b
// (most sensitive tuple per relation of q3), Figure 7 (runtime vs scale),
// Table 1 (Facebook queries: sensitivity and runtime), Table 2 (TSensDP vs
// PrivSQL), and the ℓ parameter study of Section 7.3.
//
// Functions return structured rows; render.go formats them like the paper's
// tables. cmd/experiments and the repository benchmarks call these.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"tsens/internal/core"
	"tsens/internal/elastic"
	"tsens/internal/mechanism"
	"tsens/internal/relation"
	"tsens/internal/workload"
	"tsens/internal/yannakakis"
)

// DefaultTPCHScales are the scale factors the harness runs by default —
// the low end of the paper's {1e-4 … 10}, sized for a laptop-class machine.
// The q3 bags grow as 25·|LINEITEM|, so q3 is capped separately.
var DefaultTPCHScales = []float64{0.0001, 0.0003, 0.001, 0.003, 0.01}

// MaxQ3Scale guards the quadratic-memory cyclic query, mirroring the
// paper's own memory cutoff for q3 (they stopped at scale 0.1 on a 16 GB
// machine).
const MaxQ3Scale = 0.003

// queryTimes measures one (query, database) configuration: TSens local
// sensitivity, the elastic bound, and the three runtimes Figure 7 plots.
type queryTimes struct {
	TSensLS     int64
	ElasticLS   int64
	TSensTime   time.Duration
	ElasticTime time.Duration
	EvalTime    time.Duration
	Result      *core.Result
}

// runSpec executes TSens, Elastic, and plain query evaluation on one spec.
// Elastic's max-frequency preprocessing is excluded from its timing, as in
// Section 7.2.
func runSpec(s *workload.Spec, db *relation.Database) (*queryTimes, error) {
	qt := &queryTimes{}

	start := time.Now()
	res, err := core.LocalSensitivity(s.Query, db, s.Options())
	if err != nil {
		return nil, fmt.Errorf("%s: TSens: %w", s.Name, err)
	}
	qt.TSensTime = time.Since(start)
	qt.TSensLS = res.LS
	qt.Result = res

	an, err := elastic.NewAnalyzer(s.Query, db) // preprocessing, untimed
	if err != nil {
		return nil, err
	}
	start = time.Now()
	qt.ElasticLS, err = an.LocalSensitivity(s.JoinOrder)
	if err != nil {
		return nil, fmt.Errorf("%s: elastic: %w", s.Name, err)
	}
	qt.ElasticTime = time.Since(start)

	start = time.Now()
	if s.Decomp != nil {
		_, err = yannakakis.CountGHD(s.Query, db, s.Decomp)
	} else {
		_, err = yannakakis.Count(s.Query, db)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: evaluation: %w", s.Name, err)
	}
	qt.EvalTime = time.Since(start)
	return qt, nil
}

// ScaleRow is one point of Figures 6a and 7: a (query, scale) pair with
// sensitivities and runtimes.
type ScaleRow struct {
	Query       string
	Scale       float64
	TSensLS     int64
	ElasticLS   int64
	TSensTime   time.Duration
	ElasticTime time.Duration
	EvalTime    time.Duration
}

// Fig6a7 runs q1, q2, q3 across the given scales, producing the data behind
// both Figure 6a (sensitivity trend) and Figure 7 (runtime trend). q3 is
// skipped above MaxQ3Scale.
func Fig6a7(scales []float64, seed int64) ([]ScaleRow, error) {
	var rows []ScaleRow
	for _, scale := range scales {
		db := workload.TPCHData(scale, seed)
		for _, s := range workload.TPCH() {
			if s.Name == "q3" && scale > MaxQ3Scale {
				continue
			}
			qt, err := runSpec(s, db)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ScaleRow{
				Query: s.Name, Scale: scale,
				TSensLS: qt.TSensLS, ElasticLS: qt.ElasticLS,
				TSensTime: qt.TSensTime, ElasticTime: qt.ElasticTime, EvalTime: qt.EvalTime,
			})
		}
	}
	return rows, nil
}

// Fig6bRow is one relation of Figure 6b: q3's most sensitive tuple and its
// tuple sensitivity versus the elastic bound with that relation sensitive.
type Fig6bRow struct {
	Relation    string
	Tuple       string // rendered most sensitive tuple, "skip" for LINEITEM
	TupleSens   int64
	ElasticSens int64
	Skipped     bool
}

// Fig6b reproduces Figure 6b on q3 at the given scale.
func Fig6b(scale float64, seed int64) ([]Fig6bRow, error) {
	s := workload.Q3()
	db := workload.TPCHData(scale, seed)
	res, err := core.LocalSensitivity(s.Query, db, s.Options())
	if err != nil {
		return nil, err
	}
	an, err := elastic.NewAnalyzer(s.Query, db)
	if err != nil {
		return nil, err
	}
	var rows []Fig6bRow
	for _, atom := range s.Query.Atoms {
		e, err := an.Sensitivity(s.JoinOrder, atom.Relation)
		if err != nil {
			return nil, err
		}
		row := Fig6bRow{Relation: atom.Relation, ElasticSens: e}
		if tr, ok := res.PerRelation[atom.Relation]; ok {
			row.Tuple = renderTuple(tr)
			row.TupleSens = tr.Sensitivity
		} else {
			row.Tuple = "skip (FK-PK: tuple sensitivity ≤ 1)"
			row.TupleSens = 1
			row.Skipped = true
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].TupleSens > rows[j].TupleSens })
	return rows, nil
}

func renderTuple(tr *core.TupleResult) string {
	if tr.Values == nil {
		return "-"
	}
	out := ""
	for i, v := range tr.Vars {
		if i > 0 {
			out += ", "
		}
		if tr.Wildcard[i] {
			out += fmt.Sprintf("%s(*)", v)
		} else {
			out += fmt.Sprintf("%s(%d)", v, tr.Values[i])
		}
	}
	return out
}

// Table1Row is one Facebook query of Table 1.
type Table1Row struct {
	Query       string
	TSensLS     int64
	ElasticLS   int64
	TSensTime   time.Duration
	ElasticTime time.Duration
	EvalTime    time.Duration
}

// FacebookSize selects the synthetic ego-network size.
type FacebookSize struct {
	Nodes, Edges, Circles int
}

// PaperFacebookSize is the ego-network of user 348 from Section 7.1.
var PaperFacebookSize = FacebookSize{Nodes: 225, Edges: 3192, Circles: 567}

// Table1 reproduces Table 1 over a synthetic ego-network.
func Table1(size FacebookSize, seed int64) ([]Table1Row, error) {
	db := workload.FacebookDataSized(size.Nodes, size.Edges, size.Circles, seed)
	var rows []Table1Row
	for _, s := range workload.Facebook() {
		qt, err := runSpec(s, db)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Query: s.Name, TSensLS: qt.TSensLS, ElasticLS: qt.ElasticLS,
			TSensTime: qt.TSensTime, ElasticTime: qt.ElasticTime, EvalTime: qt.EvalTime,
		})
	}
	return rows, nil
}

// Table2Row is one (query, mechanism) row of Table 2: medians over runs.
type Table2Row struct {
	Query      string
	Count      int64
	Algorithm  string // "TSensDP" or "PrivSQL"
	Error      float64
	Bias       float64
	GlobalSens int64
	Time       time.Duration
}

// Table2Config sizes the DP comparison.
type Table2Config struct {
	Epsilon   float64 // default 1
	Runs      int     // default 20, per Section 7.3
	TPCHScale float64 // default 0.001
	// ScaleOverrides replaces TPCHScale per query. By default q2 runs at
	// 10× the base scale (capped at 0.1): its per-supplier contribution is
	// scale-invariant (~600 outputs), so the threshold-learning regime of
	// Section 6.2 needs a larger supplier population relative to it.
	ScaleOverrides map[string]float64
	Facebook       FacebookSize
	Seed           int64
}

func (c Table2Config) withDefaults() Table2Config {
	if c.Epsilon == 0 {
		c.Epsilon = 1
	}
	if c.Runs == 0 {
		c.Runs = 20
	}
	if c.TPCHScale == 0 {
		c.TPCHScale = 0.001
	}
	if c.ScaleOverrides == nil {
		q2 := c.TPCHScale * 10
		if q2 > 0.1 {
			q2 = 0.1
		}
		c.ScaleOverrides = map[string]float64{"q2": q2}
	}
	if c.Facebook == (FacebookSize{}) {
		c.Facebook = FacebookSize{Nodes: 80, Edges: 600, Circles: 120}
	}
	return c
}

// Table2 reproduces Table 2: for every query, median error, bias and global
// sensitivity of TSensDP and of PrivSQL over cfg.Runs repetitions.
func Table2(cfg Table2Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	tpchCache := map[float64]*relation.Database{}
	tpchAt := func(scale float64) *relation.Database {
		if db, ok := tpchCache[scale]; ok {
			return db
		}
		db := workload.TPCHData(scale, cfg.Seed)
		tpchCache[scale] = db
		return db
	}
	fbDB := workload.FacebookDataSized(cfg.Facebook.Nodes, cfg.Facebook.Edges, cfg.Facebook.Circles, cfg.Seed)

	var rows []Table2Row
	for _, s := range workload.All() {
		var db *relation.Database
		if s.Name == "q4" || s.Name == "qw" || s.Name == "qo" || s.Name == "qstar" {
			db = fbDB
		} else {
			scale := cfg.TPCHScale
			if o, ok := cfg.ScaleOverrides[s.Name]; ok {
				scale = o
			}
			db = tpchAt(scale)
		}
		ts, err := runMechanism(s, db, cfg, true)
		if err != nil {
			return nil, fmt.Errorf("%s TSensDP: %w", s.Name, err)
		}
		ps, err := runMechanism(s, db, cfg, false)
		if err != nil {
			return nil, fmt.Errorf("%s PrivSQL: %w", s.Name, err)
		}
		rows = append(rows, *ts, *ps)
	}
	return rows, nil
}

// runMechanism executes one mechanism cfg.Runs times and aggregates
// medians; time is the mean wall clock per run.
func runMechanism(s *workload.Spec, db *relation.Database, cfg Table2Config, tsensDP bool) (*Table2Row, error) {
	var errs, biases []float64
	var sens []int64
	var trueCount int64
	var total time.Duration
	for i := 0; i < cfg.Runs; i++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*7919))
		start := time.Now()
		var run *mechanism.Run
		var err error
		if tsensDP {
			run, err = mechanism.TSensDP(s.Query, db, s.Options(), s.PrimaryPrivate,
				mechanism.TSensDPConfig{Epsilon: cfg.Epsilon, Bound: s.SensBound}, rng)
		} else {
			run, err = mechanism.PrivSQL(s.Query, db, s.Options(), s.PrimaryPrivate,
				s.Policy, s.JoinOrder, mechanism.PrivSQLConfig{Epsilon: cfg.Epsilon}, rng)
		}
		if err != nil {
			return nil, err
		}
		total += time.Since(start)
		errs = append(errs, run.Error)
		biases = append(biases, run.Bias)
		sens = append(sens, run.GlobalSens)
		trueCount = run.True
	}
	name := "PrivSQL"
	if tsensDP {
		name = "TSensDP"
	}
	return &Table2Row{
		Query: s.Name, Count: trueCount, Algorithm: name,
		Error: medianF(errs), Bias: medianF(biases), GlobalSens: medianI(sens),
		Time: total / time.Duration(cfg.Runs),
	}, nil
}

func medianF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func medianI(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// ParamRow is one ℓ setting of the Section 7.3 parameter study on q*.
type ParamRow struct {
	Bound      int64
	GlobalSens int64
	Bias       float64
	Error      float64
}

// ParamStudy varies the tuple-sensitivity bound ℓ for TSensDP on the star
// query (Section 7.3: ℓ ∈ {1, 10, 30, 50, 100, 1000}).
func ParamStudy(bounds []int64, runs int, size FacebookSize, seed int64) ([]ParamRow, error) {
	if len(bounds) == 0 {
		bounds = []int64{1, 10, 30, 50, 100, 1000}
	}
	if runs == 0 {
		runs = 20
	}
	s := workload.QStar()
	db := workload.FacebookDataSized(size.Nodes, size.Edges, size.Circles, seed)
	var rows []ParamRow
	for _, b := range bounds {
		var errs, biases []float64
		var sens []int64
		for i := 0; i < runs; i++ {
			rng := rand.New(rand.NewSource(seed + int64(i)*104729))
			run, err := mechanism.TSensDP(s.Query, db, s.Options(), s.PrimaryPrivate,
				mechanism.TSensDPConfig{Epsilon: 1, Bound: b}, rng)
			if err != nil {
				return nil, err
			}
			errs = append(errs, run.Error)
			biases = append(biases, run.Bias)
			sens = append(sens, run.GlobalSens)
		}
		rows = append(rows, ParamRow{Bound: b, GlobalSens: medianI(sens), Bias: medianF(biases), Error: medianF(errs)})
	}
	return rows, nil
}
