package experiments

import (
	"strings"
	"testing"
)

func TestSelectionStudyShape(t *testing.T) {
	rows, err := SelectionStudy(0.0005, 42, []float64{1.0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	full, tenth := rows[0], rows[1]
	// The instance shrinks...
	if tenth.Count >= full.Count {
		t.Fatalf("selection did not shrink the count: %d vs %d", tenth.Count, full.Count)
	}
	// ...TSens tracks it...
	if tenth.TSensLS > full.TSensLS {
		t.Fatalf("TSens LS grew under selection: %d vs %d", tenth.TSensLS, full.TSensLS)
	}
	// ...while the static elastic bound does not move (the Section 8 claim).
	if tenth.ElasticLS != full.ElasticLS {
		t.Fatalf("elastic bound moved under selection: %d vs %d", tenth.ElasticLS, full.ElasticLS)
	}
	out := RenderSelectionStudy(rows)
	if !strings.Contains(out, "Elastic") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTopKStudyUpperBounds(t *testing.T) {
	rows, err := TopKStudy(0.0005, 42, []int{0, 1, 1000})
	if err != nil {
		t.Fatal(err)
	}
	exact := rows[0].LS
	if rows[1].LS < exact {
		t.Fatalf("k=1 bound %d below exact %d", rows[1].LS, exact)
	}
	if rows[2].LS != exact {
		t.Fatalf("k=1000 bound %d should equal exact %d", rows[2].LS, exact)
	}
	out := RenderTopKStudy(rows)
	if !strings.Contains(out, "exact") {
		t.Fatalf("render:\n%s", out)
	}
}
