package experiments

import (
	"fmt"
	"strings"
	"time"
)

// RenderFig6a formats the sensitivity-vs-scale series of Figure 6a.
func RenderFig6a(rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6a — local sensitivity, TSens vs Elastic (TPC-H)\n")
	fmt.Fprintf(&b, "%-8s %-6s %15s %15s %9s\n", "scale", "query", "TSens", "Elastic", "ratio")
	for _, r := range rows {
		ratio := "-"
		if r.TSensLS > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(r.ElasticLS)/float64(r.TSensLS))
		}
		fmt.Fprintf(&b, "%-8g %-6s %15d %15d %9s\n", r.Scale, r.Query, r.TSensLS, r.ElasticLS, ratio)
	}
	return b.String()
}

// RenderFig7 formats the runtime series of Figure 7.
func RenderFig7(rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — runtime, TSens vs Elastic vs query evaluation (TPC-H)\n")
	fmt.Fprintf(&b, "%-8s %-6s %12s %12s %12s\n", "scale", "query", "TSens", "Elastic", "evaluation")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8g %-6s %12s %12s %12s\n",
			r.Scale, r.Query, fmtDur(r.TSensTime), fmtDur(r.ElasticTime), fmtDur(r.EvalTime))
	}
	return b.String()
}

// RenderFig6b formats the per-relation table of Figure 6b.
func RenderFig6b(rows []Fig6bRow, scale float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6b — most sensitive tuples of q3 at scale %g\n", scale)
	fmt.Fprintf(&b, "%-10s %-45s %15s %18s\n", "relation", "most sensitive tuple", "tuple sens", "elastic sens")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-45s %15d %18d\n", r.Relation, r.Tuple, r.TupleSens, r.ElasticSens)
	}
	return b.String()
}

// RenderTable1 formats Table 1.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — Facebook queries: local sensitivity and runtime\n")
	fmt.Fprintf(&b, "%-7s %15s %15s %12s %12s %12s\n", "query", "TSens", "Elastic", "TSens t", "Elastic t", "eval t")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %15d %15d %12s %12s %12s\n",
			r.Query, r.TSensLS, r.ElasticLS, fmtDur(r.TSensTime), fmtDur(r.ElasticTime), fmtDur(r.EvalTime))
	}
	return b.String()
}

// RenderTable2 formats Table 2.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — DP query answering: TSensDP vs PrivSQL (medians)\n")
	fmt.Fprintf(&b, "%-7s %10s %-9s %10s %10s %12s %10s\n", "query", "|Q(D)|", "algo", "error", "bias", "global sens", "time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s %10d %-9s %9.2f%% %9.2f%% %12d %10s\n",
			r.Query, r.Count, r.Algorithm, r.Error*100, r.Bias*100, r.GlobalSens, fmtDur(r.Time))
	}
	return b.String()
}

// RenderParamStudy formats the ℓ parameter study of Section 7.3.
func RenderParamStudy(rows []ParamRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parameter study — TSensDP on q* varying the bound ℓ (medians)\n")
	fmt.Fprintf(&b, "%-8s %12s %10s %10s\n", "ℓ", "global sens", "bias", "error")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %12d %9.2f%% %9.2f%%\n", r.Bound, r.GlobalSens, r.Bias*100, r.Error*100)
	}
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
