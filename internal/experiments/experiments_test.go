package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestFig6a7SmallScales(t *testing.T) {
	rows, err := Fig6a7([]float64{0.0001, 0.0005}, 42)
	if err != nil {
		t.Fatal(err)
	}
	// q1, q2, q3 at two scales (q3 under the cap): 6 rows.
	if len(rows) != 6 {
		t.Fatalf("rows=%d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.TSensLS <= 0 {
			t.Fatalf("%s@%g: TSens LS=%d", r.Query, r.Scale, r.TSensLS)
		}
		if r.ElasticLS < r.TSensLS {
			t.Fatalf("%s@%g: elastic %d < TSens %d (must upper-bound)", r.Query, r.Scale, r.ElasticLS, r.TSensLS)
		}
	}
	// The datasets at different scales are independent draws, so LS is not
	// strictly monotone; the elastic bound, however, must track table sizes
	// and grow with scale for the path query q1.
	var q1 []ScaleRow
	for _, r := range rows {
		if r.Query == "q1" {
			q1 = append(q1, r)
		}
	}
	if len(q1) == 2 && q1[1].ElasticLS < q1[0].ElasticLS {
		t.Fatalf("q1 elastic bound decreased with scale: %d -> %d", q1[0].ElasticLS, q1[1].ElasticLS)
	}
}

func TestFig6a7SkipsQ3AboveCap(t *testing.T) {
	rows, err := Fig6a7([]float64{MaxQ3Scale * 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Query == "q3" {
			t.Fatal("q3 should be skipped above the memory cap")
		}
	}
	if len(rows) != 2 {
		t.Fatalf("rows=%d, want 2 (q1, q2)", len(rows))
	}
}

func TestFig6b(t *testing.T) {
	rows, err := Fig6b(0.0005, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows=%d, want 8 relations", len(rows))
	}
	skips := 0
	for _, r := range rows {
		if r.Skipped {
			skips++
			if !strings.Contains(r.Tuple, "skip") {
				t.Fatalf("skipped row not labeled: %+v", r)
			}
			continue
		}
		if r.ElasticSens < r.TupleSens {
			t.Fatalf("%s: elastic %d < tuple sens %d", r.Relation, r.ElasticSens, r.TupleSens)
		}
	}
	if skips != 1 {
		t.Fatalf("skips=%d, want 1 (LINEITEM)", skips)
	}
}

func TestTable1Small(t *testing.T) {
	rows, err := Table1(FacebookSize{Nodes: 40, Edges: 150, Circles: 40}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows=%d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.ElasticLS < r.TSensLS {
			t.Fatalf("%s: elastic %d < TSens %d", r.Query, r.ElasticLS, r.TSensLS)
		}
	}
}

func TestTable2Small(t *testing.T) {
	cfg := Table2Config{
		Runs:      3,
		TPCHScale: 0.0003,
		Facebook:  FacebookSize{Nodes: 40, Edges: 150, Circles: 40},
		Seed:      5,
	}
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows=%d, want 7 queries × 2 algorithms", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		ts, ps := rows[i], rows[i+1]
		if ts.Algorithm != "TSensDP" || ps.Algorithm != "PrivSQL" {
			t.Fatalf("row order wrong: %s/%s", ts.Algorithm, ps.Algorithm)
		}
		if ts.Query != ps.Query {
			t.Fatalf("query mismatch: %s vs %s", ts.Query, ps.Query)
		}
		if ts.GlobalSens < 1 || ps.GlobalSens < 1 {
			t.Fatalf("%s: GS ts=%d ps=%d", ts.Query, ts.GlobalSens, ps.GlobalSens)
		}
	}
}

func TestParamStudy(t *testing.T) {
	rows, err := ParamStudy([]int64{1, 10, 100}, 3, FacebookSize{Nodes: 40, Edges: 150, Circles: 40}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	// ℓ=1 forces GS=1.
	if rows[0].GlobalSens != 1 {
		t.Fatalf("ℓ=1 GS=%d", rows[0].GlobalSens)
	}
}

func TestRenderers(t *testing.T) {
	sr := []ScaleRow{{Query: "q1", Scale: 0.001, TSensLS: 10, ElasticLS: 100,
		TSensTime: time.Millisecond, ElasticTime: time.Microsecond, EvalTime: 2 * time.Millisecond}}
	if out := RenderFig6a(sr); !strings.Contains(out, "q1") || !strings.Contains(out, "10.0x") {
		t.Fatalf("RenderFig6a:\n%s", out)
	}
	if out := RenderFig7(sr); !strings.Contains(out, "1.00ms") {
		t.Fatalf("RenderFig7:\n%s", out)
	}
	fb := []Fig6bRow{{Relation: "REGION", Tuple: "RK(1)", TupleSens: 5, ElasticSens: 10}}
	if out := RenderFig6b(fb, 0.01); !strings.Contains(out, "REGION") {
		t.Fatalf("RenderFig6b:\n%s", out)
	}
	t1 := []Table1Row{{Query: "q4", TSensLS: 87, ElasticLS: 7524}}
	if out := RenderTable1(t1); !strings.Contains(out, "7524") {
		t.Fatalf("RenderTable1:\n%s", out)
	}
	t2 := []Table2Row{{Query: "q1", Count: 100, Algorithm: "TSensDP", Error: 0.0356, Bias: 0.0344, GlobalSens: 119}}
	if out := RenderTable2(t2); !strings.Contains(out, "3.56%") {
		t.Fatalf("RenderTable2:\n%s", out)
	}
	pr := []ParamRow{{Bound: 10, GlobalSens: 13, Bias: 0.01, Error: 0.04}}
	if out := RenderParamStudy(pr); !strings.Contains(out, "13") {
		t.Fatalf("RenderParamStudy:\n%s", out)
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:   "500ns",
		1500 * time.Nanosecond:  "1.5µs",
		2500 * time.Microsecond: "2.50ms",
		1500 * time.Millisecond: "1.500s",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v)=%q, want %q", d, got, want)
		}
	}
}
