package experiments

import (
	"fmt"
	"strings"
	"time"

	"tsens/internal/core"
	"tsens/internal/elastic"
	"tsens/internal/query"
	"tsens/internal/workload"
)

// SelectionRow is one selectivity setting of the selection study.
type SelectionRow struct {
	Fraction  float64 // fraction of ORDERS kept by the predicate
	Count     int64
	TSensLS   int64
	ElasticLS int64
}

// SelectionStudy reproduces the claim of Section 8: "even if the local
// sensitivity for a query with a selection operator is small, the elastic
// sensitivity algorithm will output the same value as for a query without
// the selection operators." It runs q1 with a predicate ORDERS.OK < c for
// decreasing selectivities: TSens tracks the shrinking instance while the
// static elastic bound does not move.
func SelectionStudy(scale float64, seed int64, fractions []float64) ([]SelectionRow, error) {
	if len(fractions) == 0 {
		fractions = []float64{1.0, 0.5, 0.1, 0.01}
	}
	db := workload.TPCHData(scale, seed)
	base := workload.Q1()
	nOrders := int64(len(db.Relation("ORDERS").Rows))
	var rows []SelectionRow
	for _, f := range fractions {
		cut := int64(float64(nOrders) * f)
		var sel map[string][]query.Predicate
		if f < 1.0 {
			sel = map[string][]query.Predicate{
				"ORDERS": {{Var: "OK", Op: query.Lt, Value: cut}},
			}
		}
		q, err := query.New(fmt.Sprintf("q1sel%g", f), base.Query.Atoms, sel)
		if err != nil {
			return nil, err
		}
		res, err := core.LocalSensitivity(q, db, core.Options{})
		if err != nil {
			return nil, err
		}
		an, err := elastic.NewAnalyzer(q, db)
		if err != nil {
			return nil, err
		}
		bound, err := an.LocalSensitivity(base.JoinOrder)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SelectionRow{Fraction: f, Count: res.Count, TSensLS: res.LS, ElasticLS: bound})
	}
	return rows, nil
}

// RenderSelectionStudy formats the selection study.
func RenderSelectionStudy(rows []SelectionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Selection study — q1 with ORDERS.OK < c (Section 8's elastic-vs-selection claim)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %15s\n", "kept", "|Q(D)|", "TSens", "Elastic")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9.1f%% %12d %12d %15d\n", r.Fraction*100, r.Count, r.TSensLS, r.ElasticLS)
	}
	return b.String()
}

// TopKRow is one k setting of the top-k approximation ablation.
type TopKRow struct {
	K       int // 0 = exact
	LS      int64
	Elapsed time.Duration
}

// TopKStudy runs the Section 5.4 approximation on the path query q1:
// truncated top/botjoins give an upper bound that tightens as k grows.
func TopKStudy(scale float64, seed int64, ks []int) ([]TopKRow, error) {
	if len(ks) == 0 {
		ks = []int{0, 1, 4, 16, 64, 256}
	}
	db := workload.TPCHData(scale, seed)
	s := workload.Q1()
	var rows []TopKRow
	for _, k := range ks {
		opts := s.Options()
		opts.TopK = k
		start := time.Now()
		res, err := core.LocalSensitivity(s.Query, db, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, TopKRow{K: k, LS: res.LS, Elapsed: time.Since(start)})
	}
	return rows, nil
}

// RenderTopKStudy formats the top-k ablation.
func RenderTopKStudy(rows []TopKRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Top-k approximation study — q1 (Section 5.4 'Efficient approximations')\n")
	fmt.Fprintf(&b, "%-8s %15s %12s\n", "k", "LS bound", "time")
	for _, r := range rows {
		k := fmt.Sprint(r.K)
		if r.K == 0 {
			k = "exact"
		}
		fmt.Fprintf(&b, "%-8s %15d %12s\n", k, r.LS, fmtDur(r.Elapsed))
	}
	return b.String()
}
