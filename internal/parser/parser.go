// Package parser parses the textual query format used by cmd/tsens:
//
//	R1(A,B), R2(B,C), R3(C,D) where R2.C >= 5, R1.A = 3
//
// An optional datalog-style head ("q(...) :-" or "q :-") is accepted and
// ignored. Atoms list relation names with variable renamings; the optional
// where-clause holds per-relation selection predicates over single
// variables with integer constants (the selection class of Section 5.4).
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"tsens/internal/query"
)

// Parse turns the textual form into a validated query named name.
func Parse(name, text string) (*query.Query, error) {
	body := text
	if i := strings.Index(text, ":-"); i >= 0 {
		body = text[i+2:]
	}
	var predPart string
	if i := strings.Index(strings.ToLower(body), "where"); i >= 0 {
		predPart = body[i+len("where"):]
		body = body[:i]
	}
	atoms, err := parseAtoms(body)
	if err != nil {
		return nil, err
	}
	sels, err := parsePredicates(predPart)
	if err != nil {
		return nil, err
	}
	return query.New(name, atoms, sels)
}

func parseAtoms(s string) ([]query.Atom, error) {
	var atoms []query.Atom
	rest := strings.TrimSpace(s)
	for rest != "" {
		open := strings.Index(rest, "(")
		if open < 0 {
			return nil, fmt.Errorf("parser: expected '(' in %q", rest)
		}
		name := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest[:open]), ","))
		name = strings.TrimSpace(strings.TrimPrefix(name, ","))
		if name == "" {
			return nil, fmt.Errorf("parser: atom with empty relation name near %q", rest)
		}
		closeIdx := strings.Index(rest, ")")
		if closeIdx < open {
			return nil, fmt.Errorf("parser: unbalanced parentheses in %q", rest)
		}
		var vars []string
		for _, v := range strings.Split(rest[open+1:closeIdx], ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				return nil, fmt.Errorf("parser: empty variable in atom %s", name)
			}
			vars = append(vars, v)
		}
		atoms = append(atoms, query.Atom{Relation: name, Vars: vars})
		rest = strings.TrimSpace(rest[closeIdx+1:])
		rest = strings.TrimSpace(strings.TrimPrefix(rest, ","))
	}
	if len(atoms) == 0 {
		return nil, fmt.Errorf("parser: no atoms")
	}
	return atoms, nil
}

var ops = []struct {
	text string
	op   query.Op
}{
	// Longest first so "<=" is not parsed as "<".
	{"!=", query.Ne}, {"<>", query.Ne}, {"<=", query.Le}, {">=", query.Ge},
	{"=", query.Eq}, {"<", query.Lt}, {">", query.Gt},
}

func parsePredicates(s string) (map[string][]query.Predicate, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	out := make(map[string][]query.Predicate)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		opIdx, opLen := -1, 0
		var op query.Op
		for _, cand := range ops {
			if i := strings.Index(part, cand.text); i >= 0 {
				opIdx, opLen, op = i, len(cand.text), cand.op
				break
			}
		}
		if opIdx < 0 {
			return nil, fmt.Errorf("parser: no comparison operator in %q", part)
		}
		lhs := strings.TrimSpace(part[:opIdx])
		rhs := strings.TrimSpace(part[opIdx+opLen:])
		dot := strings.Index(lhs, ".")
		if dot < 0 {
			return nil, fmt.Errorf("parser: predicate %q must use Relation.Var", part)
		}
		rel, v := strings.TrimSpace(lhs[:dot]), strings.TrimSpace(lhs[dot+1:])
		val, err := strconv.ParseInt(rhs, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("parser: predicate %q: constant %q is not an integer", part, rhs)
		}
		out[rel] = append(out[rel], query.Predicate{Var: v, Op: op, Value: val})
	}
	return out, nil
}
