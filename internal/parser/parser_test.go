package parser

import (
	"testing"

	"tsens/internal/query"
)

func TestParseBasic(t *testing.T) {
	q, err := Parse("q", "R1(A,B), R2(B,C)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 2 || q.Atoms[0].Relation != "R1" || q.Atoms[1].Vars[1] != "C" {
		t.Fatalf("atoms=%v", q.Atoms)
	}
}

func TestParseWithHead(t *testing.T) {
	q, err := Parse("q", "q(A,B,C) :- R1(A,B), R2(B,C)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 2 {
		t.Fatalf("atoms=%v", q.Atoms)
	}
}

func TestParseWithPredicates(t *testing.T) {
	q, err := Parse("q", "R1(A,B), R2(B,C) where R2.C >= 5, R1.A = 3, R2.B != 7")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Selections["R2"]) != 2 || len(q.Selections["R1"]) != 1 {
		t.Fatalf("selections=%v", q.Selections)
	}
	p := q.Selections["R2"][0]
	if p.Var != "C" || p.Op != query.Ge || p.Value != 5 {
		t.Fatalf("predicate=%v", p)
	}
	if q.Selections["R2"][1].Op != query.Ne {
		t.Fatalf("predicate=%v", q.Selections["R2"][1])
	}
}

func TestParseOperatorVariants(t *testing.T) {
	cases := map[string]query.Op{
		"R1.A = 1":  query.Eq,
		"R1.A != 1": query.Ne,
		"R1.A <> 1": query.Ne,
		"R1.A < 1":  query.Lt,
		"R1.A <= 1": query.Le,
		"R1.A > 1":  query.Gt,
		"R1.A >= 1": query.Ge,
	}
	for pred, want := range cases {
		q, err := Parse("q", "R1(A,B), R2(B,C) where "+pred)
		if err != nil {
			t.Fatalf("%q: %v", pred, err)
		}
		if got := q.Selections["R1"][0].Op; got != want {
			t.Fatalf("%q parsed as %v, want %v", pred, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"R1",
		"R1(A,B), R1(B,C)",              // self-join
		"(A,B)",                         // missing relation name
		"R1(A,)",                        // empty variable
		"R1(A,B) where C >= 5",          // predicate without relation
		"R1(A,B) where R1.A ~ 5",        // bad operator
		"R1(A,B) where R1.A = five",     // bad constant
		"R1(A,B) where R9.A = 5",        // unknown relation
		"R1(A,B), R2(B,C) where R1.Z=1", // unknown variable
	}
	for _, text := range bad {
		if _, err := Parse("q", text); err == nil {
			t.Errorf("accepted %q", text)
		}
	}
}

func TestParseNegativeConstant(t *testing.T) {
	q, err := Parse("q", "R1(A,B), R2(B,C) where R1.A = -5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Selections["R1"][0].Value != -5 {
		t.Fatalf("value=%d", q.Selections["R1"][0].Value)
	}
}
