// Package dp provides the differential-privacy primitives used by the
// TSensDP and PrivSQL mechanisms of Section 6: a seeded Laplace sampler and
// the sparse vector technique (SVT / AboveThreshold, following Lyu, Su, Li:
// "Understanding the sparse vector technique for differential privacy").
package dp

import (
	"fmt"
	"math"
	"math/rand"
)

// Lap draws from the Laplace distribution with mean 0 and the given scale
// b: density ∝ exp(−|x|/b). A non-positive scale returns 0, the ε→∞ limit.
func Lap(rng *rand.Rand, scale float64) float64 {
	if scale <= 0 {
		return 0
	}
	u := rng.Float64() - 0.5
	// Inverse CDF: x = −b·sign(u)·ln(1−2|u|).
	if u < 0 {
		return scale * math.Log(1-2*(-u))
	}
	return -scale * math.Log(1-2*u)
}

// LaplaceMechanism releases value + Lap(sensitivity/epsilon), the
// ε-differentially-private answer for a query with the given global
// sensitivity (Definition 6.3).
func LaplaceMechanism(rng *rand.Rand, value float64, sensitivity, epsilon float64) (float64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("dp: epsilon must be positive, got %g", epsilon)
	}
	if sensitivity < 0 {
		return 0, fmt.Errorf("dp: sensitivity must be non-negative, got %g", sensitivity)
	}
	return value + Lap(rng, sensitivity/epsilon), nil
}

// AboveThreshold runs the standard SVT: it scans queries of global
// sensitivity 1 and returns the index of the first whose noisy value
// exceeds the noisy threshold, or -1 when none does. The total privacy cost
// is epsilon regardless of the number of queries scanned.
func AboveThreshold(rng *rand.Rand, epsilon float64, threshold float64, queries []float64) (int, error) {
	if epsilon <= 0 {
		return -1, fmt.Errorf("dp: epsilon must be positive, got %g", epsilon)
	}
	rho := Lap(rng, 2/epsilon)
	for i, q := range queries {
		nu := Lap(rng, 4/epsilon)
		if q+nu >= threshold+rho {
			return i, nil
		}
	}
	return -1, nil
}
