package dp

import (
	"math"
	"math/rand"
	"testing"
)

func TestLapZeroScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if Lap(rng, 0) != 0 || Lap(rng, -1) != 0 {
		t.Fatal("non-positive scale must return 0")
	}
}

func TestLapMomentsAndSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 200000
	const scale = 3.0
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		x := Lap(rng, scale)
		sum += x
		sumAbs += math.Abs(x)
	}
	mean := sum / n
	meanAbs := sumAbs / n
	if math.Abs(mean) > 0.05*scale {
		t.Fatalf("mean=%g, want ≈0", mean)
	}
	// E|X| = b for Laplace(b).
	if math.Abs(meanAbs-scale) > 0.05*scale {
		t.Fatalf("E|X|=%g, want ≈%g", meanAbs, scale)
	}
}

func TestLapTailProbability(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 100000
	const scale = 1.0
	count := 0
	for i := 0; i < n; i++ {
		if math.Abs(Lap(rng, scale)) > 2*scale {
			count++
		}
	}
	// P(|X| > 2b) = e^{-2} ≈ 0.1353.
	p := float64(count) / n
	if math.Abs(p-math.Exp(-2)) > 0.01 {
		t.Fatalf("tail probability=%g, want ≈%g", p, math.Exp(-2))
	}
}

func TestLaplaceMechanism(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v, err := LaplaceMechanism(rng, 100, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v != 100 {
		t.Fatalf("zero sensitivity must be noiseless, got %g", v)
	}
	if _, err := LaplaceMechanism(rng, 1, 1, 0); err == nil {
		t.Fatal("epsilon=0 accepted")
	}
	if _, err := LaplaceMechanism(rng, 1, -1, 1); err == nil {
		t.Fatal("negative sensitivity accepted")
	}
	// With high epsilon the noise is tiny.
	v, err = LaplaceMechanism(rng, 100, 1, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-100) > 1e-3 {
		t.Fatalf("high-epsilon answer=%g", v)
	}
}

func TestAboveThresholdFindsClearSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Queries far below threshold, then one far above.
	qs := []float64{-1000, -1000, -1000, 1000, -1000}
	hits := 0
	for trial := 0; trial < 100; trial++ {
		i, err := AboveThreshold(rng, 1.0, 0, qs)
		if err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			hits++
		}
	}
	if hits < 95 {
		t.Fatalf("clear signal found only %d/100 times", hits)
	}
}

func TestAboveThresholdNone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	qs := []float64{-1000, -1000}
	i, err := AboveThreshold(rng, 1.0, 0, qs)
	if err != nil {
		t.Fatal(err)
	}
	if i != -1 {
		t.Fatalf("got %d, want -1", i)
	}
	if _, err := AboveThreshold(rng, 0, 0, qs); err == nil {
		t.Fatal("epsilon=0 accepted")
	}
}

func TestAboveThresholdDeterministicWithSeed(t *testing.T) {
	qs := []float64{-5, 2, 8, -1}
	a, _ := AboveThreshold(rand.New(rand.NewSource(7)), 1.0, 0, qs)
	b, _ := AboveThreshold(rand.New(rand.NewSource(7)), 1.0, 0, qs)
	if a != b {
		t.Fatal("same seed gave different SVT outcomes")
	}
}
