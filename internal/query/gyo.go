package query

import "fmt"

// GYO runs the Graham–Yu–Özsoyoğlu decomposition (Section 2.2) on the
// query's hypergraph: vertices are variables, hyperedges are atoms. It
// repeatedly removes ears — hyperedges whose vertices are either exclusive
// to that edge or fully contained in a single other edge — recording for
// each removed ear its witness edge, which becomes its parent in the join
// tree.
//
// It returns parent[i] = index of atom i's parent (-1 for roots; a
// disconnected hypergraph yields one root per component) and whether the
// query is acyclic (the decomposition emptied the hypergraph).
//
// Ties are broken deterministically: the lowest-index removable ear is
// removed first and its lowest-index witness is chosen, so repeated runs on
// the same query produce the same tree.
func GYO(atoms []Atom) (parent []int, acyclic bool) {
	n := len(atoms)
	parent = make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	remaining := n

	// occurrences[v] = number of alive edges containing v.
	occ := make(map[string]int)
	for _, a := range atoms {
		for _, v := range a.Vars {
			occ[v]++
		}
	}

	for remaining > 0 {
		removed := false
		for i := 0; i < n && !removed; i++ {
			if !alive[i] {
				continue
			}
			// Collect the vertices of i that also occur elsewhere.
			var shared []string
			for _, v := range atoms[i].Vars {
				if occ[v] > 1 {
					shared = append(shared, v)
				}
			}
			if len(shared) == 0 {
				// All vertices exclusive: i is an isolated ear (root of its
				// component, or the final edge).
				removeEdge(atoms, alive, occ, i)
				remaining--
				removed = true
				break
			}
			// Find a witness containing all shared vertices.
			for j := 0; j < n; j++ {
				if j == i || !alive[j] {
					continue
				}
				if containsVars(atoms[j].Vars, shared) {
					parent[i] = j
					removeEdge(atoms, alive, occ, i)
					remaining--
					removed = true
					break
				}
			}
		}
		if !removed {
			return parent, false // stuck: cyclic hypergraph
		}
	}
	return parent, true
}

func removeEdge(atoms []Atom, alive []bool, occ map[string]int, i int) {
	alive[i] = false
	for _, v := range atoms[i].Vars {
		occ[v]--
	}
}

func containsVars(super []string, sub []string) bool {
	in := make(map[string]bool, len(super))
	for _, v := range super {
		in[v] = true
	}
	for _, v := range sub {
		if !in[v] {
			return false
		}
	}
	return true
}

// IsAcyclic reports whether the query hypergraph is α-acyclic under GYO.
func IsAcyclic(atoms []Atom) bool {
	_, ok := GYO(atoms)
	return ok
}

// Node is one vertex of a join tree/forest; it corresponds to one atom.
type Node struct {
	Atom     Atom
	Index    int // index into the query's atom list
	Parent   *Node
	Children []*Node
}

// Siblings returns the node's neighbors N(R) = C(p(R)) \ {R} (Section 5.1).
func (n *Node) Siblings() []*Node {
	if n.Parent == nil {
		return nil
	}
	var out []*Node
	for _, c := range n.Parent.Children {
		if c != n {
			out = append(out, c)
		}
	}
	return out
}

// Degree returns the max-degree contribution of this node: number of
// children plus one for the parent when present (Theorem 5.1).
func (n *Node) Degree() int {
	d := len(n.Children)
	if n.Parent != nil {
		d++
	}
	return d
}

// Tree is a join forest built from a GYO decomposition. For a connected
// acyclic query it has a single root; a disconnected query yields one root
// per connected component (Section 5.4, "Disconnected join trees").
type Tree struct {
	Nodes []*Node
	Roots []*Node
}

// BuildJoinTree runs GYO and materializes the join forest. It fails when
// the query is cyclic; use the ghd package for those.
func BuildJoinTree(atoms []Atom) (*Tree, error) {
	parent, ok := GYO(atoms)
	if !ok {
		return nil, fmt.Errorf("query is cyclic: no GYO decomposition exists")
	}
	t := &Tree{Nodes: make([]*Node, len(atoms))}
	for i, a := range atoms {
		t.Nodes[i] = &Node{Atom: a, Index: i}
	}
	for i, p := range parent {
		if p < 0 {
			t.Roots = append(t.Roots, t.Nodes[i])
			continue
		}
		t.Nodes[i].Parent = t.Nodes[p]
		t.Nodes[p].Children = append(t.Nodes[p].Children, t.Nodes[i])
	}
	return t, nil
}

// MaxDegree returns the maximum degree d over nodes, the parameter of the
// O(m·d·n^d·log n) bound in Theorem 5.1.
func (t *Tree) MaxDegree() int {
	d := 0
	for _, n := range t.Nodes {
		if x := n.Degree(); x > d {
			d = x
		}
	}
	return d
}

// PostOrder returns the nodes of the forest children-first (the order in
// which botjoins are computed).
func (t *Tree) PostOrder() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		for _, c := range n.Children {
			walk(c)
		}
		out = append(out, n)
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return out
}

// PreOrder returns the nodes parents-first (the order in which topjoins are
// computed).
func (t *Tree) PreOrder() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return out
}

// ConnectorVars returns the variables a node shares with its parent,
// A_i ∩ A_p(i); nil for roots.
func (n *Node) ConnectorVars() []string {
	if n.Parent == nil {
		return nil
	}
	return intersectVars(n.Atom.Vars, n.Parent.Atom.Vars)
}

func intersectVars(a, b []string) []string {
	in := make(map[string]bool, len(b))
	for _, v := range b {
		in[v] = true
	}
	var out []string
	for _, v := range a {
		if in[v] {
			out = append(out, v)
		}
	}
	return out
}

// IsDoublyAcyclic reports whether the join tree witnesses the doubly-acyclic
// property of Section 5.3: for every node, the hypergraph formed by the
// connector variable sets of its parent edge and child edges is itself
// acyclic, so the multiplicity-table join T^i is an acyclic join.
func (t *Tree) IsDoublyAcyclic() bool {
	for _, n := range t.Nodes {
		var pseudo []Atom
		if n.Parent != nil {
			if conn := n.ConnectorVars(); len(conn) > 0 {
				pseudo = append(pseudo, Atom{Relation: "parent", Vars: conn})
			}
		}
		for i, c := range n.Children {
			if conn := c.ConnectorVars(); len(conn) > 0 {
				pseudo = append(pseudo, Atom{Relation: fmt.Sprintf("child%d", i), Vars: conn})
			}
		}
		if len(pseudo) <= 1 {
			continue
		}
		if !IsAcyclic(pseudo) {
			return false
		}
	}
	return true
}
