// Package query models full conjunctive queries without self-joins — the
// query class of Tao et al. (SIGMOD 2020) — together with their hypergraph
// structure: GYO decomposition, acyclicity testing, join-tree construction
// (Section 2.2), path-shape detection (Section 4), and the doubly-acyclic
// test (Section 5.3).
package query

import (
	"fmt"
	"strings"

	"tsens/internal/relation"
)

// Atom is one relational atom R(x1,…,xk) in the body of a conjunctive
// query. Vars positionally rename the columns of the underlying database
// relation to query variables; natural-join semantics apply to variables
// with equal names across atoms.
type Atom struct {
	Relation string
	Vars     []string
}

// String renders the atom in datalog style.
func (a Atom) String() string {
	return fmt.Sprintf("%s(%s)", a.Relation, strings.Join(a.Vars, ","))
}

// Op is a comparison operator for selection predicates.
type Op int

// Comparison operators supported in selection predicates.
const (
	Eq Op = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// Eval applies the operator to (v, c).
func (o Op) Eval(v, c int64) bool {
	switch o {
	case Eq:
		return v == c
	case Ne:
		return v != c
	case Lt:
		return v < c
	case Le:
		return v <= c
	case Gt:
		return v > c
	case Ge:
		return v >= c
	}
	return false
}

// Predicate is a per-tuple selection condition on a single variable
// (Section 5.4 "Selections": conditions that apply to each tuple
// individually in one relation).
type Predicate struct {
	Var   string
	Op    Op
	Value int64
}

// String renders "Var op Value".
func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %d", p.Var, p.Op, p.Value)
}

// Query is a full conjunctive counting query without self-joins:
//
//	Q(vars) :- R1(vars1), …, Rm(varsm) [, selections]
//
// The count is over bag semantics (Section 2).
type Query struct {
	Name       string
	Atoms      []Atom
	Selections map[string][]Predicate // keyed by relation name
}

// New builds and validates a query: at least one atom, no self-joins
// (duplicate relation names), non-empty variable names, no repeated variable
// within one atom, and all selection predicates referring to variables of
// the named atom.
func New(name string, atoms []Atom, selections map[string][]Predicate) (*Query, error) {
	if len(atoms) == 0 {
		return nil, fmt.Errorf("query %s: no atoms", name)
	}
	seenRel := make(map[string]bool, len(atoms))
	for _, a := range atoms {
		if a.Relation == "" {
			return nil, fmt.Errorf("query %s: atom with empty relation name", name)
		}
		if seenRel[a.Relation] {
			return nil, fmt.Errorf("query %s: self-join on %s is not supported", name, a.Relation)
		}
		seenRel[a.Relation] = true
		seenVar := make(map[string]bool, len(a.Vars))
		for _, v := range a.Vars {
			if v == "" {
				return nil, fmt.Errorf("query %s: atom %s has an empty variable", name, a.Relation)
			}
			if seenVar[v] {
				return nil, fmt.Errorf("query %s: atom %s repeats variable %q", name, a.Relation, v)
			}
			seenVar[v] = true
		}
	}
	for rel, preds := range selections {
		atom, ok := findAtom(atoms, rel)
		if !ok {
			return nil, fmt.Errorf("query %s: selection on unknown relation %s", name, rel)
		}
		for _, p := range preds {
			if !hasVar(atom.Vars, p.Var) {
				return nil, fmt.Errorf("query %s: selection %v refers to variable absent from %s", name, p, rel)
			}
		}
	}
	return &Query{Name: name, Atoms: atoms, Selections: selections}, nil
}

// MustNew is New but panics on error; intended for tests and static
// workload definitions.
func MustNew(name string, atoms []Atom, selections map[string][]Predicate) *Query {
	q, err := New(name, atoms, selections)
	if err != nil {
		panic(err)
	}
	return q
}

func findAtom(atoms []Atom, rel string) (Atom, bool) {
	for _, a := range atoms {
		if a.Relation == rel {
			return a, true
		}
	}
	return Atom{}, false
}

func hasVar(vars []string, v string) bool {
	for _, x := range vars {
		if x == v {
			return true
		}
	}
	return false
}

// Atom returns the atom over the named relation.
func (q *Query) Atom(rel string) (Atom, bool) { return findAtom(q.Atoms, rel) }

// Vars returns all distinct variables in body order of first occurrence.
func (q *Query) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// VarOccurrences counts, for every variable, the number of atoms it appears
// in. Variables occurring once are ignored by the sensitivity algorithms and
// extrapolated afterwards (Section 5.4, "Other").
func (q *Query) VarOccurrences() map[string]int {
	occ := make(map[string]int)
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			occ[v]++
		}
	}
	return occ
}

// String renders the query as a datalog rule.
func (q *Query) String() string {
	parts := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		parts[i] = a.String()
	}
	s := fmt.Sprintf("%s() :- %s", q.Name, strings.Join(parts, ", "))
	for rel, preds := range q.Selections {
		for _, p := range preds {
			s += fmt.Sprintf(", σ[%s: %s]", rel, p)
		}
	}
	return s
}

// Bind validates the query against a database: every atom's relation must
// exist and have matching arity. It returns the bound relations in atom
// order.
func (q *Query) Bind(db *relation.Database) ([]*relation.Relation, error) {
	out := make([]*relation.Relation, len(q.Atoms))
	for i, a := range q.Atoms {
		r := db.Relation(a.Relation)
		if r == nil {
			return nil, fmt.Errorf("query %s: database has no relation %s", q.Name, a.Relation)
		}
		if len(r.Attrs) != len(a.Vars) {
			return nil, fmt.Errorf("query %s: atom %s has arity %d but relation has %d columns",
				q.Name, a.Relation, len(a.Vars), len(r.Attrs))
		}
		out[i] = r
	}
	return out, nil
}

// ApplySelections returns, for an atom, a row filter implementing the
// query's selection predicates over that relation's tuples (positional,
// following the atom's variable renaming). A nil filter means no predicates.
func (q *Query) ApplySelections(a Atom) func(relation.Tuple) bool {
	preds := q.Selections[a.Relation]
	if len(preds) == 0 {
		return nil
	}
	// Precompute variable positions.
	type bound struct {
		pos int
		op  Op
		val int64
	}
	bounds := make([]bound, 0, len(preds))
	for _, p := range preds {
		for i, v := range a.Vars {
			if v == p.Var {
				bounds = append(bounds, bound{i, p.Op, p.Value})
			}
		}
	}
	return func(t relation.Tuple) bool {
		for _, b := range bounds {
			if !b.op.Eval(t[b.pos], b.val) {
				return false
			}
		}
		return true
	}
}
