package query

import (
	"fmt"
	"strings"
)

// Render draws the join forest as an indented tree with connector
// annotations, e.g.
//
//	R1(A,B,C)
//	├── R2(A,B,D)  [A B]
//	├── R3(A,E)  [A]
//	└── R4(B,F)  [B]
//
// used by cmd/tsens -explain and in test failure messages.
func (t *Tree) Render() string {
	var b strings.Builder
	for i, root := range t.Roots {
		if i > 0 {
			b.WriteString("\n")
		}
		renderNode(&b, root, "", true, i == len(t.Roots)-1)
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, prefix string, isRoot, isLast bool) {
	label := n.Atom.String()
	if conn := n.ConnectorVars(); len(conn) > 0 {
		label += fmt.Sprintf("  [%s]", strings.Join(conn, " "))
	}
	if isRoot {
		fmt.Fprintf(b, "%s\n", label)
	} else {
		branch := "├── "
		if isLast {
			branch = "└── "
		}
		fmt.Fprintf(b, "%s%s%s\n", prefix, branch, label)
	}
	childPrefix := prefix
	if !isRoot {
		if isLast {
			childPrefix += "    "
		} else {
			childPrefix += "│   "
		}
	}
	for i, c := range n.Children {
		renderNode(b, c, childPrefix, false, i == len(n.Children)-1)
	}
}
