package query

// PathOrder detects whether the query is a path join query in the sense of
// Section 4 — after merging multi-variable connectors, the body can be
// ordered R1(A0,A1), R2(A1,A2), …, Rm(Am-1,Am) — and if so returns the atom
// indexes in path order.
//
// The structural conditions checked are:
//   - every variable occurs in at most two atoms;
//   - the atom-adjacency graph (atoms sharing a variable) is a simple path;
//   - shared variables only connect atoms adjacent on that path (implied by
//     the first two conditions).
//
// A single-atom query counts as a (trivial) path. The returned order starts
// at the endpoint with the lowest atom index, making the output
// deterministic.
func PathOrder(atoms []Atom) ([]int, bool) {
	n := len(atoms)
	if n == 0 {
		return nil, false
	}
	if n == 1 {
		return []int{0}, true
	}
	// Variables may appear in at most two atoms.
	occ := make(map[string][]int)
	for i, a := range atoms {
		for _, v := range a.Vars {
			occ[v] = append(occ[v], i)
		}
	}
	adj := make([][]int, n)
	addEdge := func(i, j int) {
		for _, x := range adj[i] {
			if x == j {
				return
			}
		}
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}
	for _, ids := range occ {
		if len(ids) > 2 {
			return nil, false
		}
		if len(ids) == 2 {
			addEdge(ids[0], ids[1])
		}
	}
	// Degree check: exactly two endpoints of degree 1, rest degree 2.
	endpoints := 0
	first := -1
	for i := range adj {
		switch len(adj[i]) {
		case 1:
			endpoints++
			if first < 0 {
				first = i
			}
		case 2:
		default:
			return nil, false
		}
	}
	if endpoints != 2 {
		return nil, false
	}
	// Walk the path from the lowest-index endpoint.
	order := make([]int, 0, n)
	prev, cur := -1, first
	for {
		order = append(order, cur)
		next := -1
		for _, x := range adj[cur] {
			if x != prev {
				next = x
				break
			}
		}
		if next < 0 {
			break
		}
		prev, cur = cur, next
	}
	if len(order) != n {
		return nil, false // disconnected
	}
	return order, true
}
