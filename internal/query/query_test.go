package query

import (
	"reflect"
	"testing"

	"tsens/internal/relation"
)

func atoms(specs ...[2]interface{}) []Atom {
	var out []Atom
	for _, s := range specs {
		out = append(out, Atom{Relation: s[0].(string), Vars: s[1].([]string)})
	}
	return out
}

// The running example of Figure 1: Q(A,B,C,D,E,F) :- R1(A,B,C), R2(A,B,D),
// R3(A,E), R4(B,F).
func figure1Atoms() []Atom {
	return []Atom{
		{Relation: "R1", Vars: []string{"A", "B", "C"}},
		{Relation: "R2", Vars: []string{"A", "B", "D"}},
		{Relation: "R3", Vars: []string{"A", "E"}},
		{Relation: "R4", Vars: []string{"B", "F"}},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("q", nil, nil); err == nil {
		t.Fatal("empty body accepted")
	}
	selfJoin := []Atom{{Relation: "R", Vars: []string{"A"}}, {Relation: "R", Vars: []string{"B"}}}
	if _, err := New("q", selfJoin, nil); err == nil {
		t.Fatal("self-join accepted")
	}
	repeated := []Atom{{Relation: "R", Vars: []string{"A", "A"}}}
	if _, err := New("q", repeated, nil); err == nil {
		t.Fatal("repeated variable in atom accepted")
	}
	bad := map[string][]Predicate{"Z": {{Var: "A", Op: Eq, Value: 1}}}
	if _, err := New("q", figure1Atoms(), bad); err == nil {
		t.Fatal("selection on unknown relation accepted")
	}
	bad2 := map[string][]Predicate{"R1": {{Var: "Z", Op: Eq, Value: 1}}}
	if _, err := New("q", figure1Atoms(), bad2); err == nil {
		t.Fatal("selection on unknown variable accepted")
	}
	q, err := New("q", figure1Atoms(), map[string][]Predicate{"R1": {{Var: "C", Op: Le, Value: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Atoms) != 4 {
		t.Fatal("atoms lost")
	}
}

func TestVarsAndOccurrences(t *testing.T) {
	q := MustNew("q", figure1Atoms(), nil)
	if got := q.Vars(); !reflect.DeepEqual(got, []string{"A", "B", "C", "D", "E", "F"}) {
		t.Fatalf("Vars=%v", got)
	}
	occ := q.VarOccurrences()
	if occ["A"] != 3 || occ["B"] != 3 || occ["C"] != 1 || occ["F"] != 1 {
		t.Fatalf("occurrences=%v", occ)
	}
}

func TestOpEval(t *testing.T) {
	cases := []struct {
		op   Op
		v, c int64
		want bool
	}{
		{Eq, 1, 1, true}, {Eq, 1, 2, false},
		{Ne, 1, 2, true}, {Ne, 2, 2, false},
		{Lt, 1, 2, true}, {Lt, 2, 2, false},
		{Le, 2, 2, true}, {Le, 3, 2, false},
		{Gt, 3, 2, true}, {Gt, 2, 2, false},
		{Ge, 2, 2, true}, {Ge, 1, 2, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.v, c.c); got != c.want {
			t.Errorf("%d %s %d = %v, want %v", c.v, c.op, c.c, got, c.want)
		}
	}
}

func TestBind(t *testing.T) {
	db := relation.MustNewDatabase(
		relation.MustNew("R1", []string{"x", "y", "z"}, nil),
		relation.MustNew("R2", []string{"x", "y", "w"}, nil),
		relation.MustNew("R3", []string{"x", "e"}, nil),
		relation.MustNew("R4", []string{"y", "f"}, nil),
	)
	q := MustNew("q", figure1Atoms(), nil)
	rels, err := q.Bind(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 4 || rels[0].Name != "R1" {
		t.Fatalf("Bind=%v", rels)
	}
	// Arity mismatch.
	db2 := relation.MustNewDatabase(relation.MustNew("R1", []string{"x"}, nil))
	q2 := MustNew("q2", []Atom{{Relation: "R1", Vars: []string{"A", "B"}}}, nil)
	if _, err := q2.Bind(db2); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	// Missing relation.
	q3 := MustNew("q3", []Atom{{Relation: "Nope", Vars: []string{"A"}}}, nil)
	if _, err := q3.Bind(db); err == nil {
		t.Fatal("missing relation accepted")
	}
}

func TestApplySelections(t *testing.T) {
	q := MustNew("q", figure1Atoms(), map[string][]Predicate{
		"R1": {{Var: "C", Op: Ge, Value: 10}, {Var: "A", Op: Eq, Value: 1}},
	})
	a, _ := q.Atom("R1")
	f := q.ApplySelections(a)
	if f == nil {
		t.Fatal("expected a filter")
	}
	if !f(relation.Tuple{1, 0, 10}) {
		t.Fatal("satisfying tuple rejected")
	}
	if f(relation.Tuple{1, 0, 9}) || f(relation.Tuple{2, 0, 10}) {
		t.Fatal("violating tuple accepted")
	}
	b, _ := q.Atom("R2")
	if q.ApplySelections(b) != nil {
		t.Fatal("unexpected filter for atom without predicates")
	}
}

func TestGYOFigure1(t *testing.T) {
	// Figure 2: R3(AE), R4(BF) and R2(ABD) are ears of R1(ABC).
	tree, err := BuildJoinTree(figure1Atoms())
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("roots=%d", len(tree.Roots))
	}
	// All non-root nodes must attach to an atom containing their shared vars.
	for _, n := range tree.Nodes {
		if n.Parent == nil {
			continue
		}
		conn := n.ConnectorVars()
		if len(conn) == 0 {
			t.Fatalf("node %s has empty connector", n.Atom)
		}
	}
	checkJoinTreeProperty(t, figure1Atoms(), tree)
	if !IsAcyclic(figure1Atoms()) {
		t.Fatal("Figure 1 query must be acyclic")
	}
}

func TestGYOCyclicTriangle(t *testing.T) {
	tri := []Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "A"}},
	}
	if IsAcyclic(tri) {
		t.Fatal("triangle reported acyclic")
	}
	if _, err := BuildJoinTree(tri); err == nil {
		t.Fatal("BuildJoinTree accepted a cyclic query")
	}
}

func TestGYOFourCycle(t *testing.T) {
	cyc := []Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
		{Relation: "R4", Vars: []string{"D", "A"}},
	}
	if IsAcyclic(cyc) {
		t.Fatal("4-cycle reported acyclic")
	}
}

func TestGYOPath(t *testing.T) {
	path := []Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
	}
	tree, err := BuildJoinTree(path)
	if err != nil {
		t.Fatal(err)
	}
	if tree.MaxDegree() > 2 {
		t.Fatalf("path max degree=%d", tree.MaxDegree())
	}
	if !tree.IsDoublyAcyclic() {
		t.Fatal("path query must be doubly acyclic")
	}
}

func TestGYOStarAcyclicTriangleJoinNotDoubly(t *testing.T) {
	// The star query q* of the paper: R△(A,B,C) with R1(A,B), R2(B,C),
	// R3(C,A). Acyclic (every Ri is an ear of R△) but NOT doubly acyclic:
	// T^{R△} joins three edge tables forming a triangle (Section 5.2's
	// hard-node example).
	star := []Atom{
		{Relation: "Rt", Vars: []string{"A", "B", "C"}},
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "A"}},
	}
	tree, err := BuildJoinTree(star)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("roots=%d", len(tree.Roots))
	}
	checkJoinTreeProperty(t, star, tree)
	if tree.IsDoublyAcyclic() {
		t.Fatal("star-over-triangle must not be doubly acyclic")
	}
}

// checkJoinTreeProperty verifies the defining property of a join tree
// (Section 2.2): for any two atoms sharing a variable, every node on the
// unique tree path between them contains that variable.
func checkJoinTreeProperty(t *testing.T, atoms []Atom, tree *Tree) {
	t.Helper()
	// Ancestor chains let us find tree paths without extra structure.
	pathUp := func(n *Node) []*Node {
		var out []*Node
		for x := n; x != nil; x = x.Parent {
			out = append(out, x)
		}
		return out
	}
	treePath := func(a, b *Node) []*Node {
		upA := pathUp(a)
		seen := map[*Node]int{}
		for i, x := range upA {
			seen[x] = i
		}
		var upB []*Node
		for x := b; x != nil; x = x.Parent {
			if i, ok := seen[x]; ok {
				return append(upA[:i+1], upB...)
			}
			upB = append(upB, x)
		}
		return nil // different components
	}
	hasV := func(n *Node, v string) bool {
		for _, x := range n.Atom.Vars {
			if x == v {
				return true
			}
		}
		return false
	}
	for i := range atoms {
		for j := i + 1; j < len(atoms); j++ {
			for _, v := range atoms[i].Vars {
				if !hasV(tree.Nodes[j], v) {
					continue
				}
				p := treePath(tree.Nodes[i], tree.Nodes[j])
				if p == nil {
					t.Fatalf("atoms %s and %s share %s but are in different components", atoms[i], atoms[j], v)
				}
				for _, n := range p {
					if !hasV(n, v) {
						t.Fatalf("join-tree property violated: %s missing from %s on path %s—%s",
							v, n.Atom, atoms[i], atoms[j])
					}
				}
			}
		}
	}
}

func TestDisconnectedForest(t *testing.T) {
	atoms := []Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B"}},
		{Relation: "R3", Vars: []string{"X", "Y"}},
	}
	tree, err := BuildJoinTree(atoms)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Roots) != 2 {
		t.Fatalf("roots=%d, want 2 components", len(tree.Roots))
	}
}

func TestTreeTraversals(t *testing.T) {
	tree, err := BuildJoinTree(figure1Atoms())
	if err != nil {
		t.Fatal(err)
	}
	post := tree.PostOrder()
	pre := tree.PreOrder()
	if len(post) != 4 || len(pre) != 4 {
		t.Fatal("traversal length wrong")
	}
	// Post-order visits children before parents.
	seen := map[*Node]bool{}
	for _, n := range post {
		for _, c := range n.Children {
			if !seen[c] {
				t.Fatal("post-order visited parent before child")
			}
		}
		seen[n] = true
	}
	// Pre-order visits parents before children.
	seen = map[*Node]bool{}
	for _, n := range pre {
		if n.Parent != nil && !seen[n.Parent] {
			t.Fatal("pre-order visited child before parent")
		}
		seen[n] = true
	}
}

func TestSiblings(t *testing.T) {
	tree, err := BuildJoinTree(figure1Atoms())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tree.Nodes {
		if n.Parent == nil {
			if n.Siblings() != nil {
				t.Fatal("root has siblings")
			}
			continue
		}
		for _, s := range n.Siblings() {
			if s == n {
				t.Fatal("node is its own sibling")
			}
			if s.Parent != n.Parent {
				t.Fatal("sibling with different parent")
			}
		}
	}
}

func TestPathOrder(t *testing.T) {
	path := []Atom{
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
	}
	order, ok := PathOrder(path)
	if !ok {
		t.Fatal("path not detected")
	}
	// Expected chain: R1 - R2 - R3 or its reverse starting at the
	// lower-index endpoint (R2 is index 0 but has degree 2; endpoints are
	// indexes 1 and 2; lowest endpoint is 1 = R1).
	want := []int{1, 0, 2}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order=%v want %v", order, want)
	}
}

func TestPathOrderRejectsStarAndCycle(t *testing.T) {
	star := []Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"A", "C"}},
		{Relation: "R3", Vars: []string{"A", "D"}},
	}
	if _, ok := PathOrder(star); ok {
		t.Fatal("star accepted as path")
	}
	cyc := []Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "A"}},
	}
	if _, ok := PathOrder(cyc); ok {
		t.Fatal("cycle accepted as path")
	}
	if _, ok := PathOrder(nil); ok {
		t.Fatal("empty accepted as path")
	}
	single := []Atom{{Relation: "R", Vars: []string{"A"}}}
	if order, ok := PathOrder(single); !ok || len(order) != 1 {
		t.Fatal("single atom must be a trivial path")
	}
	disconnected := []Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"X", "Y"}},
	}
	if _, ok := PathOrder(disconnected); ok {
		t.Fatal("disconnected accepted as path")
	}
}

func TestPathOrderSharedMultiVarConnector(t *testing.T) {
	// Adjacent relations sharing two attributes still form a path
	// (Section 4: multiple shared attributes act as one combined one).
	path := []Atom{
		{Relation: "R1", Vars: []string{"A", "B", "C"}},
		{Relation: "R2", Vars: []string{"B", "C", "D"}},
	}
	if _, ok := PathOrder(path); !ok {
		t.Fatal("two-atom path with composite connector rejected")
	}
}

func TestQueryString(t *testing.T) {
	q := MustNew("q", figure1Atoms(), map[string][]Predicate{"R1": {{Var: "C", Op: Lt, Value: 3}}})
	s := q.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
