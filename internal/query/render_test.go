package query

import (
	"strings"
	"testing"
)

func TestRenderTree(t *testing.T) {
	tree, err := BuildJoinTree(figure1Atoms())
	if err != nil {
		t.Fatal(err)
	}
	out := tree.Render()
	for _, rel := range []string{"R1", "R2", "R3", "R4"} {
		if !strings.Contains(out, rel) {
			t.Fatalf("rendering missing %s:\n%s", rel, out)
		}
	}
	// Non-root nodes are annotated with their connectors.
	if !strings.Contains(out, "[") {
		t.Fatalf("no connector annotations:\n%s", out)
	}
	// Exactly one root line (no branch glyph).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	rootLines := 0
	for _, l := range lines {
		if !strings.Contains(l, "── ") {
			rootLines++
		}
	}
	if rootLines != 1 {
		t.Fatalf("root lines=%d:\n%s", rootLines, out)
	}
}

func TestRenderForest(t *testing.T) {
	atoms := []Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B"}},
		{Relation: "R3", Vars: []string{"X"}},
	}
	tree, err := BuildJoinTree(atoms)
	if err != nil {
		t.Fatal(err)
	}
	out := tree.Render()
	if !strings.Contains(out, "R3(X)") {
		t.Fatalf("second component missing:\n%s", out)
	}
}

func TestRenderDeepNesting(t *testing.T) {
	path := []Atom{
		{Relation: "R1", Vars: []string{"A", "B"}},
		{Relation: "R2", Vars: []string{"B", "C"}},
		{Relation: "R3", Vars: []string{"C", "D"}},
	}
	tree, err := BuildJoinTree(path)
	if err != nil {
		t.Fatal(err)
	}
	out := tree.Render()
	if strings.Count(out, "└── ") < 2 {
		t.Fatalf("expected nested last-child branches:\n%s", out)
	}
}
