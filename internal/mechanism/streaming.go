package mechanism

import (
	"fmt"
	"math"
	"math/rand"

	"tsens/internal/core"
	"tsens/internal/relation"
)

// SensitivitySource is the view of a live database the streaming mechanism
// needs: the current count, the current rows of a relation, and a
// tuple-sensitivity evaluator answered from maintained state.
// incremental.Session implements it.
type SensitivitySource interface {
	Count() int64
	Rows(rel string) []relation.Tuple
	SensitivityFn(rel string) (core.SensitivityFn, error)
}

// StreamingTSensDPConfig parameterizes the streaming variant of TSensDP.
type StreamingTSensDPConfig struct {
	TSensDPConfig
	// DriftFraction is the relative change in |Q(D)| since the last release
	// that triggers a fresh ε-DP release; smaller answers replay the cached
	// release (with error metrics recomputed against the current count).
	// Zero defaults to 0.1.
	//
	// Privacy accounting: each fresh release spends the full ε of
	// TSensDPConfig on the database state it reads, so the released values
	// cost ε × Releases(). The drift gate itself, however, thresholds the
	// exact count, so the *timing* of releases is data-dependent and not
	// covered by that budget — on adjacent databases straddling the
	// threshold, whether a fresh noise draw happens is observable. Use a
	// fixed re-release schedule (or add an SVT-style noisy gate upstream)
	// when release timing must be protected too; this variant optimizes
	// serving cost, not the timing channel.
	DriftFraction float64
}

// StreamingTSensDP answers a counting query over changing data, re-noising
// only when the true answer has drifted past the configured fraction. Pair
// it with an incremental.Session: the session keeps δ(t) and |Q(D)| current
// under updates, so a release costs one scan of the private relation
// through hash lookups instead of a solver run.
type StreamingTSensDP struct {
	src       SensitivitySource
	private   string
	cfg       StreamingTSensDPConfig
	last      *Run
	lastCount int64
	releases  int
}

// NewStreamingTSensDP validates the configuration and binds the mechanism
// to a source and its primary private relation.
func NewStreamingTSensDP(src SensitivitySource, private string, cfg StreamingTSensDPConfig) (*StreamingTSensDP, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.DriftFraction == 0 {
		cfg.DriftFraction = 0.1
	}
	if cfg.DriftFraction < 0 {
		return nil, fmt.Errorf("mechanism: drift fraction must be non-negative")
	}
	if src == nil {
		return nil, fmt.Errorf("mechanism: nil sensitivity source")
	}
	return &StreamingTSensDP{src: src, private: private, cfg: cfg}, nil
}

// Releases returns how many fresh ε-DP releases have been spent.
func (st *StreamingTSensDP) Releases() int { return st.releases }

// Answer returns the current differentially private answer. The second
// return reports whether a fresh release was spent (true) or the cached one
// was replayed (false).
func (st *StreamingTSensDP) Answer(rng *rand.Rand) (*Run, bool, error) {
	cur := st.src.Count()
	if st.last != nil && !st.drifted(cur) {
		run := *st.last
		run.True = cur
		run.finalize()
		return &run, false, nil
	}
	fn, err := st.src.SensitivityFn(st.private)
	if err != nil {
		return nil, false, err
	}
	rows := st.src.Rows(st.private)
	sens := make([]int64, len(rows))
	for i, row := range rows {
		sens[i] = fn(row)
	}
	run, err := release(sens, st.cfg.TSensDPConfig, rng)
	if err != nil {
		return nil, false, err
	}
	st.last = run
	st.lastCount = run.True
	st.releases++
	out := *run
	return &out, true, nil
}

func (st *StreamingTSensDP) drifted(cur int64) bool {
	base := math.Max(1, math.Abs(float64(st.lastCount)))
	return math.Abs(float64(cur-st.lastCount)) > st.cfg.DriftFraction*base
}
