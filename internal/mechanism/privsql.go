package mechanism

import (
	"fmt"
	"math/rand"

	"tsens/internal/core"
	"tsens/internal/dp"
	"tsens/internal/elastic"
	"tsens/internal/query"
	"tsens/internal/relation"
)

// Truncation names a non-primary relation PrivSQL truncates and the join
// key whose per-value frequency is capped (the policy derived from the
// schema's foreign keys, Section 7.3).
type Truncation struct {
	Relation string
	KeyVars  []string
}

// PrivSQLConfig parameterizes the PrivSQL-style baseline.
type PrivSQLConfig struct {
	// Epsilon is the total budget; half learns the frequency caps, half
	// answers the query (the same split TSensDP uses).
	Epsilon float64
	// MaxCap bounds the frequency-cap search per truncated relation.
	// Zero defaults to 128.
	MaxCap int64
}

// PrivSQL reimplements the parts of PrivateSQL (Kotsogiannis et al., VLDB
// 2019) the paper evaluates against, with the synopsis phase disabled as in
// Section 7.3:
//
//   - each policy relation's join-key frequency cap is learned with SVT and
//     rows with more frequent keys are dropped ("truncation by frequency");
//   - the truncated query's global sensitivity is bounded statically from
//     the truncated database's max frequencies (the same static product
//     bound as elastic sensitivity — this is what makes PrivSQL's GS very
//     loose on cyclic and star queries, Table 2);
//   - the query runs on the truncated database and Laplace noise scaled to
//     the static bound is added.
//
// The join plan for the static bound follows order, as in Section 7.2.
func PrivSQL(q *query.Query, db *relation.Database, opts core.Options, private string,
	policy []Truncation, order []string, cfg PrivSQLConfig, rng *rand.Rand) (*Run, error) {
	if cfg.Epsilon <= 0 {
		return nil, fmt.Errorf("mechanism: epsilon must be positive")
	}
	maxCap := cfg.MaxCap
	if maxCap == 0 {
		maxCap = 128
	}
	trueCount, err := core.Evaluate(q, db, opts)
	if err != nil {
		return nil, err
	}
	run := &Run{True: trueCount}

	// Phase 1: learn a frequency cap per policy relation with SVT and
	// truncate. ε/2 is divided evenly across the policy relations.
	truncated := db.Clone()
	if len(policy) > 0 {
		epsPer := cfg.Epsilon / 2 / float64(len(policy))
		for _, tr := range policy {
			if err := truncateByFrequency(q, truncated, tr, maxCap, epsPer, rng); err != nil {
				return nil, err
			}
		}
	}

	// Phase 2: static global-sensitivity bound on the truncated database.
	an, err := elastic.NewAnalyzer(q, truncated)
	if err != nil {
		return nil, err
	}
	if len(order) == 0 {
		order = elastic.DefaultOrder(q)
	}
	gs, err := an.Sensitivity(order, private)
	if err != nil {
		return nil, err
	}
	if gs < 1 {
		gs = 1
	}
	run.GlobalSens = gs

	// Phase 3: answer on the truncated database.
	run.Truncated, err = core.Evaluate(q, truncated, opts)
	if err != nil {
		return nil, err
	}
	epsAnswer := cfg.Epsilon / 2
	if len(policy) == 0 {
		// Nothing was learned; the full budget answers the query, matching
		// the paper's Facebook setup ("no table truncation and thus 0
		// bias"), where PrivSQL still splits the budget — keep the split
		// for comparability.
		epsAnswer = cfg.Epsilon / 2
	}
	run.Noisy, err = dp.LaplaceMechanism(rng, float64(run.Truncated), float64(gs), epsAnswer)
	if err != nil {
		return nil, err
	}
	run.finalize()
	return run, nil
}

// truncateByFrequency learns, with SVT, the smallest cap i ≤ maxCap such
// that (noisily) no row's join key occurs more than i times, then removes
// rows above the cap.
func truncateByFrequency(q *query.Query, db *relation.Database, tr Truncation, maxCap int64, eps float64, rng *rand.Rand) error {
	atom, ok := q.Atom(tr.Relation)
	if !ok {
		return fmt.Errorf("mechanism: policy names %s, absent from the query", tr.Relation)
	}
	r := db.Relation(tr.Relation)
	if r == nil {
		return fmt.Errorf("mechanism: no relation %s", tr.Relation)
	}
	pos := make([]int, 0, len(tr.KeyVars))
	for _, v := range tr.KeyVars {
		found := -1
		for i, av := range atom.Vars {
			if av == v {
				found = i
			}
		}
		if found < 0 {
			return fmt.Errorf("mechanism: key variable %s not in atom %s", v, atom)
		}
		pos = append(pos, found)
	}
	// Key frequency histogram.
	freq := make(map[string]int64)
	keyOf := func(t relation.Tuple) string {
		var b []byte
		for _, p := range pos {
			u := uint64(t[p])
			b = append(b,
				byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
				byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
		}
		return string(b)
	}
	for _, t := range r.Rows {
		freq[keyOf(t)]++
	}
	// rowsAbove[i] = number of rows whose key occurs more than i times.
	rowsAbove := func(i int64) int64 {
		var n int64
		for _, f := range freq {
			if f > i {
				n += f
			}
		}
		return n
	}
	queries := make([]float64, maxCap)
	for i := int64(1); i <= maxCap; i++ {
		queries[i-1] = -float64(rowsAbove(i))
	}
	idx, err := dp.AboveThreshold(rng, eps, 0, queries)
	if err != nil {
		return err
	}
	cap := maxCap
	if idx >= 0 {
		cap = int64(idx) + 1
	}
	kept := r.Filter(func(t relation.Tuple) bool { return freq[keyOf(t)] <= cap })
	return db.Replace(kept)
}
